// Conflictingstores: the paper's headline scenario in isolation. A program
// repeatedly reloads a set of cells whose values are rewritten every pass
// (stable addresses, fresh values). A last-value predictor goes stale on
// every rewrite — the paper's Challenge #1 — while DLVP's address
// prediction plus cache probing keeps delivering the current value.
package main

import (
	"fmt"

	"dlvp"
)

// buildRewriteLoop: each pass reads 8 parameter cells (fixed addresses),
// does a long stretch of dependent arithmetic, then rewrites all 8 cells —
// far enough ahead of the next pass's reads that the stores commit first.
func buildRewriteLoop() *dlvp.Program {
	b := dlvp.NewProgram("rewriteloop")
	base := b.AllocWords("cells", []uint64{1, 2, 3, 4, 5, 6, 7, 8})

	const acc, tmp, ptr, n = dlvp.Reg(20), dlvp.Reg(21), dlvp.Reg(22), dlvp.Reg(23)
	b.MovImm(acc, 1)
	b.Label("pass")
	// Rewrite every cell with a fresh value first...
	for i := 0; i < 8; i++ {
		b.OpImm(dlvp.OpEORI, tmp, acc, int64(i+1))
		b.MovImm(ptr, base+uint64(i*8))
		b.Str(tmp, ptr, 0, 3)
	}
	// ...then a long stretch of work, so the stores are committed — not in
	// flight — by the time the reloads below are fetched and probed.
	b.MovImm(n, 100)
	b.Label("mix")
	b.Madd(acc, acc, acc, tmp)
	b.OpImm(dlvp.OpLSRI, acc, acc, 5)
	b.OpImm(dlvp.OpORRI, acc, acc, 1)
	b.SubI(n, n, 1)
	b.Cbnz(n, "mix")
	// Reload the cells: stable addresses, fresh values.
	for i := 0; i < 8; i++ {
		b.MovImm(ptr, base+uint64(i*8))
		b.Ldr(tmp, ptr, 0, 3)
		b.Add(acc, acc, tmp)
	}
	b.Br("pass")
	return b.Build()
}

func main() {
	prog := buildRewriteLoop()
	const instrs = 120_000

	// Standalone comparison: LVP (stale values) vs PAP (stable addresses).
	lvpPred := dlvp.NewLVP(dlvp.LVPConfig{})
	papPred := dlvp.NewPAP(dlvp.DefaultPAPConfig())
	var lvpStats, papStats dlvp.PredictorStats

	cpu := dlvp.NewCPU(prog)
	cpu.MaxInstrs = instrs
	var rec dlvp.TraceRec
	for cpu.Next(&rec) {
		if !rec.IsLoad() {
			continue
		}
		llk := lvpPred.Predict(rec.PC)
		lvpStats.Record(llk.Confident, llk.Confident && llk.Value == rec.Value())
		lvpPred.Train(llk, rec.Value())

		plk := papPred.Lookup(rec.PC)
		papStats.Record(plk.Confident, plk.Confident && plk.Addr == rec.Addr)
		papPred.Train(plk, rec.Addr, 3, -1)
		papPred.PushLoad(rec.PC)
	}
	fmt.Println("standalone predictors on the rewrite loop:")
	fmt.Printf("  last-value: coverage %5.1f%%, accuracy %6.2f%%  (stale after every rewrite)\n",
		lvpStats.Coverage(), lvpStats.Accuracy())
	fmt.Printf("  PAP (addr): coverage %5.1f%%, accuracy %6.2f%%  (addresses never change)\n",
		papStats.Coverage(), papStats.Accuracy())

	// Full pipeline: DLVP turns the address predictions into correct value
	// predictions by probing the cache, which holds the committed data.
	w := dlvp.Workload{Name: "rewriteloop", Suite: "custom", Build: buildRewriteLoop}
	base := dlvp.Run(dlvp.Baseline(), w, instrs)
	d := dlvp.Run(dlvp.DLVP(), w, instrs)
	v := dlvp.Run(dlvp.VTAGE(), w, instrs)
	fmt.Println("\nfull pipeline:")
	fmt.Printf("  DLVP:  %+6.2f%% speedup, coverage %5.1f%%, accuracy %6.2f%%, %d value flushes\n",
		dlvp.SpeedupPct(base, d), d.VP.Coverage(), d.VP.Accuracy(), d.ValueFlushes)
	fmt.Printf("  VTAGE: %+6.2f%% speedup, coverage %5.1f%%, accuracy %6.2f%%, %d value flushes\n",
		dlvp.SpeedupPct(base, v), v.VP.Coverage(), v.VP.Accuracy(), v.ValueFlushes)
}
