// Pointerchase: author a custom pointer-chasing program with the program
// builder, then compare PAP and CAP as standalone address predictors on its
// load stream — the Figure 4 protocol on a workload of your own.
//
// The kernel walks a fixed 8-node ring with the walk fully unrolled, so
// every static load always visits the same node: the address-stable shape
// PAP covers after ~8 observations.
package main

import (
	"fmt"

	"dlvp"
)

func buildRingWalk() *dlvp.Program {
	b := dlvp.NewProgram("ringwalk")
	const nodes = 8
	base := b.Alloc("ring", nodes*16)
	// node i: [next, payload]
	words := make([]uint64, nodes*2)
	for i := 0; i < nodes; i++ {
		words[i*2] = base + uint64(((i+3)%nodes)*16) // stride-3 ring
		words[i*2+1] = uint64(i * 17)
	}
	b.SetWords("ring", words)

	const ptr, acc, tmp = dlvp.Reg(20), dlvp.Reg(21), dlvp.Reg(22)
	b.MovImm(acc, 0)
	// The pointer stays live across laps (the ring closes on itself), so
	// the chase is one unbroken serial dependence chain — the shape whose
	// latency address prediction collapses.
	b.MovImm(ptr, base)
	b.Label("loop")
	for i := 0; i < nodes; i++ {
		b.Ldr(tmp, ptr, 8, 3) // payload
		b.Add(acc, acc, tmp)
		b.Ldr(ptr, ptr, 0, 3) // chase
	}
	b.Br("loop")
	return b.Build()
}

func main() {
	prog := buildRingWalk()
	const instrs = 100_000

	// Drive both standalone address predictors over the same load stream.
	papPred := dlvp.NewPAP(dlvp.DefaultPAPConfig())
	capPred := dlvp.NewCAP(dlvp.DefaultCAPConfig())
	var papStats, capStats dlvp.PredictorStats

	cpu := dlvp.NewCPU(prog)
	cpu.MaxInstrs = instrs
	var rec dlvp.TraceRec
	for cpu.Next(&rec) {
		if !rec.IsLoad() {
			continue
		}
		plk := papPred.Lookup(rec.PC)
		papStats.Record(plk.Confident, plk.Confident && plk.Addr == rec.Addr)
		papPred.Train(plk, rec.Addr, 3, -1)
		papPred.PushLoad(rec.PC)

		clk := capPred.Lookup(rec.PC)
		capStats.Record(clk.Confident, clk.Confident && clk.Addr == rec.Addr)
		capPred.Train(clk, rec.PC, rec.Addr)
	}

	fmt.Printf("ring walk: %d dynamic loads\n", papStats.Eligible)
	fmt.Printf("PAP: coverage %.1f%%, accuracy %.2f%%\n", papStats.Coverage(), papStats.Accuracy())
	fmt.Printf("CAP: coverage %.1f%%, accuracy %.2f%%\n", capStats.Coverage(), capStats.Accuracy())

	// And the full-pipeline effect of breaking the serial chase.
	w := dlvp.Workload{Name: "ringwalk", Suite: "custom", Build: buildRingWalk}
	base := dlvp.Run(dlvp.Baseline(), w, instrs)
	fast := dlvp.Run(dlvp.DLVP(), w, instrs)
	fmt.Printf("pipeline: baseline IPC %.3f -> DLVP IPC %.3f (%+.1f%%)\n",
		base.IPC(), fast.IPC(), dlvp.SpeedupPct(base, fast))
}
