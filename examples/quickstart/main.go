// Quickstart: run one bundled workload on the baseline core and on the
// DLVP core, and report the headline numbers — the minimal end-to-end use
// of the library.
package main

import (
	"fmt"
	"log"

	"dlvp"
)

func main() {
	w, ok := dlvp.WorkloadByName("perlbmk")
	if !ok {
		log.Fatal("perlbmk not registered")
	}
	const instrs = 200_000

	base := dlvp.Run(dlvp.Baseline(), w, instrs)
	fast := dlvp.Run(dlvp.DLVP(), w, instrs)

	fmt.Printf("workload: %s (%s)\n", w.Name, w.Description)
	fmt.Printf("baseline: %d cycles, IPC %.3f\n", base.Cycles, base.IPC())
	fmt.Printf("DLVP:     %d cycles, IPC %.3f\n", fast.Cycles, fast.IPC())
	fmt.Printf("speedup:  %+.2f%%\n", dlvp.SpeedupPct(base, fast))
	fmt.Printf("coverage: %.1f%% of loads predicted at %.2f%% accuracy\n",
		fast.VP.Coverage(), fast.VP.Accuracy())
	fmt.Printf("flushes:  %d value mispredictions triggered pipeline flushes\n",
		fast.ValueFlushes)
}
