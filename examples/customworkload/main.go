// Customworkload: the full authoring workflow — write a kernel against the
// program builder, wrap it as a Workload, profile its load behaviour with
// the Figure 1/Figure 2 profilers, then measure every prediction scheme on
// it. Use this as the template for adding your own benchmarks.
package main

import (
	"fmt"

	"dlvp"
)

// buildHistogram: a histogram kernel over bursty data — counter cells are
// read-modify-written (committed conflicts), the input table is read-only.
func buildHistogram() *dlvp.Program {
	b := dlvp.NewProgram("histogram")
	const buckets = 64
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte((i / 5) % buckets) // bursty: runs of 5
	}
	b.AllocInit("data", data)
	b.Alloc("hist", buckets*8)

	const ptr, hp, idx, v, n = dlvp.Reg(20), dlvp.Reg(21), dlvp.Reg(22), dlvp.Reg(23), dlvp.Reg(24)
	b.Label("pass")
	b.MovSym(ptr, "data")
	b.MovSym(hp, "hist")
	b.MovImm(n, 1024)
	b.Label("scan")
	b.Ldr(idx, ptr, 0, 0) // byte
	b.AddI(ptr, ptr, 1)
	b.LdrIdx(v, hp, idx, 3, 3) // hist[idx]
	b.AddI(v, v, 1)
	b.StrIdx(v, hp, idx, 3, 3)
	b.SubI(n, n, 1)
	b.Cbnz(n, "scan")
	b.Br("pass")
	return b.Build()
}

func main() {
	w := dlvp.Workload{
		Name:        "histogram",
		Suite:       "custom",
		Description: "bursty histogram with counter read-modify-writes",
		Build:       buildHistogram,
	}
	const instrs = 150_000

	// Phase 1: trace-level characterisation (the paper's Figures 1 and 2).
	conflicts := dlvp.NewConflictProfiler(224 + 64)
	repeats := dlvp.NewRepeatProfiler()
	cpu := dlvp.NewCPU(w.Build())
	cpu.MaxInstrs = instrs
	var rec dlvp.TraceRec
	for cpu.Next(&rec) {
		conflicts.Observe(&rec)
		repeats.Observe(&rec)
	}
	cs := conflicts.Stats()
	rs := repeats.Stats()
	fmt.Printf("%s: %d dynamic loads over %d static sites\n", w.Name, cs.Loads, cs.StaticLoads)
	fmt.Printf("  loads whose value was stored since their prior instance: %.1f%% committed, %.1f%% in-flight\n",
		cs.CommittedPct, cs.InFlightPct)
	fmt.Printf("  addresses repeating >=8 times: %.1f%% of loads; values repeating >=64 times: %.1f%%\n",
		rs.AddrCumPct[3], rs.ValueCumPct[6])

	// Phase 2: every scheme on the pipeline.
	base := dlvp.Run(dlvp.Baseline(), w, instrs)
	fmt.Printf("\n%-12s %8s %9s %9s %9s\n", "scheme", "IPC", "speedup", "coverage", "accuracy")
	fmt.Printf("%-12s %8.3f %8s %9s %9s\n", "baseline", base.IPC(), "-", "-", "-")
	for _, sc := range []struct {
		name string
		cfg  dlvp.CoreConfig
	}{
		{"dlvp", dlvp.DLVP()},
		{"cap", dlvp.CAPDLVP()},
		{"vtage", dlvp.VTAGE()},
		{"tournament", dlvp.Tournament()},
	} {
		s := dlvp.Run(sc.cfg, w, instrs)
		fmt.Printf("%-12s %8.3f %+7.2f%% %8.1f%% %8.2f%%\n",
			sc.name, s.IPC(), dlvp.SpeedupPct(base, s), s.VP.Coverage(), s.VP.Accuracy())
	}
}
