// Benchmark harness: one benchmark per paper table/figure (regenerating the
// artifact at reduced instruction budgets — run cmd/experiments for the
// full-size reproduction) plus component microbenchmarks for the simulator
// and the predictors.
package dlvp

import (
	"context"
	"fmt"
	"testing"

	"dlvp/internal/experiments"
	"dlvp/internal/obs"
	"dlvp/internal/runner"
	"dlvp/internal/trace"
	"dlvp/internal/uarch"
)

// benchParams shrinks the per-workload budget so a full -bench=. sweep
// stays laptop-sized; the printed tables use the same drivers as the CLI.
// The runner's result cache is disabled so every iteration measures real
// simulation work rather than a cache lookup.
func benchParams() experiments.Params {
	return experiments.Params{
		Instrs:   20_000,
		Parallel: true,
		Runner:   runner.New(runner.Options{CacheEntries: -1}),
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	p := benchParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

func BenchmarkFig1_LoadStoreConflicts(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkFig2_Repeatability(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkTab1_APTEntry(b *testing.B)            { benchExperiment(b, "tab1") }
func BenchmarkTab2_VPEDesigns(b *testing.B)          { benchExperiment(b, "tab2") }
func BenchmarkTab3_Applications(b *testing.B)        { benchExperiment(b, "tab3") }
func BenchmarkTab4_CoreConfig(b *testing.B)          { benchExperiment(b, "tab4") }
func BenchmarkFig4_AddressPrediction(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5_Prefetch(b *testing.B)            { benchExperiment(b, "fig5") }
func BenchmarkFig6_SchemeComparison(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig7_VTAGEFlavours(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8_Tournament(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFig9_SelectedBenchmarks(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10_RecoveryMechanisms(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkAblations_DesignChoices(b *testing.B)  { benchExperiment(b, "ablations") }

// BenchmarkInstrumentedRun quantifies the telemetry overhead the obs layer
// adds to the serving hot path: the same standard 300k-instruction run
// through the runner engine, once bare and once with histograms + span
// recording live (observer wired and the context carrying an active
// trace). The acceptance bar is instrumented within ~2% of baseline —
// simulation work dwarfs a handful of atomic adds and one span append.
func BenchmarkInstrumentedRun(b *testing.B) {
	const instrs = 300_000
	job := runner.Job{Workload: "perlbmk", Config: Baseline(), Instrs: instrs}

	b.Run("baseline", func(b *testing.B) {
		r := runner.New(runner.Options{CacheEntries: -1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := r.Run(context.Background(), job); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		ob := obs.NewObserver(nil)
		r := runner.New(runner.Options{CacheEntries: -1, Obs: ob})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			id := fmt.Sprintf("bench-%d", i)
			ob.Tracer.Begin(id)
			ctx := obs.ContextWithTrace(context.Background(), ob.Tracer, id)
			if _, _, err := r.Run(ctx, job); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCoreThroughput is the CI-gated measure of the cycle-level
// core's own speed: simulated (committed) instructions per wall-clock
// second on the commit path, with functional emulation taken out of the
// loop by replaying a pre-captured in-memory trace. BENCH_9.json records
// the committed trajectory; TestCoreThroughputGate (run with
// DLVP_BENCH_GATE=1) fails CI when the measured rate regresses more than
// 10% against it.
func BenchmarkCoreThroughput(b *testing.B) {
	const instrs = 100_000
	for _, tc := range []struct {
		name string
		cfg  CoreConfig
	}{
		{"baseline", Baseline()},
		{"dlvp", DLVP()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			w, ok := WorkloadByName("perlbmk")
			if !ok {
				b.Fatal("perlbmk not registered")
			}
			prog := w.Build()
			recs := trace.Collect(w.Reader(instrs), 0)
			arena := uarch.NewArena() // reused across runs, like the runner does
			b.ReportAllocs()
			b.ResetTimer()
			var committed uint64
			for i := 0; i < b.N; i++ {
				core := uarch.NewAtArena(tc.cfg, prog, &trace.SliceReader{Recs: recs}, nil, arena)
				stats := core.Run(0)
				if stats.Instructions == 0 {
					b.Fatal("nothing committed")
				}
				committed += stats.Instructions
			}
			b.StopTimer()
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(committed)/secs, "instrs/sec")
			}
		})
	}
}

// --- component microbenchmarks ------------------------------------------------

// BenchmarkEmulator measures raw functional-emulation throughput
// (instructions per op).
func BenchmarkEmulator(b *testing.B) {
	w, _ := WorkloadByName("perlbmk")
	prog := w.Build()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cpu := NewCPU(prog)
		cpu.MaxInstrs = 10_000
		var rec TraceRec
		for cpu.Next(&rec) {
		}
	}
}

// BenchmarkTimingBaseline measures cycle-level simulation throughput on the
// baseline core.
func BenchmarkTimingBaseline(b *testing.B) {
	w, _ := WorkloadByName("perlbmk")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(Baseline(), w, 10_000)
	}
}

// BenchmarkTimingDLVP measures cycle-level simulation throughput with the
// full DLVP machinery engaged.
func BenchmarkTimingDLVP(b *testing.B) {
	w, _ := WorkloadByName("perlbmk")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(DLVP(), w, 10_000)
	}
}

// BenchmarkPAPLookup measures the predictor's lookup+train cost.
func BenchmarkPAPLookup(b *testing.B) {
	p := NewPAP(DefaultPAPConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pc := 0x400000 + uint64(i%64)*4
		lk := p.Lookup(pc)
		p.Train(lk, 0x10000+uint64(i%8)*64, 3, 0)
		p.PushLoad(pc)
	}
}

// BenchmarkVTAGEPredict measures VTAGE's probe+train cost.
func BenchmarkVTAGEPredict(b *testing.B) {
	p := NewVTAGE(DefaultVTAGEConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pc := 0x400000 + uint64(i%64)*4
		lk := p.Predict(pc, 0)
		p.Train(lk, OpADD, uint64(i%8))
		p.PushBranch(i%3 == 0)
	}
}

// BenchmarkConflictProfiler measures the Figure 1 profiler throughput.
func BenchmarkConflictProfiler(b *testing.B) {
	w, _ := WorkloadByName("mcf")
	recs := trace.Collect(w.Reader(20_000), 0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prof := trace.NewConflictProfiler(288)
		for j := range recs {
			prof.Observe(&recs[j])
		}
	}
}
