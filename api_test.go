package dlvp

import "testing"

func TestPublicAPIQuickstart(t *testing.T) {
	w, ok := WorkloadByName("perlbmk")
	if !ok {
		t.Fatal("perlbmk missing from the registry")
	}
	// Warmup matters: the APT needs ~8 observations per site and the LSCD
	// a few conflicts before DLVP turns profitable.
	const n = 60_000
	base := Run(Baseline(), w, n)
	fast := Run(DLVP(), w, n)
	if base.Instructions != n || fast.Instructions != n {
		t.Fatalf("commits: base %d, dlvp %d", base.Instructions, fast.Instructions)
	}
	if SpeedupPct(base, fast) <= 0 {
		t.Errorf("DLVP speedup on perlbmk = %.2f%%, want positive", SpeedupPct(base, fast))
	}
}

func TestPublicAPICustomProgram(t *testing.T) {
	b := NewProgram("api")
	addr := b.AllocWords("cell", []uint64{3})
	b.MovImm(1, addr)
	b.Label("loop")
	b.Ldr(2, 1, 0, 3)
	b.Add(3, 3, 2)
	b.Br("loop")
	core := NewCore(Baseline(), b.Build(), 5_000)
	s := core.Run(0)
	if s.Instructions != 5_000 {
		t.Fatalf("committed %d", s.Instructions)
	}
	if s.Loads == 0 {
		t.Error("no loads observed")
	}
}

func TestPublicAPIStandalonePredictors(t *testing.T) {
	p := NewPAP(DefaultPAPConfig())
	for i := 0; i < 40; i++ {
		lk := p.Lookup(0x400100)
		p.Train(lk, 0xBEEF00, 3, -1)
		p.PushLoad(0x400100)
	}
	if !p.Lookup(0x400100).Confident {
		t.Error("PAP not confident after 40 stable observations")
	}
	c := NewCAP(DefaultCAPConfig())
	if c.Config().Confidence != 24 {
		t.Errorf("CAP default confidence = %d, paper sweep winner is 24", c.Config().Confidence)
	}
	v := NewVTAGE(DefaultVTAGEConfig())
	if !v.Config().LoadsOnly {
		t.Error("default VTAGE must be loads-only")
	}
	l := NewLVP(LVPConfig{})
	lk := l.Predict(0x400200)
	l.Train(lk, 1)
	st := NewStride(StrideConfig{})
	sk := st.Predict(0x400300)
	st.Train(sk, 100)
}

func TestPublicAPIExperiments(t *testing.T) {
	if len(Experiments()) < 14 {
		t.Errorf("experiment registry too small: %d", len(Experiments()))
	}
	e, ok := ExperimentByID("tab4")
	if !ok {
		t.Fatal("tab4 missing")
	}
	tables, err := e.Run(DefaultExperimentParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || tables[0].Title == "" {
		t.Error("tab4 produced nothing")
	}
}

func TestPublicAPIProfilers(t *testing.T) {
	w, _ := WorkloadByName("mcf")
	cp := NewConflictProfiler(64)
	rp := NewRepeatProfiler()
	cpu := NewCPU(w.Build())
	cpu.MaxInstrs = 10_000
	var rec TraceRec
	for cpu.Next(&rec) {
		cp.Observe(&rec)
		rp.Observe(&rec)
	}
	if cp.Stats().Loads == 0 || rp.Stats().Loads == 0 {
		t.Error("profilers saw no loads")
	}
}
