//go:build integration

package integration

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// matrixAccepted is the POST /v1/matrices acknowledgement.
type matrixAccepted struct {
	ID     string `json:"id"`
	Shards int    `json:"shards"`
	Cells  int    `json:"cells"`
}

// matrixStatus is the slice of GET /v1/matrices/{id} this test needs.
// Tables stays raw so the distributed and single-process payloads can be
// compared byte-for-byte.
type matrixStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Counts struct {
		Pending   int `json:"pending"`
		Running   int `json:"running"`
		Done      int `json:"done"`
		Cancelled int `json:"cancelled"`
		Failed    int `json:"failed"`
	} `json:"counts"`
	Shards []struct {
		ID       int    `json:"id"`
		Workload string `json:"workload"`
		State    string `json:"state"`
		Assigned string `json:"assigned"`
		Owner    string `json:"owner"`
		Stolen   bool   `json:"stolen"`
		Attempts int    `json:"attempts"`
	} `json:"shards"`
	Stolen int             `json:"stolen"`
	Error  string          `json:"error"`
	Tables json.RawMessage `json:"tables"`
}

// postMatrix submits one sweep and fails the test on anything but 202.
// A non-empty reqID pins the submission's trace ID via X-Request-ID so
// the test can later query the distributed trace it produced.
func postMatrix(t *testing.T, base string, spec map[string]any, reqID string) matrixAccepted {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest(http.MethodPost, base+"/v1/matrices", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/matrices: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/matrices: status %d", resp.StatusCode)
	}
	var acc matrixAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	return acc
}

func getMatrix(t *testing.T, base, id string) matrixStatus {
	t.Helper()
	var v matrixStatus
	getJSON(t, base+"/v1/matrices/"+id, &v)
	return v
}

// waitMatrixTerminal polls until the matrix leaves "running".
func waitMatrixTerminal(t *testing.T, base, id string, timeout time.Duration) matrixStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getMatrix(t, base, id)
		if v.Status != "running" {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("matrix %s still running after %s: %+v", id, timeout, v.Counts)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// waitClusterPeers polls /v1/cluster until base reports want healthy peers.
func waitClusterPeers(t *testing.T, base string, want int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var cv clusterView
		getJSON(t, base+"/v1/cluster", &cv)
		if cv.Mode == "cluster" && cv.Dispatch != nil && cv.Dispatch.HealthyPeers == want {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("%s never reported %d healthy peers", base, want)
}

// TestMatrixSweepCluster drives the distributed matrix orchestrator end
// to end over a real three-daemon mesh: a 4-scheme x 8-workload sweep is
// submitted to daemon A, one peer is killed mid-sweep, and the surviving
// targets must steal and requeue its shards until the sweep completes.
// The final result tables must be byte-identical to the same sweep run on
// a standalone single-process daemon — distribution, steals, and peer
// death may never change the science.
func TestMatrixSweepCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := buildDaemon(t)
	portA, portB, portC := freePort(t), freePort(t), freePort(t)
	urlA := fmt.Sprintf("http://127.0.0.1:%d", portA)
	urlB := fmt.Sprintf("http://127.0.0.1:%d", portB)
	urlC := fmt.Sprintf("http://127.0.0.1:%d", portC)
	a := startDaemon(t, bin, portA, urlB+","+urlC)
	startDaemon(t, bin, portB, urlA+","+urlC)
	c := startDaemon(t, bin, portC, urlA+","+urlB)
	waitClusterPeers(t, a.base, 2)

	var pool struct {
		Workloads []struct {
			Name string `json:"name"`
		} `json:"workloads"`
	}
	getJSON(t, a.base+"/v1/workloads", &pool)
	if len(pool.Workloads) < 8 {
		t.Fatalf("workload pool too small: %d", len(pool.Workloads))
	}
	workloads := make([]string, 0, 8)
	for _, w := range pool.Workloads[:8] {
		workloads = append(workloads, w.Name)
	}
	spec := map[string]any{
		"workloads": workloads,
		"schemes":   []string{"baseline", "dlvp", "cap", "vtage"},
		"instrs":    3_000_000,
	}

	const traceID = "sweep-trace-1"
	acc := postMatrix(t, a.base, spec, traceID)
	if acc.Shards != 8 || acc.Cells != 32 {
		t.Fatalf("accepted %d shards / %d cells, want 8/32", acc.Shards, acc.Cells)
	}

	// Let the sweep get under way, then pull daemon C out from under it.
	killDeadline := time.Now().Add(2 * time.Minute)
	killedMidSweep := false
	for {
		v := getMatrix(t, a.base, acc.ID)
		if v.Status != "running" {
			t.Log("matrix finished before the peer kill; skipping mid-sweep death assertions")
			break
		}
		if v.Counts.Done >= 2 {
			c.kill(t)
			killedMidSweep = true
			break
		}
		if time.Now().After(killDeadline) {
			t.Fatalf("matrix never progressed: %+v", v.Counts)
		}
		time.Sleep(50 * time.Millisecond)
	}

	final := waitMatrixTerminal(t, a.base, acc.ID, 5*time.Minute)
	if final.Status != "done" {
		t.Fatalf("matrix status = %s (%s), counts %+v", final.Status, final.Error, final.Counts)
	}
	if final.Counts.Done != 8 || final.Counts.Failed != 0 {
		t.Fatalf("counts = %+v, want 8 done / 0 failed", final.Counts)
	}
	for _, s := range final.Shards {
		if s.State != "done" || s.Owner == "" {
			t.Fatalf("shard %d (%s) state=%s owner=%q", s.ID, s.Workload, s.State, s.Owner)
		}
	}
	if killedMidSweep {
		// Shards bound for the dead peer must have been finished by
		// someone else: stolen, or requeued onto a survivor.
		moved := final.Stolen
		for _, s := range final.Shards {
			if s.Owner != s.Assigned || s.Attempts > 1 {
				moved++
			}
		}
		if moved == 0 {
			t.Error("peer died mid-sweep but no shard was stolen or requeued")
		}
	}
	if len(final.Tables) == 0 || string(final.Tables) == "null" {
		t.Fatal("finished matrix has no tables")
	}

	assertClusterTrace(t, a.base, urlA, traceID)

	// Reference run: the identical sweep on a standalone daemon.
	portD := freePort(t)
	d := startDaemon(t, bin, portD, "")
	refAcc := postMatrix(t, d.base, spec, "")
	ref := waitMatrixTerminal(t, d.base, refAcc.ID, 5*time.Minute)
	if ref.Status != "done" {
		t.Fatalf("reference matrix status = %s (%s)", ref.Status, ref.Error)
	}
	if !bytes.Equal(final.Tables, ref.Tables) {
		t.Fatalf("distributed tables differ from single-process run\ncluster:    %s\nstandalone: %s",
			final.Tables, ref.Tables)
	}
}

// traceNode is the slice of the assembled span tree this test needs.
// Span fields are inlined because obs.TreeNode embeds obs.Span.
type traceNode struct {
	Name     string            `json:"name"`
	SpanID   string            `json:"span_id"`
	Marker   string            `json:"marker"`
	Instance string            `json:"instance"`
	Attrs    map[string]string `json:"attrs"`
	Children []*traceNode      `json:"children"`
}

// clusterTrace is the GET /v1/traces/{id}?cluster=1 envelope.
type clusterTrace struct {
	ID        string       `json:"id"`
	Cluster   bool         `json:"cluster"`
	Instances []string     `json:"instances"`
	Spans     int          `json:"spans"`
	Roots     []*traceNode `json:"roots"`
}

// assertClusterTrace checks that the sweep left one assembled
// cross-process trace on the originating daemon: spans from at least one
// peer stitched into the tree, and the orchestrator's matrix.shard spans
// present. Polled briefly because the last shard spans record just after
// the matrix flips to done.
func assertClusterTrace(t *testing.T, base, localInstance, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		var tr clusterTrace
		getJSON(t, base+"/v1/traces/"+id+"?cluster=1", &tr)
		if !tr.Cluster || tr.ID != id {
			t.Fatalf("trace envelope = id %q cluster %v", tr.ID, tr.Cluster)
		}
		shardSpans, peerSpans := 0, 0
		var walk func(n *traceNode)
		walk = func(n *traceNode) {
			if n.Name == "matrix.shard" {
				shardSpans++
			}
			if n.Instance != "" && n.Instance != localInstance {
				peerSpans++
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		for _, r := range tr.Roots {
			walk(r)
		}
		if shardSpans > 0 && peerSpans > 0 && len(tr.Instances) >= 2 {
			t.Logf("cluster trace: %d spans from %v (%d matrix.shard, %d peer-side)",
				tr.Spans, tr.Instances, shardSpans, peerSpans)
			return
		}
		last = fmt.Sprintf("spans=%d instances=%v shardSpans=%d peerSpans=%d",
			tr.Spans, tr.Instances, shardSpans, peerSpans)
		time.Sleep(200 * time.Millisecond)
	}
	t.Fatalf("assembled cluster trace never showed peer-executed shard work: %s", last)
}
