// Package integration holds live end-to-end tests that build and run real
// dlvpd processes. The tests are guarded by the "integration" build tag so
// the plain `go test ./...` suite stays hermetic:
//
//	go test -tags integration ./integration
//
// The cluster test starts two daemons on loopback ports peered with each
// other, routes a workload matrix through one, verifies cache affinity
// across the ring, kills a peer mid-matrix, and asserts every request
// still completes (ejection + local fallback).
package integration
