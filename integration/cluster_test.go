//go:build integration

package integration

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// buildDaemon compiles cmd/dlvpd once into a temp dir and returns the
// binary path.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dlvpd")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/dlvpd")
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/dlvpd: %v\n%s", err, out)
	}
	return bin
}

// freePort asks the kernel for an unused loopback port.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port
}

type daemon struct {
	cmd  *exec.Cmd
	base string
}

// startDaemon launches one dlvpd on addr peered with peerURL and waits
// for /healthz. Stderr (the structured log) goes to the test log on
// failure via the returned buffer.
func startDaemon(t *testing.T, bin string, port int, peerURL string) *daemon {
	t.Helper()
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	// -self names this daemon by the URL its peer uses, so both rings
	// share one name set and agree on every job's owner (cluster-wide
	// affinity rather than per-entry-daemon affinity).
	cmd := exec.Command(bin,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-self", base,
		"-peers", peerURL,
		"-health-interval", "200ms",
		"-log-format", "text",
	)
	var logs bytes.Buffer
	cmd.Stderr = &logs
	cmd.Stdout = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, base: base}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
		if t.Failed() {
			t.Logf("daemon %s logs:\n%s", base, logs.String())
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon on %s never became healthy:\n%s", base, logs.String())
	return nil
}

func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill daemon %s: %v", d.base, err)
	}
	_, _ = d.cmd.Process.Wait()
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

type runResult struct {
	Cached bool `json:"cached"`
}

// postRun submits one synchronous simulation and reports whether it was
// cache-served. Any non-200 fails the test: the cluster must never fail
// a request, even mid peer-death.
func postRun(t *testing.T, base, workload string, instrs int) runResult {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"workload": workload, "scheme": "baseline", "instrs": instrs,
	})
	resp, err := http.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/runs %s: %v", workload, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/runs %s: status %d", workload, resp.StatusCode)
	}
	var out runResult
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

type clusterView struct {
	Mode     string `json:"mode"`
	Dispatch *struct {
		Peers        int `json:"peers"`
		HealthyPeers int `json:"healthy_peers"`
		Backends     []struct {
			Name    string `json:"name"`
			Healthy bool   `json:"healthy"`
		} `json:"backends"`
	} `json:"dispatch"`
}

// TestCluster drives a real two-daemon cluster end to end.
func TestCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := buildDaemon(t)
	portA, portB := freePort(t), freePort(t)
	urlA := fmt.Sprintf("http://127.0.0.1:%d", portA)
	urlB := fmt.Sprintf("http://127.0.0.1:%d", portB)
	a := startDaemon(t, bin, portA, urlB)
	b := startDaemon(t, bin, portB, urlA)

	// Both daemons must see each other healthy once a probe lands.
	waitHealthy := func(base string, want int) {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			var cv clusterView
			getJSON(t, base+"/v1/cluster", &cv)
			if cv.Mode == "cluster" && cv.Dispatch != nil && cv.Dispatch.HealthyPeers == want {
				return
			}
			time.Sleep(100 * time.Millisecond)
		}
		t.Fatalf("%s never reported %d healthy peers", base, want)
	}
	waitHealthy(a.base, 1)
	waitHealthy(b.base, 1)

	// Fetch the workload pool from the daemon itself.
	var pool struct {
		Workloads []struct {
			Name string `json:"name"`
		} `json:"workloads"`
	}
	getJSON(t, a.base+"/v1/workloads", &pool)
	if len(pool.Workloads) < 8 {
		t.Fatalf("workload pool too small: %d", len(pool.Workloads))
	}
	names := make([]string, 0, 8)
	for _, w := range pool.Workloads[:8] {
		names = append(names, w.Name)
	}
	const instrs = 20_000

	// Matrix through A, then the identical matrix through B: with a shared
	// name set the cluster agrees on each job's owner, so the second pass
	// is affinity-cache-served even from the other entry point.
	for _, wl := range names {
		postRun(t, a.base, wl, instrs)
	}
	hits := 0
	for _, wl := range names {
		if postRun(t, b.base, wl, instrs).Cached {
			hits++
		}
	}
	if ratio := float64(hits) / float64(len(names)); ratio < 0.9 {
		t.Fatalf("cross-daemon repeat-matrix cache hit ratio %.2f < 0.9 (%d/%d)", ratio, hits, len(names))
	}

	// Kill B mid-matrix: submit new (uncached) jobs, pulling the peer out
	// from under the ring after the first one. Every request must still
	// complete via retry + ejection + local fallback.
	const instrs2 = 21_000
	postRun(t, a.base, names[0], instrs2)
	b.kill(t)
	for _, wl := range names[1:] {
		postRun(t, a.base, wl, instrs2)
	}

	// The dead peer must show up ejected in A's ring.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cv clusterView
		getJSON(t, a.base+"/v1/cluster", &cv)
		if cv.Dispatch != nil && cv.Dispatch.HealthyPeers == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead peer never ejected: %+v", cv.Dispatch)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The post-death jobs all completed on A (directly or via fallback),
	// so resubmitting them is served from the survivor's cache.
	for _, wl := range names[1:] {
		if !postRun(t, a.base, wl, instrs2).Cached {
			t.Errorf("post-death job %s not cached on survivor", wl)
		}
	}
}
