module dlvp

go 1.22
