// Command dlvpsim runs one workload on the cycle-level core under a chosen
// value-prediction scheme and prints the run statistics. Simulations are
// submitted to the shared runner engine (internal/runner), the same
// execution path the experiment drivers and the dlvpd daemon use.
//
// Usage:
//
//	dlvpsim -workload perlbmk -scheme dlvp -instrs 300000
//	dlvpsim -workload perlbmk -scheme dlvp -timeline run.json
//	dlvpsim -list
//
// -timeline records an interval flight-recorder series during the run and
// writes it as JSON — the input format of the dlvpstat timeline CLI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dlvp/internal/config"
	"dlvp/internal/metrics"
	"dlvp/internal/runner"
	"dlvp/internal/siteprof"
	"dlvp/internal/timeline"
	"dlvp/internal/tracecache"
	"dlvp/internal/uarch"
	"dlvp/internal/workloads"
)

func main() {
	name := flag.String("workload", "perlbmk", "workload to simulate")
	scheme := flag.String("scheme", "dlvp", strings.Join(config.SchemeNames(), " | "))
	instrs := flag.Uint64("instrs", 300_000, "dynamic instruction budget")
	compare := flag.Bool("compare", false, "also run the baseline and report speedup")
	list := flag.Bool("list", false, "list available workloads")
	disasm := flag.Bool("disasm", false, "print the workload's disassembly and exit")
	pipeview := flag.Int("pipeview", 0, "record and print the pipeline timeline of N instructions (after warmup)")
	traceCacheBytes := flag.Int64("trace-cache-bytes", 512<<20, "byte budget for captured emulation traces replayed across configs (0: disabled; speeds up -compare)")
	asJSON := flag.Bool("json", false, "emit the run statistics as JSON")
	timelineOut := flag.String("timeline", "", "record a flight-recorder timeline and write it as JSON to this path (\"-\": stdout)")
	timelineInterval := flag.Uint64("timeline-interval", 0, "timeline sampling interval in committed instructions (0: default 100000)")
	timelineCapacity := flag.Int("timeline-capacity", 0, "timeline sample ring bound (0: default 512)")
	sitesOut := flag.String("sites", "", "record per-load-site misprediction attribution and write the profile as JSON to this path (\"-\": stdout)")
	maxSites := flag.Int("max-sites", 0, "per-load-site profile site bound (0: default 1024)")
	sampleIntervals := flag.Int("sample-intervals", 0, "run as a checkpointed sampled simulation with this many intervals (0: full detailed run)")
	sampleWarmup := flag.Uint64("sample-warmup", 0, "per-interval detailed warm-up instructions before measurement (0: stride/16)")
	sampleBudget := flag.Uint64("sample-budget", 0, "per-interval measured instructions (0: stride/8)")
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-12s [%-7s] %s\n", w.Name, w.Suite, w.Description)
		}
		return
	}

	w, ok := workloads.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (use -list)\n", *name)
		os.Exit(2)
	}
	if *disasm {
		fmt.Print(w.Build().Disasm())
		return
	}

	cfg, ok := config.ByScheme(*scheme)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scheme %q (known: %s)\n", *scheme, strings.Join(config.SchemeNames(), ", "))
		os.Exit(2)
	}
	if *instrs == 0 {
		fmt.Fprintln(os.Stderr, "-instrs must be positive: a zero-instruction run simulates nothing")
		os.Exit(2)
	}
	var sampling *runner.SamplingSpec
	if *sampleIntervals != 0 || *sampleWarmup != 0 || *sampleBudget != 0 {
		if *pipeview > 0 {
			fmt.Fprintln(os.Stderr, "-pipeview needs the full detailed stream and cannot be combined with sampling flags")
			os.Exit(2)
		}
		sampling = &runner.SamplingSpec{
			Intervals:      *sampleIntervals,
			WarmupInstrs:   *sampleWarmup,
			MeasuredInstrs: *sampleBudget,
		}
		if _, err := sampling.Normalize(*instrs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	eng := runner.New(runner.Options{
		TraceCache: tracecache.New(*traceCacheBytes),
		Timeline: runner.TimelineOptions{
			Enabled:        *timelineOut != "",
			IntervalInstrs: *timelineInterval,
			Capacity:       *timelineCapacity,
		},
		Sites: runner.SiteOptions{
			Enabled:  *sitesOut != "",
			MaxSites: *maxSites,
		},
	})
	var s metrics.RunStats
	var sampled *runner.SampledInfo
	if *pipeview > 0 {
		// Stage tracing needs direct access to the core instance, so the
		// pipeview path bypasses the runner.
		core := uarch.New(cfg, w.Build(), w.Reader(*instrs))
		core.EnableStageTrace(*instrs/2, *pipeview) // after warmup
		s = core.Run(0)
		fmt.Print(uarch.FormatStageTraces(core.StageTraces()))
	} else {
		res, _, err := eng.RunResult(ctx, runner.Job{Workload: w.Name, Config: cfg, Instrs: *instrs, Sampling: sampling})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s = res.Stats
		sampled = res.Sampled
		if *timelineOut != "" {
			if err := writeTimeline(*timelineOut, res.Timeline); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *sitesOut != "" {
			if err := writeSites(*sitesOut, res.Sites); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var payload any = s
		if sampled != nil {
			payload = struct {
				Stats   metrics.RunStats    `json:"stats"`
				Sampled *runner.SampledInfo `json:"sampled"`
			}{s, sampled}
		}
		if err := enc.Encode(payload); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("workload      %s (%s)\n", s.Workload, s.Scheme)
	fmt.Printf("instructions  %d (loads %d, stores %d)\n", s.Instructions, s.Loads, s.Stores)
	fmt.Printf("cycles        %d  (IPC %.3f)\n", s.Cycles, s.IPC())
	fmt.Printf("flushes       branch %d, value %d, ordering %d\n", s.BranchFlushes, s.ValueFlushes, s.OrderFlushes)
	fmt.Printf("caches        L1D miss %.2f%%, L2 miss %.2f%%, TLB miss %.3f%%\n", s.L1DMissRate, s.L2MissRate, s.TLBMissRate)
	if cfg.VP.Scheme != config.VPNone {
		fmt.Printf("value pred    coverage %.1f%%, accuracy %.2f%% (%d of %d eligible)\n",
			s.VP.Coverage(), s.VP.Accuracy(), s.VP.Predicted, s.VP.Eligible)
	}
	if s.PAQAllocated > 0 {
		fmt.Printf("DLVP          PAQ alloc %d (drop %.2f%%), probes %d (hit %d), prefetches %d\n",
			s.PAQAllocated, s.PAQDropRate(), s.Probes, s.ProbeHits, s.Prefetches)
		fmt.Printf("              LSCD inserts %d / filtered %d, way mispredicts %d\n",
			s.LSCDInserts, s.LSCDFiltered, s.WayMispredicts)
	}
	fmt.Printf("core energy   %.3g units\n", s.CoreEnergy)
	if sampled != nil {
		fmt.Printf("sampling      %d intervals, stride %d (warmup %d + measured %d each)\n",
			sampled.Intervals, sampled.StrideInstrs, sampled.WarmupInstrs, sampled.MeasuredInstrs)
		fmt.Printf("              detailed %d of %d instrs (%.1f%%), est. full-run cycles %d\n",
			sampled.DetailedInstrs, sampled.SpanInstrs,
			100*float64(sampled.DetailedInstrs)/float64(sampled.SpanInstrs), sampled.EstimatedCycles)
		fmt.Printf("              checkpoints: hit %d, chained %d, cold %d, coalesced %d\n",
			sampled.CheckpointHits, sampled.CheckpointChained, sampled.CheckpointCold, sampled.CheckpointCoalesced)
	}

	if *compare {
		base, _, err := eng.Run(ctx, runner.Job{Workload: w.Name, Config: config.Baseline(), Instrs: *instrs, Sampling: sampling})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("speedup       %+.2f%% over baseline (IPC %.3f -> %.3f)\n",
			metrics.SpeedupPct(base, s), base.IPC(), s.IPC())
		fmt.Printf("energy ratio  %.3f of baseline\n", s.CoreEnergy/base.CoreEnergy)
	}
}

// writeTimeline writes the flight-recorder series as indented JSON to path
// ("-" for stdout).
func writeTimeline(path string, tl *timeline.Timeline) error {
	if tl == nil {
		return fmt.Errorf("no timeline recorded")
	}
	return writeIndentedJSON(path, tl)
}

// writeSites writes the per-load-site attribution profile as indented JSON
// to path ("-" for stdout) — the input format of dlvpstat sites.
func writeSites(path string, p *siteprof.Profile) error {
	if p == nil {
		return fmt.Errorf("no site profile recorded")
	}
	return writeIndentedJSON(path, p)
}

func writeIndentedJSON(path string, v any) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
