// Command dlvpd serves the simulator as an HTTP daemon.
//
// Usage:
//
//	dlvpd [-addr :8080] [-workers 8] [-cache 4096] [-timeout 2m]
//
// The daemon wraps the shared runner engine (internal/runner) behind the
// internal/server API: POST /v1/runs executes one simulation, POST
// /v1/experiments/{id} regenerates a paper artifact as JSON, GET
// /v1/jobs/{id} polls async submissions, and /v1/stats + /metrics expose
// queue depths, cache hit ratios, and simulated instructions per second.
// Identical requests are served from content-addressed caches.
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests and background jobs, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dlvp/internal/runner"
	"dlvp/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0: NumCPU)")
	cache := flag.Int("cache", 0, "result cache entries (0: default, negative: disabled)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request timeout for synchronous calls")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace period for draining work")
	flag.Parse()

	eng := runner.New(runner.Options{Workers: *workers, CacheEntries: *cache})
	srv := server.New(server.Options{Runner: eng, RequestTimeout: *timeout})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("dlvpd listening on %s (workers=%d)", *addr, eng.Stats().Workers)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately

	log.Printf("shutting down (grace %v)", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := srv.Drain(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("drain: %v", err)
	}
	srv.Close()
	log.Printf("dlvpd stopped")
}
