// Command dlvpd serves the simulator as an HTTP daemon.
//
// Usage:
//
//	dlvpd [-addr :8080] [-workers 8] [-cache 4096] [-timeout 2m]
//	      [-trace-cache-bytes 536870912] [-checkpoint-bytes 268435456]
//	      [-timeline-interval 100000] [-timeline-capacity 512]
//	      [-matrix-dir /var/lib/dlvp/matrices] [-matrix-shard-workers 2]
//	      [-peers http://h1:8080,http://h2:8080] [-self name]
//	      [-hedge-after 0] [-health-interval 3s]
//	      [-log-format json|text] [-log-level debug|info|warn|error]
//	      [-debug-addr :6060] [-version]
//
// With -peers, the daemon forms a cluster: each job routes through
// internal/dispatch, which rendezvous-hashes the job's content address
// over {local, peers} so identical jobs land on the peer already holding
// their cached result. Failing peers are health-checked, ejected with
// exponential backoff, and reinstated automatically; retryable failures
// re-route; and when every peer is down, jobs fall back to the local
// engine — a clustered daemon never does worse than standalone mode.
// GET /v1/cluster reports the ring state.
//
// POST /v1/matrices runs a whole (workload x scheme) sweep as per-workload
// shards scattered over the ring with work-stealing; GET
// /v1/matrices/{id}/stream tails partial result tables over SSE. With
// -matrix-dir, sweep state persists across restarts: a matrix interrupted
// by shutdown resumes on the next boot, re-running only its unfinished
// shards (completed shards' results are restored from disk, and re-run
// cells usually hit the peers' content-addressed result caches).
//
// The daemon wraps the shared runner engine (internal/runner) behind the
// internal/server API: POST /v1/runs executes one simulation, POST
// /v1/experiments/{id} regenerates a paper artifact as JSON, GET /v1/jobs
// lists async submissions and GET /v1/jobs/{id} polls one, and /v1/stats +
// /metrics expose queue depths, cache hit ratios, latency histograms, and
// simulated instructions per second in the Prometheus text format.
// Identical requests are served from content-addressed caches.
//
// With -timeline-interval > 0 (the default), every executed simulation
// records an interval flight-recorder timeline; async run jobs serve it at
// GET /v1/runs/{id}/timeline (?format=prom for Prometheus text) and stream
// it live over Server-Sent Events at GET /v1/runs/{id}/timeline/stream.
//
// Every request gets a trace ID (X-Request-ID honoured and echoed) and
// trace context is propagated across the cluster: forwarded jobs and
// matrix shards carry a traceparent header, so every daemon that touches
// a request records spans under the same trace. GET /v1/traces/{id}
// serves this daemon's local spans; GET /v1/traces/{id}?cluster=1
// scrapes every healthy peer and stitches one cross-process tree with
// hedged losers, retries, and stolen shards marked (rendered by
// `dlvpstat trace`). GET /v1/cluster/metrics federates every member's
// Prometheus exposition under instance labels, annotating unreachable
// peers instead of failing. With -debug-addr set, a separate admin
// listener serves net/http/pprof, a runtime/metrics snapshot at
// /debug/runtime, and the metrics exposition.
//
// On SIGINT/SIGTERM the daemon marks /healthz as draining (503), stops
// accepting connections, drains in-flight requests and background jobs,
// then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dlvp/internal/checkpoint"
	"dlvp/internal/dispatch"
	"dlvp/internal/matrix"
	"dlvp/internal/obs"
	"dlvp/internal/runner"
	"dlvp/internal/server"
	"dlvp/internal/tracecache"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0: NumCPU)")
	cache := flag.Int("cache", 0, "result cache entries (0: default, negative: disabled)")
	traceCacheBytes := flag.Int64("trace-cache-bytes", 512<<20, "byte budget for captured emulation traces replayed across configs (0: disabled)")
	checkpointBytes := flag.Int64("checkpoint-bytes", 0, "byte budget for the architectural checkpoint store backing sampled runs (0: default 256 MiB)")
	timelineInterval := flag.Uint64("timeline-interval", 100_000, "flight-recorder sampling interval in committed instructions (0: disabled)")
	timelineCapacity := flag.Int("timeline-capacity", 0, "flight-recorder sample ring bound per run (0: default)")
	sites := flag.Bool("sites", true, "record per-load-site misprediction attribution, served at /v1/runs/{id}/sites")
	maxSites := flag.Int("max-sites", 0, "per-load-site profile site bound per run (0: default 1024)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request timeout for synchronous calls")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace period for draining work")
	matrixDir := flag.String("matrix-dir", "", "directory persisting matrix sweep state for resume after restart (empty: in-memory only)")
	matrixWorkers := flag.Int("matrix-shard-workers", 0, "concurrent shards per dispatch target during matrix sweeps (0: default 2)")
	peers := flag.String("peers", "", "comma-separated peer base URLs (e.g. http://10.0.0.2:8080) forming the dispatch ring")
	self := flag.String("self", "", "this daemon's name in the dispatch ring; peers should use the same string as its URL (empty: \"local\")")
	hedgeAfter := flag.Duration("hedge-after", 0, "launch a hedged copy of a straggling job on the next backend after this delay (0: disabled)")
	healthInterval := flag.Duration("health-interval", dispatch.DefaultHealthInterval, "peer health probe cadence")
	logFormat := flag.String("log-format", "json", "log output format: json or text")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	debugAddr := flag.String("debug-addr", "", "admin listen address for pprof + runtime metrics (empty: disabled)")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()

	if *showVersion {
		bi := server.ReadBuildInfo()
		fmt.Printf("dlvpd %s %s", bi.Version, bi.GoVersion)
		if bi.Revision != "" {
			fmt.Printf(" %s", bi.Revision)
			if bi.Modified {
				fmt.Print("+dirty")
			}
		}
		fmt.Println()
		return
	}

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		// The logger itself is misconfigured, so plain stderr is all we have.
		os.Stderr.WriteString(err.Error() + "\n")
		os.Exit(2)
	}
	ob := obs.NewObserver(logger)

	eng := runner.New(runner.Options{
		Workers:      *workers,
		CacheEntries: *cache,
		Obs:          ob,
		TraceCache:   tracecache.New(*traceCacheBytes),
		Checkpoints:  checkpoint.NewStore(*checkpointBytes),
		Timeline: runner.TimelineOptions{
			Enabled:        *timelineInterval > 0,
			IntervalInstrs: *timelineInterval,
			Capacity:       *timelineCapacity,
		},
		Sites: runner.SiteOptions{
			Enabled:  *sites,
			MaxSites: *maxSites,
		},
	})

	var peerBackends []dispatch.Backend
	for _, raw := range strings.Split(*peers, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		b, err := dispatch.NewHTTPBackend(raw, dispatch.HTTPOptions{Timeout: *timeout})
		if err != nil {
			logger.Error("invalid -peers entry", "peer", raw, "error", err)
			os.Exit(2)
		}
		peerBackends = append(peerBackends, b)
	}
	disp, err := dispatch.New(dispatch.Options{
		Local:          dispatch.NewLocalBackend(*self, eng),
		Peers:          peerBackends,
		HedgeAfter:     *hedgeAfter,
		HealthInterval: *healthInterval,
		Obs:            ob,
	})
	if err != nil {
		logger.Error("dispatcher construction failed", "error", err)
		os.Exit(2)
	}
	defer disp.Close()

	var matrixStore *matrix.Store
	if *matrixDir != "" {
		matrixStore, err = matrix.NewStore(*matrixDir)
		if err != nil {
			logger.Error("matrix store unavailable", "dir", *matrixDir, "error", err)
			os.Exit(2)
		}
	}
	orch := matrix.New(matrix.Options{
		Cluster:          disp,
		Store:            matrixStore,
		Obs:              ob,
		WorkersPerTarget: *matrixWorkers,
	})
	if matrixStore != nil {
		resumed, err := orch.Resume()
		if err != nil {
			logger.Warn("matrix resume incomplete", "dir", *matrixDir, "error", err)
		}
		if resumed > 0 {
			logger.Info("resumed interrupted matrices", "count", resumed, "dir", *matrixDir)
		}
	}

	srv := server.New(server.Options{Runner: eng, Dispatcher: disp, Matrix: orch, RequestTimeout: *timeout, Obs: ob})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           obs.AdminMux(ob.Metrics),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "error", err)
			}
		}()
		logger.Info("debug listener up", "addr", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("dlvpd listening", "addr", *addr, "workers", eng.Stats().Workers,
		"peers", disp.Peers(), "hedge_after", hedgeAfter.String())

	select {
	case err := <-errc:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately

	// Flip /healthz to 503 first so load balancers drop the instance, then
	// close listeners and drain.
	srv.BeginShutdown()
	logger.Info("shutting down", "grace", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("http shutdown incomplete", "error", err)
	}
	if err := srv.Drain(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("drain incomplete", "error", err)
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(shutdownCtx)
	}
	// Stopping the orchestrator before srv.Close persists interrupted
	// matrices as resumable (still "running" on disk) rather than
	// cancelled; -matrix-dir picks them up on the next boot.
	orch.Close()
	srv.Close()
	logger.Info("dlvpd stopped")
}
