// Command tracedump captures workload traces to the binary trace format and
// inspects them.
//
// Usage:
//
//	tracedump -capture -workload perlbmk -instrs 100000 -o perlbmk.trace
//	tracedump -dump perlbmk.trace | head
//	tracedump -info perlbmk.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"dlvp/internal/isa"
	"dlvp/internal/trace"
	"dlvp/internal/workloads"
)

func main() {
	capture := flag.Bool("capture", false, "capture a workload trace")
	workload := flag.String("workload", "perlbmk", "workload to capture")
	instrs := flag.Uint64("instrs", 100_000, "dynamic instruction budget")
	out := flag.String("o", "out.trace", "output file for -capture")
	dump := flag.String("dump", "", "trace file to print as text")
	info := flag.String("info", "", "trace file to summarise")
	limit := flag.Int("n", 0, "max records to dump (0 = all)")
	flag.Parse()

	switch {
	case *capture:
		if err := doCapture(*workload, *instrs, *out); err != nil {
			fatal(err)
		}
	case *dump != "":
		if err := doDump(*dump, *limit); err != nil {
			fatal(err)
		}
	case *info != "":
		if err := doInfo(*info); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracedump:", err)
	os.Exit(1)
}

func doCapture(name string, instrs uint64, out string) error {
	w, ok := workloads.ByName(name)
	if !ok {
		return fmt.Errorf("unknown workload %q", name)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	tw, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	r := w.Reader(instrs)
	var rec trace.Rec
	var n uint64
	for r.Next(&rec) {
		if err := tw.Write(&rec); err != nil {
			return err
		}
		n++
	}
	if err := tw.Close(); err != nil {
		return err
	}
	fmt.Printf("captured %d records of %s to %s\n", n, name, out)
	return nil
}

func openTrace(path string) (*trace.FileReader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := trace.NewFileReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

func doDump(path string, limit int) error {
	r, f, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var rec trace.Rec
	n := 0
	for r.Next(&rec) {
		line := fmt.Sprintf("%8d  %08x  %-8s", rec.Seq, rec.PC, rec.Op)
		switch {
		case rec.IsLoad():
			line += fmt.Sprintf("  addr=%#x bytes=%d val=%#x", rec.Addr, rec.Bytes, rec.Vals[0])
		case rec.IsStore():
			line += fmt.Sprintf("  addr=%#x bytes=%d data=%#x", rec.Addr, rec.Bytes, rec.Vals[0])
		case rec.Op.IsBranch():
			line += fmt.Sprintf("  taken=%v target=%#x", rec.Taken, rec.Target)
		}
		fmt.Println(line)
		n++
		if limit > 0 && n >= limit {
			break
		}
	}
	return r.Err()
}

func doInfo(path string) error {
	r, f, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var rec trace.Rec
	var total, loads, stores, branches, taken, multi uint64
	opCounts := make(map[isa.Op]uint64)
	for r.Next(&rec) {
		total++
		opCounts[rec.Op]++
		switch {
		case rec.IsLoad():
			loads++
			if rec.NDst > 1 {
				multi++
			}
		case rec.IsStore():
			stores++
		case rec.Op.IsBranch():
			branches++
			if rec.Taken {
				taken++
			}
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("records   %d\n", total)
	fmt.Printf("loads     %d (%.1f%%), %d multi-destination\n", loads, pct(loads, total), multi)
	fmt.Printf("stores    %d (%.1f%%)\n", stores, pct(stores, total))
	fmt.Printf("branches  %d (%.1f%%), %.1f%% taken\n", branches, pct(branches, total), pct(taken, branches))
	return nil
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
