package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dlvp/internal/siteprof"
)

// siteFixture builds a two-site profile: a hot store-conflicting load and
// a quieter APT-missing one.
func siteFixture(workload, scheme string, conflictCorrect uint64) *siteprof.Profile {
	c := siteprof.NewCollector(8, workload, scheme)
	for i := uint64(0); i < conflictCorrect; i++ {
		c.Record(0x400, siteprof.Event{Cause: siteprof.CauseCorrect, Probed: true, ProbeHit: true})
	}
	for i := 0; i < 40; i++ {
		c.Record(0x400, siteprof.Event{Cause: siteprof.CauseStoreConflict, FlushCycles: 9, Probed: true, ProbeHit: true})
	}
	for i := 0; i < 30; i++ {
		c.Record(0x420, siteprof.Event{Cause: siteprof.CauseAPTMiss})
	}
	c.Record(0x420, siteprof.Event{Cause: siteprof.CauseCorrect})
	return c.Finish(50_000)
}

func writeSiteFixture(t *testing.T, p *siteprof.Profile) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), p.Scheme+"-sites.json")
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRenderSites(t *testing.T) {
	p := siteFixture("gcc", "dlvp", 60)
	out := renderSites(p)
	for _, want := range []string{
		"sites  gcc (dlvp), 2 tracked of max 8, 50000 instrs",
		"0x400",
		"0x420",
		"store_conflict",
		"apt_miss",
		"breakdown",
		"total:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sites output missing %q\n%s", want, out)
		}
	}
	// The hot mispredicting site ranks first.
	if strings.Index(out, "0x400") > strings.Index(out, "0x420") {
		t.Error("sites not ranked mispredicts-first")
	}
}

func TestRenderSitesEmpty(t *testing.T) {
	out := renderSites(&siteprof.Profile{Workload: "w", Scheme: "s", MaxSites: 4})
	if !strings.Contains(out, "no eligible loads recorded") {
		t.Errorf("empty profile output:\n%s", out)
	}
}

func TestCauseBar(t *testing.T) {
	var c siteprof.Counts
	if got := causeBar(c, 10); got != strings.Repeat(" ", 10) {
		t.Errorf("empty bar = %q", got)
	}
	c.Causes[siteprof.CauseCorrect] = 70
	c.Causes[siteprof.CauseStoreConflict] = 29
	c.Causes[siteprof.CauseAPTMiss] = 1
	c.Eligible = 100
	bar := causeBar(c, 20)
	if len(bar) != 20 {
		t.Fatalf("bar length = %d, want 20", len(bar))
	}
	// Dominant cause fills most cells; the rare cause still gets one.
	if strings.Count(bar, "#") < 10 || !strings.Contains(bar, "S") || !strings.Contains(bar, "m") {
		t.Errorf("bar = %q, want #-dominated with S and m present", bar)
	}
}

func TestRenderSitesDiff(t *testing.T) {
	a := siteFixture("gcc", "dlvp", 60)  // 0x400: 60% accuracy
	b := siteFixture("gcc", "vtage", 20) // 0x400: 33% accuracy
	out := renderSitesDiff(a, b)
	for _, want := range []string{
		"sites diff  A: gcc (dlvp)",
		"largest accuracy regression: pc 0x400",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q\n%s", want, out)
		}
	}
	// No regression in the improving direction.
	if out := renderSitesDiff(b, a); !strings.Contains(out, "no per-site accuracy regression") {
		t.Errorf("reverse diff should report no regression:\n%s", out)
	}
}

func TestLoadSiteProfile(t *testing.T) {
	p := siteFixture("gcc", "dlvp", 10)
	path := writeSiteFixture(t, p)
	back, err := loadSiteProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload != "gcc" || len(back.Sites) != len(p.Sites) {
		t.Errorf("loaded profile = %q/%d sites", back.Workload, len(back.Sites))
	}
	if _, err := loadSiteProfile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file load succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if _, err := loadSiteProfile(bad); err == nil || !strings.Contains(err.Error(), "decode site profile") {
		t.Errorf("bad JSON err = %v", err)
	}
}
