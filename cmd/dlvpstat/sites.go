package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"dlvp/internal/siteprof"
	"dlvp/internal/tabletext"
)

// sitesShowLimit caps the ranked table; the profile is already ordered
// worst-first, so the tail adds noise, not insight.
const sitesShowLimit = 25

// loadSiteProfile reads a site-attribution profile JSON file ("-" for
// stdin): the wire shape of GET /v1/runs/{id}/sites or dlvpsim -sites.
func loadSiteProfile(path string) (*siteprof.Profile, error) {
	f := os.Stdin
	if path != "-" {
		var err error
		f, err = os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
	}
	var p siteprof.Profile
	if err := json.NewDecoder(f).Decode(&p); err != nil {
		return nil, fmt.Errorf("%s: decode site profile: %w", path, err)
	}
	return &p, nil
}

// causeGlyphs maps each cause to the character filling its share of a
// site's breakdown bar, in taxonomy order: correct is solid, mispredict
// causes are upper-case letters, no-prediction causes lower-case.
var causeGlyphs = [siteprof.NumCauses]byte{
	'#', // correct
	'S', // store_conflict
	'A', // addr_mispredict
	'T', // tag_alias
	'V', // value_wrong
	'm', // apt_miss
	'c', // confidence_dropped
	'l', // lscd_filtered
	'p', // paq_drop
	'.', // unpredicted
}

// causeBar renders a width-character bar whose segments are proportional
// to the site's cause mix. Every non-zero cause gets at least one cell so
// rare-but-present causes stay visible; the largest share absorbs the
// rounding remainder.
func causeBar(c siteprof.Counts, width int) string {
	if c.Eligible == 0 {
		return strings.Repeat(" ", width)
	}
	cells := make([]int, siteprof.NumCauses)
	used, biggest := 0, 0
	for i, n := range c.Causes {
		if n == 0 {
			continue
		}
		w := int(uint64(width) * n / c.Eligible)
		if w == 0 {
			w = 1
		}
		cells[i] = w
		used += w
		if c.Causes[i] > c.Causes[biggest] || cells[biggest] == 0 {
			biggest = i
		}
	}
	// Fit to width: the dominant cause gives or takes the remainder.
	cells[biggest] += width - used
	if cells[biggest] < 1 {
		cells[biggest] = 1
	}
	var b strings.Builder
	for i, w := range cells {
		for k := 0; k < w && b.Len() < width; k++ {
			b.WriteByte(causeGlyphs[i])
		}
	}
	for b.Len() < width {
		b.WriteByte(' ')
	}
	return b.String()[:width]
}

// renderSites renders one profile: header, the ranked per-site table with
// cause-breakdown bars, and the overflow/total reconciliation line.
func renderSites(p *siteprof.Profile) string {
	out := fmt.Sprintf("sites  %s (%s), %d tracked of max %d, %d instrs",
		p.Workload, p.Scheme, len(p.Sites), p.MaxSites, p.Instructions)
	if p.EvictedSites > 0 {
		out += fmt.Sprintf(", %d evicted into overflow", p.EvictedSites)
	}
	if p.Partial {
		out += ", partial"
	}
	out += "\n"
	if len(p.Sites) == 0 && p.Overflow.Eligible == 0 {
		return out + "no eligible loads recorded\n"
	}
	out += "bar: #=correct S=store-conflict A=addr-mispredict T=tag-alias V=value-wrong\n" +
		"     m=apt-miss c=low-confidence l=lscd-filtered p=paq-drop .=unpredicted\n\n"

	t := &tabletext.Table{
		Header: []string{"rank", "pc", "eligible", "cov%", "acc%", "mispred",
			"top cause", "conflict%", "flush-cyc/ki", "breakdown"},
	}
	shown := len(p.Sites)
	if shown > sitesShowLimit {
		shown = sitesShowLimit
	}
	for i := 0; i < shown; i++ {
		s := p.Sites[i]
		top := "-"
		if cause, n, ok := s.TopCause(); ok {
			top = fmt.Sprintf("%s (%d)", cause, n)
		}
		t.AddRow(
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("0x%x", s.PC),
			fmt.Sprintf("%d", s.Eligible),
			s.Coverage(), s.Accuracy(),
			fmt.Sprintf("%d", s.Mispredicts()),
			top,
			s.ConflictShare(),
			fmt.Sprintf("%.2f", s.FlushCyclesPerKiloInstr(p.Instructions)),
			causeBar(s.Counts, 20),
		)
	}
	out += t.String()
	if len(p.Sites) > shown {
		out += fmt.Sprintf("... %d more tracked sites not shown\n", len(p.Sites)-shown)
	}
	if p.Overflow.Eligible > 0 {
		out += fmt.Sprintf("overflow bucket: %d eligible, %d mispredicts across %d evicted sites\n",
			p.Overflow.Eligible, p.Overflow.Mispredicts(), p.EvictedSites)
	}
	tot := p.Totals()
	out += fmt.Sprintf("total: %d eligible, %.2f%% coverage, %.2f%% accuracy, %d est. flush cycles\n",
		tot.Eligible, tot.Coverage(), tot.Accuracy(), tot.FlushCycles)
	return out
}

// renderSitesDiff compares two profiles site-by-site and flags the shared
// site with the largest accuracy regression from A to B.
func renderSitesDiff(a, b *siteprof.Profile) string {
	out := fmt.Sprintf("sites diff  A: %s (%s), %d sites  vs  B: %s (%s), %d sites\n",
		a.Workload, a.Scheme, len(a.Sites), b.Workload, b.Scheme, len(b.Sites))
	rows := siteprof.Diff(a, b)
	if len(rows) == 0 {
		return out + "no shared sites\n"
	}

	t := &tabletext.Table{
		Header: []string{"pc", "elig A", "elig B", "acc% A", "acc% B", "dacc",
			"conflict% A", "conflict% B", ""},
	}
	worst, regressed := siteprof.LargestAccuracyRegression(a, b)
	shown := len(rows)
	if shown > sitesShowLimit {
		shown = sitesShowLimit
	}
	for _, row := range rows[:shown] {
		mark := ""
		if regressed && row.PC == worst.PC {
			mark = "<-- largest accuracy regression"
		}
		t.AddRow(
			fmt.Sprintf("0x%x", row.PC),
			fmt.Sprintf("%d", row.A.Eligible), fmt.Sprintf("%d", row.B.Eligible),
			row.A.Accuracy(), row.B.Accuracy(),
			fmt.Sprintf("%+.2f", row.AccuracyDelta),
			row.A.ConflictShare(), row.B.ConflictShare(),
			mark,
		)
	}
	out += t.String()
	if len(rows) > shown {
		out += fmt.Sprintf("... %d more shared sites not shown\n", len(rows)-shown)
	}
	if regressed {
		out += fmt.Sprintf("largest accuracy regression: pc 0x%x, %.2f%% -> %.2f%% (%+.2f pts)\n",
			worst.PC, worst.A.Accuracy(), worst.B.Accuracy(), worst.AccuracyDelta)
	} else {
		out += "no per-site accuracy regression between the runs\n"
	}
	return out
}
