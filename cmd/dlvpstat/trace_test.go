package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"dlvp/internal/obs"
)

func testAssembled() *traceDoc {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	local := []obs.Span{
		{Name: "http.request", SpanID: "aaaaaaaaaaaaaaaa", Start: t0, DurationMS: 100},
		{Name: "dispatch.route", SpanID: "bbbbbbbbbbbbbbbb", ParentID: "aaaaaaaaaaaaaaaa", Start: t0.Add(time.Millisecond), DurationMS: 98},
		{Name: "dispatch.attempt", SpanID: "cccccccccccccccc", ParentID: "bbbbbbbbbbbbbbbb", Start: t0.Add(2 * time.Millisecond), DurationMS: 95},
		{Name: "dispatch.hedge_loser", SpanID: "dddddddddddddddd", ParentID: "bbbbbbbbbbbbbbbb", Marker: obs.MarkerHedgeLoser, Start: t0.Add(50 * time.Millisecond)},
	}
	peer := []obs.Span{
		{Name: "http.request", SpanID: "eeeeeeeeeeeeeeee", ParentID: "cccccccccccccccc", Start: t0.Add(5 * time.Millisecond), DurationMS: 90},
		{Name: "runner.run", SpanID: "ffffffffffffffff", ParentID: "eeeeeeeeeeeeeeee", Start: t0.Add(6 * time.Millisecond), DurationMS: 88},
		{Name: "runner.queue", SpanID: "1111111111111111", ParentID: "ffffffffffffffff", Start: t0.Add(6 * time.Millisecond), DurationMS: 10},
		{Name: "runner.execute", SpanID: "2222222222222222", ParentID: "ffffffffffffffff", Start: t0.Add(16 * time.Millisecond), DurationMS: 78,
			Attrs: map[string]string{"workload": "linpack"}},
	}
	doc := &traceDoc{ID: "trace-1", Cluster: true, Instances: []string{"local", "http://peer:8080"}}
	doc.Assembled = obs.Assemble([]obs.InstanceSpans{
		{Instance: "local", Spans: local},
		{Instance: "http://peer:8080", Spans: peer},
	})
	return doc
}

// TestRenderTraceWaterfall: the waterfall nests the peer subtree under the
// dispatch attempt, shows markers, and splits exclusive time by segment.
func TestRenderTraceWaterfall(t *testing.T) {
	out := renderTrace(testAssembled())

	if !strings.Contains(out, "trace  trace-1: 8 spans across 2 instances") {
		t.Errorf("header wrong:\n%s", out)
	}
	for _, want := range []string{
		"[hedge loser]",
		"runner.execute",
		"http://peer:8080",
		"linpack",
		"queue-wait",
		"sim",
		"network",
		"time split (exclusive):",
		"instances:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Depth: the peer's runner.execute sits four levels under the root
	// (route > attempt > http.request > runner.run > execute = indent 10).
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "runner.execute") && strings.HasPrefix(line, strings.Repeat("  ", 5)) {
			found = true
		}
	}
	if !found {
		t.Errorf("runner.execute not nested under the remote subtree:\n%s", out)
	}
	// Queue wait is exclusive: exactly the 10ms runner.queue span.
	if !strings.Contains(out, "queue-wait     10.00ms") {
		t.Errorf("queue-wait split wrong:\n%s", out)
	}
}

// TestDecodeTraceDocFallback: a plain single-node /v1/traces/{id} payload
// (flat span list, no tree) is assembled locally so saved traces render.
func TestDecodeTraceDocFallback(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	view := obs.TraceView{ID: "flat-1", Spans: []obs.Span{
		{Name: "http.request", SpanID: "aaaaaaaaaaaaaaaa", Start: t0, DurationMS: 5},
		{Name: "http.encode", SpanID: "bbbbbbbbbbbbbbbb", ParentID: "aaaaaaaaaaaaaaaa", Start: t0, DurationMS: 1},
	}}
	data, _ := json.Marshal(view)
	doc, err := decodeTraceDoc("test", strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.ID != "flat-1" || doc.Spans != 2 || len(doc.Roots) != 1 {
		t.Fatalf("fallback decode: %+v", doc)
	}
	if doc.Roots[0].Children[0].Name != "http.encode" {
		t.Fatal("parent link lost in fallback assembly")
	}

	if _, err := decodeTraceDoc("bad", strings.NewReader(`{"nope":1}`)); err == nil {
		t.Fatal("garbage accepted as a trace payload")
	}
}
