package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dlvp/internal/matrix"
	"dlvp/internal/tabletext"
)

func matrixFixture() *matrix.View {
	created := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	return &matrix.View{
		ID:        "abc123",
		Status:    matrix.StatusRunning,
		Workloads: 3,
		Schemes:   []string{"baseline", "dlvp"},
		Instrs:    50_000_000,
		Created:   created,
		Shards: []matrix.ShardView{
			{ID: 0, Workload: "linpack", Cells: 2, State: matrix.ShardDone,
				Assigned: "peer-a", Owner: "peer-a", Attempts: 1, CacheHits: 1, ElapsedMS: 120},
			{ID: 1, Workload: "soplex", Cells: 2, State: matrix.ShardDone,
				Assigned: "peer-a", Owner: "local", Stolen: true, Attempts: 1, ElapsedMS: 340},
			{ID: 2, Workload: "milc", Cells: 2, State: matrix.ShardRunning,
				Assigned: "peer-a", Owner: "peer-a", Attempts: 1},
		},
		Counts:     matrix.Counts{Running: 1, Done: 2},
		CellsDone:  4,
		CellsTotal: 6,
		CacheHits:  1,
		Stolen:     1,
		Targets:    []string{"local", "peer-a"},
		Tables: []*tabletext.Table{{
			Title:  "IPC by scheme",
			Header: []string{"workload", "baseline", "dlvp"},
			Rows:   [][]string{{"linpack", "0.50", "0.61"}},
			Notes:  []string{"partial: 4/6 cells aggregated"},
		}},
	}
}

func TestRenderMatrix(t *testing.T) {
	out := renderMatrix(matrixFixture())
	for _, want := range []string{
		"matrix  abc123  running  3 workloads x 2 schemes (baseline,dlvp), 50000000 instrs",
		"cells 4/6 done, 1 cache hits, 1 shards stolen",
		"[##>]", // progress strip in shard order
		"stolen",
		"busy time per target",
		"IPC by scheme",
		"partial: 4/6 cells aggregated",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix output missing %q\n%s", want, out)
		}
	}
}

func TestRenderMatrixJSONProvenance(t *testing.T) {
	out, err := renderMatrixJSON(matrixFixture())
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID     string            `json:"id"`
		Shards []shardProvenance `json:"shards"`
	}
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if got.ID != "abc123" || len(got.Shards) != 3 {
		t.Fatalf("provenance = %+v", got)
	}
	stolen := got.Shards[1]
	if stolen.Assigned != "peer-a" || stolen.Owner != "local" || !stolen.Stolen {
		t.Errorf("stolen shard provenance = %+v", stolen)
	}
	if got.Shards[0].CacheHits != 1 || got.Shards[0].ElapsedMS != 120 {
		t.Errorf("shard 0 provenance = %+v", got.Shards[0])
	}
}

func TestLoadMatrixView(t *testing.T) {
	v := matrixFixture()
	path := filepath.Join(t.TempDir(), "view.json")
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadMatrixView(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != v.ID || len(got.Shards) != 3 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := loadMatrixView(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file did not error")
	}
}
