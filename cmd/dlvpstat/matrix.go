package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"dlvp/internal/matrix"
	"dlvp/internal/tabletext"
)

// loadMatrixView reads a matrix status payload — the wire shape of GET
// /v1/matrices/{id} — from a file, stdin ("-"), or directly from a
// daemon when the argument is an http(s) URL.
func loadMatrixView(src string) (*matrix.View, error) {
	var r io.Reader
	switch {
	case src == "-":
		r = os.Stdin
	case strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://"):
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return nil, fmt.Errorf("%s: %s: %s", src, resp.Status, strings.TrimSpace(string(body)))
		}
		r = resp.Body
	default:
		f, err := os.Open(src)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var v matrix.View
	if err := json.NewDecoder(io.LimitReader(r, 64<<20)).Decode(&v); err != nil {
		return nil, fmt.Errorf("%s: decode matrix view: %w", src, err)
	}
	return &v, nil
}

// shardProvenance is the -json output row: where a shard actually ran
// and how much of it was served from content-addressed caches.
type shardProvenance struct {
	ID        int     `json:"id"`
	Workload  string  `json:"workload"`
	State     string  `json:"state"`
	Assigned  string  `json:"assigned"`
	Owner     string  `json:"owner,omitempty"`
	Stolen    bool    `json:"stolen,omitempty"`
	Restored  bool    `json:"restored,omitempty"`
	Attempts  int     `json:"attempts"`
	Cells     int     `json:"cells"`
	CacheHits int     `json:"cache_hits"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Error     string  `json:"error,omitempty"`
}

// renderMatrixJSON emits machine-readable shard provenance for scripts:
// the matrix identity plus one row per shard.
func renderMatrixJSON(v *matrix.View) (string, error) {
	shards := make([]shardProvenance, 0, len(v.Shards))
	for _, s := range v.Shards {
		shards = append(shards, shardProvenance{
			ID:        s.ID,
			Workload:  s.Workload,
			State:     s.State,
			Assigned:  s.Assigned,
			Owner:     s.Owner,
			Stolen:    s.Stolen,
			Restored:  s.Restored,
			Attempts:  s.Attempts,
			Cells:     s.Cells,
			CacheHits: s.CacheHits,
			ElapsedMS: s.ElapsedMS,
			Error:     s.Error,
		})
	}
	out, err := json.MarshalIndent(map[string]any{
		"id":          v.ID,
		"status":      v.Status,
		"schemes":     v.Schemes,
		"instrs":      v.Instrs,
		"cells_done":  v.CellsDone,
		"cells_total": v.CellsTotal,
		"cache_hits":  v.CacheHits,
		"stolen":      v.Stolen,
		"resumed":     v.Resumed,
		"elapsed_ms":  v.ElapsedMS,
		"targets":     v.Targets,
		"shards":      shards,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// shardGlyph is the one-character progress mark for a shard state.
func shardGlyph(state string) string {
	switch state {
	case matrix.ShardDone:
		return "#"
	case matrix.ShardRunning:
		return ">"
	case matrix.ShardCancelled:
		return "x"
	case matrix.ShardFailed:
		return "!"
	default:
		return "."
	}
}

// renderMatrix renders one matrix view: header, a progress strip of shard
// states in shard order, the per-shard provenance table, a per-target
// load chart, and the current (partial or final) result tables.
func renderMatrix(v *matrix.View) string {
	out := fmt.Sprintf("matrix  %s  %s  %d workloads x %d schemes (%s), %d instrs",
		v.ID, v.Status, v.Workloads, len(v.Schemes), strings.Join(v.Schemes, ","), v.Instrs)
	if v.Sampled {
		out += ", sampled"
	}
	if v.Resumed {
		out += fmt.Sprintf(", resumed (%d cells restored)", v.Restored)
	}
	out += "\n"
	out += fmt.Sprintf("cells %d/%d done, %d cache hits, %d shards stolen, %.0f ms elapsed\n",
		v.CellsDone, v.CellsTotal, v.CacheHits, v.Stolen, v.ElapsedMS)
	if v.Error != "" {
		out += "error: " + v.Error + "\n"
	}
	if len(v.Shards) == 0 {
		return out + "no shards\n"
	}

	marks := make([]string, len(v.Shards))
	for i, s := range v.Shards {
		marks[i] = shardGlyph(s.State)
	}
	out += fmt.Sprintf("shards  [%s]  (#=done >=running .=pending x=cancelled !=failed)\n\n",
		strings.Join(marks, ""))

	t := &tabletext.Table{
		Header: []string{"shard", "workload", "state", "assigned", "owner", "flags",
			"attempts", "cells", "cache", "ms"},
	}
	perOwner := map[string]float64{}
	for _, s := range v.Shards {
		var flags []string
		if s.Stolen {
			flags = append(flags, "stolen")
		}
		if s.Restored {
			flags = append(flags, "restored")
		}
		if s.Error != "" {
			flags = append(flags, "err: "+s.Error)
		}
		owner := s.Owner
		if owner == "" {
			owner = "-"
		}
		t.AddRow(
			fmt.Sprintf("%d", s.ID), s.Workload, s.State, s.Assigned, owner,
			strings.Join(flags, ","),
			fmt.Sprintf("%d", s.Attempts),
			fmt.Sprintf("%d", s.Cells),
			fmt.Sprintf("%d", s.CacheHits),
			fmt.Sprintf("%.0f", s.ElapsedMS),
		)
		if s.Owner != "" && s.State == matrix.ShardDone {
			perOwner[s.Owner] += s.ElapsedMS
		}
	}
	out += t.String()

	if len(perOwner) > 1 {
		chart := &tabletext.Chart{Title: "busy time per target", Unit: " ms"}
		owners := make([]string, 0, len(perOwner))
		for o := range perOwner {
			owners = append(owners, o)
		}
		sort.Strings(owners)
		for _, o := range owners {
			chart.Add(o, perOwner[o])
		}
		out += "\n" + chart.String()
	}

	for _, tbl := range v.Tables {
		out += "\n" + tbl.String()
	}
	return out
}
