package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dlvp/internal/timeline"
)

// fixture builds a timeline whose per-interval accuracy follows accs (in
// percent, with 100 predictions per interval).
func fixture(workload, scheme string, accs []float64) *timeline.Timeline {
	r := timeline.NewRecorder(10_000, 0)
	var cum timeline.Counters
	for _, acc := range accs {
		cum.Instructions += 10_000
		cum.Cycles += 20_000
		cum.Loads += 3_000
		cum.VPEligible += 200
		cum.VPPredicted += 100
		cum.VPCorrect += uint64(acc)
		cum.APTLookups += 300
		cum.APTHits += 250
		cum.Probes += 100
		cum.ProbeHits += 80
		cum.L1DAccesses += 3_000
		cum.L1DMisses += 150
		r.Sample(cum, 12)
	}
	return r.Finish(cum, 0, workload, scheme)
}

func writeFixture(t *testing.T, tl *timeline.Timeline) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), tl.Scheme+".json")
	data, err := json.Marshal(tl)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRenderShow(t *testing.T) {
	tl := fixture("gcc", "dlvp", []float64{90, 92, 91, 93})
	out := renderShow(tl)
	for _, want := range []string{
		"timeline  gcc (dlvp), 4 samples, interval 10000 instrs",
		"IPC",
		"VP accuracy %",
		"paq-peak",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("show output missing %q\n%s", want, out)
		}
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Error("show output has no sparkline glyphs")
	}
}

func TestRenderShowEmpty(t *testing.T) {
	out := renderShow(&timeline.Timeline{Workload: "gcc", Scheme: "dlvp", IntervalInstrs: 100})
	if !strings.Contains(out, "no samples recorded") {
		t.Errorf("empty show output = %q", out)
	}
}

// diff must pinpoint the interval where an injected mid-run accuracy
// regression bottomed out.
func TestRenderDiffFlagsInjectedRegression(t *testing.T) {
	base := fixture("gcc", "dlvp", []float64{90, 90, 90, 90, 90, 90})
	// Run B regresses mid-run: interval 3 is the deepest drop.
	regressed := fixture("gcc", "dlvp-conflict", []float64{90, 90, 82, 55, 84, 90})
	out := renderDiff(base, regressed)
	if !strings.Contains(out, "largest accuracy regression: interval 3 (instrs 30000-40000)") {
		t.Errorf("diff did not pinpoint interval 3:\n%s", out)
	}
	if !strings.Contains(out, "90.00% -> 55.00% (-35.00 pts)") {
		t.Errorf("diff did not report the regression magnitude:\n%s", out)
	}
	if !strings.Contains(out, "<-- largest accuracy regression") {
		t.Errorf("diff table does not mark the regressed row:\n%s", out)
	}
}

func TestRenderDiffNoRegression(t *testing.T) {
	a := fixture("gcc", "dlvp", []float64{80, 80})
	b := fixture("gcc", "dlvp", []float64{85, 90})
	if out := renderDiff(a, b); !strings.Contains(out, "no accuracy regression") {
		t.Errorf("improvement misreported:\n%s", out)
	}
}

func TestLoadTimeline(t *testing.T) {
	tl := fixture("mcf", "dlvp", []float64{88, 91})
	path := writeFixture(t, tl)
	got, err := loadTimeline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != "mcf" || len(got.Samples) != 2 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := loadTimeline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file did not error")
	}
}
