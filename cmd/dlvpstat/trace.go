package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"dlvp/internal/obs"
)

// traceDoc is the GET /v1/traces/{id}?cluster=1 payload: the assembled
// cross-process tree plus which instances contributed and which could not
// be scraped.
type traceDoc struct {
	ID        string   `json:"id"`
	Cluster   bool     `json:"cluster"`
	Instances []string `json:"instances"`
	Degraded  []struct {
		Instance string `json:"instance"`
		Error    string `json:"error"`
	} `json:"degraded"`
	obs.Assembled
}

// loadTraceDoc resolves the trace argument: a saved payload ("-" for
// stdin, or a file path), a full URL, or a bare trace ID resolved against
// -server. Daemon URLs get ?cluster=1 appended when no query is present,
// so `dlvpstat trace <id>` always renders the assembled cluster view.
func loadTraceDoc(src, server string) (*traceDoc, error) {
	switch {
	case src == "-":
		return decodeTraceDoc(src, os.Stdin)
	case strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://"):
		if !strings.Contains(src, "?") {
			src += "?cluster=1"
		}
		return fetchTraceDoc(src)
	default:
		if f, err := os.Open(src); err == nil {
			defer f.Close()
			return decodeTraceDoc(src, f)
		}
		if server == "" {
			return nil, fmt.Errorf("%s: not a file; pass -server to resolve it as a trace ID", src)
		}
		u := strings.TrimSuffix(server, "/") + "/v1/traces/" + url.PathEscape(src) + "?cluster=1"
		return fetchTraceDoc(u)
	}
}

func fetchTraceDoc(rawURL string) (*traceDoc, error) {
	resp, err := http.Get(rawURL)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: %s: %s", rawURL, resp.Status, strings.TrimSpace(string(body)))
	}
	return decodeTraceDoc(rawURL, resp.Body)
}

// decodeTraceDoc decodes an assembled cluster payload, falling back to a
// plain single-node GET /v1/traces/{id} payload (whose flat span list is
// assembled locally) so saved pre-federation traces still render.
func decodeTraceDoc(src string, r io.Reader) (*traceDoc, error) {
	data, err := io.ReadAll(io.LimitReader(r, 64<<20))
	if err != nil {
		return nil, err
	}
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err == nil && len(doc.Roots) > 0 {
		return &doc, nil
	}
	var view obs.TraceView
	if err := json.Unmarshal(data, &view); err != nil || len(view.Spans) == 0 {
		return nil, fmt.Errorf("%s: not a trace payload (expected ?cluster=1 tree or /v1/traces/{id} spans)", src)
	}
	doc = traceDoc{ID: view.ID}
	doc.Assembled = obs.Assemble([]obs.InstanceSpans{{Instance: "local", Spans: view.Spans}})
	doc.Instances = []string{"local"}
	return &doc, nil
}

// segment buckets for the waterfall summary. Each span contributes its
// exclusive time (duration minus its children's) to exactly one bucket.
const (
	segQueue   = "queue-wait"
	segSim     = "sim"
	segNetwork = "network"
	segSteal   = "steal"
	segOther   = "other"
)

// classifySpan maps one span to its waterfall segment. Queue wait is the
// runner's admission wait; sim is engine execution (detailed, capture,
// replay, sampled); network is dispatcher routing and remote attempts;
// steal is shard work that ran via work-stealing on a non-assigned target.
func classifySpan(n *obs.TreeNode) string {
	switch {
	case n.Name == "runner.queue":
		return segQueue
	case n.Marker == obs.MarkerStolen:
		return segSteal
	case strings.HasPrefix(n.Name, "runner."):
		return segSim
	case strings.HasPrefix(n.Name, "dispatch."):
		return segNetwork
	default:
		return segOther
	}
}

// exclusiveMS is a span's self time: its duration minus the portion its
// children cover (clamped at zero; remote clocks can disagree).
func exclusiveMS(n *obs.TreeNode) float64 {
	child := 0.0
	for _, c := range n.Children {
		child += c.DurationMS
	}
	if child > n.DurationMS {
		return 0
	}
	return n.DurationMS - child
}

// markerTag renders a span's marker for the waterfall line.
func markerTag(marker string) string {
	switch marker {
	case obs.MarkerHedgeLoser:
		return " [hedge loser]"
	case obs.MarkerRetry:
		return " [retry]"
	case obs.MarkerStolen:
		return " [stolen]"
	case "":
		return ""
	default:
		return " [" + marker + "]"
	}
}

const waterfallWidth = 40

// renderTrace renders the distributed waterfall: one line per span,
// indented by tree depth, with a bar positioned on the shared time axis,
// followed by the per-segment time split and per-instance contribution.
func renderTrace(doc *traceDoc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace  %s: %d spans", doc.ID, doc.Spans)
	if len(doc.Instances) > 0 {
		fmt.Fprintf(&b, " across %d instances", len(doc.Instances))
	}
	fmt.Fprintf(&b, ", %.2fms", doc.DurationMS)
	if doc.Orphans > 0 {
		fmt.Fprintf(&b, " (%d orphaned spans promoted to roots)", doc.Orphans)
	}
	b.WriteByte('\n')
	for _, d := range doc.Degraded {
		fmt.Fprintf(&b, "degraded: %s: %s\n", d.Instance, d.Error)
	}
	if doc.Spans == 0 {
		return b.String() + "no spans recorded\n"
	}
	b.WriteByte('\n')

	total := doc.DurationMS
	if total <= 0 {
		total = 1
	}
	segs := map[string]float64{}
	type line struct {
		bar, label, detail string
	}
	var lines []line
	var walk func(n *obs.TreeNode, depth int)
	walk = func(n *obs.TreeNode, depth int) {
		segs[classifySpan(n)] += exclusiveMS(n)
		off := n.Start.Sub(doc.Start)
		startCol := int(float64(off) / float64(time.Millisecond) / total * waterfallWidth)
		barW := int(n.DurationMS / total * float64(waterfallWidth))
		if startCol > waterfallWidth-1 {
			startCol = waterfallWidth - 1
		}
		if barW < 1 {
			barW = 1
		}
		if startCol+barW > waterfallWidth {
			barW = waterfallWidth - startCol
		}
		bar := strings.Repeat(" ", startCol) + strings.Repeat("=", barW) +
			strings.Repeat(" ", waterfallWidth-startCol-barW)
		label := strings.Repeat("  ", depth) + n.Name + markerTag(n.Marker)
		detail := fmt.Sprintf("%8.2fms  %s", n.DurationMS, n.Instance)
		if wl := n.Attrs["workload"]; wl != "" {
			detail += "  " + wl
		}
		lines = append(lines, line{bar, label, detail})
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range doc.Roots {
		walk(r, 0)
	}

	labelW := 0
	for _, l := range lines {
		if len(l.label) > labelW {
			labelW = len(l.label)
		}
	}
	for _, l := range lines {
		fmt.Fprintf(&b, "%-*s |%s| %s\n", labelW, l.label, l.bar, l.detail)
	}

	b.WriteByte('\n')
	b.WriteString("time split (exclusive):\n")
	totalSeg := 0.0
	for _, v := range segs {
		totalSeg += v
	}
	for _, name := range []string{segQueue, segSim, segNetwork, segSteal, segOther} {
		v, ok := segs[name]
		if !ok {
			continue
		}
		pct := 0.0
		if totalSeg > 0 {
			pct = v / totalSeg * 100
		}
		fmt.Fprintf(&b, "  %-10s %9.2fms  %5.1f%%\n", name, v, pct)
	}

	if len(doc.Instances) > 1 {
		counts := map[string]int{}
		var count func(n *obs.TreeNode)
		count = func(n *obs.TreeNode) {
			counts[n.Instance]++
			for _, c := range n.Children {
				count(c)
			}
		}
		for _, r := range doc.Roots {
			count(r)
		}
		names := make([]string, 0, len(counts))
		for name := range counts {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("instances:\n")
		for _, name := range names {
			fmt.Fprintf(&b, "  %-40s %d spans\n", name, counts[name])
		}
	}
	return b.String()
}
