// Command dlvpstat inspects simulation flight-recorder timelines: the
// interval time-series of predictor/pipeline state recorded by the runner
// engine (see internal/timeline) and exported by dlvpsim -timeline or
// GET /v1/runs/{id}/timeline.
//
// Usage:
//
//	dlvpstat show run.json            per-interval table + metric sparklines
//	dlvpstat diff a.json b.json       align two runs interval-by-interval
//	dlvpstat sites profile.json       ranked per-load-site cause breakdown
//	dlvpstat sites diff a.json b.json per-site accuracy regression between runs
//	dlvpstat matrix [-json] view.json distributed sweep: per-shard progress
//	dlvpstat trace -server URL id     distributed trace waterfall across the cluster
//
// show renders one run's phase behaviour: a sparkline per headline metric
// (IPC, VP coverage/accuracy, APT hit rate, probe hit rate, L1D miss rate)
// followed by the per-interval column view. diff compares two runs aligned
// by interval position and flags the interval where run B's value-prediction
// accuracy fell furthest below run A's — the store-conflict regression view.
// sites reads a per-load-site attribution profile (internal/siteprof, from
// dlvpsim -sites or GET /v1/runs/{id}/sites) and ranks static loads by
// misprediction count with a cause-breakdown bar per site; sites diff flags
// the shared site whose accuracy regressed most between two runs. matrix
// renders a distributed sweep's status (a saved GET /v1/matrices/{id}
// payload, stdin, or a live daemon URL): shard progress strip, per-shard
// provenance (assigned vs owning target, steals, restores, cache hits),
// per-target busy time, and the current result tables; -json emits the
// shard provenance machine-readably for scripts.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"dlvp/internal/tabletext"
	"dlvp/internal/timeline"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "show":
		if len(os.Args) != 3 {
			usage()
			os.Exit(2)
		}
		tl, err := loadTimeline(os.Args[2])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(renderShow(tl))
	case "diff":
		if len(os.Args) != 4 {
			usage()
			os.Exit(2)
		}
		a, err := loadTimeline(os.Args[2])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		b, err := loadTimeline(os.Args[3])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(renderDiff(a, b))
	case "matrix":
		args := os.Args[2:]
		asJSON := false
		if len(args) > 0 && args[0] == "-json" {
			asJSON = true
			args = args[1:]
		}
		if len(args) != 1 {
			usage()
			os.Exit(2)
		}
		v, err := loadMatrixView(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if asJSON {
			out, err := renderMatrixJSON(v)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(out)
		} else {
			fmt.Print(renderMatrix(v))
		}
	case "trace":
		args := os.Args[2:]
		server := ""
		if len(args) >= 2 && args[0] == "-server" {
			server = args[1]
			args = args[2:]
		}
		if len(args) != 1 {
			usage()
			os.Exit(2)
		}
		doc, err := loadTraceDoc(args[0], server)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(renderTrace(doc))
	case "sites":
		switch {
		case len(os.Args) == 3:
			p, err := loadSiteProfile(os.Args[2])
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(renderSites(p))
		case len(os.Args) == 5 && os.Args[2] == "diff":
			a, err := loadSiteProfile(os.Args[3])
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			b, err := loadSiteProfile(os.Args[4])
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(renderSitesDiff(a, b))
		default:
			usage()
			os.Exit(2)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dlvpstat show <timeline.json>
       dlvpstat diff <a.json> <b.json>
       dlvpstat sites <profile.json>
       dlvpstat sites diff <a.json> <b.json>
       dlvpstat matrix [-json] <view.json | matrix URL>
       dlvpstat trace [-server URL] <trace ID | trace.json | trace URL>`)
}

// loadTimeline reads a timeline JSON file ("-" for stdin).
func loadTimeline(path string) (*timeline.Timeline, error) {
	f := os.Stdin
	if path != "-" {
		var err error
		f, err = os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
	}
	var tl timeline.Timeline
	if err := json.NewDecoder(f).Decode(&tl); err != nil {
		return nil, fmt.Errorf("%s: decode timeline: %w", path, err)
	}
	return &tl, nil
}

// sparkMetrics are the headline series rendered as sparklines by show.
var sparkMetrics = []struct {
	name  string
	value func(timeline.Sample) float64
}{
	{"IPC", timeline.Sample.IPC},
	{"VP coverage %", timeline.Sample.Coverage},
	{"VP accuracy %", timeline.Sample.Accuracy},
	{"APT hit %", timeline.Sample.APTHitRate},
	{"probe hit %", timeline.Sample.ProbeHitRate},
	{"L1D miss %", timeline.Sample.L1DMissRate},
}

// renderShow renders one timeline: header, metric sparklines, and the
// per-interval column view.
func renderShow(tl *timeline.Timeline) string {
	out := fmt.Sprintf("timeline  %s (%s), %d samples, interval %d instrs",
		tl.Workload, tl.Scheme, len(tl.Samples), tl.IntervalInstrs)
	if tl.Merges > 0 {
		out += fmt.Sprintf(", downsampled x%d", 1<<tl.Merges)
	}
	if tl.Partial {
		out += ", partial"
	}
	out += "\n"
	if len(tl.Samples) == 0 {
		return out + "no samples recorded\n"
	}

	nameW := 0
	for _, m := range sparkMetrics {
		if len(m.name) > nameW {
			nameW = len(m.name)
		}
	}
	for _, m := range sparkMetrics {
		vals := make([]float64, len(tl.Samples))
		for i, s := range tl.Samples {
			vals[i] = m.value(s)
		}
		out += fmt.Sprintf("%-*s  %s  (last %.2f)\n", nameW, m.name, tabletext.Spark(vals), vals[len(vals)-1])
	}

	t := &tabletext.Table{
		Header: []string{"interval", "instrs", "IPC", "cov%", "acc%", "apt%", "conflict%",
			"alias%", "paq-peak", "drop%", "lscd+", "probe%", "l1d-miss%"},
	}
	for _, s := range tl.Samples {
		t.AddRow(
			fmt.Sprintf("%d", s.Index),
			fmt.Sprintf("%d-%d", s.StartInstr, s.EndInstr),
			fmt.Sprintf("%.3f", s.IPC()),
			s.Coverage(), s.Accuracy(), s.APTHitRate(), s.APTConflictRate(), s.APTAliasRate(),
			s.PAQPeak, s.PAQDropRate(),
			fmt.Sprintf("%d", s.Delta.LSCDInserts),
			s.ProbeHitRate(), s.L1DMissRate(),
		)
	}
	return out + "\n" + t.String()
}

// renderDiff renders the interval-by-interval comparison of two runs and
// flags the interval of run B's largest accuracy regression versus run A.
func renderDiff(a, b *timeline.Timeline) string {
	out := fmt.Sprintf("diff  A: %s (%s), %d samples  vs  B: %s (%s), %d samples\n",
		a.Workload, a.Scheme, len(a.Samples), b.Workload, b.Scheme, len(b.Samples))
	rows := timeline.Diff(a, b)
	if len(rows) == 0 {
		return out + "no aligned intervals\n"
	}
	if len(a.Samples) != len(b.Samples) {
		out += fmt.Sprintf("note: sample counts differ; comparing the first %d aligned intervals\n", len(rows))
	}

	accDelta := make([]float64, len(rows))
	ipcDelta := make([]float64, len(rows))
	for i, row := range rows {
		accDelta[i] = row.AccuracyDelta
		ipcDelta[i] = row.IPCDelta
	}
	out += fmt.Sprintf("accuracy B-A  %s\n", tabletext.Spark(accDelta))
	out += fmt.Sprintf("IPC      B-A  %s\n", tabletext.Spark(ipcDelta))

	t := &tabletext.Table{
		Header: []string{"interval", "instrs", "IPC A", "IPC B", "dIPC", "acc% A", "acc% B", "dacc", ""},
	}
	worst, regressed := timeline.LargestAccuracyRegression(a, b)
	for _, row := range rows {
		mark := ""
		if regressed && row.Index == worst.Index {
			mark = "<-- largest accuracy regression"
		}
		t.AddRow(
			fmt.Sprintf("%d", row.Index),
			fmt.Sprintf("%d-%d", row.StartInstr, row.EndInstr),
			fmt.Sprintf("%.3f", row.IPCA), fmt.Sprintf("%.3f", row.IPCB),
			fmt.Sprintf("%+.3f", row.IPCDelta),
			row.AccuracyA, row.AccuracyB,
			fmt.Sprintf("%+.2f", row.AccuracyDelta),
			mark,
		)
	}
	out += "\n" + t.String()
	if regressed {
		out += fmt.Sprintf("largest accuracy regression: interval %d (instrs %d-%d), %.2f%% -> %.2f%% (%+.2f pts)\n",
			worst.Index, worst.StartInstr, worst.EndInstr, worst.AccuracyA, worst.AccuracyB, worst.AccuracyDelta)
	} else {
		out += "no accuracy regression: run B matches or beats run A in every aligned interval\n"
	}
	return out
}
