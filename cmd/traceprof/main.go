// Command traceprof streams workloads through the paper's trace profilers:
// the Figure 1 load-store conflict characterisation and the Figure 2
// address/value repeatability breakdown.
//
// Usage:
//
//	traceprof -workload perlbmk -instrs 500000
//	traceprof -all
package main

import (
	"flag"
	"fmt"
	"os"

	"dlvp/internal/trace"
	"dlvp/internal/workloads"
)

func main() {
	name := flag.String("workload", "", "single workload to profile")
	all := flag.Bool("all", false, "profile every workload")
	instrs := flag.Uint64("instrs", 300_000, "dynamic instruction budget")
	flag.Parse()

	var pool []workloads.Workload
	switch {
	case *all:
		pool = workloads.All()
	case *name != "":
		w, ok := workloads.ByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *name)
			os.Exit(2)
		}
		pool = []workloads.Workload{w}
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("%-12s %10s %8s %8s %8s | addr>=8 val>=64 (%% of loads)\n",
		"workload", "loads", "commit%", "infl%", "chg%")
	for _, w := range pool {
		conf := trace.NewConflictProfiler(64)
		rep := trace.NewRepeatProfiler()
		r := w.Reader(*instrs)
		var rec trace.Rec
		for r.Next(&rec) {
			conf.Observe(&rec)
			rep.Observe(&rec)
		}
		cs := conf.Stats()
		rs := rep.Stats()
		fmt.Printf("%-12s %10d %8.2f %8.2f %8.2f | %6.1f %7.1f\n",
			w.Name, cs.Loads, cs.CommittedPct, cs.InFlightPct, cs.ChangedPct,
			rs.AddrCumPct[3], rs.ValueCumPct[6])
	}
}
