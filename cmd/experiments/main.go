// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run fig6] [-instrs 300000] [-workloads perlbmk,gcc] [-serial]
//
// Without -run, every experiment is regenerated in paper order. Experiment
// ids: fig1 fig2 tab1 tab2 tab3 tab4 fig4 fig5 fig6 fig7 fig8 fig9 fig10.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dlvp/internal/experiments"
	"dlvp/internal/tabletext"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	instrs := flag.Uint64("instrs", 300_000, "dynamic instructions per workload")
	wl := flag.String("workloads", "", "comma-separated workload subset (default: all)")
	serial := flag.Bool("serial", false, "disable parallel simulation")
	charts := flag.Bool("charts", false, "also render per-workload tables as ASCII bar charts")
	flag.Parse()

	p := experiments.DefaultParams()
	p.Instrs = *instrs
	p.Parallel = !*serial
	if *wl != "" {
		p.Workloads = strings.Split(*wl, ",")
	}

	var selected []experiments.Experiment
	if *run == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known ids:\n", id)
				for _, e := range experiments.All() {
					fmt.Fprintf(os.Stderr, "  %-6s %s\n", e.ID, e.Name)
				}
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		tables := e.Run(p)
		fmt.Printf("### %s  [%s, %d instrs/workload, %v]\n\n", e.ID, e.Name, p.Instrs, time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			fmt.Println(t.String())
			if *charts && len(t.Header) > 1 && t.Header[0] == "workload" {
				// One chart per numeric series column.
				for col := 1; col < len(t.Header); col++ {
					c := tabletext.ChartFromColumn(t, col, t.Title+" — "+t.Header[col], "")
					if len(c.Bars) > 0 {
						fmt.Println(c.String())
					}
				}
			}
		}
	}
}
