// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-run fig6] [-instrs 300000] [-workloads perlbmk,gcc] [-serial]
//	            [-trace-cache-bytes 536870912] [-json]
//
// Without -run, every experiment is regenerated in paper order. Experiment
// ids: fig1 fig2 tab1 tab2 tab3 tab4 fig4 fig5 fig6 fig7 fig8 fig9 fig10.
// With -json, each experiment is emitted as the same machine-readable
// payload the dlvpd HTTP daemon serves from /v1/experiments/{id}.
//
// All simulation flows through internal/runner, so experiments that share
// configurations (every figure re-simulates the Table 4 baseline) reuse
// each other's runs via the content-addressed result cache.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dlvp/internal/experiments"
	"dlvp/internal/runner"
	"dlvp/internal/tabletext"
	"dlvp/internal/tracecache"
	"dlvp/internal/workloads"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	instrs := flag.Uint64("instrs", 300_000, "dynamic instructions per workload")
	wl := flag.String("workloads", "", "comma-separated workload subset (default: all)")
	serial := flag.Bool("serial", false, "disable parallel simulation")
	traceCacheBytes := flag.Int64("trace-cache-bytes", 512<<20, "byte budget for captured emulation traces replayed across configs (0: disabled)")
	charts := flag.Bool("charts", false, "also render per-workload tables as ASCII bar charts")
	asJSON := flag.Bool("json", false, "emit machine-readable artifacts (the dlvpd wire shape)")
	sampleIntervals := flag.Int("sample-intervals", 0, "run every matrix job as a checkpointed sampled simulation with this many intervals (0: full detailed runs)")
	sampleWarmup := flag.Uint64("sample-warmup", 0, "per-interval detailed warm-up instructions before measurement (0: stride/16)")
	sampleBudget := flag.Uint64("sample-budget", 0, "per-interval measured instructions (0: stride/8)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *instrs == 0 {
		fmt.Fprintln(os.Stderr, "-instrs must be positive: a zero-instruction budget simulates nothing")
		os.Exit(2)
	}

	p := experiments.DefaultParams()
	p.Instrs = *instrs
	p.Parallel = !*serial
	p.Ctx = ctx
	if *sampleIntervals != 0 || *sampleWarmup != 0 || *sampleBudget != 0 {
		p.Sampling = &runner.SamplingSpec{
			Intervals:      *sampleIntervals,
			WarmupInstrs:   *sampleWarmup,
			MeasuredInstrs: *sampleBudget,
		}
		if _, err := p.Sampling.Normalize(p.Instrs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	// Every experiment sweeps configurations over the same workloads, so
	// the trace cache collapses their emulation cost to once per workload.
	tc := tracecache.New(*traceCacheBytes)
	p.Runner = runner.New(runner.Options{TraceCache: tc})
	defer func() {
		s := tc.Stats()
		if s.Captures+s.Bypasses > 0 {
			fmt.Fprintf(os.Stderr, "trace cache: %d emulations, %d replays (%.0f%% hit), %d MiB resident\n",
				s.Emulations, s.Replays+s.Follows, 100*s.HitRatio(), s.ResidentBytes>>20)
		}
	}()
	if *wl != "" {
		p.Workloads = strings.Split(*wl, ",")
		for _, name := range p.Workloads {
			if _, ok := workloads.ByName(name); !ok {
				fmt.Fprintf(os.Stderr, "unknown workload %q; known workloads:\n", name)
				for _, w := range workloads.All() {
					fmt.Fprintf(os.Stderr, "  %-12s [%-7s] %s\n", w.Name, w.Suite, w.Description)
				}
				os.Exit(2)
			}
		}
	}

	var selected []experiments.Experiment
	if *run == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known ids:\n", id)
				for _, e := range experiments.All() {
					fmt.Fprintf(os.Stderr, "  %-6s %s\n", e.ID, e.Name)
				}
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		for _, e := range selected {
			artifact, err := e.RunArtifact(p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
			if err := enc.Encode(artifact); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	for _, e := range selected {
		start := time.Now()
		tables, err := e.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("### %s  [%s, %d instrs/workload, %v]\n\n", e.ID, e.Name, p.Instrs, time.Since(start).Round(time.Millisecond))
		for _, t := range tables {
			fmt.Println(t.String())
			if *charts && len(t.Header) > 1 && t.Header[0] == "workload" {
				// One chart per numeric series column.
				for col := 1; col < len(t.Header); col++ {
					c := tabletext.ChartFromColumn(t, col, t.Title+" — "+t.Header[col], "")
					if len(c.Bars) > 0 {
						fmt.Println(c.String())
					}
				}
			}
		}
	}
}
