package dlvp

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"dlvp/internal/trace"
	"dlvp/internal/uarch"
)

// benchRecord is the committed core-throughput trajectory (BENCH_9.json).
// measured_instrs_per_sec is the best-of-N rate observed on the machine
// that produced the file (informational — see the README perf table);
// reference_instrs_per_sec is the gate reference: a conservative floor of
// the measurement band, chosen so cross-machine and load variance (±30%
// observed) cannot trip the gate but an algorithmic regression — e.g.
// reintroducing an O(window) walk on the issue path, which costs 2-3× —
// still lands far below it.
type benchRecord struct {
	Schema   string `json:"schema"`
	Note     string `json:"note"`
	Workload string `json:"workload"`
	Instrs   uint64 `json:"instrs"`
	Entries  map[string]struct {
		Measured  float64 `json:"measured_instrs_per_sec"`
		Reference float64 `json:"reference_instrs_per_sec"`
	} `json:"entries"`
}

// measureThroughput replays the pre-captured trace `runs` times through a
// fresh core on a shared arena and returns committed instructions per
// wall-clock second — the same measure BenchmarkCoreThroughput reports.
func measureThroughput(cfg CoreConfig, name string, instrs uint64, runs int) float64 {
	w, ok := WorkloadByName(name)
	if !ok {
		panic("workload not registered: " + name)
	}
	prog := w.Build()
	recs := trace.Collect(w.Reader(instrs), 0)
	arena := uarch.NewArena()
	var committed uint64
	start := time.Now()
	for i := 0; i < runs; i++ {
		core := uarch.NewAtArena(cfg, prog, &trace.SliceReader{Recs: recs}, nil, arena)
		committed += core.Run(0).Instructions
	}
	return float64(committed) / time.Since(start).Seconds()
}

// TestCoreThroughputGate is the CI regression gate for the rewritten core:
// with DLVP_BENCH_GATE=1 it measures simulated-instructions/sec (best of
// three trials, to ride out transient load) and fails when any configuration
// lands more than 10% below its committed reference in BENCH_9.json.
func TestCoreThroughputGate(t *testing.T) {
	if os.Getenv("DLVP_BENCH_GATE") != "1" {
		t.Skip("set DLVP_BENCH_GATE=1 to run the throughput gate")
	}
	raw, err := os.ReadFile("BENCH_9.json")
	if err != nil {
		t.Fatalf("reading committed trajectory: %v", err)
	}
	var ref benchRecord
	if err := json.Unmarshal(raw, &ref); err != nil {
		t.Fatalf("parsing BENCH_9.json: %v", err)
	}
	cfgs := map[string]CoreConfig{"baseline": Baseline(), "dlvp": DLVP()}
	for name, entry := range ref.Entries {
		cfg, ok := cfgs[name]
		if !ok {
			t.Errorf("BENCH_9.json entry %q has no matching configuration", name)
			continue
		}
		const trials, runs = 3, 8
		var best float64
		for i := 0; i < trials; i++ {
			if r := measureThroughput(cfg, ref.Workload, ref.Instrs, runs); r > best {
				best = r
			}
		}
		floor := entry.Reference * 0.9
		t.Logf("%s: %.0f instrs/sec (reference %.0f, gate floor %.0f)", name, best, entry.Reference, floor)
		if best < floor {
			t.Errorf("%s throughput %.0f instrs/sec regressed >10%% below the committed reference %.0f",
				name, best, entry.Reference)
		}
	}
}
