// Golden-stats harness: the bit-identity gate for the simulator core.
//
// TestGoldenStats runs every bundled workload under four representative
// schemes (baseline, DLVP, VTAGE, tournament) at a fixed instruction
// budget and compares the complete RunStats — every counter, rate and
// energy figure — byte-for-byte against the committed snapshot in
// testdata/golden_stats.json. A subset of workloads additionally runs
// with a sample window, the flight recorder and the per-site attribution
// collector enabled, and their timeline and siteprof artifacts are
// diffed the same way, so a core change that perturbs only sampled or
// profiled runs cannot slip through.
//
// Any intentional timing change (e.g. a documented modelling fix) must
// regenerate the snapshot with
//
//	go test -run TestGoldenStats -update-golden .
//
// and explain the resulting deltas in the commit that carries them.
package dlvp

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"testing"

	"dlvp/internal/config"
	"dlvp/internal/uarch"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_stats.json from the current core")

const (
	goldenFile   = "testdata/golden_stats.json"
	goldenInstrs = 6_000

	// Sampled-artifact parameters (applied to goldenSampledWorkloads):
	// 1k warm-up commits, 3k measured commits, 500-instr timeline
	// intervals, 32 tracked sites.
	goldenWarmup     = 1_000
	goldenMeasured   = 3_000
	goldenTLInterval = 500
	goldenTLCapacity = 64
	goldenMaxSites   = 32
)

// goldenSchemes are the four configurations the acceptance criteria name.
func goldenSchemes() map[string]config.Core {
	return map[string]config.Core{
		"baseline":   config.Baseline(),
		"dlvp":       config.DLVP(),
		"vtage":      config.VTAGE(),
		"tournament": config.Tournament(),
	}
}

// goldenSampledWorkloads get the timeline + siteprof + sample-window
// treatment (under DLVP, the scheme with the most machinery engaged).
var goldenSampledWorkloads = []string{"perlbmk", "mcf", "gap", "vortex", "twolf"}

// goldenCell is one (workload, scheme) snapshot. Stats is the complete
// RunStats; Timeline/Sites are the optional sampled artifacts.
type goldenCell struct {
	Stats    json.RawMessage `json:"stats"`
	Timeline json.RawMessage `json:"timeline,omitempty"`
	Sites    json.RawMessage `json:"sites,omitempty"`
	Measured json.RawMessage `json:"measured,omitempty"`
}

func goldenRun(t *testing.T, workload string, cfg config.Core) goldenCell {
	t.Helper()
	w, ok := WorkloadByName(workload)
	if !ok {
		t.Fatalf("workload %q not registered", workload)
	}
	core := uarch.New(cfg, w.Build(), w.Reader(goldenInstrs))
	stats := core.Run(0)
	raw, err := json.Marshal(stats)
	if err != nil {
		t.Fatalf("marshal stats: %v", err)
	}
	return goldenCell{Stats: raw}
}

func goldenSampledRun(t *testing.T, workload string, cfg config.Core) goldenCell {
	t.Helper()
	w, ok := WorkloadByName(workload)
	if !ok {
		t.Fatalf("workload %q not registered", workload)
	}
	core := uarch.New(cfg, w.Build(), w.Reader(goldenInstrs))
	core.SetSampleWindow(goldenWarmup, goldenMeasured)
	core.EnableTimeline(goldenTLInterval, goldenTLCapacity)
	core.EnableSiteProfile(goldenMaxSites)
	stats := core.Run(0)

	cell := goldenCell{}
	var err error
	if cell.Stats, err = json.Marshal(stats); err != nil {
		t.Fatalf("marshal stats: %v", err)
	}
	if tl := core.Timeline(); tl != nil {
		if cell.Timeline, err = json.Marshal(tl); err != nil {
			t.Fatalf("marshal timeline: %v", err)
		}
	}
	if sp := core.SiteProfile(); sp != nil {
		if cell.Sites, err = json.Marshal(sp); err != nil {
			t.Fatalf("marshal sites: %v", err)
		}
	}
	meas, complete := core.MeasuredCounters()
	if !complete {
		t.Fatalf("%s: sample window did not complete", workload)
	}
	if cell.Measured, err = json.Marshal(meas); err != nil {
		t.Fatalf("marshal measured: %v", err)
	}
	return cell
}

// buildGolden produces the full snapshot map: one cell per
// workload/scheme, plus workload/dlvp-sampled cells for the subset.
func buildGolden(t *testing.T) map[string]goldenCell {
	t.Helper()
	type job struct {
		key      string
		workload string
		cfg      config.Core
		sampled  bool
	}
	var jobs []job
	for name, cfg := range goldenSchemes() {
		for _, w := range Workloads() {
			jobs = append(jobs, job{key: w.Name + "/" + name, workload: w.Name, cfg: cfg})
		}
	}
	for _, wl := range goldenSampledWorkloads {
		jobs = append(jobs, job{key: wl + "/dlvp-sampled", workload: wl, cfg: config.DLVP(), sampled: true})
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].key < jobs[j].key })

	out := make(map[string]goldenCell, len(jobs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, jb := range jobs {
		wg.Add(1)
		go func(jb job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var cell goldenCell
			if jb.sampled {
				cell = goldenSampledRun(t, jb.workload, jb.cfg)
			} else {
				cell = goldenRun(t, jb.workload, jb.cfg)
			}
			mu.Lock()
			out[jb.key] = cell
			mu.Unlock()
		}(jb)
	}
	wg.Wait()
	return out
}

func encodeGolden(t *testing.T, cells map[string]goldenCell) []byte {
	t.Helper()
	buf, err := json.MarshalIndent(cells, "", "  ")
	if err != nil {
		t.Fatalf("marshal golden: %v", err)
	}
	return append(buf, '\n')
}

func TestGoldenStats(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is not short")
	}
	got := encodeGolden(t, buildGolden(t))

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenFile, len(got))
		return
	}

	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("read %s: %v (run `go test -run TestGoldenStats -update-golden .` to generate)", goldenFile, err)
	}
	if bytes.Equal(got, want) {
		return
	}

	// Report the exact cells that moved, field by field, so a regression
	// is diagnosable from the test log alone.
	var wantCells, gotCells map[string]goldenCell
	if err := json.Unmarshal(want, &wantCells); err != nil {
		t.Fatalf("decode committed golden: %v", err)
	}
	if err := json.Unmarshal(got, &gotCells); err != nil {
		t.Fatalf("decode fresh golden: %v", err)
	}
	var keys []string
	for k := range wantCells {
		keys = append(keys, k)
	}
	for k := range gotCells {
		if _, ok := wantCells[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	changed := 0
	for _, k := range keys {
		w, g := wantCells[k], gotCells[k]
		for _, part := range []struct {
			name      string
			want, got json.RawMessage
		}{
			{"stats", w.Stats, g.Stats},
			{"timeline", w.Timeline, g.Timeline},
			{"sites", w.Sites, g.Sites},
			{"measured", w.Measured, g.Measured},
		} {
			if bytes.Equal(part.want, part.got) {
				continue
			}
			changed++
			if changed <= 20 {
				t.Errorf("%s %s diverged:\n  want %s\n  got  %s",
					k, part.name, truncJSON(part.want), truncJSON(part.got))
			}
		}
	}
	t.Fatalf("golden stats diverged in %d artifact(s) across %d cells; "+
		"if intentional, regenerate with -update-golden and document the delta", changed, len(keys))
}

func truncJSON(raw json.RawMessage) string {
	s := string(raw)
	if len(s) > 400 {
		s = s[:400] + "..."
	}
	if s == "" {
		s = "<absent>"
	}
	return s
}

// TestGoldenHarnessDetectsDrift proves the harness actually bites: a
// perturbed copy of the snapshot must be flagged as divergent.
func TestGoldenHarnessDetectsDrift(t *testing.T) {
	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Skipf("no golden file yet: %v", err)
	}
	var cells map[string]goldenCell
	if err := json.Unmarshal(want, &cells); err != nil {
		t.Fatal(err)
	}
	if len(cells) < 43*4 {
		t.Fatalf("golden file has %d cells, want >= %d (43 workloads x 4 schemes)", len(cells), 43*4)
	}
	for k, cell := range cells {
		var stats map[string]any
		if err := json.Unmarshal(cell.Stats, &stats); err != nil {
			t.Fatalf("%s: stats not valid JSON: %v", k, err)
		}
		if stats["Cycles"] == nil || stats["Instructions"] == nil {
			t.Fatalf("%s: stats missing core counters: %s", k, truncJSON(cell.Stats))
		}
		break
	}
	// Flip one byte; the comparison path must notice.
	mutated := bytes.Replace(want, []byte(`"Cycles"`), []byte(`"CycleZ"`), 1)
	if bytes.Equal(mutated, want) {
		t.Fatal("mutation did not apply")
	}
	if fmt.Sprintf("%x", mutated) == fmt.Sprintf("%x", want) {
		t.Fatal("mutation invisible")
	}
}
