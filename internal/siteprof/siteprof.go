// Package siteprof is the per-load-site misprediction attribution layer:
// the answer to "which static loads mispredict, and why?". The uarch core
// classifies every statistics-eligible load at commit into a cause
// taxonomy — the outcome partition the paper's whole design argues about
// (store conflicts vs address mispredicts vs confidence filtering) — and
// feeds one Event per committed load into a Collector keyed by the load's
// static PC.
//
// Memory stays bounded at any workload size: the collector tracks at most
// MaxSites static PCs; when a new site arrives at capacity the
// least-observed tracked site is folded into a single Overflow bucket.
// Folding (rather than dropping) keeps the package's core invariant exact:
// the sum of per-site counters plus the overflow bucket always equals the
// run's aggregate coverage/accuracy counters, no matter how many sites were
// evicted. The tests and CI gate that reconciliation.
//
// The hot path is single-writer and lock-free: Record is called only by
// the simulating goroutine, and concurrent readers (the daemon's
// /v1/runs/{id}/sites endpoint while a job runs) see periodically
// published immutable snapshots through an atomic pointer.
package siteprof

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// Cause is the commit-time outcome classification of one eligible load.
// The first five causes are prediction outcomes (a value prediction was
// made, or suppressed by the oracle-replay model); the rest explain why no
// prediction was made. Together they partition every eligible load
// exactly once.
type Cause uint8

const (
	// CauseCorrect: predicted and the value matched at execute.
	CauseCorrect Cause = iota
	// CauseStoreConflict: the predicted address was correct but the value
	// had changed — the signature of a conflicting store (the paper's
	// Challenge #1, what the LSCD exists to filter).
	CauseStoreConflict
	// CauseAddrMispredict: the address predictor produced the wrong
	// address (changed access pattern, APT entry trained on another path).
	CauseAddrMispredict
	// CauseTagAlias: the APT entry was reallocated by another static load
	// between lookup and train — two sites aliasing one APT slot; the
	// predicted address belonged to the other load.
	CauseTagAlias
	// CauseValueWrong: a value-side (VTAGE/D-VTAGE) prediction missed;
	// no address context applies.
	CauseValueWrong
	// CauseAPTMiss: the address predictor was consulted and missed.
	CauseAPTMiss
	// CauseConfidenceDropped: the APT hit but its confidence counter was
	// not saturated, so no prediction was issued.
	CauseConfidenceDropped
	// CauseLSCDFiltered: the load's PC is blacklisted by the load-store
	// conflict detector; it neither predicts nor trains.
	CauseLSCDFiltered
	// CausePAQDrop: a confident address prediction was made but lost in
	// the pipeline — PAQ overflow, lifetime expiry, probe too late or
	// missing in the L1D, per-cycle install budget, or a full PVT.
	CausePAQDrop
	// CauseUnpredicted: no prediction was attempted — ordered load, fetch
	// group slot limit, or a value predictor with no confident entry.
	CauseUnpredicted

	// NumCauses is the taxonomy size; CauseCounts is indexed by Cause.
	NumCauses = int(CauseUnpredicted) + 1
)

// causeNames are the wire/exposition names, indexed by Cause.
var causeNames = [NumCauses]string{
	"correct", "store_conflict", "addr_mispredict", "tag_alias",
	"value_wrong", "apt_miss", "confidence_dropped", "lscd_filtered",
	"paq_drop", "unpredicted",
}

// String returns the cause's wire name.
func (c Cause) String() string {
	if int(c) < NumCauses {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Predicted reports whether the cause implies a prediction was made (and
// therefore counts toward coverage).
func (c Cause) Predicted() bool { return c <= CauseValueWrong }

// Mispredict reports whether the cause is a wrong prediction.
func (c Cause) Mispredict() bool { return c.Predicted() && c != CauseCorrect }

// CauseCounts holds one counter per Cause. It marshals as a JSON object
// keyed by cause name, omitting zero causes.
type CauseCounts [NumCauses]uint64

// MarshalJSON renders the non-zero causes as {"name": count, ...} in
// taxonomy order.
func (cc CauseCounts) MarshalJSON() ([]byte, error) {
	buf := []byte{'{'}
	first := true
	for i, n := range cc {
		if n == 0 {
			continue
		}
		if !first {
			buf = append(buf, ',')
		}
		first = false
		buf = append(buf, fmt.Sprintf("%q:%d", causeNames[i], n)...)
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON parses the object form written by MarshalJSON. Unknown
// cause names are rejected so version skew surfaces instead of silently
// dropping counts.
func (cc *CauseCounts) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*cc = CauseCounts{}
	for name, n := range m {
		found := false
		for i, known := range causeNames {
			if name == known {
				cc[i] = n
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("siteprof: unknown cause %q", name)
		}
	}
	return nil
}

// Event is one committed eligible load's classified outcome, as observed
// by the core at commit.
type Event struct {
	Cause Cause
	// FlushCycles is the estimated pipeline cost of this mispredict's
	// flush recovery (0 when the outcome caused no flush — correct,
	// unpredicted, oracle-suppressed, or selective replay).
	FlushCycles uint64
	// Replay marks a mispredict recovered by selective replay instead of
	// a flush.
	Replay bool
	// Probe outcome of the DLVP L1D probe issued for this load, if any.
	Probed   bool
	ProbeHit bool
	ProbeTLB bool
}

// Counts is the per-site counter block. Eligible/Predicted/Correct mirror
// the aggregate predictor.Stats accounting exactly (one Eligible per
// Event; Predicted/Correct derived from the cause), so per-site sums
// reconcile with the run's RunStats by construction.
type Counts struct {
	Eligible  uint64      `json:"eligible"`
	Predicted uint64      `json:"predicted"`
	Correct   uint64      `json:"correct"`
	Causes    CauseCounts `json:"causes"`

	// Recovery cost attribution.
	Flushes     uint64 `json:"flushes,omitempty"`
	Replays     uint64 `json:"replays,omitempty"`
	FlushCycles uint64 `json:"flush_cycles,omitempty"`

	// DLVP probe traffic attributed to this site's committed loads.
	Probes         uint64 `json:"probes,omitempty"`
	ProbeHits      uint64 `json:"probe_hits,omitempty"`
	ProbeTLBMisses uint64 `json:"probe_tlb_misses,omitempty"`
}

// apply folds one event into the counter block.
func (c *Counts) apply(ev Event) {
	c.Eligible++
	c.Causes[ev.Cause]++
	if ev.Cause.Predicted() {
		c.Predicted++
		if ev.Cause == CauseCorrect {
			c.Correct++
		}
	}
	if ev.FlushCycles > 0 {
		c.Flushes++
		c.FlushCycles += ev.FlushCycles
	}
	if ev.Replay {
		c.Replays++
	}
	if ev.Probed {
		c.Probes++
		if ev.ProbeHit {
			c.ProbeHits++
		}
		if ev.ProbeTLB {
			c.ProbeTLBMisses++
		}
	}
}

// add accumulates other into c (merging two sites or folding into
// overflow).
func (c *Counts) add(other Counts) {
	c.Eligible += other.Eligible
	c.Predicted += other.Predicted
	c.Correct += other.Correct
	for i := range c.Causes {
		c.Causes[i] += other.Causes[i]
	}
	c.Flushes += other.Flushes
	c.Replays += other.Replays
	c.FlushCycles += other.FlushCycles
	c.Probes += other.Probes
	c.ProbeHits += other.ProbeHits
	c.ProbeTLBMisses += other.ProbeTLBMisses
}

// Mispredicts returns wrong predictions (Predicted - Correct).
func (c Counts) Mispredicts() uint64 { return c.Predicted - c.Correct }

// pct returns 100*num/den, or 0 when den is zero (the package-wide
// zero-denominator guard; every rate helper routes through it).
func pct(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// Accuracy returns correct/predicted in percent (0 when never predicted).
func (c Counts) Accuracy() float64 { return pct(c.Correct, c.Predicted) }

// Coverage returns predicted/eligible in percent (0 when never eligible).
func (c Counts) Coverage() float64 { return pct(c.Predicted, c.Eligible) }

// ConflictShare returns the fraction of this site's mispredicts caused by
// store conflicts, in percent (0 when it never mispredicted).
func (c Counts) ConflictShare() float64 {
	return pct(c.Causes[CauseStoreConflict], c.Mispredicts())
}

// ProbeHitRate returns L1D probe hits per probe in percent (0 when never
// probed).
func (c Counts) ProbeHitRate() float64 { return pct(c.ProbeHits, c.Probes) }

// FlushCyclesPerKiloInstr returns the site's estimated flush-recovery cost
// in cycles per thousand committed instructions of the profiled region
// (0 when instrs is zero).
func (c Counts) FlushCyclesPerKiloInstr(instrs uint64) float64 {
	if instrs == 0 {
		return 0
	}
	return 1000 * float64(c.FlushCycles) / float64(instrs)
}

// TopCause returns the dominant non-correct cause and its count (false
// when every event was correct or the site is empty).
func (c Counts) TopCause() (Cause, uint64, bool) {
	best, bestN := CauseCorrect, uint64(0)
	for i := 1; i < NumCauses; i++ {
		if c.Causes[i] > bestN {
			best, bestN = Cause(i), c.Causes[i]
		}
	}
	return best, bestN, bestN > 0
}

// SiteReport is one static load site in the wire profile.
type SiteReport struct {
	PC uint64 `json:"pc"`
	Counts
}

// Profile is the finished (or snapshotted) attribution product of one run:
// the wire shape served by GET /v1/runs/{id}/sites and cached alongside
// the run's RunStats. Sites are ranked by mispredict count (the drill-down
// ordering), then eligibility, then PC.
type Profile struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	// Instructions is the committed-instruction span the profile covers
	// (the measured region only, for sampled runs) — the denominator of
	// FlushCyclesPerKiloInstr.
	Instructions uint64 `json:"instructions"`
	// MaxSites is the collector's site bound; EvictedSites counts sites
	// folded into Overflow to respect it.
	MaxSites     int `json:"max_sites"`
	EvictedSites int `json:"evicted_sites,omitempty"`
	// Partial marks a snapshot of a still-running collection.
	Partial bool         `json:"partial,omitempty"`
	Sites   []SiteReport `json:"sites"`
	// Overflow accumulates every event whose site is no longer tracked,
	// so Totals reconciles exactly with the run aggregates regardless of
	// eviction.
	Overflow Counts `json:"overflow"`
}

// Totals sums every tracked site plus the overflow bucket. The result's
// Eligible/Predicted/Correct equal the run's aggregate VP stats exactly
// (CI-gated).
func (p *Profile) Totals() Counts {
	var sum Counts
	for i := range p.Sites {
		sum.add(p.Sites[i].Counts)
	}
	sum.add(p.Overflow)
	return sum
}

// Site returns the report for pc, if tracked.
func (p *Profile) Site(pc uint64) (SiteReport, bool) {
	for _, s := range p.Sites {
		if s.PC == pc {
			return s, true
		}
	}
	return SiteReport{}, false
}

// rankSites orders reports by mispredicts desc, eligible desc, PC asc —
// deterministic, drill-down-first.
func rankSites(sites []SiteReport) {
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if am, bm := a.Mispredicts(), b.Mispredicts(); am != bm {
			return am > bm
		}
		if a.Eligible != b.Eligible {
			return a.Eligible > b.Eligible
		}
		return a.PC < b.PC
	})
}

// Merge combines per-interval profiles (the sampled-simulation path) into
// one, re-applying the site bound: if the union tracks more than maxSites
// sites, the least-observed are folded into the merged overflow.
// maxSites <= 0 selects DefaultMaxSites. Labels and Instructions sum from
// the inputs (first non-empty label wins). Merging nil or empty input
// yields an empty, valid profile.
func Merge(profiles []*Profile, maxSites int) *Profile {
	if maxSites <= 0 {
		maxSites = DefaultMaxSites
	}
	out := &Profile{MaxSites: maxSites}
	byPC := make(map[uint64]*Counts)
	var order []uint64
	for _, p := range profiles {
		if p == nil {
			continue
		}
		if out.Workload == "" {
			out.Workload = p.Workload
		}
		if out.Scheme == "" {
			out.Scheme = p.Scheme
		}
		out.Instructions += p.Instructions
		out.EvictedSites += p.EvictedSites
		out.Overflow.add(p.Overflow)
		for i := range p.Sites {
			s := &p.Sites[i]
			if c, ok := byPC[s.PC]; ok {
				c.add(s.Counts)
			} else {
				cc := s.Counts
				byPC[s.PC] = &cc
				order = append(order, s.PC)
			}
		}
	}
	sites := make([]SiteReport, 0, len(byPC))
	for _, pc := range order {
		sites = append(sites, SiteReport{PC: pc, Counts: *byPC[pc]})
	}
	rankSites(sites)
	if len(sites) > maxSites {
		// Fold the tail beyond the bound; rankSites put the least
		// interesting sites last.
		for _, s := range sites[maxSites:] {
			out.Overflow.add(s.Counts)
			out.EvictedSites++
		}
		sites = sites[:maxSites]
	}
	out.Sites = sites
	return out
}

// --- collection --------------------------------------------------------------

// DefaultMaxSites is the site bound when a caller passes 0. At ~200 bytes
// per site a collector costs ~200 KB regardless of workload size.
const DefaultMaxSites = 1024

// publishInterval is how many recorded events elapse between published
// snapshots (live reads see at most this much staleness; the final Finish
// snapshot is always exact).
const publishInterval = 1 << 16

// pcCacheSize is the direct-mapped (pc -> site) cache in front of the site
// map; a power of two. Commit streams are dominated by a few hot static
// loads, so nearly every Record hits here instead of the map.
const pcCacheSize = 256

type site struct {
	pc     uint64
	counts Counts
}

// Collector accumulates events during a run. Record and Finish are called
// only by the simulating goroutine; Snapshot may be called concurrently
// from any goroutine (it reads an atomically published immutable profile).
type Collector struct {
	workload string
	scheme   string
	maxSites int

	sites    map[uint64]*site
	overflow Counts
	evicted  int

	cacheTag  [pcCacheSize]uint64
	cacheSite [pcCacheSize]*site

	recorded  uint64
	instrs    uint64 // set by Finish
	done      bool
	final     *Profile
	published atomic.Pointer[Profile]
}

// NewCollector returns a collector bound to a run's labels, tracking at
// most maxSites static load sites (0 selects DefaultMaxSites).
func NewCollector(maxSites int, workload, scheme string) *Collector {
	if maxSites <= 0 {
		maxSites = DefaultMaxSites
	}
	c := &Collector{
		workload: workload,
		scheme:   scheme,
		maxSites: maxSites,
		sites:    make(map[uint64]*site, maxSites),
	}
	c.published.Store(c.buildProfile(true))
	return c
}

// MaxSites returns the site bound.
func (c *Collector) MaxSites() int { return c.maxSites }

// Record classifies one committed eligible load at static PC pc. Hot
// path: a direct-mapped cache probe, one counter block update, and a
// countdown to the next published snapshot.
func (c *Collector) Record(pc uint64, ev Event) {
	slot := (pc >> 2) & (pcCacheSize - 1)
	s := c.cacheSite[slot]
	if s == nil || c.cacheTag[slot] != pc {
		s = c.lookupSlow(pc)
		c.cacheSite[slot] = s
		c.cacheTag[slot] = pc
	}
	s.counts.apply(ev)
	c.recorded++
	if c.recorded%publishInterval == 0 {
		c.published.Store(c.buildProfile(true))
	}
}

// lookupSlow resolves pc to its site, admitting it (and evicting the
// least-observed tracked site into the overflow bucket when at capacity).
// Eviction is a linear scan, paid only when a previously unseen PC arrives
// at capacity — bounded by the number of distinct static loads, not by
// dynamic instruction count.
func (c *Collector) lookupSlow(pc uint64) *site {
	if s, ok := c.sites[pc]; ok {
		return s
	}
	if len(c.sites) >= c.maxSites {
		var victim *site
		for _, s := range c.sites {
			if victim == nil || s.counts.Eligible < victim.counts.Eligible {
				victim = s
			}
		}
		c.overflow.add(victim.counts)
		c.evicted++
		delete(c.sites, victim.pc)
		if slot := (victim.pc >> 2) & (pcCacheSize - 1); c.cacheSite[slot] == victim {
			c.cacheSite[slot] = nil
		}
	}
	s := &site{pc: pc}
	c.sites[pc] = s
	return s
}

// buildProfile materialises the current state into an immutable profile.
func (c *Collector) buildProfile(partial bool) *Profile {
	sites := make([]SiteReport, 0, len(c.sites))
	for _, s := range c.sites {
		sites = append(sites, SiteReport{PC: s.pc, Counts: s.counts})
	}
	rankSites(sites)
	return &Profile{
		Workload:     c.workload,
		Scheme:       c.scheme,
		Instructions: c.instrs,
		MaxSites:     c.maxSites,
		EvictedSites: c.evicted,
		Partial:      partial,
		Sites:        sites,
		Overflow:     c.overflow,
	}
}

// Finish freezes the collector into its final profile, covering instrs
// committed instructions. Calling Finish more than once returns the same
// profile.
func (c *Collector) Finish(instrs uint64) *Profile {
	if c.done {
		return c.final
	}
	c.instrs = instrs
	c.done = true
	c.final = c.buildProfile(false)
	c.published.Store(c.final)
	return c.final
}

// Snapshot returns the most recently published profile: the final one
// after Finish, otherwise a partial view at most publishInterval events
// stale. Safe to call concurrently with Record.
func (c *Collector) Snapshot() *Profile { return c.published.Load() }

// --- diffing -----------------------------------------------------------------

// SiteDiff compares one static load site across two runs.
type SiteDiff struct {
	PC uint64 `json:"pc"`
	A  Counts `json:"a"`
	B  Counts `json:"b"`
	// AccuracyDelta is B-A in percentage points (negative = regression).
	AccuracyDelta float64 `json:"accuracy_delta"`
}

// Diff aligns two profiles by PC over sites tracked in both, returning
// one row per shared site ordered by accuracy delta ascending (worst
// regression first).
func Diff(a, b *Profile) []SiteDiff {
	rows := make([]SiteDiff, 0, len(a.Sites))
	for _, sa := range a.Sites {
		sb, ok := b.Site(sa.PC)
		if !ok {
			continue
		}
		rows = append(rows, SiteDiff{
			PC:            sa.PC,
			A:             sa.Counts,
			B:             sb.Counts,
			AccuracyDelta: sb.Accuracy() - sa.Accuracy(),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].AccuracyDelta != rows[j].AccuracyDelta {
			return rows[i].AccuracyDelta < rows[j].AccuracyDelta
		}
		return rows[i].PC < rows[j].PC
	})
	return rows
}

// LargestAccuracyRegression returns the shared site where run B's
// prediction accuracy fell furthest below run A's, and false when no
// shared-and-predicted site regressed. Sites that run B never predicted
// are compared at 0% accuracy only if it made predictions there in run A's
// terms — i.e. both sides must have predicted at least once to count,
// keeping 0/0 sites out of the ranking.
func LargestAccuracyRegression(a, b *Profile) (SiteDiff, bool) {
	for _, row := range Diff(a, b) {
		if row.A.Predicted == 0 || row.B.Predicted == 0 {
			continue
		}
		if row.AccuracyDelta < 0 {
			return row, true
		}
	}
	return SiteDiff{}, false
}

// --- Prometheus exposition ---------------------------------------------------

// promCounters lists the per-site counter families exported by
// WritePrometheus.
var promCounters = []struct {
	name, help string
	value      func(Counts) uint64
}{
	{"dlvp_site_eligible_total", "Committed statistics-eligible loads at the site.",
		func(c Counts) uint64 { return c.Eligible }},
	{"dlvp_site_predicted_total", "Value predictions made for the site's loads.",
		func(c Counts) uint64 { return c.Predicted }},
	{"dlvp_site_correct_total", "Correct value predictions at the site.",
		func(c Counts) uint64 { return c.Correct }},
	{"dlvp_site_flush_cycles_total", "Estimated flush-recovery cycles attributed to the site.",
		func(c Counts) uint64 { return c.FlushCycles }},
}

// WritePrometheus renders the profile in the Prometheus text exposition
// format: per-site counter families labelled by hex PC, a per-cause
// breakdown family, and a per-site accuracy gauge. The overflow bucket is
// exported under pc="overflow" when non-empty so exposition sums match
// the run aggregates.
func WritePrometheus(w io.Writer, p *Profile) {
	type row struct {
		label string
		c     Counts
	}
	rows := make([]row, 0, len(p.Sites)+1)
	for _, s := range p.Sites {
		rows = append(rows, row{fmt.Sprintf("0x%x", s.PC), s.Counts})
	}
	if p.Overflow.Eligible > 0 {
		rows = append(rows, row{"overflow", p.Overflow})
	}
	for _, fam := range promCounters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", fam.name, fam.help, fam.name)
		for _, r := range rows {
			fmt.Fprintf(w, "%s{workload=%q,scheme=%q,pc=%q} %d\n",
				fam.name, p.Workload, p.Scheme, r.label, fam.value(r.c))
		}
	}
	fmt.Fprintf(w, "# HELP dlvp_site_cause_total Committed loads at the site by attributed cause.\n# TYPE dlvp_site_cause_total counter\n")
	for _, r := range rows {
		for i, n := range r.c.Causes {
			if n == 0 {
				continue
			}
			fmt.Fprintf(w, "dlvp_site_cause_total{workload=%q,scheme=%q,pc=%q,cause=%q} %d\n",
				p.Workload, p.Scheme, r.label, causeNames[i], n)
		}
	}
	fmt.Fprintf(w, "# HELP dlvp_site_accuracy_pct Prediction accuracy at the site (percent).\n# TYPE dlvp_site_accuracy_pct gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "dlvp_site_accuracy_pct{workload=%q,scheme=%q,pc=%q} %s\n",
			p.Workload, p.Scheme, r.label, formatFloat(r.c.Accuracy()))
	}
}

func formatFloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}
