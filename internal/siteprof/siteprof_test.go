package siteprof

import (
	"encoding/json"
	"strings"
	"testing"
)

// apply must derive Predicted/Correct from the cause so the per-site
// partition is exact by construction: one Eligible per event, Predicted
// iff the cause is a prediction outcome, Correct iff CauseCorrect.
func TestCountsApplyPartition(t *testing.T) {
	var c Counts
	for cause := Cause(0); int(cause) < NumCauses; cause++ {
		c.apply(Event{Cause: cause})
	}
	if c.Eligible != uint64(NumCauses) {
		t.Errorf("Eligible = %d, want %d", c.Eligible, NumCauses)
	}
	if c.Predicted != 5 { // correct + 4 mispredict causes
		t.Errorf("Predicted = %d, want 5", c.Predicted)
	}
	if c.Correct != 1 {
		t.Errorf("Correct = %d, want 1", c.Correct)
	}
	var causeSum uint64
	for _, n := range c.Causes {
		causeSum += n
	}
	if causeSum != c.Eligible {
		t.Errorf("cause sum %d != eligible %d", causeSum, c.Eligible)
	}
	if c.Mispredicts() != 4 {
		t.Errorf("Mispredicts = %d, want 4", c.Mispredicts())
	}
}

func TestCauseClassification(t *testing.T) {
	for cause := Cause(0); int(cause) < NumCauses; cause++ {
		wantPred := cause <= CauseValueWrong
		if cause.Predicted() != wantPred {
			t.Errorf("%s.Predicted() = %v, want %v", cause, cause.Predicted(), wantPred)
		}
		if cause.Mispredict() != (wantPred && cause != CauseCorrect) {
			t.Errorf("%s.Mispredict() = %v", cause, cause.Mispredict())
		}
		if strings.HasPrefix(cause.String(), "cause(") {
			t.Errorf("cause %d has no name", cause)
		}
	}
	if got := Cause(200).String(); got != "cause(200)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

// Every rate helper must return 0 on a zero denominator instead of NaN.
func TestRateHelpersZeroDenominators(t *testing.T) {
	tests := []struct {
		name   string
		counts Counts
		instrs uint64
		rate   func(Counts) float64
		want   float64
	}{
		{"accuracy empty", Counts{}, 0, Counts.Accuracy, 0},
		{"accuracy never predicted", Counts{Eligible: 10}, 0, Counts.Accuracy, 0},
		{"accuracy half", Counts{Predicted: 4, Correct: 2}, 0, Counts.Accuracy, 50},
		{"coverage empty", Counts{}, 0, Counts.Coverage, 0},
		{"coverage full", Counts{Eligible: 8, Predicted: 8}, 0, Counts.Coverage, 100},
		{"conflict share no mispredicts", Counts{Predicted: 3, Correct: 3}, 0, Counts.ConflictShare, 0},
		{"probe hit rate no probes", Counts{}, 0, Counts.ProbeHitRate, 0},
		{"probe hit rate", Counts{Probes: 4, ProbeHits: 1}, 0, Counts.ProbeHitRate, 25},
		{"flush cycles zero instrs", Counts{FlushCycles: 900}, 0,
			func(c Counts) float64 { return c.FlushCyclesPerKiloInstr(0) }, 0},
		{"flush cycles per ki", Counts{FlushCycles: 900}, 0,
			func(c Counts) float64 { return c.FlushCyclesPerKiloInstr(9_000) }, 100},
	}
	for _, tt := range tests {
		if got := tt.rate(tt.counts); got != tt.want {
			t.Errorf("%s = %v, want %v", tt.name, got, tt.want)
		}
	}
	var conflicted Counts
	conflicted.apply(Event{Cause: CauseStoreConflict})
	conflicted.apply(Event{Cause: CauseAddrMispredict})
	if got := conflicted.ConflictShare(); got != 50 {
		t.Errorf("ConflictShare = %v, want 50", got)
	}
}

func TestTopCause(t *testing.T) {
	var c Counts
	if _, _, ok := c.TopCause(); ok {
		t.Error("empty counts reported a top cause")
	}
	c.apply(Event{Cause: CauseCorrect})
	if _, _, ok := c.TopCause(); ok {
		t.Error("all-correct counts reported a top cause")
	}
	c.apply(Event{Cause: CauseStoreConflict})
	c.apply(Event{Cause: CauseStoreConflict})
	c.apply(Event{Cause: CauseAPTMiss})
	cause, n, ok := c.TopCause()
	if !ok || cause != CauseStoreConflict || n != 2 {
		t.Errorf("TopCause = %v/%d/%v, want store_conflict/2/true", cause, n, ok)
	}
}

// CauseCounts marshals as an object keyed by cause name, omits zeros, and
// rejects unknown names on the way back in.
func TestCauseCountsJSONRoundTrip(t *testing.T) {
	var cc CauseCounts
	cc[CauseCorrect] = 7
	cc[CausePAQDrop] = 2
	data, err := json.Marshal(cc)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, `"correct":7`) || !strings.Contains(s, `"paq_drop":2`) {
		t.Errorf("marshal = %s", s)
	}
	if strings.Contains(s, "store_conflict") {
		t.Errorf("zero cause not omitted: %s", s)
	}
	var back CauseCounts
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != cc {
		t.Errorf("round trip: got %v, want %v", back, cc)
	}
	if err := json.Unmarshal([]byte(`{"not_a_cause":1}`), &back); err == nil {
		t.Error("unknown cause name accepted")
	}
}

// Eviction folds the least-observed site into the overflow bucket, never
// dropping events: Totals stays exact however small the bound.
func TestCollectorEvictionPreservesTotals(t *testing.T) {
	c := NewCollector(2, "w", "s")
	weights := map[uint64]int{0x100: 5, 0x104: 1, 0x108: 3, 0x10c: 7}
	var want uint64
	for pc, n := range weights {
		for i := 0; i < n; i++ {
			c.Record(pc, Event{Cause: CauseCorrect})
			want++
		}
	}
	p := c.Finish(1000)
	if len(p.Sites) != 2 {
		t.Fatalf("tracked sites = %d, want 2", len(p.Sites))
	}
	if p.EvictedSites != 2 {
		t.Errorf("evicted = %d, want 2", p.EvictedSites)
	}
	if p.Overflow.Eligible == 0 {
		t.Error("overflow bucket empty after eviction")
	}
	if tot := p.Totals(); tot.Eligible != want || tot.Correct != want {
		t.Errorf("Totals = %d/%d, want %d eligible+correct", tot.Eligible, tot.Correct, want)
	}
	if p.Instructions != 1000 || p.Workload != "w" || p.Scheme != "s" {
		t.Errorf("labels = %d/%q/%q", p.Instructions, p.Workload, p.Scheme)
	}
}

// The default bound applies when 0 is passed, and the direct-mapped cache
// must not resurrect an evicted site's pointer (stale-slot invalidation).
func TestCollectorCacheInvalidationOnEvict(t *testing.T) {
	if NewCollector(0, "", "").MaxSites() != DefaultMaxSites {
		t.Error("zero maxSites did not select the default")
	}
	c := NewCollector(1, "", "")
	c.Record(0x40, Event{Cause: CauseCorrect})
	// Same cache slot (pcCacheSize*4 apart), different PC: evicts 0x40.
	c.Record(0x40+pcCacheSize*4, Event{Cause: CauseAPTMiss})
	// Recording 0x40 again must hit the overflow-fold path, not the stale
	// cached *site.
	c.Record(0x40, Event{Cause: CauseCorrect})
	p := c.Finish(0)
	tot := p.Totals()
	if tot.Eligible != 3 {
		t.Errorf("Totals.Eligible = %d, want 3", tot.Eligible)
	}
	if len(p.Sites) != 1 {
		t.Errorf("tracked = %d, want 1", len(p.Sites))
	}
}

func TestCollectorSnapshotAndFinishIdempotent(t *testing.T) {
	c := NewCollector(8, "w", "s")
	if p := c.Snapshot(); p == nil || !p.Partial {
		t.Fatalf("initial snapshot = %+v, want empty partial", p)
	}
	c.Record(0x10, Event{Cause: CauseStoreConflict})
	p1 := c.Finish(42)
	if p1.Partial {
		t.Error("finished profile still marked partial")
	}
	if p2 := c.Finish(99); p2 != p1 {
		t.Error("second Finish returned a different profile")
	}
	if c.Snapshot() != p1 {
		t.Error("Snapshot after Finish is not the final profile")
	}
}

// Ranking orders mispredicts desc, then eligible desc, then PC asc.
func TestRankSites(t *testing.T) {
	sites := []SiteReport{
		{PC: 3, Counts: Counts{Eligible: 10, Predicted: 2, Correct: 2}},
		{PC: 2, Counts: Counts{Eligible: 5, Predicted: 5, Correct: 1}},
		{PC: 1, Counts: Counts{Eligible: 20, Predicted: 2, Correct: 2}},
		{PC: 4, Counts: Counts{Eligible: 20, Predicted: 6, Correct: 2}},
	}
	rankSites(sites)
	want := []uint64{4, 2, 1, 3} // 4 mispredicts each for pc 4 and 2; 4 wins on eligibility
	for i, pc := range want {
		if sites[i].PC != pc {
			t.Fatalf("rank %d = pc %d, want %d (order %v)", i, sites[i].PC, pc, sites)
		}
	}
}

// Merge unions per-interval profiles, sums shared sites, re-applies the
// bound by folding the tail, and keeps totals exact.
func TestMerge(t *testing.T) {
	mk := func(pc uint64, eligible, predicted, correct uint64) *Profile {
		return &Profile{
			Workload: "w", Scheme: "s", Instructions: 100,
			Sites: []SiteReport{{PC: pc, Counts: Counts{Eligible: eligible, Predicted: predicted, Correct: correct}}},
		}
	}
	a := mk(0x10, 10, 8, 4)
	b := mk(0x10, 6, 2, 2)
	b.Sites = append(b.Sites, SiteReport{PC: 0x20, Counts: Counts{Eligible: 3, Predicted: 3, Correct: 1}})
	b.Sites = append(b.Sites, SiteReport{PC: 0x30, Counts: Counts{Eligible: 1}})

	m := Merge([]*Profile{a, nil, b}, 2)
	if m.Workload != "w" || m.Scheme != "s" || m.Instructions != 200 {
		t.Errorf("labels = %q/%q/%d", m.Workload, m.Scheme, m.Instructions)
	}
	if len(m.Sites) != 2 {
		t.Fatalf("sites = %d, want 2 (bound re-applied)", len(m.Sites))
	}
	s, ok := m.Site(0x10)
	if !ok || s.Eligible != 16 || s.Predicted != 10 || s.Correct != 6 {
		t.Errorf("merged 0x10 = %+v", s.Counts)
	}
	if tot := m.Totals(); tot.Eligible != 20 {
		t.Errorf("Totals.Eligible = %d, want 20", tot.Eligible)
	}
	if m.EvictedSites != 1 {
		t.Errorf("EvictedSites = %d, want 1", m.EvictedSites)
	}

	empty := Merge(nil, 0)
	if empty.MaxSites != DefaultMaxSites || len(empty.Sites) != 0 {
		t.Errorf("empty merge = %+v", empty)
	}
}

func TestDiffAndLargestAccuracyRegression(t *testing.T) {
	a := &Profile{Sites: []SiteReport{
		{PC: 1, Counts: Counts{Eligible: 10, Predicted: 10, Correct: 10}}, // 100% -> 50%
		{PC: 2, Counts: Counts{Eligible: 10, Predicted: 10, Correct: 5}},  // 50% -> 100%
		{PC: 3, Counts: Counts{Eligible: 10}},                             // never predicted
		{PC: 9, Counts: Counts{Eligible: 1, Predicted: 1, Correct: 1}},    // only in A
	}}
	b := &Profile{Sites: []SiteReport{
		{PC: 1, Counts: Counts{Eligible: 10, Predicted: 10, Correct: 5}},
		{PC: 2, Counts: Counts{Eligible: 10, Predicted: 10, Correct: 10}},
		{PC: 3, Counts: Counts{Eligible: 10}},
	}}
	rows := Diff(a, b)
	if len(rows) != 3 {
		t.Fatalf("diff rows = %d, want 3 shared sites", len(rows))
	}
	if rows[0].PC != 1 || rows[0].AccuracyDelta != -50 {
		t.Errorf("worst row = pc %d delta %v, want pc 1 delta -50", rows[0].PC, rows[0].AccuracyDelta)
	}
	worst, ok := LargestAccuracyRegression(a, b)
	if !ok || worst.PC != 1 {
		t.Errorf("LargestAccuracyRegression = %v/%v, want pc 1", worst.PC, ok)
	}
	// Never-predicted sites (0/0 accuracy both sides) must not rank.
	if _, ok := LargestAccuracyRegression(b, a); !ok {
		t.Error("reverse direction should flag pc 2's regression")
	}
	none := &Profile{Sites: []SiteReport{{PC: 3, Counts: Counts{Eligible: 10}}}}
	if _, ok := LargestAccuracyRegression(none, none); ok {
		t.Error("0/0-predicted site counted as a regression")
	}
}

func TestWritePrometheus(t *testing.T) {
	p := &Profile{
		Workload: "mcf", Scheme: "dlvp",
		Sites: []SiteReport{{PC: 0x400, Counts: Counts{
			Eligible: 4, Predicted: 2, Correct: 1,
			Causes:      CauseCounts{CauseCorrect: 1, CauseStoreConflict: 1, CauseAPTMiss: 2},
			FlushCycles: 9,
		}}},
		Overflow: Counts{Eligible: 2, Causes: CauseCounts{CauseUnpredicted: 2}},
	}
	var sb strings.Builder
	WritePrometheus(&sb, p)
	out := sb.String()
	for _, want := range []string{
		`dlvp_site_eligible_total{workload="mcf",scheme="dlvp",pc="0x400"} 4`,
		`dlvp_site_flush_cycles_total{workload="mcf",scheme="dlvp",pc="0x400"} 9`,
		`dlvp_site_cause_total{workload="mcf",scheme="dlvp",pc="0x400",cause="store_conflict"} 1`,
		`dlvp_site_cause_total{workload="mcf",scheme="dlvp",pc="overflow",cause="unpredicted"} 2`,
		`dlvp_site_accuracy_pct{workload="mcf",scheme="dlvp",pc="0x400"} 50`,
		"# TYPE dlvp_site_eligible_total counter",
		"# TYPE dlvp_site_accuracy_pct gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// Profile JSON must round-trip through the wire shape the server serves
// and the CLI loads.
func TestProfileJSONRoundTrip(t *testing.T) {
	c := NewCollector(4, "mcf", "dlvp")
	c.Record(0x400, Event{Cause: CauseStoreConflict, FlushCycles: 9, Probed: true, ProbeHit: true})
	c.Record(0x400, Event{Cause: CauseCorrect, Probed: true, ProbeHit: true})
	c.Record(0x404, Event{Cause: CauseAPTMiss})
	p := c.Finish(5000)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Totals() != p.Totals() {
		t.Errorf("totals changed across round trip: %+v vs %+v", back.Totals(), p.Totals())
	}
	if s, ok := back.Site(0x400); !ok || s.FlushCycles != 9 || s.Probes != 2 || s.ProbeHits != 2 {
		t.Errorf("site 0x400 = %+v/%v", s, ok)
	}
}
