package matrix

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// ShardState is one shard's persisted scheduling state.
type ShardState struct {
	ID        int     `json:"id"`
	State     string  `json:"state"`
	Assigned  string  `json:"assigned,omitempty"`
	Owner     string  `json:"owner,omitempty"`
	Stolen    bool    `json:"stolen,omitempty"`
	Attempts  int     `json:"attempts,omitempty"`
	CacheHits int     `json:"cache_hits,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// State is the on-disk form of one matrix: the immutable plan plus
// enough progress to resume. Completed cells carry their full stats, so
// a restarted coordinator replays them without touching the cluster;
// everything else re-executes and lands on the peers' content-addressed
// result caches.
type State struct {
	Plan     Plan         `json:"plan"`
	Status   string       `json:"status"`
	Error    string       `json:"error,omitempty"`
	Started  *time.Time   `json:"started,omitempty"`
	Finished *time.Time   `json:"finished,omitempty"`
	Resumed  bool         `json:"resumed,omitempty"`
	Shards   []ShardState `json:"shards"`
	Cells    []CellResult `json:"cells"`
}

// snapshot captures m as a persistable State.
func (m *Matrix) snapshot() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := State{
		Plan:    m.plan,
		Status:  m.status,
		Error:   m.errMsg,
		Resumed: m.resumed,
	}
	if !m.started.IsZero() {
		t := m.started
		st.Started = &t
	}
	if !m.finished.IsZero() {
		t := m.finished
		st.Finished = &t
	}
	for i := range m.shards {
		sv := m.shardViewLocked(i)
		st.Shards = append(st.Shards, ShardState{
			ID:        i,
			State:     sv.State,
			Assigned:  sv.Assigned,
			Owner:     sv.Owner,
			Stolen:    sv.Stolen,
			Attempts:  sv.Attempts,
			CacheHits: sv.CacheHits,
			ElapsedMS: sv.ElapsedMS,
			Error:     sv.Error,
		})
	}
	st.Cells = make([]CellResult, 0, len(m.cells))
	for _, c := range m.cells {
		st.Cells = append(st.Cells, c)
	}
	// Key-sorted cells keep the file deterministic for a given progress
	// state regardless of completion order.
	sort.Slice(st.Cells, func(i, j int) bool { return st.Cells[i].Key < st.Cells[j].Key })
	return st
}

// Store persists one JSON file per matrix under a directory, written
// atomically (temp + rename) so a crash mid-save never corrupts state.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a matrix state directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("matrix: store requires a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(id string) string {
	return filepath.Join(s.dir, id+".json")
}

// Save writes st atomically.
func (s *Store) Save(st State) error {
	if st.Plan.ID == "" {
		return fmt.Errorf("matrix: state has no plan ID")
	}
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "."+st.Plan.ID+".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	return os.Rename(tmp.Name(), s.path(st.Plan.ID))
}

// Load reads one matrix state by ID.
func (s *Store) Load(id string) (State, error) {
	var st State
	data, err := os.ReadFile(s.path(id))
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, err
	}
	return st, nil
}

// LoadAll reads every persisted matrix, oldest plan first.
func (s *Store) LoadAll() ([]State, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []State
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		st, err := s.Load(strings.TrimSuffix(name, ".json"))
		if err != nil {
			// A torn or foreign file must not block boot; skip it.
			continue
		}
		if st.Plan.ID == "" {
			continue
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Plan.Created.Before(out[j].Plan.Created) })
	return out, nil
}

// Delete removes one matrix state (missing files are fine).
func (s *Store) Delete(id string) error {
	err := os.Remove(s.path(id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Resume reloads persisted matrices after a daemon restart: terminal
// ones re-register for inspection, and interrupted ones restart with
// their completed shards pre-committed from the persisted cells — the
// remaining shards re-execute, where the peers' content-addressed result
// caches turn any work that actually finished before the crash into
// instant hits. It returns how many matrices went back into flight.
func (o *Orchestrator) Resume() (int, error) {
	if o.store == nil {
		return 0, nil
	}
	states, err := o.store.LoadAll()
	if err != nil {
		return 0, err
	}
	resumed := 0
	for _, st := range states {
		m := matrixFromState(st)
		if err := o.register(m); err != nil {
			o.obs.Log.Warn("matrix: resume register failed", "matrix", st.Plan.ID, "err", err)
			continue
		}
		if m.terminal() {
			continue
		}
		resumed++
		o.obs.Log.Info("matrix: resuming", "matrix", m.plan.ID, "restored_cells", m.restored, "shards", len(m.plan.Shards))
		o.start(m)
	}
	return resumed, nil
}

// matrixFromState rebuilds runtime state from a persisted snapshot.
func matrixFromState(st State) *Matrix {
	m := newMatrix(st.Plan)
	m.resumed = st.Status == StatusRunning
	m.errMsg = st.Error
	if st.Started != nil {
		m.started = *st.Started
	}

	doneShards := make(map[int]bool, len(st.Shards))
	for _, ss := range st.Shards {
		if ss.ID < 0 || ss.ID >= len(m.shards) {
			continue
		}
		sr := m.shards[ss.ID]
		terminalMatrix := st.Status != StatusRunning
		if ss.State == ShardDone || terminalMatrix {
			// Keep terminal shard states verbatim; for an interrupted matrix
			// only done shards survive — the rest go back to pending with a
			// fresh attempt budget.
			sr.state = ss.State
			if sr.state == ShardRunning || (sr.state == ShardPending && terminalMatrix) {
				sr.state = ShardCancelled
			}
			sr.owner = ss.Owner
			sr.stolen = ss.Stolen
			sr.attempts = ss.Attempts
			sr.cacheHits = ss.CacheHits
			sr.errMsg = ss.Error
			sr.restored = true
			doneShards[ss.ID] = ss.State == ShardDone
		}
		sr.assigned = ss.Assigned
	}

	// Only cells of completed shards restore: a crash between a cell
	// finishing and its shard committing re-runs the whole shard, and the
	// peers' result caches absorb the repeat.
	shardByWorkload := make(map[string]int, len(st.Plan.Shards))
	for i, sh := range st.Plan.Shards {
		shardByWorkload[sh.Workload] = i
	}
	for _, c := range st.Cells {
		if id, ok := shardByWorkload[c.Workload]; ok && doneShards[id] {
			c.Restored = true
			m.cells[c.Key] = c
			m.restored++
		}
	}

	if st.Status != StatusRunning {
		m.status = st.Status
		if st.Finished != nil {
			m.finished = *st.Finished
		}
		m.tables = Aggregate(m.plan, m.cells)
		evType := map[string]string{StatusDone: "done", StatusCancelled: "cancelled", StatusFailed: "error"}[st.Status]
		m.appendEventLocked(Event{Type: evType, Tables: m.tables, Error: st.Error})
		close(m.done)
		return m
	}

	if m.restored > 0 || len(doneShards) > 0 {
		m.appendEventLocked(Event{Type: "resumed", Tables: Aggregate(m.plan, m.cells)})
	}
	return m
}
