package matrix

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"dlvp/internal/obs"
	"dlvp/internal/tabletext"
)

// ErrUnknownTarget reports a shard submission naming a cluster member
// that does not exist.
var ErrUnknownTarget = errors.New("matrix: unknown target")

// ErrTooManyMatrices reports that the orchestrator's retention cap is
// full of still-running matrices.
var ErrTooManyMatrices = errors.New("matrix: too many active matrices")

// Options configures an Orchestrator.
type Options struct {
	// Cluster executes shards (required).
	Cluster Cluster
	// Store, when non-nil, persists plan + shard state after every shard
	// completion, making matrices resumable across daemon restarts.
	Store *Store
	// Obs collects metrics and logs (nil = discard).
	Obs *obs.Observer
	// WorkersPerTarget is how many shards one target executes
	// concurrently (default 2). Idle workers steal from other targets'
	// queues.
	WorkersPerTarget int
	// MaxMatrices caps retained matrices; oldest terminal ones are
	// evicted (default 64).
	MaxMatrices int
	// MaxShardAttempts caps how often one shard is retried on peer
	// failure before it is marked failed (default 2*targets+1).
	MaxShardAttempts int
	// Poll is the idle worker's queue re-check interval (default 10ms;
	// tests tighten it).
	Poll time.Duration
}

// Orchestrator owns every matrix submitted to this daemon: it plans,
// schedules shards over the cluster with work-stealing, streams events,
// and persists/restores state.
type Orchestrator struct {
	cluster Cluster
	store   *Store
	obs     *obs.Observer
	opts    Options

	ctx    context.Context
	stop   context.CancelFunc
	runWG  sync.WaitGroup
	closed bool

	mu       sync.Mutex
	matrices map[string]*Matrix
	order    []string // submission order, oldest first

	submitted *obs.Counter
	shardRuns *obs.CounterVec // outcome: done|failed|cancelled|requeued|stolen
	cellRuns  *obs.CounterVec // cache: hit|miss
}

// New returns an orchestrator scheduling over opts.Cluster.
func New(opts Options) *Orchestrator {
	if opts.Cluster == nil {
		panic("matrix: Options.Cluster is required")
	}
	if opts.WorkersPerTarget <= 0 {
		opts.WorkersPerTarget = 2
	}
	if opts.MaxMatrices <= 0 {
		opts.MaxMatrices = 64
	}
	if opts.Poll <= 0 {
		opts.Poll = 10 * time.Millisecond
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewObserver(nil)
	}
	ctx, stop := context.WithCancel(context.Background())
	reg := opts.Obs.Metrics
	o := &Orchestrator{
		cluster:  opts.Cluster,
		store:    opts.Store,
		obs:      opts.Obs,
		opts:     opts,
		ctx:      ctx,
		stop:     stop,
		matrices: make(map[string]*Matrix),

		submitted: reg.Counter("dlvp_matrix_submitted_total", "Matrices submitted.").With(),
		shardRuns: reg.Counter("dlvp_matrix_shards_total", "Shard scheduling outcomes.", "outcome"),
		cellRuns:  reg.Counter("dlvp_matrix_cells_total", "Cells executed, by result-cache outcome.", "cache"),
	}
	return o
}

// Matrix is one submitted sweep's live state.
type Matrix struct {
	plan Plan

	// traceID/parentSpan carry the submitting request's trace context into
	// the orchestrator's worker goroutines, which outlive the request:
	// shard spans (and, via traceparent propagation, the peers' subtrees)
	// join the submitter's distributed trace. Set once before start, never
	// mutated after; empty for resumed matrices — their submitter is gone.
	traceID    string
	parentSpan string

	mu          sync.Mutex
	shards      []*shardRun
	queues      map[string][]int // target -> pending shard IDs
	targets     []string
	cells       map[string]CellResult
	status      string
	errMsg      string
	events      []Event
	tables      []*tabletext.Table // final tables, set at terminal transition
	started     time.Time
	finished    time.Time
	maxAttempts int
	resumed     bool
	restored    int  // cells restored from persisted state
	userCancel  bool // Cancel() was called (vs. daemon shutdown)

	cancel context.CancelFunc
	done   chan struct{}

	// persistMu serializes snapshot+save pairs so two shards finishing at
	// once cannot interleave their renames and land an older snapshot on
	// disk after a newer one. Always acquired before (never under) mu.
	persistMu sync.Mutex
}

// shardRun is one shard's mutable scheduling state (guarded by Matrix.mu).
type shardRun struct {
	state     string
	assigned  string
	owner     string
	stolen    bool
	attempts  int
	cacheHits int
	restored  bool
	startedAt time.Time
	finishAt  time.Time
	errMsg    string
}

// ID returns the matrix identifier.
func (m *Matrix) ID() string { return m.plan.ID }

// Plan returns the immutable decomposition this matrix executes.
func (m *Matrix) Plan() Plan { return m.plan }

// Done is closed when no more work will happen on the matrix in this
// process: it reached a terminal state, or daemon shutdown interrupted it
// (still "running" on disk, resumable on the next boot). Check View() or
// terminal state after waking to tell the cases apart.
func (m *Matrix) Done() <-chan struct{} { return m.done }

// newMatrix builds the runtime state for a plan with every shard pending.
func newMatrix(plan Plan) *Matrix {
	m := &Matrix{
		plan:   plan,
		status: StatusRunning,
		cells:  make(map[string]CellResult, plan.Cells),
		done:   make(chan struct{}),
		cancel: func() {},
	}
	m.shards = make([]*shardRun, len(plan.Shards))
	for i := range m.shards {
		m.shards[i] = &shardRun{state: ShardPending}
	}
	return m
}

// Submit validates, plans, registers, and starts a matrix.
func (o *Orchestrator) Submit(spec Spec) (*Matrix, error) {
	return o.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit carrying the submitting request's trace context.
// Shard execution happens on orchestrator goroutines that outlive the
// request, so the trace ID and current span are captured here and
// re-attached to the worker context: every shard span — and, through
// traceparent propagation, every peer-side subtree — lands in the
// submitter's trace, parented under the submit request's span.
func (o *Orchestrator) SubmitCtx(ctx context.Context, spec Spec) (*Matrix, error) {
	plan, err := NewPlan(spec)
	if err != nil {
		return nil, err
	}
	m := newMatrix(plan)
	m.traceID = obs.TraceID(ctx)
	m.parentSpan = obs.SpanID(ctx)
	if err := o.register(m); err != nil {
		return nil, err
	}
	o.submitted.Inc()
	o.start(m)
	return m, nil
}

// register inserts m, evicting the oldest terminal matrices past the cap.
func (o *Orchestrator) register(m *Matrix) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return fmt.Errorf("matrix: orchestrator closed")
	}
	for len(o.order) >= o.opts.MaxMatrices {
		evicted := false
		for i, id := range o.order {
			old := o.matrices[id]
			if old.terminal() {
				delete(o.matrices, id)
				o.order = append(o.order[:i], o.order[i+1:]...)
				if o.store != nil {
					if err := o.store.Delete(id); err != nil {
						o.obs.Log.Warn("matrix: evict delete failed", "id", id, "err", err)
					}
				}
				evicted = true
				break
			}
		}
		if !evicted {
			return ErrTooManyMatrices
		}
	}
	o.matrices[m.plan.ID] = m
	o.order = append(o.order, m.plan.ID)
	return nil
}

// start assigns pending shards to their rendezvous-preferred targets and
// launches the per-target worker pool.
func (o *Orchestrator) start(m *Matrix) {
	ctx, cancel := context.WithCancel(o.ctx)
	if m.traceID != "" {
		// Re-attach the submitter's trace (workers run under o.ctx, which
		// carries none). If the trace has since been evicted from the
		// tracer's ring, span recording degrades to a no-op.
		ctx = obs.ContextWithRemoteParent(ctx, o.obs.Tracer, m.traceID, m.parentSpan)
	}

	m.mu.Lock()
	m.cancel = cancel
	if m.started.IsZero() {
		m.started = time.Now()
	}
	m.targets = o.cluster.Targets()
	if m.maxAttempts = o.opts.MaxShardAttempts; m.maxAttempts <= 0 {
		m.maxAttempts = 2*len(m.targets) + 1
	}
	m.queues = make(map[string][]int, len(m.targets))
	for _, t := range m.targets {
		m.queues[t] = nil
	}
	for i, sr := range m.shards {
		if sr.state != ShardPending {
			continue
		}
		order := o.cluster.RankTargets(m.plan.Shards[i].Key)
		assigned := order[0]
		for _, t := range order {
			if o.cluster.TargetHealthy(t) {
				assigned = t
				break
			}
		}
		sr.assigned = assigned
		m.queues[assigned] = append(m.queues[assigned], i)
	}
	m.mu.Unlock()

	o.persist(m)
	// The Add must not race Close's runWG.Wait: registering it under o.mu
	// against the closed flag guarantees either the Add lands before Close
	// flips closed (and Wait covers the workers), or start observes closed
	// and launches nothing.
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		cancel()
		close(m.done)
		o.obs.Log.Info("matrix: orchestrator closed before start, state persisted", "matrix", m.plan.ID)
		return
	}
	o.runWG.Add(1)
	o.mu.Unlock()
	go func() {
		defer o.runWG.Done()
		defer cancel()
		var wg sync.WaitGroup
		for _, t := range m.targets {
			for w := 0; w < o.opts.WorkersPerTarget; w++ {
				wg.Add(1)
				go func(target string) {
					defer wg.Done()
					o.worker(ctx, m, target)
				}(t)
			}
		}
		wg.Wait()
		o.finish(ctx, m)
	}()
}

// worker executes shards on behalf of one target until every shard is
// terminal: first its own queue, then — when idle — a steal from the
// longest other queue, so a dead or slow peer's backlog drains through
// whoever has spare capacity.
func (o *Orchestrator) worker(ctx context.Context, m *Matrix, target string) {
	for {
		if ctx.Err() != nil {
			return
		}
		id, claimed, keepWaiting, stole := m.claim(o.cluster, target)
		if !claimed {
			if !keepWaiting {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(o.opts.Poll):
			}
			continue
		}
		if stole {
			o.shardRuns.With("stolen").Inc()
		}
		o.runShard(ctx, m, id, target, stole)
	}
}

// claim pops a pending shard for target. Returns (id, claimed,
// keepWaiting, stole): !claimed && !keepWaiting means every shard is
// terminal and the worker should exit.
func (m *Matrix) claim(c Cluster, target string) (int, bool, bool, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	live := false
	for _, sr := range m.shards {
		if sr.state == ShardPending || sr.state == ShardRunning {
			live = true
			break
		}
	}
	if !live {
		return 0, false, false, false
	}
	// An unhealthy target must not pull work; its queue drains via steals
	// and it may be reinstated later.
	if !c.TargetHealthy(target) {
		return 0, false, true, false
	}
	if q := m.queues[target]; len(q) > 0 {
		id := q[0]
		m.queues[target] = q[1:]
		m.startShardLocked(id, target)
		return id, true, true, false
	}
	// Steal from the tail of the longest other queue (name-ordered
	// tie-break keeps victim selection deterministic). Single-ownership
	// under this mutex is what makes stealing double-count-free: a shard
	// leaves exactly one queue exactly once, and results commit only from
	// its current owner.
	victim := ""
	for name, q := range m.queues {
		if name == target || len(q) == 0 {
			continue
		}
		if victim == "" || len(q) > len(m.queues[victim]) ||
			(len(q) == len(m.queues[victim]) && name < victim) {
			victim = name
		}
	}
	if victim == "" {
		return 0, false, true, false
	}
	q := m.queues[victim]
	id := q[len(q)-1]
	m.queues[victim] = q[:len(q)-1]
	m.shards[id].stolen = true
	m.startShardLocked(id, target)
	return id, true, true, true
}

func (m *Matrix) startShardLocked(id int, target string) {
	sr := m.shards[id]
	sr.state = ShardRunning
	sr.owner = target
	sr.attempts++
	if sr.startedAt.IsZero() {
		sr.startedAt = time.Now()
	}
}

// runShard executes every cell of one shard on target, committing the
// results or routing the failure. The whole shard runs inside one
// matrix.shard span (stolen shards carry the stolen marker), and every
// cell dispatch happens in that span's context so the dispatcher's
// attempt spans — and the remote subtree behind them — nest under it.
func (o *Orchestrator) runShard(ctx context.Context, m *Matrix, id int, target string, stolen bool) {
	shard := m.plan.Shards[id]
	m.mu.Lock()
	attempt := m.shards[id].attempts
	m.mu.Unlock()
	sctx, sp := obs.StartSpanCtx(ctx, "matrix.shard")
	sp.Attr("matrix", m.plan.ID).Attr("shard", strconv.Itoa(id)).
		Attr("workload", shard.Workload).Attr("target", target).
		Attr("attempt", strconv.Itoa(attempt))
	if stolen {
		sp.Mark(obs.MarkerStolen)
	}
	results := make([]CellResult, 0, len(shard.Cells))
	for _, cell := range shard.Cells {
		begin := time.Now()
		res, cached, err := o.cluster.RunOn(sctx, target, cell.Job)
		if err != nil {
			sp.Attr("outcome", "failed").Attr("error", err.Error()).End()
			o.shardFailed(sctx, m, id, target, err)
			return
		}
		results = append(results, CellResult{
			Key:       cell.Key,
			Workload:  cell.Workload,
			Scheme:    cell.Scheme,
			Stats:     res.Stats,
			Cached:    cached,
			Peer:      target,
			ElapsedMS: time.Since(begin).Milliseconds(),
		})
	}
	sp.Attr("outcome", "done").End()
	o.shardDone(m, id, target, results)
}

// shardDone commits one shard's results and emits a "shard" event
// carrying the refreshed partial tables.
func (o *Orchestrator) shardDone(m *Matrix, id int, target string, results []CellResult) {
	m.mu.Lock()
	sr := m.shards[id]
	if sr.state != ShardRunning || sr.owner != target {
		// Ownership moved (defensive: the claim mutex should prevent this);
		// never double-commit.
		m.mu.Unlock()
		return
	}
	sr.state = ShardDone
	sr.finishAt = time.Now()
	sr.errMsg = ""
	hits := 0
	for _, r := range results {
		if r.Cached {
			hits++
		}
		m.cells[r.Key] = r
	}
	sr.cacheHits = hits
	sv := m.shardViewLocked(id)
	m.appendEventLocked(Event{Type: "shard", Shard: &sv, Tables: Aggregate(m.plan, m.cells)})
	m.mu.Unlock()

	o.shardRuns.With("done").Inc()
	o.cellRuns.With("hit").Add(int64(hits))
	o.cellRuns.With("miss").Add(int64(len(results) - hits))
	o.persist(m)
	o.obs.Log.Debug("matrix: shard done", "matrix", m.plan.ID, "shard", id, "workload", m.plan.Shards[id].Workload, "owner", target, "cache_hits", hits)
}

// shardFailed handles one failed cell: when the matrix context itself is
// cancelled the shard is marked cancelled; otherwise the whole shard
// requeues onto the next healthy target in its rendezvous order until
// the attempt budget runs out. Only the matrix ctx decides cancellation —
// a backend error that merely wraps context.Canceled (a peer cancelling
// its own work) while the matrix is still live is an ordinary failure,
// not a reason to silently drop the shard from a "done" sweep.
func (o *Orchestrator) shardFailed(ctx context.Context, m *Matrix, id int, target string, err error) {
	m.mu.Lock()
	sr := m.shards[id]
	if sr.state != ShardRunning || sr.owner != target {
		m.mu.Unlock()
		return
	}
	if ctx.Err() != nil {
		sr.state = ShardCancelled
		sr.finishAt = time.Now()
		m.mu.Unlock()
		o.shardRuns.With("cancelled").Inc()
		return
	}
	sr.errMsg = err.Error()
	attempts := sr.attempts
	if attempts >= m.maxAttempts {
		sr.state = ShardFailed
		sr.finishAt = time.Now()
		sv := m.shardViewLocked(id)
		m.appendEventLocked(Event{Type: "shard", Shard: &sv, Tables: Aggregate(m.plan, m.cells)})
		m.mu.Unlock()
		o.shardRuns.With("failed").Inc()
		o.persist(m)
		o.obs.Log.Warn("matrix: shard failed", "matrix", m.plan.ID, "shard", id, "attempts", attempts, "err", err)
		return
	}
	// Requeue after the failing target in the shard's rendezvous order;
	// the local member (Targets()[0]) is the guaranteed fallback.
	order := o.cluster.RankTargets(m.plan.Shards[id].Key)
	at := 0
	for i, name := range order {
		if name == target {
			at = i
			break
		}
	}
	next := ""
	for off := 1; off <= len(order); off++ {
		cand := order[(at+off)%len(order)]
		if cand != target && o.cluster.TargetHealthy(cand) {
			next = cand
			break
		}
	}
	if next == "" {
		next = o.cluster.Targets()[0]
	}
	sr.state = ShardPending
	sr.owner = ""
	m.queues[next] = append(m.queues[next], id)
	m.mu.Unlock()
	o.shardRuns.With("requeued").Inc()
	obs.StartSpan(ctx, "matrix.requeue").Mark(obs.MarkerRetry).
		Attr("matrix", m.plan.ID).Attr("shard", strconv.Itoa(id)).
		Attr("from", target).Attr("to", next).
		Attr("error", err.Error()).End()
	o.obs.Log.Info("matrix: shard requeued", "matrix", m.plan.ID, "shard", id, "from", target, "to", next, "attempts", attempts, "err", err)
}

// finish runs after every worker exits: it cancels any shard still
// queued, decides the terminal status, and emits the terminal event with
// the final tables.
func (o *Orchestrator) finish(ctx context.Context, m *Matrix) {
	m.mu.Lock()
	if ctx.Err() != nil && !m.userCancel && o.ctx.Err() != nil {
		// Daemon shutdown, not user cancellation: the matrix stays
		// resumable. In-flight shards fall back to pending, the persisted
		// status stays "running", and Resume picks the matrix up after
		// restart; work that actually finished on the peers turns into
		// content-addressed cache hits on re-execution.
		for _, sr := range m.shards {
			if sr.state == ShardRunning || sr.state == ShardCancelled {
				sr.state = ShardPending
				sr.owner = ""
			}
		}
		m.mu.Unlock()
		o.persist(m)
		// The matrix is not terminal — but no more work will happen on it
		// in this process, so waiters on Done() must still wake up.
		close(m.done)
		o.obs.Log.Info("matrix: interrupted by shutdown, state persisted", "matrix", m.plan.ID)
		return
	}
	for _, sr := range m.shards {
		if sr.state == ShardPending || sr.state == ShardRunning {
			sr.state = ShardCancelled
			if sr.finishAt.IsZero() {
				sr.finishAt = time.Now()
			}
		}
	}
	status := StatusDone
	errMsg := ""
	if ctx.Err() != nil {
		status = StatusCancelled
	} else {
		for i, sr := range m.shards {
			if sr.state == ShardFailed {
				status = StatusFailed
				if errMsg == "" {
					errMsg = fmt.Sprintf("shard %d (%s): %s", i, m.plan.Shards[i].Workload, sr.errMsg)
				}
			}
		}
	}
	m.status = status
	m.errMsg = errMsg
	m.finished = time.Now()
	m.tables = Aggregate(m.plan, m.cells)
	evType := map[string]string{StatusDone: "done", StatusCancelled: "cancelled", StatusFailed: "error"}[status]
	m.appendEventLocked(Event{Type: evType, Tables: m.tables, Error: errMsg})
	m.mu.Unlock()

	close(m.done)
	o.persist(m)
	o.obs.Log.Info("matrix: finished", "matrix", m.plan.ID, "status", status, "cells", m.plan.Cells)
}

// appendEventLocked stamps and appends one event (Matrix.mu held).
func (m *Matrix) appendEventLocked(ev Event) {
	ev.Seq = len(m.events)
	ev.At = time.Now()
	m.events = append(m.events, ev)
}

// EventsSince returns the events after seq and whether the matrix has
// reached a terminal state (so SSE handlers know when to stop polling).
func (m *Matrix) EventsSince(seq int) ([]Event, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if seq < 0 {
		seq = 0
	}
	var evs []Event
	if seq < len(m.events) {
		evs = append(evs, m.events[seq:]...)
	}
	return evs, m.status != StatusRunning
}

func (m *Matrix) terminal() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.status != StatusRunning
}

// shardViewLocked renders one shard's state (Matrix.mu held).
func (m *Matrix) shardViewLocked(id int) ShardView {
	sr := m.shards[id]
	sh := m.plan.Shards[id]
	sv := ShardView{
		ID:        id,
		Workload:  sh.Workload,
		Cells:     len(sh.Cells),
		State:     sr.state,
		Assigned:  sr.assigned,
		Owner:     sr.owner,
		Stolen:    sr.stolen,
		Attempts:  sr.attempts,
		CacheHits: sr.cacheHits,
		Restored:  sr.restored,
		Error:     sr.errMsg,
	}
	switch {
	case !sr.finishAt.IsZero() && !sr.startedAt.IsZero():
		sv.ElapsedMS = float64(sr.finishAt.Sub(sr.startedAt).Milliseconds())
	case !sr.startedAt.IsZero():
		sv.ElapsedMS = float64(time.Since(sr.startedAt).Milliseconds())
	}
	return sv
}

// View renders the matrix's full status, including the current
// (partial or final) tables.
func (m *Matrix) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := View{
		ID:         m.plan.ID,
		Status:     m.status,
		Workloads:  len(m.plan.Shards),
		Instrs:     m.plan.Spec.Instrs,
		Sampled:    m.plan.Spec.Sampling != nil,
		Created:    m.plan.Created,
		CellsTotal: m.plan.Cells,
		Resumed:    m.resumed,
		Restored:   m.restored,
		Error:      m.errMsg,
		Targets:    append([]string(nil), m.targets...),
	}
	_, v.Schemes = planAxes(m.plan)
	if !m.started.IsZero() {
		t := m.started
		v.Started = &t
		if !m.finished.IsZero() {
			f := m.finished
			v.Finished = &f
			v.ElapsedMS = float64(f.Sub(t).Milliseconds())
		} else {
			v.ElapsedMS = float64(time.Since(t).Milliseconds())
		}
	}
	for i := range m.shards {
		sv := m.shardViewLocked(i)
		v.Shards = append(v.Shards, sv)
		switch sv.State {
		case ShardPending:
			v.Counts.Pending++
		case ShardRunning:
			v.Counts.Running++
		case ShardDone:
			v.Counts.Done++
		case ShardCancelled:
			v.Counts.Cancelled++
		case ShardFailed:
			v.Counts.Failed++
		}
		if sv.Stolen {
			v.Stolen++
		}
		v.CacheHits += sv.CacheHits
	}
	v.CellsDone = len(m.cells)
	if m.tables != nil {
		v.Tables = m.tables
	} else {
		v.Tables = Aggregate(m.plan, m.cells)
	}
	return v
}

// Get returns a matrix by ID.
func (o *Orchestrator) Get(id string) (*Matrix, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	m, ok := o.matrices[id]
	return m, ok
}

// List returns every retained matrix, oldest first.
func (o *Orchestrator) List() []*Matrix {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*Matrix, 0, len(o.order))
	for _, id := range o.order {
		out = append(out, o.matrices[id])
	}
	return out
}

// Cancel requests cancellation of a running matrix. It reports whether
// the matrix exists; cancelling a terminal matrix is a no-op.
func (o *Orchestrator) Cancel(id string) bool {
	m, ok := o.Get(id)
	if !ok {
		return false
	}
	m.mu.Lock()
	m.userCancel = true
	cancel := m.cancel
	m.mu.Unlock()
	cancel()
	return true
}

// Close cancels every running matrix and waits for their workers to
// drain. Terminal state still persists on the way down, which is what
// Resume replays after restart.
func (o *Orchestrator) Close() {
	o.mu.Lock()
	o.closed = true
	o.mu.Unlock()
	o.stop()
	o.runWG.Wait()
}

// persist snapshots m into the store (no-op without one). The per-matrix
// persist mutex spans snapshot and save together, so concurrent callers
// write in snapshot order and the newest state always lands last — the
// "state on disk after every shard completion" contract survives two
// shards finishing at once.
func (o *Orchestrator) persist(m *Matrix) {
	if o.store == nil {
		return
	}
	m.persistMu.Lock()
	defer m.persistMu.Unlock()
	if err := o.store.Save(m.snapshot()); err != nil {
		o.obs.Log.Warn("matrix: persist failed", "matrix", m.plan.ID, "err", err)
	}
}
