// Package matrix is the cluster-wide experiment orchestrator: it turns a
// whole (workload x scheme) sweep — not just a single run — into a
// first-class distributed workload.
//
// A submitted Spec is decomposed into its job DAG: per-workload shards
// (each shard's first detailed run captures the workload's functional
// trace, which the runner's trace cache then replays to the shard's
// remaining schemes, and its table contribution feeds the final
// aggregation). Shards scatter across the dispatch ring by content
// address — the same rendezvous hash the per-job router uses — so a
// shard lands on the peer whose trace/checkpoint/result caches already
// hold its workload. As shards complete, partial tables stream back over
// SSE with the same event discipline as the timeline stream; an idle
// peer steals queued shards from a slow or dead one without
// double-counting results; and the plan plus per-shard state persist to
// disk, so a coordinator restart resumes the matrix by replaying
// content-addressed cache hits instead of re-simulating finished work.
package matrix

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"dlvp/internal/config"
	"dlvp/internal/experiments"
	"dlvp/internal/metrics"
	"dlvp/internal/runner"
	"dlvp/internal/tabletext"
)

// Shard lifecycle states reported by View and the SSE stream.
const (
	ShardPending   = "pending"
	ShardRunning   = "running"
	ShardDone      = "done"
	ShardCancelled = "cancelled"
	ShardFailed    = "failed"
)

// Matrix lifecycle states.
const (
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusCancelled = "cancelled"
	StatusFailed    = "failed"
)

// Spec defines one experiment matrix: every named scheme simulated on
// every named workload for Instrs dynamic instructions.
type Spec struct {
	// Workloads restricts the pool (empty = every registered workload).
	Workloads []string `json:"workloads,omitempty"`
	// Schemes are registry preset names (config.ByScheme).
	Schemes []string `json:"schemes"`
	// Configs adds explicitly-parameterised columns (name -> core config),
	// e.g. ablated variants; names must not collide with Schemes.
	Configs map[string]config.Core `json:"configs,omitempty"`
	// Instrs is the per-cell dynamic-instruction budget (required).
	Instrs uint64 `json:"instrs"`
	// Sampling, when non-nil, runs every cell as a checkpointed sampled
	// simulation.
	Sampling *runner.SamplingSpec `json:"sampling,omitempty"`
}

// resolveConfigs expands scheme names plus explicit configs into the
// named-configuration set, rejecting unknown schemes and collisions.
func (s Spec) resolveConfigs() (map[string]config.Core, error) {
	cfgs := make(map[string]config.Core, len(s.Schemes)+len(s.Configs))
	for _, name := range s.Schemes {
		c, ok := config.ByScheme(name)
		if !ok {
			return nil, fmt.Errorf("matrix: unknown scheme %q", name)
		}
		if _, dup := cfgs[name]; dup {
			return nil, fmt.Errorf("matrix: duplicate scheme %q", name)
		}
		cfgs[name] = c
	}
	for name, c := range s.Configs {
		if name == "" {
			return nil, fmt.Errorf("matrix: explicit config with empty name")
		}
		if _, dup := cfgs[name]; dup {
			return nil, fmt.Errorf("matrix: config %q collides with a scheme of the same name", name)
		}
		cfgs[name] = c
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("matrix: spec names no schemes or configs")
	}
	return cfgs, nil
}

// Cell is one (workload, scheme) simulation of the matrix. Key is the
// job's content address — the identity under which its result lives in
// every result cache on the ring and in the persisted matrix state.
type Cell struct {
	Workload string     `json:"workload"`
	Scheme   string     `json:"scheme"`
	Key      string     `json:"key"`
	Job      runner.Job `json:"job"`
}

// Shard is the scatter unit: every scheme of one workload. Grouping by
// workload makes the shard self-contained for the executing peer — its
// first cell captures the workload's functional trace and deposits
// checkpoints, the remaining cells replay them — and Key (the content
// address of the workload-level prerequisite) is what the rendezvous
// ring hashes, so repeated matrices land each shard on the peer already
// holding those caches.
type Shard struct {
	ID       int    `json:"id"`
	Workload string `json:"workload"`
	Key      string `json:"key"`
	Cells    []Cell `json:"cells"`
}

// Plan is the decomposed, executable form of a Spec.
type Plan struct {
	ID      string    `json:"id"`
	Spec    Spec      `json:"spec"`
	Shards  []Shard   `json:"shards"`
	Cells   int       `json:"cells"`
	Created time.Time `json:"created"`
}

// shardKey content-addresses a shard's workload-level prerequisite: the
// (workload, instrs, sampling) triple that keys the trace and checkpoint
// caches. Scheme configs are deliberately excluded — every scheme of the
// workload shares the same captured trace, so they must co-locate.
func shardKey(workload string, instrs uint64, sampling *runner.SamplingSpec) string {
	payload, _ := json.Marshal(struct {
		Workload string               `json:"workload"`
		Instrs   uint64               `json:"instrs"`
		Sampling *runner.SamplingSpec `json:"sampling,omitempty"`
	}{workload, instrs, sampling})
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// newMatrixID returns a fresh random matrix identifier.
func newMatrixID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return hex.EncodeToString([]byte(time.Now().Format("150405.000000000")))
	}
	return hex.EncodeToString(b[:])
}

// NewPlan validates spec and decomposes it into per-workload shards. The
// experiment drivers' planner (experiments.PlanMatrix) emits the job
// specs, so a distributed matrix runs exactly the jobs a single-process
// driver would.
func NewPlan(spec Spec) (Plan, error) {
	if spec.Instrs == 0 {
		return Plan{}, fmt.Errorf("matrix: spec requires instrs > 0")
	}
	if spec.Sampling != nil {
		if _, err := spec.Sampling.Normalize(spec.Instrs); err != nil {
			return Plan{}, err
		}
	}
	cfgs, err := spec.resolveConfigs()
	if err != nil {
		return Plan{}, err
	}
	p := experiments.Params{Instrs: spec.Instrs, Workloads: spec.Workloads, Sampling: spec.Sampling}
	specs, err := p.PlanMatrix(cfgs)
	if err != nil {
		return Plan{}, err
	}
	if len(specs) == 0 {
		return Plan{}, fmt.Errorf("matrix: empty plan (no workloads)")
	}

	plan := Plan{ID: newMatrixID(), Spec: spec, Created: time.Now()}
	// PlanMatrix emits workload-major order, so one pass groups cells into
	// per-workload shards.
	for _, js := range specs {
		key, err := js.Job.Key()
		if err != nil {
			return Plan{}, err
		}
		cell := Cell{Workload: js.Workload, Scheme: js.Scheme, Key: key, Job: js.Job}
		if n := len(plan.Shards); n == 0 || plan.Shards[n-1].Workload != js.Workload {
			plan.Shards = append(plan.Shards, Shard{
				ID:       n,
				Workload: js.Workload,
				Key:      shardKey(js.Workload, spec.Instrs, spec.Sampling),
			})
		}
		s := &plan.Shards[len(plan.Shards)-1]
		s.Cells = append(s.Cells, cell)
		plan.Cells++
	}
	return plan, nil
}

// CellResult is one completed cell: its statistics plus execution
// provenance (which peer ran it, whether a cache served it, how long it
// took, and whether it was restored from persisted state on resume).
type CellResult struct {
	Key       string           `json:"key"`
	Workload  string           `json:"workload"`
	Scheme    string           `json:"scheme"`
	Stats     metrics.RunStats `json:"stats"`
	Cached    bool             `json:"cached"`
	Peer      string           `json:"peer"`
	ElapsedMS int64            `json:"elapsed_ms"`
	Restored  bool             `json:"restored,omitempty"`
}

// ShardView is one shard's state as reported by GET /v1/matrices/{id}
// and the SSE stream.
type ShardView struct {
	ID       int    `json:"id"`
	Workload string `json:"workload"`
	Cells    int    `json:"cells"`
	State    string `json:"state"`
	// Assigned is the rendezvous-preferred target; Owner is who actually
	// ran (or is running) it. They differ when the shard was stolen or
	// requeued after a peer failure.
	Assigned  string  `json:"assigned"`
	Owner     string  `json:"owner,omitempty"`
	Stolen    bool    `json:"stolen,omitempty"`
	Attempts  int     `json:"attempts"`
	CacheHits int     `json:"cache_hits"`
	Restored  bool    `json:"restored,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Error     string  `json:"error,omitempty"`
}

// Counts aggregates shard states.
type Counts struct {
	Pending   int `json:"pending"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Cancelled int `json:"cancelled"`
	Failed    int `json:"failed"`
}

// View is the full status payload for one matrix.
type View struct {
	ID         string             `json:"id"`
	Status     string             `json:"status"`
	Workloads  int                `json:"workloads"`
	Schemes    []string           `json:"schemes"`
	Instrs     uint64             `json:"instrs"`
	Sampled    bool               `json:"sampled"`
	Created    time.Time          `json:"created"`
	Started    *time.Time         `json:"started,omitempty"`
	Finished   *time.Time         `json:"finished,omitempty"`
	ElapsedMS  float64            `json:"elapsed_ms"`
	Shards     []ShardView        `json:"shards"`
	Counts     Counts             `json:"counts"`
	CellsDone  int                `json:"cells_done"`
	CellsTotal int                `json:"cells_total"`
	CacheHits  int                `json:"cache_hits"`
	Stolen     int                `json:"stolen"`
	Resumed    bool               `json:"resumed,omitempty"`
	Restored   int                `json:"restored_cells,omitempty"`
	Error      string             `json:"error,omitempty"`
	Tables     []*tabletext.Table `json:"tables,omitempty"`
	Targets    []string           `json:"targets,omitempty"`
}

// Event is one entry of a matrix's progress stream, delivered over SSE
// (GET /v1/matrices/{id}/stream) with the same discipline as the
// timeline stream: "shard" events as shards complete (each carrying the
// updated partial tables), a "resumed" event when a restarted
// coordinator replays persisted shards, and a terminal "done" /
// "cancelled" / "error" event carrying the final tables.
type Event struct {
	Type   string             `json:"type"` // "shard" | "resumed" | "done" | "cancelled" | "error"
	Seq    int                `json:"seq"`
	At     time.Time          `json:"at"`
	Shard  *ShardView         `json:"shard,omitempty"`
	Tables []*tabletext.Table `json:"tables,omitempty"`
	Error  string             `json:"error,omitempty"`
}
