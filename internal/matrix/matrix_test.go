package matrix

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"testing"
	"time"

	"dlvp/internal/metrics"
	"dlvp/internal/obs"
	"dlvp/internal/runner"
)

var testSchemes = []string{"baseline", "dlvp"}

func testSpec(workloads ...string) Spec {
	return Spec{Workloads: workloads, Schemes: testSchemes, Instrs: 20_000}
}

// fakeCluster is a scriptable Cluster for scheduler tests: fabricated
// deterministic stats, per-target health toggles, and call accounting.
type fakeCluster struct {
	mu        sync.Mutex
	targets   []string
	unhealthy map[string]bool
	delay     map[string]time.Duration // per-target run latency
	fail      map[string]error         // per-target hard failure
	gate      map[string]chan struct{} // per-workload block-until-closed
	calls     map[string]int           // workload -> RunOn invocations
	fails     map[string]int           // target -> RunOn failures so far
	ejectAt   int                      // mimic dispatch passive ejection after N failures
	rankFn    func(key string) []string
}

func newFakeCluster(targets ...string) *fakeCluster {
	return &fakeCluster{
		targets:   targets,
		unhealthy: make(map[string]bool),
		delay:     make(map[string]time.Duration),
		fail:      make(map[string]error),
		gate:      make(map[string]chan struct{}),
		calls:     make(map[string]int),
		fails:     make(map[string]int),
	}
}

func (f *fakeCluster) Targets() []string { return append([]string(nil), f.targets...) }

func (f *fakeCluster) RankTargets(key string) []string {
	if f.rankFn != nil {
		return f.rankFn(key)
	}
	// Deterministic rendezvous: sort by FNV(name, key), like the real ring.
	out := append([]string(nil), f.targets...)
	score := func(name string) uint64 {
		h := fnv.New64a()
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write([]byte(key))
		return h.Sum64()
	}
	sort.Slice(out, func(i, j int) bool { return score(out[i]) > score(out[j]) })
	return out
}

func (f *fakeCluster) TargetHealthy(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.unhealthy[name] {
		return false
	}
	for _, t := range f.targets {
		if t == name {
			return true
		}
	}
	return false
}

// fabricate returns stats that are a pure function of the job, so any
// execution order or placement yields identical tables.
func fabricate(job runner.Job) metrics.RunStats {
	key, _ := job.Key()
	h := fnv.New64a()
	h.Write([]byte(key))
	seed := h.Sum64()
	return metrics.RunStats{
		Workload:     job.Workload,
		Cycles:       job.Instrs/2 + seed%10_000,
		Instructions: job.Instrs,
		Loads:        job.Instrs / 4,
	}
}

func (f *fakeCluster) RunOn(ctx context.Context, name string, job runner.Job) (runner.Result, bool, error) {
	f.mu.Lock()
	f.calls[job.Workload]++
	delay := f.delay[name]
	failErr := f.fail[name]
	gate := f.gate[job.Workload]
	f.mu.Unlock()

	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return runner.Result{}, false, ctx.Err()
		}
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return runner.Result{}, false, ctx.Err()
		}
	}
	if failErr != nil {
		f.mu.Lock()
		f.fails[name]++
		if f.ejectAt > 0 && f.fails[name] >= f.ejectAt {
			f.unhealthy[name] = true
		}
		f.mu.Unlock()
		return runner.Result{}, false, failErr
	}
	if ctx.Err() != nil {
		return runner.Result{}, false, ctx.Err()
	}
	return runner.Result{Stats: fabricate(job)}, false, nil
}

func (f *fakeCluster) callCount(workload string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[workload]
}

func newTestOrchestrator(t *testing.T, c Cluster, store *Store) *Orchestrator {
	t.Helper()
	o := New(Options{Cluster: c, Store: store, Poll: time.Millisecond})
	t.Cleanup(o.Close)
	return o
}

func waitDone(t *testing.T, m *Matrix) View {
	t.Helper()
	select {
	case <-m.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("matrix %s did not finish: %+v", m.ID(), m.View().Counts)
	}
	return m.View()
}

func TestNewPlanShardsByWorkload(t *testing.T) {
	plan, err := NewPlan(testSpec("linpack", "soplex", "milc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shards) != 3 {
		t.Fatalf("shards = %d, want 3", len(plan.Shards))
	}
	if plan.Cells != 3*len(testSchemes) {
		t.Fatalf("cells = %d, want %d", plan.Cells, 3*len(testSchemes))
	}
	keys := make(map[string]bool)
	for i, sh := range plan.Shards {
		if sh.ID != i {
			t.Fatalf("shard %d has ID %d", i, sh.ID)
		}
		if len(sh.Cells) != len(testSchemes) {
			t.Fatalf("shard %s has %d cells", sh.Workload, len(sh.Cells))
		}
		for _, c := range sh.Cells {
			if c.Workload != sh.Workload {
				t.Fatalf("cell %s/%s in shard %s", c.Workload, c.Scheme, sh.Workload)
			}
		}
		if keys[sh.Key] {
			t.Fatalf("duplicate shard key %s", sh.Key)
		}
		keys[sh.Key] = true
	}
}

func TestNewPlanRejectsBadSpecs(t *testing.T) {
	if _, err := NewPlan(Spec{Schemes: testSchemes}); err == nil {
		t.Fatal("want error for instrs=0")
	}
	if _, err := NewPlan(Spec{Schemes: []string{"nope"}, Instrs: 1000}); err == nil {
		t.Fatal("want error for unknown scheme")
	}
	if _, err := NewPlan(Spec{Instrs: 1000}); err == nil {
		t.Fatal("want error for empty scheme set")
	}
	if _, err := NewPlan(Spec{Schemes: testSchemes, Workloads: []string{"ghost"}, Instrs: 1000}); err == nil {
		t.Fatal("want error for unknown workload")
	}
}

// TestAggregateOrderInvariant is the determinism regression: merging the
// same cells in shuffled completion orders must marshal to bit-identical
// tables.
func TestAggregateOrderInvariant(t *testing.T) {
	plan, err := NewPlan(testSpec("linpack", "soplex", "milc", "astar"))
	if err != nil {
		t.Fatal(err)
	}
	var all []CellResult
	for _, sh := range plan.Shards {
		for _, c := range sh.Cells {
			all = append(all, CellResult{
				Key: c.Key, Workload: c.Workload, Scheme: c.Scheme,
				Stats: fabricate(c.Job), Peer: "x",
			})
		}
	}

	render := func(order []int) string {
		cells := make(map[string]CellResult, len(all))
		for _, i := range order {
			cells[all[i].Key] = all[i]
		}
		data, err := json.Marshal(Aggregate(plan, cells))
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	base := make([]int, len(all))
	for i := range base {
		base[i] = i
	}
	want := render(base)

	// A fixed linear-congruential shuffle keeps the test deterministic
	// while exercising many completion orders.
	perm := append([]int(nil), base...)
	seed := uint64(0x9e3779b97f4a7c15)
	for round := 0; round < 20; round++ {
		for i := len(perm) - 1; i > 0; i-- {
			seed = seed*6364136223846793005 + 1442695040888963407
			j := int(seed % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		if got := render(perm); got != want {
			t.Fatalf("round %d: shuffled completion order changed tables\n got: %s\nwant: %s", round, got, want)
		}
	}

	// Partial sets note their coverage instead of silently passing for
	// complete results.
	partial := Aggregate(plan, map[string]CellResult{all[0].Key: all[0]})
	if len(partial) == 0 || len(partial[0].Notes) == 0 {
		t.Fatal("partial aggregation must carry a partial note")
	}
	var full []struct {
		Notes []string `json:"notes"`
	}
	if err := json.Unmarshal([]byte(want), &full); err != nil {
		t.Fatal(err)
	}
	for _, tb := range full {
		if len(tb.Notes) != 0 {
			t.Fatalf("complete aggregation must not carry notes: %v", tb.Notes)
		}
	}
}

func TestOrchestratorRunsMatrixOnSingleEngine(t *testing.T) {
	eng := runner.New(runner.Options{})
	o := newTestOrchestrator(t, SingleEngine{Engine: eng}, nil)
	m, err := o.Submit(testSpec("linpack", "soplex"))
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, m)
	if v.Status != StatusDone {
		t.Fatalf("status = %s (%s)", v.Status, v.Error)
	}
	if v.CellsDone != v.CellsTotal || v.CellsTotal != 2*len(testSchemes) {
		t.Fatalf("cells %d/%d", v.CellsDone, v.CellsTotal)
	}
	if v.Counts.Done != 2 {
		t.Fatalf("counts = %+v", v.Counts)
	}
	if len(v.Tables) == 0 {
		t.Fatal("no tables")
	}
	evs, terminal := m.EventsSince(0)
	if !terminal || len(evs) == 0 || evs[len(evs)-1].Type != "done" {
		t.Fatalf("events terminal=%v %+v", terminal, evs)
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

// TestWorkStealing parks every shard on a slow target's queue and checks
// an idle fast target steals the backlog without double-running cells.
func TestWorkStealing(t *testing.T) {
	fc := newFakeCluster("slow", "fast")
	fc.rankFn = func(string) []string { return []string{"slow", "fast"} }
	fc.delay["slow"] = 40 * time.Millisecond
	o := New(Options{Cluster: fc, Poll: time.Millisecond, WorkersPerTarget: 1})
	defer o.Close()

	m, err := o.Submit(testSpec("linpack", "soplex", "milc", "astar"))
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, m)
	if v.Status != StatusDone {
		t.Fatalf("status = %s (%s)", v.Status, v.Error)
	}
	if v.Stolen == 0 {
		t.Fatal("expected at least one stolen shard")
	}
	byFast := 0
	for _, sv := range v.Shards {
		if sv.Assigned != "slow" {
			t.Fatalf("shard %d assigned to %s, rank pins slow", sv.ID, sv.Assigned)
		}
		if sv.Owner == "fast" {
			byFast++
			if !sv.Stolen {
				t.Fatalf("shard %d ran on fast without being marked stolen", sv.ID)
			}
		}
	}
	if byFast == 0 {
		t.Fatal("fast target never ran a shard")
	}
	// No double-counting: each cell ran exactly once.
	for _, w := range []string{"linpack", "soplex", "milc", "astar"} {
		if n := fc.callCount(w); n != len(testSchemes) {
			t.Fatalf("workload %s ran %d cells, want %d", w, n, len(testSchemes))
		}
	}
}

// TestPeerFailureRequeues drives every shard at a target that fails hard
// and checks the shards finish elsewhere instead of failing the matrix.
func TestPeerFailureRequeues(t *testing.T) {
	fc := newFakeCluster("ok", "dead")
	fc.rankFn = func(string) []string { return []string{"dead", "ok"} }
	fc.fail["dead"] = errors.New("connection refused")
	// The real ring passively ejects a peer after FailThreshold failures;
	// mimic that so the dead target stops claiming work back.
	fc.ejectAt = 2
	o := New(Options{Cluster: fc, Poll: time.Millisecond, WorkersPerTarget: 1})
	defer o.Close()

	m, err := o.Submit(testSpec("linpack", "soplex"))
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, m)
	if v.Status != StatusDone {
		t.Fatalf("status = %s (%s)", v.Status, v.Error)
	}
	for _, sv := range v.Shards {
		if sv.Owner != "ok" {
			t.Fatalf("shard %d finished on %s", sv.ID, sv.Owner)
		}
		// A shard bound for the dead target is rescued one of two ways:
		// requeued after a failed attempt there (attempts >= 2), or stolen
		// off its queue before the dead target ever ran it.
		if sv.Assigned == "dead" && !sv.Stolen && sv.Attempts < 2 {
			t.Fatalf("shard %d finished on ok in %d attempts without steal or requeue", sv.ID, sv.Attempts)
		}
	}
}

// TestExhaustedAttemptsFailMatrix verifies a shard that can never run
// eventually fails the matrix instead of looping forever.
func TestExhaustedAttemptsFailMatrix(t *testing.T) {
	fc := newFakeCluster("only")
	fc.fail["only"] = errors.New("sim exploded")
	o := New(Options{Cluster: fc, Poll: time.Millisecond, MaxShardAttempts: 2})
	defer o.Close()

	m, err := o.Submit(testSpec("linpack"))
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, m)
	if v.Status != StatusFailed {
		t.Fatalf("status = %s", v.Status)
	}
	if v.Counts.Failed != 1 || v.Error == "" {
		t.Fatalf("counts = %+v err=%q", v.Counts, v.Error)
	}
}

// TestBackendCancelErrorRequeues: a backend error that merely wraps
// context.Canceled while the matrix context is still live is an ordinary
// shard failure (requeue to the next target), not matrix cancellation —
// a peer internally cancelling a job must not yield a "done" matrix with
// silently missing cells.
func TestBackendCancelErrorRequeues(t *testing.T) {
	fc := newFakeCluster("ok", "flaky")
	fc.rankFn = func(string) []string { return []string{"flaky", "ok"} }
	fc.fail["flaky"] = fmt.Errorf("job aborted: %w", context.Canceled)
	fc.ejectAt = 2
	o := New(Options{Cluster: fc, Poll: time.Millisecond, WorkersPerTarget: 1})
	defer o.Close()

	m, err := o.Submit(testSpec("linpack", "soplex"))
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, m)
	if v.Status != StatusDone {
		t.Fatalf("status = %s (%s)", v.Status, v.Error)
	}
	if v.Counts.Cancelled != 0 {
		t.Fatalf("live matrix recorded cancelled shards: %+v", v.Counts)
	}
	if v.CellsDone != v.CellsTotal {
		t.Fatalf("cells %d/%d — wrapped context.Canceled dropped shards", v.CellsDone, v.CellsTotal)
	}
}

// TestCancelMidMatrix covers the cancellation satellite: in-flight
// shards count as cancelled (not failed) and the engine's result cache
// stays consistent for later reuse.
func TestCancelMidMatrix(t *testing.T) {
	fc := newFakeCluster("local")
	gate := make(chan struct{})
	fc.gate["soplex"] = gate
	fc.gate["milc"] = gate
	o := New(Options{Cluster: fc, Poll: time.Millisecond, WorkersPerTarget: 1})
	defer o.Close()

	m, err := o.Submit(testSpec("linpack", "soplex", "milc"))
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the ungated shard to land, then cancel with the rest
	// blocked in flight.
	deadline := time.Now().Add(10 * time.Second)
	for m.View().Counts.Done == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no shard completed")
		}
		time.Sleep(time.Millisecond)
	}
	if !o.Cancel(m.ID()) {
		t.Fatal("cancel: matrix not found")
	}
	v := waitDone(t, m)
	close(gate)

	if v.Status != StatusCancelled {
		t.Fatalf("status = %s", v.Status)
	}
	if v.Counts.Failed != 0 {
		t.Fatalf("cancelled matrix reported failures: %+v", v.Counts)
	}
	if v.Counts.Cancelled != 2 || v.Counts.Done != 1 {
		t.Fatalf("counts = %+v, want 1 done + 2 cancelled", v.Counts)
	}
	// Completed cells survive; cancelled shards contribute nothing.
	if v.CellsDone != len(testSchemes) {
		t.Fatalf("cells done = %d, want %d", v.CellsDone, len(testSchemes))
	}
	evs, terminal := m.EventsSince(0)
	if !terminal || evs[len(evs)-1].Type != "cancelled" {
		t.Fatalf("terminal event: %+v", evs[len(evs)-1])
	}
}

// TestCancelLeavesRunnerCacheConsistent cancels a real in-process run
// mid-simulation and checks the engine afterwards serves the same job
// correctly (no partial result was cached).
func TestCancelLeavesRunnerCacheConsistent(t *testing.T) {
	eng := runner.New(runner.Options{})
	o := newTestOrchestrator(t, SingleEngine{Engine: eng}, nil)
	// Big enough to still be in flight 10ms in, small enough that the
	// abandoned lead simulation finishes quickly in the background.
	spec := Spec{Workloads: []string{"linpack"}, Schemes: []string{"baseline"}, Instrs: 2_000_000}
	m, err := o.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	o.Cancel(m.ID())
	v := waitDone(t, m)
	if v.Status != StatusCancelled {
		t.Fatalf("status = %s", v.Status)
	}

	// The same cell re-requested directly must simulate cleanly.
	job := m.Plan().Shards[0].Cells[0].Job
	job.Instrs = 20_000
	stats, cached, err := eng.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("shrunk job unexpectedly cached")
	}
	if stats.Instructions == 0 || stats.Cycles == 0 {
		t.Fatalf("inconsistent cached stats after cancel: %+v", stats)
	}
}

// TestCompletionOrderBitIdentical runs one spec under two clusters with
// opposite timing profiles and asserts the final tables marshal
// identically — the distributed-vs-single determinism guarantee at unit
// scale.
func TestCompletionOrderBitIdentical(t *testing.T) {
	spec := testSpec("linpack", "soplex", "milc", "astar", "sjeng")
	run := func(slowTarget string) string {
		fc := newFakeCluster("a", "b")
		fc.delay[slowTarget] = 15 * time.Millisecond
		o := New(Options{Cluster: fc, Poll: time.Millisecond})
		defer o.Close()
		m, err := o.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		v := waitDone(t, m)
		if v.Status != StatusDone {
			t.Fatalf("status = %s (%s)", v.Status, v.Error)
		}
		data, err := json.Marshal(v.Tables)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if a, b := run("a"), run("b"); a != b {
		t.Fatalf("completion order leaked into tables:\n a: %s\n b: %s", a, b)
	}
}

// TestStoreResume interrupts a matrix and resumes it from disk: done
// shards restore without re-execution, the rest run to completion.
func TestStoreResume(t *testing.T) {
	dir := t.TempDir()
	store1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fc1 := newFakeCluster("local")
	gate := make(chan struct{})
	fc1.gate["milc"] = gate
	fc1.gate["astar"] = gate
	o1 := New(Options{Cluster: fc1, Store: store1, Poll: time.Millisecond, WorkersPerTarget: 1})

	m1, err := o1.Submit(testSpec("linpack", "soplex", "milc", "astar"))
	if err != nil {
		t.Fatal(err)
	}
	id := m1.ID()
	deadline := time.Now().Add(10 * time.Second)
	for m1.View().Counts.Done < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled waiting for 2 shards: %+v", m1.View().Counts)
		}
		time.Sleep(time.Millisecond)
	}
	o1.Close() // daemon dies mid-matrix
	close(gate)
	// An interrupted matrix never goes terminal, but Done() must still
	// unblock: no more work will happen on it in this process.
	select {
	case <-m1.Done():
	default:
		t.Fatal("Done() not closed after orchestrator shutdown")
	}

	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fc2 := newFakeCluster("local")
	o2 := newTestOrchestrator(t, fc2, store2)
	resumed, err := o2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("resumed = %d, want 1", resumed)
	}
	m2, ok := o2.Get(id)
	if !ok {
		t.Fatalf("matrix %s not found after resume", id)
	}
	v := waitDone(t, m2)
	if v.Status != StatusDone {
		t.Fatalf("status = %s (%s)", v.Status, v.Error)
	}
	if !v.Resumed {
		t.Fatal("view not marked resumed")
	}
	if v.Restored != 2*len(testSchemes) {
		t.Fatalf("restored cells = %d, want %d", v.Restored, 2*len(testSchemes))
	}
	if v.CellsDone != v.CellsTotal {
		t.Fatalf("cells %d/%d", v.CellsDone, v.CellsTotal)
	}
	// Shards done before the restart must not have re-executed.
	for _, w := range []string{"linpack", "soplex"} {
		if n := fc2.callCount(w); n != 0 {
			t.Fatalf("restored workload %s re-ran %d cells", w, n)
		}
	}
	for _, w := range []string{"milc", "astar"} {
		if n := fc2.callCount(w); n != len(testSchemes) {
			t.Fatalf("workload %s ran %d cells after resume, want %d", w, n, len(testSchemes))
		}
	}
	evs, _ := m2.EventsSince(0)
	if evs[0].Type != "resumed" {
		t.Fatalf("first event after resume = %s", evs[0].Type)
	}
}

// TestResumeTerminalMatrix re-registers finished matrices read-only.
func TestResumeTerminalMatrix(t *testing.T) {
	dir := t.TempDir()
	store1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	fc := newFakeCluster("local")
	o1 := New(Options{Cluster: fc, Store: store1, Poll: time.Millisecond})
	m1, err := o1.Submit(testSpec("linpack"))
	if err != nil {
		t.Fatal(err)
	}
	want := waitDone(t, m1)
	o1.Close()

	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o2 := newTestOrchestrator(t, newFakeCluster("local"), store2)
	resumed, err := o2.Resume()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Fatalf("resumed = %d, want 0 (matrix was terminal)", resumed)
	}
	m2, ok := o2.Get(m1.ID())
	if !ok {
		t.Fatal("terminal matrix missing after resume")
	}
	got := m2.View()
	if got.Status != StatusDone {
		t.Fatalf("status = %s", got.Status)
	}
	a, _ := json.Marshal(want.Tables)
	b, _ := json.Marshal(got.Tables)
	if string(a) != string(b) {
		t.Fatalf("tables changed across restart:\n%s\n%s", a, b)
	}
	if _, terminal := m2.EventsSince(0); !terminal {
		t.Fatal("restored terminal matrix must report terminal events")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(testSpec("linpack"))
	if err != nil {
		t.Fatal(err)
	}
	m := newMatrix(plan)
	if err := store.Save(m.snapshot()); err != nil {
		t.Fatal(err)
	}
	st, err := store.Load(plan.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Plan.ID != plan.ID || len(st.Shards) != 1 {
		t.Fatalf("round trip mismatch: %+v", st)
	}
	all, err := store.LoadAll()
	if err != nil || len(all) != 1 {
		t.Fatalf("LoadAll = %d, %v", len(all), err)
	}
	if err := store.Delete(plan.ID); err != nil {
		t.Fatal(err)
	}
	if all, _ = store.LoadAll(); len(all) != 0 {
		t.Fatalf("LoadAll after delete = %d", len(all))
	}
	if err := store.Delete(plan.ID); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

func TestOrchestratorEviction(t *testing.T) {
	fc := newFakeCluster("local")
	o := New(Options{Cluster: fc, Poll: time.Millisecond, MaxMatrices: 2})
	defer o.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		m, err := o.Submit(testSpec("linpack"))
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, m)
		ids = append(ids, m.ID())
	}
	if _, ok := o.Get(ids[0]); ok {
		t.Fatal("oldest terminal matrix not evicted")
	}
	if _, ok := o.Get(ids[2]); !ok {
		t.Fatal("newest matrix missing")
	}
	if got := len(o.List()); got != 2 {
		t.Fatalf("retained %d matrices, want 2", got)
	}
}

func TestAggregateSpeedupTable(t *testing.T) {
	plan, err := NewPlan(testSpec("linpack", "soplex"))
	if err != nil {
		t.Fatal(err)
	}
	cells := make(map[string]CellResult)
	for _, sh := range plan.Shards {
		for _, c := range sh.Cells {
			st := fabricate(c.Job)
			if c.Scheme == "dlvp" {
				st.Cycles = st.Cycles / 2 // 2x faster
			}
			cells[c.Key] = CellResult{Key: c.Key, Workload: c.Workload, Scheme: c.Scheme, Stats: st}
		}
	}
	tables := Aggregate(plan, cells)
	if len(tables) != 3 {
		t.Fatalf("tables = %d, want 3", len(tables))
	}
	sp := tables[1]
	if len(sp.Rows) != 2+2 { // workloads + mean + geomean
		t.Fatalf("speedup rows = %d", len(sp.Rows))
	}
	last := sp.Rows[len(sp.Rows)-1]
	if last[0] != "geomean" {
		t.Fatalf("last row = %v", last)
	}
	var sum []struct{}
	_ = sum
	if fmt.Sprint(tables[2].Header[0]) != "scheme" {
		t.Fatalf("summary header = %v", tables[2].Header)
	}
}

// TestMatrixShardSpansJoinSubmitterTrace: SubmitCtx captures the
// submitting request's trace and re-attaches it to the worker
// goroutines, so every shard records a matrix.shard span parented under
// the submit request's span and stolen shards carry the stolen marker —
// even though execution happens long after the request returned.
func TestMatrixShardSpansJoinSubmitterTrace(t *testing.T) {
	fc := newFakeCluster("slow", "fast")
	fc.rankFn = func(string) []string { return []string{"slow", "fast"} }
	fc.delay["slow"] = 40 * time.Millisecond
	ob := obs.NewObserver(nil)
	o := New(Options{Cluster: fc, Obs: ob, Poll: time.Millisecond, WorkersPerTarget: 1})
	defer o.Close()

	ob.Tracer.Begin("submit-req")
	ctx := obs.ContextWithTrace(context.Background(), ob.Tracer, "submit-req")
	ctx, root := obs.StartSpanCtx(ctx, "http.request")
	m, err := o.SubmitCtx(ctx, testSpec("linpack", "soplex", "milc", "astar"))
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, m)
	root.End()
	if v.Status != StatusDone || v.Stolen == 0 {
		t.Fatalf("status=%s stolen=%d — scenario must complete with steals", v.Status, v.Stolen)
	}

	tv, ok := ob.Tracer.Get("submit-req")
	if !ok {
		t.Fatal("submit trace vanished")
	}
	shardSpans, stolenSpans := 0, 0
	for _, sp := range tv.Spans {
		if sp.Name != "matrix.shard" {
			continue
		}
		shardSpans++
		if sp.ParentID != root.ID() {
			t.Errorf("shard span parent = %q, want submit span %q", sp.ParentID, root.ID())
		}
		if sp.Attrs["matrix"] != m.ID() || sp.Attrs["target"] == "" {
			t.Errorf("shard span attrs incomplete: %v", sp.Attrs)
		}
		if sp.Marker == obs.MarkerStolen {
			stolenSpans++
		}
	}
	if shardSpans != len(v.Shards) {
		t.Errorf("matrix.shard spans = %d, want one per shard (%d)", shardSpans, len(v.Shards))
	}
	if stolenSpans != v.Stolen {
		t.Errorf("stolen-marked spans = %d, view reports %d stolen shards", stolenSpans, v.Stolen)
	}
}

// TestMatrixRequeueRecordsRetrySpan: a shard failing on one target and
// requeuing onto another leaves a retry-marked matrix.requeue span in
// the submitter's trace naming both targets.
func TestMatrixRequeueRecordsRetrySpan(t *testing.T) {
	fc := newFakeCluster("ok", "dead")
	fc.rankFn = func(string) []string { return []string{"dead", "ok"} }
	fc.fail["dead"] = errors.New("connection refused")
	fc.ejectAt = 1
	ob := obs.NewObserver(nil)
	o := New(Options{Cluster: fc, Obs: ob, Poll: time.Millisecond, WorkersPerTarget: 1})
	defer o.Close()

	ob.Tracer.Begin("requeue-req")
	ctx := obs.ContextWithTrace(context.Background(), ob.Tracer, "requeue-req")
	m, err := o.SubmitCtx(ctx, testSpec("linpack", "soplex"))
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, m)
	if v.Status != StatusDone {
		t.Fatalf("status = %s (%s)", v.Status, v.Error)
	}

	tv, ok := ob.Tracer.Get("requeue-req")
	if !ok {
		t.Fatal("trace vanished")
	}
	requeues, failedShards := 0, 0
	for _, sp := range tv.Spans {
		switch sp.Name {
		case "matrix.requeue":
			requeues++
			if sp.Marker != obs.MarkerRetry {
				t.Errorf("requeue span marker = %q, want %q", sp.Marker, obs.MarkerRetry)
			}
			if sp.Attrs["from"] != "dead" || sp.Attrs["to"] == "" || sp.Attrs["error"] == "" {
				t.Errorf("requeue span attrs incomplete: %v", sp.Attrs)
			}
		case "matrix.shard":
			if sp.Attrs["outcome"] == "failed" {
				failedShards++
				// The requeue span parents under the failed attempt's
				// shard span, keeping the retry chain readable in the
				// assembled tree.
				if sp.SpanID == "" {
					t.Error("failed shard span missing span ID")
				}
			}
		}
	}
	// At least one shard hit the dead target first (rank pins it), so at
	// least one requeue must be recorded — unless every dead-bound shard
	// was stolen before its first attempt, which ejectAt=1 + rank pinning
	// makes effectively impossible with a 40ms-free fast path. Guard on
	// the view instead of assuming.
	requeued := 0
	for _, sv := range v.Shards {
		if sv.Attempts > 1 {
			requeued++
		}
	}
	if requeues != requeued {
		t.Errorf("matrix.requeue spans = %d, view shows %d requeued shards", requeues, requeued)
	}
	if requeued > 0 && failedShards == 0 {
		t.Error("requeued shards left no failed matrix.shard span")
	}
}
