package matrix

import (
	"context"

	"dlvp/internal/runner"
)

// Cluster is the shard-execution surface the orchestrator schedules
// over. *dispatch.Dispatcher satisfies it structurally (dispatch does not
// import matrix), exposing the rendezvous ring, per-peer health, and
// shard-level submission with per-peer in-flight accounting; SingleEngine
// satisfies it for standalone daemons and tests.
type Cluster interface {
	// Targets returns every member's name (local first, stable order).
	Targets() []string
	// RankTargets returns members in rendezvous order for a content
	// address, highest affinity first, ejected members included.
	RankTargets(key string) []string
	// TargetHealthy reports whether the named member currently accepts
	// work. The local member must always be healthy, so scheduling can
	// always make progress.
	TargetHealthy(name string) bool
	// RunOn executes one job on the named member, returning the result,
	// whether a result cache served it, and any error. It must respect
	// ctx cancellation.
	RunOn(ctx context.Context, name string, job runner.Job) (runner.Result, bool, error)
}

// SingleEngine adapts an in-process runner to the Cluster surface: one
// always-healthy target executing every shard. It is what a daemon
// without peers (and the unit tests) schedules over.
type SingleEngine struct {
	Name   string // target name (defaults to "local")
	Engine *runner.Runner
}

func (s SingleEngine) name() string {
	if s.Name != "" {
		return s.Name
	}
	return "local"
}

// Targets implements Cluster.
func (s SingleEngine) Targets() []string { return []string{s.name()} }

// RankTargets implements Cluster.
func (s SingleEngine) RankTargets(string) []string { return []string{s.name()} }

// TargetHealthy implements Cluster.
func (s SingleEngine) TargetHealthy(name string) bool { return name == s.name() }

// RunOn implements Cluster.
func (s SingleEngine) RunOn(ctx context.Context, name string, job runner.Job) (runner.Result, bool, error) {
	if name != s.name() {
		return runner.Result{}, false, ErrUnknownTarget
	}
	return s.Engine.RunResult(ctx, job)
}
