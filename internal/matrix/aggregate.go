package matrix

import (
	"fmt"
	"sort"

	"dlvp/internal/metrics"
	"dlvp/internal/tabletext"
)

// baseSchemeName picks the speedup reference column: "baseline" when the
// matrix includes it, otherwise the first scheme in sorted order.
func baseSchemeName(schemes []string) string {
	for _, s := range schemes {
		if s == "baseline" {
			return s
		}
	}
	if len(schemes) > 0 {
		return schemes[0]
	}
	return ""
}

// planAxes returns the matrix's workload axis (plan order, which is the
// registry's deterministic order) and scheme axis (sorted).
func planAxes(plan Plan) (workloads, schemes []string) {
	for _, sh := range plan.Shards {
		workloads = append(workloads, sh.Workload)
	}
	if len(plan.Shards) > 0 {
		for _, c := range plan.Shards[0].Cells {
			schemes = append(schemes, c.Scheme)
		}
	}
	sort.Strings(schemes)
	return workloads, schemes
}

// Aggregate merges completed cells into the matrix's result tables. It is
// a pure function of (plan, cells): rows follow the plan's workload order
// and columns the sorted scheme order, never arrival order, so two runs
// of the same matrix — single-process or sharded across peers, shards
// finishing in any order, stolen or resumed — marshal to bit-identical
// artifacts. Provenance (peers, timings, matrix ID) deliberately stays
// out of the tables; it lives in the View.
//
// With an incomplete cell set (the streaming partials) each table notes
// how much of the matrix it reflects; derived rows (speedup, summary)
// are computed only over workloads whose reference and subject cells are
// both present.
func Aggregate(plan Plan, cells map[string]CellResult) []*tabletext.Table {
	workloads, schemes := planAxes(plan)
	base := baseSchemeName(schemes)

	// stat looks up one cell by its plan position.
	byPos := make(map[string]map[string]metrics.RunStats, len(workloads))
	done := 0
	for _, sh := range plan.Shards {
		for _, c := range sh.Cells {
			if r, ok := cells[c.Key]; ok {
				if byPos[c.Workload] == nil {
					byPos[c.Workload] = make(map[string]metrics.RunStats, len(schemes))
				}
				byPos[c.Workload][c.Scheme] = r.Stats
				done++
			}
		}
	}
	var notes []string
	if done < plan.Cells {
		notes = []string{fmt.Sprintf("partial: %d/%d cells aggregated", done, plan.Cells)}
	}

	// Table 1: raw IPC per (workload, scheme); missing cells render "-".
	ipc := &tabletext.Table{Title: "Matrix: IPC by workload and scheme", Header: append([]string{"workload"}, schemes...)}
	for _, w := range workloads {
		row := make([]any, 0, 1+len(schemes))
		row = append(row, w)
		for _, s := range schemes {
			if r, ok := byPos[w][s]; ok {
				row = append(row, r.IPC())
			} else {
				row = append(row, "-")
			}
		}
		ipc.AddRow(row...)
	}
	ipc.Notes = notes
	tables := []*tabletext.Table{ipc}

	// Table 2: percentage speedup over the reference scheme, with the
	// paper's arithmetic-mean and geo-mean summary rows. Only meaningful
	// when there is something to compare against.
	if base != "" && len(schemes) > 1 {
		sp := &tabletext.Table{Title: fmt.Sprintf("Matrix: speedup vs %s (%%)", base), Header: []string{"workload"}}
		var cols []string
		for _, s := range schemes {
			if s != base {
				cols = append(cols, s)
				sp.Header = append(sp.Header, s)
			}
		}
		perCol := make(map[string][]float64, len(cols))
		for _, w := range workloads {
			b, haveBase := byPos[w][base]
			row := make([]any, 0, 1+len(cols))
			row = append(row, w)
			for _, s := range cols {
				r, ok := byPos[w][s]
				if !haveBase || !ok {
					row = append(row, "-")
					continue
				}
				row = append(row, metrics.SpeedupPct(b, r))
			}
			sp.AddRow(row...)
			if haveBase {
				for _, s := range cols {
					if r, ok := byPos[w][s]; ok {
						perCol[s] = append(perCol[s], metrics.SpeedupPct(b, r))
					}
				}
			}
		}
		meanRow := []any{"mean"}
		geoRow := []any{"geomean"}
		for _, s := range cols {
			if xs := perCol[s]; len(xs) > 0 {
				meanRow = append(meanRow, metrics.Mean(xs))
				geoRow = append(geoRow, metrics.GeoMeanSpeedup(xs))
			} else {
				meanRow = append(meanRow, "-")
				geoRow = append(geoRow, "-")
			}
		}
		sp.AddRow(meanRow...)
		sp.AddRow(geoRow...)
		sp.Notes = notes
		tables = append(tables, sp)
	}

	// Table 3: per-scheme prediction summary across completed workloads.
	sum := &tabletext.Table{
		Title:  "Matrix: value-prediction summary by scheme",
		Header: []string{"scheme", "workloads", "predicted", "correct", "accuracy %", "mean coverage %"},
	}
	for _, s := range schemes {
		var n int
		var predicted, correct uint64
		var cov []float64
		for _, w := range workloads {
			r, ok := byPos[w][s]
			if !ok {
				continue
			}
			n++
			predicted += r.VP.Predicted
			correct += r.VP.Correct
			cov = append(cov, r.VP.Coverage())
		}
		acc := 0.0
		if predicted > 0 {
			acc = 100 * float64(correct) / float64(predicted)
		}
		sum.AddRow(s, fmt.Sprint(n), fmt.Sprint(predicted), fmt.Sprint(correct), acc, metrics.Mean(cov))
	}
	sum.Notes = notes
	tables = append(tables, sum)
	return tables
}
