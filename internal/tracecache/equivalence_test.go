package tracecache_test

import (
	"context"
	"encoding/json"
	"testing"

	"dlvp/internal/config"
	"dlvp/internal/metrics"
	"dlvp/internal/runner"
	"dlvp/internal/trace"
	"dlvp/internal/tracecache"
	"dlvp/internal/uarch"
	"dlvp/internal/workloads"
)

func statsJSON(t *testing.T, s metrics.RunStats) string {
	t.Helper()
	enc, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal RunStats: %v", err)
	}
	return string(enc)
}

// TestReplayEquivalence proves the tentpole's correctness claim: for every
// registered workload, a timing simulation fed by (a) live emulation,
// (b) the capture pass, and (c) a pure replay produces bit-identical
// RunStats. CI runs this under -race.
func TestReplayEquivalence(t *testing.T) {
	const instrs = 3_000
	cfg := config.DLVP()
	tc := tracecache.New(64 << 20)

	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			live := statsJSON(t, uarch.New(cfg, w.Build(), w.Reader(instrs)).Run(0))

			run := func(want tracecache.Outcome) string {
				r, release, outcome := tc.Reader(w.Name, instrs, func() trace.Reader {
					return w.Reader(instrs)
				})
				defer release()
				if outcome != want {
					t.Fatalf("outcome %q, want %q", outcome, want)
				}
				return statsJSON(t, uarch.New(cfg, w.Build(), r).Run(0))
			}
			captured := run(tracecache.OutcomeCapture)
			replayed := run(tracecache.OutcomeReplay)

			if captured != live {
				t.Errorf("capture-pass RunStats diverge from live emulation:\n live: %s\n capt: %s", live, captured)
			}
			if replayed != live {
				t.Errorf("replayed RunStats diverge from live emulation:\n live: %s\n rply: %s", live, replayed)
			}
		})
	}
}

// TestMatrixEmulatesOncePerWorkload is the ISSUE's acceptance criterion: a
// 4-configuration × 8-workload matrix through the runner performs exactly
// 8 functional emulations — one capture per workload, every other job a
// replay or an in-flight follow.
func TestMatrixEmulatesOncePerWorkload(t *testing.T) {
	const instrs = 5_000
	tc := tracecache.New(256 << 20)
	r := runner.New(runner.Options{CacheEntries: -1, TraceCache: tc})

	configs := []config.Core{config.Baseline(), config.DLVP(), config.VTAGE(), config.CAPDLVP()}
	names := workloads.Names()[:8]
	var jobs []runner.Job
	for _, cfg := range configs {
		for _, name := range names {
			jobs = append(jobs, runner.Job{Workload: name, Config: cfg, Instrs: instrs})
		}
	}
	results, err := r.RunAll(context.Background(), jobs, runner.Matrix{})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}

	s := tc.Stats()
	if s.Emulations != int64(len(names)) {
		t.Errorf("matrix ran %d emulations, want %d (one per workload)", s.Emulations, len(names))
	}
	if s.CapturesDone != int64(len(names)) || s.CapturesAborted != 0 {
		t.Errorf("captures done=%d aborted=%d, want %d/0", s.CapturesDone, s.CapturesAborted, len(names))
	}
	if hits := s.Replays + s.Follows; hits != int64(len(jobs)-len(names)) {
		t.Errorf("replays+follows = %d, want %d", hits, len(jobs)-len(names))
	}
	if s.Fallbacks != 0 || s.Bypasses != 0 {
		t.Errorf("unexpected fallbacks/bypasses: %+v", s)
	}

	// Replayed results must match a cache-free rerun bit for bit.
	plain := runner.New(runner.Options{CacheEntries: -1})
	for i, job := range jobs {
		want, _, err := plain.Run(context.Background(), job)
		if err != nil {
			t.Fatalf("plain run %s: %v", job.Workload, err)
		}
		if got, ref := statsJSON(t, results[i]), statsJSON(t, want); got != ref {
			t.Fatalf("job %d (%s/%s) diverges from cache-free run:\n with: %s\n sans: %s",
				i, job.Workload, job.Config.VP.Scheme.String(), got, ref)
		}
	}

	// The runner surfaces the cache in its own stats block.
	rs := r.Stats()
	if rs.TraceCache == nil || rs.TraceCache.Emulations != s.Emulations {
		t.Errorf("runner stats do not carry the trace-cache block: %+v", rs.TraceCache)
	}
}
