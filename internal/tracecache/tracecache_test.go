package tracecache

import (
	"sync"
	"sync/atomic"
	"testing"

	"dlvp/internal/trace"
)

// synthSource is a deterministic record stream: every reader constructed
// from the same (seed, n) produces the same n records. It counts reader
// constructions so tests can assert single-flight behaviour.
type synthSource struct {
	seed  uint64
	n     uint64
	built atomic.Int64
}

func (s *synthSource) reader() trace.Reader {
	s.built.Add(1)
	return &synthReader{seed: s.seed, n: s.n}
}

func (s *synthSource) expected() []trace.Rec {
	return trace.Collect(&synthReader{seed: s.seed, n: s.n}, 0)
}

type synthReader struct {
	seed, i, n uint64
}

func (r *synthReader) Next(rec *trace.Rec) bool {
	if r.i >= r.n {
		return false
	}
	*rec = trace.Rec{
		Seq:  r.i,
		PC:   0x1000 + 4*r.i,
		Addr: r.seed ^ (r.i * 8),
	}
	rec.Vals[0] = r.seed + 3*r.i
	r.i++
	return true
}

func sameRecs(t *testing.T, got, want []trace.Rec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("stream length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestCaptureThenReplay(t *testing.T) {
	src := &synthSource{seed: 7, n: 2*publishChunk + 123}
	c := New(64 << 20)

	r1, rel1, out1 := c.Reader("w", src.n, src.reader)
	if out1 != OutcomeCapture {
		t.Fatalf("first reader outcome %q, want capture", out1)
	}
	sameRecs(t, trace.Collect(r1, 0), src.expected())
	rel1()

	r2, rel2, out2 := c.Reader("w", src.n, src.reader)
	if out2 != OutcomeReplay {
		t.Fatalf("second reader outcome %q, want replay", out2)
	}
	sameRecs(t, trace.Collect(r2, 0), src.expected())
	rel2()

	if got := src.built.Load(); got != 1 {
		t.Errorf("source constructed %d times, want 1", got)
	}
	s := c.Stats()
	if s.Captures != 1 || s.CapturesDone != 1 || s.Replays != 1 || s.Emulations != 1 {
		t.Errorf("stats %+v: want 1 capture, 1 done, 1 replay, 1 emulation", s)
	}
	if want := int64(src.n) * RecSize; s.ResidentBytes != want || s.Entries != 1 {
		t.Errorf("resident %d bytes / %d entries, want %d / 1", s.ResidentBytes, s.Entries, want)
	}
	if s.CapturingBytes != 0 || s.Capturing != 0 {
		t.Errorf("in-flight accounting not drained: %+v", s)
	}
	if hr := s.HitRatio(); hr != 0.5 {
		t.Errorf("hit ratio %v, want 0.5 (1 replay of 2 readers)", hr)
	}
}

// A reader released before draining its stream must abort the capture and
// leave nothing resident; the next reader re-captures from scratch.
func TestAbandonedCaptureAborts(t *testing.T) {
	src := &synthSource{seed: 11, n: publishChunk * 2}
	c := New(64 << 20)

	r, release, _ := c.Reader("w", src.n, src.reader)
	var rec trace.Rec
	for i := 0; i < publishChunk+5; i++ {
		if !r.Next(&rec) {
			t.Fatal("stream ended early")
		}
	}
	release()
	release() // idempotent

	s := c.Stats()
	if s.CapturesAborted != 1 || s.CapturesDone != 0 || s.Entries != 0 {
		t.Fatalf("after abort: %+v, want 1 aborted, 0 done, 0 entries", s)
	}
	if s.ResidentBytes != 0 || s.CapturingBytes != 0 {
		t.Fatalf("byte accounting leaked after abort: %+v", s)
	}

	r2, rel2, out := c.Reader("w", src.n, src.reader)
	if out != OutcomeCapture {
		t.Fatalf("post-abort outcome %q, want a fresh capture", out)
	}
	sameRecs(t, trace.Collect(r2, 0), src.expected())
	rel2()
	if got := c.Stats().CapturesDone; got != 1 {
		t.Errorf("captures done = %d, want 1", got)
	}
}

// A follower that outlives an abandoned capture falls back to a live
// emulator and still observes the exact full stream.
func TestFollowerFallsBackOpen(t *testing.T) {
	src := &synthSource{seed: 13, n: publishChunk * 3}
	c := New(64 << 20)

	lead, releaseLead, _ := c.Reader("w", src.n, src.reader)
	var rec trace.Rec
	// Publish exactly two chunks, then stall the lead mid-third-chunk.
	for i := 0; i < publishChunk*2+10; i++ {
		lead.Next(&rec)
	}

	follower, relF, out := c.Reader("w", src.n, src.reader)
	if out != OutcomeFollow {
		t.Fatalf("follower outcome %q, want follow", out)
	}
	var got []trace.Rec
	// The follower can consume the published prefix without parking.
	for i := 0; i < publishChunk*2; i++ {
		if !follower.Next(&rec) {
			t.Fatal("published prefix ended early")
		}
		got = append(got, rec)
	}

	releaseLead() // abandon: follower must fail open to live emulation
	for follower.Next(&rec) {
		got = append(got, rec)
	}
	relF()
	sameRecs(t, got, src.expected())

	s := c.Stats()
	if s.Fallbacks != 1 || s.CapturesAborted != 1 {
		t.Errorf("stats %+v: want 1 fallback, 1 aborted", s)
	}
	if s.Emulations != 2 { // lead + the follower's fallback
		t.Errorf("emulations = %d, want 2", s.Emulations)
	}
}

// Concurrent readers over one key: single-flight (one emulation), every
// stream identical, and parked followers are woken by chunk publication.
// CI runs this under -race.
func TestConcurrentReadersSingleFlight(t *testing.T) {
	src := &synthSource{seed: 17, n: publishChunk*4 + 99}
	c := New(64 << 20)
	want := src.expected()

	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, release, _ := c.Reader("w", src.n, src.reader)
			defer release()
			got := trace.Collect(r, 0)
			if len(got) != len(want) {
				errs <- "short stream"
				return
			}
			for j := range got {
				if got[j] != want[j] {
					errs <- "stream diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	s := c.Stats()
	if got := src.built.Load(); got != 1 {
		t.Fatalf("source constructed %d times, want 1 (single-flight)", got)
	}
	if s.Emulations != 1 || s.Captures != 1 || s.Replays+s.Follows != readers-1 {
		t.Errorf("stats %+v: want 1 emulation, 1 capture, %d replay+follow", s, readers-1)
	}
}

func TestBypassPaths(t *testing.T) {
	src := &synthSource{seed: 19, n: 64}

	var nilCache *Cache
	r, release, out := nilCache.Reader("w", src.n, src.reader)
	if out != OutcomeBypass {
		t.Fatalf("nil cache outcome %q, want bypass", out)
	}
	sameRecs(t, trace.Collect(r, 0), src.expected())
	release()
	if s := nilCache.Stats(); s != (Stats{}) {
		t.Errorf("nil cache stats %+v, want zero", s)
	}

	zero := New(0)
	if _, rel, out := zero.Reader("w", src.n, src.reader); out != OutcomeBypass {
		t.Errorf("zero-budget outcome %q, want bypass", out)
	} else {
		rel()
	}

	c := New(16 * RecSize)
	if _, rel, out := c.Reader("w", 0, src.reader); out != OutcomeBypass {
		t.Errorf("instrs=0 outcome %q, want bypass", out)
	} else {
		rel()
	}
	if _, rel, out := c.Reader("w", 17, src.reader); out != OutcomeBypass {
		t.Errorf("over-budget outcome %q, want bypass", out)
	} else {
		rel()
	}
	s := c.Stats()
	if s.Bypasses != 2 || s.TooLarge != 1 {
		t.Errorf("stats %+v: want 2 bypasses, 1 too-large (instrs=0 is not too-large)", s)
	}
}

// Completing a second capture under a budget that holds only one stream
// evicts the least-recently-used entry; a reader for the victim re-captures.
func TestEvictionUnderPressure(t *testing.T) {
	const n = publishChunk + 500
	a := &synthSource{seed: 23, n: n}
	b := &synthSource{seed: 29, n: n}
	c := New(int64(n+publishChunk) * RecSize) // one stream + headroom, not two

	ra, relA, _ := c.Reader("a", n, a.reader)
	sameRecs(t, trace.Collect(ra, 0), a.expected())
	relA()
	rb, relB, _ := c.Reader("b", n, b.reader)
	sameRecs(t, trace.Collect(rb, 0), b.expected())
	relB()

	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 1 {
		t.Fatalf("stats %+v: want 1 eviction, 1 resident entry", s)
	}
	if want := int64(n) * RecSize; s.ResidentBytes != want {
		t.Fatalf("resident %d bytes, want %d", s.ResidentBytes, want)
	}

	// "b" survived (most recent); "a" re-captures.
	if _, rel, out := c.Reader("b", n, b.reader); out != OutcomeReplay {
		t.Errorf("survivor outcome %q, want replay", out)
	} else {
		rel()
	}
	if _, rel, out := c.Reader("a", n, a.reader); out != OutcomeCapture {
		t.Errorf("victim outcome %q, want re-capture", out)
	} else {
		rel()
	}
}

// When concurrent captures outgrow the budget with nothing left to evict,
// the later capture fails open: it keeps streaming (uncached) and its
// followers fall back, so correctness never depends on the budget.
func TestCaptureAbortsWhenBudgetExhausted(t *testing.T) {
	const n = publishChunk + 100
	a := &synthSource{seed: 31, n: n}
	b := &synthSource{seed: 37, n: n}
	// Holds one full stream, but not two concurrently published chunks —
	// and with both captures in flight there is nothing resident to evict.
	c := New(int64(publishChunk*3/2) * RecSize)

	ra, relA, _ := c.Reader("a", n, a.reader)
	rb, relB, _ := c.Reader("b", n, b.reader)
	var rec trace.Rec
	gotA := make([]trace.Rec, 0, n)
	gotB := make([]trace.Rec, 0, n)
	// Interleave so both leads publish their first chunk while the other is
	// still in flight: the second publication exceeds the budget and that
	// capture must fail open while its stream keeps flowing.
	for i := 0; i < n; i++ {
		if !ra.Next(&rec) {
			t.Fatal("a ended early")
		}
		gotA = append(gotA, rec)
		if !rb.Next(&rec) {
			t.Fatal("b ended early")
		}
		gotB = append(gotB, rec)
	}
	// Drain past the end so the surviving capture finishes.
	if ra.Next(&rec) || rb.Next(&rec) {
		t.Fatal("stream longer than requested")
	}
	relA()
	relB()
	sameRecs(t, gotA, a.expected())
	sameRecs(t, gotB, b.expected())

	s := c.Stats()
	if s.CapturesDone != 1 || s.CapturesAborted != 1 {
		t.Errorf("stats %+v: want exactly one capture retained, one aborted", s)
	}
	if s.ResidentBytes+s.CapturingBytes > c.Budget() {
		t.Errorf("budget overshoot: %d resident + %d capturing > %d",
			s.ResidentBytes, s.CapturingBytes, c.Budget())
	}
}

func TestKeyEncoding(t *testing.T) {
	keys := map[string]bool{}
	for _, k := range []string{
		Key("gcc", 1), Key("gcc", 256), Key("gcc", 1<<40),
		Key("gc", 1), Key("gcc\x00", 1), Key("", 0),
	} {
		if keys[k] {
			t.Fatalf("key collision for %q", k)
		}
		keys[k] = true
	}
}

func TestNegativeBudgetIsDisabled(t *testing.T) {
	c := New(-5)
	src := &synthSource{seed: 41, n: 8}
	r, rel, out := c.Reader("w", src.n, src.reader)
	if out != OutcomeBypass {
		t.Fatalf("outcome %q, want bypass", out)
	}
	sameRecs(t, trace.Collect(r, 0), src.expected())
	rel()
	if s := c.Stats(); s.Bypasses != 1 || s.BudgetBytes != 0 {
		t.Errorf("stats %+v", s)
	}
}
