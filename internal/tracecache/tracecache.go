// Package tracecache is a byte-budgeted, concurrency-safe capture/replay
// cache for functional-emulation trace streams, keyed by (workload,
// instruction budget).
//
// Every experiment matrix sweeps many core configurations over the same
// workloads, yet each timing simulation re-runs the functional emulator
// over an identical instruction stream. The stream is fully determined by
// (workload, instrs) — the emulator takes no configuration — so the cache
// records it once and replays the buffered records to every other
// configuration:
//
//   - the first reader for a key becomes the capture *lead*: it streams
//     from the live emulator while appending each trace.Rec (a fixed-size
//     value struct — cheap to copy) into an in-memory buffer;
//   - concurrent readers for the same key *follow* the capture
//     (single-flight: one emulation no matter how many configurations ask
//     at once), tailing the published prefix lock-free and parking only
//     when they catch up to the lead;
//   - once a capture completes, later readers get a pure replay of the
//     buffered records with zero re-emulation;
//   - a capture that is abandoned (its simulation stopped early) or that
//     runs out of budget fails open: followers transparently fall back to
//     a fresh emulator, skipping the records they already consumed, so a
//     reader always observes the exact stream the live emulator would have
//     produced.
//
// The byte budget bounds resident memory: complete captures live in an LRU
// keyed by bytes, in-flight captures count against the same budget, and a
// stream whose upper bound (instrs × record size) cannot fit is bypassed
// to live emulation without buffering.
package tracecache

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"dlvp/internal/trace"
)

// RecSize is the in-memory size of one buffered trace record; the byte
// budget is accounted in these units.
const RecSize = int64(unsafe.Sizeof(trace.Rec{}))

// publishChunk is how many records the capture lead appends between
// visibility publications. Followers lag the lead by at most this many
// records; the lead pays one atomic store and one channel close per chunk.
const publishChunk = 4096

// Outcome classifies how a Reader call was served.
type Outcome string

const (
	// OutcomeCapture: this reader is the lead recording a live emulation.
	OutcomeCapture Outcome = "capture"
	// OutcomeReplay: served entirely from a completed capture.
	OutcomeReplay Outcome = "replay"
	// OutcomeFollow: tailing a capture another reader is recording.
	OutcomeFollow Outcome = "follow"
	// OutcomeBypass: served by live emulation without recording (cache
	// disabled, zero budget, or the stream cannot fit the budget).
	OutcomeBypass Outcome = "bypass"
)

// snapshot is the immutable published view of one capture. Records
// [0, len(recs)) are final and safe to read concurrently; the lead appends
// beyond len into the same backing array before publishing the next view.
type snapshot struct {
	recs     []trace.Rec
	complete bool // stream ended; recs is the whole trace
	failed   bool // capture aborted; readers past recs must re-emulate
}

// entry is one (workload, instrs) stream, either mid-capture or complete.
type entry struct {
	key    string
	instrs uint64
	source func() trace.Reader

	snap atomic.Pointer[snapshot]

	// wake is closed and replaced after every publication so parked
	// followers re-check the snapshot.
	mu   sync.Mutex
	wake chan struct{}

	// LRU bookkeeping (guarded by the cache mutex); resident entries only.
	prev, next *entry
	resident   bool
}

func (e *entry) publish(s *snapshot) {
	e.snap.Store(s)
	e.mu.Lock()
	close(e.wake)
	e.wake = make(chan struct{})
	e.mu.Unlock()
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	BudgetBytes     int64 `json:"budget_bytes"`
	ResidentBytes   int64 `json:"resident_bytes"`  // complete captures held
	CapturingBytes  int64 `json:"capturing_bytes"` // published bytes of live captures
	Entries         int   `json:"entries"`         // complete captures resident
	Capturing       int   `json:"capturing"`       // captures in flight now
	Captures        int64 `json:"captures"`        // capture leads started
	CapturesDone    int64 `json:"captures_done"`   // captures that completed and were retained
	CapturesAborted int64 `json:"captures_aborted"`
	Replays         int64 `json:"replays"` // readers served from a complete capture
	Follows         int64 `json:"follows"` // readers that tailed a live capture
	Bypasses        int64 `json:"bypasses"`
	Fallbacks       int64 `json:"fallbacks"` // followers that resumed on a live emulator
	Evictions       int64 `json:"evictions"`
	TooLarge        int64 `json:"too_large"`  // streams whose bound exceeds the budget
	Emulations      int64 `json:"emulations"` // live emulator streams constructed
}

// HitRatio returns the fraction of readers served without starting a new
// emulation (replays and follows over all readers), in [0, 1].
func (s Stats) HitRatio() float64 {
	total := s.Replays + s.Follows + s.Captures + s.Bypasses
	if total == 0 {
		return 0
	}
	return float64(s.Replays+s.Follows) / float64(total)
}

// Cache is the capture/replay cache. The zero value is not usable;
// construct with New. A nil *Cache is a valid "disabled" cache: Reader
// bypasses to live emulation.
type Cache struct {
	budget int64

	mu       sync.Mutex
	entries  map[string]*entry // capturing + resident
	lruHead  *entry            // most recent resident entry
	lruTail  *entry            // least recent resident entry
	resident int64
	live     int64 // published bytes of in-flight captures
	nRes     int
	nLive    int

	captures        int64
	capturesDone    int64
	capturesAborted int64
	replays         int64
	follows         int64
	bypasses        int64
	fallbacks       int64
	evictions       int64
	tooLarge        int64
	emulations      int64
}

// New returns a cache retaining up to budget bytes of trace records.
// A non-positive budget yields a cache that bypasses everything (every
// reader is live emulation), which keeps callers free of nil checks.
func New(budget int64) *Cache {
	if budget < 0 {
		budget = 0
	}
	return &Cache{budget: budget, entries: make(map[string]*entry)}
}

// Budget reports the configured byte budget.
func (c *Cache) Budget() int64 {
	if c == nil {
		return 0
	}
	return c.budget
}

// Key returns the cache key for a (workload, instrs) stream.
func Key(workload string, instrs uint64) string {
	// instrs is encoded in fixed width so keys never collide across the
	// name/budget boundary.
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(instrs >> (8 * i))
	}
	return workload + "\x00" + string(buf[:])
}

// Reader returns a trace.Reader for the (workload, instrs) stream, a
// release function the caller must invoke once it is done with the reader,
// and the outcome describing how the stream is served. source constructs a
// fresh live emulation stream; the cache calls it for capture leads,
// bypasses, and fallbacks only.
//
// The returned reader produces exactly the records source() would,
// regardless of outcome. Reader never blocks; a follower parks inside Next
// only while the lead is still producing, and wakes to a transparent live
// fallback if the lead abandons its capture.
func (c *Cache) Reader(workload string, instrs uint64, source func() trace.Reader) (trace.Reader, func(), Outcome) {
	nop := func() {}
	if c == nil || c.budget == 0 {
		if c != nil {
			c.mu.Lock()
			c.bypasses++
			c.emulations++
			c.mu.Unlock()
		}
		return source(), nop, OutcomeBypass
	}
	// An unbounded stream (instrs == 0) or one whose upper bound cannot
	// fit is never buffered. The bound is conservative: a program that
	// halts early would have fit, but workload kernels run forever and
	// always fill their budget.
	if instrs == 0 || int64(instrs) > c.budget/RecSize {
		c.mu.Lock()
		c.bypasses++
		c.emulations++
		if instrs != 0 {
			c.tooLarge++
		}
		c.mu.Unlock()
		return source(), nop, OutcomeBypass
	}

	key := Key(workload, instrs)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		snap := e.snap.Load()
		if snap.complete {
			c.replays++
			if e.resident {
				c.lruTouch(e)
			}
			c.mu.Unlock()
			return &replayReader{c: c, e: e}, nop, OutcomeReplay
		}
		c.follows++
		c.mu.Unlock()
		return &replayReader{c: c, e: e}, nop, OutcomeFollow
	}
	e := &entry{key: key, instrs: instrs, source: source, wake: make(chan struct{})}
	e.snap.Store(&snapshot{})
	c.entries[key] = e
	c.nLive++
	c.captures++
	c.emulations++
	c.mu.Unlock()

	cap := &captureReader{c: c, e: e, inner: source(), buf: make([]trace.Rec, 0, instrs)}
	return cap, cap.release, OutcomeCapture
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		BudgetBytes:     c.budget,
		ResidentBytes:   c.resident,
		CapturingBytes:  c.live,
		Entries:         c.nRes,
		Capturing:       c.nLive,
		Captures:        c.captures,
		CapturesDone:    c.capturesDone,
		CapturesAborted: c.capturesAborted,
		Replays:         c.replays,
		Follows:         c.follows,
		Bypasses:        c.bypasses,
		Fallbacks:       c.fallbacks,
		Evictions:       c.evictions,
		TooLarge:        c.tooLarge,
		Emulations:      c.emulations,
	}
}

// --- intrusive LRU over resident entries (cache mutex held) -----------------

func (c *Cache) lruPushFront(e *entry) {
	e.prev, e.next = nil, c.lruHead
	if c.lruHead != nil {
		c.lruHead.prev = e
	}
	c.lruHead = e
	if c.lruTail == nil {
		c.lruTail = e
	}
}

func (c *Cache) lruRemove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.lruHead == e {
		c.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.lruTail == e {
		c.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) lruTouch(e *entry) {
	if c.lruHead == e {
		return
	}
	c.lruRemove(e)
	c.lruPushFront(e)
}

// evict drops least-recently-used resident entries until the resident and
// in-flight bytes fit the budget, or nothing resident remains. Evicted
// streams stay valid for readers already holding their snapshot — the
// records are immutable and garbage-collected with the last reader.
func (c *Cache) evict() {
	for c.lruTail != nil && c.resident+c.live > c.budget {
		victim := c.lruTail
		c.lruRemove(victim)
		victim.resident = false
		delete(c.entries, victim.key)
		c.resident -= int64(len(victim.snap.Load().recs)) * RecSize
		c.nRes--
		c.evictions++
	}
}

// --- capture (lead) ----------------------------------------------------------

// captureReader streams from the live emulator, buffering every record and
// periodically publishing the prefix to followers.
type captureReader struct {
	c        *Cache
	e        *entry
	inner    trace.Reader
	buf      []trace.Rec
	pub      int  // records already published
	done     bool // completed or aborted
	bypassed bool // budget pressure: stop buffering, keep streaming
}

func (r *captureReader) Next(rec *trace.Rec) bool {
	if !r.inner.Next(rec) {
		if !r.done {
			r.finish()
		}
		return false
	}
	if !r.bypassed {
		r.buf = append(r.buf, *rec)
		if len(r.buf)-r.pub >= publishChunk {
			r.publishChunk(false)
		}
	}
	return true
}

// publishChunk makes the buffered prefix visible and charges it against
// the budget, evicting resident entries under pressure. If the in-flight
// captures alone exceed the budget, this capture aborts (streaming
// continues uncached; followers fall back).
func (r *captureReader) publishChunk(final bool) {
	delta := int64(len(r.buf)-r.pub) * RecSize
	c := r.c
	c.mu.Lock()
	c.live += delta
	c.evict()
	if c.resident+c.live > c.budget {
		// Another capture (or this one) outgrew the budget with nothing
		// left to evict; fail this capture open rather than overshoot.
		c.live -= int64(len(r.buf)) * RecSize
		c.nLive--
		c.capturesAborted++
		delete(c.entries, r.e.key)
		c.mu.Unlock()
		r.bypassed, r.done = true, true
		r.buf = nil
		r.e.publish(&snapshot{recs: r.e.snap.Load().recs, failed: true})
		return
	}
	c.mu.Unlock()
	r.pub = len(r.buf)
	if !final {
		r.e.publish(&snapshot{recs: r.buf[:r.pub]})
	}
}

// finish publishes the complete stream and moves the entry into the
// resident LRU. The complete snapshot is published before the LRU insert
// so eviction (which sizes victims by their snapshot) always sees final
// byte counts.
func (r *captureReader) finish() {
	r.publishChunk(true)
	if r.done { // aborted by the final budget check
		return
	}
	r.done = true
	r.e.publish(&snapshot{recs: r.buf, complete: true})
	c := r.c
	size := int64(len(r.buf)) * RecSize
	c.mu.Lock()
	c.live -= size
	c.nLive--
	c.resident += size
	c.nRes++
	c.capturesDone++
	r.e.resident = true
	c.lruPushFront(r.e)
	c.evict()
	c.mu.Unlock()
}

// release aborts the capture if the stream was not fully consumed (the
// simulation stopped early or panicked); followers fall back to live
// emulation. Safe to call after normal completion, where it is a no-op.
func (r *captureReader) release() {
	if r.done {
		return
	}
	r.done, r.bypassed = true, true
	c := r.c
	c.mu.Lock()
	c.live -= int64(r.pub) * RecSize
	c.nLive--
	c.capturesAborted++
	delete(c.entries, r.e.key)
	c.mu.Unlock()
	r.e.publish(&snapshot{recs: r.e.snap.Load().recs, failed: true})
	r.buf = nil
}

// --- replay / follow ---------------------------------------------------------

// replayReader streams a captured entry: lock-free over the published
// prefix, parking only when it catches up to a live capture, and falling
// back to a fresh emulator if the capture fails.
type replayReader struct {
	c        *Cache
	e        *entry
	pos      int
	fallback trace.Reader
}

func (r *replayReader) Next(rec *trace.Rec) bool {
	if r.fallback != nil {
		return r.fallback.Next(rec)
	}
	for {
		snap := r.e.snap.Load()
		if r.pos < len(snap.recs) {
			*rec = snap.recs[r.pos]
			r.pos++
			return true
		}
		if snap.complete {
			return false
		}
		if snap.failed {
			r.startFallback()
			return r.fallback.Next(rec)
		}
		// Caught up with the lead: grab the wake channel, then re-check
		// the snapshot so a publication between load and grab is never
		// missed (the publisher stores the snapshot before closing wake).
		r.e.mu.Lock()
		ch := r.e.wake
		r.e.mu.Unlock()
		if r.e.snap.Load() != snap {
			continue
		}
		<-ch
	}
}

// startFallback resumes the stream on a fresh live emulator, discarding
// the records this reader already delivered. The emulator is
// deterministic, so the resumed stream continues exactly where the
// published prefix ended.
func (r *replayReader) startFallback() {
	c := r.c
	c.mu.Lock()
	c.fallbacks++
	c.emulations++
	c.mu.Unlock()
	r.fallback = r.e.source()
	var skip trace.Rec
	for i := 0; i < r.pos; i++ {
		if !r.fallback.Next(&skip) {
			break
		}
	}
}
