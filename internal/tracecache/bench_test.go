package tracecache_test

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"dlvp/internal/config"
	"dlvp/internal/metrics"
	"dlvp/internal/runner"
	"dlvp/internal/trace"
	"dlvp/internal/tracecache"
	"dlvp/internal/workloads"
)

// BenchmarkReplayVsEmulate is the PR's perf gate, run once in CI bench-sanity
// (-benchtime 1x). It fails the run (b.Errorf) unless
//
//  1. replaying a captured stream delivers records faster than live
//     emulation, and
//  2. a 3-config mini-matrix through the runner is faster with the trace
//     cache (capture + replays) than without it, with bit-identical
//     RunStats.
//
// Both gates compare best-of-3 timings and retry a few times before
// declaring a regression, so scheduler noise cannot flake CI; a genuine
// regression fails every attempt.
func BenchmarkReplayVsEmulate(b *testing.B) {
	const (
		instrs   = 20_000
		minOf    = 3
		attempts = 6
	)
	w, ok := workloads.ByName("perlbmk")
	if !ok {
		b.Fatal("perlbmk missing from registry")
	}

	for i := 0; i < b.N; i++ {
		// Gate 1: raw trace delivery. Warm a capture, then race a pure
		// replay against a fresh emulation of the same stream.
		tc := tracecache.New(64 << 20)
		warm, release, _ := tc.Reader(w.Name, instrs, func() trace.Reader { return w.Reader(instrs) })
		drain(warm)
		release()

		deliverGate := false
		var emuBest, replayBest time.Duration
		for a := 0; a < attempts && !deliverGate; a++ {
			emuBest = bestOf(minOf, func() { drain(w.Reader(instrs)) })
			replayBest = bestOf(minOf, func() {
				r, rel, _ := tc.Reader(w.Name, instrs, func() trace.Reader { return w.Reader(instrs) })
				drain(r)
				rel()
			})
			deliverGate = replayBest < emuBest
		}
		if !deliverGate {
			b.Errorf("replay delivery no faster than emulation: %v vs %v", replayBest, emuBest)
		} else {
			b.ReportMetric(float64(emuBest)/float64(replayBest), "delivery-speedup")
		}

		// Gate 2: end-to-end mini-matrix. The cached matrix pays one capture
		// per workload and replays the rest; results must not change.
		matrixGate := false
		var plainBest, cachedBest time.Duration
		var plainStats, cachedStats string
		for a := 0; a < attempts && !matrixGate; a++ {
			plainBest = bestOfMatrix(b, minOf, nil, &plainStats)
			cachedBest = bestOfMatrix(b, minOf, func() *tracecache.Cache {
				return tracecache.New(256 << 20)
			}, &cachedStats)
			matrixGate = cachedBest < plainBest
		}
		if plainStats != cachedStats {
			b.Fatalf("matrix results diverge with the trace cache:\n plain: %s\ncached: %s", plainStats, cachedStats)
		}
		if !matrixGate {
			b.Errorf("cached matrix no faster than emulate-per-job: %v vs %v", cachedBest, plainBest)
		} else {
			b.ReportMetric(float64(plainBest)/float64(cachedBest), "matrix-speedup")
		}
	}
}

func drain(r trace.Reader) {
	var rec trace.Rec
	for r.Next(&rec) {
	}
}

func bestOf(n int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// bestOfMatrix times the 3-config mini-matrix n times (serial execution,
// result cache off so every job simulates) and records the JSON of the last
// run's results for the bit-identical check. newCache == nil runs without a
// trace cache; otherwise each timing gets a fresh cache so the capture cost
// is always included.
func bestOfMatrix(b *testing.B, n int, newCache func() *tracecache.Cache, statsOut *string) time.Duration {
	b.Helper()
	const instrs = 20_000
	configs := []config.Core{config.Baseline(), config.DLVP(), config.VTAGE()}
	names := workloads.Names()[:4]
	var jobs []runner.Job
	for _, cfg := range configs {
		for _, name := range names {
			jobs = append(jobs, runner.Job{Workload: name, Config: cfg, Instrs: instrs})
		}
	}

	best := time.Duration(1<<63 - 1)
	var results []metrics.RunStats
	for i := 0; i < n; i++ {
		opts := runner.Options{Workers: 1, CacheEntries: -1}
		if newCache != nil {
			opts.TraceCache = newCache()
		}
		eng := runner.New(opts)
		start := time.Now()
		out, err := eng.RunAll(context.Background(), jobs, runner.Matrix{MaxParallel: 1})
		if err != nil {
			b.Fatalf("matrix: %v", err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		results = out
	}
	enc, err := json.Marshal(results)
	if err != nil {
		b.Fatalf("marshal results: %v", err)
	}
	*statsOut = string(enc)
	return best
}
