package checkpoint

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"

	"dlvp/internal/emu"
	"dlvp/internal/program"
	"dlvp/internal/trace"
)

// DefaultBudgetBytes bounds the store's resident encoded checkpoints
// when a caller passes 0 to NewStore. A checkpoint costs roughly
// 4 KiB per resident memory page plus ~0.5 KiB of header, so the
// default holds thousands of checkpoints for the mini-ISA kernels.
const DefaultBudgetBytes = int64(256 << 20)

// DefaultCaptureStride is the checkpoint spacing used when a full
// emulation pass is captured opportunistically (Capture with stride 0):
// one checkpoint per million dynamic instructions.
const DefaultCaptureStride = uint64(1_000_000)

// Outcome classifies how a StateAt/CPUAt request was served.
type Outcome string

const (
	// OutcomeFresh: offset 0 — a fresh CPU, no store involvement.
	OutcomeFresh Outcome = "fresh"
	// OutcomeHit: decoded from a resident checkpoint at the exact offset.
	OutcomeHit Outcome = "hit"
	// OutcomeChained: restored the nearest earlier checkpoint and
	// emulated the gap (the result is stored for next time).
	OutcomeChained Outcome = "chained"
	// OutcomeCold: no earlier checkpoint existed; emulated from the
	// program entry (the result is stored for next time).
	OutcomeCold Outcome = "cold"
	// OutcomeCoalesced: waited on a concurrent build of the same key.
	OutcomeCoalesced Outcome = "coalesced"
)

// HaltedEarlyError reports a workload that halted before reaching the
// requested checkpoint offset — the stream simply has no state there.
type HaltedEarlyError struct {
	Workload string
	Want     uint64 // requested offset
	Got      uint64 // instructions actually executed
}

func (e *HaltedEarlyError) Error() string {
	return fmt.Sprintf("checkpoint: workload %q halted after %d instructions, before offset %d",
		e.Workload, e.Got, e.Want)
}

// entry is one resident encoded checkpoint.
type entry struct {
	key      string
	workload string
	offset   uint64
	enc      []byte
	sum      [sha256.Size]byte

	prev, next *entry // intrusive LRU (head = most recent)
}

// flight is one in-progress checkpoint build; duplicate requests wait on
// done instead of emulating the same prefix twice.
type flight struct {
	done chan struct{}
	snap *emu.Snapshot // built state (readers must Clone)
	err  error
}

// Stats is a snapshot of the store counters.
type Stats struct {
	BudgetBytes   int64 `json:"budget_bytes"`
	ResidentBytes int64 `json:"resident_bytes"`
	Entries       int   `json:"entries"`
	Hits          int64 `json:"hits"`    // exact-offset restores
	Chained       int64 `json:"chained"` // restored an earlier checkpoint, emulated the gap
	Cold          int64 `json:"cold"`    // emulated from the program entry
	Coalesced     int64 `json:"coalesced"`
	Captured      int64 `json:"captured"` // checkpoints deposited by Capture readers
	Evictions     int64 `json:"evictions"`
}

// Store is an in-memory, byte-budgeted, content-addressed checkpoint
// store keyed by (workload, instruction offset). Safe for concurrent
// use. The zero value is not usable; construct with NewStore. A nil
// *Store is valid and behaves as an always-cold store with no retention.
type Store struct {
	budget int64

	mu       sync.Mutex
	entries  map[string]*entry
	index    map[string][]uint64 // workload -> resident offsets, ascending
	flights  map[string]*flight
	lruHead  *entry
	lruTail  *entry
	resident int64

	hits      int64
	chained   int64
	cold      int64
	coalesced int64
	captured  int64
	evictions int64
}

// NewStore returns a store retaining up to budget bytes of encoded
// checkpoints (0 selects DefaultBudgetBytes).
func NewStore(budget int64) *Store {
	if budget <= 0 {
		budget = DefaultBudgetBytes
	}
	return &Store{
		budget:  budget,
		entries: make(map[string]*entry),
		index:   make(map[string][]uint64),
		flights: make(map[string]*flight),
	}
}

// storeKey builds the map key for (workload, offset); the offset is
// fixed-width so keys never collide across the name boundary.
func storeKey(workload string, offset uint64) string {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(offset >> (8 * i))
	}
	return workload + "\x00" + string(buf[:])
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		BudgetBytes:   s.budget,
		ResidentBytes: s.resident,
		Entries:       len(s.entries),
		Hits:          s.hits,
		Chained:       s.chained,
		Cold:          s.cold,
		Coalesced:     s.coalesced,
		Captured:      s.captured,
		Evictions:     s.evictions,
	}
}

// StateAt returns the architectural state of workload (built from prog)
// after exactly offset dynamic instructions. The returned snapshot is a
// private copy the caller owns. Service order: exact resident checkpoint
// (decoded and hash-verified), else restore the nearest earlier
// checkpoint and emulate the gap, else emulate from the program entry;
// either build deposits a checkpoint at offset for next time.
// Concurrent requests for the same (workload, offset) coalesce onto one
// build. A workload that halts before offset yields *HaltedEarlyError.
func (s *Store) StateAt(workload string, prog *program.Program, offset uint64) (*emu.Snapshot, Outcome, error) {
	if offset == 0 {
		return emu.New(prog).Snapshot(), OutcomeFresh, nil
	}
	if s == nil {
		return buildFrom(nil, workload, prog, offset)
	}
	key := storeKey(workload, offset)
	s.mu.Lock()
	if snap, err := s.decodeLocked(key); err == nil && snap != nil {
		s.hits++
		s.mu.Unlock()
		return snap, OutcomeHit, nil
	}
	if fl, ok := s.flights[key]; ok {
		s.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, OutcomeCoalesced, fl.err
		}
		s.mu.Lock()
		s.coalesced++
		s.mu.Unlock()
		return fl.snap.Clone(), OutcomeCoalesced, nil
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[key] = fl

	// Base for the chain: the nearest resident checkpoint below offset.
	var base *emu.Snapshot
	offs := s.index[workload]
	i := sort.Search(len(offs), func(i int) bool { return offs[i] >= offset })
	for i > 0 {
		i--
		snap, err := s.decodeLocked(storeKey(workload, offs[i]))
		if err == nil && snap != nil {
			base = snap
			break
		}
	}
	s.mu.Unlock()

	snap, outcome, err := buildFrom(base, workload, prog, offset)
	if err == nil {
		s.put(workload, offset, snap)
		s.mu.Lock()
		if outcome == OutcomeChained {
			s.chained++
		} else {
			s.cold++
		}
		s.mu.Unlock()
	}
	fl.snap, fl.err = snap, err
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(fl.done)
	if err != nil {
		return nil, outcome, err
	}
	return snap.Clone(), outcome, nil
}

// buildFrom emulates workload forward to offset, starting from base
// (nil: the program entry). It returns a snapshot at exactly offset.
func buildFrom(base *emu.Snapshot, workload string, prog *program.Program, offset uint64) (*emu.Snapshot, Outcome, error) {
	var cpu *emu.CPU
	outcome := OutcomeCold
	if base != nil && base.Seq <= offset {
		cpu = emu.NewFromSnapshot(prog, base)
		outcome = OutcomeChained
	} else {
		cpu = emu.New(prog)
	}
	cpu.Run(offset - cpu.Executed())
	if cpu.Executed() != offset {
		return nil, outcome, &HaltedEarlyError{Workload: workload, Want: offset, Got: cpu.Executed()}
	}
	return cpu.Snapshot(), outcome, nil
}

// CPUAt returns a CPU for workload restored to exactly offset dynamic
// instructions (see StateAt for the service order). The CPU is
// independent of the store; its MaxInstrs is unset.
func (s *Store) CPUAt(workload string, prog *program.Program, offset uint64) (*emu.CPU, Outcome, error) {
	snap, outcome, err := s.StateAt(workload, prog, offset)
	if err != nil {
		return nil, outcome, err
	}
	return emu.NewFromSnapshot(prog, snap), outcome, nil
}

// decodeLocked decodes the resident entry for key, verifying its content
// hash. Returns (nil, nil) when the key is not resident. A hash or codec
// mismatch drops the entry (corruption must not be served) and reports
// the error. Caller holds s.mu.
func (s *Store) decodeLocked(key string) (*emu.Snapshot, error) {
	e, ok := s.entries[key]
	if !ok {
		return nil, nil
	}
	if sha256.Sum256(e.enc) != e.sum {
		s.removeLocked(e)
		return nil, fmt.Errorf("checkpoint: content hash mismatch for %q@%d", e.workload, e.offset)
	}
	snap, err := Decode(e.enc)
	if err != nil {
		s.removeLocked(e)
		return nil, err
	}
	s.lruTouch(e)
	return snap, nil
}

// put encodes and inserts a checkpoint, evicting LRU entries to respect
// the byte budget. An encoding larger than the whole budget is not
// retained.
func (s *Store) put(workload string, offset uint64, snap *emu.Snapshot) {
	if s == nil || offset == 0 {
		return
	}
	enc := Encode(snap)
	if int64(len(enc)) > s.budget {
		return
	}
	key := storeKey(workload, offset)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return
	}
	e := &entry{key: key, workload: workload, offset: offset, enc: enc, sum: sha256.Sum256(enc)}
	s.entries[key] = e
	s.indexInsert(workload, offset)
	s.resident += int64(len(enc))
	s.lruPushFront(e)
	for s.lruTail != nil && s.resident > s.budget {
		victim := s.lruTail
		s.removeLocked(victim)
		s.evictions++
	}
}

// removeLocked drops e from the map, index, LRU and byte accounting.
func (s *Store) removeLocked(e *entry) {
	delete(s.entries, e.key)
	s.indexRemove(e.workload, e.offset)
	s.resident -= int64(len(e.enc))
	s.lruRemove(e)
}

func (s *Store) indexInsert(workload string, offset uint64) {
	offs := s.index[workload]
	i := sort.Search(len(offs), func(i int) bool { return offs[i] >= offset })
	if i < len(offs) && offs[i] == offset {
		return
	}
	offs = append(offs, 0)
	copy(offs[i+1:], offs[i:])
	offs[i] = offset
	s.index[workload] = offs
}

func (s *Store) indexRemove(workload string, offset uint64) {
	offs := s.index[workload]
	i := sort.Search(len(offs), func(i int) bool { return offs[i] >= offset })
	if i < len(offs) && offs[i] == offset {
		s.index[workload] = append(offs[:i], offs[i+1:]...)
	}
}

// --- intrusive LRU (s.mu held) ----------------------------------------------

func (s *Store) lruPushFront(e *entry) {
	e.prev, e.next = nil, s.lruHead
	if s.lruHead != nil {
		s.lruHead.prev = e
	}
	s.lruHead = e
	if s.lruTail == nil {
		s.lruTail = e
	}
}

func (s *Store) lruTouch(e *entry) {
	if s.lruHead == e {
		return
	}
	s.lruRemove(e)
	s.lruPushFront(e)
}

func (s *Store) lruRemove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.lruHead == e {
		s.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.lruTail == e {
		s.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

// --- opportunistic capture ---------------------------------------------------

// Capture wraps cpu (a fresh, entry-positioned emulator owned by the
// caller) so that checkpoints are deposited into the store every stride
// executed instructions as the stream is consumed (0 selects
// DefaultCaptureStride). The runner wraps trace-cache capture leads with
// this, so checkpoint capture rides the single-flight emulation the
// trace cache already guarantees — a monolithic run leaves behind the
// checkpoints a later sampled run restores. A nil store returns cpu
// unchanged.
func (s *Store) Capture(cpu *emu.CPU, workload string, stride uint64) trace.Reader {
	if s == nil {
		return cpu
	}
	if stride == 0 {
		stride = DefaultCaptureStride
	}
	next := (cpu.Executed()/stride + 1) * stride
	return &captureReader{store: s, cpu: cpu, workload: workload, stride: stride, next: next}
}

type captureReader struct {
	store    *Store
	cpu      *emu.CPU
	workload string
	stride   uint64
	next     uint64
}

func (r *captureReader) Next(rec *trace.Rec) bool {
	if !r.cpu.Next(rec) {
		return false
	}
	if r.cpu.Executed() == r.next {
		r.store.put(r.workload, r.next, r.cpu.Snapshot())
		r.store.mu.Lock()
		r.store.captured++
		r.store.mu.Unlock()
		r.next += r.stride
	}
	return true
}
