package checkpoint_test

import (
	"errors"
	"sync"
	"testing"

	"dlvp/internal/checkpoint"
	"dlvp/internal/emu"
	"dlvp/internal/program"
	"dlvp/internal/trace"
	"dlvp/internal/workloads"
)

// testWorkload returns a registered kernel (they loop forever, so any
// offset is reachable) plus its program.
func testWorkload(t testing.TB) (workloads.Workload, *program.Program) {
	t.Helper()
	w, ok := workloads.ByName("perlbmk")
	if !ok {
		t.Fatal("perlbmk missing from registry")
	}
	return w, w.Build()
}

// liveSnapshot emulates the workload from the entry to offset and
// snapshots — the ground truth every store path must reproduce.
func liveSnapshot(t testing.TB, prog *program.Program, offset uint64) *emu.Snapshot {
	t.Helper()
	cpu := emu.New(prog)
	cpu.Run(offset)
	if cpu.Executed() != offset {
		t.Fatalf("live emulation stopped at %d, want %d", cpu.Executed(), offset)
	}
	return cpu.Snapshot()
}

func TestCodecRoundTrip(t *testing.T) {
	_, prog := testWorkload(t)
	snap := liveSnapshot(t, prog, 5_000)
	enc := checkpoint.Encode(snap)
	if want := checkpoint.EncodedSize(snap.Mem.Pages()); len(enc) != want {
		t.Errorf("encoding is %d bytes, EncodedSize says %d", len(enc), want)
	}
	got, err := checkpoint.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(snap) {
		t.Error("decoded snapshot differs from the original")
	}
}

func TestCodecCanonical(t *testing.T) {
	_, prog := testWorkload(t)
	a := checkpoint.Encode(liveSnapshot(t, prog, 3_000))
	b := checkpoint.Encode(liveSnapshot(t, prog, 3_000))
	if string(a) != string(b) {
		t.Error("equal states encode to different bytes; the content hash cannot fingerprint state")
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	_, prog := testWorkload(t)
	enc := checkpoint.Encode(liveSnapshot(t, prog, 1_000))

	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xff
	if _, err := checkpoint.Decode(bad); !errors.Is(err, checkpoint.ErrBadMagic) {
		t.Errorf("flipped magic: err = %v, want ErrBadMagic", err)
	}
	if _, err := checkpoint.Decode(enc[:4]); !errors.Is(err, checkpoint.ErrBadMagic) {
		t.Errorf("4-byte input: err = %v, want ErrBadMagic", err)
	}

	bad = append([]byte(nil), enc...)
	bad[8] ^= 0xff // version field
	if _, err := checkpoint.Decode(bad); !errors.Is(err, checkpoint.ErrBadVersion) {
		t.Errorf("wrong version: err = %v, want ErrBadVersion", err)
	}

	if _, err := checkpoint.Decode(enc[:len(enc)-1]); !errors.Is(err, checkpoint.ErrTruncated) {
		t.Errorf("short input: err = %v, want ErrTruncated", err)
	}
	if _, err := checkpoint.Decode(enc[:20]); !errors.Is(err, checkpoint.ErrTruncated) {
		t.Errorf("header-only input: err = %v, want ErrTruncated", err)
	}
	if _, err := checkpoint.Decode(append(append([]byte(nil), enc...), 0)); !errors.Is(err, checkpoint.ErrTruncated) {
		t.Errorf("trailing garbage: err = %v, want ErrTruncated", err)
	}
}

// TestRestoreBitIdentical locks the PR's acceptance invariant: a
// checkpoint restore is bit-identical to live emulation at the same
// offset, and the restored CPU's continued stream matches the live one
// record for record.
func TestRestoreBitIdentical(t *testing.T) {
	w, prog := testWorkload(t)
	s := checkpoint.NewStore(0)
	const offset = 10_000

	want := liveSnapshot(t, prog, offset)
	got, outcome, err := s.StateAt(w.Name, prog, offset)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != checkpoint.OutcomeCold {
		t.Errorf("first build outcome = %q, want cold", outcome)
	}
	if !got.Equal(want) {
		t.Fatal("restored state differs from live emulation at the same offset")
	}

	// The continuation must be bit-identical too, not just the snapshot.
	live := emu.New(prog)
	live.Run(offset)
	restored := emu.NewFromSnapshot(prog, got)
	var lr, rr trace.Rec
	for i := 0; i < 1_000; i++ {
		if live.Next(&lr) != restored.Next(&rr) {
			t.Fatal("streams end at different points")
		}
		if lr != rr {
			t.Fatalf("record %d diverges:\n live: %+v\n rest: %+v", i, lr, rr)
		}
	}

	// Second request for the same offset is an exact hit.
	again, outcome, err := s.StateAt(w.Name, prog, offset)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != checkpoint.OutcomeHit {
		t.Errorf("second request outcome = %q, want hit", outcome)
	}
	if !again.Equal(want) {
		t.Error("decoded hit differs from live emulation")
	}
	if st := s.Stats(); st.Hits != 1 || st.Cold != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 cold", st)
	}
}

func TestStateAtOffsetZero(t *testing.T) {
	w, prog := testWorkload(t)
	s := checkpoint.NewStore(0)
	snap, outcome, err := s.StateAt(w.Name, prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != checkpoint.OutcomeFresh {
		t.Errorf("outcome = %q, want fresh", outcome)
	}
	if !snap.Equal(emu.New(prog).Snapshot()) {
		t.Error("offset-0 state differs from a fresh CPU")
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Error("offset 0 must not occupy the store")
	}
}

func TestChainedBuildEqualsFresh(t *testing.T) {
	w, prog := testWorkload(t)
	s := checkpoint.NewStore(0)
	if _, outcome, err := s.StateAt(w.Name, prog, 4_000); err != nil || outcome != checkpoint.OutcomeCold {
		t.Fatalf("seed build: outcome %q, err %v", outcome, err)
	}
	snap, outcome, err := s.StateAt(w.Name, prog, 9_000)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != checkpoint.OutcomeChained {
		t.Errorf("outcome = %q, want chained (a checkpoint at 4000 was resident)", outcome)
	}
	if !snap.Equal(liveSnapshot(t, prog, 9_000)) {
		t.Error("chained build differs from emulating the whole prefix")
	}
}

func TestCPUAt(t *testing.T) {
	w, prog := testWorkload(t)
	s := checkpoint.NewStore(0)
	cpu, _, err := s.CPUAt(w.Name, prog, 2_500)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Executed() != 2_500 {
		t.Errorf("restored CPU reports %d executed, want 2500", cpu.Executed())
	}
	var rec trace.Rec
	if !cpu.Next(&rec) || rec.Seq != 2_500 {
		t.Errorf("first record seq = %d, want the absolute offset 2500", rec.Seq)
	}
}

func TestHaltedEarly(t *testing.T) {
	b := program.NewBuilder("tiny")
	b.MovImm(0, 1)
	b.MovImm(1, 2)
	b.Halt()
	prog := b.Build()

	s := checkpoint.NewStore(0)
	_, _, err := s.StateAt("tiny", prog, 100)
	var he *checkpoint.HaltedEarlyError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want HaltedEarlyError", err)
	}
	if he.Workload != "tiny" || he.Want != 100 || he.Got != 3 {
		t.Errorf("error details = %+v, want tiny/100/3", he)
	}
}

func TestLRUEviction(t *testing.T) {
	w, prog := testWorkload(t)
	one := len(checkpoint.Encode(liveSnapshot(t, prog, 1_000)))
	// Room for about two checkpoints: inserting four must evict.
	s := checkpoint.NewStore(int64(one)*2 + int64(one)/2)
	for _, off := range []uint64{1_000, 2_000, 3_000, 4_000} {
		if _, _, err := s.StateAt(w.Name, prog, off); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions despite exceeding the byte budget")
	}
	if st.ResidentBytes > st.BudgetBytes {
		t.Errorf("resident %d bytes exceeds budget %d", st.ResidentBytes, st.BudgetBytes)
	}
	// Evicted offsets must still be servable (rebuilt, not lost).
	snap, _, err := s.StateAt(w.Name, prog, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Equal(liveSnapshot(t, prog, 1_000)) {
		t.Error("rebuild after eviction differs from live emulation")
	}
}

func TestConcurrentRequestsCoalesce(t *testing.T) {
	w, prog := testWorkload(t)
	s := checkpoint.NewStore(0)
	const workers = 8
	var wg sync.WaitGroup
	outcomes := make([]checkpoint.Outcome, workers)
	snaps := make([]*emu.Snapshot, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			snap, outcome, err := s.StateAt(w.Name, prog, 20_000)
			if err != nil {
				t.Error(err)
				return
			}
			outcomes[i] = outcome
			snaps[i] = snap
		}(i)
	}
	wg.Wait()
	want := liveSnapshot(t, prog, 20_000)
	builds := 0
	for i := 0; i < workers; i++ {
		if snaps[i] == nil {
			t.Fatal("missing snapshot")
		}
		if !snaps[i].Equal(want) {
			t.Fatal("coalesced waiter got a different state")
		}
		if outcomes[i] != checkpoint.OutcomeCoalesced && outcomes[i] != checkpoint.OutcomeHit {
			builds++
		}
	}
	if builds != 1 {
		t.Errorf("%d goroutines built the same checkpoint, want exactly 1", builds)
	}
	if st := s.Stats(); st.Cold+st.Chained != 1 {
		t.Errorf("stats count %d builds, want 1: %+v", st.Cold+st.Chained, st)
	}
}

func TestCaptureDepositsCheckpoints(t *testing.T) {
	w, prog := testWorkload(t)
	s := checkpoint.NewStore(0)
	cpu := w.CPU(5_000)
	r := s.Capture(cpu, w.Name, 1_000)
	var rec trace.Rec
	n := 0
	for r.Next(&rec) {
		n++
	}
	if n != 5_000 {
		t.Fatalf("capture reader delivered %d records, want 5000", n)
	}
	st := s.Stats()
	if st.Captured != 5 {
		t.Errorf("captured = %d checkpoints, want 5 (every 1000 of 5000)", st.Captured)
	}
	// A later sampled run restores one of them as an exact hit.
	snap, outcome, err := s.StateAt(w.Name, prog, 3_000)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != checkpoint.OutcomeHit {
		t.Errorf("outcome = %q, want hit from the captured chain", outcome)
	}
	if !snap.Equal(liveSnapshot(t, prog, 3_000)) {
		t.Error("captured checkpoint differs from live emulation")
	}
}

func TestNilStore(t *testing.T) {
	w, prog := testWorkload(t)
	var s *checkpoint.Store
	snap, outcome, err := s.StateAt(w.Name, prog, 1_500)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != checkpoint.OutcomeCold {
		t.Errorf("outcome = %q, want cold (nil store retains nothing)", outcome)
	}
	if !snap.Equal(liveSnapshot(t, prog, 1_500)) {
		t.Error("nil-store build differs from live emulation")
	}
	cpu := w.CPU(100)
	if got := s.Capture(cpu, w.Name, 10); got != trace.Reader(cpu) {
		t.Error("nil store must return the CPU unwrapped")
	}
	if st := s.Stats(); st != (checkpoint.Stats{}) {
		t.Errorf("nil store stats = %+v, want zero", st)
	}
}
