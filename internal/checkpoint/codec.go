// Package checkpoint provides SimPoint-style architectural checkpoints
// for the functional emulator and the content-addressed store the sampled
// simulation mode restores them from.
//
// A checkpoint is an emu.Snapshot — registers, PC, dynamic instruction
// count, halt flag and the resident memory page set — serialized through
// a versioned binary codec and stored keyed by (workload, instruction
// offset) with a SHA-256 content hash verified on every load. Because
// the emulator is deterministic, restoring the checkpoint at offset N
// and continuing execution reproduces the instruction stream of a fresh
// emulation bit-for-bit from N onward; that invariant is what lets the
// sampling driver in internal/runner stitch per-interval measurements
// into a whole-run estimate.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dlvp/internal/emu"
	"dlvp/internal/isa"
)

// codecMagic opens every encoded checkpoint ("DLVPCKPT" as bytes).
var codecMagic = [8]byte{'D', 'L', 'V', 'P', 'C', 'K', 'P', 'T'}

// codecVersion is the current serialization format. Decoders reject
// other versions rather than guessing at layouts.
const codecVersion = uint32(1)

// Decode errors. They are sentinel values so store consumers (and tests)
// can distinguish corruption classes with errors.Is.
var (
	ErrBadMagic   = errors.New("checkpoint: bad magic (not a checkpoint)")
	ErrBadVersion = errors.New("checkpoint: unsupported codec version")
	ErrTruncated  = errors.New("checkpoint: truncated encoding")
)

// headerSize is the fixed-size prefix: magic, version, regs, pc, seq,
// halt flag and the page count.
const headerSize = 8 + 4 + isa.NumRegs*8 + 8 + 8 + 1 + 4

// pageRecSize is one serialized page: page number plus raw page bytes.
const pageRecSize = 8 + emu.PageSize

// EncodedSize returns the exact encoding size for a snapshot with
// nPages resident pages.
func EncodedSize(nPages int) int { return headerSize + nPages*pageRecSize }

// Encode serializes s into the version-1 binary format: a fixed header
// (magic, version, register file, PC, seq, halt flag, page count)
// followed by the resident pages in ascending page-number order, each as
// (page number, raw PageSize bytes). The page ordering makes the
// encoding canonical: equal architectural states encode to equal bytes,
// so the store's content hash doubles as a state fingerprint.
func Encode(s *emu.Snapshot) []byte {
	nums := s.Mem.PageNums()
	buf := make([]byte, 0, EncodedSize(len(nums)))
	buf = append(buf, codecMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, codecVersion)
	for _, r := range s.Regs {
		buf = binary.LittleEndian.AppendUint64(buf, r)
	}
	buf = binary.LittleEndian.AppendUint64(buf, s.PC)
	buf = binary.LittleEndian.AppendUint64(buf, s.Seq)
	if s.Halted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(nums)))
	for _, pn := range nums {
		buf = binary.LittleEndian.AppendUint64(buf, pn)
		buf = append(buf, s.Mem.PageBytes(pn)...)
	}
	return buf
}

// Decode parses an encoding produced by Encode into a fresh Snapshot
// (the caller owns it). It fails with ErrBadMagic, ErrBadVersion or
// ErrTruncated on malformed input.
func Decode(enc []byte) (*emu.Snapshot, error) {
	if len(enc) < headerSize {
		if len(enc) < 8 || [8]byte(enc[:8]) != codecMagic {
			return nil, ErrBadMagic
		}
		return nil, ErrTruncated
	}
	if [8]byte(enc[:8]) != codecMagic {
		return nil, ErrBadMagic
	}
	off := 8
	ver := binary.LittleEndian.Uint32(enc[off:])
	off += 4
	if ver != codecVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, ver, codecVersion)
	}
	s := &emu.Snapshot{Mem: emu.NewMemory()}
	for i := range s.Regs {
		s.Regs[i] = binary.LittleEndian.Uint64(enc[off:])
		off += 8
	}
	s.PC = binary.LittleEndian.Uint64(enc[off:])
	off += 8
	s.Seq = binary.LittleEndian.Uint64(enc[off:])
	off += 8
	s.Halted = enc[off] != 0
	off++
	nPages := int(binary.LittleEndian.Uint32(enc[off:]))
	off += 4
	if len(enc) != headerSize+nPages*pageRecSize {
		return nil, ErrTruncated
	}
	for i := 0; i < nPages; i++ {
		pn := binary.LittleEndian.Uint64(enc[off:])
		off += 8
		s.Mem.SetPageBytes(pn, enc[off:off+emu.PageSize])
		off += emu.PageSize
	}
	return s, nil
}
