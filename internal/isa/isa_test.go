package isa

import (
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		ADD: "add", LDR: "ldr", LDP: "ldp", LDM: "ldm", VLD: "vld",
		STR: "str", B: "b", BL: "bl", RET: "ret", HALT: "halt",
		LDAR: "ldar", STLR: "stlr",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); got != "op(200)" {
		t.Errorf("unknown op string = %q", got)
	}
}

func TestRegString(t *testing.T) {
	if got := Reg(0).String(); got != "x0" {
		t.Errorf("x0 = %q", got)
	}
	if got := XZR.String(); got != "xzr" {
		t.Errorf("xzr = %q", got)
	}
	if got := Reg(32).String(); got != "v0" {
		t.Errorf("v0 = %q", got)
	}
	if got := Reg(63).String(); got != "v31" {
		t.Errorf("v31 = %q", got)
	}
}

func TestClassPartitions(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		if op.IsLoad() && op.IsStore() {
			t.Errorf("%v is both load and store", op)
		}
		if op.IsMem() && op.IsBranch() {
			t.Errorf("%v is both mem and branch", op)
		}
		if op.IsCondBranch() && !op.IsBranch() {
			t.Errorf("%v cond branch but not branch", op)
		}
		if op.ExecLatency() < 1 {
			t.Errorf("%v latency < 1", op)
		}
	}
}

func TestLoadStoreClasses(t *testing.T) {
	loads := []Op{LDR, LDRS, LDRPOST, LDP, LDM, VLD, LDAR}
	for _, op := range loads {
		if !op.IsLoad() {
			t.Errorf("%v should be a load", op)
		}
	}
	stores := []Op{STR, STRPOST, STP, STLR}
	for _, op := range stores {
		if !op.IsStore() {
			t.Errorf("%v should be a store", op)
		}
	}
	if !LDAR.IsOrdered() || !STLR.IsOrdered() {
		t.Error("LDAR/STLR must be ordered")
	}
	if LDR.IsOrdered() || STR.IsOrdered() {
		t.Error("LDR/STR must not be ordered")
	}
}

func TestBranchClasses(t *testing.T) {
	for _, op := range []Op{B, BEQ, BNE, BLT, BGE, BLTU, BGEU, CBZ, CBNZ, BL, RET, BR} {
		if !op.IsBranch() {
			t.Errorf("%v should be a branch", op)
		}
	}
	for _, op := range []Op{BEQ, BNE, BLT, BGE, BLTU, BGEU, CBZ, CBNZ} {
		if !op.IsCondBranch() {
			t.Errorf("%v should be conditional", op)
		}
	}
	for _, op := range []Op{B, BL, RET, BR} {
		if op.IsCondBranch() {
			t.Errorf("%v should be unconditional", op)
		}
	}
}

func TestDests(t *testing.T) {
	var buf [MaxLDMRegs]Reg
	tests := []struct {
		inst Inst
		want []Reg
	}{
		{Inst{Op: ADD, Rd: 3, Rn: 1, Rm: 2}, []Reg{3}},
		{Inst{Op: ADD, Rd: XZR, Rn: 1, Rm: 2}, nil},
		{Inst{Op: LDP, Rd: 4, Rd2: 5, Rn: 1}, []Reg{4, 5}},
		{Inst{Op: LDM, Rd: 8, NReg: 4, Rn: 1}, []Reg{8, 9, 10, 11}},
		{Inst{Op: LDRPOST, Rd: 2, Rn: 3}, []Reg{2, 3}},
		{Inst{Op: STRPOST, Rt: 2, Rn: 3}, []Reg{3}},
		{Inst{Op: STR, Rt: 2, Rn: 3}, nil},
		{Inst{Op: BL, Rd: 30}, []Reg{30}},
		{Inst{Op: B}, nil},
		{Inst{Op: VLD, Rd: 32, Rd2: 33, Rn: 1}, []Reg{32, 33}},
	}
	for _, tc := range tests {
		got := tc.inst.Dests(buf[:0])
		if !regsEqual(got, tc.want) {
			t.Errorf("%s: Dests = %v, want %v", tc.inst.String(), got, tc.want)
		}
	}
}

func TestSrcs(t *testing.T) {
	var buf [8]Reg
	tests := []struct {
		inst Inst
		want []Reg
	}{
		{Inst{Op: ADD, Rd: 3, Rn: 1, Rm: 2}, []Reg{1, 2}},
		{Inst{Op: ADDI, Rd: 3, Rn: 1}, []Reg{1}},
		{Inst{Op: MOVZ, Rd: 3}, nil},
		{Inst{Op: LDR, Rd: 3, Rn: 1, Rm: XZR}, []Reg{1}},
		{Inst{Op: LDR, Rd: 3, Rn: 1, Rm: 2}, []Reg{1, 2}},
		{Inst{Op: STR, Rt: 5, Rn: 1, Rm: XZR}, []Reg{1, 5}},
		{Inst{Op: STP, Rt: 5, Rt2: 6, Rn: 1, Rm: XZR}, []Reg{1, 5, 6}},
		{Inst{Op: CBZ, Rn: 7}, []Reg{7}},
		{Inst{Op: BEQ, Rn: 7, Rm: 8}, []Reg{7, 8}},
		{Inst{Op: B}, nil},
		{Inst{Op: RET, Rn: 30}, []Reg{30}},
		{Inst{Op: MADD, Rd: 1, Rn: 2, Rm: 3, Rt: 4}, []Reg{2, 3, 4}},
	}
	for _, tc := range tests {
		got := tc.inst.Srcs(buf[:0])
		if !regsEqual(got, tc.want) {
			t.Errorf("%s: Srcs = %v, want %v", tc.inst.String(), got, tc.want)
		}
	}
}

func TestAccessBytes(t *testing.T) {
	tests := []struct {
		inst Inst
		want int
	}{
		{Inst{Op: LDR, Size: 0}, 1},
		{Inst{Op: LDR, Size: 2}, 4},
		{Inst{Op: LDR, Size: 3}, 8},
		{Inst{Op: LDP}, 16},
		{Inst{Op: VLD}, 16},
		{Inst{Op: LDM, NReg: 4}, 32},
		{Inst{Op: STP}, 16},
		{Inst{Op: ADD}, 0},
	}
	for _, tc := range tests {
		if got := tc.inst.AccessBytes(); got != tc.want {
			t.Errorf("%v: AccessBytes = %d, want %d", tc.inst.Op, got, tc.want)
		}
	}
}

func TestNumDests(t *testing.T) {
	tests := []struct {
		inst Inst
		want int
	}{
		{Inst{Op: LDR, Rd: 1}, 1},
		{Inst{Op: LDP}, 2},
		{Inst{Op: VLD}, 2},
		{Inst{Op: LDM, NReg: 7}, 7},
		{Inst{Op: LDRPOST}, 2},
		{Inst{Op: STR}, 0},
		{Inst{Op: B}, 0},
		{Inst{Op: ADD}, 1},
	}
	for _, tc := range tests {
		if got := tc.inst.NumDests(); got != tc.want {
			t.Errorf("%v: NumDests = %d, want %d", tc.inst.Op, got, tc.want)
		}
	}
}

// Property: Dests never returns XZR and never exceeds MaxLDMRegs entries.
func TestDestsProperty(t *testing.T) {
	f := func(opRaw, rd, rd2, rn, nreg uint8) bool {
		op := Op(opRaw % uint8(NumOps))
		inst := Inst{
			Op: op, Rd: Reg(rd % NumRegs), Rd2: Reg(rd2 % NumRegs),
			Rn: Reg(rn % NumRegs), NReg: 2 + nreg%(MaxLDMRegs-1),
		}
		var buf [MaxLDMRegs + 2]Reg
		got := inst.Dests(buf[:0])
		if len(got) > MaxLDMRegs {
			return false
		}
		for _, r := range got {
			if r == XZR {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: instruction String never panics and is non-empty for all opcodes.
func TestStringTotal(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		inst := Inst{Op: op, Rd: 1, Rd2: 2, Rn: 3, Rm: 4, Rt: 5, Rt2: 6, NReg: 2, Size: 3}
		if s := inst.String(); s == "" {
			t.Errorf("empty disassembly for %v", op)
		}
	}
}

func regsEqual(a, b []Reg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
