// Package isa defines the mini ARM-flavoured instruction set used by the
// functional emulator and the cycle-level core model.
//
// The ISA is deliberately small but covers every instruction class the paper's
// evaluation depends on: simple and long-latency ALU operations, conditional,
// unconditional, call/return and indirect branches, and — crucially — the
// ARM-style memory instructions that expose the storage-inefficiency problem
// for conventional value predictors: load-pair (LDP), load-multiple (LDM, two
// to sixteen destinations), and 128-bit vector loads (VLD). Load-acquire
// (LDAR) stands in for the memory-ordering instructions that DLVP must never
// predict.
//
// Instructions are 4 bytes for PC-advance purposes (as on AArch64); there is
// no binary encoding — programs are slices of decoded Inst values produced by
// the program builder.
package isa

import "fmt"

// Reg identifies one of the 64 general registers. Registers 0..30 mirror
// AArch64 X registers, register 31 is the hard-wired zero register, and
// registers 32..63 stand in for the 64-bit halves of the SIMD register file
// (used by VLD/VST).
type Reg uint8

// NumRegs is the size of the architectural register file.
const NumRegs = 64

// XZR is the hard-wired zero register: reads return 0, writes are discarded.
const XZR Reg = 31

// String renders a register in assembler syntax.
func (r Reg) String() string {
	switch {
	case r == XZR:
		return "xzr"
	case r < 32:
		return fmt.Sprintf("x%d", uint8(r))
	default:
		return fmt.Sprintf("v%d", uint8(r)-32)
	}
}

// Op enumerates instruction opcodes.
type Op uint8

// Opcode space. The groupings matter: Class() maps each opcode onto the
// pipeline's functional classes and several predictors key off the class.
const (
	NOP Op = iota
	HALT

	// Integer ALU, 1-cycle.
	ADD  // rd = rn + rm
	SUB  // rd = rn - rm
	AND  // rd = rn & rm
	ORR  // rd = rn | rm
	EOR  // rd = rn ^ rm
	LSL  // rd = rn << (rm & 63)
	LSR  // rd = rn >> (rm & 63)
	ASR  // rd = int64(rn) >> (rm & 63)
	ADDI // rd = rn + imm
	SUBI // rd = rn - imm
	ANDI // rd = rn & imm
	ORRI // rd = rn | imm
	EORI // rd = rn ^ imm
	LSLI // rd = rn << imm
	LSRI // rd = rn >> imm
	MOVZ // rd = imm
	CSEL // rd = (rm != 0) ? rn : imm  (select, keeps branches out of kernels)

	// Long-latency integer.
	MUL  // rd = rn * rm, 3-cycle
	MADD // rd = rn*rm + ra, 4-cycle
	UDIV // rd = rn / rm (0 if rm==0), 12-cycle
	UREM // rd = rn % rm (0 if rm==0), 12-cycle

	// Branches. Targets are absolute instruction addresses resolved by the
	// program builder.
	B    // unconditional, PC-relative in spirit: always taken
	BEQ  // taken if rn == rm
	BNE  // taken if rn != rm
	BLT  // taken if int64(rn) < int64(rm)
	BGE  // taken if int64(rn) >= int64(rm)
	BLTU // taken if rn < rm (unsigned)
	BGEU // taken if rn >= rm (unsigned)
	CBZ  // taken if rn == 0
	CBNZ // taken if rn != 0
	BL   // call: rd(link) = PC+4, jump to Target
	RET  // return: jump to rn (predicted via RAS)
	BR   // indirect jump to rn (predicted via ITTAGE)

	// Memory. Effective address = rn + Imm + (rm << Scale); Rm may be XZR.
	LDR     // load SizeLog2 bytes, zero-extended, into rd
	LDRS    // load SizeLog2 bytes, sign-extended, into rd
	LDRPOST // rd = mem[rn]; rn += Imm (post-index: two destinations)
	LDP     // rd,rd2 = mem[ea], mem[ea+8] (two 8-byte destinations)
	LDM     // rd..rd+k = k consecutive 8-byte words (2..16 destinations)
	VLD     // 128-bit vector load: two 8-byte halves into rd, rd2
	LDAR    // load-acquire: like LDR but excluded from address prediction
	STR     // store SizeLog2 bytes from rt
	STRPOST // mem[rn] = rt; rn += Imm (post-index store, one destination: rn)
	STP     // store pair: rt,rt2 to mem[ea], mem[ea+8]
	STLR    // store-release (excluded from prediction, like LDAR)

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

var opNames = [...]string{
	NOP: "nop", HALT: "halt",
	ADD: "add", SUB: "sub", AND: "and", ORR: "orr", EOR: "eor",
	LSL: "lsl", LSR: "lsr", ASR: "asr",
	ADDI: "addi", SUBI: "subi", ANDI: "andi", ORRI: "orri", EORI: "eori",
	LSLI: "lsli", LSRI: "lsri", MOVZ: "movz", CSEL: "csel",
	MUL: "mul", MADD: "madd", UDIV: "udiv", UREM: "urem",
	B: "b", BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge",
	BLTU: "bltu", BGEU: "bgeu", CBZ: "cbz", CBNZ: "cbnz",
	BL: "bl", RET: "ret", BR: "br",
	LDR: "ldr", LDRS: "ldrs", LDRPOST: "ldrpost", LDP: "ldp", LDM: "ldm",
	VLD: "vld", LDAR: "ldar",
	STR: "str", STRPOST: "strpost", STP: "stp", STLR: "stlr",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class partitions opcodes by the pipeline resources they use.
type Class uint8

// Functional classes.
const (
	ClassNop Class = iota
	ClassALU
	ClassMul  // 3-4 cycle integer
	ClassDiv  // 12 cycle integer
	ClassBr   // direct conditional/unconditional branches
	ClassCall // BL
	ClassRet  // RET
	ClassJmp  // BR indirect
	ClassLoad
	ClassStore
	ClassHalt
)

var opClasses = [...]Class{
	NOP: ClassNop, HALT: ClassHalt,
	ADD: ClassALU, SUB: ClassALU, AND: ClassALU, ORR: ClassALU, EOR: ClassALU,
	LSL: ClassALU, LSR: ClassALU, ASR: ClassALU,
	ADDI: ClassALU, SUBI: ClassALU, ANDI: ClassALU, ORRI: ClassALU,
	EORI: ClassALU, LSLI: ClassALU, LSRI: ClassALU, MOVZ: ClassALU, CSEL: ClassALU,
	MUL: ClassMul, MADD: ClassMul, UDIV: ClassDiv, UREM: ClassDiv,
	B: ClassBr, BEQ: ClassBr, BNE: ClassBr, BLT: ClassBr, BGE: ClassBr,
	BLTU: ClassBr, BGEU: ClassBr, CBZ: ClassBr, CBNZ: ClassBr,
	BL: ClassCall, RET: ClassRet, BR: ClassJmp,
	LDR: ClassLoad, LDRS: ClassLoad, LDRPOST: ClassLoad, LDP: ClassLoad,
	LDM: ClassLoad, VLD: ClassLoad, LDAR: ClassLoad,
	STR: ClassStore, STRPOST: ClassStore, STP: ClassStore, STLR: ClassStore,
}

// Class returns the functional class of the opcode.
func (o Op) Class() Class {
	if int(o) < len(opClasses) {
		return opClasses[o]
	}
	return ClassNop
}

// IsLoad reports whether the opcode reads memory.
func (o Op) IsLoad() bool { return o.Class() == ClassLoad }

// IsStore reports whether the opcode writes memory.
func (o Op) IsStore() bool { return o.Class() == ClassStore }

// IsMem reports whether the opcode accesses memory.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// IsBranch reports whether the opcode redirects control flow.
func (o Op) IsBranch() bool {
	switch o.Class() {
	case ClassBr, ClassCall, ClassRet, ClassJmp:
		return true
	}
	return false
}

// IsCondBranch reports whether the opcode is a conditional direct branch.
func (o Op) IsCondBranch() bool {
	switch o {
	case BEQ, BNE, BLT, BGE, BLTU, BGEU, CBZ, CBNZ:
		return true
	}
	return false
}

// IsOrdered reports whether the opcode carries memory-ordering semantics.
// The paper excludes such instructions from address prediction.
func (o Op) IsOrdered() bool { return o == LDAR || o == STLR }

// ExecLatency returns the execution latency in cycles, excluding memory
// access time for loads (the cache model supplies that).
func (o Op) ExecLatency() int {
	switch o.Class() {
	case ClassMul:
		if o == MADD {
			return 4
		}
		return 3
	case ClassDiv:
		return 12
	default:
		return 1
	}
}

// MaxLDMRegs is the architectural limit on LDM destination registers,
// mirroring ARM's load-multiple of the 16 general-purpose registers.
const MaxLDMRegs = 16

// Inst is one decoded instruction. The program builder produces these; the
// emulator interprets them directly.
type Inst struct {
	Op     Op
	Rd     Reg    // first destination (link register for BL)
	Rd2    Reg    // second destination (LDP/VLD)
	Rn     Reg    // first source (base register for memory ops)
	Rm     Reg    // second source (index register for memory ops; XZR = none)
	Rt     Reg    // store data source
	Rt2    Reg    // second store data source (STP)
	Imm    int64  // immediate / displacement
	Target uint64 // branch target (absolute address), resolved by builder
	Size   uint8  // log2 of access bytes for LDR/LDRS/STR/LDAR/STLR (0..3)
	NReg   uint8  // LDM register count (2..16); Rd..Rd+NReg-1 are written
	Scale  uint8  // index register shift for memory addressing
	Label  string // unresolved target label (builder-internal)
}

// Dests appends the destination registers of i to dst and returns it.
// XZR never appears (writes to it are architectural no-ops).
func (i *Inst) Dests(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != XZR {
			dst = append(dst, r)
		}
	}
	switch i.Op {
	case NOP, HALT, B, BEQ, BNE, BLT, BGE, BLTU, BGEU, CBZ, CBNZ, RET, BR,
		STR, STP, STLR:
		return dst
	case BL:
		add(i.Rd)
	case LDP, VLD:
		add(i.Rd)
		add(i.Rd2)
	case LDM:
		for k := uint8(0); k < i.NReg; k++ {
			add(i.Rd + Reg(k))
		}
	case LDRPOST:
		add(i.Rd)
		add(i.Rn) // post-index updates the base
	case STRPOST:
		add(i.Rn)
	default:
		add(i.Rd)
	}
	return dst
}

// Srcs appends the source registers of i to dst and returns it. XZR is
// omitted (it is always ready and always zero).
func (i *Inst) Srcs(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != XZR {
			dst = append(dst, r)
		}
	}
	switch i.Op.Class() {
	case ClassNop, ClassHalt, ClassCall:
		if i.Op == BL {
			return dst
		}
		return dst
	case ClassLoad:
		add(i.Rn)
		add(i.Rm)
	case ClassStore:
		add(i.Rn)
		add(i.Rm)
		add(i.Rt)
		if i.Op == STP {
			add(i.Rt2)
		}
	case ClassBr:
		switch i.Op {
		case B:
		case CBZ, CBNZ:
			add(i.Rn)
		default:
			add(i.Rn)
			add(i.Rm)
		}
	case ClassRet, ClassJmp:
		add(i.Rn)
	default:
		switch i.Op {
		case MOVZ:
		case ADDI, SUBI, ANDI, ORRI, EORI, LSLI, LSRI:
			add(i.Rn)
		case CSEL:
			add(i.Rn)
			add(i.Rm)
		case MADD:
			add(i.Rn)
			add(i.Rm)
			add(i.Rt) // accumulator rides in Rt
		default:
			add(i.Rn)
			add(i.Rm)
		}
	}
	return dst
}

// AccessBytes returns the number of bytes transferred by a memory opcode
// (0 for non-memory instructions).
func (i *Inst) AccessBytes() int {
	switch i.Op {
	case LDR, LDRS, LDRPOST, LDAR, STR, STRPOST, STLR:
		return 1 << i.Size
	case LDP, STP, VLD:
		return 16
	case LDM:
		return int(i.NReg) * 8
	}
	return 0
}

// NumDests returns the number of architectural destination registers,
// counting XZR targets as real for predictor-pressure purposes (a value
// predictor would still allocate an entry before discovering the write is
// dead); the emulator suppresses the actual write.
func (i *Inst) NumDests() int {
	switch i.Op {
	case LDP, VLD, LDRPOST:
		return 2
	case LDM:
		return int(i.NReg)
	case STR, STP, STLR, B, BEQ, BNE, BLT, BGE, BLTU, BGEU, CBZ, CBNZ,
		RET, BR, NOP, HALT:
		return 0
	case STRPOST:
		return 1
	default:
		return 1
	}
}

// String disassembles the instruction.
func (i *Inst) String() string {
	switch i.Op.Class() {
	case ClassNop, ClassHalt:
		return i.Op.String()
	case ClassLoad:
		switch i.Op {
		case LDP, VLD:
			return fmt.Sprintf("%s %s,%s, [%s, #%d]", i.Op, i.Rd, i.Rd2, i.Rn, i.Imm)
		case LDM:
			return fmt.Sprintf("ldm %s-%s, [%s, #%d]", i.Rd, i.Rd+Reg(i.NReg-1), i.Rn, i.Imm)
		case LDRPOST:
			return fmt.Sprintf("ldr %s, [%s], #%d", i.Rd, i.Rn, i.Imm)
		}
		if i.Rm != XZR {
			return fmt.Sprintf("%s %s, [%s, %s, lsl #%d]", i.Op, i.Rd, i.Rn, i.Rm, i.Scale)
		}
		return fmt.Sprintf("%s %s, [%s, #%d]", i.Op, i.Rd, i.Rn, i.Imm)
	case ClassStore:
		switch i.Op {
		case STP:
			return fmt.Sprintf("stp %s,%s, [%s, #%d]", i.Rt, i.Rt2, i.Rn, i.Imm)
		case STRPOST:
			return fmt.Sprintf("str %s, [%s], #%d", i.Rt, i.Rn, i.Imm)
		}
		if i.Rm != XZR {
			return fmt.Sprintf("%s %s, [%s, %s, lsl #%d]", i.Op, i.Rt, i.Rn, i.Rm, i.Scale)
		}
		return fmt.Sprintf("%s %s, [%s, #%d]", i.Op, i.Rt, i.Rn, i.Imm)
	case ClassBr:
		switch i.Op {
		case B:
			return fmt.Sprintf("b 0x%x", i.Target)
		case CBZ, CBNZ:
			return fmt.Sprintf("%s %s, 0x%x", i.Op, i.Rn, i.Target)
		}
		return fmt.Sprintf("%s %s, %s, 0x%x", i.Op, i.Rn, i.Rm, i.Target)
	case ClassCall:
		return fmt.Sprintf("bl 0x%x", i.Target)
	case ClassRet:
		return fmt.Sprintf("ret %s", i.Rn)
	case ClassJmp:
		return fmt.Sprintf("br %s", i.Rn)
	}
	switch i.Op {
	case MOVZ:
		return fmt.Sprintf("movz %s, #%d", i.Rd, i.Imm)
	case ADDI, SUBI, ANDI, ORRI, EORI, LSLI, LSRI:
		return fmt.Sprintf("%s %s, %s, #%d", i.Op, i.Rd, i.Rn, i.Imm)
	case CSEL:
		return fmt.Sprintf("csel %s, %s, #%d, %s", i.Rd, i.Rn, i.Imm, i.Rm)
	case MADD:
		return fmt.Sprintf("madd %s, %s, %s, %s", i.Rd, i.Rn, i.Rm, i.Rt)
	}
	return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rn, i.Rm)
}
