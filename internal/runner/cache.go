package runner

import (
	"container/list"
	"sync"
)

// LRU is a concurrency-safe fixed-capacity least-recently-used cache keyed
// by content-address strings. The runner uses one for simulation results;
// the HTTP server uses another for whole experiment artifacts.
type LRU[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

// NewLRU returns a cache holding at most capacity entries (minimum 1).
func NewLRU[V any](capacity int) *LRU[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value and marks it most recently used.
func (c *LRU[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or refreshes a value, evicting the least recently used entry
// when over capacity.
func (c *LRU[V]) Put(key string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
	}
}

// Len reports the current entry count.
func (c *LRU[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap reports the capacity.
func (c *LRU[V]) Cap() int { return c.cap }
