package runner

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"dlvp/internal/config"
)

const testInstrs = 4_000

func testJob(workload string, instrs uint64) Job {
	return Job{Workload: workload, Config: config.Baseline(), Instrs: instrs}
}

func TestJobKeyCanonical(t *testing.T) {
	a, err := testJob("perlbmk", testInstrs).Key()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testJob("perlbmk", testInstrs).Key()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical jobs hash differently: %s vs %s", a, b)
	}
	if k, _ := testJob("perlbmk", testInstrs+1).Key(); k == a {
		t.Error("instruction budget not part of the content address")
	}
	if k, _ := testJob("mcf", testInstrs).Key(); k == a {
		t.Error("workload not part of the content address")
	}
	dlvp := Job{Workload: "perlbmk", Config: config.DLVP(), Instrs: testInstrs}
	if k, _ := dlvp.Key(); k == a {
		t.Error("configuration not part of the content address")
	}
}

func TestUnknownWorkloadError(t *testing.T) {
	r := New(Options{Workers: 1})
	_, _, err := r.Run(context.Background(), testJob("ghost", testInstrs))
	var uw *UnknownWorkloadError
	if !errors.As(err, &uw) {
		t.Fatalf("err = %v, want UnknownWorkloadError", err)
	}
	if uw.Name != "ghost" {
		t.Errorf("error names %q, want ghost", uw.Name)
	}
}

// TestCacheSingleExecution locks the tentpole property: an identical job
// submitted twice returns byte-identical RunStats with exactly one
// simulation executed.
func TestCacheSingleExecution(t *testing.T) {
	r := New(Options{Workers: 2})
	ctx := context.Background()
	job := testJob("perlbmk", testInstrs)

	first, cached, err := r.Run(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first run reported as cached")
	}
	second, cached, err := r.Run(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("second identical run not served from cache")
	}

	fb, _ := json.Marshal(first)
	sb, _ := json.Marshal(second)
	if string(fb) != string(sb) {
		t.Errorf("cached result not byte-identical:\n%s\n%s", fb, sb)
	}

	s := r.Stats()
	if s.SimsExecuted != 1 {
		t.Errorf("SimsExecuted = %d, want 1", s.SimsExecuted)
	}
	if s.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", s.CacheHits)
	}
	if s.CacheMisses != 1 {
		t.Errorf("CacheMisses = %d, want 1", s.CacheMisses)
	}
	if got := s.HitRatio(); got != 0.5 {
		t.Errorf("HitRatio = %v, want 0.5", got)
	}
	if s.InstrsSimulated == 0 || s.SimSeconds <= 0 || s.InstrsPerSec <= 0 {
		t.Errorf("throughput counters not populated: %+v", s)
	}
}

func TestCacheDisabled(t *testing.T) {
	r := New(Options{Workers: 1, CacheEntries: -1})
	ctx := context.Background()
	job := testJob("perlbmk", testInstrs)
	for i := 0; i < 2; i++ {
		if _, cached, err := r.Run(ctx, job); err != nil || cached {
			t.Fatalf("run %d: cached=%v err=%v, want fresh execution", i, cached, err)
		}
	}
	if s := r.Stats(); s.SimsExecuted != 2 || s.CacheCapacity != 0 {
		t.Errorf("stats = %+v, want 2 executions and no cache", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewLRU[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // refresh a; b becomes LRU
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Error("a should have survived")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

// TestCoalescing submits the same job concurrently on an idle pool and
// checks only one simulation ran.
func TestCoalescing(t *testing.T) {
	r := New(Options{Workers: runtime.NumCPU()})
	ctx := context.Background()
	job := testJob("mcf", testInstrs)
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = r.Run(ctx, job)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if s := r.Stats(); s.SimsExecuted != 1 {
		t.Errorf("SimsExecuted = %d, want 1 (rest cached or coalesced)", s.SimsExecuted)
	}
}

// matrixJobs builds a small (workload x config) matrix with distinct cache
// keys.
func matrixJobs() []Job {
	var jobs []Job
	for _, w := range []string{"perlbmk", "mcf", "nat"} {
		for _, cfg := range []config.Core{config.Baseline(), config.DLVP()} {
			jobs = append(jobs, Job{Workload: w, Config: cfg, Instrs: testInstrs})
		}
	}
	return jobs
}

// TestRunAllWorkerCountIndependence locks deterministic aggregation: the
// same matrix run on one worker and on NumCPU workers yields identical
// results in identical order.
func TestRunAllWorkerCountIndependence(t *testing.T) {
	ctx := context.Background()
	serial, err := New(Options{Workers: 1}).RunAll(ctx, matrixJobs(), Matrix{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(Options{Workers: runtime.NumCPU()}).RunAll(ctx, matrixJobs(), Matrix{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("matrix results depend on worker count")
	}
}

func TestRunAllProgress(t *testing.T) {
	var calls []int
	_, err := New(Options{Workers: 2}).RunAll(context.Background(), matrixJobs(), Matrix{
		Progress: func(done, total int) {
			if total != 6 {
				t.Errorf("total = %d, want 6", total)
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 6 || calls[len(calls)-1] != 6 {
		t.Errorf("progress calls = %v, want 1..6", calls)
	}
}

// TestRunAllCancelMidMatrix cancels after the first completion and checks
// that queued jobs never start (the pool acquires its slot inside the
// worker, under the caller's context).
func TestRunAllCancelMidMatrix(t *testing.T) {
	r := New(Options{Workers: 1, CacheEntries: -1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Plenty of distinct jobs so cancellation lands while most still queue.
	var jobs []Job
	for _, w := range []string{"perlbmk", "mcf", "nat", "gap", "twolf", "soplex"} {
		for _, instrs := range []uint64{testInstrs, testInstrs + 1, testInstrs + 2} {
			jobs = append(jobs, testJob(w, instrs))
		}
	}
	_, err := r.RunAll(ctx, jobs, Matrix{
		Progress: func(done, total int) {
			if done == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := r.Stats(); s.SimsExecuted >= int64(len(jobs)) {
		t.Errorf("SimsExecuted = %d of %d; cancellation did not stop the matrix", s.SimsExecuted, len(jobs))
	}
}

// TestRunCancelledContext checks a pre-cancelled submission never runs.
func TestRunCancelledContext(t *testing.T) {
	r := New(Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.Run(ctx, testJob("perlbmk", testInstrs)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := r.Stats(); s.SimsExecuted != 0 {
		t.Errorf("SimsExecuted = %d, want 0", s.SimsExecuted)
	}
}
