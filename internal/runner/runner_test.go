package runner

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"dlvp/internal/config"
)

const testInstrs = 4_000

func testJob(workload string, instrs uint64) Job {
	return Job{Workload: workload, Config: config.Baseline(), Instrs: instrs}
}

func TestJobKeyCanonical(t *testing.T) {
	a, err := testJob("perlbmk", testInstrs).Key()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testJob("perlbmk", testInstrs).Key()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical jobs hash differently: %s vs %s", a, b)
	}
	if k, _ := testJob("perlbmk", testInstrs+1).Key(); k == a {
		t.Error("instruction budget not part of the content address")
	}
	if k, _ := testJob("mcf", testInstrs).Key(); k == a {
		t.Error("workload not part of the content address")
	}
	dlvp := Job{Workload: "perlbmk", Config: config.DLVP(), Instrs: testInstrs}
	if k, _ := dlvp.Key(); k == a {
		t.Error("configuration not part of the content address")
	}
}

func TestUnknownWorkloadError(t *testing.T) {
	r := New(Options{Workers: 1})
	_, _, err := r.Run(context.Background(), testJob("ghost", testInstrs))
	var uw *UnknownWorkloadError
	if !errors.As(err, &uw) {
		t.Fatalf("err = %v, want UnknownWorkloadError", err)
	}
	if uw.Name != "ghost" {
		t.Errorf("error names %q, want ghost", uw.Name)
	}
}

// TestCacheSingleExecution locks the tentpole property: an identical job
// submitted twice returns byte-identical RunStats with exactly one
// simulation executed.
func TestCacheSingleExecution(t *testing.T) {
	r := New(Options{Workers: 2})
	ctx := context.Background()
	job := testJob("perlbmk", testInstrs)

	first, cached, err := r.Run(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first run reported as cached")
	}
	second, cached, err := r.Run(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("second identical run not served from cache")
	}

	fb, _ := json.Marshal(first)
	sb, _ := json.Marshal(second)
	if string(fb) != string(sb) {
		t.Errorf("cached result not byte-identical:\n%s\n%s", fb, sb)
	}

	s := r.Stats()
	if s.SimsExecuted != 1 {
		t.Errorf("SimsExecuted = %d, want 1", s.SimsExecuted)
	}
	if s.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1", s.CacheHits)
	}
	if s.CacheMisses != 1 {
		t.Errorf("CacheMisses = %d, want 1", s.CacheMisses)
	}
	if got := s.HitRatio(); got != 0.5 {
		t.Errorf("HitRatio = %v, want 0.5", got)
	}
	if s.InstrsSimulated == 0 || s.SimSeconds <= 0 || s.InstrsPerSec <= 0 {
		t.Errorf("throughput counters not populated: %+v", s)
	}
}

func TestCacheDisabled(t *testing.T) {
	r := New(Options{Workers: 1, CacheEntries: -1})
	ctx := context.Background()
	job := testJob("perlbmk", testInstrs)
	for i := 0; i < 2; i++ {
		if _, cached, err := r.Run(ctx, job); err != nil || cached {
			t.Fatalf("run %d: cached=%v err=%v, want fresh execution", i, cached, err)
		}
	}
	if s := r.Stats(); s.SimsExecuted != 2 || s.CacheCapacity != 0 {
		t.Errorf("stats = %+v, want 2 executions and no cache", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewLRU[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // refresh a; b becomes LRU
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Error("a should have survived")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

// TestCoalescing submits the same job concurrently on an idle pool and
// checks only one simulation ran.
func TestCoalescing(t *testing.T) {
	r := New(Options{Workers: runtime.NumCPU()})
	ctx := context.Background()
	job := testJob("mcf", testInstrs)
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = r.Run(ctx, job)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if s := r.Stats(); s.SimsExecuted != 1 {
		t.Errorf("SimsExecuted = %d, want 1 (rest cached or coalesced)", s.SimsExecuted)
	}
}

// matrixJobs builds a small (workload x config) matrix with distinct cache
// keys.
func matrixJobs() []Job {
	var jobs []Job
	for _, w := range []string{"perlbmk", "mcf", "nat"} {
		for _, cfg := range []config.Core{config.Baseline(), config.DLVP()} {
			jobs = append(jobs, Job{Workload: w, Config: cfg, Instrs: testInstrs})
		}
	}
	return jobs
}

// TestRunAllWorkerCountIndependence locks deterministic aggregation: the
// same matrix run on one worker and on NumCPU workers yields identical
// results in identical order.
func TestRunAllWorkerCountIndependence(t *testing.T) {
	ctx := context.Background()
	serial, err := New(Options{Workers: 1}).RunAll(ctx, matrixJobs(), Matrix{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := New(Options{Workers: runtime.NumCPU()}).RunAll(ctx, matrixJobs(), Matrix{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("matrix results depend on worker count")
	}
}

func TestRunAllProgress(t *testing.T) {
	var calls []int
	_, err := New(Options{Workers: 2}).RunAll(context.Background(), matrixJobs(), Matrix{
		Progress: func(done, total int) {
			if total != 6 {
				t.Errorf("total = %d, want 6", total)
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 6 || calls[len(calls)-1] != 6 {
		t.Errorf("progress calls = %v, want 1..6", calls)
	}
}

// TestRunAllCancelMidMatrix cancels after the first completion and checks
// that queued jobs never start (the pool acquires its slot inside the
// worker, under the caller's context).
func TestRunAllCancelMidMatrix(t *testing.T) {
	r := New(Options{Workers: 1, CacheEntries: -1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Plenty of distinct jobs so cancellation lands while most still queue.
	var jobs []Job
	for _, w := range []string{"perlbmk", "mcf", "nat", "gap", "twolf", "soplex"} {
		for _, instrs := range []uint64{testInstrs, testInstrs + 1, testInstrs + 2} {
			jobs = append(jobs, testJob(w, instrs))
		}
	}
	_, err := r.RunAll(ctx, jobs, Matrix{
		Progress: func(done, total int) {
			if done == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := r.Stats(); s.SimsExecuted >= int64(len(jobs)) {
		t.Errorf("SimsExecuted = %d of %d; cancellation did not stop the matrix", s.SimsExecuted, len(jobs))
	}
}

// TestWaiterCancellationAccounting locks the failure-accounting contract:
// a caller that cancels while coalesced-waiting on another job's flight is
// counted as cancelled, not failed (the underlying simulation is
// unaffected), and when a flight's lead fails every coalesced waiter
// shares the error without multi-counting it.
func TestWaiterCancellationAccounting(t *testing.T) {
	r := New(Options{Workers: 1, CacheEntries: -1})
	bg := context.Background()

	// Occupy the single worker slot so the flight under test stays queued.
	// The budget must keep the worker busy for the whole cancellation
	// sequence below (a few hundred ms of wall clock even on a fast core).
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		if _, _, err := r.Run(bg, testJob("gap", 3_000_000)); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	waitFor(t, func() bool { return r.Stats().JobsRunning == 1 })

	// Lead for a distinct job: creates the flight, then blocks in the
	// queue behind the blocker.
	leadCtx, cancelLead := context.WithCancel(bg)
	defer cancelLead()
	leadErr := make(chan error, 1)
	job := testJob("mcf", testInstrs)
	go func() {
		_, _, err := r.Run(leadCtx, job)
		leadErr <- err
	}()
	key, _ := job.Key()
	waitFor(t, func() bool {
		r.mu.Lock()
		defer r.mu.Unlock()
		_, ok := r.flights[key]
		return ok
	})

	// Two waiters coalesce onto the lead's flight; cancel the first.
	waiterCtx, cancelWaiter := context.WithCancel(bg)
	waiter1Err := make(chan error, 1)
	go func() {
		_, _, err := r.Run(waiterCtx, job)
		waiter1Err <- err
	}()
	waiter2Err := make(chan error, 1)
	go func() {
		_, _, err := r.Run(bg, job)
		waiter2Err <- err
	}()
	waitFor(t, func() bool { return r.Stats().JobsQueued == 1 })
	// Give both waiters a moment to attach to the flight; whichever path
	// the cancellation lands on (coalesced wait or submission entry), it
	// must count as cancelled, never failed.
	time.Sleep(50 * time.Millisecond)

	cancelWaiter()
	if err := <-waiter1Err; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter 1 err = %v, want context.Canceled", err)
	}
	if s := r.Stats(); s.JobsCancelled != 1 || s.JobsFailed != 0 {
		t.Errorf("after waiter cancel: cancelled=%d failed=%d, want 1/0", s.JobsCancelled, s.JobsFailed)
	}

	// Now cancel the lead while it is still queued: the lead's error is
	// shared with the remaining waiter but accounted exactly once.
	cancelLead()
	if err := <-leadErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("lead err = %v, want context.Canceled", err)
	}
	if err := <-waiter2Err; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter 2 err = %v, want the lead's context.Canceled", err)
	}
	<-blockerDone
	s := r.Stats()
	if s.JobsCancelled != 2 {
		t.Errorf("JobsCancelled = %d, want 2 (one waiter + one queued lead)", s.JobsCancelled)
	}
	if s.JobsFailed != 0 {
		t.Errorf("JobsFailed = %d, want 0: cancellations and shared flight errors must not count as failures", s.JobsFailed)
	}
	if s.SimsExecuted != 1 {
		t.Errorf("SimsExecuted = %d, want 1 (the blocker only)", s.SimsExecuted)
	}
}

// waitFor polls cond for up to ~5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never reached")
}

// TestRunCancelledContext checks a pre-cancelled submission never runs.
func TestRunCancelledContext(t *testing.T) {
	r := New(Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.Run(ctx, testJob("perlbmk", testInstrs)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := r.Stats(); s.SimsExecuted != 0 {
		t.Errorf("SimsExecuted = %d, want 0", s.SimsExecuted)
	}
}

// A timeline-recording engine attaches the flight-recorder series to its
// results, caches it content-addressed alongside the stats, and exposes
// nothing live once the job is done.
func TestRunResultRecordsTimeline(t *testing.T) {
	r := New(Options{Workers: 2, Timeline: TimelineOptions{Enabled: true, IntervalInstrs: 500}})
	job := Job{Workload: "perlbmk", Config: config.DLVP(), Instrs: testInstrs}
	res, cached, err := r.RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first run reported cached")
	}
	if res.Timeline == nil {
		t.Fatal("no timeline on a timeline-enabled engine's result")
	}
	if got := res.Timeline.Totals().Instructions; got != res.Stats.Instructions {
		t.Errorf("timeline totals %d != stats %d", got, res.Stats.Instructions)
	}
	if len(res.Timeline.Samples) < 2 {
		t.Errorf("samples = %d, want >= 2 at interval 500", len(res.Timeline.Samples))
	}

	again, cached, err := r.RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("second identical run not served from cache")
	}
	if again.Timeline == nil || len(again.Timeline.Samples) != len(res.Timeline.Samples) {
		t.Error("cached result lost its timeline")
	}

	key, err := job.Key()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.LiveTimeline(key); got != nil {
		t.Error("LiveTimeline non-nil after completion")
	}
	if got, ok := r.CachedResult(key); !ok || got.Timeline == nil {
		t.Errorf("CachedResult = %v/%v, want timeline-bearing hit", got.Timeline, ok)
	}
}

// A result cached by a non-recording engine must not satisfy the same
// engine once timelines are demanded — it would silently miss the series.
func TestTimelineBypassesTimelineLessCacheEntries(t *testing.T) {
	plain := New(Options{Workers: 1})
	job := testJob("perlbmk", testInstrs)
	if _, _, err := plain.Run(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	// Same cache semantics inside one engine: flip recording on via a new
	// engine sharing nothing — the observable contract is that a
	// timeline-enabled engine never returns a timeline-less result.
	rec := New(Options{Workers: 1, Timeline: TimelineOptions{Enabled: true, IntervalInstrs: 500}})
	res, _, err := rec.RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil {
		t.Fatal("timeline-enabled engine returned a timeline-less result")
	}
	if !rec.TimelineEnabled() || plain.TimelineEnabled() {
		t.Error("TimelineEnabled flags wrong")
	}
}
