// Package runner is the repository's simulation execution engine. Every
// subsystem that needs a timing simulation — the experiment drivers, the
// CLIs, the benchmark harness and the HTTP daemon — submits Jobs here
// instead of spawning its own goroutines.
//
// The engine provides:
//
//   - a job abstraction: Job{Workload, Config, Instrs} -> metrics.RunStats;
//   - a bounded worker pool whose slots are acquired *inside* the worker
//     goroutine, so submission never blocks and cancellation via
//     context.Context is honoured while a job is still queued;
//   - a content-addressed, in-memory LRU result cache keyed by
//     hash(workload, canonical-config, instrs), so identical runs (common
//     across the paper's figures, which all re-simulate the Table 4
//     baseline) are computed exactly once;
//   - coalescing of concurrent identical jobs (single-flight): a duplicate
//     submitted while its twin is still simulating waits for that result
//     instead of burning a second worker;
//   - deterministic aggregation (RunAll returns results in submission
//     order regardless of completion order), progress callbacks, and
//     engine-level statistics (queue depths, cache hit ratio, aggregate
//     simulated-instructions per second).
package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dlvp/internal/checkpoint"
	"dlvp/internal/config"
	"dlvp/internal/metrics"
	"dlvp/internal/obs"
	"dlvp/internal/siteprof"
	"dlvp/internal/timeline"
	"dlvp/internal/trace"
	"dlvp/internal/tracecache"
	"dlvp/internal/uarch"
	"dlvp/internal/workloads"
)

// Job is one simulation request: run the named workload for Instrs dynamic
// instructions under Config. Jobs are pure values; two jobs with equal
// fields are the same computation and share one cache entry.
type Job struct {
	Workload string      `json:"workload"`
	Config   config.Core `json:"config"`
	Instrs   uint64      `json:"instrs"`
	// Sampling, when non-nil, selects checkpointed sampled execution:
	// the result is a SimPoint-style estimate over Instrs rather than a
	// monolithic detailed simulation. Sampled and full jobs over the
	// same (workload, config, instrs) are distinct computations and hash
	// to distinct cache keys.
	Sampling *SamplingSpec `json:"sampling,omitempty"`
}

// Key returns the job's content address: a hex SHA-256 over the canonical
// encoding of (workload, config, instrs). Configurations are plain data
// (no funcs, no maps), so their JSON encoding is canonical: struct fields
// marshal in declaration order.
func (j Job) Key() (string, error) {
	enc, err := json.Marshal(j)
	if err != nil {
		return "", fmt.Errorf("runner: canonicalize job: %w", err)
	}
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:]), nil
}

// UnknownWorkloadError reports a job naming a workload that is not in the
// registry. Callers (CLIs, the HTTP server) unwrap it to produce a helpful
// "known workloads" message.
type UnknownWorkloadError struct {
	Name string
}

func (e *UnknownWorkloadError) Error() string {
	return fmt.Sprintf("unknown workload %q", e.Name)
}

// Result is the full product of one job: the aggregate statistics and,
// when the engine records timelines, the interval flight-recorder series.
// Results are what the content-addressed cache stores, so a cached job
// replays with its timeline intact.
type Result struct {
	Stats metrics.RunStats `json:"stats"`
	// Timeline is nil when the engine ran without timeline recording.
	// Sampled jobs always carry one (one sample per interval).
	Timeline *timeline.Timeline `json:"timeline,omitempty"`
	// Sampled is set on results produced by checkpointed sampled
	// execution; nil means a monolithic detailed run.
	Sampled *SampledInfo `json:"sampled,omitempty"`
	// Sites is the per-load-site misprediction attribution profile; nil
	// when the engine ran without site profiling. Sampled jobs merge one
	// profile per measured interval.
	Sites *siteprof.Profile `json:"sites,omitempty"`
}

// DefaultCacheEntries is the result-cache capacity when Options.CacheEntries
// is zero. A RunStats is a few hundred bytes, so the default costs ~1-2 MB
// (timeline-recording engines add up to ~200 KB per entry).
const DefaultCacheEntries = 4096

// TimelineOptions configures flight-recorder sampling for every job the
// engine executes.
type TimelineOptions struct {
	// Enabled turns interval sampling on.
	Enabled bool
	// IntervalInstrs is the committed-instruction sampling interval
	// (0: timeline.DefaultIntervalInstrs).
	IntervalInstrs uint64
	// Capacity bounds the per-run sample ring (0: timeline.DefaultCapacity).
	Capacity int
}

// SiteOptions configures per-load-site misprediction attribution for
// every job the engine executes.
type SiteOptions struct {
	// Enabled turns per-site attribution on.
	Enabled bool
	// MaxSites bounds tracked static load PCs per run
	// (0: siteprof.DefaultMaxSites). Excess sites fold into the profile's
	// overflow bucket, so totals stay exact.
	MaxSites int
}

// Options parameterises a Runner.
type Options struct {
	// Workers bounds concurrent simulations (<= 0: runtime.NumCPU()).
	Workers int
	// CacheEntries sizes the result cache. 0 selects DefaultCacheEntries;
	// a negative value disables caching (the benchmark harness does this so
	// every iteration measures a real simulation).
	CacheEntries int
	// Obs, when non-nil, registers the engine's latency histograms and
	// cache-outcome counters on the observer's metrics registry and enables
	// per-phase span recording for traced contexts. Nil leaves the engine
	// uninstrumented (library/CLI use); the hooks then cost one pointer test.
	Obs *obs.Observer
	// TraceCache, when non-nil, captures each workload's functional
	// emulation stream on first use and replays it to every subsequent job
	// over the same (workload, instrs), so a configuration matrix pays the
	// emulation cost once per workload instead of once per job. Nil keeps
	// the emulate-per-job behaviour.
	TraceCache *tracecache.Cache
	// Timeline enables flight-recorder sampling on executed jobs; finished
	// timelines ride on Result and the cache, live recorders are reachable
	// through LiveTimeline while a job simulates (SSE streaming).
	Timeline TimelineOptions
	// Checkpoints is the architectural checkpoint store backing sampled
	// jobs (and opportunistic checkpoint capture during full runs when
	// the trace cache is enabled). Nil constructs a store with the
	// default byte budget — every runner can serve sampled jobs.
	Checkpoints *checkpoint.Store
	// Sites enables per-load-site misprediction attribution on executed
	// jobs; finished profiles ride on Result and the cache, live
	// collectors are reachable through LiveSites while a job simulates.
	Sites SiteOptions
}

// instruments holds the engine's telemetry handles (nil when the runner
// was built without an Observer).
type instruments struct {
	queueWait  *obs.Histogram  // seconds a job waited for a worker slot
	simDur     *obs.Histogram  // wall seconds of one executed simulation
	captureDur *obs.Histogram  // wall seconds of simulations that captured their trace
	replayDur  *obs.Histogram  // wall seconds of simulations fed by a replayed trace
	lookups    *obs.CounterVec // cache lookups by outcome hit|miss|coalesced|cancelled|trace_cache
}

func newInstruments(o *obs.Observer) *instruments {
	if o == nil {
		return nil
	}
	reg := o.Metrics
	return &instruments{
		queueWait: reg.Histogram("dlvpd_runner_queue_wait_seconds",
			"Time jobs spent waiting for a worker slot.", nil).With(),
		simDur: reg.Histogram("dlvpd_runner_sim_duration_seconds",
			"Wall time of executed simulations (cache hits excluded).", nil).With(),
		captureDur: reg.Histogram("dlvpd_runner_trace_capture_seconds",
			"Wall time of simulations that recorded their emulation stream into the trace cache.", nil).With(),
		replayDur: reg.Histogram("dlvpd_runner_trace_replay_seconds",
			"Wall time of simulations fed by a replayed (or followed) trace-cache stream.", nil).With(),
		lookups: reg.Counter("dlvpd_runner_cache_lookups_total",
			"Result-cache lookups by outcome.", "outcome"),
	}
}

// registerTraceCacheMetrics exposes the trace cache's counters at scrape
// time. Safe under repeated registration (shared registries re-fetch the
// existing family).
func registerTraceCacheMetrics(reg *obs.Registry, tc *tracecache.Cache) {
	reg.GaugeFunc("dlvpd_tracecache_bytes_resident",
		"Bytes of captured trace records resident in the trace cache (complete and in-flight).",
		func() float64 { s := tc.Stats(); return float64(s.ResidentBytes + s.CapturingBytes) })
	reg.GaugeFunc("dlvpd_tracecache_entries",
		"Complete trace captures resident in the trace cache.",
		func() float64 { return float64(tc.Stats().Entries) })
	reg.CounterFunc("dlvpd_tracecache_captures_total",
		"Trace captures started (one live emulation each).",
		func() float64 { return float64(tc.Stats().Captures) })
	reg.CounterFunc("dlvpd_tracecache_replays_total",
		"Simulations fed from a captured trace (replays plus follows).",
		func() float64 { s := tc.Stats(); return float64(s.Replays + s.Follows) })
	reg.CounterFunc("dlvpd_tracecache_evictions_total",
		"Complete captures evicted to respect the byte budget.",
		func() float64 { return float64(tc.Stats().Evictions) })
	reg.CounterFunc("dlvpd_tracecache_emulations_total",
		"Live emulator streams constructed (captures, bypasses and fallbacks).",
		func() float64 { return float64(tc.Stats().Emulations) })
}

// registerCheckpointMetrics exposes the checkpoint store's counters at
// scrape time.
func registerCheckpointMetrics(reg *obs.Registry, st *checkpoint.Store) {
	reg.GaugeFunc("dlvpd_checkpoint_bytes_resident",
		"Bytes of encoded architectural checkpoints resident in the store.",
		func() float64 { return float64(st.Stats().ResidentBytes) })
	reg.GaugeFunc("dlvpd_checkpoint_entries",
		"Architectural checkpoints resident in the store.",
		func() float64 { return float64(st.Stats().Entries) })
	reg.CounterFunc("dlvpd_checkpoint_hits_total",
		"Checkpoint restores served from a resident exact-offset checkpoint.",
		func() float64 { return float64(st.Stats().Hits) })
	reg.CounterFunc("dlvpd_checkpoint_builds_total",
		"Checkpoint builds (chained from an earlier checkpoint or cold from the program entry).",
		func() float64 { s := st.Stats(); return float64(s.Chained + s.Cold) })
	reg.CounterFunc("dlvpd_checkpoint_captured_total",
		"Checkpoints deposited opportunistically by full-run trace captures.",
		func() float64 { return float64(st.Stats().Captured) })
	reg.CounterFunc("dlvpd_checkpoint_evictions_total",
		"Checkpoints evicted to respect the byte budget.",
		func() float64 { return float64(st.Stats().Evictions) })
}

// Runner executes simulation jobs on a bounded pool with result caching.
// The zero value is not usable; construct with New.
type Runner struct {
	workers int
	sem     chan struct{}
	cache   *LRU[Result]
	tcache  *tracecache.Cache
	ckpt    *checkpoint.Store
	inst    *instruments
	tlOpts  TimelineOptions
	spOpts  SiteOptions

	mu        sync.Mutex
	flights   map[string]*flight
	live      map[string]*timeline.Recorder
	liveSites map[string]*siteprof.Collector

	queued           atomic.Int64
	running          atomic.Int64
	done             atomic.Int64
	failed           atomic.Int64
	cancelled        atomic.Int64
	executed         atomic.Int64
	hits             atomic.Int64
	misses           atomic.Int64
	coalesced        atomic.Int64
	instrs           atomic.Uint64
	simNanos         atomic.Int64
	sampledRuns      atomic.Int64
	sampledIntervals atomic.Int64
}

// flight is one in-progress computation of a job key; duplicates wait on
// done instead of re-simulating.
type flight struct {
	done chan struct{}
	res  Result
	err  error
}

// New returns a runner with the given options.
func New(opts Options) *Runner {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	var cache *LRU[Result]
	switch {
	case opts.CacheEntries == 0:
		cache = NewLRU[Result](DefaultCacheEntries)
	case opts.CacheEntries > 0:
		cache = NewLRU[Result](opts.CacheEntries)
	}
	if opts.Obs != nil && opts.TraceCache != nil {
		registerTraceCacheMetrics(opts.Obs.Metrics, opts.TraceCache)
	}
	ckpt := opts.Checkpoints
	if ckpt == nil {
		ckpt = checkpoint.NewStore(0)
	}
	if opts.Obs != nil {
		registerCheckpointMetrics(opts.Obs.Metrics, ckpt)
	}
	return &Runner{
		workers:   workers,
		sem:       make(chan struct{}, workers),
		cache:     cache,
		tcache:    opts.TraceCache,
		ckpt:      ckpt,
		inst:      newInstruments(opts.Obs),
		tlOpts:    opts.Timeline,
		spOpts:    opts.Sites,
		flights:   make(map[string]*flight),
		live:      make(map[string]*timeline.Recorder),
		liveSites: make(map[string]*siteprof.Collector),
	}
}

// TraceCache returns the engine's trace capture/replay cache (nil when
// disabled).
func (r *Runner) TraceCache() *tracecache.Cache { return r.tcache }

// Checkpoints returns the engine's architectural checkpoint store.
func (r *Runner) Checkpoints() *checkpoint.Store { return r.ckpt }

// Workers reports the pool bound.
func (r *Runner) Workers() int { return r.workers }

// Run executes one job, returning its statistics and whether the result
// was served from the cache (or coalesced onto a concurrent twin). It
// blocks until the job finishes, the result is found, or ctx is cancelled
// while the job is still waiting for a worker slot.
func (r *Runner) Run(ctx context.Context, job Job) (metrics.RunStats, bool, error) {
	res, cached, err := r.RunResult(ctx, job)
	return res.Stats, cached, err
}

// RunResult is Run returning the full Result (stats plus timeline when the
// engine records them).
func (r *Runner) RunResult(ctx context.Context, job Job) (Result, bool, error) {
	var zero Result
	if err := ctx.Err(); err != nil {
		r.cancelled.Add(1)
		return zero, false, err
	}
	w, ok := workloads.ByName(job.Workload)
	if !ok {
		r.failed.Add(1)
		return zero, false, &UnknownWorkloadError{Name: job.Workload}
	}
	if job.Sampling != nil {
		if _, err := job.Sampling.Normalize(job.Instrs); err != nil {
			r.failed.Add(1)
			return zero, false, err
		}
	}
	key, err := job.Key()
	if err != nil {
		r.failed.Add(1)
		return zero, false, err
	}

	// StartSpanCtx (not StartSpan) so the phase spans below — queue wait,
	// execute, capture/replay — parent under runner.run instead of landing
	// as flat siblings in the assembled tree.
	ctx, sp := obs.StartSpanCtx(ctx, "runner.run")
	sp.Attr("workload", job.Workload).
		Attr("instrs", strconv.FormatUint(job.Instrs, 10))

	if r.cache != nil {
		// A cached result that predates a recording feature cannot satisfy
		// an engine configured to produce it; fall through and re-simulate.
		if res, ok := r.cache.Get(key); ok && r.satisfies(res) {
			r.hits.Add(1)
			r.done.Add(1)
			r.countLookup("hit")
			sp.Attr("cache", "hit").End()
			return res, true, nil
		}
	}

	r.mu.Lock()
	if fl, ok := r.flights[key]; ok {
		r.mu.Unlock()
		select {
		case <-fl.done:
			if fl.err != nil {
				// The flight's lead already accounted this failure (or
				// cancellation); counting it again per waiter would
				// multi-count one failed simulation.
				sp.Attr("cache", "coalesced").Attr("error", fl.err.Error()).End()
				return zero, false, fl.err
			}
			r.coalesced.Add(1)
			r.done.Add(1)
			r.countLookup("coalesced")
			sp.Attr("cache", "coalesced").End()
			return fl.res, true, nil
		case <-ctx.Done():
			// The caller gave up waiting; the underlying simulation is
			// unaffected (and usually succeeds), so this is a cancelled
			// wait, not a failed job.
			r.cancelled.Add(1)
			r.countLookup("cancelled")
			sp.Attr("cache", "cancelled").Attr("error", ctx.Err().Error()).End()
			return zero, false, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	r.flights[key] = fl
	r.mu.Unlock()
	if r.cache != nil {
		r.misses.Add(1)
		r.countLookup("miss")
	}

	res, err := r.lead(ctx, key, fl, w, job)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			r.cancelled.Add(1)
		} else {
			r.failed.Add(1)
		}
		sp.Attr("cache", "miss").Attr("error", err.Error()).End()
		return zero, false, err
	}
	r.done.Add(1)
	sp.Attr("cache", "miss").End()
	return res, false, nil
}

// satisfies reports whether a cached result carries every recorded
// artifact this engine is configured to produce. Results cached by an
// engine with fewer recording features enabled (or before a feature
// existed) miss here, forcing a re-simulation that backfills the artifact.
func (r *Runner) satisfies(res Result) bool {
	if r.tlOpts.Enabled && res.Timeline == nil {
		return false
	}
	if r.spOpts.Enabled && res.Sites == nil {
		return false
	}
	return true
}

// CachedResult returns the cached result for a job key, if present. It does
// not count as a cache lookup in the engine statistics (the serving paths
// use Run/RunResult); the timeline HTTP endpoints use it to fetch the
// flight-recorder series of an already-finished run.
func (r *Runner) CachedResult(key string) (Result, bool) {
	if r.cache == nil {
		return Result{}, false
	}
	return r.cache.Get(key)
}

// LiveTimeline returns the in-flight recorder for a job key while its
// simulation is running (nil otherwise). The recorder is safe for
// concurrent reads via Snapshot/Partial — this is what the SSE streaming
// endpoint tails.
func (r *Runner) LiveTimeline(key string) *timeline.Recorder {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.live[key]
}

// TimelineEnabled reports whether the engine records flight-recorder
// timelines for executed jobs.
func (r *Runner) TimelineEnabled() bool { return r.tlOpts.Enabled }

// LiveSites returns the in-flight site-attribution collector for a job
// key while its simulation is running (nil otherwise). The collector is
// safe for concurrent reads via Snapshot — this is what the live
// /v1/runs/{id}/sites endpoint polls.
func (r *Runner) LiveSites(key string) *siteprof.Collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.liveSites[key]
}

// SitesEnabled reports whether the engine records per-load-site
// attribution profiles for executed jobs.
func (r *Runner) SitesEnabled() bool { return r.spOpts.Enabled }

// countLookup bumps the cache-outcome counter when instrumented.
func (r *Runner) countLookup(outcome string) {
	if r.inst != nil {
		r.inst.lookups.With(outcome).Inc()
	}
}

// lead simulates a job as the unique owner of its flight, publishing the
// outcome to any coalesced waiters and to the cache.
func (r *Runner) lead(ctx context.Context, key string, fl *flight, w workloads.Workload, job Job) (res Result, err error) {
	defer func() {
		fl.res, fl.err = res, err
		r.mu.Lock()
		delete(r.flights, key)
		delete(r.live, key)
		delete(r.liveSites, key)
		r.mu.Unlock()
		close(fl.done)
	}()

	// The worker slot is acquired here, inside the worker's own goroutine,
	// never by the submitter — so a cancelled matrix abandons its queued
	// jobs immediately instead of serialising on submission.
	qsp := obs.StartSpan(ctx, "runner.queue").Attr("workload", job.Workload)
	enqueued := time.Now()
	r.queued.Add(1)
	select {
	case r.sem <- struct{}{}:
		r.queued.Add(-1)
	case <-ctx.Done():
		r.queued.Add(-1)
		qsp.Attr("outcome", "cancelled").End()
		return res, ctx.Err()
	}
	defer func() { <-r.sem }()
	if r.inst != nil {
		r.inst.queueWait.Observe(time.Since(enqueued).Seconds())
	}
	qsp.End()

	// Sampled jobs take the checkpoint-and-interval path; the lead's
	// worker slot (and any idle pool slots) back the interval fan-out.
	if job.Sampling != nil {
		return r.runSampled(ctx, key, w, job)
	}

	xsp := obs.StartSpan(ctx, "runner.execute").Attr("workload", job.Workload)
	r.running.Add(1)
	start := time.Now()

	// The trace cache, when configured, replaces the per-job functional
	// emulation with a capture-once/replay-many stream: the first job over
	// a (workload, instrs) records the emulator's output, every other job
	// replays (or tails) it. Outcomes are surfaced as runner.capture /
	// runner.replay spans plus dedicated duration histograms. The live
	// emulation behind a capture additionally deposits architectural
	// checkpoints into the engine's store as it streams — checkpoint
	// capture rides the trace cache's single-flight guarantee, so a full
	// run leaves behind the restore points a later sampled run needs.
	reader := trace.Reader(nil)
	outcome := tracecache.OutcomeBypass
	if r.tcache != nil {
		var release func()
		reader, release, outcome = r.tcache.Reader(job.Workload, job.Instrs,
			func() trace.Reader { return r.ckpt.Capture(w.CPU(job.Instrs), job.Workload, 0) })
		defer release()
	} else {
		reader = w.Reader(job.Instrs)
	}
	var tsp *obs.ActiveSpan
	switch outcome {
	case tracecache.OutcomeCapture:
		tsp = obs.StartSpan(ctx, "runner.capture").Attr("workload", job.Workload)
	case tracecache.OutcomeReplay, tracecache.OutcomeFollow:
		tsp = obs.StartSpan(ctx, "runner.replay").Attr("workload", job.Workload)
		r.countLookup("trace_cache")
	}

	arena := uarch.AcquireArena()
	defer uarch.ReleaseArena(arena)
	core := uarch.NewAtArena(job.Config, w.Build(), reader, nil, arena)
	if r.tlOpts.Enabled {
		rec := core.EnableTimeline(r.tlOpts.IntervalInstrs, r.tlOpts.Capacity)
		r.mu.Lock()
		r.live[key] = rec
		r.mu.Unlock()
	}
	if r.spOpts.Enabled {
		col := core.EnableSiteProfile(r.spOpts.MaxSites)
		r.mu.Lock()
		r.liveSites[key] = col
		r.mu.Unlock()
	}
	res.Stats = core.Run(0)
	res.Timeline = core.Timeline()
	res.Sites = core.SiteProfile()
	st := res.Stats
	elapsed := time.Since(start)
	r.simNanos.Add(int64(elapsed))
	r.running.Add(-1)
	r.executed.Add(1)
	r.instrs.Add(st.Instructions)
	if r.inst != nil {
		r.inst.simDur.Observe(elapsed.Seconds())
		switch outcome {
		case tracecache.OutcomeCapture:
			r.inst.captureDur.Observe(elapsed.Seconds())
		case tracecache.OutcomeReplay, tracecache.OutcomeFollow:
			r.inst.replayDur.Observe(elapsed.Seconds())
		}
	}
	if tsp != nil {
		tsp.End()
	}
	xsp.Attr("instructions", strconv.FormatUint(st.Instructions, 10)).End()

	if r.cache != nil {
		r.cache.Put(key, res)
	}
	return res, nil
}

// Matrix parameterises a RunAll call.
type Matrix struct {
	// MaxParallel additionally bounds this call's concurrency below the
	// runner's pool size (<= 0: bounded only by the pool). The experiment
	// drivers use 1 for their -serial mode.
	MaxParallel int
	// Progress, when non-nil, is invoked after each job completes, with the
	// number done so far and the total. Calls are serialised.
	Progress func(done, total int)
}

// RunAll executes every job, fanning out across the pool, and returns the
// results in submission order (deterministic aggregation regardless of
// completion order). On cancellation it returns ctx.Err(); the first
// job-level error otherwise. Results of jobs that did not run are zero.
func (r *Runner) RunAll(ctx context.Context, jobs []Job, opt Matrix) ([]metrics.RunStats, error) {
	results := make([]metrics.RunStats, len(jobs))
	var local chan struct{}
	if opt.MaxParallel > 0 {
		local = make(chan struct{}, opt.MaxParallel)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		nDone    int
	)
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if local != nil {
				select {
				case local <- struct{}{}:
					defer func() { <-local }()
				case <-ctx.Done():
					mu.Lock()
					if firstErr == nil {
						firstErr = ctx.Err()
					}
					mu.Unlock()
					return
				}
			}
			st, _, err := r.Run(ctx, jobs[i])
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			results[i] = st
			nDone++
			if opt.Progress != nil {
				opt.Progress(nDone, len(jobs))
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, firstErr
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	Workers     int   `json:"workers"`
	JobsQueued  int64 `json:"jobs_queued"`  // waiting for a worker slot now
	JobsRunning int64 `json:"jobs_running"` // simulating now
	JobsDone    int64 `json:"jobs_done"`    // completed, incl. cached/coalesced
	JobsFailed  int64 `json:"jobs_failed"`
	// JobsCancelled counts jobs abandoned by their caller's context —
	// while queued, or while coalesced-waiting on a twin flight whose
	// simulation itself carries on. These are not failures: the
	// underlying work either never started or finished for someone else.
	JobsCancelled   int64   `json:"jobs_cancelled"`
	SimsExecuted    int64   `json:"sims_executed"` // simulations actually run
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	Coalesced       int64   `json:"coalesced"` // duplicates that waited on a twin
	CacheEntries    int     `json:"cache_entries"`
	CacheCapacity   int     `json:"cache_capacity"`
	InstrsSimulated uint64  `json:"instrs_simulated"`
	SimSeconds      float64 `json:"sim_seconds"`    // aggregate worker-seconds spent simulating
	InstrsPerSec    float64 `json:"instrs_per_sec"` // InstrsSimulated / SimSeconds
	// SampledRuns counts jobs executed in checkpointed sampled mode;
	// SampledIntervals the detailed interval simulations behind them.
	SampledRuns      int64 `json:"sampled_runs"`
	SampledIntervals int64 `json:"sampled_intervals"`
	// TraceCache reports the capture/replay cache when configured.
	TraceCache *tracecache.Stats `json:"trace_cache,omitempty"`
	// Checkpoints reports the architectural checkpoint store.
	Checkpoints *checkpoint.Stats `json:"checkpoints,omitempty"`
}

// HitRatio returns cache hits (including coalesced twins) over all cache
// lookups, in [0, 1].
func (s Stats) HitRatio() float64 {
	total := s.CacheHits + s.Coalesced + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits+s.Coalesced) / float64(total)
}

// Stats snapshots the engine counters.
func (r *Runner) Stats() Stats {
	s := Stats{
		Workers:          r.workers,
		JobsQueued:       r.queued.Load(),
		JobsRunning:      r.running.Load(),
		JobsDone:         r.done.Load(),
		JobsFailed:       r.failed.Load(),
		JobsCancelled:    r.cancelled.Load(),
		SimsExecuted:     r.executed.Load(),
		CacheHits:        r.hits.Load(),
		CacheMisses:      r.misses.Load(),
		Coalesced:        r.coalesced.Load(),
		InstrsSimulated:  r.instrs.Load(),
		SimSeconds:       float64(r.simNanos.Load()) / 1e9,
		SampledRuns:      r.sampledRuns.Load(),
		SampledIntervals: r.sampledIntervals.Load(),
	}
	if r.cache != nil {
		s.CacheEntries = r.cache.Len()
		s.CacheCapacity = r.cache.Cap()
	}
	if r.tcache != nil {
		ts := r.tcache.Stats()
		s.TraceCache = &ts
	}
	if r.ckpt != nil {
		cs := r.ckpt.Stats()
		s.Checkpoints = &cs
	}
	if s.SimSeconds > 0 {
		s.InstrsPerSec = float64(s.InstrsSimulated) / s.SimSeconds
	}
	return s
}
