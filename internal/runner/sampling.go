package runner

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dlvp/internal/checkpoint"
	"dlvp/internal/emu"
	"dlvp/internal/metrics"
	"dlvp/internal/obs"
	"dlvp/internal/predictor"
	"dlvp/internal/siteprof"
	"dlvp/internal/timeline"
	"dlvp/internal/trace"
	"dlvp/internal/uarch"
	"dlvp/internal/workloads"
)

// MaxSamplingIntervals bounds how many intervals one sampled job may
// request; it caps per-job goroutine and checkpoint pressure.
const MaxSamplingIntervals = 1024

// sampleStreamSlack is the functional-emulation headroom fed to the
// detailed core past each interval's measured region, so the window
// closes at full pipeline occupancy instead of at stream exhaustion.
// It only needs to exceed the in-flight capacity (ROB + fetch buffer).
const sampleStreamSlack = 4096

// SamplingSpec selects SimPoint-style sampled execution for a job: the
// instruction budget is split into Intervals equal strides; each stride
// holds one measured window, centred within it, whose detailed
// simulation restores an architectural checkpoint, warms the core for
// WarmupInstrs committed instructions (predictors and caches train,
// statistics excluded) and then measures MeasuredInstrs committed
// instructions. Centring keeps any window off the workload's start-up
// transient — an interval anchored at offset 0 would measure the cold
// boot at K times its true weight. The functional
// gap between intervals is covered by checkpoint chaining (fast
// emulation), never by the detailed core — that is where the speedup
// comes from. The JSON field names are the wire shape of the /v1/runs
// "sampling" object.
type SamplingSpec struct {
	// Intervals is the number of sampling intervals K (required, >= 1).
	Intervals int `json:"intervals"`
	// WarmupInstrs is the per-interval warm-up region in committed
	// instructions (0 selects stride/16).
	WarmupInstrs uint64 `json:"warmup"`
	// MeasuredInstrs is the per-interval measured region in committed
	// instructions (0 selects stride/8). Must not exceed the stride.
	MeasuredInstrs uint64 `json:"budget"`
}

// Normalize validates the spec against a job's total instruction budget
// and fills the defaulted fields. It returns the effective spec.
func (sp SamplingSpec) Normalize(totalInstrs uint64) (SamplingSpec, error) {
	if totalInstrs == 0 {
		return sp, fmt.Errorf("runner: sampling requires a bounded instruction budget (instrs > 0)")
	}
	if sp.Intervals < 1 {
		return sp, fmt.Errorf("runner: sampling intervals must be >= 1 (got %d)", sp.Intervals)
	}
	if sp.Intervals > MaxSamplingIntervals {
		return sp, fmt.Errorf("runner: sampling intervals must be <= %d (got %d)", MaxSamplingIntervals, sp.Intervals)
	}
	stride := totalInstrs / uint64(sp.Intervals)
	if stride == 0 {
		return sp, fmt.Errorf("runner: more sampling intervals (%d) than instructions (%d)", sp.Intervals, totalInstrs)
	}
	if sp.MeasuredInstrs == 0 {
		sp.MeasuredInstrs = stride / 8
		if sp.MeasuredInstrs == 0 {
			sp.MeasuredInstrs = 1
		}
	}
	if sp.MeasuredInstrs > stride {
		return sp, fmt.Errorf("runner: sampling budget (%d) exceeds the interval stride (%d)", sp.MeasuredInstrs, stride)
	}
	if sp.WarmupInstrs == 0 {
		sp.WarmupInstrs = stride / 16
	}
	if sp.WarmupInstrs > totalInstrs {
		return sp, fmt.Errorf("runner: sampling warmup (%d) exceeds the instruction budget (%d)", sp.WarmupInstrs, totalInstrs)
	}
	return sp, nil
}

// Stride returns the interval stride for a total budget (valid after
// Normalize succeeded against the same budget).
func (sp SamplingSpec) Stride(totalInstrs uint64) uint64 {
	return totalInstrs / uint64(sp.Intervals)
}

// SampledInfo describes how a sampled result was produced; it rides on
// Result so consumers can tell an estimate from a monolithic
// measurement and judge its cost.
type SampledInfo struct {
	Intervals      int    `json:"intervals"`
	StrideInstrs   uint64 `json:"stride_instrs"`
	WarmupInstrs   uint64 `json:"warmup_instrs"`
	MeasuredInstrs uint64 `json:"measured_instrs"`
	// SpanInstrs is the full budget the estimate stands for.
	SpanInstrs uint64 `json:"span_instrs"`
	// DetailedInstrs is what the detailed core actually committed
	// (warm-up + measured, summed over intervals) — the cost.
	DetailedInstrs uint64 `json:"detailed_instrs"`
	// MeasuredTotal is the committed instructions inside measured
	// regions only (the denominator of every reported rate).
	MeasuredTotal uint64 `json:"measured_total"`
	// EstimatedCycles extrapolates the measured cycles to the full span
	// (SpanInstrs / MeasuredTotal scaling); Result.Stats.Cycles stays
	// the raw measured sum so rates remain exact.
	EstimatedCycles uint64 `json:"estimated_cycles"`
	// Checkpoint restore outcomes for this run's intervals.
	CheckpointHits      int64 `json:"checkpoint_hits"`
	CheckpointChained   int64 `json:"checkpoint_chained"`
	CheckpointCold      int64 `json:"checkpoint_cold"`
	CheckpointCoalesced int64 `json:"checkpoint_coalesced"`
}

// sampledInterval is the per-interval plan: the anchor, the checkpoint
// restore offset below it, and the regions simulated in detail.
type sampledInterval struct {
	anchor   uint64 // measured region start (absolute instruction offset)
	restore  uint64 // checkpoint offset (anchor - warm-up, floored at 0)
	warmup   uint64 // actual warm-up instructions (anchor - restore)
	detailed uint64 // warm-up + measured: the detailed core budget
}

// planIntervals lays out the K intervals for a normalized spec. Each
// measured window is centred in its stride ([i·stride, (i+1)·stride)),
// so the estimator weights every region of the run equally and the
// first window starts far enough in for its warm-up to run.
func planIntervals(sp SamplingSpec, totalInstrs uint64) []sampledInterval {
	stride := sp.Stride(totalInstrs)
	center := (stride - sp.MeasuredInstrs) / 2
	plan := make([]sampledInterval, sp.Intervals)
	for i := range plan {
		anchor := uint64(i)*stride + center
		restore := uint64(0)
		if anchor > sp.WarmupInstrs {
			restore = anchor - sp.WarmupInstrs
		}
		plan[i] = sampledInterval{
			anchor:   anchor,
			restore:  restore,
			warmup:   anchor - restore,
			detailed: (anchor - restore) + sp.MeasuredInstrs,
		}
	}
	return plan
}

// runSampled executes a sampled job. The caller (lead) already holds
// one worker slot and owns the flight for key; extra pool slots are
// borrowed opportunistically so intervals run in parallel without
// starving concurrent jobs.
func (r *Runner) runSampled(ctx context.Context, key string, w workloads.Workload, job Job) (Result, error) {
	var res Result
	spec, err := job.Sampling.Normalize(job.Instrs)
	if err != nil {
		return res, err
	}
	plan := planIntervals(spec, job.Instrs)
	store := r.ckpt
	prog := w.Build()
	scheme := job.Config.VP.Scheme.String()

	xsp := obs.StartSpan(ctx, "runner.sampled").
		Attr("workload", job.Workload).
		Attr("intervals", fmt.Sprint(spec.Intervals))
	r.running.Add(1)
	start := time.Now()
	defer func() {
		elapsed := time.Since(start)
		r.simNanos.Add(int64(elapsed))
		r.running.Add(-1)
		if r.inst != nil {
			r.inst.simDur.Observe(elapsed.Seconds())
		}
		xsp.End()
	}()
	r.sampledRuns.Add(1)

	info := SampledInfo{
		Intervals:      spec.Intervals,
		StrideInstrs:   spec.Stride(job.Instrs),
		WarmupInstrs:   spec.WarmupInstrs,
		MeasuredInstrs: spec.MeasuredInstrs,
		SpanInstrs:     job.Instrs,
	}
	countOutcome := func(o checkpoint.Outcome) {
		switch o {
		case checkpoint.OutcomeHit:
			info.CheckpointHits++
		case checkpoint.OutcomeChained:
			info.CheckpointChained++
		case checkpoint.OutcomeCold:
			info.CheckpointCold++
		case checkpoint.OutcomeCoalesced:
			info.CheckpointCoalesced++
		}
	}

	// Phase 1 — build the checkpoint chain. Ascending restore offsets
	// chain off each other, so this costs ~one functional emulation pass
	// over the span on a cold store and almost nothing once the store is
	// warm (matrices over one workload share the chain).
	psp := obs.StartSpan(ctx, "runner.sampled.checkpoints").Attr("workload", job.Workload)
	for i := range plan {
		if err := ctx.Err(); err != nil {
			psp.Attr("outcome", "cancelled").End()
			return res, err
		}
		if plan[i].restore == 0 {
			continue
		}
		_, outcome, err := store.StateAt(job.Workload, prog, plan[i].restore)
		if err != nil {
			psp.Attr("error", err.Error()).End()
			return res, fmt.Errorf("runner: sampled interval %d: %w", i, err)
		}
		countOutcome(outcome)
	}
	psp.End()

	// Per-interval progress rides the regular timeline machinery: one
	// recorder sample per completed interval (published in interval
	// order), live-streamable over SSE while the job runs.
	rec := timeline.NewRecorder(spec.MeasuredInstrs, spec.Intervals+2)
	r.mu.Lock()
	r.live[key] = rec
	r.mu.Unlock()

	// Phase 2 — detailed interval simulations, fanned out over borrowed
	// pool slots (the lead's own slot plus any immediately available).
	// resMu guards the per-interval results, the outcome counts, the
	// first error, and in-order publication into the recorder: samples
	// are published as the completed-interval prefix grows, so SSE
	// clients see monotone per-interval progress regardless of
	// completion order.
	var (
		resMu     sync.Mutex
		measured  = make([]timeline.Counters, len(plan))
		detailed  = make([]uint64, len(plan))
		profiles  = make([]*siteprof.Profile, len(plan))
		completed = make([]bool, len(plan))
		firstErr  error
		published int
		cum       timeline.Counters
	)
	setErr := func(err error) {
		resMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		resMu.Unlock()
	}
	stopped := func() bool {
		resMu.Lock()
		defer resMu.Unlock()
		return firstErr != nil
	}
	publishLocked := func() {
		for published < len(plan) && completed[published] {
			cum = cum.Add(measured[published])
			rec.Sample(cum, 0)
			published++
		}
	}

	runInterval := func(i int) {
		iv := plan[i]
		snap, outcome, err := store.StateAt(job.Workload, prog, iv.restore)
		if err != nil {
			setErr(fmt.Errorf("runner: sampled interval %d: %w", i, err))
			return
		}
		cpu := emu.NewFromSnapshot(prog, snap)
		// Slack past the measured region keeps the pipeline full at the
		// closing commit: the window ends by counter, not by stream
		// exhaustion, so no drain cycles leak into the measurement. The
		// detailed core never commits past the window (SetSampleWindow
		// stops it); the slack costs only functional emulation.
		cpu.MaxInstrs = iv.restore + iv.detailed + sampleStreamSlack
		reader := trace.Rebase(cpu, iv.restore)
		arena := uarch.AcquireArena()
		defer uarch.ReleaseArena(arena)
		core := uarch.NewAtArena(job.Config, prog, reader, snap.Mem, arena)
		core.SetSampleWindow(iv.warmup, spec.MeasuredInstrs)
		if r.spOpts.Enabled {
			core.EnableSiteProfile(r.spOpts.MaxSites)
		}
		st := core.Run(0)
		meas, complete := core.MeasuredCounters()
		if !complete {
			setErr(fmt.Errorf("runner: sampled interval %d: workload %q ended inside the sample window (%d of %d instructions committed)",
				i, job.Workload, st.Instructions, iv.detailed))
			return
		}
		resMu.Lock()
		countOutcome(outcome)
		measured[i] = meas
		detailed[i] = st.Instructions
		profiles[i] = core.SiteProfile()
		completed[i] = true
		publishLocked()
		resMu.Unlock()
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for extra := 0; extra < len(plan)-1; extra++ {
		select {
		case r.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-r.sem }()
				for i := range idx {
					runInterval(i)
				}
			}()
			continue
		default:
		}
		break // pool busy: the lead runs the rest inline
	}

	for i := range plan {
		if err := ctx.Err(); err != nil {
			setErr(err)
			break
		}
		if stopped() {
			break
		}
		select {
		case idx <- i:
		default:
			runInterval(i) // no free helper: the lead simulates it inline
		}
	}
	close(idx)
	wg.Wait()

	if firstErr != nil {
		return res, firstErr
	}

	var sum timeline.Counters
	var detailedTotal uint64
	for i := range plan {
		sum = sum.Add(measured[i])
		detailedTotal += detailed[i]
	}
	r.sampledIntervals.Add(int64(len(plan)))
	r.instrs.Add(detailedTotal)
	r.executed.Add(1)

	info.DetailedInstrs = detailedTotal
	info.MeasuredTotal = sum.Instructions
	if sum.Instructions > 0 {
		info.EstimatedCycles = uint64(float64(sum.Cycles) * float64(info.SpanInstrs) / float64(sum.Instructions))
	}

	res.Stats = statsFromMeasured(job.Workload, scheme, sum)
	res.Timeline = rec.Finish(cum, 0, job.Workload, scheme)
	if r.spOpts.Enabled {
		// Per-interval profiles cover only measured regions (warm-up is
		// excluded per interval), so the merged profile reconciles with
		// the summed measured counters.
		merged := siteprof.Merge(profiles, r.spOpts.MaxSites)
		merged.Workload, merged.Scheme = job.Workload, scheme
		res.Sites = merged
	}
	res.Sampled = &info
	if r.cache != nil {
		r.cache.Put(key, res)
	}
	return res, nil
}

// statsFromMeasured converts summed measured-region counter deltas into
// a RunStats. Only the counters the timeline tracks are populated —
// rates (IPC, coverage, accuracy, miss rates) are exact over the
// measured regions; counters outside the timeline's scope (way
// mispredictions, tournament attribution, energy, the PAQ fine-grained
// drop reasons) are zero in a sampled result.
func statsFromMeasured(workload, scheme string, sum timeline.Counters) metrics.RunStats {
	st := metrics.RunStats{
		Workload:      workload,
		Scheme:        scheme,
		Cycles:        sum.Cycles,
		Instructions:  sum.Instructions,
		Loads:         sum.Loads,
		Stores:        sum.Stores,
		VP:            predictor.Stats{Eligible: sum.VPEligible, Predicted: sum.VPPredicted, Correct: sum.VPCorrect},
		ValueFlushes:  sum.ValueFlushes,
		BranchFlushes: sum.BranchFlushes,
		OrderFlushes:  sum.OrderFlushes,
		ValueReplays:  sum.ValueReplays,
		Probes:        sum.Probes,
		ProbeHits:     sum.ProbeHits,
		PAQAllocated:  sum.PAQAllocated,
		PAQDropped:    sum.PAQDropped,
		PAQFull:       sum.PAQFull,
		Prefetches:    sum.Prefetches,
		LSCDFiltered:  sum.LSCDFiltered,
		LSCDInserts:   sum.LSCDInserts,
		TLBMisses:     sum.TLBMisses,
	}
	if sum.L1DAccesses > 0 {
		st.L1DMissRate = 100 * float64(sum.L1DMisses) / float64(sum.L1DAccesses)
	}
	if sum.L2Accesses > 0 {
		st.L2MissRate = 100 * float64(sum.L2Misses) / float64(sum.L2Accesses)
	}
	if sum.TLBAccesses > 0 {
		st.TLBMissRate = 100 * float64(sum.TLBMisses) / float64(sum.TLBAccesses)
	}
	return st
}
