package runner

import (
	"context"
	"testing"

	"dlvp/internal/config"
)

// A sites-enabled engine attaches the attribution profile to its results,
// caches it content-addressed alongside the stats, reconciles it exactly
// with the aggregate VP counters, and exposes nothing live once done.
func TestRunResultRecordsSites(t *testing.T) {
	r := New(Options{Workers: 2, Sites: SiteOptions{Enabled: true}})
	job := Job{Workload: "perlbmk", Config: config.DLVP(), Instrs: testInstrs}
	res, cached, err := r.RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first run reported cached")
	}
	if res.Sites == nil {
		t.Fatal("no site profile on a sites-enabled engine's result")
	}
	tot := res.Sites.Totals()
	if tot.Eligible != res.Stats.VP.Eligible || tot.Predicted != res.Stats.VP.Predicted ||
		tot.Correct != res.Stats.VP.Correct {
		t.Errorf("site totals %d/%d/%d != stats VP %d/%d/%d",
			tot.Eligible, tot.Predicted, tot.Correct,
			res.Stats.VP.Eligible, res.Stats.VP.Predicted, res.Stats.VP.Correct)
	}
	if res.Sites.Instructions != res.Stats.Instructions {
		t.Errorf("profile instructions = %d, stats say %d", res.Sites.Instructions, res.Stats.Instructions)
	}
	if res.Sites.Partial {
		t.Error("finished run's profile still marked partial")
	}

	again, cached, err := r.RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("second identical run not served from cache")
	}
	if again.Sites == nil || len(again.Sites.Sites) != len(res.Sites.Sites) {
		t.Error("cached result lost its site profile")
	}

	key, err := job.Key()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.LiveSites(key); got != nil {
		t.Error("LiveSites non-nil after completion")
	}
	if !r.SitesEnabled() {
		t.Error("SitesEnabled() = false on a sites-enabled engine")
	}
}

// The cache-bypass regression test: a cached result recorded WITHOUT a
// site profile must not satisfy an engine that is asked to produce one —
// the hit re-runs and backfills the profile.
func TestSitesBypassSiteLessCacheEntries(t *testing.T) {
	r := New(Options{Workers: 1, Sites: SiteOptions{Enabled: true}})
	job := testJob("perlbmk", testInstrs)
	key, err := job.Key()
	if err != nil {
		t.Fatal(err)
	}
	// Seed the cache with a profile-less result, as a pre-siteprof engine
	// (or one running with sites off) would have left behind.
	stale, _, err := New(Options{Workers: 1}).RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if stale.Sites != nil {
		t.Fatal("plain engine unexpectedly produced a site profile")
	}
	r.cache.Put(key, stale)

	res, cached, err := r.RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("site-less cache entry served as a hit to a sites-enabled engine")
	}
	if res.Sites == nil {
		t.Fatal("re-run did not backfill the site profile")
	}
	if s := r.Stats(); s.SimsExecuted != 1 {
		t.Errorf("SimsExecuted = %d, want 1 (the bypass re-run)", s.SimsExecuted)
	}
	// The backfilled entry now satisfies the engine.
	if _, cached, _ := r.RunResult(context.Background(), job); !cached {
		t.Error("backfilled entry not served from cache")
	}

	// And the generalized check still covers timelines alongside sites.
	both := New(Options{Workers: 1,
		Timeline: TimelineOptions{Enabled: true, IntervalInstrs: 500},
		Sites:    SiteOptions{Enabled: true}})
	both.cache.Put(key, res) // has sites, lacks a timeline
	bres, cached, err := both.RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if cached || bres.Timeline == nil || bres.Sites == nil {
		t.Errorf("timeline-less entry hit = %v (timeline %v, sites %v), want bypass with both artifacts",
			cached, bres.Timeline != nil, bres.Sites != nil)
	}
}

// A sampled run merges per-interval profiles into one that reconciles
// exactly with the summed measured-region counters.
func TestSampledRunMergesSiteProfiles(t *testing.T) {
	r := New(Options{Workers: 2, Sites: SiteOptions{Enabled: true}})
	job := Job{Workload: "perlbmk", Config: config.DLVP(), Instrs: 40_000,
		Sampling: &SamplingSpec{Intervals: 4}}
	res, _, err := r.RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sites == nil {
		t.Fatal("sampled run carries no site profile")
	}
	tot := res.Sites.Totals()
	if tot.Eligible != res.Stats.VP.Eligible || tot.Predicted != res.Stats.VP.Predicted ||
		tot.Correct != res.Stats.VP.Correct {
		t.Errorf("sampled site totals %d/%d/%d != measured VP %d/%d/%d",
			tot.Eligible, tot.Predicted, tot.Correct,
			res.Stats.VP.Eligible, res.Stats.VP.Predicted, res.Stats.VP.Correct)
	}
	if res.Sites.Instructions != res.Sampled.MeasuredTotal {
		t.Errorf("profile spans %d instrs, want the measured total %d",
			res.Sites.Instructions, res.Sampled.MeasuredTotal)
	}
	if res.Sites.Workload != job.Workload || res.Sites.Scheme == "" {
		t.Errorf("merged profile labels = %q/%q", res.Sites.Workload, res.Sites.Scheme)
	}
}
