package runner

import (
	"context"
	"math"
	"strings"
	"testing"

	"dlvp/internal/config"
	"dlvp/internal/metrics"
)

func TestSamplingSpecNormalize(t *testing.T) {
	cases := []struct {
		name   string
		spec   SamplingSpec
		instrs uint64
		errHas string // substring of the expected error ("" = valid)
	}{
		{"defaults", SamplingSpec{Intervals: 8}, 80_000, ""},
		{"explicit", SamplingSpec{Intervals: 4, WarmupInstrs: 100, MeasuredInstrs: 200}, 40_000, ""},
		{"zero instrs", SamplingSpec{Intervals: 4}, 0, "bounded instruction budget"},
		{"zero intervals", SamplingSpec{}, 10_000, "intervals must be >= 1"},
		{"negative intervals", SamplingSpec{Intervals: -2}, 10_000, "intervals must be >= 1"},
		{"too many intervals", SamplingSpec{Intervals: MaxSamplingIntervals + 1}, 1 << 30, "intervals must be <="},
		{"more intervals than instrs", SamplingSpec{Intervals: 100}, 50, "more sampling intervals"},
		{"budget over stride", SamplingSpec{Intervals: 4, MeasuredInstrs: 20_000}, 40_000, "exceeds the interval stride"},
		{"warmup over budget", SamplingSpec{Intervals: 2, WarmupInstrs: 1 << 40}, 40_000, "exceeds the instruction budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.spec.Normalize(tc.instrs)
			if tc.errHas != "" {
				if err == nil || !strings.Contains(err.Error(), tc.errHas) {
					t.Fatalf("err = %v, want substring %q", err, tc.errHas)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got.MeasuredInstrs == 0 || got.MeasuredInstrs > got.Stride(tc.instrs) {
				t.Errorf("normalized measured = %d, want in (0, stride %d]", got.MeasuredInstrs, got.Stride(tc.instrs))
			}
		})
	}

	// The documented defaults: stride/8 measured, stride/16 warm-up.
	sp, err := SamplingSpec{Intervals: 8}.Normalize(80_000)
	if err != nil {
		t.Fatal(err)
	}
	if sp.MeasuredInstrs != 10_000/8 || sp.WarmupInstrs != 10_000/16 {
		t.Errorf("defaults = measured %d / warmup %d, want %d / %d", sp.MeasuredInstrs, sp.WarmupInstrs, 10_000/8, 10_000/16)
	}
}

func TestPlanIntervals(t *testing.T) {
	sp, err := SamplingSpec{Intervals: 4, WarmupInstrs: 300, MeasuredInstrs: 500}.Normalize(40_000)
	if err != nil {
		t.Fatal(err)
	}
	plan := planIntervals(sp, 40_000)
	if len(plan) != 4 {
		t.Fatalf("%d intervals planned, want 4", len(plan))
	}
	// Windows are centred in their strides: anchor = i·stride + (stride-M)/2.
	const center = (10_000 - 500) / 2
	for i, iv := range plan {
		wantAnchor := uint64(i)*10_000 + center
		if iv.anchor != wantAnchor {
			t.Errorf("interval %d anchor = %d, want %d", i, iv.anchor, wantAnchor)
		}
		// The window must stay inside its own stride.
		if iv.anchor < uint64(i)*10_000 || iv.anchor+500 > uint64(i+1)*10_000 {
			t.Errorf("interval %d window [%d, %d) escapes stride [%d, %d)",
				i, iv.anchor, iv.anchor+500, uint64(i)*10_000, uint64(i+1)*10_000)
		}
		if iv.restore+iv.warmup != iv.anchor {
			t.Errorf("interval %d: restore %d + warmup %d != anchor %d", i, iv.restore, iv.warmup, iv.anchor)
		}
		if iv.detailed != iv.warmup+500 {
			t.Errorf("interval %d detailed = %d, want warmup+measured", i, iv.detailed)
		}
	}
	// Centring gives even the first interval its full warm-up.
	if plan[0].warmup != 300 || plan[0].restore != center-300 {
		t.Errorf("interval 0 = %+v, want warmup 300 / restore %d", plan[0], center-300)
	}
	// Warm-up longer than the first anchor still floors restore at 0.
	wide, err := SamplingSpec{Intervals: 4, WarmupInstrs: 6_000, MeasuredInstrs: 500}.Normalize(40_000)
	if err != nil {
		t.Fatal(err)
	}
	if p := planIntervals(wide, 40_000); p[0].restore != 0 || p[0].warmup != p[0].anchor {
		t.Errorf("clipped interval 0 = %+v, want restore 0 / warmup == anchor", p[0])
	}
}

func TestSampledJobKeyDiffersFromFull(t *testing.T) {
	full := testJob("perlbmk", testInstrs)
	sampled := full
	sampled.Sampling = &SamplingSpec{Intervals: 4}
	fk, err := full.Key()
	if err != nil {
		t.Fatal(err)
	}
	sk, err := sampled.Key()
	if err != nil {
		t.Fatal(err)
	}
	if fk == sk {
		t.Error("a sampled job content-addresses like the full job; caches would alias estimates and measurements")
	}
	other := full
	other.Sampling = &SamplingSpec{Intervals: 8}
	if ok, _ := other.Key(); ok == sk {
		t.Error("interval count not part of the content address")
	}
}

func TestSampledRunProducesEstimate(t *testing.T) {
	r := New(Options{Workers: 2})
	job := Job{Workload: "perlbmk", Config: config.DLVP(), Instrs: 40_000,
		Sampling: &SamplingSpec{Intervals: 4}}
	res, cached, err := r.RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first sampled run reported cached")
	}
	info := res.Sampled
	if info == nil {
		t.Fatal("sampled result carries no SampledInfo")
	}
	spec, _ := job.Sampling.Normalize(job.Instrs)
	if info.Intervals != 4 || info.SpanInstrs != 40_000 || info.StrideInstrs != 10_000 {
		t.Errorf("info = %+v, want 4 intervals over 40000", info)
	}
	wantMeasured := uint64(4) * spec.MeasuredInstrs
	if info.MeasuredTotal != wantMeasured {
		t.Errorf("measured total = %d, want %d", info.MeasuredTotal, wantMeasured)
	}
	if res.Stats.Instructions != wantMeasured {
		t.Errorf("stats instructions = %d, want the measured total %d", res.Stats.Instructions, wantMeasured)
	}
	if info.DetailedInstrs >= info.SpanInstrs {
		t.Errorf("detailed %d instrs >= span %d: sampling did not reduce detailed work", info.DetailedInstrs, info.SpanInstrs)
	}
	if res.Stats.Cycles == 0 || res.Stats.IPC() <= 0 {
		t.Errorf("implausible sampled stats: %d cycles, IPC %f", res.Stats.Cycles, res.Stats.IPC())
	}
	if info.EstimatedCycles <= res.Stats.Cycles {
		t.Errorf("estimated full-span cycles %d <= measured %d", info.EstimatedCycles, res.Stats.Cycles)
	}
	if res.Timeline == nil {
		t.Fatal("sampled run recorded no timeline")
	}
	if got := res.Timeline.Totals().Instructions; got != wantMeasured {
		t.Errorf("timeline totals = %d, want %d", got, wantMeasured)
	}
	if hits := r.Checkpoints().Stats(); hits.Entries == 0 {
		t.Error("sampled run left no checkpoints behind")
	}
	st := r.Stats()
	if st.SampledRuns != 1 || st.SampledIntervals != 4 {
		t.Errorf("engine stats sampled = %d runs / %d intervals, want 1 / 4", st.SampledRuns, st.SampledIntervals)
	}
}

func TestSampledRunCached(t *testing.T) {
	r := New(Options{Workers: 2})
	job := Job{Workload: "mcf", Config: config.Baseline(), Instrs: 20_000,
		Sampling: &SamplingSpec{Intervals: 2}}
	first, cached, err := r.RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first run cached")
	}
	second, cached, err := r.RunResult(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("identical sampled job not served from cache")
	}
	if second.Sampled == nil || *second.Sampled != *first.Sampled {
		t.Error("cached result lost or mutated its SampledInfo")
	}
	if second.Stats != first.Stats {
		t.Error("cached sampled stats differ")
	}
}

func TestSampledRunDeterministic(t *testing.T) {
	job := Job{Workload: "splay", Config: config.DLVP(), Instrs: 30_000,
		Sampling: &SamplingSpec{Intervals: 3}}
	run := func() Result {
		r := New(Options{Workers: 4}) // fresh engine: no caches in play
		res, _, err := r.RunResult(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Stats != b.Stats {
		t.Errorf("sampled stats differ across identical runs:\n a: %+v\n b: %+v", a.Stats, b.Stats)
	}
}

func TestSampledInvalidSpecRejected(t *testing.T) {
	r := New(Options{Workers: 1})
	job := testJob("perlbmk", testInstrs)
	job.Sampling = &SamplingSpec{Intervals: -1}
	if _, _, err := r.Run(context.Background(), job); err == nil {
		t.Fatal("invalid sampling spec accepted")
	}
	if got := r.Stats().JobsFailed; got != 1 {
		t.Errorf("failed count = %d, want 1", got)
	}
}

// TestSampledReconcilesWithFull is the CI reconciliation gate: for several
// workloads the sampled estimate must land near the monolithic
// measurement on the metrics the paper's evaluation reads — IPC, value
// prediction coverage, and accuracy. Tolerances are loose enough for
// sampling error on miniature kernels and tight enough that a unit bug
// (seq rebasing, warm-up leakage, stale committed memory) blows through
// them.
//
// The warm-up is explicit because the DLVP predictor needs ~10k
// committed instructions to train: at this miniature CI budget the
// stride/16 default (~3k) under-trains it and coverage reads low. At
// the acceptance-scale budgets sampling targets (10M+ instrs) the
// default warm-up is far past training and this correction is moot.
func TestSampledReconcilesWithFull(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-workload reconciliation is CI-sized")
	}
	const (
		instrs       = 400_000
		warmup       = 6_000
		ipcTolPct    = 8.0 // |IPC delta| as % of full-run IPC
		covTolPts    = 8.0 // coverage delta, absolute percentage points
		accTolPts    = 2.0 // accuracy delta, absolute percentage points
		sampledBelow = 0.5 // detailed instrs must stay below this fraction of the span
	)
	r := New(Options{Workers: 4})
	for _, wl := range []string{"perlbmk", "mcf", "splay", "fft", "omnetpp"} {
		t.Run(wl, func(t *testing.T) {
			full, _, err := r.Run(context.Background(), Job{Workload: wl, Config: config.DLVP(), Instrs: instrs})
			if err != nil {
				t.Fatal(err)
			}
			res, _, err := r.RunResult(context.Background(), Job{Workload: wl, Config: config.DLVP(), Instrs: instrs,
				Sampling: &SamplingSpec{Intervals: 8, WarmupInstrs: warmup}})
			if err != nil {
				t.Fatal(err)
			}
			sampled := res.Stats
			if frac := float64(res.Sampled.DetailedInstrs) / float64(res.Sampled.SpanInstrs); frac > sampledBelow {
				t.Errorf("detailed fraction %.2f > %.2f: not actually sampling", frac, sampledBelow)
			}
			if d := 100 * math.Abs(sampled.IPC()-full.IPC()) / full.IPC(); d > ipcTolPct {
				t.Errorf("IPC: sampled %.3f vs full %.3f (%.1f%% off, tol %.1f%%)", sampled.IPC(), full.IPC(), d, ipcTolPct)
			}
			if d := math.Abs(sampled.VP.Coverage() - full.VP.Coverage()); d > covTolPts {
				t.Errorf("coverage: sampled %.1f%% vs full %.1f%% (tol %.1f points)", sampled.VP.Coverage(), full.VP.Coverage(), covTolPts)
			}
			if d := math.Abs(sampled.VP.Accuracy() - full.VP.Accuracy()); d > accTolPts {
				t.Errorf("accuracy: sampled %.2f%% vs full %.2f%% (tol %.1f points)", sampled.VP.Accuracy(), full.VP.Accuracy(), accTolPts)
			}
		})
	}
}

// A monolithic run's trace-cache capture deposits checkpoints that a
// later sampled run of the same workload restores as exact hits.
func TestFullRunSeedsSampledCheckpoints(t *testing.T) {
	r := New(Options{Workers: 2})
	const instrs = 40_000
	if _, _, err := r.Run(context.Background(), Job{Workload: "fft", Config: config.Baseline(), Instrs: instrs}); err != nil {
		t.Fatal(err)
	}
	// The capture stride for small runs is DefaultCaptureStride (1M), so
	// nothing lands for a 40k run — this locks the graceful case: the
	// sampled run still works, building its own chain.
	res, _, err := r.RunResult(context.Background(), Job{Workload: "fft", Config: config.Baseline(), Instrs: instrs,
		Sampling: &SamplingSpec{Intervals: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampled == nil {
		t.Fatal("no sampled info")
	}
	var m metrics.RunStats
	if res.Stats == m {
		t.Error("empty sampled stats")
	}
}
