package runner

import (
	"context"
	"testing"
	"time"

	"dlvp/internal/config"
)

// BenchmarkSampledVsFull is the PR's perf gate, run once in CI
// bench-sanity (-benchtime 1x). It fails the run (b.Errorf) unless a
// sampled 10M-instruction job — 8 intervals, 100k-instruction measured
// windows with 25k warm-up (10% detailed fraction) — beats the
// monolithic detailed simulation of the same job by at least 5× of
// wall-clock, checkpoint chain construction included (every sampled
// timing starts from a cold store).
//
// The gate compares best-of timings and retries a few times before
// declaring a regression, so scheduler noise cannot flake CI; a genuine
// regression — detailed-core work leaking outside the sample windows,
// checkpoint chaining degrading to repeated from-zero emulation — fails
// every attempt.
func BenchmarkSampledVsFull(b *testing.B) {
	const (
		instrs     = 10_000_000
		minSpeedup = 5.0
		minOf      = 2
		attempts   = 3
		benchWrkld = "mcf"
	)
	full := Job{Workload: benchWrkld, Config: config.DLVP(), Instrs: instrs}
	sampled := full
	sampled.Sampling = &SamplingSpec{Intervals: 8, WarmupInstrs: 25_000, MeasuredInstrs: 100_000}

	run := func(job Job) time.Duration {
		b.Helper()
		// A fresh engine per timing: result cache off, cold checkpoint
		// store, so the sampled side always pays its chain build.
		eng := New(Options{Workers: 4, CacheEntries: -1})
		start := time.Now()
		res, _, err := eng.RunResult(context.Background(), job)
		if err != nil {
			b.Fatal(err)
		}
		d := time.Since(start)
		if res.Stats.Instructions == 0 || res.Stats.Cycles == 0 {
			b.Fatalf("implausible result for %+v: %+v", job.Sampling, res.Stats)
		}
		return d
	}
	bestOf := func(n int, job Job) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < n; i++ {
			if d := run(job); d < best {
				best = d
			}
		}
		return best
	}

	for i := 0; i < b.N; i++ {
		gate := false
		var fullBest, sampledBest time.Duration
		for a := 0; a < attempts && !gate; a++ {
			fullBest = bestOf(minOf, full)
			sampledBest = bestOf(minOf, sampled)
			gate = float64(fullBest) >= minSpeedup*float64(sampledBest)
		}
		speedup := float64(fullBest) / float64(sampledBest)
		if !gate {
			b.Errorf("sampled run only %.1fx faster than monolithic (%v vs %v), want >= %.0fx",
				speedup, sampledBest, fullBest, minSpeedup)
		} else {
			b.ReportMetric(speedup, "sampled-speedup")
		}
	}
}
