package uarch

import (
	"dlvp/internal/isa"
	"dlvp/internal/trace"
)

// executeStage retires functional-unit work: instructions whose completion
// time has arrived resolve branches (training the branch predictors and
// releasing a stalled front end), validate value predictions (flushing on a
// mismatch, per the paper's flush-based recovery), and train the address
// and value predictors — APT training happens "when the load executes"
// (Section 3.1.2).
//
// In-flight instructions live in the completion wheel, so each cycle drains
// only the bucket for this cycle rather than walking everything issued. The
// bucket's push order is issue order — the order side effects (predictor
// training, flush scheduling) happen in, part of the model's definition.
// Entries whose issue was undone (squash, selective replay) fail the stamp
// or flag checks and fall out here.
func (c *Core) executeStage() {
	w := &c.a.w
	bkt := &c.a.done[c.now&doneWheelMask]
	if len(*bkt) == 0 {
		return
	}
	ents := *bkt
	*bkt = ents[:0] // this cycle's pushes all target future buckets
	for i := 0; i < len(ents); i++ {
		seq := ents[i].seq
		if !c.live(seq) {
			continue
		}
		slot := seq & windowMask
		if w.issueCycle[slot] != ents[i].issuedAt {
			continue // a replayed instance re-issued; its new entry is elsewhere
		}
		f := w.flags[slot]
		if f&fIssued == 0 || f&fCompleted != 0 {
			continue
		}
		if w.execDone[slot] > c.now {
			// Only possible for a beyond-horizon completion that was
			// clamped at push; park it again.
			c.pushDone(seq, ents[i].issuedAt)
			continue
		}
		w.flags[slot] |= fCompleted

		rec := c.rec(seq)
		c.prfWrites += uint64(rec.NDst)
		switch {
		case rec.Op.IsBranch():
			if f&fTrained == 0 {
				c.resolveBranch(seq, rec)
			}
		case rec.IsLoad():
			if f&fTrained == 0 {
				c.trainAddressPredictors(seq, rec)
				c.trainVTAGE(seq, rec)
			}
			c.validatePrediction(seq, rec)
		default:
			if f&fTrained == 0 {
				c.trainVTAGE(seq, rec)
			}
			c.validatePrediction(seq, rec)
		}
		w.flags[slot] |= fTrained
	}
}

// pushDone parks an issued instruction in the completion wheel bucket for
// its execDone cycle. A completion beyond the horizon is clamped to the
// wheel's last bucket and re-parked when it pops early; a completion not in
// the future (possible only for the degenerate zero-latency case, since
// issue runs after execute in the cycle) is processed next cycle, exactly
// when the old in-flight walk would first have seen it.
func (c *Core) pushDone(seq, issuedAt uint64) {
	t := c.a.w.execDone[seq&windowMask]
	if t <= c.now {
		t = c.now + 1
	} else if t >= c.now+doneWheelSize {
		t = c.now + doneWheelSize - 1
	}
	c.a.done[t&doneWheelMask] = append(c.a.done[t&doneWheelMask], doneEnt{seq: seq, issuedAt: issuedAt})
}

// resolveBranch trains the direction/target predictors at resolution and,
// for a mispredicted branch, redirects the stalled front end and repairs
// the speculative global history.
func (c *Core) resolveBranch(seq uint64, rec *trace.Rec) {
	w := &c.a.w
	slot := seq & windowMask
	switch rec.Op.Class() {
	case isa.ClassBr:
		if rec.Op.IsCondBranch() {
			// Reuse the fetch-time lookup context: same (pc, hist), no re-hash.
			c.tage.UpdateLk(&c.cold(seq).tageLk, rec.PC, rec.Taken)
		}
	case isa.ClassJmp:
		c.ittage.Update(rec.PC, w.ghistBefore[slot], rec.Target)
	}
	if w.flags[slot]&fBrMispredict != 0 {
		c.stats.BranchFlushes++
		c.ghist.Restore(w.ghistAfter[slot])
		if c.fetchStallUntil > c.now+1 {
			c.fetchStallUntil = c.now + 1
		}
	}
}

// trainAddressPredictors updates PAP/CAP with the executed address. The
// paper always trains on execution — except for LSCD-blacklisted loads,
// which neither predict nor update so their entries age out.
func (c *Core) trainAddressPredictors(seq uint64, rec *trace.Rec) {
	w := &c.a.w
	slot := seq & windowMask
	f := w.flags[slot]
	if f&fLscdSkip != 0 {
		return
	}
	cd := c.cold(seq)
	if f&fPapLkValid != 0 {
		sizeLog2 := uint8(0)
		for b := int(rec.Bytes); b > 1; b >>= 1 {
			sizeLog2++
		}
		cd.papTrain = c.papPred.Train(cd.papLk, rec.Addr, sizeLog2, cd.l1Way)
		w.flags[slot] |= fPapTrainValid
	}
	if f&fCapLkValid != 0 {
		c.capPred.Train(cd.capLk, rec.PC, rec.Addr)
	}
}

// trainVTAGE updates VTAGE (and D-VTAGE) for every destination with the
// executed values.
func (c *Core) trainVTAGE(seq uint64, rec *trace.Rec) {
	cd := c.cold(seq)
	if c.vtPred != nil {
		for j := range cd.vtLks {
			c.vtPred.Train(cd.vtLks[j], rec.Op, rec.DestValue(j))
		}
	}
	if c.dvPred != nil {
		for j := range cd.dvLks {
			c.dvPred.Train(cd.dvLks[j], rec.DestValue(j))
		}
	}
}

// validatePrediction confirms an installed value prediction when the
// instruction executes. A mismatch triggers a pipeline flush after the
// 1-cycle check penalty. When the predicted *address* was correct but the
// value was not — the signature of an older in-flight store — the load's
// PC enters the LSCD so future instances are not predicted.
func (c *Core) validatePrediction(seq uint64, rec *trace.Rec) {
	w := &c.a.w
	slot := seq & windowMask
	if w.flags[slot]&fValidated != 0 {
		return // a replayed instruction validates only once
	}
	w.flags[slot] |= fValidated
	if c.chooser != nil {
		c.trainChooser(seq, rec)
	}
	cd := c.cold(seq)
	if w.flags[slot]&fVpMade != 0 {
		c.pvtCount -= cd.vpNumDests
		correct := true
		for j := 0; j < int(rec.NDst); j++ {
			if cd.vpPerDest[j] && cd.vpVals[j] != rec.DestValue(j) {
				correct = false
				break
			}
		}
		if !correct {
			if c.cfg.VP.SelectiveReplay {
				c.replayDependents(seq)
			} else {
				penalty := uint64(c.cfg.ValueCheckPenalty)
				c.scheduleFlush(flushReq{
					seq:       seq,
					refetchAt: seq + 1,
					resume:    c.now + penalty + 1,
					kind:      flushValue,
				})
			}
			c.maybeTrainLSCD(seq, rec)
		}
	} else if w.flags[slot]&fVpOracleDropped != 0 && cd.vpSource != 0 {
		// Oracle replay still observes the conflict for LSCD training.
		c.maybeTrainLSCD(seq, rec)
	}
}

// taint marks seq as a transitive dependent in the current replay pass.
func (c *Core) taint(seq uint64) {
	slot := seq & windowMask
	c.a.w.taintSeq[slot] = seq
	c.a.w.taintEp[slot] = c.replayEpoch
}

// tainted reports whether seq was marked in the current replay pass. The
// full seq is stored, so a committed producer whose slot was since reused
// never reads as tainted.
func (c *Core) tainted(seq uint64) bool {
	slot := seq & windowMask
	return c.a.w.taintEp[slot] == c.replayEpoch && c.a.w.taintSeq[slot] == seq
}

// replayDependents implements selective replay (the paper's Section 5.2.4
// future-work recovery): only the transitive register dependents of the
// mispredicted load re-execute. Tainted instructions that already issued
// return to the scheduler; they may re-issue once the check penalty has
// elapsed, now sourcing the load's architecturally correct value.
func (c *Core) replayDependents(loadSeq uint64) {
	c.stats.ValueReplays++
	c.eventWake = true // sleepers must recompute wakes against the new state
	w := &c.a.w
	notBefore := c.now + uint64(c.cfg.ValueCheckPenalty) + 1
	c.replayEpoch++
	c.taint(loadSeq)
	reissue := c.a.reissue[:0]
	for seq := loadSeq + 1; seq < c.fetchSeq; seq++ {
		if !c.live(seq) {
			continue
		}
		slot := seq & windowMask
		rec := c.rec(seq)
		dep := false
		for i := 0; i < int(rec.NSrc); i++ {
			if d := w.deps[slot][i]; d != 0 && c.tainted(d-1) {
				dep = true
				break
			}
		}
		if !dep {
			continue
		}
		c.taint(seq)
		if w.flags[slot]&fIssued == 0 {
			w.notBefore[slot] = notBefore
			continue
		}
		// Undo the issue; the instruction re-executes with correct inputs.
		w.flags[slot] &^= fIssued | fCompleted
		w.execDone[slot] = 0
		w.notBefore[slot] = notBefore
		if rec.IsStore() {
			c.insertPendingStore(seq)
		}
		reissue = append(reissue, seq)
	}
	c.a.reissue = reissue
	// Return the un-issued instructions to the scheduler (setting a slot's
	// iqBits bit re-enters it in age order). Their completion-wheel entries
	// are now stale and fall out at pop: fIssued is cleared, and a re-issue
	// stamps a new, later issueCycle.
	for _, s := range reissue {
		slot := s & windowMask
		c.a.iqBits[slot>>6] |= 1 << (slot & 63)
		c.iqCount++
	}
}

// insertPendingStore re-registers a store as unissued, keeping the slice
// sorted by sequence number.
func (c *Core) insertPendingStore(seq uint64) {
	ps := c.a.pendingStores
	for _, s := range ps {
		if s == seq {
			return
		}
	}
	ps = append(ps, seq)
	for i := len(ps) - 1; i > 0 && ps[i-1] > ps[i]; i-- {
		ps[i-1], ps[i] = ps[i], ps[i-1]
	}
	c.a.pendingStores = ps
}

// maybeTrainLSCD inserts the load into the LSCD when its address prediction
// was correct but the probed value was stale (in-flight store conflict).
func (c *Core) maybeTrainLSCD(seq uint64, rec *trace.Rec) {
	if c.lscd == nil {
		return
	}
	f := c.a.w.flags[seq&windowMask]
	cd := c.cold(seq)
	var predictedAddr uint64
	var have bool
	switch {
	case f&fPapLkValid != 0 && cd.papLk.Confident:
		predictedAddr, have = cd.papLk.Addr, true
	case f&fCapLkValid != 0 && cd.capLk.Confident:
		predictedAddr, have = cd.capLk.Addr, true
	}
	if have && predictedAddr == rec.Addr && f&fProbeHit != 0 {
		c.lscd.Insert(rec.PC)
	}
}

// trainChooser updates the tournament chooser with both components'
// outcomes when both produced a confident prediction for this load.
func (c *Core) trainChooser(seq uint64, rec *trace.Rec) {
	f := c.a.w.flags[seq&windowMask]
	cd := c.cold(seq)
	dlvpPredicted := f&fProbeDone != 0 && f&fProbeHit != 0
	vtagePredicted := f&fVtAny != 0
	if !dlvpPredicted || !vtagePredicted {
		return
	}
	nd := int(rec.NDst)
	dlvpCorrect := true
	for j := 0; j < nd; j++ {
		if cd.probeVals[j] != rec.DestValue(j) {
			dlvpCorrect = false
			break
		}
	}
	vtageCorrect := true
	for j := 0; j < nd; j++ {
		if cd.vtValid[j] && cd.vtVals[j] != rec.DestValue(j) {
			vtageCorrect = false
			break
		}
	}
	c.chooser.Train(rec.PC, dlvpCorrect, vtageCorrect)
}

// readLoadValues reconstructs, from the committed-memory image, the value
// each destination register of inst would receive if the load read memory
// at addr right now. This is the DLVP probe's data path.
func (c *Core) readLoadValues(inst *isa.Inst, addr uint64, out *[trace.MaxDests]uint64) {
	switch inst.Op {
	case isa.LDR, isa.LDAR:
		out[0] = c.cmem.Read(addr, 1<<inst.Size)
	case isa.LDRS:
		size := 1 << inst.Size
		v := c.cmem.Read(addr, size)
		if size < 8 {
			shift := uint(64 - 8*size)
			v = uint64(int64(v<<shift) >> shift)
		}
		out[0] = v
	case isa.LDRPOST:
		out[0] = c.cmem.Read(addr, 8)
		out[1] = addr + uint64(inst.Imm) // the base update is computable
	case isa.LDP, isa.VLD:
		out[0] = c.cmem.Read(addr, 8)
		out[1] = c.cmem.Read(addr+8, 8)
	case isa.LDM:
		for k := uint8(0); k < inst.NReg && int(k) < trace.MaxDests; k++ {
			out[k] = c.cmem.Read(addr+uint64(k)*8, 8)
		}
	}
}
