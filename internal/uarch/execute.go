package uarch

import (
	"dlvp/internal/isa"
	"dlvp/internal/trace"
)

// executeStage retires functional-unit work: instructions whose completion
// time has arrived resolve branches (training the branch predictors and
// releasing a stalled front end), validate value predictions (flushing on a
// mismatch, per the paper's flush-based recovery), and train the address
// and value predictors — APT training happens "when the load executes"
// (Section 3.1.2).
func (c *Core) executeStage() {
	for i := 0; i < len(c.inflight); i++ {
		seq := c.inflight[i]
		if !c.live(seq) {
			c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
			i--
			continue
		}
		e := c.ent(seq)
		if e.completed || e.execDone > c.now {
			continue
		}
		e.completed = true
		c.inflight = append(c.inflight[:i], c.inflight[i+1:]...)
		i--

		rec := &e.rec
		c.prfWrites += uint64(rec.NDst)
		switch {
		case rec.Op.IsBranch():
			if !e.trained {
				c.resolveBranch(e)
			}
		case rec.IsLoad():
			if !e.trained {
				c.trainAddressPredictors(e)
				c.trainVTAGE(e)
			}
			c.validatePrediction(e)
		default:
			if !e.trained {
				c.trainVTAGE(e)
			}
			c.validatePrediction(e)
		}
		e.trained = true
	}
}

// resolveBranch trains the direction/target predictors at resolution and,
// for a mispredicted branch, redirects the stalled front end and repairs
// the speculative global history.
func (c *Core) resolveBranch(e *entry) {
	rec := &e.rec
	switch rec.Op.Class() {
	case isa.ClassBr:
		if rec.Op.IsCondBranch() {
			c.tage.Update(rec.PC, e.ghistBefore, rec.Taken)
		}
	case isa.ClassJmp:
		c.ittage.Update(rec.PC, e.ghistBefore, rec.Target)
	}
	if e.brMispredict {
		c.stats.BranchFlushes++
		c.ghist.Restore(e.ghistAfter)
		if c.fetchStallUntil > c.now+1 {
			c.fetchStallUntil = c.now + 1
		}
	}
}

// trainAddressPredictors updates PAP/CAP with the executed address. The
// paper always trains on execution — except for LSCD-blacklisted loads,
// which neither predict nor update so their entries age out.
func (c *Core) trainAddressPredictors(e *entry) {
	if e.lscdSkip {
		return
	}
	rec := &e.rec
	if e.papLkValid {
		sizeLog2 := uint8(0)
		for b := int(rec.Bytes); b > 1; b >>= 1 {
			sizeLog2++
		}
		e.papTrain = c.papPred.Train(e.papLk, rec.Addr, sizeLog2, e.l1Way)
		e.papTrainValid = true
	}
	if e.capLkValid {
		c.capPred.Train(e.capLk, rec.PC, rec.Addr)
	}
}

// trainVTAGE updates VTAGE (and D-VTAGE) for every destination with the
// executed values.
func (c *Core) trainVTAGE(e *entry) {
	if c.vtPred != nil {
		for j := range e.vtLks {
			c.vtPred.Train(e.vtLks[j], e.rec.Op, e.rec.DestValue(j))
		}
	}
	if c.dvPred != nil {
		for j := range e.dvLks {
			c.dvPred.Train(e.dvLks[j], e.rec.DestValue(j))
		}
	}
}

// validatePrediction confirms an installed value prediction when the
// instruction executes. A mismatch triggers a pipeline flush after the
// 1-cycle check penalty. When the predicted *address* was correct but the
// value was not — the signature of an older in-flight store — the load's
// PC enters the LSCD so future instances are not predicted.
func (c *Core) validatePrediction(e *entry) {
	if e.validated {
		return // a replayed instruction validates only once
	}
	e.validated = true
	rec := &e.rec
	if c.chooser != nil {
		c.trainChooser(e)
	}
	if e.vpMade {
		c.pvtCount -= e.vpNumDests
		correct := true
		for j := 0; j < int(rec.NDst); j++ {
			if e.vpPerDest[j] && e.vpVals[j] != rec.DestValue(j) {
				correct = false
				break
			}
		}
		if !correct {
			if c.cfg.VP.SelectiveReplay {
				c.replayDependents(e)
			} else {
				penalty := uint64(c.cfg.ValueCheckPenalty)
				c.scheduleFlush(flushReq{
					seq:       rec.Seq,
					refetchAt: rec.Seq + 1,
					resume:    c.now + penalty + 1,
					kind:      flushValue,
				})
			}
			c.maybeTrainLSCD(e)
		}
	} else if e.vpOracleDropped && e.vpSource != 0 {
		// Oracle replay still observes the conflict for LSCD training.
		c.maybeTrainLSCD(e)
	}
}

// replayDependents implements selective replay (the paper's Section 5.2.4
// future-work recovery): only the transitive register dependents of the
// mispredicted load re-execute. Tainted instructions that already issued
// return to the scheduler; they may re-issue once the check penalty has
// elapsed, now sourcing the load's architecturally correct value.
func (c *Core) replayDependents(load *entry) {
	c.stats.ValueReplays++
	notBefore := c.now + uint64(c.cfg.ValueCheckPenalty) + 1
	tainted := map[uint64]bool{load.rec.Seq: true}
	var reissue []uint64
	for seq := load.rec.Seq + 1; seq < c.fetchSeq; seq++ {
		if !c.live(seq) {
			continue
		}
		e := c.ent(seq)
		dep := false
		for i := 0; i < int(e.rec.NSrc); i++ {
			if d := e.deps[i]; d != 0 && tainted[d-1] {
				dep = true
				break
			}
		}
		if !dep {
			continue
		}
		tainted[seq] = true
		if !e.issued {
			e.notBefore = notBefore
			continue
		}
		// Undo the issue; the instruction re-executes with correct inputs.
		e.issued = false
		e.completed = false
		e.execDone = 0
		e.notBefore = notBefore
		if e.rec.IsStore() {
			c.insertPendingStore(seq)
		}
		reissue = append(reissue, seq)
	}
	if len(reissue) == 0 {
		return
	}
	// Remove replayed entries from the in-flight list and return them to
	// the scheduler in age order.
	kept := c.inflight[:0]
	for _, s := range c.inflight {
		if !tainted[s] || c.ent(s).issued {
			kept = append(kept, s)
		}
	}
	c.inflight = kept
	c.iq = mergeSorted(c.iq, reissue)
}

// insertPendingStore re-registers a store as unissued, keeping the slice
// sorted by sequence number.
func (c *Core) insertPendingStore(seq uint64) {
	for _, s := range c.pendingStores {
		if s == seq {
			return
		}
	}
	c.pendingStores = append(c.pendingStores, seq)
	for i := len(c.pendingStores) - 1; i > 0 && c.pendingStores[i-1] > c.pendingStores[i]; i-- {
		c.pendingStores[i-1], c.pendingStores[i] = c.pendingStores[i], c.pendingStores[i-1]
	}
}

// mergeSorted merges two ascending sequence slices into one.
func mergeSorted(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// maybeTrainLSCD inserts the load into the LSCD when its address prediction
// was correct but the probed value was stale (in-flight store conflict).
func (c *Core) maybeTrainLSCD(e *entry) {
	if c.lscd == nil {
		return
	}
	var predictedAddr uint64
	var have bool
	switch {
	case e.papLkValid && e.papLk.Confident:
		predictedAddr, have = e.papLk.Addr, true
	case e.capLkValid && e.capLk.Confident:
		predictedAddr, have = e.capLk.Addr, true
	}
	if have && predictedAddr == e.rec.Addr && e.probeHit {
		c.lscd.Insert(e.rec.PC)
	}
}

// trainChooser updates the tournament chooser with both components'
// outcomes when both produced a confident prediction for this load.
func (c *Core) trainChooser(e *entry) {
	rec := &e.rec
	dlvpPredicted := e.probeDone && e.probeHit
	vtagePredicted := e.vtAny
	if !dlvpPredicted || !vtagePredicted {
		return
	}
	nd := int(rec.NDst)
	dlvpCorrect := true
	for j := 0; j < nd; j++ {
		if e.probeVals[j] != rec.DestValue(j) {
			dlvpCorrect = false
			break
		}
	}
	vtageCorrect := true
	for j := 0; j < nd; j++ {
		if e.vtValid[j] && e.vtVals[j] != rec.DestValue(j) {
			vtageCorrect = false
			break
		}
	}
	c.chooser.Train(rec.PC, dlvpCorrect, vtageCorrect)
}

// readLoadValues reconstructs, from the committed-memory image, the value
// each destination register of inst would receive if the load read memory
// at addr right now. This is the DLVP probe's data path.
func (c *Core) readLoadValues(inst *isa.Inst, addr uint64, out *[trace.MaxDests]uint64) {
	switch inst.Op {
	case isa.LDR, isa.LDAR:
		out[0] = c.cmem.Read(addr, 1<<inst.Size)
	case isa.LDRS:
		size := 1 << inst.Size
		v := c.cmem.Read(addr, size)
		if size < 8 {
			shift := uint(64 - 8*size)
			v = uint64(int64(v<<shift) >> shift)
		}
		out[0] = v
	case isa.LDRPOST:
		out[0] = c.cmem.Read(addr, 8)
		out[1] = addr + uint64(inst.Imm) // the base update is computable
	case isa.LDP, isa.VLD:
		out[0] = c.cmem.Read(addr, 8)
		out[1] = c.cmem.Read(addr+8, 8)
	case isa.LDM:
		for k := uint8(0); k < inst.NReg && int(k) < trace.MaxDests; k++ {
			out[k] = c.cmem.Read(addr+uint64(k)*8, 8)
		}
	}
}
