package uarch

import (
	"dlvp/internal/config"
	"dlvp/internal/isa"
	"dlvp/internal/predictor/tournament"
	"dlvp/internal/trace"
)

// commitStage retires up to CommitWidth completed instructions per cycle in
// program order. Stores write the committed-memory image and the data cache
// here (through the store buffer); value-prediction coverage and accuracy
// are accounted on the committed path only, matching how the paper counts
// dynamic loads.
func (c *Core) commitStage() {
	w := &c.a.w
	for n := 0; n < c.cfg.CommitWidth; n++ {
		if c.headSeq >= c.fetchSeq {
			return
		}
		seq := c.headSeq
		slot := seq & windowMask
		f := w.flags[slot]
		if f&fValid == 0 {
			return
		}
		if f&fRenamed == 0 || f&fCompleted == 0 || w.execDone[slot] > c.now {
			return
		}
		rec := c.rec(seq)

		c.captureStageTrace(seq)
		c.stats.Instructions++
		switch {
		case rec.IsLoad():
			c.stats.Loads++
			c.a.ldqIdx.popFront()
		case rec.IsStore():
			c.stats.Stores++
			c.a.stqIdx.popFront()
			c.commitStore(rec)
		}
		c.accountPrediction(seq)

		// Architectural history state advances with the committed stream.
		c.committedGhist = w.ghistAfter[slot]
		c.committedLphist = w.lphistAfter[slot]
		if f&fHasRasAfter != 0 {
			c.rasBase = c.cold(seq).rasAfter
		}

		c.freeRegs += int(rec.NDst)
		c.robCount--
		if rec.IsLoad() {
			c.ldqCount--
		}
		if rec.IsStore() {
			c.stqCount--
		}
		w.flags[slot] &^= fValid
		c.headSeq++
		// Sample-window countdown, after this instruction's stats landed
		// so a boundary snapshot includes the just-committed instruction.
		// One compare per commit when no window is armed.
		if c.wmArmed && !c.mdDone {
			c.wmTick()
		}
		// Flight-recorder tick, after this instruction's stats landed so a
		// boundary snapshot includes it. One nil check when sampling is off.
		if c.tl != nil {
			c.tlTick()
		}
	}
}

// commitStore applies a committing store to the committed-memory image (the
// state DLVP probes observe) and to the cache hierarchy.
func (c *Core) commitStore(rec *trace.Rec) {
	switch rec.Op {
	case isa.STP:
		c.cmem.Write(rec.Addr, rec.Vals[0], 8)
		c.cmem.Write(rec.Addr+8, rec.Vals[1], 8)
	default: // STR, STRPOST, STLR
		c.cmem.Write(rec.Addr, rec.Vals[0], int(rec.Bytes))
	}
	c.hier.Store(c.now, rec.Addr)
}

// accountPrediction tallies coverage/accuracy at commit.
func (c *Core) accountPrediction(seq uint64) {
	rec := c.rec(seq)
	if !c.eligibleForStats(rec.Op, int(rec.NDst)) {
		return
	}
	f := c.a.w.flags[seq&windowMask]
	cd := c.cold(seq)
	predicted := f&(fVpMade|fVpOracleDropped) != 0
	correct := false
	if f&fVpMade != 0 {
		correct = true
		for j := 0; j < int(rec.NDst); j++ {
			if cd.vpPerDest[j] && cd.vpVals[j] != rec.DestValue(j) {
				correct = false
				break
			}
		}
	}
	c.stats.VP.Record(predicted, correct)
	// Site attribution rides the same outcome so per-site sums reconcile
	// with the aggregate exactly. One nil check when profiling is off.
	if c.sp != nil {
		c.spRecord(seq, predicted, correct)
	}
	if f&fVpMade != 0 {
		switch cd.vpSource {
		case tournament.SideDLVP:
			c.stats.TournamentDLVP++
		case tournament.SideVTAGE:
			c.stats.TournamentVTAGE++
		}
	}
}

// eligibleForStats defines the coverage denominator: dynamic loads for the
// address-prediction schemes and loads-only VTAGE; every value-producing
// instruction for all-instructions VTAGE.
func (c *Core) eligibleForStats(op isa.Op, nDests int) bool {
	if (c.cfg.VP.Scheme == config.VPVTAGE && !c.cfg.VP.VTAGE.LoadsOnly) ||
		(c.cfg.VP.Scheme == config.VPDVTAGE && !c.cfg.VP.DVTAGE.LoadsOnly) {
		return nDests > 0 && !op.IsStore() && !op.IsOrdered() &&
			(!op.IsBranch() || op == isa.BL)
	}
	return op.IsLoad()
}
