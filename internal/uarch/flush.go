package uarch

// scheduleFlush records a squash request; when several trigger in one cycle
// the oldest wins (it supersedes any younger squash).
func (c *Core) scheduleFlush(req flushReq) {
	if !c.flushPending || req.refetchAt < c.pendingFlush.refetchAt {
		c.pendingFlush = req
		c.flushPending = true
	}
}

// applyFlush performs the squash at the end of the cycle: it invalidates
// every instruction younger than the flush point, rewinds the fetch and
// rename cursors, rebuilds occupancy and the register writer map from the
// survivors, and restores the speculative state — global branch history,
// load-path history (PAP's single-register restore, Section 2.2), the RAS,
// and the PAQ.
func (c *Core) applyFlush() {
	if !c.flushPending {
		return
	}
	req := c.pendingFlush
	c.flushPending = false
	switch req.kind {
	case flushBranch:
		c.stats.BranchFlushes++
	case flushValue:
		c.stats.ValueFlushes++
	case flushOrder:
		c.stats.OrderFlushes++
	}

	w := &c.a.w
	refetch := req.refetchAt
	if refetch < c.headSeq {
		refetch = c.headSeq
	}
	for seq := refetch; seq < c.fetchSeq; seq++ {
		w.flags[seq&windowMask] &^= fValid
	}
	c.fetchSeq = refetch
	if c.renameSeq > refetch {
		c.renameSeq = refetch
	}
	if c.haltSeen && c.haltSeq >= refetch {
		c.haltSeen = false
	}
	c.a.ldqIdx.truncateFrom(refetch)
	c.a.stqIdx.truncateFrom(refetch)

	// Rebuild occupancy, scheduler contents, and the writer map from the
	// surviving window. The completion wheel is rebuilt too, in sequence
	// order, which is the order the old in-flight list rebuild produced.
	c.frontCount, c.robCount, c.ldqCount, c.stqCount, c.pvtCount = 0, 0, 0, 0, 0
	used := 0
	c.a.iqBits = [windowWords]uint64{}
	c.iqCount = 0
	for i := range c.a.done {
		c.a.done[i] = c.a.done[i][:0]
	}
	c.a.pendingStores = c.a.pendingStores[:0]
	for r := range c.lastWriter {
		c.lastWriter[r] = 0
	}
	stallForBranch := false
	for seq := c.headSeq; seq < c.fetchSeq; seq++ {
		slot := seq & windowMask
		f := w.flags[slot]
		if f&fValid == 0 {
			continue
		}
		rec := c.rec(seq)
		if f&fRenamed != 0 {
			c.robCount++
			used += int(rec.NDst)
			if rec.IsLoad() {
				c.ldqCount++
			}
			if rec.IsStore() {
				c.stqCount++
			}
			if f&fIssued == 0 {
				c.a.iqBits[slot>>6] |= 1 << (slot & 63)
				c.iqCount++
			} else if f&fCompleted == 0 {
				c.pushDone(seq, w.issueCycle[slot])
			}
			if f&fVpMade != 0 && f&fCompleted == 0 {
				c.pvtCount += c.cold(seq).vpNumDests
			}
		} else {
			c.frontCount++
		}
		if rec.IsStore() && f&fIssued == 0 {
			c.a.pendingStores = append(c.a.pendingStores, seq)
		}
		for j := 0; j < int(rec.NDst); j++ {
			c.lastWriter[rec.Dst[j]] = seq + 1
		}
		if f&fBrMispredict != 0 && f&fCompleted == 0 {
			stallForBranch = true
		}
	}
	c.freeRegs = c.cfg.PhysRegs - 64 - used

	// Speculative history restoration.
	if req.seq >= c.headSeq && c.live(req.seq) {
		slot := req.seq & windowMask
		c.ghist.Restore(w.ghistAfter[slot])
		if c.papPred != nil {
			c.papPred.RestoreHistory(w.lphistAfter[slot])
		}
	} else {
		c.ghist.Restore(c.committedGhist)
		if c.papPred != nil {
			c.papPred.RestoreHistory(c.committedLphist)
		}
	}

	// RAS: youngest surviving call/return snapshot, else the committed base.
	restored := false
	for seq := c.fetchSeq; seq > c.headSeq; {
		seq--
		f := w.flags[seq&windowMask]
		if f&fValid != 0 && f&fHasRasAfter != 0 {
			c.ras.Restore(c.cold(seq).rasAfter)
			restored = true
			break
		}
	}
	if !restored {
		c.ras.Restore(c.rasBase)
	}

	// Squashed PAQ entries: compact the ring in place, preserving order.
	n := c.paqLen()
	kept := 0
	for i := 0; i < n; i++ {
		pe := *c.paqAt(i)
		if pe.seq < refetch {
			*c.paqAt(kept) = pe
			kept++
		}
	}
	c.paqTail = c.paqHead + uint32(kept)

	c.fetchStallUntil = req.resume
	if stallForBranch {
		c.fetchStallUntil = ^uint64(0) >> 1
	}
	c.eventWake = true // survivors' sleep state is stale; re-examine everyone
}
