package uarch

// scheduleFlush records a squash request; when several trigger in one cycle
// the oldest wins (it supersedes any younger squash).
func (c *Core) scheduleFlush(req flushReq) {
	if c.pendingFlush == nil || req.refetchAt < c.pendingFlush.refetchAt {
		r := req
		c.pendingFlush = &r
	}
}

// applyFlush performs the squash at the end of the cycle: it invalidates
// every instruction younger than the flush point, rewinds the fetch and
// rename cursors, rebuilds occupancy and the register writer map from the
// survivors, and restores the speculative state — global branch history,
// load-path history (PAP's single-register restore, Section 2.2), the RAS,
// and the PAQ.
func (c *Core) applyFlush() {
	req := c.pendingFlush
	if req == nil {
		return
	}
	c.pendingFlush = nil
	switch req.kind {
	case flushBranch:
		c.stats.BranchFlushes++
	case flushValue:
		c.stats.ValueFlushes++
	case flushOrder:
		c.stats.OrderFlushes++
	}

	refetch := req.refetchAt
	if refetch < c.headSeq {
		refetch = c.headSeq
	}
	for seq := refetch; seq < c.fetchSeq; seq++ {
		c.ent(seq).valid = false
	}
	c.fetchSeq = refetch
	if c.renameSeq > refetch {
		c.renameSeq = refetch
	}
	if c.haltSeen && c.haltSeq >= refetch {
		c.haltSeen = false
	}

	// Rebuild occupancy, scheduler contents, and the writer map from the
	// surviving window.
	c.frontCount, c.robCount, c.ldqCount, c.stqCount, c.pvtCount = 0, 0, 0, 0, 0
	used := 0
	c.iq = c.iq[:0]
	c.inflight = c.inflight[:0]
	c.pendingStores = c.pendingStores[:0]
	for r := range c.lastWriter {
		c.lastWriter[r] = 0
	}
	stallForBranch := false
	for seq := c.headSeq; seq < c.fetchSeq; seq++ {
		e := c.ent(seq)
		if !e.valid {
			continue
		}
		rec := &e.rec
		if e.renamed {
			c.robCount++
			used += int(rec.NDst)
			if rec.IsLoad() {
				c.ldqCount++
			}
			if rec.IsStore() {
				c.stqCount++
			}
			if !e.issued {
				c.iq = append(c.iq, seq)
			} else if !e.completed {
				c.inflight = append(c.inflight, seq)
			}
			if e.vpMade && !e.completed {
				c.pvtCount += e.vpNumDests
			}
		} else {
			c.frontCount++
		}
		if rec.IsStore() && !e.issued {
			c.pendingStores = append(c.pendingStores, seq)
		}
		for j := 0; j < int(rec.NDst); j++ {
			c.lastWriter[rec.Dst[j]] = seq + 1
		}
		if e.brMispredict && !e.completed {
			stallForBranch = true
		}
	}
	c.freeRegs = c.cfg.PhysRegs - 64 - used

	// Speculative history restoration.
	if req.seq >= c.headSeq && c.live(req.seq) {
		e := c.ent(req.seq)
		c.ghist.Restore(e.ghistAfter)
		if c.papPred != nil {
			c.papPred.RestoreHistory(e.lphistAfter)
		}
	} else {
		c.ghist.Restore(c.committedGhist)
		if c.papPred != nil {
			c.papPred.RestoreHistory(c.committedLphist)
		}
	}

	// RAS: youngest surviving call/return snapshot, else the committed base.
	restored := false
	for seq := c.fetchSeq; seq > c.headSeq; {
		seq--
		e := c.ent(seq)
		if e.valid && e.hasRasAfter {
			c.ras.Restore(e.rasAfter)
			restored = true
			break
		}
	}
	if !restored {
		c.ras.Restore(c.rasBase)
	}

	// Squashed PAQ entries.
	kept := c.paq[:0]
	for _, pe := range c.paq {
		if pe.seq < refetch {
			kept = append(kept, pe)
		}
	}
	c.paq = kept

	c.fetchStallUntil = req.resume
	if stallForBranch {
		c.fetchStallUntil = ^uint64(0) >> 1
	}
}
