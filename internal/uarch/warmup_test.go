package uarch

import (
	"testing"

	"dlvp/internal/config"
	tline "dlvp/internal/timeline"
	"dlvp/internal/workloads"
)

func sampleCore(t *testing.T, instrs, warmup, measured uint64) (*Core, tline.Counters, bool) {
	t.Helper()
	w, ok := workloads.ByName("perlbmk")
	if !ok {
		t.Fatal("perlbmk missing from registry")
	}
	c := New(config.DLVP(), w.Build(), w.Reader(instrs))
	c.SetSampleWindow(warmup, measured)
	c.Run(0)
	meas, complete := c.MeasuredCounters()
	return c, meas, complete
}

// With no warm-up and an unbounded window, MeasuredCounters is the
// whole run.
func TestMeasuredCountersWithoutWarmup(t *testing.T) {
	c, meas, complete := sampleCore(t, 10_000, 0, 0)
	if !complete {
		t.Fatal("zero warm-up must report complete")
	}
	s := c.Stats()
	if meas.Instructions != s.Instructions || meas.Cycles != s.Cycles || meas.Loads != s.Loads {
		t.Errorf("measured (%d instrs, %d cycles, %d loads) != stats (%d, %d, %d)",
			meas.Instructions, meas.Cycles, meas.Loads, s.Instructions, s.Cycles, s.Loads)
	}
}

// A warm-up region is excluded from the measured delta exactly: its
// committed instructions disappear from the denominator, and the split
// is sum-preserving against the cumulative totals.
func TestWarmupExcludedFromMeasurement(t *testing.T) {
	const instrs, warmup = 10_000, 4_000
	c, meas, complete := sampleCore(t, instrs, warmup, 0)
	if !complete {
		t.Fatal("run ended inside the warm-up region")
	}
	s := c.Stats()
	if s.Instructions != instrs {
		t.Fatalf("committed %d, want %d", s.Instructions, instrs)
	}
	if meas.Instructions != instrs-warmup {
		t.Errorf("measured instructions = %d, want %d", meas.Instructions, instrs-warmup)
	}
	if meas.Cycles == 0 || meas.Cycles >= s.Cycles {
		t.Errorf("measured cycles = %d, want in (0, %d)", meas.Cycles, s.Cycles)
	}
	if meas.Loads >= s.Loads {
		t.Errorf("measured loads = %d, want < total %d", meas.Loads, s.Loads)
	}
	if meas.VPEligible > meas.Instructions {
		t.Errorf("eligible %d exceeds measured instructions %d", meas.VPEligible, meas.Instructions)
	}
}

// A bounded window closes at its Nth commit and stops the core: the
// measured region has exactly the requested length, and the
// end-of-stream pipeline drain is excluded (the core never reaches it).
func TestBoundedWindowStopsAtClosingCommit(t *testing.T) {
	const instrs, warmup, measured = 20_000, 2_000, 3_000
	c, meas, complete := sampleCore(t, instrs, warmup, measured)
	if !complete {
		t.Fatal("window did not complete")
	}
	if meas.Instructions != measured {
		t.Errorf("measured instructions = %d, want exactly %d", meas.Instructions, measured)
	}
	// The core stopped at the closing commit, far short of the stream:
	// at CommitWidth per cycle at most a few extra commits land in the
	// closing cycle, never thousands.
	s := c.Stats()
	if s.Instructions >= instrs {
		t.Errorf("core committed the whole %d-instruction stream; the bounded window did not stop it", instrs)
	}
	if s.Instructions < warmup+measured {
		t.Errorf("core committed %d, want >= warmup+measured = %d", s.Instructions, warmup+measured)
	}
	if slack := s.Instructions - (warmup + measured); slack > uint64(c.cfg.CommitWidth) {
		t.Errorf("%d commits past the window close, want <= the commit width %d", slack, c.cfg.CommitWidth)
	}
}

// A window that ends mid-measurement (stream shorter than
// warmup+measured) must be reported incomplete, not as a short sample.
func TestIncompleteWindowReported(t *testing.T) {
	if _, meas, complete := sampleCore(t, 1_000, 5_000, 0); complete || meas != (tline.Counters{}) {
		t.Errorf("run shorter than warm-up: complete=%v meas=%+v, want false/zero", complete, meas)
	}
	if _, meas, complete := sampleCore(t, 3_000, 1_000, 5_000); complete || meas != (tline.Counters{}) {
		t.Errorf("stream shorter than the measured region: complete=%v meas=%+v, want false/zero", complete, meas)
	}
}

// Sample windows compose with the flight recorder: both consume the
// commit stream without disturbing each other.
func TestWarmupComposesWithTimeline(t *testing.T) {
	w, ok := workloads.ByName("perlbmk")
	if !ok {
		t.Fatal("perlbmk missing from registry")
	}
	const instrs, warmup = 8_000, 2_000
	c := New(config.DLVP(), w.Build(), w.Reader(instrs))
	c.EnableTimeline(1_000, 16)
	c.SetSampleWindow(warmup, 0)
	s := c.Run(0)
	meas, complete := c.MeasuredCounters()
	if !complete {
		t.Fatal("window incomplete")
	}
	if meas.Instructions != instrs-warmup {
		t.Errorf("measured instructions = %d, want %d", meas.Instructions, instrs-warmup)
	}
	tl := c.Timeline()
	if tl == nil {
		t.Fatal("timeline lost")
	}
	if got := tl.Totals().Instructions; got != s.Instructions {
		t.Errorf("timeline totals %d != stats %d", got, s.Instructions)
	}
}
