package uarch

import (
	"reflect"
	"testing"

	"dlvp/internal/config"
	"dlvp/internal/trace"
	"dlvp/internal/workloads"
)

// streamOnly hides SliceReader's RandomAccess methods, forcing the core
// onto the staging-ring path.
type streamOnly struct{ r *trace.SliceReader }

func (s streamOnly) Next(rec *trace.Rec) bool { return s.r.Next(rec) }

// TestRandomAccessReplayMatchesStreaming locks the zero-copy replay path
// to the streaming path: the same trace through the same configuration
// must produce identical RunStats either way, for every scheme.
func TestRandomAccessReplayMatchesStreaming(t *testing.T) {
	w, ok := workloads.ByName("perlbmk")
	if !ok {
		t.Fatal("perlbmk not registered")
	}
	const instrs = 30_000
	recs := trace.Collect(w.Reader(instrs), 0)
	for _, tc := range []struct {
		name string
		cfg  config.Core
	}{
		{"baseline", config.Baseline()},
		{"dlvp", config.DLVP()},
		{"vtage", config.VTAGE()},
		{"tournament", config.Tournament()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog := w.Build()
			streamed := NewAt(tc.cfg, prog, streamOnly{&trace.SliceReader{Recs: recs}}, nil).Run(0)
			random := NewAt(tc.cfg, prog, &trace.SliceReader{Recs: recs}, nil).Run(0)
			if !reflect.DeepEqual(streamed, random) {
				t.Errorf("random-access replay diverged from streaming replay:\nstream: %+v\nrandom: %+v", streamed, random)
			}
		})
	}
}
