package uarch

import (
	"testing"

	"dlvp/internal/config"
	"dlvp/internal/isa"
	"dlvp/internal/program"
)

// genProgram builds a pseudo-random but valid program: straight-line blocks
// of ALU and memory operations over a private buffer, stitched with a
// couple of loop levels and data-dependent branches, terminated by HALT.
// Every generated program is architecturally deterministic, so it checks
// the timing model's core invariant: scheme choice never changes committed
// state or instruction count.
func genProgram(seed uint64) *program.Program {
	b := program.NewBuilder("fuzz")
	const bufWords = 64
	base := b.AllocWords("buf", func() []uint64 {
		w := make([]uint64, bufWords)
		s := seed
		for i := range w {
			s = s*6364136223846793005 + 1442695040888963407
			w[i] = s >> 16
		}
		return w
	}())

	s := seed
	next := func(n uint64) uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return (s >> 33) % n
	}
	// x1 = buffer base, x2..x9 scratch, x26 outer counter.
	b.MovImm(1, base)
	b.MovImm(26, 40) // outer iterations
	b.Label("outer")
	blocks := 3 + int(next(4))
	for blk := 0; blk < blocks; blk++ {
		ops := 4 + int(next(8))
		for i := 0; i < ops; i++ {
			rd := isa.Reg(2 + next(8))
			rn := isa.Reg(2 + next(8))
			rm := isa.Reg(2 + next(8))
			off := int64(next(bufWords)) * 8
			switch next(6) {
			case 0:
				b.Op3(isa.ADD, rd, rn, rm)
			case 1:
				b.Op3(isa.EOR, rd, rn, rm)
			case 2:
				b.Op3(isa.MUL, rd, rn, rm)
			case 3:
				b.Ldr(rd, 1, off, 3)
			case 4:
				b.Str(rn, 1, off, 3)
			case 5:
				b.OpImm(isa.ANDI, rd, rn, 0xffff)
			}
		}
		// A data-dependent forward skip.
		lbl := "skip_" + string(rune('a'+blk))
		b.OpImm(isa.ANDI, 10, isa.Reg(2+next(8)), 3)
		b.Cbnz(10, lbl)
		b.AddI(11, 11, 1)
		b.Label(lbl)
	}
	b.SubI(26, 26, 1)
	b.Cbnz(26, "outer")
	b.Halt()
	return b.Build()
}

// TestRandomProgramsSchemeInvariance: for a set of random programs, every
// scheme commits the identical instruction stream (same count; architecture
// is untouched by speculation), and rerunning is deterministic.
func TestRandomProgramsSchemeInvariance(t *testing.T) {
	schemes := []config.Core{
		config.Baseline(), config.DLVP(), config.CAPDLVP(),
		config.VTAGE(), config.Tournament(),
	}
	for seed := uint64(1); seed <= 8; seed++ {
		p := genProgram(seed)
		var want uint64
		for si, cfg := range schemes {
			s := runProgram(t, p, cfg, 100_000)
			if si == 0 {
				want = s.Instructions
				if want == 0 {
					t.Fatalf("seed %d: nothing committed", seed)
				}
				continue
			}
			if s.Instructions != want {
				t.Fatalf("seed %d scheme %d: committed %d, baseline %d",
					seed, si, s.Instructions, want)
			}
		}
	}
}

// TestRandomProgramsSmallROB: the same invariance must hold under severe
// resource pressure (flush/recovery paths get exercised much harder).
func TestRandomProgramsSmallROB(t *testing.T) {
	small := config.DLVP()
	small.ROBSize = 20
	small.IQSize = 8
	small.LDQSize = 6
	small.STQSize = 6
	for seed := uint64(20); seed <= 24; seed++ {
		p := genProgram(seed)
		a := runProgram(t, p, config.DLVP(), 60_000)
		b := runProgram(t, p, small, 60_000)
		if a.Instructions != b.Instructions {
			t.Fatalf("seed %d: big %d vs small %d instructions",
				seed, a.Instructions, b.Instructions)
		}
		if b.Cycles < a.Cycles {
			t.Errorf("seed %d: resource-starved core faster (%d < %d cycles)",
				seed, b.Cycles, a.Cycles)
		}
	}
}

// TestCyclesMonotoneInBudget: simulating a longer prefix takes at least as
// many cycles.
func TestCyclesMonotoneInBudget(t *testing.T) {
	w := "perlbmk"
	a := runWorkload(t, w, config.DLVP(), 10_000)
	b := runWorkload(t, w, config.DLVP(), 30_000)
	if b.Cycles <= a.Cycles {
		t.Errorf("30k-instr run (%d cycles) not longer than 10k (%d)", b.Cycles, a.Cycles)
	}
}
