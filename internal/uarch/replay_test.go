package uarch

import (
	"testing"

	"dlvp/internal/config"
	"dlvp/internal/metrics"
)

func selectiveReplayCfg() config.Core {
	c := config.DLVP()
	c.VP.SelectiveReplay = true
	return c
}

func TestSelectiveReplayNoValueFlushes(t *testing.T) {
	// gap is the in-flight-conflict kernel: with flush recovery it takes a
	// handful of value flushes before the LSCD settles; with selective
	// replay those become replays.
	s := runWorkload(t, "gap", selectiveReplayCfg(), 40_000)
	if s.ValueFlushes != 0 {
		t.Errorf("selective replay must not flush on value mispredictions, got %d", s.ValueFlushes)
	}
	if s.ValueReplays == 0 {
		t.Error("no replays recorded on a conflict-heavy workload")
	}
}

func TestSelectiveReplayArchitecturallyInvisible(t *testing.T) {
	for _, wl := range []string{"gap", "perlbmk", "v8crypto"} {
		a := runWorkload(t, wl, config.DLVP(), 25_000)
		b := runWorkload(t, wl, selectiveReplayCfg(), 25_000)
		if a.Instructions != b.Instructions {
			t.Fatalf("%s: replay committed %d, flush %d", wl, b.Instructions, a.Instructions)
		}
	}
}

func TestSelectiveReplayNotSlowerThanFlush(t *testing.T) {
	// Replay re-executes only dependents, so on mispredict-prone workloads
	// it should recover at least as fast as a full flush (the paper's
	// motivation for the future-work mechanism).
	for _, wl := range []string{"gap", "perlbmk"} {
		base := runWorkload(t, wl, config.Baseline(), 40_000)
		flush := runWorkload(t, wl, config.DLVP(), 40_000)
		replay := runWorkload(t, wl, selectiveReplayCfg(), 40_000)
		fs := metrics.SpeedupPct(base, flush)
		rs := metrics.SpeedupPct(base, replay)
		if rs < fs-1.0 {
			t.Errorf("%s: selective replay %.2f%% clearly worse than flush %.2f%%", wl, rs, fs)
		}
	}
}

func TestSelectiveReplayDeterministic(t *testing.T) {
	a := runWorkload(t, "perlbmk", selectiveReplayCfg(), 20_000)
	b := runWorkload(t, "perlbmk", selectiveReplayCfg(), 20_000)
	if a.Cycles != b.Cycles || a.ValueReplays != b.ValueReplays {
		t.Errorf("nondeterministic replay: %d/%d cycles, %d/%d replays",
			a.Cycles, b.Cycles, a.ValueReplays, b.ValueReplays)
	}
}

func TestOracleStillWinsOverSelectiveReplay(t *testing.T) {
	// The oracle never even wakes consumers with wrong values, so it is an
	// upper bound on any replay implementation.
	oracle := config.DLVP()
	oracle.VP.OracleReplay = true
	for _, wl := range []string{"gap"} {
		base := runWorkload(t, wl, config.Baseline(), 40_000)
		or := runWorkload(t, wl, oracle, 40_000)
		re := runWorkload(t, wl, selectiveReplayCfg(), 40_000)
		if metrics.SpeedupPct(base, re) > metrics.SpeedupPct(base, or)+1.0 {
			t.Errorf("%s: real replay (%.2f%%) beats the oracle (%.2f%%)?", wl,
				metrics.SpeedupPct(base, re), metrics.SpeedupPct(base, or))
		}
	}
}

func TestStageTraceCapture(t *testing.T) {
	w := mustWorkload(t, "perlbmk")
	c := New(config.DLVP(), w.Build(), w.Reader(30_000))
	c.EnableStageTrace(10_000, 12)
	c.Run(0)
	traces := c.StageTraces()
	if len(traces) != 12 {
		t.Fatalf("captured %d traces, want 12", len(traces))
	}
	for i, s := range traces {
		if !(s.Fetch <= s.Rename && s.Rename <= s.Issue &&
			s.Issue < s.Complete && s.Complete <= s.Commit) {
			t.Errorf("trace %d: stage order violated: %+v", i, s)
		}
		if i > 0 && s.Commit < traces[i-1].Commit {
			t.Errorf("commit order violated at %d", i)
		}
	}
	out := FormatStageTraces(traces)
	if len(out) == 0 || out == "no stage traces recorded\n" {
		t.Error("formatting produced nothing")
	}
	if FormatStageTraces(nil) != "no stage traces recorded\n" {
		t.Error("nil trace formatting wrong")
	}
}
