package uarch

import (
	"reflect"
	"testing"

	"dlvp/internal/config"
	"dlvp/internal/siteprof"
	"dlvp/internal/workloads"
)

// runWithSites simulates a workload with site attribution on and returns
// the profile and the core.
func runWithSites(t *testing.T, name string, cfg config.Core, instrs uint64, maxSites int) (*siteprof.Profile, *Core) {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	c := New(cfg, w.Build(), w.Reader(instrs))
	c.EnableSiteProfile(maxSites)
	if s := c.Run(instrs * 100); s.Instructions == 0 {
		t.Fatalf("%s: nothing committed", name)
	}
	p := c.SiteProfile()
	if p == nil {
		t.Fatal("SiteProfile() = nil after a run with EnableSiteProfile")
	}
	return p, c
}

// checkReconciles asserts the package's core invariant: per-site counters
// plus the overflow bucket sum EXACTLY to the run's aggregate VP stats,
// and the cause taxonomy partitions every eligible load exactly once.
func checkReconciles(t *testing.T, p *siteprof.Profile, c *Core) {
	t.Helper()
	s := c.Stats()
	tot := p.Totals()
	checks := []struct {
		name      string
		got, want uint64
	}{
		{"eligible", tot.Eligible, s.VP.Eligible},
		{"predicted", tot.Predicted, s.VP.Predicted},
		{"correct", tot.Correct, s.VP.Correct},
	}
	for _, chk := range checks {
		if chk.got != chk.want {
			t.Errorf("site totals %s = %d, run stats say %d", chk.name, chk.got, chk.want)
		}
	}
	var causeSum uint64
	for _, n := range tot.Causes {
		causeSum += n
	}
	if causeSum != tot.Eligible {
		t.Errorf("cause sum %d != eligible %d: the taxonomy is not a partition", causeSum, tot.Eligible)
	}
}

// Per-site counters must reconcile exactly with the aggregate RunStats —
// the invariant the CI reconciliation step gates.
func TestSiteProfileReconcilesWithRunStats(t *testing.T) {
	const instrs = 60_000
	for _, tc := range []struct {
		workload string
		cfg      config.Core
	}{
		{"mcf", config.DLVP()},
		{"perlbmk", config.DLVP()},
		{"mcf", config.CAPDLVP()},
		{"mcf", config.VTAGE()},
	} {
		p, c := runWithSites(t, tc.workload, tc.cfg, instrs, 0)
		checkReconciles(t, p, c)
		if len(p.Sites) == 0 {
			t.Errorf("%s/%s: no sites tracked", tc.workload, tc.cfg.VP.Scheme)
		}
	}
}

// Reconciliation must survive eviction pressure: with a tiny site bound
// most sites fold into the overflow bucket, but totals stay exact.
func TestSiteProfileReconcilesUnderEviction(t *testing.T) {
	const instrs = 60_000
	p, c := runWithSites(t, "mcf", config.DLVP(), instrs, 4)
	if len(p.Sites) > 4 {
		t.Errorf("tracked %d sites, bound is 4", len(p.Sites))
	}
	if p.EvictedSites == 0 {
		t.Error("expected evictions at maxSites=4 on mcf")
	}
	if p.Overflow.Eligible == 0 {
		t.Error("overflow bucket empty despite evictions")
	}
	checkReconciles(t, p, c)
}

// A DLVP profile must attribute causes beyond correct/unpredicted: the
// drill-down is useless if everything lands in one bucket.
func TestSiteProfileAttributesCauses(t *testing.T) {
	const instrs = 60_000
	p, _ := runWithSites(t, "mcf", config.DLVP(), instrs, 0)
	tot := p.Totals()
	if tot.Causes[siteprof.CauseCorrect] == 0 {
		t.Error("no correct predictions attributed")
	}
	mispredictCauses := tot.Causes[siteprof.CauseStoreConflict] +
		tot.Causes[siteprof.CauseAddrMispredict] + tot.Causes[siteprof.CauseTagAlias]
	if mispredictCauses != tot.Mispredicts() {
		t.Errorf("address-scheme mispredict causes sum to %d, stats say %d mispredicts",
			mispredictCauses, tot.Mispredicts())
	}
	unpredicted := tot.Causes[siteprof.CauseAPTMiss] + tot.Causes[siteprof.CauseConfidenceDropped] +
		tot.Causes[siteprof.CauseLSCDFiltered] + tot.Causes[siteprof.CausePAQDrop] +
		tot.Causes[siteprof.CauseUnpredicted]
	if unpredicted != tot.Eligible-tot.Predicted {
		t.Errorf("no-prediction causes sum to %d, want %d", unpredicted, tot.Eligible-tot.Predicted)
	}
	// Ranking contract: mispredicts non-increasing down the list.
	for i := 1; i < len(p.Sites); i++ {
		if p.Sites[i].Mispredicts() > p.Sites[i-1].Mispredicts() {
			t.Fatalf("sites not ranked: index %d has %d mispredicts after %d",
				i, p.Sites[i].Mispredicts(), p.Sites[i-1].Mispredicts())
		}
	}
}

// Profiling off (the default) must leave SiteProfile nil.
func TestSiteProfileOffByDefault(t *testing.T) {
	w, _ := workloads.ByName("perlbmk")
	c := New(config.DLVP(), w.Build(), w.Reader(5_000))
	c.Run(0)
	if c.SiteProfile() != nil {
		t.Error("SiteProfile() non-nil without EnableSiteProfile")
	}
}

// Site profiling must not perturb the simulation: the full RunStats is
// bit-identical with and without the collector attached.
func TestSiteProfileDoesNotPerturbSimulation(t *testing.T) {
	const instrs = 30_000
	for _, cfg := range []config.Core{config.DLVP(), config.VTAGE()} {
		w, _ := workloads.ByName("mcf")
		plain := New(cfg, w.Build(), w.Reader(instrs))
		sPlain := plain.Run(0)
		prof := New(cfg, w.Build(), w.Reader(instrs))
		prof.EnableSiteProfile(0)
		sProf := prof.Run(0)
		if !reflect.DeepEqual(sPlain, sProf) {
			t.Errorf("%s: site profiling perturbed the run: %+v vs %+v", cfg.VP.Scheme, sPlain, sProf)
		}
	}
}

// Under a sample window the profile covers exactly the measured region:
// per-site sums reconcile with MeasuredCounters, not the whole run.
func TestSiteProfileScopedToSampleWindow(t *testing.T) {
	const warmup, measured = 10_000, 20_000
	w, _ := workloads.ByName("mcf")
	c := New(config.DLVP(), w.Build(), w.Reader(warmup+measured+10_000))
	c.SetSampleWindow(warmup, measured)
	c.EnableSiteProfile(0)
	c.Run(0)
	meas, ok := c.MeasuredCounters()
	if !ok {
		t.Fatal("sample window did not complete")
	}
	p := c.SiteProfile()
	tot := p.Totals()
	if tot.Eligible != meas.VPEligible || tot.Predicted != meas.VPPredicted || tot.Correct != meas.VPCorrect {
		t.Errorf("windowed site totals %d/%d/%d != measured counters %d/%d/%d",
			tot.Eligible, tot.Predicted, tot.Correct,
			meas.VPEligible, meas.VPPredicted, meas.VPCorrect)
	}
	if p.Instructions != meas.Instructions {
		t.Errorf("profile instructions = %d, want the measured region %d", p.Instructions, meas.Instructions)
	}
}

// benchSiteRun is the common body of the overhead benchmarks: one full
// DLVP simulation, optionally with site attribution.
func benchSiteRun(b *testing.B, sites bool) {
	const instrs = 50_000
	w, ok := workloads.ByName("mcf")
	if !ok {
		b.Fatal("workload mcf not registered")
	}
	p := w.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(config.DLVP(), p, w.Reader(instrs))
		if sites {
			c.EnableSiteProfile(0)
		}
		c.Run(0)
	}
}

// BenchmarkSiteprofOverhead measures a full simulation with site
// attribution on; compare against BenchmarkSiteprofBaseline (CI's
// bench-sanity step runs both). The acceptance budget is <3% slowdown:
//
//	go test -run - -bench 'BenchmarkSiteprof(Overhead|Baseline)' ./internal/uarch/
func BenchmarkSiteprofOverhead(b *testing.B) { benchSiteRun(b, true) }

// BenchmarkSiteprofBaseline is the attribution-off control.
func BenchmarkSiteprofBaseline(b *testing.B) { benchSiteRun(b, false) }
