//go:build uarchassert

package uarch

import (
	"strings"
	"testing"

	"dlvp/internal/config"
	"dlvp/internal/isa"
	"dlvp/internal/program"
	"dlvp/internal/trace"
)

// TestRemovePendingStoreAssertFires verifies the assert build refuses a
// store resolving without a pending-store registration — the invariant
// the SoA rewrite must not regress silently. Run with:
//
//	go test -tags uarchassert ./internal/uarch/
func TestRemovePendingStoreAssertFires(t *testing.T) {
	recs := []trace.Rec{{Seq: 0, PC: 0x1000, Op: isa.STR, Addr: 0x8000, Bytes: 8}}
	c := NewAt(config.Baseline(), program.NewBuilder("as").Build(),
		&trace.SliceReader{Recs: recs}, nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("removePendingStore on an unregistered store did not panic under -tags uarchassert")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "pending-store bookkeeping") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	c.removePendingStore(0) // never registered by fetch: bookkeeping diverged
}

// TestAssertBuildStillCorrect runs a real workload under the assert build:
// the invariant checks must all hold on the normal path.
func TestAssertBuildStillCorrect(t *testing.T) {
	runWorkload(t, "perlbmk", config.Baseline(), 20_000)
	runWorkload(t, "perlbmk", config.DLVP(), 20_000)
}
