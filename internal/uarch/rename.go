package uarch

import (
	"dlvp/internal/config"
	"dlvp/internal/predictor/tournament"
	"dlvp/internal/trace"
)

// renameStage renames up to FetchWidth instructions per cycle in program
// order, subject to ROB/IQ/LDQ/STQ/physical-register availability. Rename
// is also where the Value Prediction Engine installs predicted values into
// the PVT: a prediction is usable only if it reached the VPE by now (for
// DLVP, the probe round trip must beat the load to rename), and at most
// MaxPredictionsPerCycle destination values are installed per cycle (the
// PVT's write ports).
func (c *Core) renameStage() {
	vpBudget := c.cfg.VP.MaxPredictionsPerCycle
	w := &c.a.w
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.renameSeq >= c.fetchSeq {
			return
		}
		seq := c.renameSeq
		slot := seq & windowMask
		f := w.flags[slot]
		if f&fValid == 0 || f&fRenamed != 0 || w.renameReady[slot] > c.now {
			return
		}
		rec := c.rec(seq)
		if c.robCount >= c.cfg.ROBSize || c.iqCount >= c.cfg.IQSize {
			return
		}
		if rec.IsLoad() && c.ldqCount >= c.cfg.LDQSize {
			return
		}
		if rec.IsStore() && c.stqCount >= c.cfg.STQSize {
			return
		}
		nd := int(rec.NDst)
		if nd > c.freeRegs {
			return
		}

		w.flags[slot] |= fRenamed
		w.renameCycle[slot] = c.now
		c.freeRegs -= nd
		c.frontCount--
		c.robCount++
		if rec.IsLoad() {
			c.ldqCount++
		}
		if rec.IsStore() {
			c.stqCount++
		}
		c.installPrediction(seq, rec, &vpBudget)
		c.a.iqBits[slot>>6] |= 1 << (slot & 63)
		c.a.activeBits[slot>>6] |= 1 << (slot & 63)
		c.iqCount++
		c.renameSeq++
	}
}

// installPrediction decides, at rename, which value prediction (if any) is
// installed in the PVT for this instruction, honouring the per-cycle write
// budget, PVT capacity, and the oracle-replay model.
func (c *Core) installPrediction(seq uint64, rec *trace.Rec, vpBudget *int) {
	nd := int(rec.NDst)
	if nd == 0 || nd > trace.MaxDests {
		return
	}
	w := &c.a.w
	slot := seq & windowMask
	f := w.flags[slot]
	cd := c.cold(seq)

	dlvpReady := f&fProbeDone != 0 && f&fProbeHit != 0 && cd.probeDeliver <= c.now
	if f&fProbeDone != 0 && f&fProbeHit != 0 && cd.probeDeliver > c.now {
		c.stats.VPDropLate++
	}
	vtageReady := f&fVtAny != 0

	side := tournament.SideNone
	switch c.cfg.VP.Scheme {
	case config.VPDLVP, config.VPCAP:
		if dlvpReady {
			side = tournament.SideDLVP
		}
	case config.VPVTAGE, config.VPDVTAGE:
		if vtageReady {
			side = tournament.SideVTAGE
		}
	case config.VPTournament:
		side = c.chooser.Choose(rec.PC, dlvpReady, vtageReady)
	}
	if side == tournament.SideNone {
		return
	}

	// Assemble the per-destination predicted values directly in the cold
	// slot: every reader is gated by fVpMade and bounded by this record's
	// destination count, so a dropped install leaves no observable state.
	count := 0
	switch side {
	case tournament.SideDLVP:
		for j := 0; j < nd; j++ {
			cd.vpVals[j] = cd.probeVals[j]
			cd.vpPerDest[j] = true
			count++
		}
	case tournament.SideVTAGE:
		for j := 0; j < nd; j++ {
			ok := cd.vtValid[j]
			cd.vpVals[j] = cd.vtVals[j]
			cd.vpPerDest[j] = ok
			if ok {
				count++
			}
		}
	}
	if count == 0 {
		return
	}
	if count > *vpBudget {
		c.stats.VPDropBudget++
		return
	}
	if c.pvtCount+count > c.cfg.PVTEntries {
		c.stats.VPDropPVTFull++
		return
	}

	correct := true
	for j := 0; j < nd; j++ {
		if cd.vpPerDest[j] && cd.vpVals[j] != rec.DestValue(j) {
			correct = false
		}
	}
	if c.cfg.VP.OracleReplay && !correct {
		// Oracle replay: the misprediction is converted into a
		// no-prediction — counted, never flushed, never woken early.
		w.flags[slot] |= fVpOracleDropped
		cd.vpSource = side
		return
	}

	*vpBudget -= count
	c.pvtCount += count
	c.pvtWrites += uint64(count)
	c.wakeWaiters(int(slot)) // dependents sleeping on this producer can now issue
	w.flags[slot] |= fVpMade
	cd.vpSource = side
	cd.vpNumDests = count
}

// probeStage pops Predicted Address Queue entries on load-store lane
// bubbles and probes the L1D (DLVP steps 3-5). The number of bubbles is
// computed by issueStage (memIssued of the *previous* selection); probes
// read the committed-memory image, so a store committing after the probe
// leaves the probed value stale — the paper's in-flight-store hazard.
func (c *Core) probeStage() {
	bubbles := c.loadPortsFreeThisCycle
	w := &c.a.w
	for b := 0; b < bubbles && c.paqLen() > 0; {
		// Peek first: an entry still in transit to the back end stays
		// queued without consuming a bubble.
		pe := *c.paqAt(0)
		if pe.allocated > c.now {
			return
		}
		c.paqHead++
		if c.now-pe.allocated > uint64(c.cfg.PAQLifetime) {
			c.stats.PAQDropped++
			continue // dropped without consuming a bubble
		}
		if !c.live(pe.seq) {
			continue // squashed in the meantime
		}
		slot := pe.seq & windowMask
		if w.flags[slot]&fRenamed != 0 {
			// Too late: the load already passed rename.
			c.stats.PAQDropped++
			continue
		}
		b++
		res := c.hier.Probe(pe.addr, int(pe.way))
		w.flags[slot] |= fProbeDone
		if res.TLBMiss {
			w.flags[slot] |= fProbeTLB
		}
		if res.Outcome.Hit() {
			w.flags[slot] |= fProbeHit
			c.cold(pe.seq).probeDeliver = c.now + uint64(res.Latency) + 1 // +1 transfer to VPE
			c.readProbedValues(pe.seq, pe.addr)
		} else if c.cfg.VP.ProbePrefetch {
			c.hier.Prefetch(c.now, pe.addr)
			c.stats.Prefetches++ // DLVP-generated (the stride prefetcher is counted separately)
		}
	}
}

// readProbedValues reads the committed-memory image at the predicted
// address, reconstructing every destination value exactly as the load
// would (sizes, sign extension, pair/multiple layout, post-index base).
func (c *Core) readProbedValues(seq uint64, addr uint64) {
	cd := c.cold(seq)
	cd.probeVals = [trace.MaxDests]uint64{}
	if inst := c.prog.InstAt(c.rec(seq).PC); inst != nil {
		c.readLoadValues(inst, addr, &cd.probeVals)
	}
}
