package uarch

import (
	"dlvp/internal/config"
	"dlvp/internal/predictor/tournament"
	"dlvp/internal/trace"
)

// renameStage renames up to FetchWidth instructions per cycle in program
// order, subject to ROB/IQ/LDQ/STQ/physical-register availability. Rename
// is also where the Value Prediction Engine installs predicted values into
// the PVT: a prediction is usable only if it reached the VPE by now (for
// DLVP, the probe round trip must beat the load to rename), and at most
// MaxPredictionsPerCycle destination values are installed per cycle (the
// PVT's write ports).
func (c *Core) renameStage() {
	vpBudget := c.cfg.VP.MaxPredictionsPerCycle
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.renameSeq >= c.fetchSeq {
			return
		}
		e := c.ent(c.renameSeq)
		if !e.valid || e.renamed || e.renameReady > c.now {
			return
		}
		rec := &e.rec
		if c.robCount >= c.cfg.ROBSize || len(c.iq) >= c.cfg.IQSize {
			return
		}
		if rec.IsLoad() && c.ldqCount >= c.cfg.LDQSize {
			return
		}
		if rec.IsStore() && c.stqCount >= c.cfg.STQSize {
			return
		}
		nd := int(rec.NDst)
		if nd > c.freeRegs {
			return
		}

		e.renamed = true
		e.renameCycle = c.now
		c.freeRegs -= nd
		c.frontCount--
		c.robCount++
		if rec.IsLoad() {
			c.ldqCount++
		}
		if rec.IsStore() {
			c.stqCount++
		}
		c.installPrediction(e, &vpBudget)
		c.iq = append(c.iq, rec.Seq)
		c.renameSeq++
	}
}

// installPrediction decides, at rename, which value prediction (if any) is
// installed in the PVT for this instruction, honouring the per-cycle write
// budget, PVT capacity, and the oracle-replay model.
func (c *Core) installPrediction(e *entry, vpBudget *int) {
	rec := &e.rec
	nd := int(rec.NDst)
	if nd == 0 || nd > trace.MaxDests {
		return
	}

	dlvpReady := e.probeDone && e.probeHit && e.probeDeliver <= c.now
	if e.probeDone && e.probeHit && e.probeDeliver > c.now {
		c.stats.VPDropLate++
	}
	vtageReady := e.vtAny

	side := tournament.SideNone
	switch c.cfg.VP.Scheme {
	case config.VPDLVP, config.VPCAP:
		if dlvpReady {
			side = tournament.SideDLVP
		}
	case config.VPVTAGE, config.VPDVTAGE:
		if vtageReady {
			side = tournament.SideVTAGE
		}
	case config.VPTournament:
		side = c.chooser.Choose(rec.PC, dlvpReady, vtageReady)
	}
	if side == tournament.SideNone {
		return
	}

	// Assemble the per-destination predicted values.
	var vals [trace.MaxDests]uint64
	var per [trace.MaxDests]bool
	count := 0
	switch side {
	case tournament.SideDLVP:
		for j := 0; j < nd; j++ {
			vals[j] = e.probeVals[j]
			per[j] = true
			count++
		}
	case tournament.SideVTAGE:
		for j := 0; j < nd; j++ {
			if e.vtValid[j] {
				vals[j] = e.vtVals[j]
				per[j] = true
				count++
			}
		}
	}
	if count == 0 {
		return
	}
	if count > *vpBudget {
		c.stats.VPDropBudget++
		return
	}
	if c.pvtCount+count > c.cfg.PVTEntries {
		c.stats.VPDropPVTFull++
		return
	}

	correct := true
	for j := 0; j < nd; j++ {
		if per[j] && vals[j] != rec.DestValue(j) {
			correct = false
		}
	}
	if c.cfg.VP.OracleReplay && !correct {
		// Oracle replay: the misprediction is converted into a
		// no-prediction — counted, never flushed, never woken early.
		e.vpOracleDropped = true
		e.vpSource = side
		return
	}

	*vpBudget -= count
	c.pvtCount += count
	c.pvtWrites += uint64(count)
	e.vpMade = true
	e.vpSource = side
	e.vpVals = vals
	e.vpPerDest = per
	e.vpNumDests = count
}

// probeStage pops Predicted Address Queue entries on load-store lane
// bubbles and probes the L1D (DLVP steps 3-5). The number of bubbles is
// computed by issueStage (memIssued of the *previous* selection); probes
// read the committed-memory image, so a store committing after the probe
// leaves the probed value stale — the paper's in-flight-store hazard.
func (c *Core) probeStage() {
	bubbles := c.loadPortsFreeThisCycle
	for b := 0; b < bubbles && len(c.paq) > 0; {
		pe := c.paq[0]
		c.paq = c.paq[1:]
		if pe.allocated > c.now {
			// Not yet arrived at the back end; put it back and stop.
			c.paq = append([]paqEntry{pe}, c.paq...)
			return
		}
		if c.now-pe.allocated > uint64(c.cfg.PAQLifetime) {
			c.stats.PAQDropped++
			continue // dropped without consuming a bubble
		}
		if !c.live(pe.seq) {
			continue // squashed in the meantime
		}
		e := c.ent(pe.seq)
		if e.renamed {
			// Too late: the load already passed rename.
			c.stats.PAQDropped++
			continue
		}
		b++
		res := c.hier.Probe(pe.addr, int(pe.way))
		e.probeDone = true
		e.probeTLB = res.TLBMiss
		if res.Outcome.Hit() {
			e.probeHit = true
			e.probeDeliver = c.now + uint64(res.Latency) + 1 // +1 transfer to VPE
			c.readProbedValues(e, pe.addr)
		} else if c.cfg.VP.ProbePrefetch {
			c.hier.Prefetch(c.now, pe.addr)
			c.stats.Prefetches++ // DLVP-generated (the stride prefetcher is counted separately)
		}
	}
}

// readProbedValues reads the committed-memory image at the predicted
// address, reconstructing every destination value exactly as the load
// would (sizes, sign extension, pair/multiple layout, post-index base).
func (c *Core) readProbedValues(e *entry, addr uint64) {
	if inst := c.prog.InstAt(e.rec.PC); inst != nil {
		c.readLoadValues(inst, addr, &e.probeVals)
	}
}
