//go:build uarchassert

package uarch

// assertEnabled gates the package's internal invariant checks; this build
// tag turns violations into panics (see assert_off.go for the default).
const assertEnabled = true
