package uarch

import (
	"fmt"
	"strings"

	"dlvp/internal/tabletext"
)

// StageTrace records the pipeline timeline of one committed instruction.
type StageTrace struct {
	Seq      uint64
	PC       uint64
	Disasm   string
	Fetch    uint64
	Rename   uint64
	Issue    uint64
	Complete uint64
	Commit   uint64
	// Predicted marks instructions whose destination value was supplied by
	// the VPE at rename.
	Predicted bool
}

// EnableStageTrace records the pipeline timeline of the first n committed
// instructions at or after seq start. Call before Run.
func (c *Core) EnableStageTrace(start uint64, n int) {
	c.traceStart = start
	c.traceWant = n
	c.stageTraces = make([]StageTrace, 0, n)
}

// StageTraces returns the recorded timelines (valid after Run).
func (c *Core) StageTraces() []StageTrace { return c.stageTraces }

// captureStageTrace is called at commit for every instruction.
func (c *Core) captureStageTrace(seq uint64) {
	rec := c.rec(seq)
	if c.stageTraces == nil || len(c.stageTraces) >= c.traceWant ||
		rec.Seq < c.traceStart {
		return
	}
	disasm := rec.Op.String()
	if inst := c.prog.InstAt(rec.PC); inst != nil {
		disasm = inst.String()
	}
	w := &c.a.w
	slot := seq & windowMask
	c.stageTraces = append(c.stageTraces, StageTrace{
		Seq:       rec.Seq,
		PC:        rec.PC,
		Disasm:    disasm,
		Fetch:     w.fetchCycle[slot],
		Rename:    w.renameCycle[slot],
		Issue:     w.issueCycle[slot],
		Complete:  w.execDone[slot],
		Commit:    c.now,
		Predicted: w.flags[slot]&fVpMade != 0,
	})
}

// FormatStageTraces renders timelines as an aligned table plus a classic
// pipeline diagram (F/R/I/E/C columns over cycles), making value
// prediction's effect visible: consumers of a predicted load issue before
// the load completes.
func FormatStageTraces(traces []StageTrace) string {
	if len(traces) == 0 {
		return "no stage traces recorded\n"
	}
	t := &tabletext.Table{
		Title:  "Pipeline timeline (cycles)",
		Header: []string{"seq", "pc", "instruction", "fetch", "rename", "issue", "done", "commit", "vp"},
	}
	base := traces[0].Fetch
	for _, s := range traces {
		vp := ""
		if s.Predicted {
			vp = "*"
		}
		t.AddRow(s.Seq, fmt.Sprintf("%x", s.PC), s.Disasm,
			s.Fetch-base, s.Rename-base, s.Issue-base, s.Complete-base, s.Commit-base, vp)
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	sb.WriteByte('\n')

	// ASCII pipeline diagram, clamped to a readable span.
	last := traces[len(traces)-1].Commit
	span := int(last - base + 1)
	if span > 90 {
		span = 90
	}
	for _, s := range traces {
		row := make([]byte, span)
		for i := range row {
			row[i] = '.'
		}
		mark := func(cyc uint64, ch byte) {
			i := int(cyc - base)
			if i >= 0 && i < span {
				row[i] = ch
			}
		}
		mark(s.Fetch, 'F')
		mark(s.Rename, 'R')
		mark(s.Issue, 'I')
		mark(s.Complete, 'E')
		mark(s.Commit, 'C')
		name := s.Disasm
		if len(name) > 24 {
			name = name[:24]
		}
		sb.WriteString(fmt.Sprintf("%6d %-24s %s\n", s.Seq, name, row))
	}
	sb.WriteString("F=fetch R=rename I=issue E=complete C=commit\n")
	return sb.String()
}
