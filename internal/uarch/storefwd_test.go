package uarch

import (
	"reflect"
	"testing"

	"dlvp/internal/config"
	"dlvp/internal/emu"
	"dlvp/internal/isa"
	"dlvp/internal/metrics"
	"dlvp/internal/program"
	"dlvp/internal/siteprof"
	"dlvp/internal/trace"
)

// buildPartialOverlapLoop builds the narrow-store → wide-load shape: a
// 1-byte store into the middle of a word that an 8-byte load then reads.
// The store cannot supply the load's full value, so the load must wait for
// the store to drain to committed memory instead of forwarding.
func buildPartialOverlapLoop() *program.Program {
	b := program.NewBuilder("partial")
	base := b.AllocWords("cell", []uint64{0x1122334455667788, 0, 0, 0, 0, 0, 0, 0})
	b.MovImm(1, base)
	b.MovImm(2, 0xAB)
	b.Label("loop")
	b.Str(2, 1, 3, 0) // 1-byte store at base+3: inside the load's span
	b.Ldr(3, 1, 0, 3) // 8-byte load at base: only partially covered
	b.Add(4, 3, 3)
	b.Br("loop")
	return b.Build()
}

// buildContainedForwardLoop is the control: an 8-byte store fully contains
// a 1-byte load, which is the legal store-to-load forwarding case.
func buildContainedForwardLoop() *program.Program {
	b := program.NewBuilder("contained")
	base := b.Alloc("cell", 64)
	b.MovImm(1, base)
	b.MovImm(2, 0xCD)
	b.Label("loop")
	b.Str(2, 1, 0, 3) // 8-byte store at base
	b.Ldr(3, 1, 3, 0) // 1-byte load at base+3: fully contained
	b.Add(4, 3, 3)
	b.Br("loop")
	return b.Build()
}

// TestPartialOverlapStallsLoad is the regression test for the forwarding
// width bug: a store that only partially covers a younger load must not
// forward; the load stalls until the store commits. The control loop with
// full containment must keep forwarding and never hit the stall path.
func TestPartialOverlapStallsLoad(t *testing.T) {
	partial := runProgram(t, buildPartialOverlapLoop(), config.Baseline(), 20_000)
	if partial.StoreFwdPartialStalls == 0 {
		t.Error("narrow store + wide load: no partial-overlap stalls recorded")
	}
	// The store issues before the load in the same age-ordered scan, so the
	// load always sees it in the STQ: no ordering violation is possible.
	if partial.OrderFlushes != 0 {
		t.Errorf("partial-overlap loop: %d order flushes, want 0", partial.OrderFlushes)
	}

	contained := runProgram(t, buildContainedForwardLoop(), config.Baseline(), 20_000)
	if contained.StoreFwdPartialStalls != 0 {
		t.Errorf("fully contained load stalled %d times; containment must forward",
			contained.StoreFwdPartialStalls)
	}
	if contained.OrderFlushes != 0 {
		t.Errorf("contained loop: %d order flushes, want 0", contained.OrderFlushes)
	}

	// The stalled loop waits a store-buffer drain per iteration; the
	// forwarding loop does not. Identical instruction mix otherwise, so
	// the partial variant must burn strictly more cycles per instruction.
	if partial.IPC() >= contained.IPC() {
		t.Errorf("partial-overlap IPC %.3f >= contained IPC %.3f; stall has no timing effect",
			partial.IPC(), contained.IPC())
	}
}

// TestPartialOverlapSiteAttribution runs the narrow-store → wide-load shape
// with a value that changes every iteration under DLVP with site profiling:
// the load's address is stable (PAP turns confident) but the partially
// overlapping store rewrites part of the word between probe and load, so
// the mispredicts must be attributed to the store-conflict cause — and the
// stall path must be exercised alongside them.
func TestPartialOverlapSiteAttribution(t *testing.T) {
	b := program.NewBuilder("partialconflict")
	base := b.AllocWords("cell", []uint64{0x1122334455667788, 0, 0, 0, 0, 0, 0, 0})
	b.MovImm(1, base)
	b.MovImm(2, 0)
	b.Label("loop")
	b.AddI(2, 2, 1)   // the stored byte changes every iteration
	b.Str(2, 1, 3, 0) // 1-byte store into the middle of the word
	b.Ldr(3, 1, 0, 3) // 8-byte load: stable address, changing value
	b.Add(4, 3, 3)
	b.Br("loop")
	p := b.Build()

	cpu := emu.New(p)
	cpu.MaxInstrs = 30_000
	c := New(config.DLVP(), p, cpu)
	c.EnableSiteProfile(0)
	s := c.Run(0)
	if s.StoreFwdPartialStalls == 0 {
		t.Error("no partial-overlap stalls on the conflicting loop")
	}
	prof := c.SiteProfile()
	if prof == nil {
		t.Fatal("SiteProfile() = nil")
	}
	tot := prof.Totals()
	if tot.Causes[siteprof.CauseStoreConflict] == 0 {
		t.Errorf("no store-conflict attributions; causes = %+v", tot.Causes)
	}
}

// TestPartialOverlapDeterministic pins the stall path as deterministic:
// two identical runs must agree on every statistic.
func TestPartialOverlapDeterministic(t *testing.T) {
	run := func() metrics.RunStats {
		p := buildPartialOverlapLoop()
		cpu := emu.New(p)
		cpu.MaxInstrs = 20_000
		return New(config.Baseline(), p, cpu).Run(0)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("partial-overlap runs diverged:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// TestOrderViolationSameCycleExcluded pins the same-cycle semantics of
// checkOrderViolation directly: a load whose issueCycle equals the cycle
// the older store resolves was processed after the store in the
// age-ordered scan — it already saw the store in the STQ and must not be
// squashed. A load that issued in an earlier cycle read stale data and
// must be.
func TestOrderViolationSameCycleExcluded(t *testing.T) {
	recs := []trace.Rec{
		{Seq: 0, PC: 0x1000, Op: isa.STR, Addr: 0x8000, Bytes: 8},
		{Seq: 1, PC: 0x1004, Op: isa.LDR, Addr: 0x8004, Bytes: 1},
	}
	newCore := func() *Core {
		c := NewAt(config.Baseline(), program.NewBuilder("ov").Build(),
			&trace.SliceReader{Recs: recs}, nil)
		c.now = 10
		c.fetchSeq = 2
		w := &c.a.w
		w.flags[1] = fValid | fIsLoad | fIssued
		c.a.ldqIdx.push(1)
		return c
	}

	c := newCore()
	c.a.w.issueCycle[1] = c.now // load issued this very cycle
	c.checkOrderViolation(0, &recs[0])
	if c.flushPending {
		t.Error("same-cycle load squashed: it issued after the store in the age-ordered scan")
	}

	c = newCore()
	c.a.w.issueCycle[1] = c.now - 1 // load issued before the store resolved
	c.checkOrderViolation(0, &recs[0])
	if !c.flushPending {
		t.Error("stale load not squashed: it executed before the store's address resolved")
	}
}
