// Package uarch is the cycle-level out-of-order core model. It consumes the
// functional emulator's dynamic instruction stream and models the Table 4
// baseline pipeline — a 4-wide in-order front end feeding an 8-wide
// out-of-order engine (2 load-store lanes) through a 13-cycle
// fetch-to-execute pipe — plus the paper's value-prediction machinery:
//
//   - the Value Prediction Engine (PVT + predicted bits, Section 3.2.1),
//   - DLVP: PAP (or CAP) address prediction at fetch, the Predicted Address
//     Queue, opportunistic L1D probes on load-store lane bubbles, probe-miss
//     prefetching, the LSCD in-flight-store filter, and way prediction
//     (Section 3.2.2),
//   - conventional VTAGE value prediction, and the DLVP+VTAGE tournament.
//
// Being trace-driven, the model executes no wrong-path instructions;
// mispredictions are modelled as fetch redirect penalties, which is the
// standard trace-driven treatment. Probe staleness is modelled exactly: the
// core maintains its own committed-memory image, updated at store commit,
// and a DLVP probe reads that image — so a store committing between probe
// and load execution (or still in flight) yields a stale probed value and a
// genuine value misprediction, the paper's Challenge #1.
package uarch

import (
	"fmt"

	"dlvp/internal/branch"
	"dlvp/internal/config"
	"dlvp/internal/emu"
	"dlvp/internal/energy"
	"dlvp/internal/mdp"
	"dlvp/internal/mem"
	"dlvp/internal/metrics"
	"dlvp/internal/predictor"
	"dlvp/internal/predictor/cap"
	"dlvp/internal/predictor/dvtage"
	"dlvp/internal/predictor/pap"
	"dlvp/internal/predictor/tournament"
	"dlvp/internal/predictor/vtage"
	"dlvp/internal/program"
	"dlvp/internal/siteprof"
	tline "dlvp/internal/timeline"
	"dlvp/internal/trace"
)

// windowCap bounds in-flight instructions (ROB + front-end queue); it must
// be a power of two and comfortably exceed ROBSize + front-end depth.
const windowCap = 1024

// frontQCap bounds fetched-but-unrenamed instructions (the decode queue).
const frontQCap = 64

type entry struct {
	rec   trace.Rec
	valid bool

	fetchCycle  uint64
	renameReady uint64 // earliest rename cycle (fetch + front latency + icache)
	renamed     bool
	renameCycle uint64
	issued      bool
	issueCycle  uint64
	execDone    uint64 // cycle the result is available
	completed   bool

	deps [trace.MaxSrcs]uint64 // producer seq+1 per source (0 = already ready)

	// Branch state.
	brMispredict bool
	ghistBefore  uint64 // fetch-time history (for trainer re-indexing)

	// History snapshots *after* this instruction (for squash recovery).
	ghistAfter  uint64
	lphistAfter uint64

	// Address prediction context.
	papLk      pap.Lookup
	papLkValid bool
	capLk      cap.Lookup
	capLkValid bool
	lscdSkip   bool // LSCD filtered: neither predict nor train

	// DLVP probe state.
	paqIssued    bool // an address prediction was enqueued for this load
	probeDone    bool
	probeHit     bool
	probeTLB     bool   // the probe walked the TLB (attribution detail)
	probeDeliver uint64 // cycle the probed value reaches the VPE
	probeVals    [trace.MaxDests]uint64

	// APT train outcome (set at execute; consumed by site attribution).
	papTrain      pap.TrainOutcome
	papTrainValid bool

	// VTAGE state (shared by VTAGE and D-VTAGE; dvLks carries the
	// differential predictor's training context).
	dvLks   []dvtage.Lookup
	vtLks   []vtage.Lookup
	vtVals  [trace.MaxDests]uint64
	vtValid [trace.MaxDests]bool
	vtAny   bool

	// Final value prediction installed in the PVT at rename.
	vpMade     bool
	vpSource   tournament.Side
	vpVals     [trace.MaxDests]uint64
	vpPerDest  [trace.MaxDests]bool
	vpNumDests int
	// vpOracleDropped marks a prediction suppressed by the oracle-replay
	// model (counted as a misprediction without a flush).
	vpOracleDropped bool

	l1Way   int8 // way the demand access found/filled (trains way prediction)
	mdpWait bool

	// One-shot guards for execution side effects (an instruction may
	// execute more than once under selective replay).
	trained   bool
	validated bool
	// notBefore delays (re-)issue until the replay penalty has elapsed.
	notBefore uint64

	// RAS snapshot after this instruction (calls/returns only).
	rasAfter    branch.RASState
	hasRasAfter bool
}

type flushKind uint8

const (
	flushBranch flushKind = iota
	flushValue
	flushOrder
)

type flushReq struct {
	seq       uint64 // squash everything with seq > this (flushOrder: >=)
	resume    uint64 // cycle fetch restarts
	kind      flushKind
	refetchAt uint64 // first seq to refetch
}

// Core is one simulated core instance bound to a program and its functional
// stream.
type Core struct {
	cfg    config.Core
	prog   *program.Program
	reader trace.Reader

	// Committed architectural memory image (probe staleness model).
	cmem *emu.Memory

	hier   *mem.Hierarchy
	tage   *branch.TAGE
	ittage *branch.ITTAGE
	ras    branch.RAS
	// rasBase is the RAS state at the commit head (squash fallback).
	rasBase branch.RASState
	ghist   predictor.GlobalHistory
	mdp     *mdp.Predictor

	papPred *pap.Predictor
	capPred *cap.Predictor
	vtPred  *vtage.Predictor
	dvPred  *dvtage.Predictor
	chooser *tournament.Chooser
	lscd    *pap.LSCD

	// Trace buffer: records [bufBase, bufBase+len(buf)) fetched or fetchable.
	buf      []trace.Rec
	bufBase  uint64
	traceEOF bool

	window    [windowCap]entry
	headSeq   uint64 // oldest in-flight seq (== next to commit)
	fetchSeq  uint64 // next seq to fetch
	renameSeq uint64 // next seq to rename
	haltSeen  bool
	haltSeq   uint64 // seq of the fetched HALT (valid when haltSeen)

	now uint64

	// History state at the commit head (flush fallback when every younger
	// instruction is squashed).
	committedGhist  uint64
	committedLphist uint64

	// Occupancy.
	frontCount int      // fetched, unrenamed
	robCount   int      // renamed, uncommitted
	iq         []uint64 // seqs renamed & unissued
	inflight   []uint64 // seqs issued & not complete
	ldqCount   int
	stqCount   int
	freeRegs   int
	pvtCount   int

	lastWriter    [64]uint64 // seq+1 of last in-flight writer per arch reg
	pendingStores []uint64   // in-flight, not-yet-issued store seqs, ascending

	paq             []paqEntry
	fetchStallUntil uint64
	pendingFlush    *flushReq

	// Energy access counters (per-structure counts fed into the meter).
	prfReads  uint64
	prfWrites uint64
	pvtWrites uint64

	memIssuedThisCycle     int
	loadPortsFreeThisCycle int

	stats  metrics.RunStats
	meter  *energy.Meter
	emodel energy.CoreModel

	// Stage-trace capture (EnableStageTrace).
	stageTraces []StageTrace
	traceStart  uint64
	traceWant   int

	// Flight recorder (EnableTimeline). tl is nil when sampling is off;
	// tlCountdown counts committed instructions down to the next interval
	// boundary; tlPAQPeak tracks the high-water PAQ occupancy since the
	// last boundary.
	tl          *tline.Recorder
	tlCountdown uint64
	tlPAQPeak   int
	timeline    *tline.Timeline

	// Sample window (SetSampleWindow). wmRemaining counts committed
	// instructions down to the measured-region boundary; wmSnap holds
	// the cumulative counters at that boundary so MeasuredCounters can
	// subtract the warm-up contribution out of the final totals. A
	// bounded measured region counts down mdRemaining, snapshots
	// mdSnap at the closing commit, and raises stopReq so Run ends
	// without simulating (or measuring) the end-of-stream pipeline
	// drain.
	wmRemaining uint64
	wmArmed     bool
	wmDone      bool
	wmSnap      tline.Counters
	mdRemaining uint64
	mdBounded   bool
	mdDone      bool
	mdSnap      tline.Counters
	stopReq     bool

	// Per-load-site attribution (EnableSiteProfile). sp is nil when
	// profiling is off; the commit path then pays one nil check per
	// eligible instruction.
	sp          *siteprof.Collector
	siteProfile *siteprof.Profile
}

type paqEntry struct {
	seq       uint64
	addr      uint64
	way       int8
	allocated uint64
}

// New builds a core in configuration cfg for program p, streaming records
// from reader. reader must be a fresh stream positioned at the program
// entry (typically an *emu.CPU).
func New(cfg config.Core, p *program.Program, reader trace.Reader) *Core {
	return NewAt(cfg, p, reader, nil)
}

// NewAt builds a core whose committed-memory image starts from cmem
// instead of the program image — the mid-stream form used by sampled
// simulation, where reader is a checkpoint-restored (and seq-rebased)
// emulator and cmem is the architectural memory at the restore offset.
// cmem is cloned, never mutated; nil selects the program image
// (equivalent to New). The probe-staleness model depends on this: a
// DLVP probe reads the committed image, so an interval starting
// mid-stream must see the memory the committed stream has produced so
// far, not the initial data segments.
func NewAt(cfg config.Core, p *program.Program, reader trace.Reader, cmem *emu.Memory) *Core {
	mimg := emu.NewMemoryFromProgram(p)
	if cmem != nil {
		mimg = cmem.Clone()
	}
	c := &Core{
		cfg:    cfg,
		prog:   p,
		reader: reader,
		cmem:   mimg,
		hier:   mem.NewHierarchy(cfg.Mem),
		tage:   branch.NewTAGE(cfg.TAGE),
		ittage: branch.NewITTAGE(cfg.ITTAGE),
		mdp:    mdp.New(cfg.MDP),
		meter:  energy.NewMeter(),
		emodel: energy.DefaultCoreModel(),
	}
	c.freeRegs = cfg.PhysRegs - 64
	switch cfg.VP.Scheme {
	case config.VPDLVP:
		c.papPred = pap.New(cfg.VP.PAP)
	case config.VPCAP:
		c.capPred = cap.New(cfg.VP.CAP)
	case config.VPVTAGE:
		c.vtPred = vtage.New(cfg.VP.VTAGE)
	case config.VPTournament:
		c.papPred = pap.New(cfg.VP.PAP)
		c.vtPred = vtage.New(cfg.VP.VTAGE)
		c.chooser = tournament.New(cfg.VP.Chooser)
	case config.VPDVTAGE:
		c.dvPred = dvtage.New(cfg.VP.DVTAGE)
	}
	if c.usesAddressPrediction() && cfg.VP.LSCDEntries > 0 {
		c.lscd = pap.NewLSCD(cfg.VP.LSCDEntries)
	}
	c.stats.Scheme = cfg.VP.Scheme.String()
	c.stats.Workload = p.Name
	return c
}

func (c *Core) usesAddressPrediction() bool {
	s := c.cfg.VP.Scheme
	return s == config.VPDLVP || s == config.VPCAP || s == config.VPTournament
}

func (c *Core) ent(seq uint64) *entry { return &c.window[seq&(windowCap-1)] }

// live reports whether seq refers to an in-flight instruction.
func (c *Core) live(seq uint64) bool {
	if seq < c.headSeq || seq >= c.fetchSeq {
		return false
	}
	return c.ent(seq).valid
}

// Run simulates until the stream is exhausted and the pipeline drains, or
// maxCycles elapses (0 = unlimited), and returns the run statistics.
func (c *Core) Run(maxCycles uint64) metrics.RunStats {
	for {
		if maxCycles > 0 && c.now >= maxCycles {
			break
		}
		c.commitStage()
		if c.stopReq {
			// A bounded sample window closed at a commit this cycle;
			// everything past it (including the drain) is out of scope.
			break
		}
		c.executeStage()
		c.issueStage()
		c.probeStage()
		c.renameStage()
		c.fetchStage()
		c.applyFlush()
		if c.done() {
			break
		}
		c.now++
	}
	c.finalizeStats()
	return c.stats
}

func (c *Core) done() bool {
	if c.headSeq != c.fetchSeq {
		return false
	}
	if c.haltSeen {
		return true
	}
	// End of stream: nothing in flight AND nothing left to (re)fetch.
	return c.traceEOF && c.fetchSeq >= c.bufBase+uint64(len(c.buf))
}

// fill ensures the trace buffer covers seq; returns false at end of stream.
func (c *Core) fill(seq uint64) bool {
	if seq < c.bufBase {
		panic(fmt.Sprintf("uarch: trace rewound below buffer base (seq %d < base %d)", seq, c.bufBase))
	}
	for c.bufBase+uint64(len(c.buf)) <= seq {
		if c.traceEOF {
			return false
		}
		var r trace.Rec
		if !c.reader.Next(&r) {
			c.traceEOF = true
			return false
		}
		c.buf = append(c.buf, r)
	}
	// Compact: drop records far below the commit head.
	if c.headSeq > c.bufBase+2048 {
		drop := int(c.headSeq - c.bufBase - 512)
		c.buf = append(c.buf[:0], c.buf[drop:]...)
		c.bufBase += uint64(drop)
	}
	return true
}

func (c *Core) recAt(seq uint64) *trace.Rec {
	if !c.fill(seq) {
		return nil
	}
	return &c.buf[seq-c.bufBase]
}

func (c *Core) finalizeStats() {
	c.stats.Cycles = c.now
	c.stats.L1DMissRate = c.hier.L1D.MissRate()
	c.stats.L2MissRate = c.hier.L2.MissRate()
	c.stats.TLBMissRate = c.hier.TLB.MissRate()
	c.stats.TLBMisses = c.hier.TLB.Misses
	c.stats.Probes = c.hier.Probes
	c.stats.ProbeHits = c.hier.ProbeHits
	c.stats.WayMispredicts = c.hier.WayMispredictions
	if c.lscd != nil {
		c.stats.LSCDFiltered = c.lscd.Filtered
		c.stats.LSCDInserts = c.lscd.Inserts
	}
	c.meterEnergy()
	c.stats.CoreEnergy = c.emodel.Total(c.stats.Cycles, c.stats.Instructions, c.meter)
	if c.tl != nil {
		c.tlSample(true)
	}
	if c.sp != nil {
		c.spFinish()
	}
}

// Stats returns the statistics accumulated so far (valid after Run).
func (c *Core) Stats() metrics.RunStats { return c.stats }
