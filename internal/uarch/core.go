// Package uarch is the cycle-level out-of-order core model. It consumes the
// functional emulator's dynamic instruction stream and models the Table 4
// baseline pipeline — a 4-wide in-order front end feeding an 8-wide
// out-of-order engine (2 load-store lanes) through a 13-cycle
// fetch-to-execute pipe — plus the paper's value-prediction machinery:
//
//   - the Value Prediction Engine (PVT + predicted bits, Section 3.2.1),
//   - DLVP: PAP (or CAP) address prediction at fetch, the Predicted Address
//     Queue, opportunistic L1D probes on load-store lane bubbles, probe-miss
//     prefetching, the LSCD in-flight-store filter, and way prediction
//     (Section 3.2.2),
//   - conventional VTAGE value prediction, and the DLVP+VTAGE tournament.
//
// Being trace-driven, the model executes no wrong-path instructions;
// mispredictions are modelled as fetch redirect penalties, which is the
// standard trace-driven treatment. Probe staleness is modelled exactly: the
// core maintains its own committed-memory image, updated at store commit,
// and a DLVP probe reads that image — so a store committing between probe
// and load execution (or still in flight) yields a stale probed value and a
// genuine value misprediction, the paper's Challenge #1.
//
// The implementation is data-oriented: the instruction window is a
// struct-of-arrays block (window.go), the scheduler picks ready
// instructions from a bitmap with TrailingZeros64, memory-order checks walk
// compact LDQ/STQ sequence rings instead of the window, and all bulk state
// lives in an Arena a caller can recycle across runs.
package uarch

import (
	"fmt"

	"dlvp/internal/branch"
	"dlvp/internal/config"
	"dlvp/internal/emu"
	"dlvp/internal/energy"
	"dlvp/internal/mdp"
	"dlvp/internal/mem"
	"dlvp/internal/metrics"
	"dlvp/internal/predictor"
	"dlvp/internal/predictor/cap"
	"dlvp/internal/predictor/dvtage"
	"dlvp/internal/predictor/pap"
	"dlvp/internal/predictor/tournament"
	"dlvp/internal/predictor/vtage"
	"dlvp/internal/program"
	"dlvp/internal/siteprof"
	tline "dlvp/internal/timeline"
	"dlvp/internal/trace"
)

type flushKind uint8

const (
	flushBranch flushKind = iota
	flushValue
	flushOrder
)

type flushReq struct {
	seq       uint64 // squash everything with seq > this (flushOrder: >=)
	resume    uint64 // cycle fetch restarts
	kind      flushKind
	refetchAt uint64 // first seq to refetch
}

// Core is one simulated core instance bound to a program and its functional
// stream.
type Core struct {
	cfg    config.Core
	prog   *program.Program
	reader trace.Reader
	// ra is set when reader supports positional access: records are then
	// served straight out of the reader (zero-copy) and the staging ring
	// in the arena goes unused.
	ra trace.RandomAccess

	// Committed architectural memory image (probe staleness model).
	cmem *emu.Memory

	hier   *mem.Hierarchy
	tage   *branch.TAGE
	ittage *branch.ITTAGE
	ras    branch.RAS
	// rasBase is the RAS state at the commit head (squash fallback).
	rasBase branch.RASState
	ghist   predictor.GlobalHistory
	mdp     *mdp.Predictor

	papPred *pap.Predictor
	capPred *cap.Predictor
	vtPred  *vtage.Predictor
	dvPred  *dvtage.Predictor
	chooser *tournament.Chooser
	lscd    *pap.LSCD

	// a holds the SoA window, the trace ring, and every other bulk
	// per-run allocation (see window.go).
	a *Arena

	// Trace ring cursor: records [bufHi-bufCap, bufHi) are resident.
	bufHi    uint64 // next seq to pull from the reader
	traceEOF bool

	headSeq   uint64 // oldest in-flight seq (== next to commit)
	fetchSeq  uint64 // next seq to fetch
	renameSeq uint64 // next seq to rename
	haltSeen  bool
	haltSeq   uint64 // seq of the fetched HALT (valid when haltSeen)

	now uint64

	// History state at the commit head (flush fallback when every younger
	// instruction is squashed).
	committedGhist  uint64
	committedLphist uint64

	// Occupancy.
	frontCount int // fetched, unrenamed
	robCount   int // renamed, uncommitted
	iqCount    int // bits set in a.iqBits (renamed & unissued)
	ldqCount   int
	stqCount   int
	freeRegs   int
	pvtCount   int

	lastWriter [64]uint64 // seq+1 of last in-flight writer per arch reg

	// PAQ ring cursors over a.paqBuf.
	paqHead uint32
	paqTail uint32

	fetchStallUntil uint64
	pendingFlush    flushReq
	flushPending    bool

	replayEpoch uint64 // selective-replay taint-mark epoch

	// eventWake re-activates every sleeping scheduler candidate next cycle;
	// set by the transitions that can create readiness out of band: an
	// issue, a VP install at rename, a selective replay, a flush.
	eventWake bool

	// Energy access counters (per-structure counts fed into the meter).
	prfReads  uint64
	prfWrites uint64
	pvtWrites uint64

	memIssuedThisCycle     int
	loadPortsFreeThisCycle int

	stats  metrics.RunStats
	meter  *energy.Meter
	emodel energy.CoreModel

	// Stage-trace capture (EnableStageTrace).
	stageTraces []StageTrace
	traceStart  uint64
	traceWant   int

	// Flight recorder (EnableTimeline). tl is nil when sampling is off;
	// tlCountdown counts committed instructions down to the next interval
	// boundary; tlPAQPeak tracks the high-water PAQ occupancy since the
	// last boundary.
	tl          *tline.Recorder
	tlCountdown uint64
	tlPAQPeak   int
	timeline    *tline.Timeline

	// Sample window (SetSampleWindow). wmRemaining counts committed
	// instructions down to the measured-region boundary; wmSnap holds
	// the cumulative counters at that boundary so MeasuredCounters can
	// subtract the warm-up contribution out of the final totals. A
	// bounded measured region counts down mdRemaining, snapshots
	// mdSnap at the closing commit, and raises stopReq so Run ends
	// without simulating (or measuring) the end-of-stream pipeline
	// drain.
	wmRemaining uint64
	wmArmed     bool
	wmDone      bool
	wmSnap      tline.Counters
	mdRemaining uint64
	mdBounded   bool
	mdDone      bool
	mdSnap      tline.Counters
	stopReq     bool

	// Per-load-site attribution (EnableSiteProfile). sp is nil when
	// profiling is off; the commit path then pays one nil check per
	// eligible instruction.
	sp          *siteprof.Collector
	siteProfile *siteprof.Profile
}

type paqEntry struct {
	seq       uint64
	addr      uint64
	way       int8
	allocated uint64
}

// New builds a core in configuration cfg for program p, streaming records
// from reader. reader must be a fresh stream positioned at the program
// entry (typically an *emu.CPU).
func New(cfg config.Core, p *program.Program, reader trace.Reader) *Core {
	return NewAtArena(cfg, p, reader, nil, nil)
}

// NewAt builds a core whose committed-memory image starts from cmem
// instead of the program image — the mid-stream form used by sampled
// simulation, where reader is a checkpoint-restored (and seq-rebased)
// emulator and cmem is the architectural memory at the restore offset.
// cmem is cloned, never mutated; nil selects the program image
// (equivalent to New). The probe-staleness model depends on this: a
// DLVP probe reads the committed image, so an interval starting
// mid-stream must see the memory the committed stream has produced so
// far, not the initial data segments.
func NewAt(cfg config.Core, p *program.Program, reader trace.Reader, cmem *emu.Memory) *Core {
	return NewAtArena(cfg, p, reader, cmem, nil)
}

// NewAtArena is NewAt with an explicit arena. Passing an arena recycled
// from a finished run (never one still in use — arenas are not
// concurrency-safe) reuses its memory, making back-to-back simulations
// allocation-free on the bulk state. nil allocates a fresh arena.
func NewAtArena(cfg config.Core, p *program.Program, reader trace.Reader, cmem *emu.Memory, a *Arena) *Core {
	mimg := emu.NewMemoryFromProgram(p)
	if cmem != nil {
		mimg = cmem.Clone()
	}
	if a == nil {
		a = NewArena()
	} else {
		a.reset()
	}
	c := &Core{
		cfg:    cfg,
		prog:   p,
		reader: reader,
		cmem:   mimg,
		a:      a,
		hier:   mem.NewHierarchy(cfg.Mem),
		tage:   branch.NewTAGE(cfg.TAGE),
		ittage: branch.NewITTAGE(cfg.ITTAGE),
		mdp:    mdp.New(cfg.MDP),
		meter:  energy.NewMeter(),
		emodel: energy.DefaultCoreModel(),
	}
	if ra, ok := reader.(trace.RandomAccess); ok {
		// Zero-copy replay: the stream length is known up front, so the
		// cursor starts at the end and the EOF flag is pre-set — done()
		// then reads identically to a drained streaming reader.
		c.ra = ra
		c.bufHi = ra.NumRecs()
		c.traceEOF = true
	}
	paqCap := cfg.PAQEntries
	if paqCap < 1 {
		paqCap = 1
	}
	if len(a.paqBuf) != paqCap { // the ring always keeps len == capacity
		a.paqBuf = make([]paqEntry, paqCap)
	}
	c.freeRegs = cfg.PhysRegs - 64
	switch cfg.VP.Scheme {
	case config.VPDLVP:
		c.papPred = pap.New(cfg.VP.PAP)
	case config.VPCAP:
		c.capPred = cap.New(cfg.VP.CAP)
	case config.VPVTAGE:
		c.vtPred = vtage.New(cfg.VP.VTAGE)
	case config.VPTournament:
		c.papPred = pap.New(cfg.VP.PAP)
		c.vtPred = vtage.New(cfg.VP.VTAGE)
		c.chooser = tournament.New(cfg.VP.Chooser)
	case config.VPDVTAGE:
		c.dvPred = dvtage.New(cfg.VP.DVTAGE)
	}
	if c.usesAddressPrediction() && cfg.VP.LSCDEntries > 0 {
		c.lscd = pap.NewLSCD(cfg.VP.LSCDEntries)
	}
	c.stats.Scheme = cfg.VP.Scheme.String()
	c.stats.Workload = p.Name
	return c
}

func (c *Core) usesAddressPrediction() bool {
	s := c.cfg.VP.Scheme
	return s == config.VPDLVP || s == config.VPCAP || s == config.VPTournament
}

// rec returns the trace record for an in-flight (or just-fetched) seq; the
// ring slot is valid for any seq in [bufHi-bufCap, bufHi).
func (c *Core) rec(seq uint64) *trace.Rec {
	if c.ra != nil {
		return c.ra.RecAt(seq)
	}
	return &c.a.buf[seq&bufMask]
}

// cold returns the cold column block for seq.
func (c *Core) cold(seq uint64) *coldState { return &c.a.w.cold[seq&windowMask] }

// live reports whether seq refers to an in-flight instruction.
func (c *Core) live(seq uint64) bool {
	if seq < c.headSeq || seq >= c.fetchSeq {
		return false
	}
	return c.a.w.flags[seq&windowMask]&fValid != 0
}

// Run simulates until the stream is exhausted and the pipeline drains, or
// maxCycles elapses (0 = unlimited), and returns the run statistics.
func (c *Core) Run(maxCycles uint64) metrics.RunStats {
	for {
		if maxCycles > 0 && c.now >= maxCycles {
			break
		}
		c.commitStage()
		if c.stopReq {
			// A bounded sample window closed at a commit this cycle;
			// everything past it (including the drain) is out of scope.
			break
		}
		c.executeStage()
		c.issueStage()
		c.probeStage()
		c.renameStage()
		c.fetchStage()
		c.applyFlush()
		if c.done() {
			break
		}
		c.now++
	}
	c.finalizeStats()
	return c.stats
}

func (c *Core) done() bool {
	if c.headSeq != c.fetchSeq {
		return false
	}
	if c.haltSeen {
		return true
	}
	// End of stream: nothing in flight AND nothing left to (re)fetch.
	return c.traceEOF && c.fetchSeq >= c.bufHi
}

// fill ensures the trace ring covers seq; returns false at end of stream.
// The reader writes records directly into ring slots (every Reader fully
// overwrites the record), so the steady state moves each record exactly
// once and allocates nothing.
func (c *Core) fill(seq uint64) bool {
	if seq+bufCap < c.bufHi {
		panic(fmt.Sprintf("uarch: trace rewound below ring (seq %d, next %d)", seq, c.bufHi))
	}
	for c.bufHi <= seq {
		if c.traceEOF {
			return false
		}
		if !c.reader.Next(&c.a.buf[c.bufHi&bufMask]) {
			c.traceEOF = true
			return false
		}
		c.bufHi++
	}
	return true
}

func (c *Core) recAt(seq uint64) *trace.Rec {
	if c.ra != nil {
		if seq >= c.bufHi { // bufHi == NumRecs in random-access mode
			return nil
		}
		return c.ra.RecAt(seq)
	}
	if !c.fill(seq) {
		return nil
	}
	return &c.a.buf[seq&bufMask]
}

// paqLen returns the PAQ occupancy.
func (c *Core) paqLen() int { return int(c.paqTail - c.paqHead) }

// paqAt returns the i-th PAQ entry from the front.
func (c *Core) paqAt(i int) *paqEntry {
	return &c.a.paqBuf[(int(c.paqHead)+i)%len(c.a.paqBuf)]
}

func (c *Core) finalizeStats() {
	c.stats.Cycles = c.now
	c.stats.L1DMissRate = c.hier.L1D.MissRate()
	c.stats.L2MissRate = c.hier.L2.MissRate()
	c.stats.TLBMissRate = c.hier.TLB.MissRate()
	c.stats.TLBMisses = c.hier.TLB.Misses
	c.stats.Probes = c.hier.Probes
	c.stats.ProbeHits = c.hier.ProbeHits
	c.stats.WayMispredicts = c.hier.WayMispredictions
	if c.lscd != nil {
		c.stats.LSCDFiltered = c.lscd.Filtered
		c.stats.LSCDInserts = c.lscd.Inserts
	}
	c.meterEnergy()
	c.stats.CoreEnergy = c.emodel.Total(c.stats.Cycles, c.stats.Instructions, c.meter)
	if c.tl != nil {
		c.tlSample(true)
	}
	if c.sp != nil {
		c.spFinish()
	}
}

// Stats returns the statistics accumulated so far (valid after Run).
func (c *Core) Stats() metrics.RunStats { return c.stats }
