package uarch

import (
	"testing"

	"dlvp/internal/config"
	tline "dlvp/internal/timeline"
	"dlvp/internal/workloads"
)

// runWithTimeline simulates a workload with flight-recorder sampling on and
// returns both products.
func runWithTimeline(t *testing.T, name string, cfg config.Core, instrs, interval uint64, capacity int) (*tline.Timeline, *Core) {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	c := New(cfg, w.Build(), w.Reader(instrs))
	c.EnableTimeline(interval, capacity)
	if s := c.Run(instrs * 100); s.Instructions == 0 {
		t.Fatalf("%s: nothing committed", name)
	}
	tl := c.Timeline()
	if tl == nil {
		t.Fatal("Timeline() = nil after a run with EnableTimeline")
	}
	return tl, c
}

// The sum of interval deltas must reconcile EXACTLY with the run's final
// aggregate statistics — the invariant the pairwise-merge downsampling was
// chosen to preserve. Exercised with a capacity small enough to force
// several merge generations.
func TestTimelineReconcilesWithRunStats(t *testing.T) {
	const instrs = 60_000
	tl, c := runWithTimeline(t, "mcf", config.DLVP(), instrs, 1_000, 8)
	s := c.Stats()
	if tl.Merges == 0 {
		t.Fatalf("expected downsampling at capacity 8 over %d intervals", instrs/1_000)
	}
	tot := tl.Totals()
	checks := []struct {
		name      string
		got, want uint64
	}{
		{"instructions", tot.Instructions, s.Instructions},
		{"cycles", tot.Cycles, s.Cycles},
		{"loads", tot.Loads, s.Loads},
		{"stores", tot.Stores, s.Stores},
		{"vp eligible", tot.VPEligible, s.VP.Eligible},
		{"vp predicted", tot.VPPredicted, s.VP.Predicted},
		{"vp correct", tot.VPCorrect, s.VP.Correct},
		{"value flushes", tot.ValueFlushes, s.ValueFlushes},
		{"branch flushes", tot.BranchFlushes, s.BranchFlushes},
		{"order flushes", tot.OrderFlushes, s.OrderFlushes},
		{"value replays", tot.ValueReplays, s.ValueReplays},
		{"paq allocated", tot.PAQAllocated, s.PAQAllocated},
		{"paq dropped", tot.PAQDropped, s.PAQDropped},
		{"paq full", tot.PAQFull, s.PAQFull},
		{"lscd inserts", tot.LSCDInserts, s.LSCDInserts},
		{"lscd filtered", tot.LSCDFiltered, s.LSCDFiltered},
		{"probes", tot.Probes, s.Probes},
		{"probe hits", tot.ProbeHits, s.ProbeHits},
		{"prefetches", tot.Prefetches, s.Prefetches},
		{"tlb misses", tot.TLBMisses, s.TLBMisses},
	}
	for _, chk := range checks {
		if chk.got != chk.want {
			t.Errorf("timeline total %s = %d, run stats say %d", chk.name, chk.got, chk.want)
		}
	}
	if tot.Instructions != instrs {
		t.Errorf("timeline instructions = %d, want the full budget %d", tot.Instructions, instrs)
	}
}

// Interval boundaries must land exactly every interval instructions, with
// the final (possibly shorter) tail recorded by Finish.
func TestTimelineIntervalBoundaries(t *testing.T) {
	const instrs, interval = 10_500, 1_000
	tl, _ := runWithTimeline(t, "perlbmk", config.DLVP(), instrs, interval, 0)
	if len(tl.Samples) != 11 {
		t.Fatalf("samples = %d, want 11 (10 full + tail)", len(tl.Samples))
	}
	for i, s := range tl.Samples[:10] {
		if s.Delta.Instructions != interval {
			t.Errorf("sample %d spans %d instrs, want %d", i, s.Delta.Instructions, interval)
		}
		if s.StartInstr != uint64(i)*interval {
			t.Errorf("sample %d starts at %d", i, s.StartInstr)
		}
	}
	if tail := tl.Samples[10]; tail.Delta.Instructions != 500 {
		t.Errorf("tail spans %d instrs, want 500", tail.Delta.Instructions)
	}
	if tl.Workload != "perlbmk" || tl.Scheme == "" {
		t.Errorf("timeline labels = %q/%q", tl.Workload, tl.Scheme)
	}
}

// A DLVP run must populate the predictor-specific series: APT activity,
// FPC confidence transitions, probes, and a nonzero PAQ high-water mark.
func TestTimelineRecordsPredictorSeries(t *testing.T) {
	const instrs = 60_000
	tl, _ := runWithTimeline(t, "mcf", config.DLVP(), instrs, 2_000, 0)
	tot := tl.Totals()
	if tot.APTLookups == 0 || tot.APTHits == 0 {
		t.Errorf("APT series empty: lookups=%d hits=%d", tot.APTLookups, tot.APTHits)
	}
	if tot.FPCBumps == 0 {
		t.Error("no FPC confidence bumps recorded")
	}
	if tot.Probes == 0 {
		t.Error("no probes recorded")
	}
	peak := 0
	for _, s := range tl.Samples {
		if s.PAQPeak > peak {
			peak = s.PAQPeak
		}
	}
	if peak == 0 {
		t.Error("PAQ high-water mark never rose above zero")
	}
}

// Sampling off (the default) must leave Timeline nil and behave identically
// to a run before this subsystem existed.
func TestTimelineOffByDefault(t *testing.T) {
	w, _ := workloads.ByName("perlbmk")
	c := New(config.DLVP(), w.Build(), w.Reader(5_000))
	c.Run(0)
	if c.Timeline() != nil {
		t.Error("Timeline() non-nil without EnableTimeline")
	}
}

// Timeline recording must not perturb the simulation itself: cycle counts
// and prediction outcomes are identical with and without the recorder.
func TestTimelineDoesNotPerturbSimulation(t *testing.T) {
	const instrs = 30_000
	w, _ := workloads.ByName("mcf")
	plain := New(config.DLVP(), w.Build(), w.Reader(instrs))
	sPlain := plain.Run(0)
	rec := New(config.DLVP(), w.Build(), w.Reader(instrs))
	rec.EnableTimeline(1_000, 16)
	sRec := rec.Run(0)
	if sPlain.Cycles != sRec.Cycles || sPlain.VP.Predicted != sRec.VP.Predicted ||
		sPlain.VP.Correct != sRec.VP.Correct || sPlain.CoreEnergy != sRec.CoreEnergy {
		t.Errorf("recorder perturbed the run: %d/%d cycles, %d/%d predicted",
			sPlain.Cycles, sRec.Cycles, sPlain.VP.Predicted, sRec.VP.Predicted)
	}
}

// benchRun is the common body of the overhead benchmarks: one full DLVP
// simulation, optionally sampled.
func benchRun(b *testing.B, sample bool) {
	const instrs = 50_000
	w, ok := workloads.ByName("mcf")
	if !ok {
		b.Fatal("workload mcf not registered")
	}
	p := w.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New(config.DLVP(), p, w.Reader(instrs))
		if sample {
			c.EnableTimeline(tline.DefaultIntervalInstrs, 0)
		}
		c.Run(0)
	}
}

// BenchmarkTimelineOverhead measures a full simulation with sampling on at
// the default interval; compare against BenchmarkTimelineBaseline (CI's
// bench-sanity step runs both). The acceptance budget is <1% slowdown:
//
//	go test -run - -bench 'BenchmarkTimeline(Overhead|Baseline)' ./internal/uarch/
func BenchmarkTimelineOverhead(b *testing.B) { benchRun(b, true) }

// BenchmarkTimelineBaseline is the sampling-off control.
func BenchmarkTimelineBaseline(b *testing.B) { benchRun(b, false) }
