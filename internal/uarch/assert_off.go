//go:build !uarchassert

package uarch

// assertEnabled gates the package's internal invariant checks. The default
// build compiles them out entirely; `go test -tags uarchassert` turns them
// into panics so a scheduler or bookkeeping regression fails loudly instead
// of silently perturbing statistics.
const assertEnabled = false
