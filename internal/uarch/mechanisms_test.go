package uarch

import (
	"testing"

	"dlvp/internal/config"
	"dlvp/internal/isa"
	"dlvp/internal/program"
)

// buildStoreLoadRace builds a program where a store's address depends on a
// slow computation while a younger load to the same address is immediately
// ready — the memory-ordering-violation shape the MDP exists for.
func buildStoreLoadRace() *program.Program {
	b := program.NewBuilder("race")
	base := b.AllocWords("cell", []uint64{7, 0, 0, 0, 0, 0, 0, 0})
	b.MovImm(2, base)
	b.MovImm(5, 1)
	b.MovImm(6, 3)
	b.Label("loop")
	// Slow address computation: chained multiplies ending at the base.
	b.Op3(isa.MUL, 3, 5, 6)
	b.Op3(isa.MUL, 3, 3, 5)
	b.Op3(isa.MUL, 3, 3, 5)
	b.Op3(isa.AND, 3, 3, isa.XZR) // = 0
	b.Add(3, 3, 2)                // = base, but late
	b.MovImm(4, 99)
	b.StrIdx(4, 3, isa.XZR, 0, 3) // store base <- 99 (address late)
	b.Ldr(7, 2, 0, 3)             // younger load of the same cell
	b.Add(8, 7, 7)
	b.Br("loop")
	return b.Build()
}

func TestOrderingViolationDetectedAndLearned(t *testing.T) {
	p := buildStoreLoadRace()
	s := runProgram(t, p, config.Baseline(), 20_000)
	if s.OrderFlushes == 0 {
		t.Fatal("no ordering violations detected on a store-load race")
	}
	// The MDP must learn: violations should be far rarer than loop
	// iterations (~2000 iterations at 10 instructions each).
	iterations := s.Instructions / 9
	if s.OrderFlushes > iterations/4 {
		t.Errorf("MDP never learned: %d violations over %d iterations",
			s.OrderFlushes, iterations)
	}
}

func TestStoreToLoadForwardingFasterThanCache(t *testing.T) {
	// A load that forwards from an in-flight store completes quickly; the
	// architectural result must be identical either way, so this is a pure
	// timing property: the forwarding program should not be slower than an
	// equivalent one without the reload.
	b := program.NewBuilder("fwd")
	base := b.Alloc("buf", 64)
	b.MovImm(1, base)
	b.MovImm(2, 5)
	b.Label("loop")
	b.Str(2, 1, 0, 3)
	b.Ldr(3, 1, 0, 3) // forwards from the store above
	b.Add(2, 3, 2)
	b.Br("loop")
	s := runProgram(t, b.Build(), config.Baseline(), 10_000)
	if s.Instructions == 0 {
		t.Fatal("nothing committed")
	}
	// Sanity: the loop sustains reasonable IPC despite the dependence.
	if s.IPC() < 0.3 {
		t.Errorf("forwarding loop IPC = %.3f, suspiciously slow", s.IPC())
	}
}

func TestPVTCapacityRespected(t *testing.T) {
	cfg := config.DLVP()
	cfg.PVTEntries = 2 // tiny PVT: most predictions must be dropped
	tiny := runWorkload(t, "linpack", cfg, 30_000)
	full := runWorkload(t, "linpack", config.DLVP(), 30_000)
	if tiny.VP.Predicted >= full.VP.Predicted {
		t.Errorf("tiny PVT predicted %d >= full PVT %d",
			tiny.VP.Predicted, full.VP.Predicted)
	}
	if tiny.VPDropPVTFull == 0 && tiny.VPDropBudget == 0 {
		t.Error("no capacity drops recorded with a 2-entry PVT")
	}
}

func TestPredictionsPerCycleBudget(t *testing.T) {
	cfg := config.DLVP()
	cfg.VP.MaxPredictionsPerCycle = 1
	one := runWorkload(t, "hmmer", cfg, 30_000)
	two := runWorkload(t, "hmmer", config.DLVP(), 30_000)
	if one.VP.Predicted > two.VP.Predicted {
		t.Errorf("1/cycle budget predicted more (%d) than 2/cycle (%d)",
			one.VP.Predicted, two.VP.Predicted)
	}
}

func TestVTAGEAllInstructionsMode(t *testing.T) {
	cfg := config.VTAGE()
	cfg.VP.VTAGE.LoadsOnly = false
	s := runWorkload(t, "gcc", cfg, 40_000)
	// All-instructions mode counts every value-producing instruction as
	// eligible, so the denominator must exceed the loads-only one.
	loads := runWorkload(t, "gcc", config.VTAGE(), 40_000)
	if s.VP.Eligible <= loads.VP.Eligible {
		t.Errorf("all-instr eligible %d <= loads-only %d",
			s.VP.Eligible, loads.VP.Eligible)
	}
	if s.VP.Predicted == 0 {
		t.Error("all-instructions VTAGE predicted nothing")
	}
}

func TestProbePrefetchAblation(t *testing.T) {
	on := config.DLVP()
	off := config.DLVP()
	off.VP.ProbePrefetch = false
	son := runWorkload(t, "bzip2", on, 40_000)
	soff := runWorkload(t, "bzip2", off, 40_000)
	if soff.Prefetches != 0 {
		t.Errorf("prefetch disabled but %d issued", soff.Prefetches)
	}
	_ = son // prefetch count with the feature on may legitimately be zero on L1-resident kernels
}

func TestWayPredictionDisabled(t *testing.T) {
	cfg := config.DLVP()
	cfg.VP.PAP.WayPredict = false
	s := runWorkload(t, "mcf", cfg, 30_000)
	if s.WayMispredicts != 0 {
		t.Errorf("way mispredictions counted with way prediction off: %d", s.WayMispredicts)
	}
	if s.VP.Predicted == 0 {
		t.Error("disabling way prediction must not kill coverage")
	}
}

func TestDeepCallChains(t *testing.T) {
	// Nested calls three deep, iterated; RAS must keep return prediction
	// accurate so branch flushes stay near zero.
	b := program.NewBuilder("calls")
	const lr1, lr2, lr3 = isa.Reg(29), isa.Reg(30), isa.Reg(15)
	b.MovImm(1, 0)
	b.Label("loop")
	b.Call("f1", lr1)
	b.AddI(1, 1, 1)
	b.Br("loop")
	b.Label("f1")
	b.Call("f2", lr2)
	b.Ret(lr1)
	b.Label("f2")
	b.Call("f3", lr3)
	b.Ret(lr2)
	b.Label("f3")
	b.AddI(2, 2, 1)
	b.Ret(lr3)
	s := runProgram(t, b.Build(), config.Baseline(), 20_000)
	// ~2000 call/return pairs; a broken RAS would flush on every return.
	if s.BranchFlushes > 100 {
		t.Errorf("branch flushes = %d with a functioning RAS", s.BranchFlushes)
	}
}

func TestOrderedLoadsNeverPredicted(t *testing.T) {
	s := runWorkload(t, "ttsprk", config.DLVP(), 30_000)
	// ttsprk's LDAR sensor reads are ineligible; predictions must come only
	// from the ordinary loads, and none of the LDAR values may be supplied
	// speculatively. (If an LDAR were predicted and stale, accuracy would
	// crater because the sensor drifts every pass.)
	if s.VP.Predicted == 0 {
		t.Fatal("ttsprk should still predict its ordinary loads")
	}
	if s.VP.Accuracy() < 95 {
		t.Errorf("accuracy %.2f%% suggests ordered loads leaked into prediction", s.VP.Accuracy())
	}
}

func TestWindowNeverExceedsROB(t *testing.T) {
	// Instructions in flight (renamed, uncommitted) must never exceed the
	// ROB; use a tiny ROB to stress the accounting.
	cfg := config.Baseline()
	cfg.ROBSize = 16
	s := runWorkload(t, "perlbmk", cfg, 20_000)
	if s.Instructions != 20_000 {
		t.Fatalf("committed %d, want all (deadlock with small ROB?)", s.Instructions)
	}
	big := runWorkload(t, "perlbmk", config.Baseline(), 20_000)
	if s.Cycles <= big.Cycles {
		t.Error("a 16-entry ROB should be slower than 224")
	}
}

func TestTinyQueuesStillDrain(t *testing.T) {
	cfg := config.DLVP()
	cfg.IQSize = 4
	cfg.LDQSize = 4
	cfg.STQSize = 4
	cfg.PAQEntries = 2
	cfg.PVTEntries = 2
	s := runWorkload(t, "vortex", cfg, 15_000)
	if s.Instructions != 15_000 {
		t.Fatalf("committed %d of 15000 with tiny queues", s.Instructions)
	}
}

func TestFreeRegistersBound(t *testing.T) {
	// With barely more physical registers than architectural ones, rename
	// stalls hard but the machine must not deadlock or miscount.
	cfg := config.Baseline()
	cfg.PhysRegs = 64 + 8
	s := runWorkload(t, "gcc", cfg, 15_000)
	if s.Instructions != 15_000 {
		t.Fatalf("committed %d of 15000 with 8 spare registers", s.Instructions)
	}
}

func TestDVTAGESchemeRuns(t *testing.T) {
	// D-VTAGE's differential design should track drifting-but-strided
	// values: mcf's alpha cell increments by a constant every pass.
	s := runWorkload(t, "mcf", config.DVTAGE(), 40_000)
	if s.VP.Predicted == 0 {
		t.Fatal("D-VTAGE made no predictions")
	}
	if s.VP.Accuracy() < 90 {
		t.Errorf("D-VTAGE accuracy = %.2f%%", s.VP.Accuracy())
	}
	// Plain VTAGE cannot follow the drifting values at all.
	v := runWorkload(t, "mcf", config.VTAGE(), 40_000)
	if s.VP.Coverage() <= v.VP.Coverage() {
		t.Errorf("D-VTAGE coverage (%.1f%%) should beat VTAGE (%.1f%%) on strided values",
			s.VP.Coverage(), v.VP.Coverage())
	}
}
