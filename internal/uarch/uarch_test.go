package uarch

import (
	"testing"

	"dlvp/internal/config"
	"dlvp/internal/emu"
	"dlvp/internal/metrics"
	"dlvp/internal/program"
	"dlvp/internal/workloads"
)

func runWorkload(t *testing.T, name string, cfg config.Core, instrs uint64) metrics.RunStats {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	c := New(cfg, w.Build(), w.Reader(instrs))
	stats := c.Run(instrs * 100)
	if stats.Instructions == 0 {
		t.Fatalf("%s: nothing committed", name)
	}
	return stats
}

func runProgram(t *testing.T, p *program.Program, cfg config.Core, instrs uint64) metrics.RunStats {
	t.Helper()
	cpu := emu.New(p)
	cpu.MaxInstrs = instrs
	c := New(cfg, p, cpu)
	return c.Run(instrs * 200)
}

func TestBaselineCommitsEverything(t *testing.T) {
	const n = 20_000
	s := runWorkload(t, "perlbmk", config.Baseline(), n)
	if s.Instructions != n {
		t.Errorf("committed %d, want %d", s.Instructions, n)
	}
	ipc := s.IPC()
	if ipc < 0.2 || ipc > 8 {
		t.Errorf("baseline IPC = %v, outside sanity band", ipc)
	}
	if s.Loads == 0 || s.Stores == 0 {
		t.Errorf("loads/stores = %d/%d", s.Loads, s.Stores)
	}
}

func TestHaltingProgramDrains(t *testing.T) {
	b := program.NewBuilder("tiny")
	b.MovImm(0, 5)
	b.Label("loop")
	b.SubI(0, 0, 1)
	b.Cbnz(0, "loop")
	b.Halt()
	s := runProgram(t, b.Build(), config.Baseline(), 1_000_000)
	if s.Instructions != 13 { // 1 movz + 5*2 loop + 1 halt... (movz + 10 + halt = 12)
		// 1 + 10 + 1 = 12
		if s.Instructions != 12 {
			t.Errorf("committed %d, want 12", s.Instructions)
		}
	}
	if s.Cycles == 0 {
		t.Error("no cycles elapsed")
	}
}

func TestDeterminism(t *testing.T) {
	a := runWorkload(t, "mcf", config.DLVP(), 15_000)
	b := runWorkload(t, "mcf", config.DLVP(), 15_000)
	if a.Cycles != b.Cycles || a.VP.Predicted != b.VP.Predicted {
		t.Errorf("nondeterministic: %d/%d cycles, %d/%d predictions",
			a.Cycles, b.Cycles, a.VP.Predicted, b.VP.Predicted)
	}
}

func TestDLVPPredictsStableAddresses(t *testing.T) {
	const n = 60_000
	dlvp := runWorkload(t, "mcf", config.DLVP(), n)
	if dlvp.VP.Predicted == 0 {
		t.Fatal("DLVP made no predictions on an address-stable workload")
	}
	if acc := dlvp.VP.Accuracy(); acc < 95 {
		t.Errorf("DLVP accuracy = %v%%, want >= 95%%", acc)
	}
	if cov := dlvp.VP.Coverage(); cov < 8 {
		t.Errorf("DLVP coverage = %v%%, want >= 8%%", cov)
	}
}

func TestDLVPSpeedsUpSerialChains(t *testing.T) {
	// perlbmk is the paper's headline workload: a serial, address-stable
	// pointer chase with dependent branches.
	const n = 60_000
	base := runWorkload(t, "perlbmk", config.Baseline(), n)
	dlvp := runWorkload(t, "perlbmk", config.DLVP(), n)
	sp := metrics.SpeedupPct(base, dlvp)
	if sp < 5 {
		t.Errorf("DLVP speedup on perlbmk = %v%%, want substantial", sp)
	}
	vt := runWorkload(t, "perlbmk", config.VTAGE(), n)
	if spv := metrics.SpeedupPct(base, vt); spv >= sp {
		t.Errorf("VTAGE speedup (%v%%) should trail DLVP (%v%%) on perlbmk", spv, sp)
	}
	t.Logf("perlbmk: base IPC %.3f, dlvp %+.1f%%, cov %.1f%%, acc %.2f%%",
		base.IPC(), sp, dlvp.VP.Coverage(), dlvp.VP.Accuracy())
}

func TestLSCDFiltersInFlightConflicts(t *testing.T) {
	const n = 40_000
	base := runWorkload(t, "gap", config.Baseline(), n)
	s := runWorkload(t, "gap", config.DLVP(), n)
	// gap's pops conflict with in-flight pushes: the LSCD must blacklist
	// them after at most a few mispredictions each, so value flushes stay
	// bounded and DLVP ends up roughly performance-neutral.
	if s.LSCDInserts == 0 {
		t.Error("gap must trigger LSCD inserts (in-flight store conflicts)")
	}
	if s.LSCDFiltered == 0 {
		t.Error("LSCD inserted but never filtered")
	}
	if s.ValueFlushes > 50 {
		t.Errorf("value flushes = %d; LSCD should cap the storm", s.ValueFlushes)
	}
	if slow := metrics.SpeedupPct(base, s); slow < -3 {
		t.Errorf("DLVP with LSCD degraded gap by %v%%", -slow)
	}
}

func TestLSCDDisabledHurtsAccuracy(t *testing.T) {
	const n = 40_000
	on := config.DLVP()
	off := config.DLVP()
	off.VP.LSCDEntries = 0
	son := runWorkload(t, "gap", on, n)
	soff := runWorkload(t, "gap", off, n)
	if soff.ValueFlushes < son.ValueFlushes {
		t.Errorf("disabling LSCD should not reduce value flushes: %d (off) vs %d (on)",
			soff.ValueFlushes, son.ValueFlushes)
	}
}

func TestVTAGERunsAndPredicts(t *testing.T) {
	const n = 60_000
	s := runWorkload(t, "gcc", config.VTAGE(), n)
	if s.VP.Predicted == 0 {
		t.Fatal("VTAGE made no predictions")
	}
	if s.VP.Accuracy() < 90 {
		t.Errorf("VTAGE accuracy = %v%%", s.VP.Accuracy())
	}
}

func TestCAPSchemeRuns(t *testing.T) {
	const n = 40_000
	s := runWorkload(t, "mcf", config.CAPDLVP(), n)
	if s.VP.Predicted == 0 {
		t.Fatal("CAP-DLVP made no predictions on mcf")
	}
}

func TestTournamentRuns(t *testing.T) {
	const n = 40_000
	s := runWorkload(t, "mcf", config.Tournament(), n)
	if s.VP.Predicted == 0 {
		t.Fatal("tournament made no predictions")
	}
	if s.TournamentDLVP+s.TournamentVTAGE != s.VP.Predicted {
		t.Errorf("breakdown %d+%d != predicted %d",
			s.TournamentDLVP, s.TournamentVTAGE, s.VP.Predicted)
	}
}

func TestOracleReplayNeverFlushesOnValue(t *testing.T) {
	const n = 40_000
	cfg := config.DLVP()
	cfg.VP.OracleReplay = true
	s := runWorkload(t, "gap", cfg, n)
	if s.ValueFlushes != 0 {
		t.Errorf("oracle replay must eliminate value flushes, got %d", s.ValueFlushes)
	}
}

func TestOracleReplayNoSlowerThanFlush(t *testing.T) {
	const n = 40_000
	for _, wl := range []string{"gap", "mcf", "twolf"} {
		flush := runWorkload(t, wl, config.DLVP(), n)
		cfg := config.DLVP()
		cfg.VP.OracleReplay = true
		oracle := runWorkload(t, wl, cfg, n)
		if oracle.Cycles > flush.Cycles+flush.Cycles/50 {
			t.Errorf("%s: oracle replay slower than flush: %d vs %d cycles",
				wl, oracle.Cycles, flush.Cycles)
		}
	}
}

func TestPAQDropRateLow(t *testing.T) {
	const n = 60_000
	s := runWorkload(t, "mcf", config.DLVP(), n)
	if s.PAQAllocated == 0 {
		t.Fatal("no PAQ allocations")
	}
	// The paper reports <0.1% drops on its workload mix; these kernels are
	// far denser in loads, so load-store lane bubbles are scarcer. The rate
	// must still stay well below half, or probing is starved.
	if rate := s.PAQDropRate(); rate > 40 {
		t.Errorf("PAQ drop rate = %v%%: probe engine starved", rate)
	}
}

func TestSchemesCommitIdenticalInstructionCounts(t *testing.T) {
	// Value prediction must never change architectural behaviour — only
	// timing. Every scheme commits exactly the same instruction stream.
	const n = 25_000
	var counts []uint64
	for _, cfg := range []config.Core{
		config.Baseline(), config.DLVP(), config.CAPDLVP(),
		config.VTAGE(), config.Tournament(),
	} {
		s := runWorkload(t, "perlbmk", cfg, n)
		counts = append(counts, s.Instructions)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			t.Fatalf("scheme %d committed %d instructions, baseline %d",
				i, counts[i], counts[0])
		}
	}
}

func TestEnergyAccounted(t *testing.T) {
	s := runWorkload(t, "vortex", config.DLVP(), 20_000)
	if s.CoreEnergy <= 0 {
		t.Error("core energy not accounted")
	}
	if s.Probes == 0 {
		t.Error("no probes recorded on an address-stable workload")
	}
}

func TestBranchMispredictsTracked(t *testing.T) {
	s := runWorkload(t, "twolf", config.Baseline(), 30_000)
	if s.BranchFlushes == 0 {
		t.Error("twolf's data-dependent branches must mispredict sometimes")
	}
}

func TestMultiDestLoadsPredicted(t *testing.T) {
	// vortex is LDP-heavy: DLVP predicts both destinations from one APT
	// entry; coverage should be substantial.
	s := runWorkload(t, "vortex", config.DLVP(), 40_000)
	if cov := s.VP.Coverage(); cov < 10 {
		t.Errorf("LDP coverage under DLVP = %v%%", cov)
	}
	// VTAGE with the static filter must have predicted none of the LDPs —
	// but vortex still has a couple of scalar loads, so just check it ran.
	sv := runWorkload(t, "vortex", config.VTAGE(), 40_000)
	if sv.VP.Coverage() > s.VP.Coverage() {
		t.Errorf("static-filtered VTAGE out-covered DLVP on LDP workload: %v%% vs %v%%",
			sv.VP.Coverage(), s.VP.Coverage())
	}
}

func TestRunHonoursMaxCycles(t *testing.T) {
	w, _ := workloads.ByName("perlbmk")
	c := New(config.Baseline(), w.Build(), w.Reader(1_000_000))
	s := c.Run(5_000)
	if s.Cycles > 5_000 {
		t.Errorf("ran %d cycles, cap 5000", s.Cycles)
	}
}

// mustWorkload fetches a registered workload or fails the test.
func mustWorkload(t *testing.T, name string) workloads.Workload {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	return w
}
