package uarch

import (
	tline "dlvp/internal/timeline"
)

// SetSampleWindow marks the first warmup committed instructions of the
// run as warm-up and the following measured committed instructions as
// the measured region. The core simulates the warm-up normally —
// predictors, caches, the branch history and the LSCD all train — but
// its statistics are excluded from MeasuredCounters. The exclusion uses
// the timeline delta machinery (cumulative snapshots at both region
// boundaries, subtracted), so measured counters are exactly what a
// flight-recorder interval over the measured region would report and
// sums across sampling intervals stay reconcilable.
//
// With measured > 0 the window is bounded: at the commit that closes
// it the core snapshots the counters and stops simulating, so the
// end-of-stream pipeline drain is neither paid for nor measured —
// short sampled intervals would otherwise amortise a full drain into
// every window and bias IPC low. Feed the core a stream extending
// beyond the window (the sampling driver adds slack) so the closing
// commit happens at full pipeline occupancy. measured == 0 leaves the
// window open to the end of the stream, drain included.
//
// Call before Run. With warmup == 0 the measured region starts
// immediately. When the stream ends before the window completes,
// MeasuredCounters reports that via its second return value.
func (c *Core) SetSampleWindow(warmup, measured uint64) {
	c.wmArmed = true
	c.wmRemaining = warmup
	c.wmDone = warmup == 0
	c.mdRemaining = measured
	c.mdBounded = measured > 0
	c.mdDone = false
}

// wmTick is called once per committed instruction while a sample window
// is armed and open; it snapshots the cumulative counters at both
// region boundaries and requests a stop when a bounded window closes.
func (c *Core) wmTick() {
	if c.wmRemaining > 0 {
		c.wmRemaining--
		if c.wmRemaining == 0 {
			c.tlCumulative(&c.wmSnap)
			c.wmDone = true
		}
		return
	}
	if !c.mdBounded {
		return
	}
	c.mdRemaining--
	if c.mdRemaining == 0 {
		c.tlCumulative(&c.mdSnap)
		c.mdDone = true
		c.stopReq = true
	}
}

// MeasuredCounters returns the counter deltas accumulated over the
// measured region (valid after Run) and whether the window actually
// completed: the warm-up boundary was reached and, for a bounded
// window, the closing commit happened before the stream ended. Without
// SetSampleWindow it returns the whole run's counters.
func (c *Core) MeasuredCounters() (tline.Counters, bool) {
	if c.wmArmed && !c.wmDone {
		return tline.Counters{}, false
	}
	if c.mdBounded {
		if !c.mdDone {
			return tline.Counters{}, false
		}
		return c.mdSnap.Sub(c.wmSnap), true
	}
	var cum tline.Counters
	c.tlCumulative(&cum)
	return cum.Sub(c.wmSnap), true
}
