package uarch

import (
	"dlvp/internal/isa"
	"dlvp/internal/predictor/dvtage"
	"dlvp/internal/predictor/vtage"
	"dlvp/internal/trace"
)

// fetchStage models the in-order front end: one fetch group per cycle (up
// to FetchWidth instructions, ending at a taken branch), branch prediction
// with speculative history updates, and — for DLVP — fetch-time address
// prediction of up to two loads per group keyed by the fetch group address.
func (c *Core) fetchStage() {
	if c.now < c.fetchStallUntil || c.haltSeen {
		return
	}
	groupStart := true
	var groupExtra int
	lphistAtGroup := uint64(0)
	if c.papPred != nil {
		lphistAtGroup = c.papPred.HistorySnapshot()
	}
	fga := uint64(0)
	loadsInGroup := 0

	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.frontCount >= frontQCap || c.fetchSeq-c.headSeq >= windowCap-8 {
			return
		}
		rec := c.recAt(c.fetchSeq)
		if rec == nil {
			return // trace exhausted
		}
		if groupStart {
			fga = rec.PC
			groupExtra = c.hier.Fetch(c.now, fga)
			groupStart = false
		}

		e := c.ent(c.fetchSeq)
		*e = entry{rec: *rec, valid: true, fetchCycle: c.now}
		e.renameReady = c.now + uint64(c.cfg.FrontLatency) + uint64(groupExtra)

		// Register dependencies against the last in-flight writers.
		for i := 0; i < int(rec.NSrc); i++ {
			e.deps[i] = c.lastWriter[rec.Src[i]]
		}

		// Branch prediction.
		stall := false
		if rec.Op.IsBranch() {
			stall = c.fetchBranch(e, rec)
		}

		// Load handling: MDP consultation, load-path history, address and
		// value prediction.
		if rec.IsLoad() {
			e.mdpWait = c.mdp.ShouldWait(rec.PC) || rec.Op.IsOrdered()
			c.fetchAddressPrediction(e, rec, fga, lphistAtGroup, loadsInGroup)
			loadsInGroup++
			if c.papPred != nil {
				c.papPred.PushLoad(rec.PC)
			}
		}
		if c.vtPred != nil {
			c.fetchVTAGE(e, rec)
		}
		if c.dvPred != nil {
			c.fetchDVTAGE(e, rec)
		}
		if rec.IsStore() {
			c.pendingStores = append(c.pendingStores, rec.Seq)
		}

		// Update the in-flight writer map and take recovery snapshots.
		nd := int(rec.NDst)
		for j := 0; j < nd; j++ {
			c.lastWriter[rec.Dst[j]] = rec.Seq + 1
		}
		e.ghistAfter = c.ghist.Value()
		if rec.Op.IsCondBranch() {
			// The post-instruction snapshot must hold the *actual* outcome
			// so that squash recovery repairs a wrongly speculated bit.
			e.ghistAfter = e.ghistBefore<<1 | b2u(rec.Taken)
		}
		if c.papPred != nil {
			e.lphistAfter = c.papPred.HistorySnapshot()
		}

		c.frontCount++
		c.fetchSeq++
		if rec.Op == isa.HALT {
			c.haltSeen = true
			c.haltSeq = rec.Seq
			return
		}
		if stall {
			// Mispredicted branch: the front end cannot follow the wrong
			// path in a trace-driven model; stall until resolution.
			c.fetchStallUntil = ^uint64(0) >> 1
			return
		}
		if rec.Op.IsBranch() && rec.Taken {
			// Correctly predicted taken branch ends the fetch group.
			return
		}
	}
}

// fetchBranch predicts the branch in e, updates speculative state, and
// reports whether the front end must stall (misprediction).
func (c *Core) fetchBranch(e *entry, rec *trace.Rec) bool {
	e.ghistBefore = c.ghist.Value()
	mispredict := false
	switch rec.Op.Class() {
	case isa.ClassBr:
		if rec.Op.IsCondBranch() {
			pred := c.tage.Predict(rec.PC, e.ghistBefore)
			mispredict = pred != rec.Taken
			// Speculative history receives the predicted bit; recovery later
			// repairs it with the actual outcome (see fetchStage).
			c.ghist.Push(pred)
		}
		// Unconditional B: target known at decode, no misprediction.
	case isa.ClassCall:
		c.ras.Push(rec.PC + 4)
		e.rasAfter = c.ras.Snapshot()
		e.hasRasAfter = true
	case isa.ClassRet:
		tgt, ok := c.ras.Pop()
		e.rasAfter = c.ras.Snapshot()
		e.hasRasAfter = true
		mispredict = !ok || tgt != rec.Target
	case isa.ClassJmp:
		tgt, ok := c.ittage.Predict(rec.PC, e.ghistBefore)
		mispredict = !ok || tgt != rec.Target
	}
	e.brMispredict = mispredict
	return mispredict
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// fetchAddressPrediction probes the configured address predictor for a load
// at fetch (DLVP step 1) and enqueues a confident prediction into the PAQ
// (step 2). Only the first two loads of a fetch group are predicted, keyed
// by the fetch group address (the paper's FGA proxy); memory-ordering
// loads and LSCD-blacklisted loads are excluded.
func (c *Core) fetchAddressPrediction(e *entry, rec *trace.Rec, fga, lphist uint64, loadIdx int) {
	if !c.usesAddressPrediction() {
		return
	}
	if rec.Op.IsOrdered() {
		return
	}
	if loadIdx >= 2 {
		c.stats.GroupSlotMissed++
		return
	}
	if c.lscd != nil && c.lscd.Contains(rec.PC) {
		e.lscdSkip = true
		return
	}
	var addr uint64
	var way int8 = -1
	confident := false
	switch {
	case c.papPred != nil:
		// The paper indexes with the fetch group address as a proxy for the
		// load PC (their fetch groups are aligned, making the FGA stable per
		// static load). This front end forms groups at arbitrary boundaries,
		// so the load PC itself is the faithful equivalent of that stable
		// key; the two-loads-per-group limit still applies.
		_ = fga
		e.papLk = c.papPred.LookupWith(rec.PC, lphist)
		e.papLkValid = true
		addr, way, confident = e.papLk.Addr, e.papLk.Way, e.papLk.Confident
	case c.capPred != nil:
		e.capLk = c.capPred.Lookup(rec.PC)
		e.capLkValid = true
		addr, confident = e.capLk.Addr, e.capLk.Confident
	}
	if !confident {
		return
	}
	if len(c.paq) >= c.cfg.PAQEntries {
		c.stats.PAQFull++
		return // PAQ full: prediction lost
	}
	c.paq = append(c.paq, paqEntry{
		seq: rec.Seq, addr: addr, way: way,
		// One cycle for prediction, one to ship to the back end.
		allocated: c.now + 2,
	})
	e.paqIssued = true
	c.stats.PAQAllocated++
	if c.tl != nil && len(c.paq) > c.tlPAQPeak {
		c.tlPAQPeak = len(c.paq)
	}
}

// fetchDVTAGE makes fetch-time D-VTAGE predictions, reusing the VTAGE
// per-destination plumbing (vtVals/vtValid feed the same VPE install path).
func (c *Core) fetchDVTAGE(e *entry, rec *trace.Rec) {
	nd := int(rec.NDst)
	if nd > trace.MaxDests {
		nd = trace.MaxDests
	}
	if !c.dvPred.Eligible(rec.Op, nd) {
		return
	}
	hist := c.ghist.Value()
	e.dvLks = make([]dvtage.Lookup, nd)
	for j := 0; j < nd; j++ {
		lk := c.dvPred.PredictWith(rec.PC, j, hist)
		e.dvLks[j] = lk
		if lk.Confident {
			e.vtValid[j] = true
			e.vtVals[j] = lk.Value
			e.vtAny = true
		}
	}
}

// fetchVTAGE makes fetch-time VTAGE predictions for every destination of an
// eligible instruction, using the branch history at fetch.
func (c *Core) fetchVTAGE(e *entry, rec *trace.Rec) {
	nd := int(rec.NDst)
	if nd > trace.MaxDests {
		nd = trace.MaxDests
	}
	if !c.vtPred.Eligible(rec.Op, nd) {
		return
	}
	hist := c.ghist.Value()
	e.vtLks = make([]vtage.Lookup, nd)
	for j := 0; j < nd; j++ {
		lk := c.vtPred.PredictWith(rec.PC, j, hist)
		e.vtLks[j] = lk
		if lk.Confident {
			e.vtValid[j] = true
			e.vtVals[j] = lk.Value
			e.vtAny = true
		}
	}
}
