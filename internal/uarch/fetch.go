package uarch

import (
	"dlvp/internal/isa"
	"dlvp/internal/trace"
)

// fetchStage models the in-order front end: one fetch group per cycle (up
// to FetchWidth instructions, ending at a taken branch), branch prediction
// with speculative history updates, and — for DLVP — fetch-time address
// prediction of up to two loads per group keyed by the fetch group address.
func (c *Core) fetchStage() {
	if c.now < c.fetchStallUntil || c.haltSeen {
		return
	}
	groupStart := true
	var groupExtra int
	lphistAtGroup := uint64(0)
	if c.papPred != nil {
		lphistAtGroup = c.papPred.HistorySnapshot()
	}
	fga := uint64(0)
	loadsInGroup := 0
	w := &c.a.w

	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.frontCount >= frontQCap || c.fetchSeq-c.headSeq >= windowCap-8 {
			return
		}
		rec := c.recAt(c.fetchSeq)
		if rec == nil {
			return // trace exhausted
		}
		if groupStart {
			fga = rec.PC
			groupExtra = c.hier.Fetch(c.now, fga)
			groupStart = false
		}

		seq := c.fetchSeq
		slot := seq & windowMask
		fl := fValid
		if rec.IsLoad() {
			fl |= fIsLoad
		} else if rec.IsStore() {
			fl |= fIsStore
		}
		w.flags[slot] = fl
		w.fetchCycle[slot] = c.now
		w.notBefore[slot] = 0
		c.a.waiters[slot] = c.a.waiters[slot][:0] // drop a squashed occupant's sleepers
		w.renameReady[slot] = c.now + uint64(c.cfg.FrontLatency) + uint64(groupExtra)

		// Register dependencies against the last in-flight writers. Unused
		// source slots are zeroed so the scheduler can scan all of them.
		w.deps[slot] = [trace.MaxSrcs]uint64{}
		for i := 0; i < int(rec.NSrc); i++ {
			w.deps[slot][i] = c.lastWriter[rec.Src[i]]
		}

		// Branch prediction.
		stall := false
		if rec.Op.IsBranch() {
			stall = c.fetchBranch(seq, rec)
		}

		// Load handling: MDP consultation, load-path history, address and
		// value prediction.
		if rec.IsLoad() {
			if c.mdp.ShouldWait(rec.PC) || rec.Op.IsOrdered() {
				w.flags[slot] |= fMdpWait
			}
			c.fetchAddressPrediction(seq, rec, fga, lphistAtGroup, loadsInGroup)
			loadsInGroup++
			if c.papPred != nil {
				c.papPred.PushLoad(rec.PC)
			}
			c.a.ldqIdx.push(seq)
		}
		if c.vtPred != nil {
			c.fetchVTAGE(seq, rec)
		}
		if c.dvPred != nil {
			c.fetchDVTAGE(seq, rec)
		}
		if rec.IsStore() {
			c.a.pendingStores = append(c.a.pendingStores, seq)
			c.a.stqIdx.push(seq)
		}

		// Update the in-flight writer map and take recovery snapshots.
		nd := int(rec.NDst)
		for j := 0; j < nd; j++ {
			c.lastWriter[rec.Dst[j]] = seq + 1
		}
		w.ghistAfter[slot] = c.ghist.Value()
		if rec.Op.IsCondBranch() {
			// The post-instruction snapshot must hold the *actual* outcome
			// so that squash recovery repairs a wrongly speculated bit.
			w.ghistAfter[slot] = w.ghistBefore[slot]<<1 | b2u(rec.Taken)
		}
		lph := uint64(0)
		if c.papPred != nil {
			lph = c.papPred.HistorySnapshot()
		}
		w.lphistAfter[slot] = lph

		c.frontCount++
		c.fetchSeq++
		if rec.Op == isa.HALT {
			c.haltSeen = true
			c.haltSeq = seq
			return
		}
		if stall {
			// Mispredicted branch: the front end cannot follow the wrong
			// path in a trace-driven model; stall until resolution.
			c.fetchStallUntil = ^uint64(0) >> 1
			return
		}
		if rec.Op.IsBranch() && rec.Taken {
			// Correctly predicted taken branch ends the fetch group.
			return
		}
	}
}

// fetchBranch predicts the branch, updates speculative state, and reports
// whether the front end must stall (misprediction).
func (c *Core) fetchBranch(seq uint64, rec *trace.Rec) bool {
	w := &c.a.w
	slot := seq & windowMask
	before := c.ghist.Value()
	w.ghistBefore[slot] = before
	mispredict := false
	switch rec.Op.Class() {
	case isa.ClassBr:
		if rec.Op.IsCondBranch() {
			pred := c.tage.PredictLk(&c.cold(seq).tageLk, rec.PC, before)
			mispredict = pred != rec.Taken
			// Speculative history receives the predicted bit; recovery later
			// repairs it with the actual outcome (see fetchStage).
			c.ghist.Push(pred)
		}
		// Unconditional B: target known at decode, no misprediction.
	case isa.ClassCall:
		c.ras.Push(rec.PC + 4)
		c.cold(seq).rasAfter = c.ras.Snapshot()
		w.flags[slot] |= fHasRasAfter
	case isa.ClassRet:
		tgt, ok := c.ras.Pop()
		c.cold(seq).rasAfter = c.ras.Snapshot()
		w.flags[slot] |= fHasRasAfter
		mispredict = !ok || tgt != rec.Target
	case isa.ClassJmp:
		tgt, ok := c.ittage.Predict(rec.PC, before)
		mispredict = !ok || tgt != rec.Target
	}
	if mispredict {
		w.flags[slot] |= fBrMispredict
	}
	return mispredict
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// fetchAddressPrediction probes the configured address predictor for a load
// at fetch (DLVP step 1) and enqueues a confident prediction into the PAQ
// (step 2). Only the first two loads of a fetch group are predicted, keyed
// by the fetch group address (the paper's FGA proxy); memory-ordering
// loads and LSCD-blacklisted loads are excluded.
func (c *Core) fetchAddressPrediction(seq uint64, rec *trace.Rec, fga, lphist uint64, loadIdx int) {
	if !c.usesAddressPrediction() {
		return
	}
	if rec.Op.IsOrdered() {
		return
	}
	if loadIdx >= 2 {
		c.stats.GroupSlotMissed++
		return
	}
	w := &c.a.w
	slot := seq & windowMask
	if c.lscd != nil && c.lscd.Contains(rec.PC) {
		w.flags[slot] |= fLscdSkip
		return
	}
	cd := c.cold(seq)
	var addr uint64
	var way int8 = -1
	confident := false
	switch {
	case c.papPred != nil:
		// The paper indexes with the fetch group address as a proxy for the
		// load PC (their fetch groups are aligned, making the FGA stable per
		// static load). This front end forms groups at arbitrary boundaries,
		// so the load PC itself is the faithful equivalent of that stable
		// key; the two-loads-per-group limit still applies.
		_ = fga
		cd.papLk = c.papPred.LookupWith(rec.PC, lphist)
		w.flags[slot] |= fPapLkValid
		addr, way, confident = cd.papLk.Addr, cd.papLk.Way, cd.papLk.Confident
	case c.capPred != nil:
		cd.capLk = c.capPred.Lookup(rec.PC)
		w.flags[slot] |= fCapLkValid
		addr, confident = cd.capLk.Addr, cd.capLk.Confident
	}
	if !confident {
		return
	}
	if c.paqLen() >= c.cfg.PAQEntries {
		c.stats.PAQFull++
		return // PAQ full: prediction lost
	}
	*c.paqAt(c.paqLen()) = paqEntry{
		seq: seq, addr: addr, way: way,
		// One cycle for prediction, one to ship to the back end.
		allocated: c.now + 2,
	}
	c.paqTail++
	w.flags[slot] |= fPaqIssued
	c.stats.PAQAllocated++
	if c.tl != nil && c.paqLen() > c.tlPAQPeak {
		c.tlPAQPeak = c.paqLen()
	}
}

// fetchDVTAGE makes fetch-time D-VTAGE predictions, reusing the VTAGE
// per-destination plumbing (vtVals/vtValid feed the same VPE install path).
func (c *Core) fetchDVTAGE(seq uint64, rec *trace.Rec) {
	cd := c.cold(seq)
	cd.dvLks = cd.dvLks[:0]
	nd := int(rec.NDst)
	if nd > trace.MaxDests {
		nd = trace.MaxDests
	}
	if !c.dvPred.Eligible(rec.Op, nd) {
		return
	}
	hist := c.ghist.Value()
	for j := 0; j < nd; j++ {
		lk := c.dvPred.PredictWith(rec.PC, j, hist)
		cd.dvLks = append(cd.dvLks, lk)
		cd.vtValid[j] = lk.Confident
		cd.vtVals[j] = lk.Value
		if lk.Confident {
			c.a.w.flags[seq&windowMask] |= fVtAny
		}
	}
}

// fetchVTAGE makes fetch-time VTAGE predictions for every destination of an
// eligible instruction, using the branch history at fetch.
func (c *Core) fetchVTAGE(seq uint64, rec *trace.Rec) {
	cd := c.cold(seq)
	cd.vtLks = cd.vtLks[:0]
	nd := int(rec.NDst)
	if nd > trace.MaxDests {
		nd = trace.MaxDests
	}
	if !c.vtPred.Eligible(rec.Op, nd) {
		return
	}
	hist := c.ghist.Value()
	for j := 0; j < nd; j++ {
		lk := c.vtPred.PredictWith(rec.PC, j, hist)
		cd.vtLks = append(cd.vtLks, lk)
		cd.vtValid[j] = lk.Confident
		cd.vtVals[j] = lk.Value
		if lk.Confident {
			c.a.w.flags[seq&windowMask] |= fVtAny
		}
	}
}
