package uarch

import (
	"testing"

	"dlvp/internal/config"
	"dlvp/internal/isa"
	"dlvp/internal/program"
)

// buildCallsWithConflicts interleaves nested calls with a value-predictable
// load that keeps mispredicting: value flushes repeatedly squash in-flight
// calls and returns, exercising RAS snapshot restoration. If the RAS were
// corrupted by squashes, return mispredictions would explode and the run
// would still commit everything (correctness) but with a telltale flush
// storm (checked against a generous bound).
func buildCallsWithConflicts() *program.Program {
	b := program.NewBuilder("callflush")
	cell := b.AllocWords("cell", []uint64{1})
	b.AllocWords("acc", []uint64{0})
	const lr1, lr2 = isa.Reg(29), isa.Reg(30)

	b.MovImm(10, cell)
	b.MovImm(26, 0)
	b.Label("loop")
	// A load whose value changes every pass while its address is fixed:
	// DLVP predicts it, and the in-flight store conflict mispredicts until
	// the LSCD learns, producing early value flushes around the calls.
	b.Ldr(11, 10, 0, 3)
	b.AddI(11, 11, 1)
	b.Str(11, 10, 0, 3)
	b.Call("f1", lr1)
	b.AddI(26, 26, 1)
	b.Br("loop")
	b.Label("f1")
	b.Call("f2", lr2)
	b.Ret(lr1)
	b.Label("f2")
	b.Add(12, 12, 11)
	b.Ret(lr2)
	return b.Build()
}

func TestValueFlushesAcrossCallChains(t *testing.T) {
	p := buildCallsWithConflicts()
	s := runProgram(t, p, config.DLVP(), 30_000)
	if s.Instructions != 30_000 {
		t.Fatalf("committed %d of 30000", s.Instructions)
	}
	// The RAS must survive squashes: returns are perfectly nested, so
	// branch flushes should stay a small fraction of the ~2700 returns.
	if s.BranchFlushes > 400 {
		t.Errorf("branch flushes = %d; RAS recovery broken?", s.BranchFlushes)
	}
}

// TestFlushDuringBranchStall: a mispredicted branch stalls the front end
// while an older value misprediction flushes — the flush must clear the
// stall (the branch is squashed and refetched) without deadlock.
func TestFlushDuringBranchStall(t *testing.T) {
	b := program.NewBuilder("stallflush")
	cell := b.AllocWords("cell", []uint64{0})
	b.MovImm(10, cell)
	b.MovImm(26, 0)
	b.Label("loop")
	b.Ldr(11, 10, 0, 3) // predictable address, changing value
	b.AddI(11, 11, 3)
	b.Str(11, 10, 0, 3)
	// A data-dependent branch fed by the load: mispredicts while the load's
	// value prediction may also be wrong.
	b.OpImm(isa.ANDI, 12, 11, 7)
	b.MovImm(13, 3)
	b.CondBr(isa.BLT, 12, 13, "low")
	b.AddI(14, 14, 1)
	b.Label("low")
	b.AddI(26, 26, 1)
	b.Br("loop")

	for _, cfg := range []config.Core{config.DLVP(), config.CAPDLVP(), config.Tournament()} {
		s := runProgram(t, b.Build(), cfg, 25_000)
		if s.Instructions != 25_000 {
			t.Fatalf("scheme %s: committed %d of 25000 (deadlock?)", s.Scheme, s.Instructions)
		}
	}
}

// TestOrderFlushAtWindowHead: ordering violations whose refetch point is at
// or before the commit head must clamp safely.
func TestOrderFlushAtWindowHead(t *testing.T) {
	p := buildStoreLoadRace()
	cfg := config.Baseline()
	cfg.ROBSize = 12 // tiny window pushes violations toward the head
	s := runProgram(t, p, cfg, 20_000)
	if s.Instructions != 20_000 {
		t.Fatalf("committed %d of 20000", s.Instructions)
	}
}

// TestBackToBackFlushes: selective replay and flush recovery interleaved
// with branch mispredictions across many schemes on the most flush-prone
// kernel must never lose instructions.
func TestBackToBackFlushes(t *testing.T) {
	replay := config.DLVP()
	replay.VP.SelectiveReplay = true
	for _, cfg := range []config.Core{config.DLVP(), replay} {
		s := runWorkload(t, "gap", cfg, 30_000)
		if s.Instructions != 30_000 {
			t.Fatalf("committed %d of 30000", s.Instructions)
		}
	}
}
