package uarch

import "dlvp/internal/energy"

// meterEnergy registers the core's structures with the energy meter and
// feeds in the access counts accumulated during the run. DLVP's probes are
// metered against a one-way slice of the L1D data array (the way-prediction
// power optimisation of Section 3.2.2); demand accesses read the full set.
func (c *Core) meterEnergy() {
	m := c.meter

	l1dBits := c.cfg.Mem.L1D.SizeBytes * 8
	ways := c.cfg.Mem.L1D.Ways
	m.Register(energy.RAMSpec{Name: "L1D", Bits: l1dBits, ReadPorts: 2, WritePorts: 1})
	m.AddReads("L1D", c.hier.L1D.Accesses)
	m.Register(energy.RAMSpec{Name: "L1D-probe", Bits: l1dBits / ways, ReadPorts: 1, WritePorts: 0})
	m.AddReads("L1D-probe", c.hier.Probes)

	m.Register(energy.RAMSpec{Name: "L1I", Bits: c.cfg.Mem.L1I.SizeBytes * 8, ReadPorts: 1, WritePorts: 1})
	m.AddReads("L1I", c.hier.L1I.Accesses)
	m.Register(energy.RAMSpec{Name: "L2", Bits: c.cfg.Mem.L2.SizeBytes * 8, ReadPorts: 1, WritePorts: 1})
	m.AddReads("L2", c.hier.L2.Accesses)
	m.Register(energy.RAMSpec{Name: "L3", Bits: c.cfg.Mem.L3.SizeBytes * 8, ReadPorts: 1, WritePorts: 1})
	m.AddReads("L3", c.hier.L3.Accesses)

	m.Register(energy.PRFSpec(8, 8))
	m.AddReads("PRF", c.prfReads)
	m.AddWrites("PRF", c.prfWrites)

	m.Register(energy.PVTSpec())
	m.AddWrites("PVT", c.pvtWrites)
	m.AddReads("PVT", c.pvtWrites) // each predicted value is read ~once

	if c.papPred != nil {
		m.Register(energy.RAMSpec{Name: "APT", Bits: c.papPred.StorageBits(), ReadPorts: 2, WritePorts: 1})
		m.AddReads("APT", c.papPred.Lookups)
		m.AddWrites("APT", c.papPred.Lookups) // trained once per lookup
	}
	if c.capPred != nil {
		m.Register(energy.RAMSpec{Name: "CAP", Bits: c.capPred.StorageBits(), ReadPorts: 2, WritePorts: 1})
		m.AddReads("CAP", c.capPred.Lookups)
		m.AddWrites("CAP", c.capPred.Lookups)
	}
	if c.dvPred != nil {
		m.Register(energy.RAMSpec{Name: "DVTAGE", Bits: c.dvPred.StorageBits(), ReadPorts: 2, WritePorts: 1})
		m.AddReads("DVTAGE", c.dvPred.Lookups)
		m.AddWrites("DVTAGE", c.dvPred.Lookups)
	}
	if c.vtPred != nil {
		m.Register(energy.RAMSpec{Name: "VTAGE", Bits: c.vtPred.StorageBits(), ReadPorts: 2, WritePorts: 1})
		m.AddReads("VTAGE", c.vtPred.Lookups)
		m.AddWrites("VTAGE", c.vtPred.Lookups)
	}
}

// Meter exposes the energy meter (populated after Run).
func (c *Core) Meter() *energy.Meter { return c.meter }
