package uarch

import (
	"fmt"
	"math/bits"

	"dlvp/internal/isa"
	"dlvp/internal/trace"
)

// issueStage selects up to IssueWidth ready instructions per cycle, oldest
// first, with at most LSLanes memory operations (Table 4: 8 lanes, 2 of
// which support load-store). Leftover load-store lanes become the bubbles
// the DLVP probe engine uses (probeStage).
//
// Candidates come from the iqBits bitmap (renamed & unissued slots) rather
// than a queue scan: the words are walked starting from the commit head's
// slot — which is age order, because a slot's seq is unique among live
// instructions — and each word yields its candidates via TrailingZeros64.
func (c *Core) issueStage() {
	issued, memIssued, loadsIssued := 0, 0, 0
	w := &c.a.w
	// Wake sleeping candidates first: the wheel bucket for this cycle holds
	// every timed sleeper whose wake cycle arrived, and an event wake
	// re-activates everyone (conservatively — woken candidates that are
	// still not ready simply fail their checks and sleep again).
	if bkt := &c.a.wheel[c.now&wheelMask]; len(*bkt) > 0 {
		for _, slot := range *bkt {
			c.a.activeBits[slot>>6] |= 1 << (slot & 63)
		}
		*bkt = (*bkt)[:0]
	}
	if c.eventWake {
		c.eventWake = false
		for i := range c.a.activeBits {
			c.a.activeBits[i] |= c.a.iqBits[i]
		}
	}
	if c.iqCount > 0 {
		startSlot := int(c.headSeq & windowMask)
		base := c.headSeq - uint64(startSlot)
		startWord := startSlot >> 6
		startBit := uint(startSlot & 63)
		// iqBits are only ever set for slots in [headSeq, fetchSeq), so the
		// scan can stop after the words that span the live region. Only when
		// the occupied span wraps past the head word does the final partial
		// revisit (k == windowWords) have anything to contribute.
		lastK := int((uint64(startBit) + (c.fetchSeq - c.headSeq) + 63) >> 6)
		if lastK > windowWords {
			lastK = windowWords + 1
		}
	scan:
		for k := 0; k < lastK; k++ {
			wi := (startWord + k) & (windowWords - 1)
			word := c.a.activeBits[wi] & c.a.iqBits[wi]
			if k == 0 {
				word &^= (1 << startBit) - 1 // slots below the head belong to the wrapped tail
			} else if k == windowWords {
				word &= (1 << startBit) - 1 // wrapped tail: only slots below the head
			}
			for word != 0 {
				if issued >= c.cfg.IssueWidth {
					break scan
				}
				b := bits.TrailingZeros64(word)
				word &= word - 1
				slot := wi<<6 | b
				seq := base + uint64(slot)
				if slot < startSlot {
					seq += windowCap
				}

				if nb := w.notBefore[slot]; nb > c.now {
					c.sleepUntil(slot, nb) // replay cool-down
					continue
				}
				f := w.flags[slot]
				isMem := f&fIsMem != 0
				if isMem && memIssued >= c.cfg.LSLanes {
					continue // structural only: stays active for next cycle
				}
				if ready, wake, blocker := c.depsReady(seq); !ready {
					if wake > c.now {
						c.sleepUntil(slot, wake)
					} else {
						// The blocking producer has not issued, so its
						// completion time is unknown: sleep on its waiter
						// list until it issues or gets a value prediction.
						c.a.waiters[blocker] = append(c.a.waiters[blocker], uint32(slot))
						c.a.activeBits[wi] &^= 1 << uint(b)
					}
					continue
				}
				if f&fMdpWait != 0 && c.olderStoreUnissued(seq) {
					// MDP holds the load until older stores resolve. Stays
					// active: an older store may issue later this same scan.
					continue
				}
				ldFwd := fwdNone
				if f&fIsLoad != 0 {
					_, ldFwd = c.forwardingStore(seq, c.rec(seq))
					if ldFwd == fwdPartial {
						// An older issued store partially covers this load's
						// bytes: the STQ cannot forward a partial value, so
						// the load waits for the store to drain to committed
						// memory (it leaves the STQ at commit). Stays active;
						// commit runs earlier in the cycle, so the load can
						// issue the same cycle the store commits.
						if f&fPartialStall == 0 {
							w.flags[slot] = f | fPartialStall
							c.stats.StoreFwdPartialStalls++
						}
						continue
					}
				}

				w.flags[slot] = f | fIssued
				w.issueCycle[slot] = c.now
				c.a.iqBits[wi] &^= 1 << uint(b)
				c.a.activeBits[wi] &^= 1 << uint(b)
				c.iqCount--
				c.wakeWaiters(slot)
				issued++
				if isMem {
					memIssued++
				}
				if f&fIsLoad != 0 {
					loadsIssued++
				}
				rec := c.rec(seq)
				c.executeAt(seq, rec, ldFwd)
				c.pushDone(seq, c.now)
				c.prfReads += uint64(rec.NSrc)
			}
		}
	}
	// Probe bandwidth: DLVP probes use the L1D *read* path (the paper
	// reuses the L1 prefetcher's probe path). Loads occupy it on issue;
	// stores write through the store buffer at commit and leave the read
	// ports free, so only issued loads consume probe opportunities.
	c.loadPortsFreeThisCycle = c.cfg.LSLanes - loadsIssued
	c.memIssuedThisCycle = memIssued
}

// sleepUntil removes a scheduler candidate from the active set until cycle
// t (clamped to the wheel horizon; waking early is safe).
func (c *Core) sleepUntil(slot int, t uint64) {
	if t >= c.now+wheelSize {
		t = c.now + wheelSize - 1
	}
	c.a.wheel[t&wheelMask] = append(c.a.wheel[t&wheelMask], uint32(slot))
	c.a.activeBits[slot>>6] &^= 1 << (uint(slot) & 63)
}

// wakeWaiters re-activates every candidate sleeping on producer slot p.
func (c *Core) wakeWaiters(p int) {
	ws := c.a.waiters[p]
	if len(ws) == 0 {
		return
	}
	for _, s := range ws {
		c.a.activeBits[s>>6] |= 1 << (s & 63)
	}
	c.a.waiters[p] = ws[:0]
}

// depsReady reports whether every source operand is available: either the
// producer completed, or the producer carries a value prediction for that
// register and has passed rename (the PVT supplies the value). Unused
// source slots hold 0, so all of them can be scanned without the record.
//
// On failure, wake is the cycle the blocking operand becomes available when
// that is already known (the producer has issued, so its completion time is
// fixed). When it is not (wake 0), blocker is the producer's window slot:
// readiness then requires that producer to issue or be value-predicted.
func (c *Core) depsReady(seq uint64) (ready bool, wake uint64, blocker int) {
	w := &c.a.w
	slot := seq & windowMask
	for i := 0; i < trace.MaxSrcs; i++ {
		dep := w.deps[slot][i]
		if dep == 0 {
			continue
		}
		s := dep - 1
		if !c.live(s) {
			continue // committed: value in the PRF
		}
		ps := s & windowMask
		pf := w.flags[ps]
		if pf&fCompleted != 0 && w.execDone[ps] <= c.now {
			continue
		}
		if pf&fVpMade != 0 && pf&fRenamed != 0 && w.renameCycle[ps] <= c.now &&
			c.predictsReg(s, c.rec(seq).Src[i]) {
			continue
		}
		if pf&fIssued != 0 {
			if t := w.execDone[ps]; t > c.now {
				return false, t, 0
			}
			return false, c.now + 1, 0 // completing this very cycle; re-check next
		}
		return false, 0, int(ps)
	}
	return true, 0, 0
}

// predictsReg reports whether producer pseq carries a predicted value for
// architectural register r.
func (c *Core) predictsReg(pseq uint64, r isa.Reg) bool {
	prec := c.rec(pseq)
	cd := c.cold(pseq)
	nd := int(prec.NDst)
	for j := 0; j < nd; j++ {
		if prec.Dst[j] == r && cd.vpPerDest[j] {
			return true
		}
	}
	return false
}

// olderStoreUnissued reports whether any in-flight store older than seq has
// not yet issued (its address is unresolved).
func (c *Core) olderStoreUnissued(seq uint64) bool {
	for _, s := range c.a.pendingStores {
		if s >= seq {
			return false
		}
		if c.live(s) {
			return true
		}
	}
	return false
}

// executeAt computes the completion time of a just-issued instruction and
// performs its memory-system interaction. For loads, ldFwd is the store-
// queue classification the issue scan already computed this cycle (a load
// never issues while classified fwdPartial).
func (c *Core) executeAt(seq uint64, rec *trace.Rec, ldFwd fwdOutcome) {
	w := &c.a.w
	slot := seq & windowMask
	switch {
	case rec.IsStore():
		// Address generation; data rides along. The cache write happens at
		// commit through the store buffer.
		w.execDone[slot] = c.now + 1
		c.removePendingStore(seq)
		c.checkOrderViolation(seq, rec)
	case rec.IsLoad():
		agu := c.now + 1
		if ldFwd == fwdHit {
			w.execDone[slot] = agu + 1 // store-to-load forward
			c.cold(seq).l1Way = -1
		} else {
			res := c.hier.Load(agu, rec.PC, rec.Addr)
			w.execDone[slot] = agu + uint64(res.Latency)
			c.cold(seq).l1Way = int8(res.L1Way)
		}
	default:
		w.execDone[slot] = c.now + uint64(rec.Op.ExecLatency())
	}
}

// removePendingStore unregisters a store whose address just resolved. Every
// resolving store must be present: fetch registers it, and the only paths
// that mark a store unissued again (selective replay, flush rebuild)
// re-register it. A miss means the unissued-store bookkeeping diverged
// from the window, which the assert build refuses to ignore.
func (c *Core) removePendingStore(seq uint64) {
	ps := c.a.pendingStores
	for i, s := range ps {
		if s == seq {
			c.a.pendingStores = append(ps[:i], ps[i+1:]...)
			return
		}
	}
	if assertEnabled {
		panic(fmt.Sprintf("uarch: pending-store bookkeeping lost store seq %d (head=%d fetch=%d pending=%d)",
			seq, c.headSeq, c.fetchSeq, len(ps)))
	}
}

func overlap(a1 uint64, n1 int, a2 uint64, n2 int) bool {
	return a1 < a2+uint64(n2) && a2 < a1+uint64(n1)
}

// fwdOutcome classifies a load against the store queue.
type fwdOutcome int8

const (
	// fwdNone: no issued older store overlaps the load; read from the
	// cache hierarchy.
	fwdNone fwdOutcome = iota
	// fwdHit: the youngest overlapping store fully contains the load's
	// bytes; the store queue forwards the value.
	fwdHit
	// fwdPartial: the youngest overlapping store covers only part of the
	// load's bytes. The STQ cannot compose a value from store data plus
	// memory, so the load must wait until that store commits and its
	// bytes reach committed memory.
	fwdPartial
)

// forwardingStore finds the youngest older in-flight store whose resolved
// address overlaps the load and classifies the pair: full containment
// (st.Addr <= ld.Addr && ld.Addr+ld.Bytes <= st.Addr+st.Bytes) forwards,
// partial overlap blocks. The STQ index holds exactly the in-flight stores
// in ascending seq order, so the search binary-searches to the load and
// walks younger-to-older; the youngest overlapping store decides, since its
// bytes are the architecturally visible ones.
func (c *Core) forwardingStore(seq uint64, ld *trace.Rec) (uint64, fwdOutcome) {
	stq := &c.a.stqIdx
	w := &c.a.w
	for i := stq.lowerBound(seq) - 1; i >= 0; i-- {
		s := stq.at(i)
		if w.flags[s&windowMask]&fIssued == 0 {
			continue
		}
		st := c.rec(s)
		if !overlap(st.Addr, int(st.Bytes), ld.Addr, int(ld.Bytes)) {
			continue
		}
		if st.Addr <= ld.Addr && ld.Addr+uint64(ld.Bytes) <= st.Addr+uint64(st.Bytes) {
			return s, fwdHit
		}
		return s, fwdPartial
	}
	return 0, fwdNone
}

// checkOrderViolation fires when a store resolves its address after a
// younger overlapping load already executed: a memory-ordering violation.
// The load (and everything younger) is squashed and refetched, and the MDP
// learns to hold that load in the future. The LDQ index holds exactly the
// in-flight loads in ascending seq order, oldest violation wins.
func (c *Core) checkOrderViolation(seq uint64, st *trace.Rec) {
	ldq := &c.a.ldqIdx
	w := &c.a.w
	n := ldq.len()
	for i := ldq.lowerBound(seq + 1); i < n; i++ {
		s := ldq.at(i)
		slot := s & windowMask
		// Same-cycle loads (issueCycle == now) are excluded: the issue scan
		// is oldest-first, so a load issuing this cycle was processed after
		// this (older) store and already saw it in the store queue — it
		// forwarded or stalled correctly and read no stale data. Admitting
		// it would make the squash/forward outcome depend on IQ position.
		if w.flags[slot]&fIssued == 0 || w.issueCycle[slot] >= c.now {
			continue
		}
		ld := c.rec(s)
		if overlap(st.Addr, int(st.Bytes), ld.Addr, int(ld.Bytes)) {
			c.mdp.RecordViolation(ld.PC)
			c.scheduleFlush(flushReq{
				seq:       s - 1,
				refetchAt: s,
				resume:    c.now + 2,
				kind:      flushOrder,
			})
			return
		}
	}
}
