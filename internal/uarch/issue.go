package uarch

import (
	"dlvp/internal/isa"
)

// issueStage selects up to IssueWidth ready instructions per cycle, oldest
// first, with at most LSLanes memory operations (Table 4: 8 lanes, 2 of
// which support load-store). Leftover load-store lanes become the bubbles
// the DLVP probe engine uses (probeStage).
func (c *Core) issueStage() {
	issued, memIssued, loadsIssued := 0, 0, 0
	for i := 0; i < len(c.iq) && issued < c.cfg.IssueWidth; i++ {
		seq := c.iq[i]
		if !c.live(seq) {
			continue
		}
		e := c.ent(seq)
		if e.issued || !e.renamed || e.notBefore > c.now {
			continue
		}
		rec := &e.rec
		isMem := rec.Op.IsMem()
		if isMem && memIssued >= c.cfg.LSLanes {
			continue
		}
		if !c.depsReady(e) {
			continue
		}
		if rec.IsLoad() && e.mdpWait && c.olderStoreUnissued(seq) {
			continue // MDP holds the load until older stores resolve
		}

		e.issued = true
		e.issueCycle = c.now
		c.iq = append(c.iq[:i], c.iq[i+1:]...)
		i--
		issued++
		if isMem {
			memIssued++
		}
		if rec.IsLoad() {
			loadsIssued++
		}
		c.executeAt(e)
		c.inflight = append(c.inflight, seq)
		c.prfReads += uint64(rec.NSrc)
	}
	// Probe bandwidth: DLVP probes use the L1D *read* path (the paper
	// reuses the L1 prefetcher's probe path). Loads occupy it on issue;
	// stores write through the store buffer at commit and leave the read
	// ports free, so only issued loads consume probe opportunities.
	c.loadPortsFreeThisCycle = c.cfg.LSLanes - loadsIssued
	c.memIssuedThisCycle = memIssued
}

// depsReady reports whether every source operand of e is available: either
// the producer completed, or the producer carries a value prediction for
// that register and has passed rename (the PVT supplies the value).
func (c *Core) depsReady(e *entry) bool {
	for i := 0; i < int(e.rec.NSrc); i++ {
		dep := e.deps[i]
		if dep == 0 {
			continue
		}
		s := dep - 1
		if !c.live(s) {
			continue // committed: value in the PRF
		}
		p := c.ent(s)
		if p.completed && p.execDone <= c.now {
			continue
		}
		if p.vpMade && p.renamed && p.renameCycle <= c.now &&
			c.predictsReg(p, e.rec.Src[i]) {
			continue
		}
		return false
	}
	return true
}

// predictsReg reports whether producer p carries a predicted value for
// architectural register r.
func (c *Core) predictsReg(p *entry, r isa.Reg) bool {
	nd := int(p.rec.NDst)
	for j := 0; j < nd; j++ {
		if p.rec.Dst[j] == r && p.vpPerDest[j] {
			return true
		}
	}
	return false
}

// olderStoreUnissued reports whether any in-flight store older than seq has
// not yet issued (its address is unresolved).
func (c *Core) olderStoreUnissued(seq uint64) bool {
	for _, s := range c.pendingStores {
		if s >= seq {
			return false
		}
		if c.live(s) {
			return true
		}
	}
	return false
}

// executeAt computes the completion time of a just-issued instruction and
// performs its memory-system interaction.
func (c *Core) executeAt(e *entry) {
	rec := &e.rec
	switch {
	case rec.IsStore():
		// Address generation; data rides along. The cache write happens at
		// commit through the store buffer.
		e.execDone = c.now + 1
		c.removePendingStore(rec.Seq)
		c.checkOrderViolation(e)
	case rec.IsLoad():
		agu := c.now + 1
		if fwd, ok := c.forwardingStore(e); ok {
			_ = fwd
			e.execDone = agu + 1 // store-to-load forward
			e.l1Way = -1
		} else {
			res := c.hier.Load(agu, rec.PC, rec.Addr)
			e.execDone = agu + uint64(res.Latency)
			e.l1Way = int8(res.L1Way)
		}
	default:
		e.execDone = c.now + uint64(rec.Op.ExecLatency())
	}
}

func (c *Core) removePendingStore(seq uint64) {
	for i, s := range c.pendingStores {
		if s == seq {
			c.pendingStores = append(c.pendingStores[:i], c.pendingStores[i+1:]...)
			return
		}
	}
}

func overlap(a1 uint64, n1 int, a2 uint64, n2 int) bool {
	return a1 < a2+uint64(n2) && a2 < a1+uint64(n1)
}

// forwardingStore finds the youngest older in-flight store whose resolved
// address overlaps the load; the load then forwards from the store queue.
func (c *Core) forwardingStore(e *entry) (uint64, bool) {
	for seq := e.rec.Seq; seq > c.headSeq; {
		seq--
		if !c.live(seq) {
			break
		}
		p := c.ent(seq)
		if !p.rec.IsStore() || !p.issued {
			continue
		}
		if overlap(p.rec.Addr, int(p.rec.Bytes), e.rec.Addr, int(e.rec.Bytes)) {
			return seq, true
		}
	}
	return 0, false
}

// checkOrderViolation fires when a store resolves its address after a
// younger overlapping load already executed: a memory-ordering violation.
// The load (and everything younger) is squashed and refetched, and the MDP
// learns to hold that load in the future.
func (c *Core) checkOrderViolation(st *entry) {
	for seq := st.rec.Seq + 1; seq < c.fetchSeq; seq++ {
		if !c.live(seq) {
			continue
		}
		e := c.ent(seq)
		if !e.rec.IsLoad() || !e.issued || e.issueCycle > c.now {
			continue
		}
		if overlap(st.rec.Addr, int(st.rec.Bytes), e.rec.Addr, int(e.rec.Bytes)) {
			c.mdp.RecordViolation(e.rec.PC)
			c.scheduleFlush(flushReq{
				seq:       seq - 1,
				refetchAt: seq,
				resume:    c.now + 2,
				kind:      flushOrder,
			})
			return
		}
	}
}
