package uarch

import (
	"dlvp/internal/predictor/tournament"
	"dlvp/internal/siteprof"
)

// EnableSiteProfile attaches a per-load-site misprediction attribution
// collector tracking at most maxSites static load PCs (0 selects the
// siteprof package default). Call before Run. The returned collector may
// be read concurrently while the simulation runs (Snapshot); the finished
// profile is available from Core.SiteProfile after Run.
//
// Profiling is off by default. When off, the commit path pays one nil
// check per eligible instruction; when on, each committed eligible load
// adds a classification (a handful of field compares) and one counter
// update behind a direct-mapped PC cache (BenchmarkSiteprofOverhead holds
// the slowdown under 3%).
//
// Under a sample window (SetSampleWindow), warm-up commits are excluded so
// the profile covers exactly the measured region and per-site sums stay
// reconcilable with MeasuredCounters.
func (c *Core) EnableSiteProfile(maxSites int) *siteprof.Collector {
	c.sp = siteprof.NewCollector(maxSites, c.stats.Workload, c.stats.Scheme)
	return c.sp
}

// SiteProfile returns the finished per-site attribution profile (nil
// unless EnableSiteProfile was called; valid after Run).
func (c *Core) SiteProfile() *siteprof.Profile { return c.siteProfile }

// spRecord classifies one committed statistics-eligible instruction and
// feeds it to the collector. Called from accountPrediction behind a nil
// check, with the (predicted, correct) outcome it already computed, so the
// per-site Eligible/Predicted/Correct partition matches the aggregate
// stats.VP accounting by construction.
func (c *Core) spRecord(e *entry, predicted, correct bool) {
	if c.wmArmed && (!c.wmDone || c.mdDone) {
		// Outside the measured region: still warming up, or the bounded
		// window already closed (the closing cycle can retire a few more
		// instructions before Run observes the stop request).
		return
	}
	ev := siteprof.Event{Cause: c.spCause(e, predicted, correct)}
	if e.probeDone {
		ev.Probed = true
		ev.ProbeHit = e.probeHit
		ev.ProbeTLB = e.probeTLB
	}
	if e.vpMade && !correct {
		if c.cfg.VP.SelectiveReplay {
			ev.Replay = true
		} else {
			// Estimated recovery cost of this mispredict's flush: the
			// value-check penalty plus refilling the front of the pipe.
			ev.FlushCycles = uint64(c.cfg.ValueCheckPenalty) + uint64(c.cfg.FrontLatency)
		}
	}
	c.sp.Record(e.rec.PC, ev)
}

// spCause derives the attribution cause from the evidence already on the
// window entry: the fetch-time predictor lookups, the LSCD decision, the
// probe outcome, the train-time APT outcome code, and the committed
// record's actual address.
func (c *Core) spCause(e *entry, predicted, correct bool) siteprof.Cause {
	if correct {
		return siteprof.CauseCorrect
	}
	if predicted {
		// A prediction was made (or oracle-suppressed) and was wrong: why?
		if e.vpSource == tournament.SideVTAGE {
			return siteprof.CauseValueWrong // value-side miss, no address context
		}
		var predictedAddr uint64
		have := false
		switch {
		case e.papLkValid:
			predictedAddr, have = e.papLk.Addr, true
		case e.capLkValid:
			predictedAddr, have = e.capLk.Addr, true
		}
		if !have {
			return siteprof.CauseValueWrong
		}
		if predictedAddr == e.rec.Addr {
			// Right address, wrong value: a store rewrote the location
			// between the probe and the load — the paper's Challenge #1.
			return siteprof.CauseStoreConflict
		}
		if e.papTrainValid && e.papTrain.Alias() {
			// Training found the APT slot reallocated between lookup and
			// train: the predicted address belonged to an aliasing site.
			return siteprof.CauseTagAlias
		}
		return siteprof.CauseAddrMispredict
	}
	// No prediction was made: walk the pipeline backwards to the first
	// stage that dropped it.
	switch {
	case e.lscdSkip:
		return siteprof.CauseLSCDFiltered
	case e.papLkValid:
		if !e.papLk.Hit {
			return siteprof.CauseAPTMiss
		}
		if !e.papLk.Confident {
			return siteprof.CauseConfidenceDropped
		}
		// Confident at fetch but nothing installed: lost to PAQ overflow,
		// lifetime expiry, a late or missing probe, the install budget, or
		// a full PVT.
		return siteprof.CausePAQDrop
	case e.capLkValid:
		if !e.capLk.LBHit || !e.capLk.LinkHit {
			return siteprof.CauseAPTMiss
		}
		if !e.capLk.Confident {
			return siteprof.CauseConfidenceDropped
		}
		return siteprof.CausePAQDrop
	default:
		return siteprof.CauseUnpredicted
	}
}

// spFinish freezes the collector into the run's profile, scoped to the
// measured region when a sample window was armed and completed.
func (c *Core) spFinish() {
	instrs := c.stats.Instructions
	if c.wmArmed {
		if meas, ok := c.MeasuredCounters(); ok {
			instrs = meas.Instructions
		}
	}
	c.siteProfile = c.sp.Finish(instrs)
}
