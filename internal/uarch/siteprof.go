package uarch

import (
	"dlvp/internal/predictor/tournament"
	"dlvp/internal/siteprof"
)

// EnableSiteProfile attaches a per-load-site misprediction attribution
// collector tracking at most maxSites static load PCs (0 selects the
// siteprof package default). Call before Run. The returned collector may
// be read concurrently while the simulation runs (Snapshot); the finished
// profile is available from Core.SiteProfile after Run.
//
// Profiling is off by default. When off, the commit path pays one nil
// check per eligible instruction; when on, each committed eligible load
// adds a classification (a handful of field compares) and one counter
// update behind a direct-mapped PC cache (BenchmarkSiteprofOverhead holds
// the slowdown under 3%).
//
// Under a sample window (SetSampleWindow), warm-up commits are excluded so
// the profile covers exactly the measured region and per-site sums stay
// reconcilable with MeasuredCounters.
func (c *Core) EnableSiteProfile(maxSites int) *siteprof.Collector {
	c.sp = siteprof.NewCollector(maxSites, c.stats.Workload, c.stats.Scheme)
	return c.sp
}

// SiteProfile returns the finished per-site attribution profile (nil
// unless EnableSiteProfile was called; valid after Run).
func (c *Core) SiteProfile() *siteprof.Profile { return c.siteProfile }

// spRecord classifies one committed statistics-eligible instruction and
// feeds it to the collector. Called from accountPrediction behind a nil
// check, with the (predicted, correct) outcome it already computed, so the
// per-site Eligible/Predicted/Correct partition matches the aggregate
// stats.VP accounting by construction.
func (c *Core) spRecord(seq uint64, predicted, correct bool) {
	if c.wmArmed && (!c.wmDone || c.mdDone) {
		// Outside the measured region: still warming up, or the bounded
		// window already closed (the closing cycle can retire a few more
		// instructions before Run observes the stop request).
		return
	}
	f := c.a.w.flags[seq&windowMask]
	ev := siteprof.Event{Cause: c.spCause(seq, predicted, correct)}
	if f&fProbeDone != 0 {
		ev.Probed = true
		ev.ProbeHit = f&fProbeHit != 0
		ev.ProbeTLB = f&fProbeTLB != 0
	}
	if f&fVpMade != 0 && !correct {
		if c.cfg.VP.SelectiveReplay {
			ev.Replay = true
		} else {
			// Estimated recovery cost of this mispredict's flush: the
			// value-check penalty plus refilling the front of the pipe.
			ev.FlushCycles = uint64(c.cfg.ValueCheckPenalty) + uint64(c.cfg.FrontLatency)
		}
	}
	c.sp.Record(c.rec(seq).PC, ev)
}

// spCause derives the attribution cause from the evidence already on the
// window entry: the fetch-time predictor lookups, the LSCD decision, the
// probe outcome, the train-time APT outcome code, and the committed
// record's actual address.
func (c *Core) spCause(seq uint64, predicted, correct bool) siteprof.Cause {
	if correct {
		return siteprof.CauseCorrect
	}
	f := c.a.w.flags[seq&windowMask]
	cd := c.cold(seq)
	if predicted {
		// A prediction was made (or oracle-suppressed) and was wrong: why?
		if cd.vpSource == tournament.SideVTAGE {
			return siteprof.CauseValueWrong // value-side miss, no address context
		}
		var predictedAddr uint64
		have := false
		switch {
		case f&fPapLkValid != 0:
			predictedAddr, have = cd.papLk.Addr, true
		case f&fCapLkValid != 0:
			predictedAddr, have = cd.capLk.Addr, true
		}
		if !have {
			return siteprof.CauseValueWrong
		}
		if predictedAddr == c.rec(seq).Addr {
			// Right address, wrong value: a store rewrote the location
			// between the probe and the load — the paper's Challenge #1.
			return siteprof.CauseStoreConflict
		}
		if f&fPapTrainValid != 0 && cd.papTrain.Alias() {
			// Training found the APT slot reallocated between lookup and
			// train: the predicted address belonged to an aliasing site.
			return siteprof.CauseTagAlias
		}
		return siteprof.CauseAddrMispredict
	}
	// No prediction was made: walk the pipeline backwards to the first
	// stage that dropped it.
	switch {
	case f&fLscdSkip != 0:
		return siteprof.CauseLSCDFiltered
	case f&fPapLkValid != 0:
		if !cd.papLk.Hit {
			return siteprof.CauseAPTMiss
		}
		if !cd.papLk.Confident {
			return siteprof.CauseConfidenceDropped
		}
		// Confident at fetch but nothing installed: lost to PAQ overflow,
		// lifetime expiry, a late or missing probe, the install budget, or
		// a full PVT.
		return siteprof.CausePAQDrop
	case f&fCapLkValid != 0:
		if !cd.capLk.LBHit || !cd.capLk.LinkHit {
			return siteprof.CauseAPTMiss
		}
		if !cd.capLk.Confident {
			return siteprof.CauseConfidenceDropped
		}
		return siteprof.CausePAQDrop
	default:
		return siteprof.CauseUnpredicted
	}
}

// spFinish freezes the collector into the run's profile, scoped to the
// measured region when a sample window was armed and completed.
func (c *Core) spFinish() {
	instrs := c.stats.Instructions
	if c.wmArmed {
		if meas, ok := c.MeasuredCounters(); ok {
			instrs = meas.Instructions
		}
	}
	c.siteProfile = c.sp.Finish(instrs)
}
