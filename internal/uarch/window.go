package uarch

import (
	"sync"

	"dlvp/internal/branch"
	"dlvp/internal/predictor/cap"
	"dlvp/internal/predictor/dvtage"
	"dlvp/internal/predictor/pap"
	"dlvp/internal/predictor/tournament"
	"dlvp/internal/predictor/vtage"
	"dlvp/internal/trace"
)

// The instruction window is stored struct-of-arrays: every per-instruction
// field lives in its own column, indexed by seq & windowMask. The hot
// scheduling columns (flags, ready/complete times, dependencies) are small
// dense arrays the per-cycle loops stream through; everything the scheduler
// never touches — predictor lookup contexts, probed values, RAS snapshots —
// sits in a cold per-slot struct read only on the prediction and commit
// paths. Fetching an instruction initialises only the hot columns; cold
// fields are written lazily by the stage that produces them and are always
// read behind a flag bit set by that same stage, so slot reuse needs no
// per-instruction clearing.

// windowCap bounds in-flight instructions (ROB + front-end queue); it must
// be a power of two and comfortably exceed ROBSize + front-end depth.
const (
	windowCap   = 1024
	windowMask  = windowCap - 1
	windowWords = windowCap / 64
)

// The trace ring holds the most recent bufCap records of the functional
// stream; it must cover the live window (≤ windowCap) plus refetch slack,
// so records are overwritten only long after they can no longer be
// refetched.
const (
	bufCap  = 2048
	bufMask = bufCap - 1
)

// frontQCap bounds fetched-but-unrenamed instructions (the decode queue).
const frontQCap = 64

// The scheduler's timing wheel covers this many future cycles; sleeps past
// the horizon are clamped (an early wake is always safe, the candidate just
// re-checks and sleeps again).
const (
	wheelSize = 256
	wheelMask = wheelSize - 1
)

// The completion wheel buckets issued instructions by completion cycle; its
// horizon must exceed the worst memory round trip (TLB walk + miss path +
// queueing), so in-horizon entries pop exactly at execDone. The rare
// overflow entry is clamped and re-pushed when popped early.
const (
	doneWheelSize = 1024
	doneWheelMask = doneWheelSize - 1
)

// doneEnt is one completion-wheel entry. issuedAt stamps the issue instance
// (the slot's issueCycle at push time): an entry whose stamp no longer
// matches belongs to a squashed or replayed instance and is dropped.
type doneEnt struct {
	seq      uint64
	issuedAt uint64
}

// Per-slot status bits (the old entry's booleans, packed).
const (
	fValid uint32 = 1 << iota
	fRenamed
	fIssued
	fCompleted
	fTrained
	fValidated
	fBrMispredict
	fMdpWait
	fLscdSkip
	fPaqIssued
	fProbeDone
	fProbeHit
	fProbeTLB
	fPapLkValid
	fCapLkValid
	fPapTrainValid
	fVtAny
	fVpMade
	fVpOracleDropped
	fHasRasAfter
	// fPartialStall marks a load that was held at issue at least once
	// because an older in-flight store only partially covered its bytes
	// (set once per fetched instance, for stats and siteprof).
	fPartialStall
	// Static instruction attributes, cached at fetch so the per-cycle
	// scheduling loops never touch the (much larger) trace record.
	fIsLoad
	fIsStore
)

// fIsMem selects memory operations (load or store).
const fIsMem = fIsLoad | fIsStore

// coldState carries the per-instruction fields the scheduling loops never
// read. Each field is valid only when its producing stage set the matching
// flag bit (papLk ↔ fPapLkValid, probeVals ↔ fProbeHit, ...), so stale
// data from a previous occupant of the slot is never observed.
type coldState struct {
	papLk    pap.Lookup
	capLk    cap.Lookup
	papTrain pap.TrainOutcome
	tageLk   branch.Lookup // conditional-branch indices, hashed once at fetch

	probeDeliver uint64 // cycle the probed value reaches the VPE
	probeVals    [trace.MaxDests]uint64

	// VTAGE state (shared by VTAGE and D-VTAGE; dvLks carries the
	// differential predictor's training context). The slices are sticky
	// per-slot scratch: fetch resets the length, capacity is recycled, so
	// steady state allocates nothing.
	vtLks   []vtage.Lookup
	dvLks   []dvtage.Lookup
	vtVals  [trace.MaxDests]uint64
	vtValid [trace.MaxDests]bool

	// Final value prediction installed in the PVT at rename.
	vpSource   tournament.Side
	vpVals     [trace.MaxDests]uint64
	vpPerDest  [trace.MaxDests]bool
	vpNumDests int

	l1Way int8 // way the demand access found/filled (trains way prediction)

	// RAS snapshot after this instruction (calls/returns only).
	rasAfter branch.RASState
}

// windowState is the struct-of-arrays instruction window.
type windowState struct {
	flags [windowCap]uint32

	// Hot scheduling columns.
	renameReady [windowCap]uint64 // earliest rename cycle (fetch + front latency + icache)
	renameCycle [windowCap]uint64
	issueCycle  [windowCap]uint64
	execDone    [windowCap]uint64 // cycle the result is available
	notBefore   [windowCap]uint64 // delays (re-)issue until the replay penalty elapsed
	fetchCycle  [windowCap]uint64
	deps        [windowCap][trace.MaxSrcs]uint64 // producer seq+1 per source (0 = ready)

	// Branch/history snapshots (squash recovery).
	ghistBefore [windowCap]uint64 // fetch-time history (for trainer re-indexing)
	ghistAfter  [windowCap]uint64
	lphistAfter [windowCap]uint64

	// Selective-replay taint marks: slot seq + epoch, so a replay pass can
	// test "tainted in this pass" without a per-pass map (a slot alias from
	// a long-committed producer fails the seq equality check).
	taintSeq [windowCap]uint64
	taintEp  [windowCap]uint64

	cold [windowCap]coldState
}

// seqRing is a bounded FIFO of ascending sequence numbers backed by a
// power-of-two array: pushed at fetch, popped at commit, truncated from the
// tail on a squash. It gives the memory-order checks an index of exactly
// the in-flight loads (or stores) so they no longer walk the whole window.
type seqRing struct {
	buf  [windowCap]uint64
	head uint32
	tail uint32
}

func (r *seqRing) reset()          { r.head, r.tail = 0, 0 }
func (r *seqRing) len() int        { return int(r.tail - r.head) }
func (r *seqRing) push(seq uint64) { r.buf[r.tail&windowMask] = seq; r.tail++ }

func (r *seqRing) popFront() uint64 {
	s := r.buf[r.head&windowMask]
	r.head++
	return s
}

func (r *seqRing) at(i int) uint64 { return r.buf[(r.head+uint32(i))&windowMask] }

// truncateFrom drops every element >= seq (squash of the younger tail).
func (r *seqRing) truncateFrom(seq uint64) {
	for r.tail != r.head && r.buf[(r.tail-1)&windowMask] >= seq {
		r.tail--
	}
}

// lowerBound returns the index of the first element >= seq.
func (r *seqRing) lowerBound(seq uint64) int {
	lo, hi := 0, r.len()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.at(mid) < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Arena owns every bulk per-run allocation of a core: the SoA window, the
// trace ring, the scheduler bitmap, the LDQ/STQ index rings, the PAQ ring
// and the small scheduler slices. A fresh arena is one allocation; reusing
// one across runs (NewAtArena) makes a whole simulation allocation-free on
// the per-instruction path and nearly so per run.
type Arena struct {
	w   windowState
	buf [bufCap]trace.Rec

	// iqBits marks renamed-and-unissued slots; issue selects ready
	// instructions oldest-first with TrailingZeros64 over these words.
	iqBits [windowWords]uint64

	// activeBits ⊆ iqBits marks the candidates worth examining this cycle.
	// A candidate that fails its ready checks goes to sleep: into the
	// timing wheel when the earliest cycle it could become ready is known
	// (replay cool-down, an issued producer's completion time), or until
	// the next wake event otherwise (any issue, a VP install, a replay, a
	// flush — the only transitions that can create readiness). Sleeping
	// candidates are provably not ready, so scanning only active ones
	// issues the exact same instructions in the exact same order.
	activeBits [windowWords]uint64
	wheel      [wheelSize][]uint32 // per-cycle wake lists (slot numbers)

	// waiters[p] lists the candidate slots sleeping on producer slot p (its
	// completion time is unknown until it issues). Drained — waking every
	// listed candidate — when p issues or receives a value prediction, the
	// only transitions that can unblock a register dependent. Stale entries
	// (from sleepers since woken elsewhere, or a squashed producer) cause
	// only spurious wakes, which the ready checks absorb.
	waiters [windowCap][]uint32

	ldqIdx seqRing // all fetched, uncommitted loads (wider than LDQ occupancy)
	stqIdx seqRing // all fetched, uncommitted stores

	// done buckets issued instructions by completion cycle, so executeStage
	// drains exactly the instructions finishing now instead of walking every
	// in-flight one. Within a bucket entries sit in push (= issue) order —
	// the order the old in-flight walk processed them — and a flush rebuilds
	// the wheel from the surviving window in sequence order, again matching
	// the old list rebuild.
	done [doneWheelSize][]doneEnt

	pendingStores []uint64 // in-flight, not-yet-issued store seqs, ascending
	reissue       []uint64 // selective-replay scratch

	paqBuf []paqEntry // PAQ ring storage, sized to cfg.PAQEntries
}

// NewArena returns an arena ready for NewAtArena.
func NewArena() *Arena {
	return &Arena{
		pendingStores: make([]uint64, 0, windowCap),
		reissue:       make([]uint64, 0, windowCap),
	}
}

var arenaPool = sync.Pool{New: func() any { return NewArena() }}

// AcquireArena returns a recycled arena (or a fresh one when the pool is
// empty) for NewAtArena. Release it with ReleaseArena once the core built
// on it has finished running.
func AcquireArena() *Arena { return arenaPool.Get().(*Arena) }

// ReleaseArena returns an arena to the pool for reuse. The arena (and any
// core built on it) must not be touched afterwards.
func ReleaseArena(a *Arena) {
	if a != nil {
		arenaPool.Put(a)
	}
}

// reset clears the state a new run must not observe. Only the flag and
// bitmap columns need zeroing: every other column is written before it is
// read (hot columns at fetch, cold fields behind their flag bits), and the
// trace ring is filled before the cursor reaches it.
func (a *Arena) reset() {
	a.w.flags = [windowCap]uint32{}
	a.w.taintSeq = [windowCap]uint64{}
	a.w.taintEp = [windowCap]uint64{}
	a.iqBits = [windowWords]uint64{}
	a.activeBits = [windowWords]uint64{}
	for i := range a.wheel {
		a.wheel[i] = a.wheel[i][:0]
	}
	for i := range a.waiters {
		a.waiters[i] = a.waiters[i][:0]
	}
	for i := range a.done {
		a.done[i] = a.done[i][:0]
	}
	a.ldqIdx.reset()
	a.stqIdx.reset()
	a.pendingStores = a.pendingStores[:0]
	a.reissue = a.reissue[:0]
}
