package uarch

import (
	"dlvp/internal/timeline"
)

// EnableTimeline attaches a flight recorder that samples the core's
// cumulative counters every intervalInstrs committed instructions into a
// ring of at most capacity samples (zeros select the timeline package
// defaults). Call before Run. The returned recorder may be read
// concurrently while the simulation runs (live streaming); the finished
// Timeline is available from Core.Timeline after Run.
//
// Sampling is off by default. When off, the commit path pays one nil
// check per committed instruction; when on, it adds a counter decrement,
// with the full snapshot taken only at interval boundaries
// (BenchmarkTimelineOverhead holds the slowdown under 1%).
func (c *Core) EnableTimeline(intervalInstrs uint64, capacity int) *timeline.Recorder {
	c.tl = timeline.NewRecorder(intervalInstrs, capacity)
	c.tlCountdown = c.tl.IntervalInstrs()
	return c.tl
}

// Timeline returns the finished flight-recorder timeline (nil unless
// EnableTimeline was called; valid after Run).
func (c *Core) Timeline() *timeline.Timeline { return c.timeline }

// tlTick is called once per committed instruction, after that
// instruction's statistics (including value-prediction accounting) have
// landed, so an interval boundary snapshot always includes the
// just-committed instruction.
func (c *Core) tlTick() {
	c.tlCountdown--
	if c.tlCountdown == 0 {
		c.tlCountdown = c.tl.IntervalInstrs()
		c.tlSample(false)
	}
}

// tlSample snapshots the cumulative counters into the recorder; final
// closes the recorder, recording any tail interval.
func (c *Core) tlSample(final bool) {
	var cum timeline.Counters
	c.tlCumulative(&cum)
	if final {
		c.timeline = c.tl.Finish(cum, c.tlPAQPeak, c.stats.Workload, c.stats.Scheme)
	} else {
		c.tl.Sample(cum, c.tlPAQPeak)
	}
	c.tlPAQPeak = c.paqLen()
}

// tlCumulative fills cum with the core's monotone counters. Everything is
// read from the live structures (stats fields that finalizeStats derives,
// like Probes, come straight from the hierarchy), so snapshots are valid
// mid-run without allocation.
func (c *Core) tlCumulative(cum *timeline.Counters) {
	cum.Instructions = c.stats.Instructions
	cum.Cycles = c.now
	cum.Loads = c.stats.Loads
	cum.Stores = c.stats.Stores
	cum.VPEligible = c.stats.VP.Eligible
	cum.VPPredicted = c.stats.VP.Predicted
	cum.VPCorrect = c.stats.VP.Correct
	cum.ValueFlushes = c.stats.ValueFlushes
	cum.BranchFlushes = c.stats.BranchFlushes
	cum.OrderFlushes = c.stats.OrderFlushes
	cum.ValueReplays = c.stats.ValueReplays
	cum.PAQAllocated = c.stats.PAQAllocated
	cum.PAQDropped = c.stats.PAQDropped
	cum.PAQFull = c.stats.PAQFull
	cum.Prefetches = c.stats.Prefetches
	if c.lscd != nil {
		cum.LSCDInserts = c.lscd.Inserts
		cum.LSCDFiltered = c.lscd.Filtered
	}
	if c.papPred != nil {
		cum.APTLookups = c.papPred.Lookups
		cum.APTHits = c.papPred.Hits
		cum.APTAllocations = c.papPred.Allocations
		cum.APTConfResets = c.papPred.ConfResets
		cum.APTTagAliases = c.papPred.TagAliases
		cum.FPCBumps = c.papPred.ConfBumps
		cum.FPCSaturations = c.papPred.ConfSaturations
	}
	m := c.hier.Counters()
	cum.Probes = m.Probes
	cum.ProbeHits = m.ProbeHits
	cum.L1DAccesses = m.L1DAccesses
	cum.L1DMisses = m.L1DMisses
	cum.L2Accesses = m.L2Accesses
	cum.L2Misses = m.L2Misses
	cum.L3Accesses = m.L3Accesses
	cum.L3Misses = m.L3Misses
	cum.TLBAccesses = m.TLBAccesses
	cum.TLBMisses = m.TLBMisses
}
