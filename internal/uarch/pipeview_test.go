package uarch

import (
	"strings"
	"testing"

	"dlvp/internal/config"
	"dlvp/internal/workloads"
)

// stageTraceRun simulates a workload with stage tracing enabled and
// returns the captured traces.
func stageTraceRun(t *testing.T, name string, cfg config.Core, instrs, start uint64, want int) []StageTrace {
	t.Helper()
	w, ok := workloads.ByName(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	c := New(cfg, w.Build(), w.Reader(instrs))
	c.EnableStageTrace(start, want)
	if s := c.Run(instrs * 100); s.Instructions == 0 {
		t.Fatalf("%s: nothing committed", name)
	}
	return c.StageTraces()
}

// The trace window must start at the requested sequence number and stop
// after exactly n captures, committed order, even mid-run.
func TestStageTraceWindowBoundaries(t *testing.T) {
	const instrs, start, want = 5_000, 1_000, 64
	traces := stageTraceRun(t, "perlbmk", config.Baseline(), instrs, start, want)
	if len(traces) != want {
		t.Fatalf("captured %d traces, want %d", len(traces), want)
	}
	if traces[0].Seq < start {
		t.Errorf("first trace seq = %d, before window start %d", traces[0].Seq, start)
	}
	for i := 1; i < len(traces); i++ {
		if traces[i].Seq <= traces[i-1].Seq {
			t.Fatalf("traces out of commit order at %d: %d then %d", i, traces[i-1].Seq, traces[i].Seq)
		}
	}
	for i, tr := range traces {
		if tr.Commit < tr.Fetch || tr.Complete < tr.Rename {
			t.Errorf("trace %d has impossible stage ordering: %+v", i, tr)
		}
	}
}

// A window starting past the instruction budget captures nothing, and a
// window larger than the run is truncated to what committed.
func TestStageTraceWindowEdges(t *testing.T) {
	if traces := stageTraceRun(t, "perlbmk", config.Baseline(), 2_000, 10_000, 16); len(traces) != 0 {
		t.Errorf("window past the run captured %d traces, want 0", len(traces))
	}
	traces := stageTraceRun(t, "perlbmk", config.Baseline(), 2_000, 1_990, 500)
	if len(traces) == 0 || len(traces) > 500 {
		t.Errorf("tail window captured %d traces", len(traces))
	}
}

// Value-predicted instructions must carry the Predicted mark, rendered as
// "*" in the vp column.
func TestStageTraceMarksPredicted(t *testing.T) {
	traces := stageTraceRun(t, "mcf", config.DLVP(), 60_000, 30_000, 2_000)
	predicted := 0
	for _, tr := range traces {
		if tr.Predicted {
			predicted++
		}
	}
	if predicted == 0 {
		t.Fatal("no predicted instructions in a warmed-up DLVP window")
	}
	out := FormatStageTraces(traces)
	if !strings.Contains(out, "*") {
		t.Error("rendered table missing the '*' predicted mark")
	}
	if !strings.Contains(out, "F=fetch R=rename I=issue E=complete C=commit") {
		t.Error("rendered diagram missing the stage legend")
	}
}

// An empty capture renders the sentinel line rather than an empty table.
func TestFormatStageTracesEmpty(t *testing.T) {
	if got := FormatStageTraces(nil); got != "no stage traces recorded\n" {
		t.Errorf("empty render = %q", got)
	}
	if got := FormatStageTraces([]StageTrace{}); got != "no stage traces recorded\n" {
		t.Errorf("empty-slice render = %q", got)
	}
}
