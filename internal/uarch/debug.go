package uarch

import "fmt"

// Debug returns a one-line internal-state summary for diagnostics.
func (c *Core) Debug() string {
	s := fmt.Sprintf("head=%d fetch=%d rename=%d paq=%d stall=%d",
		c.headSeq, c.fetchSeq, c.renameSeq, c.paqLen(), c.fetchStallUntil)
	if c.papPred != nil {
		s += fmt.Sprintf(" pap[lookups=%d hits=%d allocs=%d resets=%d hist=%#x]",
			c.papPred.Lookups, c.papPred.Hits, c.papPred.Allocations,
			c.papPred.ConfResets, c.papPred.History())
	}
	if c.vtPred != nil {
		s += fmt.Sprintf(" vtage[lookups=%d hits=%d allocs=%d filtered=%d miss=%d stale=%d match=%d mismatch=%d]",
			c.vtPred.Lookups, c.vtPred.Hits, c.vtPred.Allocations, c.vtPred.FilteredOps,
			c.vtPred.TrainMiss, c.vtPred.TrainStale, c.vtPred.TrainMatch, c.vtPred.TrainMismatch)
	}
	return s
}
