// Package energy provides the analytic area/energy model standing in for
// the paper's RTL-PTPX-validated 28nm model. Structures are modelled as
// multi-ported RAMs whose area and per-access energy scale with capacity
// and port count; the constants are calibrated so the *normalized* ratios
// of the paper's Table 2 (PVT vs PRF designs) are approximated. The package
// also aggregates total core energy (Figure 6c) from cycle counts,
// committed instructions, and per-structure access counts.
package energy

import (
	"fmt"
	"math"
	"sort"
)

// RAMSpec describes one multi-ported RAM structure.
type RAMSpec struct {
	Name       string
	Bits       int
	ReadPorts  int
	WritePorts int
}

// Calibration constants for the analytic model. Area grows with capacity
// and quadratically with total ports (wire-dominated multi-port RAMs);
// per-access energy grows with the square root of capacity (bitline halves)
// and with port loading.
const (
	areaPortConst = 169.0
	readPortConst = 4.0
)

func (s RAMSpec) ports() float64 { return float64(s.ReadPorts + s.WritePorts) }

// Area returns the structure's area in arbitrary units.
func (s RAMSpec) Area() float64 {
	p := s.ports()
	return float64(s.Bits) * (areaPortConst + p*p)
}

// ReadEnergy returns the energy of one read access in arbitrary units.
func (s RAMSpec) ReadEnergy() float64 {
	return math.Sqrt(float64(s.Bits)) * (readPortConst + s.ports())
}

// WriteEnergy returns the energy of one write access in arbitrary units.
func (s RAMSpec) WriteEnergy() float64 {
	return math.Sqrt(float64(s.Bits)) *
		math.Pow(float64(s.WritePorts), 1.5) * math.Pow(s.ports(), 0.33)
}

// Meter accumulates per-structure access counts against registered specs.
type Meter struct {
	specs  map[string]RAMSpec
	reads  map[string]uint64
	writes map[string]uint64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{
		specs:  make(map[string]RAMSpec),
		reads:  make(map[string]uint64),
		writes: make(map[string]uint64),
	}
}

// Register declares a structure. Registering the same name twice replaces
// the spec but keeps the counts.
func (m *Meter) Register(spec RAMSpec) { m.specs[spec.Name] = spec }

// AddReads records n read accesses to the named structure.
func (m *Meter) AddReads(name string, n uint64) { m.reads[name] += n }

// AddWrites records n write accesses to the named structure.
func (m *Meter) AddWrites(name string, n uint64) { m.writes[name] += n }

// DynamicEnergy returns the total access energy across all structures.
// The sum runs over the sorted breakdown, not the spec map: float addition
// is not associative, so a map-order walk would change the total in the
// last ULP from run to run and identical simulations would no longer
// produce bit-identical RunStats.
func (m *Meter) DynamicEnergy() float64 {
	var e float64
	for _, s := range m.Breakdown() {
		e += s.Energy
	}
	return e
}

// Breakdown returns per-structure dynamic energy, sorted by name.
func (m *Meter) Breakdown() []StructureEnergy {
	var out []StructureEnergy
	for name, spec := range m.specs {
		out = append(out, StructureEnergy{
			Name:   name,
			Reads:  m.reads[name],
			Writes: m.writes[name],
			Energy: float64(m.reads[name])*spec.ReadEnergy() + float64(m.writes[name])*spec.WriteEnergy(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// StructureEnergy is one row of a Meter breakdown.
type StructureEnergy struct {
	Name   string
	Reads  uint64
	Writes uint64
	Energy float64
}

// CoreModel aggregates total core energy: a static component per cycle, a
// base dynamic component per committed instruction (covering the
// un-modelled logic), and the metered structure accesses.
type CoreModel struct {
	StaticPerCycle float64
	PerInstruction float64
}

// DefaultCoreModel returns constants sized so that leakage plus base
// dynamic power dominates structure-access energy — a speedup of a few
// percent then visibly reduces total energy, as in the paper's Figure 6c.
func DefaultCoreModel() CoreModel {
	return CoreModel{StaticPerCycle: 3.0e5, PerInstruction: 1.0e5}
}

// Total returns the run's core energy.
func (c CoreModel) Total(cycles, instructions uint64, meter *Meter) float64 {
	e := c.StaticPerCycle*float64(cycles) + c.PerInstruction*float64(instructions)
	if meter != nil {
		e += meter.DynamicEnergy()
	}
	return e
}

// --- Table 2: VPE design comparison ----------------------------------------

// VPEDesign is one row of the paper's Table 2, normalized to Design #1.
type VPEDesign struct {
	Name        string
	Area        float64
	ReadEnergy  float64
	WriteEnergy float64
}

// PVTSpec returns the Predicted Values Table structure: 32 entries, each a
// physical-register tag (9 bits for 348 registers) plus a 64-bit value,
// with 2 read and 2 write ports (two predictions per cycle).
func PVTSpec() RAMSpec {
	return RAMSpec{Name: "PVT", Bits: 32 * (9 + 64), ReadPorts: 2, WritePorts: 2}
}

// PRFSpec returns the baseline physical register file: 348 64-bit
// registers with the given port counts.
func PRFSpec(readPorts, writePorts int) RAMSpec {
	return RAMSpec{Name: "PRF", Bits: 348 * 64, ReadPorts: readPorts, WritePorts: writePorts}
}

// VPEDesigns reproduces Table 2: Design #1 arbitrates on the baseline PRF
// (8r/8w), Design #2 widens the PRF to 10 write ports, Design #3 keeps the
// baseline PRF and adds the PVT. predictedFrac is the fraction of register
// reads/writes that are predicted values (the paper assumes 30%). Energies
// are per-average-access, normalized to Design #1; the PVT row reports the
// raw structure ratios.
func VPEDesigns(predictedFrac float64) []VPEDesign {
	if predictedFrac < 0 || predictedFrac > 1 {
		panic(fmt.Sprintf("energy: predictedFrac %v out of [0,1]", predictedFrac))
	}
	base := PRFSpec(8, 8)
	wide := PRFSpec(8, 10)
	pvt := PVTSpec()

	baseArea, baseRead, baseWrite := base.Area(), base.ReadEnergy(), base.WriteEnergy()

	d1 := VPEDesign{Name: "Design #1 (PRF 8r/8w, arbitrated)", Area: 1, ReadEnergy: 1, WriteEnergy: 1}
	d2 := VPEDesign{
		Name:        "Design #2 (PRF 8r/10w)",
		Area:        wide.Area() / baseArea,
		ReadEnergy:  wide.ReadEnergy() / baseRead,
		WriteEnergy: wide.WriteEnergy() / baseWrite,
	}
	// Design #3: predicted values are read from the PVT instead of the PRF
	// (cheaper reads); they are written to the PVT *in addition to* the
	// eventual architectural PRF write (costlier writes).
	d3 := VPEDesign{
		Name:        "Design #3 (PRF 8r/8w + PVT 2r/2w)",
		Area:        (base.Area() + pvt.Area()) / baseArea,
		ReadEnergy:  ((1-predictedFrac)*baseRead + predictedFrac*pvt.ReadEnergy()) / baseRead,
		WriteEnergy: (baseWrite + predictedFrac*pvt.WriteEnergy()) / baseWrite,
	}
	pv := VPEDesign{
		Name:        "PVT (2r/2w)",
		Area:        pvt.Area() / baseArea,
		ReadEnergy:  pvt.ReadEnergy() / baseRead,
		WriteEnergy: pvt.WriteEnergy() / baseWrite,
	}
	return []VPEDesign{pv, d1, d2, d3}
}
