package energy

import (
	"math"
	"testing"
)

func TestAreaGrowsWithBitsAndPorts(t *testing.T) {
	a := RAMSpec{Bits: 1000, ReadPorts: 2, WritePorts: 2}
	b := RAMSpec{Bits: 2000, ReadPorts: 2, WritePorts: 2}
	c := RAMSpec{Bits: 1000, ReadPorts: 8, WritePorts: 8}
	if b.Area() <= a.Area() {
		t.Error("area must grow with bits")
	}
	if c.Area() <= a.Area() {
		t.Error("area must grow with ports")
	}
	if b.Area()/a.Area() != 2 {
		t.Error("area must be linear in bits")
	}
}

func TestEnergyMonotonic(t *testing.T) {
	small := RAMSpec{Bits: 1000, ReadPorts: 2, WritePorts: 2}
	big := RAMSpec{Bits: 1000, ReadPorts: 8, WritePorts: 10}
	if big.ReadEnergy() <= small.ReadEnergy() {
		t.Error("read energy must grow with ports")
	}
	if big.WriteEnergy() <= small.WriteEnergy() {
		t.Error("write energy must grow with write ports")
	}
}

func TestVPEDesignsShape(t *testing.T) {
	rows := VPEDesigns(0.30)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	pvt, d1, d2, d3 := rows[0], rows[1], rows[2], rows[3]
	// Table 2's qualitative shape:
	// PVT is tiny relative to the PRF.
	if pvt.Area > 0.15 {
		t.Errorf("PVT relative area = %v, want << 1 (paper: 0.06)", pvt.Area)
	}
	// Design #1 is the reference.
	if d1.Area != 1 || d1.ReadEnergy != 1 || d1.WriteEnergy != 1 {
		t.Errorf("design 1 must be 1.0 across: %+v", d1)
	}
	// Design #2 (more write ports) costs more area than Design #3 (PVT).
	if d2.Area <= d3.Area {
		t.Errorf("design2 area (%v) must exceed design3 (%v)", d2.Area, d3.Area)
	}
	if d3.Area <= 1 || d3.Area > 1.15 {
		t.Errorf("design3 area = %v, want slightly above 1 (paper: 1.06)", d3.Area)
	}
	// Design #3 reads get cheaper (PVT reads replace PRF reads)...
	if d3.ReadEnergy >= 1 {
		t.Errorf("design3 read energy = %v, want < 1 (paper: 0.80)", d3.ReadEnergy)
	}
	// ...and writes slightly costlier (extra PVT writes).
	if d3.WriteEnergy <= 1 || d3.WriteEnergy > 1.2 {
		t.Errorf("design3 write energy = %v, want slightly above 1 (paper: 1.07)", d3.WriteEnergy)
	}
	// Design #2 write energy is the most expensive.
	if d2.WriteEnergy <= d3.WriteEnergy {
		t.Errorf("design2 writes (%v) must exceed design3 (%v)", d2.WriteEnergy, d3.WriteEnergy)
	}
	// Paper's headline ratios within loose tolerance.
	approx := func(got, want, tol float64) bool { return math.Abs(got-want) <= tol }
	if !approx(d2.Area, 1.16, 0.08) {
		t.Errorf("design2 area = %v, paper 1.16", d2.Area)
	}
	if !approx(d2.ReadEnergy, 1.10, 0.06) {
		t.Errorf("design2 read = %v, paper 1.10", d2.ReadEnergy)
	}
	if !approx(d2.WriteEnergy, 1.51, 0.15) {
		t.Errorf("design2 write = %v, paper 1.51", d2.WriteEnergy)
	}
}

func TestVPEDesignsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	VPEDesigns(1.5)
}

func TestMeterAccounting(t *testing.T) {
	m := NewMeter()
	spec := RAMSpec{Name: "APT", Bits: 1024 * 69, ReadPorts: 2, WritePorts: 1}
	m.Register(spec)
	m.AddReads("APT", 10)
	m.AddWrites("APT", 5)
	want := 10*spec.ReadEnergy() + 5*spec.WriteEnergy()
	if got := m.DynamicEnergy(); math.Abs(got-want) > 1e-9 {
		t.Errorf("dynamic energy = %v, want %v", got, want)
	}
	br := m.Breakdown()
	if len(br) != 1 || br[0].Name != "APT" || br[0].Reads != 10 || br[0].Writes != 5 {
		t.Errorf("breakdown = %+v", br)
	}
}

func TestMeterUnregisteredCountsIgnored(t *testing.T) {
	m := NewMeter()
	m.AddReads("ghost", 100)
	if m.DynamicEnergy() != 0 {
		t.Error("counts without a spec must not contribute energy")
	}
}

func TestCoreModelSpeedupReducesEnergy(t *testing.T) {
	// The Figure 6c mechanism: fewer cycles at the same instruction count
	// must reduce total energy even with extra structure activity.
	cm := DefaultCoreModel()
	meterBase := NewMeter()
	meterFast := NewMeter()
	probe := RAMSpec{Name: "L1D", Bits: 64 << 13, ReadPorts: 2, WritePorts: 1}
	meterBase.Register(probe)
	meterFast.Register(probe)
	meterBase.AddReads("L1D", 100_000)
	meterFast.AddReads("L1D", 200_000) // DLVP probes twice
	base := cm.Total(1_000_000, 500_000, meterBase)
	fast := cm.Total(952_000, 500_000, meterFast) // 4.8% fewer cycles
	if fast >= base {
		t.Errorf("4.8%% speedup with double probes should still save energy: %v vs %v", fast, base)
	}
}

func TestCoreModelNilMeter(t *testing.T) {
	cm := CoreModel{StaticPerCycle: 1, PerInstruction: 2}
	if got := cm.Total(10, 5, nil); got != 20 {
		t.Errorf("total = %v, want 20", got)
	}
}

// The total must not depend on map iteration order: float addition is not
// associative, and a run-to-run ULP wobble breaks bit-identical RunStats
// (the trace-replay equivalence guarantee). Build the same meter many
// times; every total must be exactly equal.
func TestDynamicEnergyDeterministic(t *testing.T) {
	build := func() *Meter {
		m := NewMeter()
		for i, name := range []string{"L1D", "L1I", "L2", "L3", "PRF", "PVT", "APT", "VTAGE"} {
			m.Register(RAMSpec{Name: name, Bits: 1 << (10 + i), ReadPorts: 2, WritePorts: 1})
			m.AddReads(name, uint64(1_000_003*(i+1)))
			m.AddWrites(name, uint64(700_001*(i+1)))
		}
		return m
	}
	want := build().DynamicEnergy()
	for i := 0; i < 50; i++ {
		if got := build().DynamicEnergy(); got != want {
			t.Fatalf("iteration %d: total %v differs from %v (order-dependent sum)", i, got, want)
		}
	}
}
