package dispatch

import (
	"context"

	"dlvp/internal/metrics"
	"dlvp/internal/runner"
)

// Backend executes simulation jobs on behalf of the dispatcher. The two
// implementations are LocalBackend (an in-process runner engine) and
// HTTPBackend (a peer daemon speaking the /v1/runs wire protocol).
type Backend interface {
	// Name identifies the backend. It is the rendezvous-hash identity, so
	// it must be stable for affinity routing to hold: the same job key and
	// the same backend names always produce the same routing order.
	Name() string
	// Run executes one job, returning its statistics and whether the
	// result was served from a cache (local or remote).
	Run(ctx context.Context, job runner.Job) (metrics.RunStats, bool, error)
	// CheckHealth probes the backend; nil means it can accept work. The
	// dispatcher calls this from its active health loop.
	CheckHealth(ctx context.Context) error
}

// ResultBackend is the optional richer surface of a Backend: a full
// runner.Result instead of flattened statistics, so sampled-run
// provenance survives routing. Both shipped backends implement it; the
// dispatcher falls back to Run for ones that don't.
type ResultBackend interface {
	RunResult(ctx context.Context, job runner.Job) (runner.Result, bool, error)
}

// runBackend invokes b through its richest supported surface.
func runBackend(ctx context.Context, b Backend, job runner.Job) (runner.Result, bool, error) {
	if rb, ok := b.(ResultBackend); ok {
		return rb.RunResult(ctx, job)
	}
	st, cached, err := b.Run(ctx, job)
	return runner.Result{Stats: st}, cached, err
}

// LocalBackend adapts an in-process runner engine to the Backend
// interface. It is the dispatcher's guaranteed fallback: it is never
// ejected, so a clustered daemon can never do worse than standalone mode.
type LocalBackend struct {
	name string
	eng  *runner.Runner
}

// NewLocalBackend wraps eng. An empty name defaults to "local"; daemons
// that advertise themselves to peers should pass their advertised address
// instead so every ring member ranks them identically.
func NewLocalBackend(name string, eng *runner.Runner) *LocalBackend {
	if name == "" {
		name = "local"
	}
	return &LocalBackend{name: name, eng: eng}
}

// Name implements Backend.
func (b *LocalBackend) Name() string { return b.name }

// Run implements Backend by executing on the wrapped engine.
func (b *LocalBackend) Run(ctx context.Context, job runner.Job) (metrics.RunStats, bool, error) {
	return b.eng.Run(ctx, job)
}

// RunResult implements ResultBackend on the wrapped engine.
func (b *LocalBackend) RunResult(ctx context.Context, job runner.Job) (runner.Result, bool, error) {
	return b.eng.RunResult(ctx, job)
}

// CheckHealth implements Backend; the in-process engine is always healthy.
func (b *LocalBackend) CheckHealth(context.Context) error { return nil }
