package dispatch

import (
	"context"
	"time"
)

// noteSuccess records a successful call or probe: the backend is healthy,
// its failure streak and backoff reset, and an ejected backend is
// reinstated immediately.
func (d *Dispatcher) noteSuccess(bs *backendState) {
	if bs.local {
		return
	}
	bs.mu.Lock()
	was := bs.ejected
	bs.ejected = false
	bs.consecFails = 0
	bs.backoff = 0
	bs.nextProbe = time.Time{}
	bs.lastErr = ""
	bs.mu.Unlock()
	if was && d.opts.Obs != nil {
		d.opts.Obs.Log.Info("dispatch: backend reinstated", "backend", bs.name)
	}
}

// noteFailure records a failed call or probe. Once the consecutive-failure
// streak reaches the ejection threshold the backend leaves the ring; each
// further failure doubles the re-probe backoff up to the configured
// maximum, so a dead peer costs one cheap probe per backoff window instead
// of a timed-out request per job.
func (d *Dispatcher) noteFailure(bs *backendState, err error) {
	if bs.local {
		return
	}
	now := time.Now()
	bs.mu.Lock()
	bs.consecFails++
	bs.lastErr = err.Error()
	if bs.backoff == 0 {
		bs.backoff = d.opts.BackoffBase
	} else {
		bs.backoff *= 2
		if bs.backoff > d.opts.BackoffMax {
			bs.backoff = d.opts.BackoffMax
		}
	}
	bs.nextProbe = now.Add(bs.backoff)
	ejectedNow := !bs.ejected && bs.consecFails >= d.opts.FailThreshold
	if ejectedNow {
		bs.ejected = true
	}
	bs.mu.Unlock()
	if ejectedNow && d.opts.Obs != nil {
		d.opts.Obs.Log.Warn("dispatch: backend ejected", "backend", bs.name, "error", err)
	}
}

// healthLoop actively probes remote backends until Close. Healthy peers
// are probed every HealthInterval; failing or ejected peers follow their
// exponential backoff schedule, which is also the reinstatement path — a
// probe that succeeds puts the peer straight back into the ring.
func (d *Dispatcher) healthLoop() {
	ticker := time.NewTicker(d.opts.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			d.probeDue(time.Now())
		}
	}
}

// probeDue probes every remote backend whose backoff window has passed.
func (d *Dispatcher) probeDue(now time.Time) {
	for _, bs := range d.states {
		if bs.local {
			continue
		}
		bs.mu.Lock()
		due := bs.nextProbe.IsZero() || !now.Before(bs.nextProbe)
		bs.mu.Unlock()
		if due {
			d.probe(bs)
		}
	}
}

// ProbeAll health-checks every remote backend immediately, ignoring
// backoff schedules. Operators (and tests) use it to force a prompt
// ejection/reinstatement decision instead of waiting out the interval.
func (d *Dispatcher) ProbeAll(ctx context.Context) {
	for _, bs := range d.states {
		if bs.local {
			continue
		}
		select {
		case <-ctx.Done():
			return
		default:
		}
		d.probe(bs)
	}
}

// probe runs one health check and feeds the outcome into the
// ejection/reinstatement state machine.
func (d *Dispatcher) probe(bs *backendState) {
	ctx, cancel := context.WithTimeout(context.Background(), d.opts.ProbeTimeout)
	err := bs.b.CheckHealth(ctx)
	cancel()
	bs.mu.Lock()
	bs.lastProbe = time.Now()
	bs.mu.Unlock()
	if err != nil {
		d.noteFailure(bs, err)
		return
	}
	d.noteSuccess(bs)
}
