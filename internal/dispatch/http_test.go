package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dlvp/internal/metrics"
	"dlvp/internal/obs"
)

// TestHTTPBackendRoundTrip: the wire request carries the forwarded marker
// and the full config, and the peer's stats decode back out.
func TestHTTPBackendRoundTrip(t *testing.T) {
	job := baselineJob(1234)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/runs" {
			t.Errorf("unexpected %s %s", r.Method, r.URL.Path)
		}
		if r.Header.Get(ForwardedHeader) == "" {
			t.Error("forwarded marker missing: peers would re-dispatch in a loop")
		}
		var req wireRunRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode: %v", err)
		}
		if req.Workload != job.Workload || req.Instrs != job.Instrs || req.Config == nil {
			t.Errorf("wire request incomplete: %+v", req)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"cached": true,
			"stats":  metrics.RunStats{Workload: req.Workload, Instructions: req.Instrs},
		})
	}))
	defer ts.Close()

	b, err := NewHTTPBackend(ts.URL, HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st, cached, err := b.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || st.Instructions != job.Instrs || st.Workload != job.Workload {
		t.Errorf("round trip lost data: cached=%v stats=%+v", cached, st)
	}
}

// TestHTTPBackendForwardsRequestID: regression test — a run forwarded to
// a peer must carry the originating request ID and a traceparent linking
// the peer's spans under the caller's current span, so the remote
// access-log line and job record join the caller's trace instead of
// minting a fresh unlinkable ID.
func TestHTTPBackendForwardsRequestID(t *testing.T) {
	type seen struct{ reqID, traceparent string }
	got := make(chan seen, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got <- seen{r.Header.Get("X-Request-ID"), r.Header.Get(obs.TraceParentHeader)}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"stats": metrics.RunStats{}})
	}))
	defer ts.Close()
	b, err := NewHTTPBackend(ts.URL, HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}

	tracer := obs.NewTracer(4)
	tracer.Begin("req-42")
	ctx := obs.ContextWithTrace(context.Background(), tracer, "req-42")
	ctx, sp := obs.StartSpanCtx(ctx, "dispatch.attempt")
	if _, _, err := b.RunResult(ctx, baselineJob(1)); err != nil {
		t.Fatal(err)
	}
	s := <-got
	if s.reqID != "req-42" {
		t.Errorf("X-Request-ID = %q, want the originating trace ID", s.reqID)
	}
	wantTP := obs.FormatTraceParent("req-42", sp.ID())
	if s.traceparent != wantTP {
		t.Errorf("traceparent = %q, want %q", s.traceparent, wantTP)
	}
	sp.End()
}

// TestHTTPBackendNoTraceNoHeaders: without a trace in ctx no trace headers
// leak, and an invalid trace ID is never forwarded.
func TestHTTPBackendNoTraceNoHeaders(t *testing.T) {
	got := make(chan http.Header, 2)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got <- r.Header.Clone()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"stats": metrics.RunStats{}})
	}))
	defer ts.Close()
	b, err := NewHTTPBackend(ts.URL, HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := b.RunResult(context.Background(), baselineJob(1)); err != nil {
		t.Fatal(err)
	}
	h := <-got
	if h.Get("X-Request-ID") != "" || h.Get(obs.TraceParentHeader) != "" {
		t.Errorf("trace headers sent without a trace: %v", h)
	}

	// A trace ID that fails ValidTraceID (e.g. adversarial header
	// injection via context) must not be forwarded.
	tracer := obs.NewTracer(4)
	bad := "evil\r\nX-Injected: 1"
	tracer.Begin(bad)
	ctx := obs.ContextWithTrace(context.Background(), tracer, bad)
	if _, _, err := b.RunResult(ctx, baselineJob(1)); err != nil {
		t.Fatal(err)
	}
	h = <-got
	if h.Get("X-Request-ID") != "" || h.Get(obs.TraceParentHeader) != "" {
		t.Errorf("invalid trace ID forwarded: %v", h)
	}
}

// TestHTTPBackendHealthProbeExcluded: health probes are background noise
// and must never carry trace headers, even when the probing context has a
// live trace.
func TestHTTPBackendHealthProbeExcluded(t *testing.T) {
	got := make(chan http.Header, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got <- r.Header.Clone()
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	b, err := NewHTTPBackend(ts.URL, HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(4)
	tracer.Begin("probe-trace")
	ctx := obs.ContextWithTrace(context.Background(), tracer, "probe-trace")
	if err := b.CheckHealth(ctx); err != nil {
		t.Fatal(err)
	}
	h := <-got
	if h.Get("X-Request-ID") != "" || h.Get(obs.TraceParentHeader) != "" {
		t.Errorf("health probe carried trace headers: %v", h)
	}
}

// TestHTTPBackendTypedErrors: peer failures decode into typed errors with
// the right retry classification.
func TestHTTPBackendTypedErrors(t *testing.T) {
	status := make(chan int, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		code := <-status
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "synthetic failure"})
	}))
	defer ts.Close()
	b, err := NewHTTPBackend(ts.URL, HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		code      int
		retryable bool
	}{
		{http.StatusBadRequest, false},
		{http.StatusInternalServerError, true},
		{http.StatusServiceUnavailable, true},
		{http.StatusGatewayTimeout, true},
		{http.StatusTooManyRequests, true},
	}
	for _, tc := range cases {
		status <- tc.code
		_, _, err := b.Run(context.Background(), baselineJob(1))
		var re *RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("code %d: err = %v, want RemoteError", tc.code, err)
		}
		if re.Status != tc.code || re.Msg != "synthetic failure" {
			t.Errorf("code %d decoded as %+v", tc.code, re)
		}
		if got := isRetryable(context.Background(), err); got != tc.retryable {
			t.Errorf("code %d retryable = %v, want %v", tc.code, got, tc.retryable)
		}
	}

	// Connection-level failure: a closed listener is a retryable
	// TransportError.
	dead, err := NewHTTPBackend(ts.URL, HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts.Close()
	_, _, err = dead.Run(context.Background(), baselineJob(1))
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TransportError", err)
	}
	if !isRetryable(context.Background(), err) {
		t.Error("transport error must be retryable")
	}
	if err := dead.CheckHealth(context.Background()); err == nil {
		t.Error("health probe of a dead peer succeeded")
	}
}

// TestHTTPBackendHealth: 200 is healthy, 503 (draining) is not.
func TestHTTPBackendHealth(t *testing.T) {
	draining := false
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s", r.URL.Path)
		}
		if draining {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	b, err := NewHTTPBackend(ts.URL+"/", HTTPOptions{}) // trailing slash normalised
	if err != nil {
		t.Fatal(err)
	}
	if err := b.CheckHealth(context.Background()); err != nil {
		t.Errorf("healthy peer probed unhealthy: %v", err)
	}
	draining = true
	err = b.CheckHealth(context.Background())
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != http.StatusServiceUnavailable {
		t.Errorf("draining peer probe = %v, want 503 RemoteError", err)
	}
}

// TestHTTPBackendTimeout: a stalled peer trips the per-request timeout as
// a retryable transport error without waiting on the caller's context.
func TestHTTPBackendTimeout(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer ts.Close()
	defer close(release) // LIFO: unblock the handler before ts.Close waits on it
	b, err := NewHTTPBackend(ts.URL, HTTPOptions{Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, err = b.Run(context.Background(), baselineJob(1))
	if err == nil || time.Since(start) > 5*time.Second {
		t.Fatalf("per-request timeout did not fire: %v", err)
	}
	if !isRetryable(context.Background(), err) {
		t.Errorf("timeout should re-route: %v", err)
	}
}

// TestNewHTTPBackendValidation rejects malformed peer URLs.
func TestNewHTTPBackendValidation(t *testing.T) {
	for _, bad := range []string{"", "ftp://host", "host:8080", "http://"} {
		if _, err := NewHTTPBackend(bad, HTTPOptions{}); err == nil {
			t.Errorf("peer URL %q accepted", bad)
		}
	}
	b, err := NewHTTPBackend("http://10.1.2.3:9090/", HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "http://10.1.2.3:9090" {
		t.Errorf("name = %q", b.Name())
	}
}
