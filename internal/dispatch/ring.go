package dispatch

import (
	"context"
	"errors"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrSaturated reports a backend whose in-flight limit and bounded queue
// are both full. The dispatcher treats it like a retryable failure —
// re-route to the next backend in the ring — but it does not consume the
// retry budget, since nothing was attempted.
var ErrSaturated = errors.New("dispatch: backend saturated")

// backendState is a ring member: the Backend plus its health, flow-control
// and accounting state.
type backendState struct {
	b     Backend
	name  string
	local bool
	sem   chan struct{} // in-flight slots; nil = unlimited (local)

	waiting   atomic.Int64 // queued for a slot now
	inflight  atomic.Int64 // executing now
	attempts  atomic.Int64
	successes atomic.Int64
	failures  atomic.Int64
	cancelled atomic.Int64 // hedge losers and caller cancellations
	saturated atomic.Int64
	hedges    atomic.Int64 // hedge requests launched on this backend
	hedgeWins atomic.Int64 // hedges whose response was used

	mu          sync.Mutex
	ejected     bool
	consecFails int
	lastErr     string
	lastProbe   time.Time
	nextProbe   time.Time
	backoff     time.Duration
}

func newBackendState(b Backend, local bool, maxInFlight int) *backendState {
	bs := &backendState{b: b, name: b.Name(), local: local}
	if !local && maxInFlight > 0 {
		bs.sem = make(chan struct{}, maxInFlight)
	}
	return bs
}

// isEjected reports whether the backend is currently out of the ring.
// Local backends are never ejected.
func (bs *backendState) isEjected() bool {
	if bs.local {
		return false
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.ejected
}

// acquire claims an in-flight slot, queueing up to maxQueue waiters. The
// returned release function must be called exactly once when the attempt
// finishes. A full queue fails fast with ErrSaturated so the dispatcher
// can re-route instead of piling up goroutines behind a slow peer.
func (bs *backendState) acquire(ctx context.Context, maxQueue int) (func(), error) {
	if bs.sem == nil {
		return func() {}, nil
	}
	release := func() { <-bs.sem }
	select {
	case bs.sem <- struct{}{}:
		return release, nil
	default:
	}
	if int(bs.waiting.Add(1)) > maxQueue {
		bs.waiting.Add(-1)
		return nil, ErrSaturated
	}
	defer bs.waiting.Add(-1)
	select {
	case bs.sem <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// tryAcquire claims a slot without queueing (used for hedge launches: a
// hedge is opportunistic, it never waits).
func (bs *backendState) tryAcquire() (func(), bool) {
	if bs.sem == nil {
		return func() {}, true
	}
	select {
	case bs.sem <- struct{}{}:
		return func() { <-bs.sem }, true
	default:
		return nil, false
	}
}

// score is the rendezvous (highest-random-weight) hash of one
// (backend, job key) pair. FNV-1a is stable across processes and Go
// versions, so every ring member with the same backend names computes the
// same ranking.
func score(backend, key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(backend))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// rank orders the ring for one job key, highest rendezvous score first.
// Identical keys always produce identical orders over a stable backend
// set, which is what routes repeated jobs onto the peer already holding
// their cached results.
func rank(states []*backendState, key string) []*backendState {
	out := append([]*backendState(nil), states...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := score(out[i].name, key), score(out[j].name, key)
		if si != sj {
			return si > sj
		}
		return out[i].name < out[j].name
	})
	return out
}
