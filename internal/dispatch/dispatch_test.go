package dispatch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dlvp/internal/config"
	"dlvp/internal/metrics"
	"dlvp/internal/obs"
	"dlvp/internal/runner"
)

// fakeBackend is a scriptable in-memory Backend for dispatcher tests.
type fakeBackend struct {
	name  string
	calls atomic.Int64

	mu        sync.Mutex
	healthErr error
	runFn     func(ctx context.Context, job runner.Job) (metrics.RunStats, bool, error)
}

func (f *fakeBackend) Name() string { return f.name }

func (f *fakeBackend) Run(ctx context.Context, job runner.Job) (metrics.RunStats, bool, error) {
	f.calls.Add(1)
	f.mu.Lock()
	fn := f.runFn
	f.mu.Unlock()
	if fn != nil {
		return fn(ctx, job)
	}
	return metrics.RunStats{Workload: job.Workload, Instructions: job.Instrs}, false, nil
}

func (f *fakeBackend) CheckHealth(context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.healthErr
}

func (f *fakeBackend) setHealth(err error) {
	f.mu.Lock()
	f.healthErr = err
	f.mu.Unlock()
}

func (f *fakeBackend) setRun(fn func(ctx context.Context, job runner.Job) (metrics.RunStats, bool, error)) {
	f.mu.Lock()
	f.runFn = fn
	f.mu.Unlock()
}

func failRetryable(name string) func(context.Context, runner.Job) (metrics.RunStats, bool, error) {
	return func(context.Context, runner.Job) (metrics.RunStats, bool, error) {
		return metrics.RunStats{}, false, &TransportError{Backend: name, Err: errors.New("connection refused")}
	}
}

func baselineJob(instrs uint64) runner.Job {
	cfg, _ := config.ByScheme("baseline")
	return runner.Job{Workload: "test", Config: cfg, Instrs: instrs}
}

// jobRankedFirstOn searches instruction budgets until the job's rendezvous
// ranking puts the wanted backend first (and, when requireLocalLast is
// set, the local backend last), so tests can steer routing without
// depending on hash internals.
func jobRankedFirstOn(t *testing.T, d *Dispatcher, want string, requireLocalLast bool) runner.Job {
	t.Helper()
	for instrs := uint64(1); instrs < 10_000; instrs++ {
		job := baselineJob(instrs)
		key, err := job.Key()
		if err != nil {
			t.Fatal(err)
		}
		order := rank(d.states, key)
		if order[0].name != want {
			continue
		}
		if requireLocalLast && !order[len(order)-1].local {
			continue
		}
		return job
	}
	t.Fatalf("no job ranks %s first", want)
	return runner.Job{}
}

func newTestDispatcher(t *testing.T, opts Options) (*Dispatcher, *fakeBackend, []*fakeBackend) {
	t.Helper()
	local := &fakeBackend{name: "local"}
	peers := []*fakeBackend{{name: "http://peer-a:8080"}, {name: "http://peer-b:8080"}}
	opts.Local = local
	opts.Peers = []Backend{peers[0], peers[1]}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = time.Hour // tests drive probes explicitly
	}
	d, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d, local, peers
}

// TestDispatchRetryMarkersAndSpanTree: a retryable failure records a
// dispatch.retry marker span, and per-attempt spans parent under the
// route span so the assembled trace shows one subtree per attempt.
func TestDispatchRetryMarkersAndSpanTree(t *testing.T) {
	ob := obs.NewObserver(nil)
	d, _, peers := newTestDispatcher(t, Options{Obs: ob})
	peers[0].setRun(failRetryable(peers[0].name))
	peers[1].setRun(failRetryable(peers[1].name))

	ob.Tracer.Begin("tr")
	ctx := obs.ContextWithTrace(context.Background(), ob.Tracer, "tr")
	job := jobRankedFirstOn(t, d, peers[0].name, true)
	if _, _, err := d.RunResult(ctx, job); err != nil {
		t.Fatalf("local fallback should have saved the job: %v", err)
	}

	view, ok := ob.Tracer.Get("tr")
	if !ok {
		t.Fatal("trace missing")
	}
	var routeID string
	retries, attempts := 0, 0
	for _, sp := range view.Spans {
		switch sp.Name {
		case "dispatch.route":
			routeID = sp.SpanID
		case "dispatch.retry":
			retries++
			if sp.Marker != obs.MarkerRetry {
				t.Errorf("retry span marker = %q, want %q", sp.Marker, obs.MarkerRetry)
			}
		}
	}
	if retries == 0 {
		t.Error("no dispatch.retry marker spans recorded")
	}
	if routeID == "" {
		t.Fatal("no dispatch.route span recorded")
	}
	for _, sp := range view.Spans {
		if sp.Name == "dispatch.attempt" {
			attempts++
			if sp.ParentID != routeID {
				t.Errorf("attempt span parent = %q, want route %q", sp.ParentID, routeID)
			}
		}
	}
	if attempts < 2 {
		t.Errorf("attempt spans = %d, want >= 2 (failed peer + fallback)", attempts)
	}
}

// TestDispatchHedgeLoserMarker: when the hedge wins, the cancelled
// primary is recorded as an explicit hedge_loser marker span.
func TestDispatchHedgeLoserMarker(t *testing.T) {
	ob := obs.NewObserver(nil)
	d, _, peers := newTestDispatcher(t, Options{Obs: ob, HedgeAfter: 5 * time.Millisecond})
	peers[0].setRun(func(ctx context.Context, job runner.Job) (metrics.RunStats, bool, error) {
		<-ctx.Done() // stall until the winner cancels us
		return metrics.RunStats{}, false, ctx.Err()
	})

	ob.Tracer.Begin("hedged")
	ctx := obs.ContextWithTrace(context.Background(), ob.Tracer, "hedged")
	job := jobRankedFirstOn(t, d, peers[0].name, false)
	if _, _, err := d.RunResult(ctx, job); err != nil {
		t.Fatalf("hedge should have won: %v", err)
	}

	view, _ := ob.Tracer.Get("hedged")
	found := false
	for _, sp := range view.Spans {
		if sp.Name == "dispatch.hedge_loser" {
			found = true
			if sp.Marker != obs.MarkerHedgeLoser {
				t.Errorf("marker = %q, want %q", sp.Marker, obs.MarkerHedgeLoser)
			}
			if sp.Attrs["backend"] != peers[0].name {
				t.Errorf("loser backend = %q, want %q", sp.Attrs["backend"], peers[0].name)
			}
		}
	}
	if !found {
		t.Error("no dispatch.hedge_loser marker span recorded")
	}
}

// TestRankStability: identical keys produce identical orders, different
// keys spread across the ring, and removing one backend never reorders
// the survivors (the rendezvous property that makes ejection cheap).
func TestRankStability(t *testing.T) {
	states := []*backendState{
		newBackendState(&fakeBackend{name: "a"}, true, 0),
		newBackendState(&fakeBackend{name: "b"}, false, 4),
		newBackendState(&fakeBackend{name: "c"}, false, 4),
	}
	first := make(map[string]int)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("job-%d", i)
		got := rank(states, key)
		for j := 0; j < 10; j++ {
			again := rank(states, key)
			for k := range got {
				if got[k].name != again[k].name {
					t.Fatalf("key %q rank unstable: %v vs %v", key, got[k].name, again[k].name)
				}
			}
		}
		first[got[0].name]++

		// Drop the winner: the relative order of the other two must hold.
		var without []*backendState
		for _, bs := range states {
			if bs != got[0] {
				without = append(without, bs)
			}
		}
		sub := rank(without, key)
		if sub[0].name != got[1].name || sub[1].name != got[2].name {
			t.Fatalf("key %q: removing %s reordered survivors: %s,%s vs %s,%s",
				key, got[0].name, sub[0].name, sub[1].name, got[1].name, got[2].name)
		}
	}
	for _, bs := range states {
		if first[bs.name] == 0 {
			t.Errorf("backend %s never ranked first over 200 keys", bs.name)
		}
	}
}

// TestAffinityRouting: repeats of one job land on one backend.
func TestAffinityRouting(t *testing.T) {
	d, local, peers := newTestDispatcher(t, Options{})
	job := baselineJob(42)
	for i := 0; i < 8; i++ {
		if _, _, err := d.Run(context.Background(), job); err != nil {
			t.Fatal(err)
		}
	}
	nonZero := 0
	for _, b := range []*fakeBackend{local, peers[0], peers[1]} {
		if n := b.calls.Load(); n > 0 {
			nonZero++
			if n != 8 {
				t.Errorf("backend %s got %d of 8 calls", b.name, n)
			}
		}
	}
	if nonZero != 1 {
		t.Errorf("job spread across %d backends, want exactly 1", nonZero)
	}
}

// TestRetryBudgetThenLocalFallback: with both peers failing retryably and
// a budget of 2, the dispatcher spends the budget on peers and still
// completes on the guaranteed local fallback.
func TestRetryBudgetThenLocalFallback(t *testing.T) {
	d, local, peers := newTestDispatcher(t, Options{RetryBudget: 2})
	peers[0].setRun(failRetryable(peers[0].name))
	peers[1].setRun(failRetryable(peers[1].name))
	job := jobRankedFirstOn(t, d, peers[0].name, true)

	st, _, err := d.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("local fallback did not save the run: %v", err)
	}
	if st.Instructions != job.Instrs {
		t.Errorf("stats not from fake local: %+v", st)
	}
	if got := peers[0].calls.Load() + peers[1].calls.Load(); got != 2 {
		t.Errorf("remote attempts = %d, want exactly the budget (2)", got)
	}
	if local.calls.Load() != 1 {
		t.Errorf("local calls = %d, want 1", local.calls.Load())
	}
}

// TestRetryBudgetExhaustion: when the local engine fails too, the last
// error surfaces instead of hanging or retrying forever.
func TestRetryBudgetExhaustion(t *testing.T) {
	d, local, peers := newTestDispatcher(t, Options{RetryBudget: 2})
	peers[0].setRun(failRetryable(peers[0].name))
	peers[1].setRun(failRetryable(peers[1].name))
	localErr := errors.New("engine on fire")
	local.setRun(func(context.Context, runner.Job) (metrics.RunStats, bool, error) {
		return metrics.RunStats{}, false, localErr
	})
	job := jobRankedFirstOn(t, d, peers[0].name, true)
	_, _, err := d.Run(context.Background(), job)
	if !errors.Is(err, localErr) {
		t.Fatalf("err = %v, want local engine error", err)
	}
	if local.calls.Load() != 1 {
		t.Errorf("local calls = %d, want 1", local.calls.Load())
	}
}

// TestNonRetryableStopsRouting: a 4xx from the first backend propagates
// immediately — a bad request fails everywhere, so re-routing would only
// triple the error rate.
func TestNonRetryableStopsRouting(t *testing.T) {
	d, local, peers := newTestDispatcher(t, Options{})
	reject := &RemoteError{Backend: peers[0].name, Status: 400, Msg: "unknown workload"}
	peers[0].setRun(func(context.Context, runner.Job) (metrics.RunStats, bool, error) {
		return metrics.RunStats{}, false, reject
	})
	job := jobRankedFirstOn(t, d, peers[0].name, false)
	_, _, err := d.Run(context.Background(), job)
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != 400 {
		t.Fatalf("err = %v, want the 400 RemoteError", err)
	}
	if local.calls.Load()+peers[1].calls.Load() != 0 {
		t.Error("non-retryable error was re-routed")
	}
}

// TestEjectionAndReinstatement drives the active health loop: probes
// eject a failing peer after the threshold, routing skips it, and a
// recovering probe reinstates it.
func TestEjectionAndReinstatement(t *testing.T) {
	d, _, peers := newTestDispatcher(t, Options{FailThreshold: 2, BackoffBase: time.Millisecond})
	peers[0].setHealth(errors.New("probe refused"))

	d.ProbeAll(context.Background())
	if st := d.Status(); st.HealthyPeers != 2 {
		t.Fatalf("one failure below threshold already ejected: %+v", st)
	}
	time.Sleep(2 * time.Millisecond) // let the backoff window pass
	d.ProbeAll(context.Background())
	st := d.Status()
	if st.HealthyPeers != 1 {
		t.Fatalf("healthy peers = %d after threshold, want 1", st.HealthyPeers)
	}
	var ejected *BackendStatus
	for i := range st.Backends {
		if st.Backends[i].Ejected {
			ejected = &st.Backends[i]
		}
	}
	if ejected == nil || ejected.Name != peers[0].name {
		t.Fatalf("ejected backend missing from status: %+v", st.Backends)
	}
	if ejected.ConsecutiveFailures < 2 || ejected.LastError == "" {
		t.Errorf("ejected status lacks failure detail: %+v", ejected)
	}

	// Jobs whose affinity points at the ejected peer re-route.
	job := jobRankedFirstOn(t, d, peers[0].name, false)
	if _, _, err := d.Run(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if peers[0].calls.Load() != 0 {
		t.Error("ejected backend still received work")
	}

	// Recovery: the next probe reinstates.
	peers[0].setHealth(nil)
	d.ProbeAll(context.Background())
	if st := d.Status(); st.HealthyPeers != 2 {
		t.Fatalf("recovered peer not reinstated: %+v", st)
	}
	if _, _, err := d.Run(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if peers[0].calls.Load() == 0 {
		t.Error("reinstated backend received no work")
	}
}

// TestPassiveEjection: failed forwards eject a peer without waiting for
// the probe loop.
func TestPassiveEjection(t *testing.T) {
	d, _, peers := newTestDispatcher(t, Options{FailThreshold: 2, RetryBudget: 4})
	peers[0].setRun(failRetryable(peers[0].name))
	job := jobRankedFirstOn(t, d, peers[0].name, false)
	for i := 0; i < 2; i++ {
		if _, _, err := d.Run(context.Background(), job); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Status()
	if st.HealthyPeers != 1 {
		t.Fatalf("peer not passively ejected after %d failures: %+v", peers[0].calls.Load(), st)
	}
}

// TestLocalFallbackAllEjected: with every peer out of the ring the
// dispatcher still completes jobs in-process.
func TestLocalFallbackAllEjected(t *testing.T) {
	d, local, peers := newTestDispatcher(t, Options{FailThreshold: 1, BackoffBase: time.Hour})
	peers[0].setHealth(errors.New("down"))
	peers[1].setHealth(errors.New("down"))
	d.ProbeAll(context.Background())
	if st := d.Status(); st.HealthyPeers != 0 {
		t.Fatalf("expected 0 healthy peers: %+v", st)
	}
	for i := uint64(1); i <= 10; i++ {
		if _, _, err := d.Run(context.Background(), baselineJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	if local.calls.Load() != 10 {
		t.Errorf("local calls = %d, want 10", local.calls.Load())
	}
}

// TestHedgeWinsAndCancelsLoser: a straggling primary is hedged, the fast
// hedge response wins, the primary is cancelled, and no goroutine leaks.
func TestHedgeWinsAndCancelsLoser(t *testing.T) {
	before := runtime.NumGoroutine()
	var stalled atomic.Int64
	stall := func(ctx context.Context, job runner.Job) (metrics.RunStats, bool, error) {
		// First call overall stalls until cancelled; later calls (the
		// hedge) answer immediately, whichever backend they land on.
		if stalled.Add(1) == 1 {
			<-ctx.Done()
			return metrics.RunStats{}, false, ctx.Err()
		}
		return metrics.RunStats{Workload: "hedged", Instructions: job.Instrs}, true, nil
	}

	d, local, peers := newTestDispatcher(t, Options{HedgeAfter: 5 * time.Millisecond})
	local.setRun(stall)
	peers[0].setRun(stall)
	peers[1].setRun(stall)

	// Hedging only kicks in for remote primaries.
	job := jobRankedFirstOn(t, d, peers[0].name, false)
	st, cached, err := d.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || st.Workload != "hedged" {
		t.Errorf("result not from hedge: %+v cached=%v", st, cached)
	}
	status := d.Status()
	var hedges, wins, cancelledTotal int64
	for _, b := range status.Backends {
		hedges += b.Hedges
		wins += b.HedgesWon
		cancelledTotal += b.Cancelled
	}
	if hedges != 1 || wins != 1 {
		t.Errorf("hedges=%d wins=%d, want 1/1", hedges, wins)
	}

	// The cancelled primary's goroutine must drain promptly.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		st := d.Status()
		cancelledTotal = 0
		inFlight := int64(0)
		for _, b := range st.Backends {
			cancelledTotal += b.Cancelled
			inFlight += b.InFlight
		}
		if cancelledTotal == 1 && inFlight == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if cancelledTotal != 1 {
		t.Errorf("cancelled = %d, want 1 (hedge loser)", cancelledTotal)
	}
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 { // health loop + slack
		t.Errorf("goroutines grew from %d to %d after hedging", before, g)
	}
}

// TestHedgeToLocal: with the only other peer ejected, a straggler's hedge
// lands on the local engine — the fallback guarantee also covers hedging.
func TestHedgeToLocal(t *testing.T) {
	d, local, peers := newTestDispatcher(t, Options{HedgeAfter: time.Millisecond, FailThreshold: 1, BackoffBase: time.Hour})
	peers[0].setRun(func(ctx context.Context, job runner.Job) (metrics.RunStats, bool, error) {
		<-ctx.Done()
		return metrics.RunStats{}, false, ctx.Err()
	})
	peers[1].setHealth(errors.New("down"))
	d.ProbeAll(context.Background())
	job := jobRankedFirstOn(t, d, peers[0].name, false)
	if _, _, err := d.Run(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if local.calls.Load() != 1 {
		t.Errorf("local calls = %d, want the hedge", local.calls.Load())
	}
	if peers[1].calls.Load() != 0 {
		t.Error("ejected peer was hedged to")
	}
}

// TestAcquireBoundedQueue exercises the in-flight limit and bounded-queue
// saturation path deterministically at the backendState level.
func TestAcquireBoundedQueue(t *testing.T) {
	bs := newBackendState(&fakeBackend{name: "q"}, false, 1)
	release, err := bs.acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}

	queued := make(chan struct{})
	go func() {
		rel, err := bs.acquire(context.Background(), 1)
		if err != nil {
			t.Errorf("queued acquire failed: %v", err)
			close(queued)
			return
		}
		close(queued)
		rel()
	}()
	// Wait until the second acquire is queued.
	deadline := time.Now().Add(2 * time.Second)
	for bs.waiting.Load() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if bs.waiting.Load() != 1 {
		t.Fatal("second acquire never queued")
	}
	// Queue is full: the third acquire saturates immediately.
	if _, err := bs.acquire(context.Background(), 1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	release()
	<-queued

	// Cancellation while queued returns the context error.
	release2, err := bs.acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan error, 1)
	go func() {
		_, err := bs.acquire(ctx, 1)
		cancelled <- err
	}()
	for bs.waiting.Load() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-cancelled; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued cancel err = %v", err)
	}
	release2()
}

// TestSaturationReroutes: a peer with a full slot and queue sheds load to
// the rest of the ring without consuming retry budget.
func TestSaturationReroutes(t *testing.T) {
	d, local, peers := newTestDispatcher(t, Options{MaxInFlight: 1, MaxQueue: 1, RetryBudget: 1})
	block := make(chan struct{})
	peers[0].setRun(func(ctx context.Context, job runner.Job) (metrics.RunStats, bool, error) {
		<-block
		return metrics.RunStats{}, false, nil
	})
	job := jobRankedFirstOn(t, d, peers[0].name, false)

	var wg sync.WaitGroup
	// Occupy the single slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = d.Run(context.Background(), job)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for peers[0].calls.Load() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Occupy the single queue seat.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = d.Run(context.Background(), job)
	}()
	var sat *backendState
	for _, bs := range d.states {
		if bs.name == peers[0].name {
			sat = bs
		}
	}
	for sat.waiting.Load() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// This submission finds slot+queue full and must complete elsewhere.
	if _, _, err := d.Run(context.Background(), job); err != nil {
		t.Fatalf("saturated submission failed instead of re-routing: %v", err)
	}
	if local.calls.Load()+peers[1].calls.Load() == 0 {
		t.Error("saturated submission was not re-routed")
	}
	if sat.saturated.Load() == 0 {
		t.Error("saturation not accounted")
	}
	close(block)
	wg.Wait()
}

// TestRunAll preserves submission order and reports progress.
func TestRunAll(t *testing.T) {
	d, _, _ := newTestDispatcher(t, Options{})
	jobs := make([]runner.Job, 20)
	for i := range jobs {
		jobs[i] = baselineJob(uint64(i + 1))
	}
	var progress atomic.Int64
	stats, err := d.RunAll(context.Background(), jobs, runner.Matrix{
		Progress: func(done, total int) { progress.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range stats {
		if st.Instructions != uint64(i+1) {
			t.Fatalf("result %d out of order: %+v", i, st)
		}
	}
	if progress.Load() != 20 {
		t.Errorf("progress callbacks = %d, want 20", progress.Load())
	}
}

// TestRunAllCancellation: a cancelled matrix returns the context error.
func TestRunAllCancellation(t *testing.T) {
	d, local, peers := newTestDispatcher(t, Options{})
	stall := func(ctx context.Context, job runner.Job) (metrics.RunStats, bool, error) {
		<-ctx.Done()
		return metrics.RunStats{}, false, ctx.Err()
	}
	local.setRun(stall)
	peers[0].setRun(stall)
	peers[1].setRun(stall)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	jobs := []runner.Job{baselineJob(1), baselineJob(2)}
	if _, err := d.RunAll(ctx, jobs, runner.Matrix{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestNewValidation: a dispatcher without a local backend or with
// duplicate names is a construction error.
func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("nil Local accepted")
	}
	local := &fakeBackend{name: "x"}
	if _, err := New(Options{Local: local, Peers: []Backend{&fakeBackend{name: "x"}}}); err == nil {
		t.Error("duplicate backend name accepted")
	}
}

// TestHedgedFailureBlamesOnce is the double-ejection regression: within
// one logical request, a peer that fails as the primary attempt and then
// fails again as a later attempt's hedge must feed the ejection state
// machine exactly once. With FailThreshold=2, one logical request must
// not eject it; a second logical request must.
func TestHedgedFailureBlamesOnce(t *testing.T) {
	d, _, peers := newTestDispatcher(t, Options{
		FailThreshold: 2,
		RetryBudget:   3,
		HedgeAfter:    2 * time.Millisecond,
	})
	// peer-a fails instantly; peer-b stalls long enough for the hedge to
	// fire, then succeeds — so the hedge re-lands on already-failed peer-a.
	peers[0].setRun(failRetryable(peers[0].name))
	peers[1].setRun(func(ctx context.Context, job runner.Job) (metrics.RunStats, bool, error) {
		select {
		case <-time.After(30 * time.Millisecond):
		case <-ctx.Done():
			return metrics.RunStats{}, false, ctx.Err()
		}
		return metrics.RunStats{Workload: job.Workload, Instructions: job.Instrs}, false, nil
	})
	job := jobRankedFirstOn(t, d, peers[0].name, true)

	if _, _, err := d.Run(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if got := peers[0].calls.Load(); got < 2 {
		t.Fatalf("peer-a saw %d calls, want primary + hedge", got)
	}
	if !d.TargetHealthy(peers[0].name) {
		t.Fatal("peer ejected by a single logical request (hedge double-blame)")
	}

	// A second logical request is a second passive signal: now it ejects.
	peers[1].setRun(nil)
	if _, _, err := d.Run(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if d.TargetHealthy(peers[0].name) {
		t.Fatal("peer still healthy after two independently failing requests")
	}
}

// TestHedgedSimultaneousFailures: primary and hedge failing at the same
// moment — the exact multi-peer-outage scenario hedging targets — must
// not race on the per-request blame ledger (only the main goroutine may
// touch it; -race catches a regression here) and still blames each
// backend at most once before the local guarantee completes the job.
func TestHedgedSimultaneousFailures(t *testing.T) {
	d, _, peers := newTestDispatcher(t, Options{
		FailThreshold: 2,
		RetryBudget:   3,
		HedgeAfter:    2 * time.Millisecond,
	})
	// Both peers block until both have been called (primary stalls past
	// HedgeAfter, so the hedge fires and lands on the other peer), then
	// fail together.
	arrived := make(chan struct{}, 16)
	start := make(chan struct{})
	failTogether := func(name string) func(context.Context, runner.Job) (metrics.RunStats, bool, error) {
		return func(context.Context, runner.Job) (metrics.RunStats, bool, error) {
			arrived <- struct{}{}
			<-start
			return metrics.RunStats{}, false, &TransportError{Backend: name, Err: errors.New("connection refused")}
		}
	}
	peers[0].setRun(failTogether(peers[0].name))
	peers[1].setRun(failTogether(peers[1].name))
	go func() {
		<-arrived
		<-arrived
		close(start)
	}()
	job := jobRankedFirstOn(t, d, peers[0].name, true)

	st, _, err := d.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workload != job.Workload {
		t.Fatalf("fallback result workload = %q, want %q", st.Workload, job.Workload)
	}
	for _, p := range peers {
		if !d.TargetHealthy(p.name) {
			t.Fatalf("%s ejected by one logical request's simultaneous failures", p.name)
		}
	}
}

// TestRunOnPinsTarget: shard-level submission executes on the named
// member only, never re-routes, and rejects unknown names.
func TestRunOnPinsTarget(t *testing.T) {
	d, local, peers := newTestDispatcher(t, Options{})
	job := baselineJob(100)

	if _, _, err := d.RunOn(context.Background(), peers[1].name, job); err != nil {
		t.Fatal(err)
	}
	if peers[1].calls.Load() != 1 || peers[0].calls.Load() != 0 || local.calls.Load() != 0 {
		t.Fatalf("calls local=%d a=%d b=%d, want only b",
			local.calls.Load(), peers[0].calls.Load(), peers[1].calls.Load())
	}

	// A failing pinned target reports the error instead of re-routing.
	peers[0].setRun(failRetryable(peers[0].name))
	if _, _, err := d.RunOn(context.Background(), peers[0].name, job); err == nil {
		t.Fatal("want error from pinned failing target")
	}
	if local.calls.Load() != 0 {
		t.Fatal("RunOn fell back to local")
	}

	if _, _, err := d.RunOn(context.Background(), "nope", job); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("err = %v, want ErrUnknownBackend", err)
	}
}

// TestTargetSurface covers the ring introspection the matrix
// orchestrator schedules with.
func TestTargetSurface(t *testing.T) {
	d, _, peers := newTestDispatcher(t, Options{FailThreshold: 1})
	targets := d.Targets()
	if len(targets) != 3 || targets[0] != "local" {
		t.Fatalf("targets = %v, want local first of 3", targets)
	}
	if d.LocalTarget() != "local" {
		t.Fatalf("local target = %s", d.LocalTarget())
	}

	order := d.RankTargets("some-shard-key")
	if len(order) != 3 {
		t.Fatalf("rank = %v", order)
	}
	key, _ := baselineJob(42).Key()
	a, b := d.RankTargets(key), d.RankTargets(key)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank unstable: %v vs %v", a, b)
		}
	}

	if !d.TargetHealthy("local") || !d.TargetHealthy(peers[0].name) {
		t.Fatal("fresh ring members must be healthy")
	}
	if d.TargetHealthy("nope") {
		t.Fatal("unknown member reported healthy")
	}

	// Ejection flips TargetHealthy; rank still lists the member so the
	// orchestrator can use it as a failover position.
	peers[0].setRun(failRetryable(peers[0].name))
	job := jobRankedFirstOn(t, d, peers[0].name, false)
	if _, _, err := d.Run(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if d.TargetHealthy(peers[0].name) {
		t.Fatal("peer healthy after ejection")
	}
	found := false
	for _, name := range d.RankTargets(key) {
		if name == peers[0].name {
			found = true
		}
	}
	if !found {
		t.Fatal("ejected member missing from rank order")
	}
}
