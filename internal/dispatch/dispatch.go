// Package dispatch scatters simulation jobs across a ring of backends —
// the in-process runner engine plus any number of peer daemons — and
// gathers their results. It is the layer that turns one dlvpd process
// into a cluster.
//
// Routing is cache-affine: each job's content address (runner.Job.Key) is
// rendezvous-hashed over the backend names, so identical jobs always land
// on the same peer and hit its content-addressed LRU result cache, the
// same way cache-level prediction steers a load to the level already
// holding its line. Around that core the dispatcher provides:
//
//   - active health checking with exponential backoff, automatic ejection
//     of failing peers and automatic reinstatement once they answer again;
//   - a per-peer in-flight limit with a bounded queue, so one slow peer
//     cannot absorb unbounded goroutines — excess work re-routes;
//   - retry with a budget: retryable failures (connection refused, 5xx,
//     per-attempt timeout) re-route to the next backend in the ring until
//     the budget is spent;
//   - optional hedged requests: if the chosen backend has not answered
//     within HedgeAfter, the job is also launched on the next ranked
//     backend and the first response wins (the loser is cancelled);
//   - a guaranteed local fallback: when every peer is ejected, saturated
//     or failing, the job runs on the local engine — a clustered daemon
//     never does worse than standalone mode.
package dispatch

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"dlvp/internal/metrics"
	"dlvp/internal/obs"
	"dlvp/internal/runner"
)

// Defaults for Options fields left zero.
const (
	DefaultMaxInFlight    = 32
	DefaultMaxQueue       = 64
	DefaultRetryBudget    = 3
	DefaultFailThreshold  = 2
	DefaultHealthInterval = 3 * time.Second
	DefaultProbeTimeout   = 2 * time.Second
	DefaultBackoffBase    = 500 * time.Millisecond
	DefaultBackoffMax     = 30 * time.Second
)

// Options parameterises a Dispatcher.
type Options struct {
	// Local is the guaranteed-fallback backend (required). It participates
	// in rendezvous ranking like any peer but is never ejected and never
	// slot-limited — the runner engine bounds its own pool.
	Local Backend
	// Peers are the remote backends forming the rest of the ring.
	Peers []Backend
	// MaxInFlight bounds concurrent requests per peer (0: DefaultMaxInFlight).
	MaxInFlight int
	// MaxQueue bounds waiters queued behind a peer's in-flight limit before
	// further jobs re-route (0: DefaultMaxQueue).
	MaxQueue int
	// RetryBudget is the maximum routed attempts per job, first try
	// included, before the dispatcher falls back to the local guarantee
	// (0: DefaultRetryBudget).
	RetryBudget int
	// HedgeAfter launches a second copy of a straggling job on the next
	// ranked backend after this delay; first response wins (0: disabled).
	HedgeAfter time.Duration
	// FailThreshold is the consecutive-failure streak that ejects a peer
	// (0: DefaultFailThreshold).
	FailThreshold int
	// HealthInterval is the active probe cadence (0: DefaultHealthInterval).
	HealthInterval time.Duration
	// ProbeTimeout bounds one health probe (0: DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// BackoffBase/BackoffMax shape the re-probe schedule of failing peers
	// (0: DefaultBackoffBase/DefaultBackoffMax).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Obs, when non-nil, registers the dispatcher's per-backend counters
	// and histograms and enables dispatch.route/dispatch.hedge spans.
	Obs *obs.Observer
}

// instruments holds the dispatcher's telemetry handles (nil when built
// without an Observer).
type instruments struct {
	attempts *obs.CounterVec   // backend, outcome: ok|error|cancelled|saturated
	latency  *obs.HistogramVec // backend
}

// Dispatcher routes jobs across the backend ring. Construct with New;
// Close stops the health loop.
type Dispatcher struct {
	opts     Options
	local    *backendState
	states   []*backendState // local + peers, registration order
	inst     *instruments
	stop     chan struct{}
	stopOnce sync.Once
}

// New builds a dispatcher over the given backends and, when peers are
// present, starts the active health loop.
func New(opts Options) (*Dispatcher, error) {
	if opts.Local == nil {
		return nil, errors.New("dispatch: Options.Local is required")
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = DefaultMaxInFlight
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = DefaultMaxQueue
	}
	if opts.RetryBudget <= 0 {
		opts.RetryBudget = DefaultRetryBudget
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = DefaultFailThreshold
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = DefaultHealthInterval
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = DefaultProbeTimeout
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = DefaultBackoffBase
	}
	if opts.BackoffMax < opts.BackoffBase {
		opts.BackoffMax = DefaultBackoffMax
	}
	d := &Dispatcher{opts: opts, stop: make(chan struct{})}
	d.local = newBackendState(opts.Local, true, 0)
	d.states = append(d.states, d.local)
	seen := map[string]bool{d.local.name: true}
	for _, p := range opts.Peers {
		if p == nil {
			continue
		}
		if seen[p.Name()] {
			return nil, errors.New("dispatch: duplicate backend name " + p.Name())
		}
		seen[p.Name()] = true
		d.states = append(d.states, newBackendState(p, false, opts.MaxInFlight))
	}
	if opts.Obs != nil {
		reg := opts.Obs.Metrics
		d.inst = &instruments{
			attempts: reg.Counter("dlvpd_dispatch_attempts_total",
				"Dispatch attempts by backend and outcome (ok, error, cancelled, saturated).",
				"backend", "outcome"),
			latency: reg.Histogram("dlvpd_dispatch_latency_seconds",
				"Per-attempt latency by backend, hedges included.", nil, "backend"),
		}
	}
	if len(d.states) > 1 {
		go d.healthLoop()
	}
	return d, nil
}

// Close stops the health loop. In-flight jobs are unaffected.
func (d *Dispatcher) Close() { d.stopOnce.Do(func() { close(d.stop) }) }

// Peers reports the number of remote backends in the ring.
func (d *Dispatcher) Peers() int { return len(d.states) - 1 }

// count records one attempt outcome on the labelled counter.
func (d *Dispatcher) count(bs *backendState, outcome string) {
	if d.inst != nil {
		d.inst.attempts.With(bs.name, outcome).Inc()
	}
}

// Run routes one job through the ring and blocks for its result. The
// boolean reports whether the result came from a cache (local or remote).
func (d *Dispatcher) Run(ctx context.Context, job runner.Job) (metrics.RunStats, bool, error) {
	res, cached, err := d.RunResult(ctx, job)
	return res.Stats, cached, err
}

// RunResult routes like Run but returns the full runner.Result, so
// sampled-run provenance (and any backend-supplied extras) survives the
// dispatch layer instead of being flattened to bare statistics.
func (d *Dispatcher) RunResult(ctx context.Context, job runner.Job) (runner.Result, bool, error) {
	var zero runner.Result
	key, err := job.Key()
	if err != nil {
		return zero, false, err
	}
	ctx, sp := obs.StartSpanCtx(ctx, "dispatch.route")
	sp.Attr("workload", job.Workload)
	order := rank(d.states, key)

	// One logical request blames each backend at most once. Without this,
	// a hedged retry can land on a backend that already failed as an
	// earlier attempt of the same request and eject it on what is really a
	// single logical failure — two passive signals for one request.
	blamed := make(map[string]bool)

	var lastErr error
	attempts := 0
	localTried := false
	for _, bs := range order {
		if attempts >= d.opts.RetryBudget {
			break
		}
		if bs.isEjected() {
			continue
		}
		release, aerr := bs.acquire(ctx, d.opts.MaxQueue)
		if aerr != nil {
			if errors.Is(aerr, ErrSaturated) {
				// Saturation is a routing event, not an attempt: re-route
				// without consuming budget.
				bs.saturated.Add(1)
				d.count(bs, "saturated")
				lastErr = aerr
				continue
			}
			sp.Attr("outcome", "cancelled").End()
			return zero, false, aerr
		}
		attempts++
		if bs.local {
			localTried = true
		}
		res, cached, err := d.execute(ctx, bs, release, job, order, blamed)
		if err == nil {
			sp.Attr("backend", bs.name).Attr("attempts", strconv.Itoa(attempts)).End()
			return res, cached, nil
		}
		if !isRetryable(ctx, err) {
			sp.Attr("backend", bs.name).Attr("outcome", "error").Attr("error", err.Error()).End()
			return zero, false, err
		}
		// Marker span: this attempt failed retryably and the loop will
		// re-route, so the trace shows why the same job appears twice.
		obs.StartSpan(ctx, "dispatch.retry").Mark(obs.MarkerRetry).
			Attr("backend", bs.name).Attr("error", err.Error()).End()
		lastErr = err
	}

	// The local guarantee: whatever happened above — budget exhausted,
	// every peer ejected or saturated — the job still runs in-process
	// unless local execution itself was already attempted and failed.
	if !localTried {
		res, cached, err := d.execute(ctx, d.local, func() {}, job, nil, blamed)
		if err == nil {
			sp.Attr("backend", d.local.name).Attr("attempts", strconv.Itoa(attempts+1)).Attr("fallback", "local").End()
			return res, cached, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("dispatch: no backend available")
	}
	sp.Attr("outcome", "error").Attr("error", lastErr.Error()).End()
	return zero, false, lastErr
}

// callResult carries one backend response through the hedge machinery.
type callResult struct {
	res    runner.Result
	cached bool
	err    error
	blame  bool
	from   *backendState
}

// blame feeds one retryable failure into the passive ejection machinery,
// at most once per logical request when a ledger is present. Only the
// request's main goroutine calls it — hedge goroutines report the blame
// flag through their callResult instead of touching the ledger — so the
// map needs no locking and never outlives the request.
func (d *Dispatcher) blame(bs *backendState, err error, blamed map[string]bool) {
	if blamed != nil {
		if blamed[bs.name] {
			return
		}
		blamed[bs.name] = true
	}
	d.noteFailure(bs, err)
}

// execute runs the job on bs (releasing its slot when the call returns)
// and, when hedging is enabled and bs stalls, races a second copy on the
// next ranked backend. The loser is cancelled; its goroutine drains into
// a buffered channel, so no goroutine outlives its backend call.
func (d *Dispatcher) execute(ctx context.Context, bs *backendState, release func(), job runner.Job, order []*backendState, blamed map[string]bool) (runner.Result, bool, error) {
	var zero runner.Result
	if d.opts.HedgeAfter <= 0 || bs.local || order == nil {
		defer release()
		res, cached, err, blameworthy := d.call(ctx, bs, job)
		if blameworthy {
			d.blame(bs, err, blamed)
		}
		return res, cached, err
	}

	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	ch := make(chan callResult, 2)
	go func() {
		res, cached, err, blameworthy := d.call(pctx, bs, job)
		release()
		ch <- callResult{res, cached, err, blameworthy, bs}
	}()

	timer := time.NewTimer(d.opts.HedgeAfter)
	defer timer.Stop()
	select {
	case r := <-ch:
		if r.blame {
			d.blame(r.from, r.err, blamed)
		}
		return r.res, r.cached, r.err
	case <-ctx.Done():
		return zero, false, ctx.Err()
	case <-timer.C:
	}

	hedge, hrelease := d.hedgeCandidate(order, bs)
	if hedge == nil {
		// Nowhere to hedge: wait out the primary.
		select {
		case r := <-ch:
			if r.blame {
				d.blame(r.from, r.err, blamed)
			}
			return r.res, r.cached, r.err
		case <-ctx.Done():
			return zero, false, ctx.Err()
		}
	}
	hsp := obs.StartSpan(ctx, "dispatch.hedge").
		Attr("primary", bs.name).Attr("hedge", hedge.name)
	hedge.hedges.Add(1)
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	go func() {
		res, cached, err, blameworthy := d.call(hctx, hedge, job)
		hrelease()
		ch <- callResult{res, cached, err, blameworthy, hedge}
	}()

	// First success wins and cancels the other; if the first finisher
	// failed, the race continues on the survivor. A still-running loser's
	// blame is dropped with its result — it only ever reaches the ledger
	// through this loop, never from the loser's own goroutine.
	var firstErr error
	for i := 0; i < 2; i++ {
		select {
		case r := <-ch:
			if r.blame {
				d.blame(r.from, r.err, blamed)
			}
			if r.err == nil {
				winner, loser := "primary", hedge
				if r.from == hedge {
					winner, loser = "hedge", bs
					hedge.hedgeWins.Add(1)
				}
				hsp.Attr("winner", winner).End()
				// Marker span: the loser's in-flight work is about to be
				// cancelled and would otherwise vanish from the trace.
				obs.StartSpan(ctx, "dispatch.hedge_loser").Mark(obs.MarkerHedgeLoser).
					Attr("backend", loser.name).Attr("winner", r.from.name).End()
				pcancel()
				hcancel()
				return r.res, r.cached, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
		case <-ctx.Done():
			hsp.Attr("winner", "cancelled").End()
			return zero, false, ctx.Err()
		}
	}
	hsp.Attr("winner", "none").End()
	return zero, false, firstErr
}

// hedgeCandidate picks the first non-ejected backend after the primary in
// ring order that has a free slot right now. Hedges never queue.
func (d *Dispatcher) hedgeCandidate(order []*backendState, primary *backendState) (*backendState, func()) {
	for _, bs := range order {
		if bs == primary || bs.isEjected() {
			continue
		}
		if release, ok := bs.tryAcquire(); ok {
			return bs, release
		}
	}
	return nil, nil
}

// call performs one backend attempt with accounting, latency observation
// and per-attempt statistics. The trailing boolean reports whether the
// failure is blameworthy — a retryable error not caused by cancellation —
// and the caller feeds it to the ejection state machine (via blame) from
// the request's main goroutine, so the once-per-request ledger is never
// shared across goroutines.
func (d *Dispatcher) call(ctx context.Context, bs *backendState, job runner.Job) (runner.Result, bool, error, bool) {
	bs.attempts.Add(1)
	bs.inflight.Add(1)
	// The attempt span becomes the current span of the backend call's
	// context: an HTTP backend propagates its ID in the traceparent header,
	// so the peer's entire server-side subtree hangs under this attempt in
	// the assembled cluster trace; the local backend's runner spans nest
	// under it directly.
	sctx, sp := obs.StartSpanCtx(ctx, "dispatch.attempt")
	sp.Attr("backend", bs.name).Attr("workload", job.Workload)
	start := time.Now()
	res, cached, err := runBackend(sctx, bs.b, job)
	elapsed := time.Since(start)
	bs.inflight.Add(-1)
	if d.inst != nil {
		d.inst.latency.With(bs.name).Observe(elapsed.Seconds())
	}
	if err != nil {
		if ctx.Err() != nil {
			// Cancelled: either the caller went away or this was a hedge
			// loser. Not a health signal, not a backend failure.
			bs.cancelled.Add(1)
			d.count(bs, "cancelled")
			sp.Attr("outcome", "cancelled").End()
			return res, false, err, false
		}
		bs.failures.Add(1)
		d.count(bs, "error")
		sp.Attr("outcome", "error").Attr("error", err.Error()).End()
		return res, false, err, isRetryable(ctx, err)
	}
	bs.successes.Add(1)
	d.count(bs, "ok")
	d.noteSuccess(bs)
	sp.Attr("outcome", "ok").Attr("cached", strconv.FormatBool(cached)).End()
	return res, cached, nil, false
}

// RunAll executes every job through the dispatcher with the same contract
// as runner.RunAll: results in submission order, first error reported,
// optional extra concurrency bound and progress callback. Experiment
// matrices submitted to a clustered daemon fan out across the ring here.
func (d *Dispatcher) RunAll(ctx context.Context, jobs []runner.Job, opt runner.Matrix) ([]metrics.RunStats, error) {
	results := make([]metrics.RunStats, len(jobs))
	var local chan struct{}
	if opt.MaxParallel > 0 {
		local = make(chan struct{}, opt.MaxParallel)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		nDone    int
	)
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if local != nil {
				select {
				case local <- struct{}{}:
					defer func() { <-local }()
				case <-ctx.Done():
					mu.Lock()
					if firstErr == nil {
						firstErr = ctx.Err()
					}
					mu.Unlock()
					return
				}
			}
			st, _, err := d.Run(ctx, jobs[i])
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			results[i] = st
			nDone++
			if opt.Progress != nil {
				opt.Progress(nDone, len(jobs))
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, firstErr
}

// BackendStatus is one ring member's state as reported by Status (and by
// the daemon's GET /v1/cluster).
type BackendStatus struct {
	Name                string  `json:"name"`
	Kind                string  `json:"kind"` // "local" | "peer"
	Healthy             bool    `json:"healthy"`
	Ejected             bool    `json:"ejected"`
	ConsecutiveFailures int     `json:"consecutive_failures"`
	LastError           string  `json:"last_error,omitempty"`
	InFlight            int64   `json:"in_flight"`
	Waiting             int64   `json:"waiting"`
	Attempts            int64   `json:"attempts"`
	Successes           int64   `json:"successes"`
	Failures            int64   `json:"failures"`
	Cancelled           int64   `json:"cancelled"`
	Saturated           int64   `json:"saturated"`
	Hedges              int64   `json:"hedges"`
	HedgesWon           int64   `json:"hedges_won"`
	NextProbeInMS       float64 `json:"next_probe_in_ms,omitempty"`
}

// Status is the dispatcher's cluster view.
type Status struct {
	Backends     []BackendStatus `json:"backends"`
	Peers        int             `json:"peers"`
	HealthyPeers int             `json:"healthy_peers"`
	RetryBudget  int             `json:"retry_budget"`
	HedgeAfterMS float64         `json:"hedge_after_ms"`
}

// Status snapshots every backend's health and accounting state.
func (d *Dispatcher) Status() Status {
	st := Status{
		RetryBudget:  d.opts.RetryBudget,
		HedgeAfterMS: float64(d.opts.HedgeAfter) / float64(time.Millisecond),
	}
	now := time.Now()
	for _, bs := range d.states {
		b := BackendStatus{
			Name:      bs.name,
			Kind:      "peer",
			InFlight:  bs.inflight.Load(),
			Waiting:   bs.waiting.Load(),
			Attempts:  bs.attempts.Load(),
			Successes: bs.successes.Load(),
			Failures:  bs.failures.Load(),
			Cancelled: bs.cancelled.Load(),
			Saturated: bs.saturated.Load(),
			Hedges:    bs.hedges.Load(),
			HedgesWon: bs.hedgeWins.Load(),
		}
		if bs.local {
			b.Kind = "local"
		}
		bs.mu.Lock()
		b.Ejected = bs.ejected
		b.ConsecutiveFailures = bs.consecFails
		b.LastError = bs.lastErr
		if bs.ejected && !bs.nextProbe.IsZero() {
			if in := bs.nextProbe.Sub(now); in > 0 {
				b.NextProbeInMS = float64(in) / float64(time.Millisecond)
			}
		}
		bs.mu.Unlock()
		b.Healthy = !b.Ejected
		if !bs.local {
			st.Peers++
			if b.Healthy {
				st.HealthyPeers++
			}
		}
		st.Backends = append(st.Backends, b)
	}
	return st
}
