package dispatch

import (
	"context"
	"errors"

	"dlvp/internal/runner"
)

// ErrUnknownBackend reports a shard-level submission naming a backend that
// is not in the ring (e.g. a target remembered from a persisted matrix
// plan after the peer set changed).
var ErrUnknownBackend = errors.New("dispatch: unknown backend")

// The shard-submission surface. Single-job routing (RunResult) picks the
// backend itself; a matrix orchestrator instead plans where every shard
// should land — reusing the same rendezvous ring, so shards go where
// their trace/checkpoint/result caches already live — and then submits
// each shard's jobs to that specific member via RunOn. The interface is
// structural: internal/matrix declares it locally, so dispatch does not
// import matrix and standalone engines can satisfy it too.

// Targets returns every ring member's name in registration order, local
// engine first — the stable target set a matrix orchestrator schedules
// over (and its guaranteed-progress fallback, since the local member is
// never ejected).
func (d *Dispatcher) Targets() []string {
	names := make([]string, len(d.states))
	for i, bs := range d.states {
		names[i] = bs.name
	}
	return names
}

// RankTargets returns every ring member's name in rendezvous order for
// key, highest score first, ejected members included (callers consult
// TargetHealthy for placement and use the rest of the order as the
// failover sequence). The ranking is identical to single-job routing:
// same FNV rendezvous hash, same name set.
func (d *Dispatcher) RankTargets(key string) []string {
	order := rank(d.states, key)
	names := make([]string, len(order))
	for i, bs := range order {
		names[i] = bs.name
	}
	return names
}

// TargetHealthy reports whether the named ring member is currently
// accepting work (the local engine always is; peers are healthy unless
// ejected). Unknown names are unhealthy.
func (d *Dispatcher) TargetHealthy(name string) bool {
	bs := d.findTarget(name)
	return bs != nil && !bs.isEjected()
}

// LocalTarget returns the name of the guaranteed-fallback local backend.
func (d *Dispatcher) LocalTarget() string { return d.local.name }

// RunOn executes one job on the named ring member — shard-level
// submission. Unlike RunResult it never re-routes: the caller owns
// placement and failure policy (a matrix orchestrator requeues the whole
// shard elsewhere). The attempt still flows through the member's
// per-peer in-flight slots and bounded queue, its latency histograms and
// attempt counters, and the passive health machinery, so shard traffic
// ejects a dead peer exactly like routed traffic does.
func (d *Dispatcher) RunOn(ctx context.Context, name string, job runner.Job) (runner.Result, bool, error) {
	var zero runner.Result
	bs := d.findTarget(name)
	if bs == nil {
		return zero, false, ErrUnknownBackend
	}
	release, err := bs.acquire(ctx, d.opts.MaxQueue)
	if err != nil {
		if errors.Is(err, ErrSaturated) {
			bs.saturated.Add(1)
			d.count(bs, "saturated")
		}
		return zero, false, err
	}
	defer release()
	res, cached, err, blameworthy := d.call(ctx, bs, job)
	if blameworthy {
		d.blame(bs, err, nil)
	}
	return res, cached, err
}

// findTarget resolves a ring member by name.
func (d *Dispatcher) findTarget(name string) *backendState {
	for _, bs := range d.states {
		if bs.name == name {
			return bs
		}
	}
	return nil
}
