package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"dlvp/internal/config"
	"dlvp/internal/metrics"
	"dlvp/internal/obs"
	"dlvp/internal/runner"
)

// ForwardedHeader marks a request as dispatcher-forwarded. A daemon that
// sees it executes the job on its local engine instead of re-dispatching,
// so a ring of peers can never forward a job in a loop.
const ForwardedHeader = "X-Dlvp-Forwarded"

// DefaultHTTPTimeout bounds one forwarded request when HTTPOptions.Timeout
// is zero. It matches the daemon's default synchronous request timeout.
const DefaultHTTPTimeout = 2 * time.Minute

// HTTPOptions parameterises an HTTPBackend.
type HTTPOptions struct {
	// Timeout bounds each forwarded request (0: DefaultHTTPTimeout).
	Timeout time.Duration
	// Client overrides the HTTP client. Nil builds one with connection
	// reuse (keep-alives, bounded idle pool) shared by all requests to
	// this backend.
	Client *http.Client
}

// HTTPBackend forwards jobs to a peer daemon over its /v1/runs endpoint.
// The full core configuration travels in the request body, so the peer
// computes the identical content address and repeated jobs hit its
// result cache.
type HTTPBackend struct {
	name      string
	runsURL   string
	healthURL string
	client    *http.Client
	timeout   time.Duration
}

// NewHTTPBackend returns a backend for the peer at rawURL (scheme + host,
// e.g. "http://10.0.0.2:8080"). The normalised scheme://host string is the
// backend's rendezvous name.
func NewHTTPBackend(rawURL string, opts HTTPOptions) (*HTTPBackend, error) {
	u, err := url.Parse(strings.TrimSuffix(rawURL, "/"))
	if err != nil {
		return nil, fmt.Errorf("dispatch: peer URL %q: %w", rawURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("dispatch: peer URL %q: scheme must be http or https", rawURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("dispatch: peer URL %q: missing host", rawURL)
	}
	base := u.Scheme + "://" + u.Host
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DefaultHTTPTimeout
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        32,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	return &HTTPBackend{
		name:      base,
		runsURL:   base + "/v1/runs",
		healthURL: base + "/healthz",
		client:    client,
		timeout:   timeout,
	}, nil
}

// Name implements Backend.
func (b *HTTPBackend) Name() string { return b.name }

// wireRunRequest mirrors the server's /v1/runs request shape. The explicit
// config (rather than a scheme name) keeps ablated or otherwise customised
// configurations addressable across the wire.
type wireRunRequest struct {
	Workload string               `json:"workload"`
	Config   *config.Core         `json:"config"`
	Instrs   uint64               `json:"instrs"`
	Sampling *runner.SamplingSpec `json:"sampling,omitempty"`
}

// wireRunResponse decodes the fields of the server's run response the
// dispatcher needs.
type wireRunResponse struct {
	Cached  bool                `json:"cached"`
	Stats   metrics.RunStats    `json:"stats"`
	Sampled *runner.SampledInfo `json:"sampled,omitempty"`
}

type wireError struct {
	Error string `json:"error"`
}

// Run implements Backend by POSTing the job to the peer's /v1/runs.
func (b *HTTPBackend) Run(ctx context.Context, job runner.Job) (metrics.RunStats, bool, error) {
	res, cached, err := b.RunResult(ctx, job)
	return res.Stats, cached, err
}

// RunResult implements ResultBackend: same POST, but the peer's sampled
// provenance block (when the job sampled) rides back on the Result.
func (b *HTTPBackend) RunResult(ctx context.Context, job runner.Job) (runner.Result, bool, error) {
	var zero runner.Result
	body, err := json.Marshal(wireRunRequest{Workload: job.Workload, Config: &job.Config, Instrs: job.Instrs, Sampling: job.Sampling})
	if err != nil {
		return zero, false, fmt.Errorf("dispatch: encode job: %w", err)
	}
	ctx, cancel := context.WithTimeout(ctx, b.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.runsURL, bytes.NewReader(body))
	if err != nil {
		return zero, false, fmt.Errorf("dispatch: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, "1")
	// Propagate the originating trace so the peer's access-log line, job
	// record and spans join the caller's trace instead of minting a fresh
	// unlinkable ID. The traceparent header additionally carries the
	// current span ID, parenting the peer's subtree under this attempt.
	if id := obs.TraceID(ctx); obs.ValidTraceID(id) {
		req.Header.Set("X-Request-ID", id)
		if tp := obs.FormatTraceParent(id, obs.SpanID(ctx)); tp != "" {
			req.Header.Set(obs.TraceParentHeader, tp)
		}
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return zero, false, &TransportError{Backend: b.name, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return zero, false, decodeRemoteError(b.name, resp)
	}
	var rr wireRunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return zero, false, &TransportError{Backend: b.name, Err: fmt.Errorf("decode run response: %w", err)}
	}
	return runner.Result{Stats: rr.Stats, Sampled: rr.Sampled}, rr.Cached, nil
}

// CheckHealth implements Backend by probing the peer's liveness endpoint.
// A draining peer answers 503 and is treated as unhealthy, so the
// dispatcher stops routing to it before it goes away. Probes deliberately
// carry no trace headers: they are background noise, not request work,
// and must never register traces on the peer.
func (b *HTTPBackend) CheckHealth(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.healthURL, nil)
	if err != nil {
		return err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return &TransportError{Backend: b.name, Err: err}
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode != http.StatusOK {
		return &RemoteError{Backend: b.name, Status: resp.StatusCode, Msg: "health probe"}
	}
	return nil
}

// decodeRemoteError turns a non-200 peer response into a typed error,
// preferring the JSON error envelope and falling back to the raw body.
func decodeRemoteError(backend string, resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	msg := strings.TrimSpace(string(data))
	var we wireError
	if json.Unmarshal(data, &we) == nil && we.Error != "" {
		msg = we.Error
	}
	return &RemoteError{Backend: backend, Status: resp.StatusCode, Msg: msg}
}

// RemoteError is a peer's non-2xx response, decoded from its JSON error
// envelope when possible.
type RemoteError struct {
	Backend string
	Status  int
	Msg     string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("dispatch: backend %s: HTTP %d: %s", e.Backend, e.Status, e.Msg)
}

// Retryable reports whether another backend might succeed where this one
// failed: server-side failures and overload are retryable, a rejected
// request (4xx — e.g. an unknown workload) would fail everywhere.
func (e *RemoteError) Retryable() bool {
	return e.Status >= 500 || e.Status == http.StatusTooManyRequests
}

// TransportError is a connection-level failure (refused, reset, DNS,
// per-attempt timeout) reaching a peer. Always retryable: the job never
// reached a simulation engine.
type TransportError struct {
	Backend string
	Err     error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("dispatch: backend %s: %v", e.Backend, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// Retryable implements the dispatcher's retry classification.
func (e *TransportError) Retryable() bool { return true }

// retryable is the classification hook shared by the typed errors above.
type retryable interface{ Retryable() bool }

// isRetryable reports whether err is worth re-routing to another backend.
// A dead caller context is never retryable — the client is gone — and
// unclassified errors (unknown workloads, encode failures) are
// deterministic, so they would fail identically everywhere.
func isRetryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var r retryable
	if errors.As(err, &r) {
		return r.Retryable()
	}
	return false
}
