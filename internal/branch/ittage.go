package branch

import "dlvp/internal/predictor"

// ITTAGEConfig describes the indirect-target predictor geometry.
type ITTAGEConfig struct {
	BaseEntries  int // PC-indexed last-target table
	TableEntries int
	Histories    []uint8
	TagBits      uint8
	Seed         uint64
}

// DefaultITTAGEConfig returns a 32KB-class ITTAGE.
func DefaultITTAGEConfig() ITTAGEConfig {
	return ITTAGEConfig{
		BaseEntries:  2048,
		TableEntries: 512,
		Histories:    []uint8{4, 10, 22, 44},
		TagBits:      11,
		Seed:         0x177a,
	}
}

type ittageEntry struct {
	tag    uint16
	target uint64
	conf   int8 // 0..3
	valid  bool
}

type ittageBase struct {
	target uint64
	valid  bool
}

// ITTAGE predicts indirect branch targets (BR through a register) using
// tagged tables indexed with PC and increasing global-history slices over a
// PC-indexed last-target base.
type ITTAGE struct {
	cfg    ITTAGEConfig
	base   []ittageBase
	tables [][]ittageEntry
	rng    *predictor.Rand

	Predictions uint64
	Mispredicts uint64
}

// NewITTAGE returns an ITTAGE predictor.
func NewITTAGE(cfg ITTAGEConfig) *ITTAGE {
	if cfg.BaseEntries == 0 {
		cfg = DefaultITTAGEConfig()
	}
	if cfg.BaseEntries&(cfg.BaseEntries-1) != 0 || cfg.TableEntries&(cfg.TableEntries-1) != 0 {
		panic("branch: table sizes must be powers of two")
	}
	it := &ITTAGE{
		cfg:  cfg,
		base: make([]ittageBase, cfg.BaseEntries),
		rng:  predictor.NewRand(cfg.Seed),
	}
	for range cfg.Histories {
		it.tables = append(it.tables, make([]ittageEntry, cfg.TableEntries))
	}
	return it
}

func (it *ITTAGE) indexTag(table int, pc, hist uint64) (uint32, uint16) {
	hb := it.cfg.Histories[table]
	idxBits := uint8(0)
	for n := it.cfg.TableEntries; n > 1; n >>= 1 {
		idxBits++
	}
	m := predictor.MixPC(pc) + uint64(table)*0x60bd
	idx := (uint32(m) ^ uint32(predictor.Fold(hist, hb, idxBits))) & uint32(it.cfg.TableEntries-1)
	tag := (uint16(m>>15) ^ uint16(predictor.Fold(hist, hb, it.cfg.TagBits))) &
		uint16(1<<it.cfg.TagBits-1)
	return idx, tag
}

func (it *ITTAGE) baseIndex(pc uint64) uint32 {
	return uint32(predictor.MixPC(pc)) & uint32(it.cfg.BaseEntries-1)
}

// Predict returns the predicted target for the indirect branch at pc, or
// ok=false when the predictor has no information (the pipeline then stalls
// the redirect until resolution, modelled as a misprediction).
func (it *ITTAGE) Predict(pc, hist uint64) (target uint64, ok bool) {
	for i := len(it.tables) - 1; i >= 0; i-- {
		idx, tag := it.indexTag(i, pc, hist)
		e := &it.tables[i][idx]
		if e.valid && e.tag == tag {
			return e.target, true
		}
	}
	b := it.base[it.baseIndex(pc)]
	return b.target, b.valid
}

// Update trains the predictor with the resolved target.
func (it *ITTAGE) Update(pc, hist uint64, actual uint64) {
	it.Predictions++
	pred, ok := it.Predict(pc, hist)
	correct := ok && pred == actual
	if !correct {
		it.Mispredicts++
	}

	// Provider update.
	provider := -1
	for i := len(it.tables) - 1; i >= 0; i-- {
		idx, tag := it.indexTag(i, pc, hist)
		e := &it.tables[i][idx]
		if e.valid && e.tag == tag {
			provider = i
			if e.target == actual {
				if e.conf < 3 {
					e.conf++
				}
			} else {
				if e.conf > 0 {
					e.conf--
				} else {
					e.target = actual
				}
			}
			break
		}
	}
	// The base table always tracks the last target when no tagged table
	// provided (it is the fallback for cold and monomorphic sites).
	b := &it.base[it.baseIndex(pc)]
	if !b.valid || provider < 0 {
		*b = ittageBase{target: actual, valid: true}
	}

	// Allocate a longer-history entry on a misprediction.
	if !correct && provider < len(it.tables)-1 {
		start := provider + 1
		n := len(it.tables) - start
		first := start + int(it.rng.Next()%uint64(n))
		for k := 0; k < n; k++ {
			ti := start + (first-start+k)%n
			idx, tag := it.indexTag(ti, pc, hist)
			e := &it.tables[ti][idx]
			if !e.valid || e.conf == 0 {
				*e = ittageEntry{tag: tag, target: actual, conf: 1, valid: true}
				return
			}
		}
		for ti := start; ti < len(it.tables); ti++ {
			idx, _ := it.indexTag(ti, pc, hist)
			if e := &it.tables[ti][idx]; e.conf > 0 {
				e.conf--
			}
		}
	}
}

// MispredictRate returns mispredictions per update, in percent.
func (it *ITTAGE) MispredictRate() float64 {
	if it.Predictions == 0 {
		return 0
	}
	return 100 * float64(it.Mispredicts) / float64(it.Predictions)
}

// RAS is the return address stack (Table 4: 16 entries). It is
// checkpointable: the pipeline snapshots it at every call/return fetch and
// restores on squash.
type RAS struct {
	entries [16]uint64
	top     int // number of live entries (0..16); pushes wrap
	Pushes  uint64
	Pops    uint64
}

// Push records a return address at a call.
func (r *RAS) Push(ret uint64) {
	r.Pushes++
	if r.top < len(r.entries) {
		r.entries[r.top] = ret
		r.top++
		return
	}
	// Overflow: shift (oldest entry lost), standard RAS behaviour.
	copy(r.entries[:], r.entries[1:])
	r.entries[len(r.entries)-1] = ret
}

// Pop predicts a return target.
func (r *RAS) Pop() (uint64, bool) {
	r.Pops++
	if r.top == 0 {
		return 0, false
	}
	r.top--
	return r.entries[r.top], true
}

// Snapshot captures the full stack state.
func (r *RAS) Snapshot() RASState {
	var s RASState
	s.top = r.top
	s.entries = r.entries
	return s
}

// Restore rewinds to a snapshot.
func (r *RAS) Restore(s RASState) {
	r.top = s.top
	r.entries = s.entries
}

// RASState is an opaque RAS checkpoint.
type RASState struct {
	entries [16]uint64
	top     int
}
