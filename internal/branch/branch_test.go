package branch

import (
	"testing"

	"dlvp/internal/predictor"
)

func TestTAGELearnsAlwaysTaken(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	var g predictor.GlobalHistory
	wrong := 0
	for i := 0; i < 200; i++ {
		if !tg.Predict(0x400100, g.Value()) && i > 10 {
			wrong++
		}
		tg.Update(0x400100, g.Value(), true)
		g.Push(true)
	}
	if wrong > 2 {
		t.Errorf("always-taken mispredicted %d times after warmup", wrong)
	}
}

func TestTAGELearnsHistoryCorrelation(t *testing.T) {
	// Branch outcome equals the outcome two branches ago: impossible for
	// bimodal, learnable with history.
	tg := NewTAGE(DefaultTAGEConfig())
	var g predictor.GlobalHistory
	pattern := []bool{true, true, false, false} // period 4
	wrong := 0
	const n = 4000
	for i := 0; i < n; i++ {
		taken := pattern[i%len(pattern)]
		if tg.Predict(0x400100, g.Value()) != taken && i > n/2 {
			wrong++
		}
		tg.Update(0x400100, g.Value(), taken)
		g.Push(taken)
	}
	if rate := float64(wrong) / float64(n/2); rate > 0.05 {
		t.Errorf("period-4 pattern mispredict rate = %v after warmup", rate)
	}
}

func TestTAGEBimodalFallback(t *testing.T) {
	// With no history signal (random-ish history, fixed outcome), the
	// predictor must still converge via the bimodal base.
	tg := NewTAGE(DefaultTAGEConfig())
	seed := uint64(7)
	wrong := 0
	for i := 0; i < 2000; i++ {
		seed = seed*6364136223846793005 + 1
		hist := seed
		if tg.Predict(0x400200, hist) != true && i > 1000 {
			wrong++
		}
		tg.Update(0x400200, hist, true)
	}
	if wrong > 100 {
		t.Errorf("bimodal fallback mispredicted %d/1000", wrong)
	}
}

func TestTAGEMispredictRateTracked(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	tg.Update(0x400100, 0, true)
	if tg.Predictions != 1 {
		t.Errorf("predictions = %d", tg.Predictions)
	}
	if tg.MispredictRate() < 0 || tg.MispredictRate() > 100 {
		t.Error("mispredict rate out of range")
	}
	if NewTAGE(DefaultTAGEConfig()).MispredictRate() != 0 {
		t.Error("empty rate must be 0")
	}
}

func TestTAGEStorageBits(t *testing.T) {
	tg := NewTAGE(DefaultTAGEConfig())
	// ~32KB class: between 16k and 64k bytes.
	bytes := tg.StorageBits() / 8
	if bytes < 8<<10 || bytes > 64<<10 {
		t.Errorf("TAGE budget = %d bytes, want 32KB class", bytes)
	}
}

func TestTAGEValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultTAGEConfig()
	cfg.TableEntries = 1000
	NewTAGE(cfg)
}

func TestITTAGELearnsMonomorphicTarget(t *testing.T) {
	it := NewITTAGE(DefaultITTAGEConfig())
	const target = 0x400800
	for i := 0; i < 50; i++ {
		it.Update(0x400100, 0, target)
	}
	got, ok := it.Predict(0x400100, 0)
	if !ok || got != target {
		t.Errorf("prediction = %#x,%v, want %#x", got, ok, target)
	}
}

func TestITTAGELearnsHistoryCorrelatedTargets(t *testing.T) {
	// Target alternates with branch history: a polymorphic call site.
	it := NewITTAGE(DefaultITTAGEConfig())
	histA, histB := uint64(0b1111), uint64(0b0000)
	for i := 0; i < 400; i++ {
		it.Update(0x400100, histA, 0xAAAA00)
		it.Update(0x400100, histB, 0xBBBB00)
	}
	if got, ok := it.Predict(0x400100, histA); !ok || got != 0xAAAA00 {
		t.Errorf("hist A target = %#x,%v", got, ok)
	}
	if got, ok := it.Predict(0x400100, histB); !ok || got != 0xBBBB00 {
		t.Errorf("hist B target = %#x,%v", got, ok)
	}
}

func TestITTAGEColdMiss(t *testing.T) {
	it := NewITTAGE(DefaultITTAGEConfig())
	if _, ok := it.Predict(0x400100, 0); ok {
		t.Error("cold predictor must not claim a target")
	}
}

func TestITTAGEMispredictTracking(t *testing.T) {
	it := NewITTAGE(DefaultITTAGEConfig())
	it.Update(0x400100, 0, 0x1000)
	it.Update(0x400100, 0, 0x1000)
	it.Update(0x400100, 0, 0x2000) // mispredict
	if it.Mispredicts < 2 {        // first (cold) + change
		t.Errorf("mispredicts = %d, want >= 2", it.Mispredicts)
	}
	if it.MispredictRate() <= 0 {
		t.Error("rate must be positive")
	}
}

func TestRASPushPop(t *testing.T) {
	var r RAS
	r.Push(0x100)
	r.Push(0x200)
	if got, ok := r.Pop(); !ok || got != 0x200 {
		t.Errorf("pop = %#x,%v", got, ok)
	}
	if got, ok := r.Pop(); !ok || got != 0x100 {
		t.Errorf("pop = %#x,%v", got, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("empty pop must fail")
	}
}

func TestRASOverflowKeepsNewest(t *testing.T) {
	var r RAS
	for i := 1; i <= 20; i++ {
		r.Push(uint64(i * 0x10))
	}
	got, ok := r.Pop()
	if !ok || got != 20*0x10 {
		t.Errorf("top after overflow = %#x", got)
	}
	// 16 entries deep: the oldest 4 were lost.
	depth := 1
	for {
		if _, ok := r.Pop(); !ok {
			break
		}
		depth++
	}
	if depth != 16 {
		t.Errorf("depth = %d, want 16", depth)
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	var r RAS
	r.Push(0x100)
	r.Push(0x200)
	s := r.Snapshot()
	r.Pop()
	r.Push(0x999)
	r.Restore(s)
	if got, ok := r.Pop(); !ok || got != 0x200 {
		t.Errorf("restored pop = %#x,%v, want 0x200", got, ok)
	}
}

func TestITTAGEValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultITTAGEConfig()
	cfg.BaseEntries = 77
	NewITTAGE(cfg)
}
