// Package branch implements the baseline core's control-flow predictors
// (Table 4): a TAGE conditional-direction predictor, an ITTAGE indirect
// target predictor (Seznec), and a 16-entry return address stack. The
// predictors are stateless with respect to global history — the pipeline
// owns the history register and passes snapshots in, which makes squash
// recovery a single register restore.
package branch

import "dlvp/internal/predictor"

// TAGEConfig describes the direction predictor geometry.
type TAGEConfig struct {
	BimodalEntries    int
	TableEntries      int     // entries per tagged table
	Histories         []uint8 // history length per tagged table, ascending
	TagBits           uint8
	UsefulResetPeriod uint64 // predictions between u-bit halvings
	Seed              uint64
}

// DefaultTAGEConfig returns a 32KB-class TAGE: an 8k-entry bimodal base and
// five 1k-entry tagged tables with geometric histories.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		BimodalEntries:    8192,
		TableEntries:      1024,
		Histories:         []uint8{4, 8, 16, 32, 64},
		TagBits:           11,
		UsefulResetPeriod: 256 * 1024,
		Seed:              0x7a9e,
	}
}

type tageEntry struct {
	tag   uint16
	ctr   int8 // -4..3 signed direction counter
	u     uint8
	valid bool
}

// maxTables bounds the tagged-table count so lookup contexts can be
// fixed-size values embedded in pipeline state.
const maxTables = 8

// Lookup carries the per-table indices and tags computed for one
// (pc, hist) pair. The pipeline captures it at prediction time and hands
// it back to UpdateLk at resolve time, so training re-hashes nothing.
type Lookup struct {
	idxs [maxTables]uint32
	tags [maxTables]uint16
}

// TAGE is the conditional branch direction predictor.
type TAGE struct {
	cfg     TAGEConfig
	bimodal []int8 // 2-bit counters, -2..1
	tables  [][]tageEntry
	rng     *predictor.Rand
	preds   uint64
	idxBits uint8
	scratch Lookup // for the stateless Predict/Update entry points

	Predictions uint64
	Mispredicts uint64
}

// NewTAGE returns a TAGE predictor.
func NewTAGE(cfg TAGEConfig) *TAGE {
	if cfg.BimodalEntries == 0 {
		cfg = DefaultTAGEConfig()
	}
	if cfg.BimodalEntries&(cfg.BimodalEntries-1) != 0 ||
		cfg.TableEntries&(cfg.TableEntries-1) != 0 {
		panic("branch: table sizes must be powers of two")
	}
	if len(cfg.Histories) > maxTables {
		panic("branch: too many tagged tables for Lookup")
	}
	t := &TAGE{
		cfg:     cfg,
		bimodal: make([]int8, cfg.BimodalEntries),
		rng:     predictor.NewRand(cfg.Seed),
	}
	for n := cfg.TableEntries; n > 1; n >>= 1 {
		t.idxBits++
	}
	for range cfg.Histories {
		t.tables = append(t.tables, make([]tageEntry, cfg.TableEntries))
	}
	return t
}

// computeIndices fills lk with every table's index/tag for (pc, hist).
func (t *TAGE) computeIndices(lk *Lookup, pc, hist uint64) {
	mp := predictor.MixPC(pc)
	idxMask := uint32(t.cfg.TableEntries - 1)
	tagMask := uint16(1<<t.cfg.TagBits - 1)
	for i, hb := range t.cfg.Histories {
		m := mp + uint64(i)*0xabcd
		lk.idxs[i] = (uint32(m) ^ uint32(predictor.Fold(hist, hb, t.idxBits))) & idxMask
		lk.tags[i] = (uint16(m>>14) ^ uint16(predictor.Fold(hist, hb, t.cfg.TagBits))) & tagMask
	}
}

func (t *TAGE) bimodalIndex(pc uint64) uint32 {
	return uint32(pc>>2) & uint32(t.cfg.BimodalEntries-1)
}

// Predict returns the predicted direction for the conditional branch at pc
// under global history hist.
func (t *TAGE) Predict(pc, hist uint64) bool {
	t.computeIndices(&t.scratch, pc, hist)
	taken, _, _ := t.predictFrom(&t.scratch, pc)
	return taken
}

// PredictLk is Predict capturing the lookup context in lk, for reuse by a
// later UpdateLk with the same (pc, hist).
func (t *TAGE) PredictLk(lk *Lookup, pc, hist uint64) bool {
	t.computeIndices(lk, pc, hist)
	taken, _, _ := t.predictFrom(lk, pc)
	return taken
}

// predictFrom returns (prediction, provider table index or -1 for
// bimodal, alternate prediction) using the precomputed lookup context.
func (t *TAGE) predictFrom(lk *Lookup, pc uint64) (bool, int, bool) {
	provider, alt := -1, -1
	for i := len(t.tables) - 1; i >= 0; i-- {
		e := &t.tables[i][lk.idxs[i]]
		if e.valid && e.tag == lk.tags[i] {
			if provider < 0 {
				provider = i
			} else {
				alt = i
				break
			}
		}
	}
	bimodalPred := t.bimodal[t.bimodalIndex(pc)] >= 0
	altPred := bimodalPred
	if alt >= 0 {
		altPred = t.tables[alt][lk.idxs[alt]].ctr >= 0
	}
	if provider < 0 {
		return bimodalPred, -1, altPred
	}
	e := &t.tables[provider][lk.idxs[provider]]
	// Weak, newly allocated entries defer to the alternate prediction.
	if (e.ctr == 0 || e.ctr == -1) && e.u == 0 {
		return altPred, provider, altPred
	}
	return e.ctr >= 0, provider, altPred
}

// Update trains the predictor with the resolved outcome. pc/hist must be
// the fetch-time values (the pipeline re-supplies its snapshots).
func (t *TAGE) Update(pc, hist uint64, taken bool) {
	t.computeIndices(&t.scratch, pc, hist)
	t.UpdateLk(&t.scratch, pc, taken)
}

// UpdateLk is Update with the lookup context captured by PredictLk for the
// same (pc, hist), skipping the re-hash of every table.
func (t *TAGE) UpdateLk(lk *Lookup, pc uint64, taken bool) {
	t.Predictions++
	pred, provider, altPred := t.predictFrom(lk, pc)
	if pred != taken {
		t.Mispredicts++
	}

	// Periodic graceful u-bit aging.
	t.preds++
	if t.cfg.UsefulResetPeriod > 0 && t.preds%t.cfg.UsefulResetPeriod == 0 {
		for i := range t.tables {
			for j := range t.tables[i] {
				t.tables[i][j].u >>= 1
			}
		}
	}

	bump := func(c int8, up bool, lo, hi int8) int8 {
		if up && c < hi {
			return c + 1
		}
		if !up && c > lo {
			return c - 1
		}
		return c
	}

	if provider >= 0 {
		e := &t.tables[provider][lk.idxs[provider]]
		providerPred := e.ctr >= 0
		if providerPred != altPred {
			if providerPred == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		e.ctr = bump(e.ctr, taken, -4, 3)
	} else {
		bi := t.bimodalIndex(pc)
		t.bimodal[bi] = bump(t.bimodal[bi], taken, -2, 1)
	}

	// On a misprediction, allocate in one longer-history table.
	if pred != taken && provider < len(t.tables)-1 {
		start := provider + 1
		// Try a randomly chosen longer table first, then scan.
		n := len(t.tables) - start
		first := start + int(t.rng.Next()%uint64(n))
		for k := 0; k < n; k++ {
			ti := start + (first-start+k)%n
			e := &t.tables[ti][lk.idxs[ti]]
			if !e.valid || e.u == 0 {
				ctr := int8(0)
				if !taken {
					ctr = -1
				}
				*e = tageEntry{tag: lk.tags[ti], ctr: ctr, u: 0, valid: true}
				return
			}
		}
		// All victims useful: decay them so future allocations succeed.
		for ti := start; ti < len(t.tables); ti++ {
			if e := &t.tables[ti][lk.idxs[ti]]; e.u > 0 {
				e.u--
			}
		}
	}
}

// MispredictRate returns mispredictions per update, in percent.
func (t *TAGE) MispredictRate() float64 {
	if t.Predictions == 0 {
		return 0
	}
	return 100 * float64(t.Mispredicts) / float64(t.Predictions)
}

// StorageBits returns the approximate predictor budget in bits.
func (t *TAGE) StorageBits() int {
	bits := t.cfg.BimodalEntries * 2
	per := int(t.cfg.TagBits) + 3 + 2
	bits += len(t.tables) * t.cfg.TableEntries * per
	return bits
}
