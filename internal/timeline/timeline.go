// Package timeline is the simulation flight recorder: an interval
// time-series of predictor/pipeline state sampled by the uarch core every
// N committed instructions. A run that used to emit one aggregate
// metrics.RunStats at the end becomes an inspectable sequence of
// per-interval deltas — IPC, value-prediction coverage/accuracy, PAP APT
// hit/conflict/alias rates, FPC confidence transitions, PAQ pressure,
// LSCD blacklisting bursts, probe and cache hit rates — so phase
// behaviour (PAP confidence warm-up, store-conflict misprediction bursts)
// can be seen, streamed live, diffed between runs, and reconciled against
// the final aggregate.
//
// Memory is O(capacity) for any run length: when the sample ring fills,
// adjacent samples are merged pairwise (deltas summed, high-water marks
// maxed), halving the resolution instead of dropping data. Unlike plain
// reservoir sampling this downsampling preserves delta sums exactly, so
// the sum of interval deltas always reconciles with the run's final
// RunStats — a property the tests enforce.
package timeline

import (
	"fmt"
	"io"
	"math"
	"sync"
)

// DefaultIntervalInstrs is the sampling interval when a caller passes 0:
// one sample per 100k committed instructions.
const DefaultIntervalInstrs = 100_000

// DefaultCapacity is the sample-ring bound when a caller passes 0. At 512
// samples of ~300 bytes a recorder costs well under 200 KB regardless of
// run length.
const DefaultCapacity = 512

// Counters is a point-in-time snapshot of the monotone counters the
// sampler differentiates. The core fills one in place at each interval
// boundary (no allocation); Sub turns two snapshots into a per-interval
// delta. Every field is a cumulative count, never a rate — rates are
// derived with the zero-guarded helpers on Sample.
type Counters struct {
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	Loads        uint64 `json:"loads"`
	Stores       uint64 `json:"stores"`

	// Value prediction (commit-path accounting).
	VPEligible  uint64 `json:"vp_eligible"`
	VPPredicted uint64 `json:"vp_predicted"`
	VPCorrect   uint64 `json:"vp_correct"`

	// Recovery events.
	ValueFlushes  uint64 `json:"value_flushes"`
	BranchFlushes uint64 `json:"branch_flushes"`
	OrderFlushes  uint64 `json:"order_flushes"`
	ValueReplays  uint64 `json:"value_replays"`

	// Predicted Address Queue pressure.
	PAQAllocated uint64 `json:"paq_allocated"`
	PAQDropped   uint64 `json:"paq_dropped"`
	PAQFull      uint64 `json:"paq_full"`

	// LSCD (store-conflict blacklist) activity.
	LSCDInserts  uint64 `json:"lscd_inserts"`
	LSCDFiltered uint64 `json:"lscd_filtered"`

	// L1D probe traffic (DLVP step 3-5).
	Probes     uint64 `json:"probes"`
	ProbeHits  uint64 `json:"probe_hits"`
	Prefetches uint64 `json:"prefetches"`

	// PAP Address Prediction Table.
	APTLookups     uint64 `json:"apt_lookups"`
	APTHits        uint64 `json:"apt_hits"`
	APTAllocations uint64 `json:"apt_allocations"`
	// APTConfResets counts address-mismatch conflicts (a hitting entry
	// whose stored address disagreed with the executed load).
	APTConfResets uint64 `json:"apt_conf_resets"`
	// APTTagAliases counts entries reallocated between lookup and train —
	// two static loads aliasing onto one APT slot.
	APTTagAliases uint64 `json:"apt_tag_aliases"`

	// FPC confidence transitions (the paper's Challenge #2 warm-up signal).
	FPCBumps       uint64 `json:"fpc_bumps"`
	FPCSaturations uint64 `json:"fpc_saturations"`

	// Memory system.
	L1DAccesses uint64 `json:"l1d_accesses"`
	L1DMisses   uint64 `json:"l1d_misses"`
	L2Accesses  uint64 `json:"l2_accesses"`
	L2Misses    uint64 `json:"l2_misses"`
	L3Accesses  uint64 `json:"l3_accesses"`
	L3Misses    uint64 `json:"l3_misses"`
	TLBAccesses uint64 `json:"tlb_accesses"`
	TLBMisses   uint64 `json:"tlb_misses"`
}

// Sub returns the element-wise delta c - prev.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		Instructions:   c.Instructions - prev.Instructions,
		Cycles:         c.Cycles - prev.Cycles,
		Loads:          c.Loads - prev.Loads,
		Stores:         c.Stores - prev.Stores,
		VPEligible:     c.VPEligible - prev.VPEligible,
		VPPredicted:    c.VPPredicted - prev.VPPredicted,
		VPCorrect:      c.VPCorrect - prev.VPCorrect,
		ValueFlushes:   c.ValueFlushes - prev.ValueFlushes,
		BranchFlushes:  c.BranchFlushes - prev.BranchFlushes,
		OrderFlushes:   c.OrderFlushes - prev.OrderFlushes,
		ValueReplays:   c.ValueReplays - prev.ValueReplays,
		PAQAllocated:   c.PAQAllocated - prev.PAQAllocated,
		PAQDropped:     c.PAQDropped - prev.PAQDropped,
		PAQFull:        c.PAQFull - prev.PAQFull,
		LSCDInserts:    c.LSCDInserts - prev.LSCDInserts,
		LSCDFiltered:   c.LSCDFiltered - prev.LSCDFiltered,
		Probes:         c.Probes - prev.Probes,
		ProbeHits:      c.ProbeHits - prev.ProbeHits,
		Prefetches:     c.Prefetches - prev.Prefetches,
		APTLookups:     c.APTLookups - prev.APTLookups,
		APTHits:        c.APTHits - prev.APTHits,
		APTAllocations: c.APTAllocations - prev.APTAllocations,
		APTConfResets:  c.APTConfResets - prev.APTConfResets,
		APTTagAliases:  c.APTTagAliases - prev.APTTagAliases,
		FPCBumps:       c.FPCBumps - prev.FPCBumps,
		FPCSaturations: c.FPCSaturations - prev.FPCSaturations,
		L1DAccesses:    c.L1DAccesses - prev.L1DAccesses,
		L1DMisses:      c.L1DMisses - prev.L1DMisses,
		L2Accesses:     c.L2Accesses - prev.L2Accesses,
		L2Misses:       c.L2Misses - prev.L2Misses,
		L3Accesses:     c.L3Accesses - prev.L3Accesses,
		L3Misses:       c.L3Misses - prev.L3Misses,
		TLBAccesses:    c.TLBAccesses - prev.TLBAccesses,
		TLBMisses:      c.TLBMisses - prev.TLBMisses,
	}
}

// Add returns the element-wise sum c + other.
func (c Counters) Add(other Counters) Counters {
	neg := Counters{}
	// a + b == a - (0 - b); reuse Sub so the field list lives in one place.
	return c.Sub(neg.Sub(other))
}

// Sample is one interval of the timeline: the delta of every counter over
// [StartInstr, EndInstr) committed instructions, plus interval-local
// high-water marks.
type Sample struct {
	// Index is the ordinal of the first base interval merged into this
	// sample; Intervals is how many base intervals it spans (1 until the
	// ring filled and downsampling merged neighbours).
	Index     int `json:"index"`
	Intervals int `json:"intervals"`

	StartInstr uint64 `json:"start_instr"`
	EndInstr   uint64 `json:"end_instr"`
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`

	// PAQPeak is the high-water Predicted Address Queue occupancy seen
	// during the interval (max over merged intervals).
	PAQPeak int `json:"paq_peak"`

	Delta Counters `json:"delta"`
}

// ratio returns 100*num/den, or 0 when den is zero.
func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// IPC returns the interval's instructions per cycle (0 for an empty
// interval).
func (s Sample) IPC() float64 {
	if s.Delta.Cycles == 0 {
		return 0
	}
	return float64(s.Delta.Instructions) / float64(s.Delta.Cycles)
}

// Coverage returns predicted/eligible in percent for the interval.
func (s Sample) Coverage() float64 { return ratio(s.Delta.VPPredicted, s.Delta.VPEligible) }

// Accuracy returns correct/predicted in percent for the interval.
func (s Sample) Accuracy() float64 { return ratio(s.Delta.VPCorrect, s.Delta.VPPredicted) }

// APTHitRate returns APT hits per lookup in percent.
func (s Sample) APTHitRate() float64 { return ratio(s.Delta.APTHits, s.Delta.APTLookups) }

// APTConflictRate returns address-mismatch confidence resets per APT
// lookup in percent.
func (s Sample) APTConflictRate() float64 { return ratio(s.Delta.APTConfResets, s.Delta.APTLookups) }

// APTAliasRate returns lookup-to-train tag aliases per APT lookup in
// percent.
func (s Sample) APTAliasRate() float64 { return ratio(s.Delta.APTTagAliases, s.Delta.APTLookups) }

// ProbeHitRate returns L1D probe hits per probe in percent.
func (s Sample) ProbeHitRate() float64 { return ratio(s.Delta.ProbeHits, s.Delta.Probes) }

// PAQDropRate returns dropped/allocated PAQ entries in percent.
func (s Sample) PAQDropRate() float64 { return ratio(s.Delta.PAQDropped, s.Delta.PAQAllocated) }

// L1DMissRate returns the interval's L1D miss rate in percent.
func (s Sample) L1DMissRate() float64 { return ratio(s.Delta.L1DMisses, s.Delta.L1DAccesses) }

// L2MissRate returns the interval's L2 miss rate in percent.
func (s Sample) L2MissRate() float64 { return ratio(s.Delta.L2Misses, s.Delta.L2Accesses) }

// L3MissRate returns the interval's L3 miss rate in percent.
func (s Sample) L3MissRate() float64 { return ratio(s.Delta.L3Misses, s.Delta.L3Accesses) }

// TLBMissRate returns the interval's TLB miss rate in percent.
func (s Sample) TLBMissRate() float64 { return ratio(s.Delta.TLBMisses, s.Delta.TLBAccesses) }

// merge combines s with the immediately following sample next.
func (s Sample) merge(next Sample) Sample {
	out := s
	out.Intervals = s.Intervals + next.Intervals
	out.EndInstr = next.EndInstr
	out.EndCycle = next.EndCycle
	out.Delta = s.Delta.Add(next.Delta)
	if next.PAQPeak > out.PAQPeak {
		out.PAQPeak = next.PAQPeak
	}
	return out
}

// Timeline is the finished flight-recorder product of one run: metadata
// plus the ordered interval samples. It is the wire shape served by
// GET /v1/runs/{id}/timeline and cached content-addressed alongside the
// run's RunStats.
type Timeline struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	// IntervalInstrs is the base sampling interval; a sample's true span
	// is IntervalInstrs*Intervals (larger once downsampling merged
	// neighbours), except the final tail sample which may be shorter.
	IntervalInstrs uint64 `json:"interval_instrs"`
	Capacity       int    `json:"capacity"`
	// Merges counts downsampling passes; resolution is halved each time.
	Merges int `json:"merges,omitempty"`
	// Partial marks a timeline snapshotted from a still-running job.
	Partial bool     `json:"partial,omitempty"`
	Samples []Sample `json:"samples"`
}

// Totals sums every interval delta. Because downsampling merges rather
// than discards, the totals equal the run's cumulative counters exactly.
func (t *Timeline) Totals() Counters {
	var sum Counters
	for _, s := range t.Samples {
		sum = sum.Add(s.Delta)
	}
	return sum
}

// Recorder accumulates samples during a run. The producing core calls
// Sample at each interval boundary and Finish once at the end; concurrent
// readers (the SSE streaming endpoint) call Snapshot/Partial. Only the
// boundary path takes the mutex — the per-commit hot path in the core is
// a nil check and a counter decrement.
type Recorder struct {
	mu       sync.Mutex
	interval uint64
	capacity int
	samples  []Sample
	prev     Counters
	next     int // ordinal of the next base interval
	merges   int
	done     bool
	final    *Timeline
}

// NewRecorder returns a recorder sampling every intervalInstrs committed
// instructions into a ring of at most capacity samples (0 selects
// DefaultIntervalInstrs / DefaultCapacity; capacity is clamped to >= 2 so
// downsampling always has a pair to merge).
func NewRecorder(intervalInstrs uint64, capacity int) *Recorder {
	if intervalInstrs == 0 {
		intervalInstrs = DefaultIntervalInstrs
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if capacity < 2 {
		capacity = 2
	}
	return &Recorder{
		interval: intervalInstrs,
		capacity: capacity,
		samples:  make([]Sample, 0, capacity),
	}
}

// IntervalInstrs returns the base sampling interval.
func (r *Recorder) IntervalInstrs() uint64 { return r.interval }

// Sample records the interval ending at the cumulative snapshot cum,
// taken at cycle-time inside cum.Cycles. paqPeak is the high-water PAQ
// occupancy since the previous boundary. Appends never allocate once the
// backing array is at capacity: downsampling reuses it.
func (r *Recorder) Sample(cum Counters, paqPeak int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.appendLocked(cum, paqPeak)
}

func (r *Recorder) appendLocked(cum Counters, paqPeak int) {
	s := Sample{
		Index:      r.next,
		Intervals:  1,
		StartInstr: r.prev.Instructions,
		EndInstr:   cum.Instructions,
		StartCycle: r.prev.Cycles,
		EndCycle:   cum.Cycles,
		PAQPeak:    paqPeak,
		Delta:      cum.Sub(r.prev),
	}
	r.next++
	r.prev = cum
	r.samples = append(r.samples, s)
	if len(r.samples) >= r.capacity {
		r.downsampleLocked()
	}
}

// downsampleLocked merges adjacent sample pairs in place, halving the
// count (an odd trailing sample is kept as is). Delta sums are preserved
// exactly; only resolution is lost.
func (r *Recorder) downsampleLocked() {
	n := len(r.samples)
	out := 0
	for i := 0; i+1 < n; i += 2 {
		r.samples[out] = r.samples[i].merge(r.samples[i+1])
		out++
	}
	if n%2 == 1 {
		r.samples[out] = r.samples[n-1]
		out++
	}
	r.samples = r.samples[:out]
	r.merges++
}

// Finish records the tail interval (the committed instructions since the
// last boundary, if any) and freezes the recorder into a Timeline.
// Calling Finish more than once returns the same Timeline.
func (r *Recorder) Finish(cum Counters, paqPeak int, workload, scheme string) *Timeline {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return r.final
	}
	if cum != r.prev {
		r.appendLocked(cum, paqPeak)
	}
	r.done = true
	r.final = &Timeline{
		Workload:       workload,
		Scheme:         scheme,
		IntervalInstrs: r.interval,
		Capacity:       r.capacity,
		Merges:         r.merges,
		Samples:        append([]Sample(nil), r.samples...),
	}
	return r.final
}

// Snapshot returns a copy of the samples recorded so far and the merge
// generation. A stream that cached N delivered samples must resend from
// scratch when the generation advances (downsampling rewrote history).
func (r *Recorder) Snapshot() (samples []Sample, merges int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Sample(nil), r.samples...), r.merges
}

// Partial returns a Timeline view of a still-recording run (Partial set;
// the tail interval in progress is not included).
func (r *Recorder) Partial(workload, scheme string) *Timeline {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return r.final
	}
	return &Timeline{
		Workload:       workload,
		Scheme:         scheme,
		IntervalInstrs: r.interval,
		Capacity:       r.capacity,
		Merges:         r.merges,
		Partial:        true,
		Samples:        append([]Sample(nil), r.samples...),
	}
}

// --- diffing -----------------------------------------------------------------

// DiffRow is one aligned interval of a two-run comparison.
type DiffRow struct {
	Index      int     `json:"index"`
	StartInstr uint64  `json:"start_instr"`
	EndInstr   uint64  `json:"end_instr"`
	IPCA       float64 `json:"ipc_a"`
	IPCB       float64 `json:"ipc_b"`
	AccuracyA  float64 `json:"accuracy_a"`
	AccuracyB  float64 `json:"accuracy_b"`
	CoverageA  float64 `json:"coverage_a"`
	CoverageB  float64 `json:"coverage_b"`
	// AccuracyDelta is B−A in percentage points (negative = regression).
	AccuracyDelta float64 `json:"accuracy_delta"`
	IPCDelta      float64 `json:"ipc_delta"`
}

// Diff aligns two timelines interval-by-interval (by sample position over
// the shorter of the two) and returns comparison rows. Timelines sampled
// at different base intervals or downsampled to different generations
// still align positionally; the instruction ranges reported per row come
// from a so skew is visible rather than hidden.
func Diff(a, b *Timeline) []DiffRow {
	n := min(len(a.Samples), len(b.Samples))
	rows := make([]DiffRow, 0, n)
	for i := 0; i < n; i++ {
		sa, sb := a.Samples[i], b.Samples[i]
		rows = append(rows, DiffRow{
			Index:         sa.Index,
			StartInstr:    sa.StartInstr,
			EndInstr:      sa.EndInstr,
			IPCA:          sa.IPC(),
			IPCB:          sb.IPC(),
			AccuracyA:     sa.Accuracy(),
			AccuracyB:     sb.Accuracy(),
			CoverageA:     sa.Coverage(),
			CoverageB:     sb.Coverage(),
			AccuracyDelta: sb.Accuracy() - sa.Accuracy(),
			IPCDelta:      sb.IPC() - sa.IPC(),
		})
	}
	return rows
}

// LargestAccuracyRegression returns the aligned interval where run B's
// value-prediction accuracy fell furthest below run A's, and false when
// no interval regressed (or nothing aligned).
func LargestAccuracyRegression(a, b *Timeline) (DiffRow, bool) {
	var worst DiffRow
	found := false
	for _, row := range Diff(a, b) {
		if row.AccuracyDelta < 0 && (!found || row.AccuracyDelta < worst.AccuracyDelta) {
			worst = row
			found = true
		}
	}
	return worst, found
}

// --- Prometheus exposition ---------------------------------------------------

// promSeries lists the exported per-interval series: name, help, and the
// value function. Rates are exposed as gauges (they are interval-local,
// not cumulative).
var promSeries = []struct {
	name, help string
	value      func(Sample) float64
}{
	{"dlvp_timeline_instructions", "Committed instructions in the interval.",
		func(s Sample) float64 { return float64(s.Delta.Instructions) }},
	{"dlvp_timeline_cycles", "Cycles elapsed in the interval.",
		func(s Sample) float64 { return float64(s.Delta.Cycles) }},
	{"dlvp_timeline_ipc", "Instructions per cycle in the interval.", Sample.IPC},
	{"dlvp_timeline_vp_coverage_pct", "Value-prediction coverage in the interval (percent).", Sample.Coverage},
	{"dlvp_timeline_vp_accuracy_pct", "Value-prediction accuracy in the interval (percent).", Sample.Accuracy},
	{"dlvp_timeline_apt_hit_pct", "PAP APT hit rate in the interval (percent).", Sample.APTHitRate},
	{"dlvp_timeline_apt_conflict_pct", "PAP APT address-conflict reset rate in the interval (percent).", Sample.APTConflictRate},
	{"dlvp_timeline_apt_alias_pct", "PAP APT lookup-to-train tag-alias rate in the interval (percent).", Sample.APTAliasRate},
	{"dlvp_timeline_fpc_bumps", "FPC confidence bumps in the interval.",
		func(s Sample) float64 { return float64(s.Delta.FPCBumps) }},
	{"dlvp_timeline_fpc_saturations", "FPC counters reaching confidence in the interval.",
		func(s Sample) float64 { return float64(s.Delta.FPCSaturations) }},
	{"dlvp_timeline_paq_peak", "High-water PAQ occupancy in the interval.",
		func(s Sample) float64 { return float64(s.PAQPeak) }},
	{"dlvp_timeline_paq_drop_pct", "PAQ entries dropped per allocated in the interval (percent).", Sample.PAQDropRate},
	{"dlvp_timeline_lscd_inserts", "LSCD blacklist insertions in the interval.",
		func(s Sample) float64 { return float64(s.Delta.LSCDInserts) }},
	{"dlvp_timeline_lscd_filtered", "LSCD-filtered prediction opportunities in the interval.",
		func(s Sample) float64 { return float64(s.Delta.LSCDFiltered) }},
	{"dlvp_timeline_probe_hit_pct", "L1D probe hit rate in the interval (percent).", Sample.ProbeHitRate},
	{"dlvp_timeline_l1d_miss_pct", "L1D miss rate in the interval (percent).", Sample.L1DMissRate},
	{"dlvp_timeline_l2_miss_pct", "L2 miss rate in the interval (percent).", Sample.L2MissRate},
	{"dlvp_timeline_l3_miss_pct", "L3 miss rate in the interval (percent).", Sample.L3MissRate},
	{"dlvp_timeline_value_flushes", "Value-misprediction flushes in the interval.",
		func(s Sample) float64 { return float64(s.Delta.ValueFlushes) }},
	{"dlvp_timeline_branch_flushes", "Branch-misprediction flushes in the interval.",
		func(s Sample) float64 { return float64(s.Delta.BranchFlushes) }},
}

// WritePrometheus renders the timeline in the Prometheus text exposition
// format, one gauge family per series with an interval label (the
// ?format=prom view of GET /v1/runs/{id}/timeline). Interval labels carry
// the sample's starting instruction count so panels align on simulated
// progress rather than array position.
func WritePrometheus(w io.Writer, t *Timeline) {
	for _, series := range promSeries {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", series.name, series.help, series.name)
		for _, s := range t.Samples {
			fmt.Fprintf(w, "%s{workload=%q,scheme=%q,interval=\"%d\",start_instr=\"%d\"} %s\n",
				series.name, t.Workload, t.Scheme, s.Index, s.StartInstr, formatFloat(series.value(s)))
		}
	}
}

func formatFloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}
