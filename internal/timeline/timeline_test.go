package timeline

import (
	"strings"
	"testing"
)

// cumAt builds a cumulative snapshot after n base intervals with a fixed
// per-interval delta, so expected totals are easy to state in closed form.
func cumAt(n uint64) Counters {
	return Counters{
		Instructions: n * 100,
		Cycles:       n * 250,
		Loads:        n * 30,
		VPEligible:   n * 30,
		VPPredicted:  n * 20,
		VPCorrect:    n * 18,
		PAQAllocated: n * 20,
		PAQDropped:   n * 1,
		APTLookups:   n * 30,
		APTHits:      n * 25,
		L1DAccesses:  n * 40,
		L1DMisses:    n * 4,
	}
}

func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(100, 0)
	for i := uint64(1); i <= 5; i++ {
		r.Sample(cumAt(i), int(i))
	}
	tl := r.Finish(cumAt(5), 0, "wl", "dlvp")
	if len(tl.Samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(tl.Samples))
	}
	for i, s := range tl.Samples {
		if s.Delta.Instructions != 100 {
			t.Errorf("sample %d delta instrs = %d, want 100", i, s.Delta.Instructions)
		}
		if s.Intervals != 1 || s.Index != i {
			t.Errorf("sample %d: intervals=%d index=%d", i, s.Intervals, s.Index)
		}
		if s.StartInstr != uint64(i)*100 || s.EndInstr != uint64(i+1)*100 {
			t.Errorf("sample %d range = [%d,%d)", i, s.StartInstr, s.EndInstr)
		}
	}
	if got := tl.Totals(); got != cumAt(5) {
		t.Errorf("totals = %+v, want %+v", got, cumAt(5))
	}
	// Finish is idempotent.
	if again := r.Finish(cumAt(9), 0, "x", "y"); again != tl {
		t.Error("second Finish returned a different timeline")
	}
}

// Downsampling must preserve delta sums exactly — the property that lets
// interval totals reconcile with the run's final RunStats.
func TestDownsamplingPreservesSums(t *testing.T) {
	const capacity = 8
	r := NewRecorder(100, capacity)
	const n = 100 // forces several merge generations
	for i := uint64(1); i <= n; i++ {
		r.Sample(cumAt(i), int(i%7))
	}
	tl := r.Finish(cumAt(n), 0, "wl", "dlvp")
	if len(tl.Samples) >= capacity {
		t.Fatalf("samples = %d, want < capacity %d", len(tl.Samples), capacity)
	}
	if tl.Merges == 0 {
		t.Fatal("expected at least one downsampling pass")
	}
	if got := tl.Totals(); got != cumAt(n) {
		t.Errorf("totals after downsampling = %+v, want %+v", got, cumAt(n))
	}
	// Sample ranges must tile [0, n*100) without gaps.
	var next uint64
	intervals := 0
	for i, s := range tl.Samples {
		if s.StartInstr != next {
			t.Errorf("sample %d starts at %d, want %d", i, s.StartInstr, next)
		}
		next = s.EndInstr
		intervals += s.Intervals
	}
	if next != n*100 || intervals != n {
		t.Errorf("tiled to %d instrs / %d intervals, want %d / %d", next, intervals, n*100, n)
	}
}

func TestDownsamplingTracksPeaks(t *testing.T) {
	r := NewRecorder(100, 4)
	peaks := []int{1, 9, 2, 3, 5, 4}
	for i, p := range peaks {
		r.Sample(cumAt(uint64(i+1)), p)
	}
	tl := r.Finish(cumAt(uint64(len(peaks))), 0, "wl", "dlvp")
	maxPeak := 0
	for _, s := range tl.Samples {
		if s.PAQPeak > maxPeak {
			maxPeak = s.PAQPeak
		}
	}
	if maxPeak != 9 {
		t.Errorf("max merged PAQ peak = %d, want 9", maxPeak)
	}
}

func TestFinishRecordsTail(t *testing.T) {
	r := NewRecorder(100, 0)
	r.Sample(cumAt(1), 0)
	tail := cumAt(1)
	tail.Instructions += 42
	tail.Cycles += 77
	tl := r.Finish(tail, 3, "wl", "dlvp")
	if len(tl.Samples) != 2 {
		t.Fatalf("samples = %d, want 2 (boundary + tail)", len(tl.Samples))
	}
	last := tl.Samples[1]
	if last.Delta.Instructions != 42 || last.PAQPeak != 3 {
		t.Errorf("tail sample = %+v", last)
	}
	if got := tl.Totals(); got != tail {
		t.Errorf("totals = %+v, want %+v", got, tail)
	}
}

func TestSampleRateGuards(t *testing.T) {
	var s Sample // all-zero deltas
	for name, v := range map[string]float64{
		"IPC":             s.IPC(),
		"Coverage":        s.Coverage(),
		"Accuracy":        s.Accuracy(),
		"APTHitRate":      s.APTHitRate(),
		"APTConflictRate": s.APTConflictRate(),
		"APTAliasRate":    s.APTAliasRate(),
		"ProbeHitRate":    s.ProbeHitRate(),
		"PAQDropRate":     s.PAQDropRate(),
		"L1DMissRate":     s.L1DMissRate(),
		"L2MissRate":      s.L2MissRate(),
		"L3MissRate":      s.L3MissRate(),
		"TLBMissRate":     s.TLBMissRate(),
	} {
		if v != 0 {
			t.Errorf("%s on empty sample = %v, want 0", name, v)
		}
	}
}

func TestSnapshotGeneration(t *testing.T) {
	r := NewRecorder(100, 4)
	r.Sample(cumAt(1), 0)
	r.Sample(cumAt(2), 0)
	s1, gen1 := r.Snapshot()
	if len(s1) != 2 || gen1 != 0 {
		t.Fatalf("snapshot = %d samples gen %d", len(s1), gen1)
	}
	r.Sample(cumAt(3), 0)
	r.Sample(cumAt(4), 0) // hits capacity: merge
	s2, gen2 := r.Snapshot()
	if gen2 != 1 {
		t.Errorf("generation = %d, want 1 after downsampling", gen2)
	}
	if len(s2) != 2 {
		t.Errorf("post-merge samples = %d, want 2", len(s2))
	}
}

func TestPartial(t *testing.T) {
	r := NewRecorder(100, 0)
	r.Sample(cumAt(1), 0)
	p := r.Partial("wl", "dlvp")
	if !p.Partial || len(p.Samples) != 1 {
		t.Fatalf("partial = %+v", p)
	}
	tl := r.Finish(cumAt(2), 0, "wl", "dlvp")
	if got := r.Partial("wl", "dlvp"); got != tl {
		t.Error("Partial after Finish must return the final timeline")
	}
	if tl.Partial {
		t.Error("finished timeline marked partial")
	}
}

func TestDiffAndRegression(t *testing.T) {
	mk := func(accuracies []uint64) *Timeline {
		r := NewRecorder(100, 0)
		var cum Counters
		for _, correct := range accuracies {
			cum.Instructions += 100
			cum.Cycles += 200
			cum.VPEligible += 100
			cum.VPPredicted += 100
			cum.VPCorrect += correct
			r.Sample(cum, 0)
		}
		return r.Finish(cum, 0, "wl", "dlvp")
	}
	a := mk([]uint64{90, 90, 90, 90})
	b := mk([]uint64{90, 60, 75, 90})
	rows := Diff(a, b)
	if len(rows) != 4 {
		t.Fatalf("diff rows = %d, want 4", len(rows))
	}
	worst, found := LargestAccuracyRegression(a, b)
	if !found {
		t.Fatal("regression not found")
	}
	if worst.Index != 1 {
		t.Errorf("worst interval = %d, want 1", worst.Index)
	}
	if worst.AccuracyDelta != -30 {
		t.Errorf("worst delta = %v, want -30", worst.AccuracyDelta)
	}
	// No regression when B >= A everywhere.
	if _, found := LargestAccuracyRegression(b, a); found {
		t.Error("improvement misreported as regression")
	}
	// Unequal lengths align over the shorter run.
	if rows := Diff(a, mk([]uint64{90, 90})); len(rows) != 2 {
		t.Errorf("unequal diff rows = %d, want 2", len(rows))
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRecorder(100, 0)
	r.Sample(cumAt(1), 5)
	tl := r.Finish(cumAt(2), 0, "gcc", "dlvp")
	var sb strings.Builder
	WritePrometheus(&sb, tl)
	out := sb.String()
	for _, want := range []string{
		"# HELP dlvp_timeline_ipc",
		"# TYPE dlvp_timeline_ipc gauge",
		`dlvp_timeline_ipc{workload="gcc",scheme="dlvp",interval="0",start_instr="0"} 0.4`,
		`dlvp_timeline_paq_peak{workload="gcc",scheme="dlvp",interval="0",start_instr="0"} 5`,
		`interval="1",start_instr="100"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}

func TestCountersAdd(t *testing.T) {
	a, b := cumAt(3), cumAt(4)
	if got := a.Add(b); got != cumAt(7) {
		t.Errorf("Add = %+v, want %+v", got, cumAt(7))
	}
}
