package predictor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must produce same sequence")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestChanceAlwaysForOne(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 100; i++ {
		if !r.Chance(1) {
			t.Fatal("Chance(1) must always be true")
		}
	}
}

func TestChanceApproximatesProbability(t *testing.T) {
	r := NewRand(7)
	const n = 100_000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Chance(4) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("Chance(4) rate = %v, want ~0.25", got)
	}
}

func TestFPCSaturation(t *testing.T) {
	r := NewRand(3)
	f := NewFPC(r, 1, 1, 1) // deterministic: every bump advances
	c := uint8(0)
	for i := 0; i < 3; i++ {
		if f.Saturated(c) {
			t.Fatalf("saturated too early at %d", i)
		}
		c = f.Bump(c)
	}
	if !f.Saturated(c) {
		t.Error("must be saturated after 3 deterministic bumps")
	}
	if f.Bump(c) != c {
		t.Error("bump at saturation must be a no-op")
	}
	if f.Max() != 3 {
		t.Errorf("Max = %d", f.Max())
	}
}

func TestFPCExpectedObservations(t *testing.T) {
	r := NewRand(3)
	if got := PAPConfidenceFPC(r).ExpectedObservations(); got != 7 {
		t.Errorf("PAP FPC expected observations = %v, want 7 (~8 with allocation)", got)
	}
	v := VTAGEConfidenceFPC(r).ExpectedObservations()
	if v < 64 || v > 128 {
		t.Errorf("VTAGE FPC expected observations = %v, want within [64,128]", v)
	}
}

func TestFPCEmpiricalSaturationCount(t *testing.T) {
	// Average number of observations to saturate the PAP FPC should be near
	// its analytic expectation of 7.
	r := NewRand(11)
	f := PAPConfidenceFPC(r)
	const trials = 20_000
	total := 0
	for i := 0; i < trials; i++ {
		c, n := uint8(0), 0
		for !f.Saturated(c) {
			c = f.Bump(c)
			n++
		}
		total += n
	}
	mean := float64(total) / trials
	if math.Abs(mean-7) > 0.25 {
		t.Errorf("empirical saturation mean = %v, want ~7", mean)
	}
}

func TestFPCValidation(t *testing.T) {
	r := NewRand(0)
	for _, bad := range [][]uint32{{}, {3}, {0}, {1, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFPC(%v) should panic", bad)
				}
			}()
			NewFPC(r, bad...)
		}()
	}
}

func TestLoadPathHistory(t *testing.T) {
	h := NewLoadPathHistory(4)
	// PCs chosen so bit 2 alternates 1,0,1,1.
	h.Push(0x404) // bit2 = 1
	h.Push(0x408) // bit2 = 0
	h.Push(0x40c) // bit2 = 1
	h.Push(0x414) // bit2 = 1
	if h.Value() != 0b1011 {
		t.Errorf("history = %04b, want 1011", h.Value())
	}
	// Overflow: oldest bit drops.
	h.Push(0x400) // bit2 = 0
	if h.Value() != 0b0110 {
		t.Errorf("history after shift = %04b, want 0110", h.Value())
	}
	snap := h.Snapshot()
	h.Push(0x404)
	h.Restore(snap)
	if h.Value() != 0b0110 {
		t.Error("restore did not rewind")
	}
}

func TestLoadPathHistoryBounds(t *testing.T) {
	for _, bad := range []uint8{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bits=%d should panic", bad)
				}
			}()
			NewLoadPathHistory(bad)
		}()
	}
	h := NewLoadPathHistory(64)
	h.Push(0x404)
	if h.Value() != 1 {
		t.Error("64-bit history push failed")
	}
}

func TestGlobalHistory(t *testing.T) {
	var g GlobalHistory
	g.Push(true)
	g.Push(false)
	g.Push(true)
	if g.Value() != 0b101 {
		t.Errorf("ghist = %b, want 101", g.Value())
	}
	s := g.Snapshot()
	g.Push(true)
	g.Restore(s)
	if g.Value() != 0b101 {
		t.Error("restore failed")
	}
}

func TestFold(t *testing.T) {
	if Fold(0, 16, 10) != 0 {
		t.Error("fold of zero must be zero")
	}
	if Fold(0xffff, 16, 8) != 0 {
		t.Error("0xffff folded into 8 bits must cancel to 0")
	}
	if got := Fold(0xff00, 16, 8); got != 0xff {
		t.Errorf("Fold(0xff00,16,8) = %#x, want 0xff", got)
	}
	if Fold(123, 0, 8) != 0 || Fold(123, 8, 0) != 0 {
		t.Error("degenerate folds must be zero")
	}
}

// Property: Fold output always fits in outBits.
func TestFoldRange(t *testing.T) {
	f := func(h uint64, hb, ob uint8) bool {
		hb = 1 + hb%64
		ob = 1 + ob%32
		return Fold(h, hb, ob) < 1<<ob
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Fold depends only on the low histBits of h.
func TestFoldMasksHistory(t *testing.T) {
	f := func(h uint64, hb, ob uint8) bool {
		hb = 1 + hb%63
		ob = 1 + ob%32
		masked := h & ((1 << hb) - 1)
		return Fold(h, hb, ob) == Fold(masked, hb, ob)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixPCSpreads(t *testing.T) {
	// Adjacent instruction PCs must land in different low-bit buckets
	// reasonably often.
	buckets := make(map[uint64]int)
	for pc := uint64(0x400000); pc < 0x400000+1024*4; pc += 4 {
		buckets[MixPC(pc)&1023]++
	}
	if len(buckets) < 600 {
		t.Errorf("MixPC used only %d of 1024 buckets for sequential PCs", len(buckets))
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.Record(true, true)
	s.Record(true, false)
	s.Record(false, false)
	s.Record(true, true)
	if s.Coverage() != 75 {
		t.Errorf("coverage = %v, want 75", s.Coverage())
	}
	if math.Abs(s.Accuracy()-200.0/3) > 1e-9 {
		t.Errorf("accuracy = %v, want 66.67", s.Accuracy())
	}
	if s.Mispredicted() != 1 {
		t.Errorf("mispredicted = %d", s.Mispredicted())
	}
	var z Stats
	if z.Coverage() != 0 || z.Accuracy() != 0 {
		t.Error("zero stats must not divide by zero")
	}
	z.Add(s)
	if z.Eligible != 4 || z.Predicted != 3 || z.Correct != 2 {
		t.Errorf("Add result = %+v", z)
	}
}
