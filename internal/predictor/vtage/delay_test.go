package vtage

import "testing"

// Reproduces the pipeline's fetch-train separation: all lookups of a frame
// happen before any training of that frame.
func TestDelayedTrainingManySites(t *testing.T) {
	p := New(DefaultConfig())
	const sites = 96
	for round := 0; round < 900; round++ {
		lks := make([]Lookup, sites)
		for s := 0; s < sites; s++ {
			lks[s] = p.Predict(0x400000+uint64(s)*28, 0)
		}
		for s := 0; s < sites; s++ {
			p.Train(lks[s], 0, uint64(1000+s))
		}
		p.PushBranch(round%32 == 0)
	}
	confident := 0
	for s := 0; s < sites; s++ {
		if p.Predict(0x400000+uint64(s)*28, 0).Confident {
			confident++
		}
	}
	if confident < sites/2 {
		t.Errorf("only %d/%d sites confident with delayed training", confident, sites)
	}
	t.Logf("allocs=%d hits=%d lookups=%d", p.Allocations, p.Hits, p.Lookups)
}
