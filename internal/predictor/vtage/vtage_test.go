package vtage

import (
	"testing"

	"dlvp/internal/isa"
)

// driveConstant trains (pc, destIdx) with a constant value n times and
// returns the final prediction state.
func driveConstant(p *Predictor, pc uint64, val uint64, n int) Lookup {
	var lk Lookup
	for i := 0; i < n; i++ {
		lk = p.Predict(pc, 0)
		p.Train(lk, isa.LDR, val)
	}
	return p.Predict(pc, 0)
}

func TestLearnsConstantValueSlowly(t *testing.T) {
	p := New(DefaultConfig())
	// After a handful of observations VTAGE must NOT be confident (the
	// paper's Challenge #2: confidence needs 64-128 observations).
	lk := driveConstant(p, 0x400100, 42, 10)
	if lk.Confident {
		t.Error("VTAGE confident after only 10 observations; FPC vector too aggressive")
	}
	lk = driveConstant(p, 0x400100, 42, 400)
	if !lk.Confident || lk.Value != 42 {
		t.Errorf("VTAGE not confident after 410 observations: %+v", lk)
	}
}

func TestHistoryContextDisambiguates(t *testing.T) {
	p := New(DefaultConfig())
	const pc = 0x400100
	// Value correlates with the preceding branch outcome.
	setHist := func(taken bool) {
		p.RestoreHistory(0)
		for i := 0; i < 13; i++ {
			p.PushBranch(taken)
		}
	}
	for i := 0; i < 600; i++ {
		setHist(true)
		lk := p.Predict(pc, 0)
		p.Train(lk, isa.LDR, 111)
		setHist(false)
		lk = p.Predict(pc, 0)
		p.Train(lk, isa.LDR, 222)
	}
	setHist(true)
	lkT := p.Predict(pc, 0)
	setHist(false)
	lkF := p.Predict(pc, 0)
	if !lkT.Confident || lkT.Value != 111 {
		t.Errorf("taken-context prediction = %+v, want confident 111", lkT)
	}
	if !lkF.Confident || lkF.Value != 222 {
		t.Errorf("not-taken-context prediction = %+v, want confident 222", lkF)
	}
}

func TestLongestHistoryProvides(t *testing.T) {
	p := New(DefaultConfig())
	// Train with a fixed history so all tables allocate eventually.
	p.RestoreHistory(0b1010101)
	var lk Lookup
	for i := 0; i < 800; i++ {
		lk = p.Predict(0x400100, 0)
		p.Train(lk, isa.LDR, 7)
	}
	lk = p.Predict(0x400100, 0)
	if lk.Provider < 0 {
		t.Fatal("no provider after training")
	}
	// With a stable history and repeated mispredict-free training the base
	// table should hit; after mispredictions longer tables allocate. Force
	// allocations by alternating values.
	for i := 0; i < 400; i++ {
		lk = p.Predict(0x400100, 0)
		p.Train(lk, isa.LDR, uint64(7+i%2))
	}
	lk = p.Predict(0x400100, 0)
	if lk.Provider < 0 {
		t.Fatal("lost all entries")
	}
}

func TestPerDestinationEntries(t *testing.T) {
	p := New(Config{
		TableEntries: 256, Histories: []uint8{0, 5, 13}, TagBits: 16,
		Filter: FilterNone, LoadsOnly: true, Seed: 1,
	})
	const pc = 0x400100
	for i := 0; i < 600; i++ {
		lk0 := p.Predict(pc, 0)
		p.Train(lk0, isa.LDP, 10)
		lk1 := p.Predict(pc, 1)
		p.Train(lk1, isa.LDP, 20)
	}
	lk0 := p.Predict(pc, 0)
	lk1 := p.Predict(pc, 1)
	if !lk0.Confident || lk0.Value != 10 {
		t.Errorf("dest 0 = %+v, want 10", lk0)
	}
	if !lk1.Confident || lk1.Value != 20 {
		t.Errorf("dest 1 = %+v, want 20", lk1)
	}
}

func TestStaticFilterBlocksMultiDestLoads(t *testing.T) {
	p := New(DefaultConfig()) // static filter
	for _, op := range []isa.Op{isa.LDP, isa.LDM, isa.VLD} {
		if p.Eligible(op, 2) {
			t.Errorf("static filter must block %v", op)
		}
	}
	if !p.Eligible(isa.LDR, 1) {
		t.Error("static filter must not block LDR")
	}
}

func TestVanillaAllowsMultiDestLoads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Filter = FilterNone
	p := New(cfg)
	for _, op := range []isa.Op{isa.LDP, isa.LDM, isa.VLD, isa.LDR} {
		if !p.Eligible(op, 2) {
			t.Errorf("vanilla must allow %v", op)
		}
	}
}

func TestDynamicFilterLearnsToBlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Filter = FilterDynamic
	cfg.DynamicFilterMinSamples = 64
	// Fast confidence so the noisy opcode keeps making (wrong) predictions.
	cfg.ConfidenceVector = []uint32{1, 1}
	p := New(cfg)
	if p.Blocked(isa.LDP) {
		t.Fatal("dynamic filter must start open")
	}
	// LDP values persist just long enough to regain confidence, then change:
	// a large fraction of confident predictions are wrong.
	for i := 0; i < 4000 && !p.Blocked(isa.LDP); i++ {
		lk := p.Predict(0x400100, 0)
		p.Train(lk, isa.LDP, uint64(i/4)) // value changes every 4 observations
	}
	if !p.Blocked(isa.LDP) {
		t.Error("dynamic filter never blocked a low-accuracy opcode")
	}
	if p.Eligible(isa.LDP, 2) {
		t.Error("blocked opcode must be ineligible")
	}
	// A well-behaved opcode stays open.
	for i := 0; i < 500; i++ {
		lk := p.Predict(0x400200, 0)
		p.Train(lk, isa.LDR, 5)
	}
	if p.Blocked(isa.LDR) {
		t.Error("high-accuracy opcode must stay open")
	}
}

func TestLoadsOnlyMode(t *testing.T) {
	p := New(DefaultConfig()) // LoadsOnly: true
	if p.Eligible(isa.ADD, 1) {
		t.Error("loads-only mode must not predict ALU ops")
	}
	cfg := DefaultConfig()
	cfg.LoadsOnly = false
	p2 := New(cfg)
	if !p2.Eligible(isa.ADD, 1) {
		t.Error("all-instructions mode must predict ALU ops")
	}
	if p2.Eligible(isa.STR, 0) {
		t.Error("stores produce no register value")
	}
	if p2.Eligible(isa.B, 0) {
		t.Error("branches produce no value")
	}
}

func TestOrderedLoadsNeverEligible(t *testing.T) {
	for _, loadsOnly := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.LoadsOnly = loadsOnly
		cfg.Filter = FilterNone
		p := New(cfg)
		if p.Eligible(isa.LDAR, 1) {
			t.Error("load-acquire must never be predicted")
		}
	}
}

func TestMispredictionDrainsConfidence(t *testing.T) {
	p := New(DefaultConfig())
	lk := driveConstant(p, 0x400100, 42, 500)
	if !lk.Confident {
		t.Fatal("setup: not confident")
	}
	lk = p.Predict(0x400100, 0)
	p.Train(lk, isa.LDR, 99)
	lk = p.Predict(0x400100, 0)
	if lk.Confident && lk.Value == 42 {
		t.Error("stale value still confidently predicted after misprediction")
	}
}

func TestStorageBits(t *testing.T) {
	p := New(DefaultConfig())
	// Paper: 3 x 256 x 83 = 63744 bits (62.3k).
	if got := p.EntryBits(); got != 83 {
		t.Errorf("entry bits = %d, want 83", got)
	}
	if got := p.StorageBits(); got != 3*256*83 {
		t.Errorf("storage = %d, want %d", got, 3*256*83)
	}
}

func TestFilterKindString(t *testing.T) {
	if FilterNone.String() != "vanilla" || FilterDynamic.String() != "dynamic" || FilterStatic.String() != "static" {
		t.Error("FilterKind strings wrong")
	}
}

func TestHistorySnapshotRoundTrip(t *testing.T) {
	p := New(DefaultConfig())
	p.PushBranch(true)
	p.PushBranch(false)
	s := p.HistorySnapshot()
	p.PushBranch(true)
	p.RestoreHistory(s)
	if p.HistorySnapshot() != s {
		t.Error("restore failed")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{TableEntries: 100, Histories: []uint8{0}, TagBits: 8},
		{TableEntries: 256, Histories: nil, TagBits: 8},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", bad)
				}
			}()
			New(bad)
		}()
	}
}
