package vtage

import "testing"

func TestManyConstantKeysTrain(t *testing.T) {
	p := New(DefaultConfig())
	const sites = 96
	confident := 0
	for round := 0; round < 900; round++ {
		confident = 0
		for s := 0; s < sites; s++ {
			pc := 0x400000 + uint64(s)*24
			lk := p.Predict(pc, 0)
			if lk.Confident {
				confident++
			}
			p.Train(lk, 0, uint64(1000+s)) // constant per site (op LDR=0? use real)
		}
		p.PushBranch(round%32 == 0) // drifting history like eon's frame loop
	}
	if confident < sites/2 {
		t.Errorf("only %d/%d sites confident after 900 rounds", confident, sites)
	}
}
