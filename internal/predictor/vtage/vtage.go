// Package vtage implements the VTAGE context-based value predictor of
// Perais & Seznec (HPCA 2014), the state-of-the-art value-prediction
// baseline the paper compares DLVP against. Several tagged tables are
// indexed with a hash of the instruction PC and increasing slices of global
// branch history; the longest-history hitting table provides the
// prediction. Following the paper's design-space exploration, the
// zero-history base table (the last-value component) is tagged too —
// "using tags with the LVP table is crucial".
//
// The package also implements the paper's ISA-specific findings: ARM-style
// multi-destination loads (LDP/LDM/VLD) occupy one predictor entry per
// destination register (PC concatenated with the destination index, then
// hashed with history), and the resulting table pressure and flush
// amplification can be mitigated with a dynamic or static opcode filter
// (Section 5.2.2).
package vtage

import (
	"dlvp/internal/isa"
	"dlvp/internal/predictor"
)

// FilterKind selects the opcode-filter flavour evaluated in Figure 7.
type FilterKind uint8

// Filter flavours.
const (
	// FilterNone is vanilla VTAGE.
	FilterNone FilterKind = iota
	// FilterDynamic tracks per-opcode prediction accuracy and blocks
	// opcodes that fall below the threshold (pays a training cost).
	FilterDynamic
	// FilterStatic is preloaded with the problematic opcodes
	// (LDP, LDM, VLD) — no training needed, the paper's winner.
	FilterStatic
)

func (f FilterKind) String() string {
	switch f {
	case FilterDynamic:
		return "dynamic"
	case FilterStatic:
		return "static"
	default:
		return "vanilla"
	}
}

// Config parameterises VTAGE. The paper's configuration (Table 4): three
// 256-entry direct-mapped tables with global branch histories {0, 5, 13},
// 16-bit tags, 64-bit values, 3-bit confidence; total 62.3k bits.
type Config struct {
	TableEntries int
	Histories    []uint8 // history length per table, ascending; first is the base
	TagBits      uint8
	Filter       FilterKind
	// LoadsOnly restricts prediction to load instructions (the paper's
	// recommended mode at an 8KB budget).
	LoadsOnly bool
	// DynamicFilterThresholdPct is the minimum per-opcode accuracy (percent)
	// for the dynamic filter; the paper uses 95%.
	DynamicFilterThresholdPct float64
	// DynamicFilterMinSamples is how many predictions of an opcode the
	// dynamic filter observes before it may block the opcode.
	DynamicFilterMinSamples uint64
	// ConfidenceVector overrides the FPC probability vector (default: the
	// VTAGE 64-128-observation vector). Ablations and tests use faster
	// vectors to trade accuracy for coverage.
	ConfidenceVector []uint32
	Seed             uint64
}

// DefaultConfig returns the paper's best VTAGE configuration: static opcode
// filter, loads only.
func DefaultConfig() Config {
	return Config{
		TableEntries:              256,
		Histories:                 []uint8{0, 5, 13},
		TagBits:                   16,
		Filter:                    FilterStatic,
		LoadsOnly:                 true,
		DynamicFilterThresholdPct: 95,
		DynamicFilterMinSamples:   256,
		Seed:                      0x7a6e,
	}
}

type entry struct {
	tag   uint16
	value uint64
	conf  uint8
	valid bool
}

// Predictor is the VTAGE value predictor.
type Predictor struct {
	cfg    Config
	tables [][]entry
	fpc    *predictor.FPC
	rng    *predictor.Rand
	ghist  *predictor.GlobalHistory

	// Dynamic filter state, indexed by opcode.
	filtPred    [isa.NumOps]uint64
	filtWrong   [isa.NumOps]uint64
	filtBlocked [isa.NumOps]bool

	Lookups     uint64
	Hits        uint64
	Allocations uint64
	FilteredOps uint64

	// Training outcome diagnostics.
	TrainMiss     uint64 // provider < 0 at training
	TrainStale    uint64 // provider entry reallocated between predict and train
	TrainMatch    uint64
	TrainMismatch uint64
}

// New returns a VTAGE predictor.
func New(cfg Config) *Predictor {
	if cfg.TableEntries == 0 {
		cfg = DefaultConfig()
	}
	if cfg.TableEntries&(cfg.TableEntries-1) != 0 {
		panic("vtage: TableEntries must be a power of two")
	}
	if len(cfg.Histories) == 0 {
		panic("vtage: need at least one table")
	}
	if cfg.DynamicFilterThresholdPct == 0 {
		cfg.DynamicFilterThresholdPct = 95
	}
	if cfg.DynamicFilterMinSamples == 0 {
		cfg.DynamicFilterMinSamples = 256
	}
	rng := predictor.NewRand(cfg.Seed)
	fpc := predictor.VTAGEConfidenceFPC(rng)
	if len(cfg.ConfidenceVector) > 0 {
		fpc = predictor.NewFPC(rng, cfg.ConfidenceVector...)
	}
	p := &Predictor{
		cfg:   cfg,
		fpc:   fpc,
		rng:   rng,
		ghist: &predictor.GlobalHistory{},
	}
	for range cfg.Histories {
		p.tables = append(p.tables, make([]entry, cfg.TableEntries))
	}
	if cfg.Filter == FilterStatic {
		p.filtBlocked[isa.LDP] = true
		p.filtBlocked[isa.LDM] = true
		p.filtBlocked[isa.VLD] = true
	}
	return p
}

// Config returns the active configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Eligible reports whether VTAGE would try to predict this opcode with
// nDests destination registers under the configured mode and filter.
func (p *Predictor) Eligible(op isa.Op, nDests int) bool {
	if nDests == 0 {
		return false
	}
	if op.IsOrdered() {
		return false // memory-ordering instructions are never predicted
	}
	if p.cfg.LoadsOnly && !op.IsLoad() {
		return false
	}
	if op.IsStore() {
		return false
	}
	if op.IsBranch() && op != isa.BL {
		return false
	}
	if p.filtBlocked[op] {
		p.FilteredOps++
		return false
	}
	return true
}

// Lookup is the probe result for one destination register of one
// instruction, carrying the context needed for training.
type Lookup struct {
	Op        isa.Op
	Key       uint64 // PC ⊕ destination index key
	Hist      uint64 // global-history snapshot used
	Provider  int8   // hitting table (longest history), -1 if none
	Index     [8]uint32
	Tag       [8]uint16
	Confident bool
	Value     uint64
}

func (p *Predictor) indexTag(table int, key, hist uint64) (uint32, uint16) {
	hbits := p.cfg.Histories[table]
	idxBits := uint8(0)
	for n := p.cfg.TableEntries; n > 1; n >>= 1 {
		idxBits++
	}
	m := predictor.MixPC(key) + uint64(table)*0x51ed
	fi := predictor.Fold(hist, hbits, idxBits)
	idx := (uint32(m) ^ uint32(fi)) & uint32(p.cfg.TableEntries-1)
	ft := predictor.Fold(hist, hbits, p.cfg.TagBits)
	tag := (uint16(m>>11) ^ uint16(ft)) & uint16(1<<p.cfg.TagBits-1)
	return idx, tag
}

// destKey concatenates the destination-register index onto the PC — the
// paper's adjustment so each destination of LDP/LDM/VLD gets its own entry.
// The index rides above the 4-byte-alignment bits so the PC whitening hash
// (which discards the low two bits) keeps it.
func destKey(pc uint64, destIdx int) uint64 {
	return pc<<4 | uint64(destIdx&0xf)<<2
}

// Predict probes all tables for destination destIdx of the instruction at
// pc, using the current global branch history.
func (p *Predictor) Predict(pc uint64, destIdx int) Lookup {
	return p.PredictWith(pc, destIdx, p.ghist.Value())
}

// PredictWith probes with an explicit history snapshot.
func (p *Predictor) PredictWith(pc uint64, destIdx int, hist uint64) Lookup {
	p.Lookups++
	key := destKey(pc, destIdx)
	lk := Lookup{Key: key, Hist: hist, Provider: -1}
	for t := range p.tables {
		idx, tag := p.indexTag(t, key, hist)
		lk.Index[t], lk.Tag[t] = idx, tag
		e := &p.tables[t][idx]
		if e.valid && e.tag == tag {
			lk.Provider = int8(t)
			lk.Value = e.value
			lk.Confident = p.fpc.Saturated(e.conf)
		}
	}
	if lk.Provider >= 0 {
		p.Hits++
	}
	return lk
}

// Train updates the predictor for one destination after the instruction
// executed. For the dynamic filter, outcomes also feed the per-opcode
// accuracy table (only outcomes of predictions actually made, mirroring how
// hardware observes its own mispredictions).
func (p *Predictor) Train(lk Lookup, op isa.Op, actual uint64) {
	if lk.Confident {
		p.filtPred[op]++
		if lk.Value != actual {
			p.filtWrong[op]++
		}
		if p.cfg.Filter == FilterDynamic && !p.filtBlocked[op] &&
			p.filtPred[op] >= p.cfg.DynamicFilterMinSamples {
			acc := 100 * float64(p.filtPred[op]-p.filtWrong[op]) / float64(p.filtPred[op])
			if acc < p.cfg.DynamicFilterThresholdPct {
				p.filtBlocked[op] = true
			}
		}
	}

	if lk.Provider < 0 {
		// Complete miss: allocate in the base table.
		p.TrainMiss++
		p.allocate(0, lk, actual)
		return
	}
	t := int(lk.Provider)
	e := &p.tables[t][lk.Index[t]]
	if !e.valid || e.tag != lk.Tag[t] {
		// Reallocated under us between predict and train; treat as miss.
		p.TrainStale++
		p.allocate(0, lk, actual)
		return
	}
	if e.value == actual {
		p.TrainMatch++
		e.conf = p.fpc.Bump(e.conf)
		return
	}
	p.TrainMismatch++
	// Mispredicted (or not-yet-confident mismatch): replace the value only
	// when confidence has drained, then try to allocate a longer-history
	// entry so a richer context can capture the pattern.
	if e.conf == 0 {
		e.value = actual
	} else {
		e.conf = 0
	}
	if t+1 < len(p.tables) {
		p.allocate(t+1+int(p.rng.Next()%uint64(len(p.tables)-t-1)), lk, actual)
	}
}

func (p *Predictor) allocate(t int, lk Lookup, value uint64) {
	e := &p.tables[t][lk.Index[t]]
	if e.valid && e.conf > 0 && (e.tag != lk.Tag[t]) {
		// Anti-thrash: confident strangers survive, but decay.
		e.conf--
		return
	}
	if !e.valid || e.tag != lk.Tag[t] {
		p.Allocations++
		*e = entry{tag: lk.Tag[t], value: value, conf: 0, valid: true}
		return
	}
	// Same tag (our own entry, e.g. base-table refresh).
	if e.conf == 0 {
		e.value = value
	}
}

// PushBranch records a branch outcome into the global history (the front
// end calls this for every conditional branch).
func (p *Predictor) PushBranch(taken bool) { p.ghist.Push(taken) }

// HistorySnapshot returns the speculative global history for checkpointing.
func (p *Predictor) HistorySnapshot() uint64 { return p.ghist.Snapshot() }

// RestoreHistory rewinds the global history after a squash.
func (p *Predictor) RestoreHistory(s uint64) { p.ghist.Restore(s) }

// Blocked reports whether the (dynamic or static) filter currently blocks op.
func (p *Predictor) Blocked(op isa.Op) bool { return p.filtBlocked[op] }

// EntryBits returns the storage of one entry in bits (tag + value + conf).
func (p *Predictor) EntryBits() int { return int(p.cfg.TagBits) + 64 + 3 }

// StorageBits returns the total budget in bits (paper: 3 × 256 × 83 = 62.3k).
func (p *Predictor) StorageBits() int {
	return len(p.tables) * p.cfg.TableEntries * p.EntryBits()
}
