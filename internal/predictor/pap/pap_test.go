package pap

import (
	"testing"
	"testing/quick"
)

// trainUntilConfident drives one (pc,addr) association until the predictor
// reports confidence, returning how many observations it took.
func trainUntilConfident(t *testing.T, p *Predictor, pc, addr uint64) int {
	t.Helper()
	for i := 1; i <= 200; i++ {
		lk := p.Lookup(pc)
		p.Train(lk, addr, 3, 0)
		if p.Lookup(pc).Confident {
			return i
		}
	}
	t.Fatalf("never became confident for pc=%#x", pc)
	return 0
}

func TestConfidenceAfterFewObservations(t *testing.T) {
	p := New(DefaultConfig())
	n := trainUntilConfident(t, p, 0x400100, 0x10000)
	// The paper: an address needs to be observed only ~8 times (2-bit FPC,
	// {1,1/2,1/4} => expected 7 bumps after allocation). Allow slack for the
	// probabilistic counter.
	if n < 3 || n > 40 {
		t.Errorf("observations to confidence = %d, want around 8", n)
	}
	lk := p.Lookup(0x400100)
	if !lk.Hit || !lk.Confident || lk.Addr != 0x10000 {
		t.Errorf("lookup after training = %+v", lk)
	}
}

func TestNoPredictionWhileTraining(t *testing.T) {
	p := New(DefaultConfig())
	lk := p.Lookup(0x400100)
	if lk.Hit || lk.Confident {
		t.Error("empty table must not hit")
	}
	p.Train(lk, 0x10000, 3, 0)
	lk = p.Lookup(0x400100)
	if !lk.Hit {
		t.Fatal("allocated entry must hit")
	}
	if lk.Confident {
		t.Error("one observation must not be confident")
	}
}

func TestMismatchResetsConfidence(t *testing.T) {
	p := New(DefaultConfig())
	trainUntilConfident(t, p, 0x400100, 0x10000)
	lk := p.Lookup(0x400100)
	p.Train(lk, 0x20000, 3, 0) // address changed
	lk = p.Lookup(0x400100)
	if lk.Confident {
		t.Error("confidence must reset after mismatch")
	}
	if lk.Addr != 0x20000 {
		t.Errorf("entry must be reallocated with the new address, got %#x", lk.Addr)
	}
	if p.ConfResets == 0 {
		t.Error("ConfResets not counted")
	}
}

func TestPathHistoryDisambiguates(t *testing.T) {
	// The same static load reached via two different load paths should map
	// to two different APT entries, each able to hold its own address —
	// PAP's core advantage over PC-only indexing.
	cfg := DefaultConfig()
	p := New(cfg)
	const loadPC = 0x400200

	// Path A: preceded by loads at PCs with bit2 pattern 1,1,1,...
	pathA := func() {
		p.RestoreHistory(0)
		for i := 0; i < 16; i++ {
			p.PushLoad(0x404)
		}
	}
	// Path B: bit2 pattern 0,0,0,...
	pathB := func() {
		p.RestoreHistory(0)
		for i := 0; i < 16; i++ {
			p.PushLoad(0x408)
		}
	}

	for i := 0; i < 60; i++ {
		pathA()
		lk := p.Lookup(loadPC)
		p.Train(lk, 0xA000, 3, 0)
		pathB()
		lk = p.Lookup(loadPC)
		p.Train(lk, 0xB000, 3, 0)
	}
	pathA()
	lkA := p.Lookup(loadPC)
	pathB()
	lkB := p.Lookup(loadPC)
	if !lkA.Confident || lkA.Addr != 0xA000 {
		t.Errorf("path A prediction = %+v, want confident 0xA000", lkA)
	}
	if !lkB.Confident || lkB.Addr != 0xB000 {
		t.Errorf("path B prediction = %+v, want confident 0xB000", lkB)
	}
}

func TestPolicy2VictimSurvives(t *testing.T) {
	// A confident entry must survive a single colliding allocation attempt
	// (Policy-2), but repeated pressure eventually evicts it.
	cfg := DefaultConfig()
	cfg.Entries = 1 // force every key to collide
	cfg.HistBits = 1
	p := New(cfg)
	trainUntilConfident(t, p, 0x400100, 0xAAAA)

	// One miss from a different (colliding) load: must only decay.
	lk := p.Lookup(0x500000)
	if lk.Hit {
		t.Fatal("different tag should miss")
	}
	p.Train(lk, 0xBBBB, 3, 0)
	if got := p.Lookup(0x400100); !got.Hit || got.Addr != 0xAAAA {
		t.Fatalf("victim evicted by a single miss; Policy-2 must decay instead")
	}

	// Sustained pressure: decrement conf to zero then allocate.
	for i := 0; i < 10; i++ {
		lk = p.Lookup(0x500000)
		p.Train(lk, 0xBBBB, 3, 0)
	}
	if got := p.Lookup(0x500000); !got.Hit {
		t.Error("sustained pressure must eventually allocate")
	}
}

func TestPolicy1AlwaysReplaces(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 1
	cfg.HistBits = 1
	cfg.AllocPolicy1 = true
	p := New(cfg)
	trainUntilConfident(t, p, 0x400100, 0xAAAA)
	lk := p.Lookup(0x500000)
	p.Train(lk, 0xBBBB, 3, 0)
	if got := p.Lookup(0x500000); !got.Hit || got.Addr != 0xBBBB {
		t.Error("Policy-1 must replace immediately")
	}
}

func TestWayPrediction(t *testing.T) {
	p := New(DefaultConfig())
	lk := p.Lookup(0x400100)
	p.Train(lk, 0x10000, 3, 2)
	lk = p.Lookup(0x400100)
	if lk.Way != 2 {
		t.Errorf("way = %d, want 2", lk.Way)
	}
	// Way updates on a hit with matching address.
	p.Train(lk, 0x10000, 3, 3)
	if got := p.Lookup(0x400100).Way; got != 3 {
		t.Errorf("way after retrain = %d, want 3", got)
	}
	// Disabled way prediction reports -1.
	cfg := DefaultConfig()
	cfg.WayPredict = false
	p2 := New(cfg)
	lk2 := p2.Lookup(0x400100)
	p2.Train(lk2, 0x10000, 3, 2)
	if got := p2.Lookup(0x400100).Way; got != -1 {
		t.Errorf("disabled way prediction = %d, want -1", got)
	}
}

func TestSizeField(t *testing.T) {
	p := New(DefaultConfig())
	lk := p.Lookup(0x400100)
	p.Train(lk, 0x10000, 2, 0)
	if got := p.Lookup(0x400100).SizeLog2; got != 2 {
		t.Errorf("size = %d, want 2", got)
	}
}

func TestEntryAndStorageBits(t *testing.T) {
	p := New(DefaultConfig())
	// Table 1 (ARMv8): 14 tag + 49 addr + 2 conf + 2 size = 67, +2 way.
	if got := p.EntryBits(); got != 69 {
		t.Errorf("entry bits = %d, want 69 (67 + 2-bit way)", got)
	}
	if got := p.StorageBits(); got != 1024*69 {
		t.Errorf("storage bits = %d", got)
	}
	v7 := DefaultConfig()
	v7.AddrBits = 32
	v7.WayPredict = false
	if got := New(v7).EntryBits(); got != 50 {
		t.Errorf("ARMv7 entry bits = %d, want 50", got)
	}
}

func TestHistorySnapshotRoundTrip(t *testing.T) {
	p := New(DefaultConfig())
	p.PushLoad(0x404)
	p.PushLoad(0x408)
	s := p.HistorySnapshot()
	p.PushLoad(0x404)
	p.PushLoad(0x404)
	p.RestoreHistory(s)
	if p.History() != s {
		t.Error("restore must rewind history")
	}
}

func TestLookupWithReconstructsContext(t *testing.T) {
	p := New(DefaultConfig())
	p.PushLoad(0x404)
	hist := p.HistorySnapshot()
	lk1 := p.Lookup(0x400100)
	p.PushLoad(0x408) // history moves on
	lk2 := p.LookupWith(0x400100, hist)
	if lk1.Index != lk2.Index || lk1.Tag != lk2.Tag {
		t.Error("LookupWith must reproduce the original index/tag")
	}
}

func TestStaleTrainTreatedAsMiss(t *testing.T) {
	// If the entry is reallocated between prediction and training, Train
	// must not corrupt the new occupant when the victim is confident.
	cfg := DefaultConfig()
	cfg.Entries = 1
	cfg.HistBits = 1
	p := New(cfg)
	lkOld := p.Lookup(0x400100)
	p.Train(lkOld, 0xAAAA, 3, 0) // allocate A
	// Different tag allocates over it (conf 0 victim).
	lkB := p.Lookup(0x500000)
	p.Train(lkB, 0xBBBB, 3, 0)
	// Now train with the stale lookup from A.
	p.Train(lkOld, 0xAAAA, 3, 0)
	// B had conf 0, so A is allowed to reallocate — but never to corrupt
	// B's entry in place while B's tag is present and confident.
	got := p.Lookup(0x400100)
	if got.Hit && got.Addr != 0xAAAA {
		t.Errorf("stale train corrupted entry: %+v", got)
	}
}

func TestPowerOfTwoValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two entries")
		}
	}()
	cfg := DefaultConfig()
	cfg.Entries = 1000
	New(cfg)
}

// Property: Lookup never reports Confident without Hit, and index is always
// within the table.
func TestLookupInvariants(t *testing.T) {
	p := New(DefaultConfig())
	f := func(pc, addr, histSeed uint64) bool {
		p.RestoreHistory(histSeed)
		lk := p.Lookup(pc)
		if lk.Confident && !lk.Hit {
			return false
		}
		if int(lk.Index) >= p.Config().Entries {
			return false
		}
		p.Train(lk, addr, 3, 0)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLSCD(t *testing.T) {
	l := NewLSCD(4)
	if l.Contains(0x100) {
		t.Error("empty LSCD must not contain anything")
	}
	l.Insert(0x100)
	l.Insert(0x200)
	if !l.Contains(0x100) || !l.Contains(0x200) {
		t.Error("inserted PCs must be found")
	}
	// Duplicate insert must not consume capacity.
	l.Insert(0x100)
	l.Insert(0x300)
	l.Insert(0x400)
	if l.Len() != 4 {
		t.Errorf("len = %d, want 4", l.Len())
	}
	// FIFO replacement: the fifth distinct PC evicts the oldest (0x100).
	l.Insert(0x500)
	if l.Contains(0x100) {
		t.Error("oldest entry must be evicted")
	}
	if !l.Contains(0x500) || !l.Contains(0x200) {
		t.Error("newer entries must survive")
	}
	if l.Filtered == 0 || l.Inserts == 0 {
		t.Error("stats not counted")
	}
}

func TestLSCDDefaultSize(t *testing.T) {
	l := NewLSCD(0)
	for pc := uint64(1); pc <= 8; pc++ {
		l.Insert(pc * 16)
	}
	if l.Len() != 4 {
		t.Errorf("default size = %d, want 4 (the paper's LSCD)", l.Len())
	}
}
