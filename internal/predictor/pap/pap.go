// Package pap implements the paper's primary contribution: Path-based
// Address Prediction. The Address Prediction Table (APT) is a partially
// tagged, direct-mapped table indexed and tagged with an XOR of the low
// order bits of the (proxy) load PC and a folded load-path history — a
// global shift register of bit 2 of every load PC. The global context both
// distinguishes multiple loads in one basic block and keeps speculative
// history management trivial (one register, snapshot/restore).
//
// Confidence is a 2-bit forward probabilistic counter with probability
// vector {1, 1/2, 1/4}: an address needs to be observed only ~8 times to
// reach confidence, versus 64-128 value observations for VTAGE.
package pap

import (
	"dlvp/internal/predictor"
)

// Config parameterises the APT. Zero fields take the paper's defaults via
// DefaultConfig.
type Config struct {
	Entries    int   // number of APT entries (power of two); paper: 1024
	TagBits    uint8 // partial tag width; paper: 14
	HistBits   uint8 // load-path history length; paper: 16
	AddrBits   uint8 // predicted address width; 32 (ARMv7) or 49 (ARMv8)
	WayPredict bool  // include the optional cache-way field
	WayBits    uint8 // log2(cache associativity); paper baseline: 2 (4-way L1D)
	Seed       uint64
	// AllocPolicy1, when true, always reallocates on an APT miss (the
	// paper's Policy-1 ablation). The default is Policy-2: allocate only
	// when the victim's confidence is zero, else decay it.
	AllocPolicy1 bool
}

// DefaultConfig returns the paper's APT configuration (Table 1 / Table 4):
// 1k entries, 14-bit tags, 16-bit load-path history, 49-bit (ARMv8)
// addresses, way prediction for a 4-way L1D.
func DefaultConfig() Config {
	return Config{
		Entries:    1024,
		TagBits:    14,
		HistBits:   16,
		AddrBits:   49,
		WayPredict: true,
		WayBits:    2,
		Seed:       0x9a9a,
	}
}

type entry struct {
	tag      uint16
	addr     uint64
	conf     uint8
	sizeLog2 uint8
	way      int8 // -1 when unknown
	valid    bool
}

// Predictor is the PAP address predictor.
type Predictor struct {
	cfg   Config
	table []entry
	fpc   *predictor.FPC
	hist  *predictor.LoadPathHistory

	// Stats observable by experiments and the timeline sampler.
	Lookups     uint64
	Hits        uint64
	Allocations uint64
	ConfResets  uint64
	// TagAliases counts trainings that found their entry reallocated
	// between lookup and train — two static loads aliasing one APT slot.
	TagAliases uint64
	// ConfBumps counts successful FPC forward transitions;
	// ConfSaturations counts entries newly reaching full confidence (the
	// warm-up signal: a burst of saturations marks the APT going hot).
	ConfBumps       uint64
	ConfSaturations uint64
}

// New returns a PAP predictor with the given configuration.
func New(cfg Config) *Predictor {
	if cfg.Entries == 0 {
		cfg = DefaultConfig()
	}
	if cfg.Entries&(cfg.Entries-1) != 0 {
		panic("pap: Entries must be a power of two")
	}
	rng := predictor.NewRand(cfg.Seed)
	p := &Predictor{
		cfg:   cfg,
		table: make([]entry, cfg.Entries),
		fpc:   predictor.PAPConfidenceFPC(rng),
		hist:  predictor.NewLoadPathHistory(cfg.HistBits),
	}
	for i := range p.table {
		p.table[i].way = -1
	}
	return p
}

// Config returns the active configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Lookup is the result of probing the APT for one load; it carries the
// index/tag (computed from the history at prediction time) so training at
// execute reconstructs the same entry even after further speculative
// history updates.
type Lookup struct {
	Index     uint32
	Tag       uint16
	Hist      uint64 // history snapshot used for this lookup
	Hit       bool
	Confident bool   // hit and confidence saturated: a prediction was made
	Addr      uint64 // predicted address (valid when Hit)
	SizeLog2  uint8
	Way       int8 // predicted cache way, -1 if unknown or disabled
}

func (p *Predictor) indexTag(pc, hist uint64) (uint32, uint16) {
	idxBits := uint8(0)
	for n := p.cfg.Entries; n > 1; n >>= 1 {
		idxBits++
	}
	folded := predictor.Fold(hist, p.cfg.HistBits, idxBits)
	idx := (uint32(pc>>2) ^ uint32(folded)) & uint32(p.cfg.Entries-1)
	tfold := predictor.Fold(hist, p.cfg.HistBits, p.cfg.TagBits)
	tag := (uint16(pc>>2) ^ uint16(tfold) ^ uint16(pc>>12)<<3) & uint16(1<<p.cfg.TagBits-1)
	return idx, tag
}

// Lookup probes the APT with the current load-path history. The paper
// indexes with the fetch group address as a proxy for the load PC (the
// second load in a group uses FGA+4); the standalone evaluation uses the
// real load PC. Either works — the key just has to be stable per static
// load site.
func (p *Predictor) Lookup(pc uint64) Lookup {
	return p.LookupWith(pc, p.hist.Value())
}

// LookupWith probes using an explicit history snapshot (used by the timing
// model when reconstructing a prediction context at train time).
func (p *Predictor) LookupWith(pc, hist uint64) Lookup {
	p.Lookups++
	idx, tag := p.indexTag(pc, hist)
	e := &p.table[idx]
	lk := Lookup{Index: idx, Tag: tag, Hist: hist}
	if e.valid && e.tag == tag {
		p.Hits++
		lk.Hit = true
		lk.Addr = e.addr
		lk.SizeLog2 = e.sizeLog2
		lk.Confident = p.fpc.Saturated(e.conf)
		if p.cfg.WayPredict {
			lk.Way = e.way
		} else {
			lk.Way = -1
		}
	} else {
		lk.Way = -1
	}
	return lk
}

// TrainOutcome is the cause code Train returns for each update — what
// happened to the looked-up APT entry between prediction and training.
// Consumers (the per-site attribution layer, tests) branch on the code
// instead of re-deriving the outcome from the table's aggregate counters.
type TrainOutcome uint8

const (
	// TrainMissDecayed: APT miss; Policy-2 protected the confident victim
	// by decaying it instead of reallocating.
	TrainMissDecayed TrainOutcome = iota
	// TrainMissAllocated: APT miss; the slot was (re)allocated to this load.
	TrainMissAllocated
	// TrainAliasDecayed: the entry was reallocated by another static load
	// between lookup and train (a tag alias); the usurper survived decay.
	TrainAliasDecayed
	// TrainAliasAllocated: tag alias; the slot was reclaimed for this load.
	TrainAliasAllocated
	// TrainConfirmed: hit with matching address; confidence bumped (or
	// held, under the probabilistic counter).
	TrainConfirmed
	// TrainReset: hit with mismatching address — the load's access pattern
	// changed; confidence reset and the entry reallocated.
	TrainReset
)

// Alias reports whether the outcome detected a lookup-to-train tag alias.
func (o TrainOutcome) Alias() bool {
	return o == TrainAliasDecayed || o == TrainAliasAllocated
}

// String returns the outcome's wire name.
func (o TrainOutcome) String() string {
	switch o {
	case TrainMissDecayed:
		return "miss_decayed"
	case TrainMissAllocated:
		return "miss_allocated"
	case TrainAliasDecayed:
		return "alias_decayed"
	case TrainAliasAllocated:
		return "alias_allocated"
	case TrainConfirmed:
		return "confirmed"
	case TrainReset:
		return "reset"
	}
	return "unknown"
}

// Train updates the APT after the load executed, per Section 3.1.2, and
// returns the outcome code:
//
//	APT miss + Policy-2: allocate only if the victim's confidence is zero,
//	otherwise decrement it (confident entries survive eviction pressure).
//	APT hit, address match: probabilistically bump confidence.
//	APT hit, address mismatch: reset confidence and reallocate with the
//	executed load's information.
func (p *Predictor) Train(lk Lookup, actualAddr uint64, sizeLog2 uint8, way int8) TrainOutcome {
	e := &p.table[lk.Index]
	if !lk.Hit {
		if e.valid && e.conf > 0 && !p.cfg.AllocPolicy1 {
			e.conf--
			return TrainMissDecayed
		}
		p.Allocations++
		*e = entry{tag: lk.Tag, addr: actualAddr, conf: 0, sizeLog2: sizeLog2, way: way, valid: true}
		return TrainMissAllocated
	}
	if e.tag != lk.Tag {
		// The entry was reallocated between prediction and training; treat
		// as a miss under the active policy.
		p.TagAliases++
		if e.valid && e.conf > 0 && !p.cfg.AllocPolicy1 {
			e.conf--
			return TrainAliasDecayed
		}
		p.Allocations++
		*e = entry{tag: lk.Tag, addr: actualAddr, conf: 0, sizeLog2: sizeLog2, way: way, valid: true}
		return TrainAliasAllocated
	}
	if e.addr == actualAddr {
		before := e.conf
		e.conf = p.fpc.Bump(e.conf)
		// Branchless accounting: the bump outcome feeds the counters as
		// arithmetic rather than a (mispredicting) branch on the hot path.
		bumped := b2u64(e.conf > before)
		p.ConfBumps += bumped
		p.ConfSaturations += bumped & b2u64(p.fpc.Saturated(e.conf))
		e.sizeLog2 = sizeLog2
		if way >= 0 {
			e.way = way
		}
		return TrainConfirmed
	}
	p.ConfResets++
	*e = entry{tag: lk.Tag, addr: actualAddr, conf: 0, sizeLog2: sizeLog2, way: way, valid: true}
	return TrainReset
}

func b2u64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// PushLoad speculatively shifts a load's PC into the load-path history.
// The front end calls this for every fetched load.
func (p *Predictor) PushLoad(loadPC uint64) { p.hist.Push(loadPC) }

// HistorySnapshot returns the speculative history register for checkpointing.
func (p *Predictor) HistorySnapshot() uint64 { return p.hist.Snapshot() }

// RestoreHistory rewinds the history register after a squash.
func (p *Predictor) RestoreHistory(snap uint64) { p.hist.Restore(snap) }

// History exposes the current history value (tests, diagnostics).
func (p *Predictor) History() uint64 { return p.hist.Value() }

// EntryBits returns the storage cost of one APT entry in bits (Table 1):
// tag + address + 2-bit confidence + 2-bit size + optional way.
func (p *Predictor) EntryBits() int {
	bits := int(p.cfg.TagBits) + int(p.cfg.AddrBits) + 2 + 2
	if p.cfg.WayPredict {
		bits += int(p.cfg.WayBits)
	}
	return bits
}

// StorageBits returns the total APT budget in bits (the paper's
// "1k x (50 or 67)" arithmetic, plus the optional way field).
func (p *Predictor) StorageBits() int { return p.cfg.Entries * p.EntryBits() }

// LSCD is the Load-Store Conflict Detector: a tiny fully associative filter
// of load PCs that were address-predicted correctly but value-mispredicted —
// the signature of a conflict with an older in-flight store. Filtered loads
// are neither predicted nor trained, so their APT entries age out naturally.
type LSCD struct {
	pcs  []uint64
	next int
	size int

	Inserts  uint64
	Filtered uint64
}

// NewLSCD returns a filter with n entries (the paper uses 4).
func NewLSCD(n int) *LSCD {
	if n <= 0 {
		n = 4
	}
	return &LSCD{pcs: make([]uint64, 0, n), size: n}
}

// Insert records a conflicting load PC (FIFO replacement).
func (l *LSCD) Insert(pc uint64) {
	l.Inserts++
	for _, p := range l.pcs {
		if p == pc {
			return
		}
	}
	if len(l.pcs) < l.size {
		l.pcs = append(l.pcs, pc)
		return
	}
	l.pcs[l.next] = pc
	l.next = (l.next + 1) % l.size
}

// Contains reports whether pc is blacklisted; a true result counts as a
// filtered prediction opportunity.
func (l *LSCD) Contains(pc uint64) bool {
	for _, p := range l.pcs {
		if p == pc {
			l.Filtered++
			return true
		}
	}
	return false
}

// Len returns the current occupancy.
func (l *LSCD) Len() int { return len(l.pcs) }
