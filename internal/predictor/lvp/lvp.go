// Package lvp implements the classic last-value predictor of Lipasti,
// Wilkerson & Shen (1996): a PC-indexed table recording the last value each
// static instruction produced, predicting the same value will recur. It is
// the simplest context-based value predictor and the scheme most exposed to
// the paper's Challenge #1 — a store that modifies a loaded location leaves
// the table stale until the next misprediction retrains it.
package lvp

import "dlvp/internal/predictor"

// Config parameterises the last-value predictor.
type Config struct {
	Entries int
	TagBits uint8
	// ConfidenceVector is the FPC probability vector; defaults to the
	// VTAGE-style high-confidence vector.
	ConfidenceVector []uint32
	Seed             uint64
}

// DefaultConfig returns a tagged 1k-entry LVP with high-confidence FPC.
func DefaultConfig() Config {
	return Config{Entries: 1024, TagBits: 14, Seed: 0x17f}
}

type entry struct {
	tag   uint16
	value uint64
	conf  uint8
	valid bool
}

// Predictor is the last-value predictor.
type Predictor struct {
	cfg   Config
	table []entry
	fpc   *predictor.FPC
}

// New returns an LVP.
func New(cfg Config) *Predictor {
	if cfg.Entries == 0 {
		cfg = DefaultConfig()
	}
	if cfg.Entries&(cfg.Entries-1) != 0 {
		panic("lvp: Entries must be a power of two")
	}
	rng := predictor.NewRand(cfg.Seed)
	var fpc *predictor.FPC
	if len(cfg.ConfidenceVector) > 0 {
		fpc = predictor.NewFPC(rng, cfg.ConfidenceVector...)
	} else {
		fpc = predictor.VTAGEConfidenceFPC(rng)
	}
	return &Predictor{cfg: cfg, table: make([]entry, cfg.Entries), fpc: fpc}
}

// Lookup is a probe result.
type Lookup struct {
	Index     uint32
	Tag       uint16
	Hit       bool
	Confident bool
	Value     uint64
}

func (p *Predictor) indexTag(pc uint64) (uint32, uint16) {
	m := predictor.MixPC(pc)
	return uint32(m) & uint32(p.cfg.Entries-1),
		uint16(m>>20) & uint16(1<<p.cfg.TagBits-1)
}

// Predict probes the table for pc.
func (p *Predictor) Predict(pc uint64) Lookup {
	idx, tag := p.indexTag(pc)
	lk := Lookup{Index: idx, Tag: tag}
	e := &p.table[idx]
	if e.valid && e.tag == tag {
		lk.Hit = true
		lk.Value = e.value
		lk.Confident = p.fpc.Saturated(e.conf)
	}
	return lk
}

// Train updates the table with the executed value.
func (p *Predictor) Train(lk Lookup, actual uint64) {
	e := &p.table[lk.Index]
	if !e.valid || e.tag != lk.Tag {
		if e.valid && e.conf > 0 {
			e.conf--
			return
		}
		*e = entry{tag: lk.Tag, value: actual, valid: true}
		return
	}
	if e.value == actual {
		e.conf = p.fpc.Bump(e.conf)
		return
	}
	if e.conf == 0 {
		e.value = actual
	} else {
		e.conf = 0
	}
}

// StorageBits returns the total budget in bits.
func (p *Predictor) StorageBits() int {
	return p.cfg.Entries * (int(p.cfg.TagBits) + 64 + int(p.fpc.Max()))
}
