package lvp

import "testing"

func TestLearnsConstant(t *testing.T) {
	p := New(DefaultConfig())
	var lk Lookup
	for i := 0; i < 400; i++ {
		lk = p.Predict(0x400100)
		p.Train(lk, 7)
	}
	lk = p.Predict(0x400100)
	if !lk.Confident || lk.Value != 7 {
		t.Errorf("lookup = %+v, want confident 7", lk)
	}
}

func TestStaleAfterStore(t *testing.T) {
	// The paper's Challenge #1 in miniature: once the value changes (a store
	// modified the location), LVP keeps predicting the stale value until a
	// misprediction retrains it.
	p := New(DefaultConfig())
	for i := 0; i < 400; i++ {
		lk := p.Predict(0x400100)
		p.Train(lk, 7)
	}
	lk := p.Predict(0x400100)
	if !lk.Confident || lk.Value != 7 {
		t.Fatal("setup failed")
	}
	// Value changes; the very next prediction is stale and wrong.
	if lk.Value == 8 {
		t.Fatal("impossible")
	}
	p.Train(lk, 8)
	lk = p.Predict(0x400100)
	if lk.Confident && lk.Value == 7 {
		t.Error("confidence must reset after value change")
	}
}

func TestFastConfidenceVector(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ConfidenceVector = []uint32{1, 1, 1}
	p := New(cfg)
	for i := 0; i < 4; i++ {
		lk := p.Predict(0x400100)
		p.Train(lk, 7)
	}
	if !p.Predict(0x400100).Confident {
		t.Error("deterministic 3-step vector must be confident after 4 observations")
	}
}

func TestTagConflictDecaysFirst(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entries = 1
	cfg.ConfidenceVector = []uint32{1, 1}
	p := New(cfg)
	for i := 0; i < 10; i++ {
		lk := p.Predict(0x400100)
		p.Train(lk, 7)
	}
	// Colliding PC with a different tag must not immediately evict.
	lk := p.Predict(0x900900)
	if lk.Hit {
		t.Fatal("tag must mismatch")
	}
	p.Train(lk, 9)
	if got := p.Predict(0x400100); !got.Hit {
		t.Error("confident entry evicted by a single collision")
	}
}

func TestStorageBits(t *testing.T) {
	p := New(DefaultConfig())
	if p.StorageBits() != 1024*(14+64+7) {
		t.Errorf("storage = %d", p.StorageBits())
	}
}

func TestPowerOfTwoValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Entries: 3})
}
