// Package cap implements the Correlated Address Predictor of Bekerman et
// al. (ISCA 1999), the context-based address-prediction baseline the paper
// compares PAP against. CAP keeps context *per static load*: a Load Buffer
// table records each load's recent-address history, and that history
// indexes a second structure, the Link Table, holding the predicted next
// address. CAP captures both stride and non-stride patterns, but pays for
// per-load context twice: extra storage (a history field per load) and
// complicated speculative-history management (the paper's Section 2.2 —
// snapshot restoration is serial in program order; this model, like the
// paper's evaluation, trains at execute).
package cap

import "dlvp/internal/predictor"

// Config parameterises CAP. The paper's configuration (Table 4): two
// 1k-entry direct-mapped tables; load-buffer entries carry a 14-bit tag,
// 2-bit (FPC) confidence, 8-bit offset and 16-bit history; link entries a
// 14-bit tag and a 24-bit (ARMv7) or 41-bit (ARMv8) link.
type Config struct {
	LoadBufferEntries int
	LinkEntries       int
	TagBits           uint8
	HistBits          uint8
	// Confidence is the expected number of address observations required to
	// establish confidence; the paper sweeps 3..64 (CAP's original design
	// point is 3; matching PAP's accuracy requires 64).
	Confidence int
	AddrBits   uint8 // 32 (ARMv7) or 49 (ARMv8); link field is AddrBits-8
	Seed       uint64
}

// DefaultConfig returns the paper's CAP configuration with the
// best-performing confidence from their sweep (24).
func DefaultConfig() Config {
	return Config{
		LoadBufferEntries: 1024,
		LinkEntries:       1024,
		TagBits:           14,
		HistBits:          16,
		Confidence:        24,
		AddrBits:          49,
		Seed:              0xca9,
	}
}

// ConfidenceVector maps a requested confidence level onto a forward
// probabilistic counter probability vector whose expected saturation count
// approximates that level, keeping counters narrow across the whole sweep.
func ConfidenceVector(level int) []uint32 {
	switch {
	case level <= 3:
		return []uint32{1, 1, 1}
	case level <= 8:
		return []uint32{1, 2, 4}
	case level <= 16:
		return []uint32{1, 2, 4, 8}
	case level <= 24:
		return []uint32{1, 2, 4, 16}
	case level <= 32:
		return []uint32{1, 2, 4, 8, 16}
	default:
		return []uint32{1, 2, 4, 8, 16, 32}
	}
}

type lbEntry struct {
	tag   uint16
	hist  uint16
	conf  uint8
	valid bool
}

type linkEntry struct {
	tag   uint16
	addr  uint64
	valid bool
}

// Predictor is the CAP address predictor.
type Predictor struct {
	cfg  Config
	lb   []lbEntry
	link []linkEntry
	fpc  *predictor.FPC

	Lookups uint64
	LBHits  uint64
	Links   uint64
}

// New returns a CAP predictor.
func New(cfg Config) *Predictor {
	if cfg.LoadBufferEntries == 0 {
		cfg = DefaultConfig()
	}
	if cfg.LoadBufferEntries&(cfg.LoadBufferEntries-1) != 0 ||
		cfg.LinkEntries&(cfg.LinkEntries-1) != 0 {
		panic("cap: table sizes must be powers of two")
	}
	rng := predictor.NewRand(cfg.Seed)
	return &Predictor{
		cfg:  cfg,
		lb:   make([]lbEntry, cfg.LoadBufferEntries),
		link: make([]linkEntry, cfg.LinkEntries),
		fpc:  predictor.NewFPC(rng, ConfidenceVector(cfg.Confidence)...),
	}
}

// Config returns the active configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Lookup carries a CAP probe result plus the context needed to train later.
type Lookup struct {
	LBIndex   uint32
	LBTag     uint16
	LBHit     bool
	Hist      uint16 // the per-load history used to probe the link table
	LinkIndex uint32
	LinkTag   uint16
	LinkHit   bool
	Confident bool
	Addr      uint64
}

func (p *Predictor) lbIndexTag(pc uint64) (uint32, uint16) {
	m := predictor.MixPC(pc)
	idx := uint32(m) & uint32(p.cfg.LoadBufferEntries-1)
	tag := uint16(m>>16) & uint16(1<<p.cfg.TagBits-1)
	return idx, tag
}

func (p *Predictor) linkIndexTag(pc uint64, hist uint16) (uint32, uint16) {
	m := predictor.MixPC(pc) ^ uint64(hist)*0x9e37
	idx := uint32(m) & uint32(p.cfg.LinkEntries-1)
	tag := uint16(m>>13) & uint16(1<<p.cfg.TagBits-1)
	return idx, tag
}

// Lookup probes the load buffer with the load PC, then the link table with
// the recorded per-load address history. A prediction is made only when
// both probes hit and the load's confidence is saturated.
func (p *Predictor) Lookup(pc uint64) Lookup {
	p.Lookups++
	lbIdx, lbTag := p.lbIndexTag(pc)
	lk := Lookup{LBIndex: lbIdx, LBTag: lbTag}
	e := &p.lb[lbIdx]
	if !e.valid || e.tag != lbTag {
		return lk
	}
	p.LBHits++
	lk.LBHit = true
	lk.Hist = e.hist
	linkIdx, linkTag := p.linkIndexTag(pc, e.hist)
	lk.LinkIndex, lk.LinkTag = linkIdx, linkTag
	le := &p.link[linkIdx]
	if le.valid && le.tag == linkTag {
		p.Links++
		lk.LinkHit = true
		lk.Addr = le.addr
		lk.Confident = p.fpc.Saturated(e.conf)
	}
	return lk
}

// foldAddr compresses an address into the per-load history update token.
func foldAddr(addr uint64) uint16 {
	return uint16(addr>>3) ^ uint16(addr>>11) ^ uint16(addr>>19)
}

// Train updates CAP after the load executed. The link table learns the
// binding history -> actual address; the load buffer advances its per-load
// history and adjusts confidence by whether the link-table prediction from
// the *stored* context matched the executed address.
func (p *Predictor) Train(lk Lookup, pc uint64, actualAddr uint64) {
	e := &p.lb[lk.LBIndex]
	if !lk.LBHit || !e.valid || e.tag != lk.LBTag {
		// New static load (or aliased away): allocate fresh context.
		*e = lbEntry{tag: lk.LBTag, hist: foldAddr(actualAddr), conf: 0, valid: true}
		return
	}
	// Bind the observed context to the executed address.
	linkIdx, linkTag := p.linkIndexTag(pc, lk.Hist)
	le := &p.link[linkIdx]
	correct := lk.LinkHit && lk.Addr == actualAddr
	if correct {
		e.conf = p.fpc.Bump(e.conf)
	} else {
		e.conf = 0
		*le = linkEntry{tag: linkTag, addr: actualAddr, valid: true}
	}
	// Advance the per-load address history.
	e.hist = e.hist<<5 ^ foldAddr(actualAddr)
}

// LoadBufferEntryBits returns the storage of one load-buffer entry in bits
// (tag + confidence + 8-bit offset + history), per Table 4.
func (p *Predictor) LoadBufferEntryBits() int {
	return int(p.cfg.TagBits) + 2 + 8 + int(p.cfg.HistBits)
}

// LinkEntryBits returns the storage of one link entry in bits (tag + link;
// the paper's link is addr minus the 8-bit offset).
func (p *Predictor) LinkEntryBits() int {
	return int(p.cfg.TagBits) + int(p.cfg.AddrBits) - 8
}

// StorageBits returns the total budget in bits (paper: 78k ARMv7 / 95k ARMv8).
func (p *Predictor) StorageBits() int {
	return p.cfg.LoadBufferEntries*p.LoadBufferEntryBits() +
		p.cfg.LinkEntries*p.LinkEntryBits()
}
