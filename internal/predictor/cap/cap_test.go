package cap

import (
	"testing"
)

// drive runs one load's address sequence through the predictor, returning
// per-observation predictions (confident ones only).
func drive(p *Predictor, pc uint64, addrs []uint64) (predicted, correct int) {
	for _, a := range addrs {
		lk := p.Lookup(pc)
		if lk.Confident {
			predicted++
			if lk.Addr == a {
				correct++
			}
		}
		p.Train(lk, pc, a)
	}
	return
}

func TestLearnsConstantAddress(t *testing.T) {
	p := New(DefaultConfig())
	addrs := make([]uint64, 200)
	for i := range addrs {
		addrs[i] = 0x10000
	}
	predicted, correct := drive(p, 0x400100, addrs)
	if predicted == 0 {
		t.Fatal("never predicted a constant address")
	}
	if correct != predicted {
		t.Errorf("correct=%d predicted=%d for constant address", correct, predicted)
	}
}

func TestLearnsAlternatingPattern(t *testing.T) {
	// CAP's context is the address history, so an A,B,A,B pattern is
	// learnable (each history state maps to the following address).
	p := New(DefaultConfig())
	addrs := make([]uint64, 400)
	for i := range addrs {
		if i%2 == 0 {
			addrs[i] = 0xA000
		} else {
			addrs[i] = 0xB000
		}
	}
	predicted, correct := drive(p, 0x400100, addrs)
	if predicted < 100 {
		t.Fatalf("alternating pattern barely predicted: %d", predicted)
	}
	if acc := float64(correct) / float64(predicted); acc < 0.95 {
		t.Errorf("alternating accuracy = %v, want >= 0.95", acc)
	}
}

func TestLearnsStridePattern(t *testing.T) {
	// Strided addresses produce a per-load history sequence that revisits
	// the same (hist -> next) bindings each time the loop restarts, so a
	// repeating strided walk is learnable after enough iterations.
	p := New(DefaultConfig())
	var addrs []uint64
	for rep := 0; rep < 60; rep++ {
		for i := uint64(0); i < 8; i++ {
			addrs = append(addrs, 0x10000+i*8)
		}
	}
	predicted, correct := drive(p, 0x400100, addrs)
	if predicted == 0 {
		t.Fatal("strided loop never predicted")
	}
	if acc := float64(correct) / float64(predicted); acc < 0.9 {
		t.Errorf("stride accuracy = %v (predicted %d)", acc, predicted)
	}
}

func TestConfidenceSweepTradesCoverageForAccuracy(t *testing.T) {
	// Figure 4's mechanism: raising CAP's confidence requirement must not
	// increase coverage on a noisy pattern.
	noisy := make([]uint64, 0, 1200)
	seed := uint64(12345)
	for i := 0; i < 1200; i++ {
		// Mostly constant with occasional jumps.
		seed = seed*6364136223846793005 + 1
		if seed>>60 == 0 {
			noisy = append(noisy, seed%4096*8)
		} else {
			noisy = append(noisy, 0x10000)
		}
	}
	coverage := func(conf int) float64 {
		cfg := DefaultConfig()
		cfg.Confidence = conf
		p := New(cfg)
		predicted, _ := drive(p, 0x400100, noisy)
		return float64(predicted) / float64(len(noisy))
	}
	lo, hi := coverage(3), coverage(64)
	if hi > lo {
		t.Errorf("confidence 64 coverage (%v) must not exceed confidence 3 coverage (%v)", hi, lo)
	}
}

func TestConfidenceVectorMonotone(t *testing.T) {
	prev := 0.0
	for _, level := range []int{3, 8, 16, 24, 32, 64} {
		vec := ConfidenceVector(level)
		var exp float64
		for _, d := range vec {
			exp += float64(d)
		}
		if exp < prev {
			t.Errorf("expected observations must grow with level: %d -> %v", level, exp)
		}
		if exp > float64(level)+8 || exp < float64(level)/2 {
			t.Errorf("level %d: expected observations %v too far from level", level, exp)
		}
		prev = exp
	}
}

func TestDistinctLoadsDoNotInterfereViaLoadBuffer(t *testing.T) {
	p := New(DefaultConfig())
	a := make([]uint64, 200)
	b := make([]uint64, 200)
	for i := range a {
		a[i] = 0xA000
		b[i] = 0xB000
	}
	// Interleave two loads at different PCs.
	for i := 0; i < 200; i++ {
		lk := p.Lookup(0x400100)
		if lk.Confident && lk.Addr != 0xA000 {
			t.Fatalf("load A predicted %#x", lk.Addr)
		}
		p.Train(lk, 0x400100, a[i])
		lk = p.Lookup(0x400800)
		if lk.Confident && lk.Addr != 0xB000 {
			t.Fatalf("load B predicted %#x", lk.Addr)
		}
		p.Train(lk, 0x400800, b[i])
	}
}

func TestAddressChangeDrainsConfidence(t *testing.T) {
	p := New(DefaultConfig())
	addrs := make([]uint64, 300)
	for i := range addrs {
		addrs[i] = 0x10000
	}
	drive(p, 0x400100, addrs)
	// Phase change: new constant address. The first few predictions may be
	// wrong; confidence must fall back and re-train before predicting again.
	lk := p.Lookup(0x400100)
	p.Train(lk, 0x400100, 0x90000)
	lk = p.Lookup(0x400100)
	if lk.Confident && lk.Addr == 0x10000 {
		// One wrong observation resets confidence in Train; a still-confident
		// stale prediction would mean Train didn't reset.
		t.Error("confidence must reset after a mispredicted phase change")
	}
}

func TestStorageBits(t *testing.T) {
	p := New(DefaultConfig())
	// Paper: 78k bits (ARMv7, 24-bit link) / 95k bits (ARMv8, 41-bit link).
	if got := p.LoadBufferEntryBits(); got != 40 {
		t.Errorf("LB entry bits = %d, want 40 (14+2+8+16)", got)
	}
	if got := p.LinkEntryBits(); got != 55 {
		t.Errorf("link entry bits = %d, want 55 (14+41)", got)
	}
	want := 1024*40 + 1024*55
	if got := p.StorageBits(); got != want {
		t.Errorf("storage = %d, want %d", got, want)
	}
	v7 := DefaultConfig()
	v7.AddrBits = 32
	if got := New(v7).StorageBits(); got != 1024*40+1024*38 {
		t.Errorf("ARMv7 storage = %d", got)
	}
}

func TestPowerOfTwoValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.LinkEntries = 1000
	New(cfg)
}
