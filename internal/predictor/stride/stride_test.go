package stride

import "testing"

func TestLearnsStride(t *testing.T) {
	p := New(DefaultConfig())
	addr := uint64(0x10000)
	var lk Lookup
	for i := 0; i < 10; i++ {
		lk = p.Predict(0x400100)
		p.Train(lk, addr)
		addr += 64
	}
	lk = p.Predict(0x400100)
	if !lk.Confident || lk.Value != addr {
		t.Errorf("prediction = %+v, want confident %#x", lk, addr)
	}
	if lk.Stride != 64 {
		t.Errorf("stride = %d, want 64", lk.Stride)
	}
}

func TestNegativeStride(t *testing.T) {
	p := New(DefaultConfig())
	addr := uint64(0x20000)
	for i := 0; i < 10; i++ {
		lk := p.Predict(0x400100)
		p.Train(lk, addr)
		addr -= 8
	}
	lk := p.Predict(0x400100)
	if !lk.Confident || lk.Stride != -8 || lk.Value != addr {
		t.Errorf("negative stride prediction = %+v, want %#x", lk, addr)
	}
}

func TestZeroStrideIsLastValue(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		lk := p.Predict(0x400100)
		p.Train(lk, 0x1234)
	}
	lk := p.Predict(0x400100)
	if !lk.Confident || lk.Value != 0x1234 || lk.Stride != 0 {
		t.Errorf("constant prediction = %+v", lk)
	}
}

func TestStrideChangeResetsConfidence(t *testing.T) {
	p := New(DefaultConfig())
	addr := uint64(0x10000)
	for i := 0; i < 10; i++ {
		lk := p.Predict(0x400100)
		p.Train(lk, addr)
		addr += 64
	}
	if !p.Predict(0x400100).Confident {
		t.Fatal("setup failed")
	}
	lk := p.Predict(0x400100)
	p.Train(lk, addr+1000) // break the stride
	if p.Predict(0x400100).Confident {
		t.Error("confidence must reset on stride break")
	}
}

func TestIrregularNeverConfident(t *testing.T) {
	p := New(DefaultConfig())
	seed := uint64(99)
	for i := 0; i < 500; i++ {
		lk := p.Predict(0x400100)
		seed = seed*6364136223846793005 + 1442695040888963407
		p.Train(lk, seed)
		if lk.Confident {
			t.Fatal("random walk must not reach confidence")
		}
	}
}

func TestStorageBitsAndValidation(t *testing.T) {
	p := New(DefaultConfig())
	if p.StorageBits() != 1024*(12+64+16+2) {
		t.Errorf("storage = %d", p.StorageBits())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Entries: 5})
}
