// Package stride implements a computation-based stride predictor (Eickemeyer
// & Vassiliadis 1993; Gabbay 1996): per static instruction it records the
// last observed address (or value) and the delta between the last two
// observations, predicting last + stride. It serves as the related-work
// computation-based baseline for both address and value prediction, and
// powers the baseline core's L1 stride prefetcher.
package stride

import "dlvp/internal/predictor"

// Config parameterises the stride predictor.
type Config struct {
	Entries int
	TagBits uint8
	// Confidence is the number of consecutive confirmed strides required
	// before predicting (plain saturating counter; strides are cheap to
	// verify so classic designs use 2-3).
	Confidence uint8
	Seed       uint64
}

// DefaultConfig returns a 1k-entry stride predictor with confidence 3.
func DefaultConfig() Config {
	return Config{Entries: 1024, TagBits: 12, Confidence: 3, Seed: 0x57de}
}

type entry struct {
	tag    uint16
	last   uint64
	stride int64
	conf   uint8
	valid  bool
}

// Predictor is the stride predictor.
type Predictor struct {
	cfg   Config
	table []entry
}

// New returns a stride predictor.
func New(cfg Config) *Predictor {
	if cfg.Entries == 0 {
		cfg = DefaultConfig()
	}
	if cfg.Entries&(cfg.Entries-1) != 0 {
		panic("stride: Entries must be a power of two")
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = 3
	}
	return &Predictor{cfg: cfg, table: make([]entry, cfg.Entries)}
}

// Lookup is a probe result.
type Lookup struct {
	Index     uint32
	Tag       uint16
	Hit       bool
	Confident bool
	Value     uint64 // last + stride
	Stride    int64
}

func (p *Predictor) indexTag(pc uint64) (uint32, uint16) {
	m := predictor.MixPC(pc)
	return uint32(m) & uint32(p.cfg.Entries-1),
		uint16(m>>18) & uint16(1<<p.cfg.TagBits-1)
}

// Predict probes the table for pc; Value is the predicted next observation.
func (p *Predictor) Predict(pc uint64) Lookup {
	idx, tag := p.indexTag(pc)
	lk := Lookup{Index: idx, Tag: tag}
	e := &p.table[idx]
	if e.valid && e.tag == tag {
		lk.Hit = true
		lk.Stride = e.stride
		lk.Value = e.last + uint64(e.stride)
		lk.Confident = e.conf >= p.cfg.Confidence
	}
	return lk
}

// Train updates the entry with the executed observation.
func (p *Predictor) Train(lk Lookup, actual uint64) {
	e := &p.table[lk.Index]
	if !e.valid || e.tag != lk.Tag {
		*e = entry{tag: lk.Tag, last: actual, valid: true}
		return
	}
	newStride := int64(actual - e.last)
	if newStride == e.stride {
		if e.conf < p.cfg.Confidence {
			e.conf++
		}
	} else {
		e.stride = newStride
		e.conf = 0
	}
	e.last = actual
}

// StorageBits returns the total budget in bits (tag + last + stride + conf).
func (p *Predictor) StorageBits() int {
	return p.cfg.Entries * (int(p.cfg.TagBits) + 64 + 16 + 2)
}
