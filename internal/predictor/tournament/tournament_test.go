package tournament

import "testing"

func TestSingleConfidentSideWins(t *testing.T) {
	c := New(DefaultConfig())
	if got := c.Choose(0x400100, true, false); got != SideDLVP {
		t.Errorf("only DLVP ready: %v", got)
	}
	if got := c.Choose(0x400100, false, true); got != SideVTAGE {
		t.Errorf("only VTAGE ready: %v", got)
	}
	if got := c.Choose(0x400100, false, false); got != SideNone {
		t.Errorf("neither ready: %v", got)
	}
}

func TestChooserLearnsBetterSide(t *testing.T) {
	c := New(DefaultConfig())
	const pc = 0x400100
	// VTAGE is consistently right, DLVP wrong: counter must migrate.
	for i := 0; i < 10; i++ {
		c.Train(pc, false, true)
	}
	if got := c.Choose(pc, true, true); got != SideVTAGE {
		t.Errorf("after VTAGE streak: %v, want vtage", got)
	}
	// Reverse.
	for i := 0; i < 10; i++ {
		c.Train(pc, true, false)
	}
	if got := c.Choose(pc, true, true); got != SideDLVP {
		t.Errorf("after DLVP streak: %v, want dlvp", got)
	}
}

func TestAgreementDoesNotTrain(t *testing.T) {
	c := New(DefaultConfig())
	const pc = 0x400200
	before := c.Choose(pc, true, true)
	for i := 0; i < 50; i++ {
		c.Train(pc, true, true)
		c.Train(pc, false, false)
	}
	if got := c.Choose(pc, true, true); got != before {
		t.Error("agreement must not move the counter")
	}
}

func TestBreakdownCounters(t *testing.T) {
	c := New(DefaultConfig())
	c.Choose(0x1000, true, false)
	c.Choose(0x1000, false, true)
	c.Choose(0x1000, true, true)
	if c.ChoseDLVP+c.ChoseVTAGE != 3 {
		t.Errorf("breakdown counters = %d + %d, want 3 total", c.ChoseDLVP, c.ChoseVTAGE)
	}
}

func TestSideString(t *testing.T) {
	if SideDLVP.String() != "dlvp" || SideVTAGE.String() != "vtage" || SideNone.String() != "none" {
		t.Error("Side strings wrong")
	}
}

func TestStorageAndValidation(t *testing.T) {
	c := New(DefaultConfig())
	if c.StorageBits() != 2048 {
		t.Errorf("storage = %d", c.StorageBits())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Entries: 7})
}
