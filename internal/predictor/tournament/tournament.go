// Package tournament implements the chooser from the paper's Section 5.2.3
// "Combining VTAGE and DLVP": both predictors run concurrently and a
// PC-indexed table of 2-bit counters picks which one supplies the final
// prediction for each static load.
package tournament

import "dlvp/internal/predictor"

// Side identifies which component predictor won the choice.
type Side uint8

// Chooser outcomes.
const (
	SideNone  Side = iota // neither predictor was confident
	SideDLVP              // DLVP supplied the prediction
	SideVTAGE             // VTAGE supplied the prediction
)

func (s Side) String() string {
	switch s {
	case SideDLVP:
		return "dlvp"
	case SideVTAGE:
		return "vtage"
	default:
		return "none"
	}
}

// Config parameterises the chooser table.
type Config struct {
	Entries int
}

// DefaultConfig returns a 1k-entry chooser.
func DefaultConfig() Config { return Config{Entries: 1024} }

// Chooser is the PC-indexed 2-bit tournament selector. Counter semantics:
// 0-1 favour DLVP, 2-3 favour VTAGE; updates move toward whichever
// component was correct when exactly one of them was.
type Chooser struct {
	cfg     Config
	counter []uint8

	ChoseDLVP  uint64
	ChoseVTAGE uint64
}

// New returns a chooser.
func New(cfg Config) *Chooser {
	if cfg.Entries == 0 {
		cfg = DefaultConfig()
	}
	if cfg.Entries&(cfg.Entries-1) != 0 {
		panic("tournament: Entries must be a power of two")
	}
	c := &Chooser{cfg: cfg, counter: make([]uint8, cfg.Entries)}
	for i := range c.counter {
		c.counter[i] = 1 // weakly favour DLVP, which delivers more predictions
	}
	return c
}

func (c *Chooser) index(pc uint64) uint32 {
	return uint32(predictor.MixPC(pc)) & uint32(c.cfg.Entries-1)
}

// Choose picks the provider given each component's confidence for the load
// at pc. When only one component is confident it wins outright; when both
// are, the counter decides.
func (c *Chooser) Choose(pc uint64, dlvpReady, vtageReady bool) Side {
	switch {
	case !dlvpReady && !vtageReady:
		return SideNone
	case dlvpReady && !vtageReady:
		c.ChoseDLVP++
		return SideDLVP
	case !dlvpReady && vtageReady:
		c.ChoseVTAGE++
		return SideVTAGE
	}
	if c.counter[c.index(pc)] >= 2 {
		c.ChoseVTAGE++
		return SideVTAGE
	}
	c.ChoseDLVP++
	return SideDLVP
}

// Train updates the counter from the components' actual outcomes; it only
// learns when the components disagree (the standard tournament rule).
func (c *Chooser) Train(pc uint64, dlvpCorrect, vtageCorrect bool) {
	if dlvpCorrect == vtageCorrect {
		return
	}
	i := c.index(pc)
	if vtageCorrect {
		if c.counter[i] < 3 {
			c.counter[i]++
		}
	} else if c.counter[i] > 0 {
		c.counter[i]--
	}
}

// StorageBits returns the chooser budget in bits.
func (c *Chooser) StorageBits() int { return c.cfg.Entries * 2 }
