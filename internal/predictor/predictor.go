// Package predictor provides the infrastructure shared by all prediction
// schemes in this repository: forward probabilistic confidence counters
// (FPC, Riley & Zilles), deterministic pseudo-random sources, history
// registers (load-path history for PAP, global branch history for VTAGE),
// index/tag folding helpers, and the coverage/accuracy bookkeeping the
// paper reports.
package predictor

import "fmt"

// Rand is a small deterministic PRNG (splitmix64). Every probabilistic
// structure owns one so simulations are reproducible run to run.
type Rand struct{ state uint64 }

// NewRand returns a PRNG seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed ^ 0x9e3779b97f4a7c15} }

// Next returns the next 64-bit pseudo-random value.
func (r *Rand) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Chance returns true with probability 1/denom (denom must be a power of
// two; denom==1 always returns true).
func (r *Rand) Chance(denom uint32) bool {
	if denom <= 1 {
		return true
	}
	return r.Next()&uint64(denom-1) == 0
}

// FPC is a forward probabilistic counter: a saturating counter whose forward
// (increment) transitions fire only with a per-state probability, letting a
// narrow counter emulate a much wider one. The paper's PAP uses a 2-bit FPC
// with probability vector {1, 1/2, 1/4}; VTAGE-style predictors use a 3-bit
// FPC with a vector tuned so confidence arrives after 64-128 observations.
type FPC struct {
	// ProbDenoms[k] is the denominator of the probability of the k -> k+1
	// transition (1 means always). len(ProbDenoms) defines saturation.
	ProbDenoms []uint32
	rng        *Rand
}

// NewFPC returns an FPC descriptor with the given probability vector.
func NewFPC(rng *Rand, probDenoms ...uint32) *FPC {
	if len(probDenoms) == 0 {
		panic("predictor: FPC needs at least one transition")
	}
	for _, d := range probDenoms {
		if d == 0 || d&(d-1) != 0 {
			panic(fmt.Sprintf("predictor: FPC probability denominator %d is not a power of two", d))
		}
	}
	return &FPC{ProbDenoms: probDenoms, rng: rng}
}

// Max returns the saturation value of counters governed by this FPC.
func (f *FPC) Max() uint8 { return uint8(len(f.ProbDenoms)) }

// Bump probabilistically advances counter c and returns the new value.
// The advance is computed as a data dependency on the rng draw rather
// than a branch; the rng is consumed exactly when Chance would consume
// it (denominator > 1), so counter sequences are unchanged.
func (f *FPC) Bump(c uint8) uint8 {
	max := uint8(len(f.ProbDenoms))
	if c >= max {
		return max
	}
	d := f.ProbDenoms[c]
	if d <= 1 {
		return c + 1
	}
	hit := f.rng.Next()&uint64(d-1) == 0
	return c + b2u8(hit)
}

func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// Saturated reports whether c is at the confident (saturated) state.
func (f *FPC) Saturated(c uint8) bool { return c >= f.Max() }

// ExpectedObservations returns the expected number of successful
// observations needed to saturate from zero — the paper's "an address needs
// to be observed only 8 times" arithmetic.
func (f *FPC) ExpectedObservations() float64 {
	var e float64
	for _, d := range f.ProbDenoms {
		e += float64(d)
	}
	return e
}

// PAPConfidenceFPC returns the paper's PAP confidence descriptor:
// a 2-bit FPC with probability vector {1, 1/2, 1/4} (expected ~7
// observations to saturate, i.e. confidence established around the 8th
// occurrence).
func PAPConfidenceFPC(rng *Rand) *FPC { return NewFPC(rng, 1, 2, 4) }

// VTAGEConfidenceFPC returns a 3-bit FPC whose expected saturation count
// falls in the 64-128 observation band the paper quotes for VTAGE.
func VTAGEConfidenceFPC(rng *Rand) *FPC { return NewFPC(rng, 1, 8, 8, 8, 16, 16, 32) }

// LoadPathHistory is the paper's novel context: a shift register receiving
// bit 2 (the least significant non-zero PC bit for 4-byte instructions) of
// every load's PC. It is speculatively updated at fetch; recovery restores
// a snapshot (a single register, which is what makes PAP's speculative
// state cheap to manage compared to per-static-load histories like CAP's).
type LoadPathHistory struct {
	Bits uint8 // history length in bits (the paper uses 16)
	h    uint64
}

// NewLoadPathHistory returns an empty history of the given length.
func NewLoadPathHistory(bits uint8) *LoadPathHistory {
	if bits == 0 || bits > 64 {
		panic("predictor: load-path history length out of range")
	}
	return &LoadPathHistory{Bits: bits}
}

// Push shifts in bit 2 of a load PC.
func (l *LoadPathHistory) Push(loadPC uint64) {
	l.h = ((l.h << 1) | ((loadPC >> 2) & 1)) & l.mask()
}

// Value returns the current history bits.
func (l *LoadPathHistory) Value() uint64 { return l.h }

// Snapshot returns the state for later restoration.
func (l *LoadPathHistory) Snapshot() uint64 { return l.h }

// Restore resets the history to a snapshot (misprediction recovery).
func (l *LoadPathHistory) Restore(s uint64) { l.h = s & l.mask() }

func (l *LoadPathHistory) mask() uint64 {
	if l.Bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << l.Bits) - 1
}

// GlobalHistory is a conventional global branch history register (outcome
// bit per conditional branch, plus a path bit for taken branches), used by
// VTAGE and the TAGE family.
type GlobalHistory struct {
	h uint64
}

// Push records a branch outcome.
func (g *GlobalHistory) Push(taken bool) {
	b := uint64(0)
	if taken {
		b = 1
	}
	g.h = g.h<<1 | b
}

// Value returns the raw history register.
func (g *GlobalHistory) Value() uint64 { return g.h }

// Snapshot returns the state for later restoration.
func (g *GlobalHistory) Snapshot() uint64 { return g.h }

// Restore resets to a snapshot.
func (g *GlobalHistory) Restore(s uint64) { g.h = s }

// Fold compresses the low histBits of h into outBits by XOR-folding,
// the standard TAGE-style index compression. The doubling loop computes
// XOR of h>>(k*outBits) for every k in logarithmic steps: after the i-th
// step the value is the XOR over all k < 2^i, and the loop stops once the
// span covers histBits (further terms shift in only zeros).
func Fold(h uint64, histBits, outBits uint8) uint64 {
	if histBits == 0 || outBits == 0 {
		return 0
	}
	if histBits < 64 {
		h &= (uint64(1) << histBits) - 1
	}
	for s := uint(outBits); s < uint(histBits); s <<= 1 {
		h ^= h >> s
	}
	return h & ((uint64(1) << outBits) - 1)
}

// MixPC whitens a PC for index hashing (instructions are 4-byte aligned, so
// the low two bits carry no information). The murmur3-style double
// multiply-shift finalizer matters: a single multiply leaves the low bits
// of strided PC sequences on a lattice, collapsing direct-mapped table
// indices (a 96-site kernel once landed on 36 distinct slots).
func MixPC(pc uint64) uint64 {
	x := pc >> 2
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Stats tracks the coverage/accuracy accounting the paper uses:
// coverage = predicted / eligible dynamic loads,
// accuracy = correct / predicted.
type Stats struct {
	Eligible  uint64 // dynamic instructions the predictor could target
	Predicted uint64 // confident predictions actually made
	Correct   uint64 // predictions that matched the architectural outcome
}

// Record tallies one instruction outcome.
func (s *Stats) Record(predicted, correct bool) {
	s.Eligible++
	if predicted {
		s.Predicted++
		if correct {
			s.Correct++
		}
	}
}

// Coverage returns predicted/eligible in percent.
func (s Stats) Coverage() float64 {
	if s.Eligible == 0 {
		return 0
	}
	return 100 * float64(s.Predicted) / float64(s.Eligible)
}

// Accuracy returns correct/predicted in percent.
func (s Stats) Accuracy() float64 {
	if s.Predicted == 0 {
		return 0
	}
	return 100 * float64(s.Correct) / float64(s.Predicted)
}

// Mispredicted returns the number of wrong predictions.
func (s Stats) Mispredicted() uint64 { return s.Predicted - s.Correct }

// Add accumulates other into s (for averaging across workloads).
func (s *Stats) Add(other Stats) {
	s.Eligible += other.Eligible
	s.Predicted += other.Predicted
	s.Correct += other.Correct
}
