package dvtage

import (
	"testing"

	"dlvp/internal/isa"
)

func drive(p *Predictor, pc uint64, vals []uint64) (predicted, correct int) {
	for _, v := range vals {
		lk := p.PredictWith(pc, 0, 0)
		if lk.Confident {
			predicted++
			if lk.Value == v {
				correct++
			}
		}
		p.Train(lk, v)
	}
	return
}

func TestLearnsConstant(t *testing.T) {
	p := New(DefaultConfig())
	vals := make([]uint64, 500)
	for i := range vals {
		vals[i] = 42
	}
	pred, corr := drive(p, 0x400100, vals)
	if pred == 0 {
		t.Fatal("constant never predicted")
	}
	if corr != pred {
		t.Errorf("constant accuracy %d/%d", corr, pred)
	}
}

func TestLearnsStridedValues(t *testing.T) {
	// The differential design's raison d'être: v(i) = v(i-1) + k is
	// predictable, which a plain last-value scheme can never sustain.
	p := New(DefaultConfig())
	vals := make([]uint64, 600)
	for i := range vals {
		vals[i] = 1000 + uint64(i)*24
	}
	pred, corr := drive(p, 0x400100, vals)
	if pred < 100 {
		t.Fatalf("strided values barely predicted: %d", pred)
	}
	if acc := float64(corr) / float64(pred); acc < 0.95 {
		t.Errorf("strided accuracy = %.3f", acc)
	}
}

func TestDeltaRequiresLVTHit(t *testing.T) {
	p := New(DefaultConfig())
	lk := p.PredictWith(0x400100, 0, 0)
	if lk.Confident {
		t.Error("cold predictor must not be confident")
	}
	if lk.LVTHit {
		t.Error("cold LVT must miss")
	}
}

func TestHugeDeltasDoNotAllocate(t *testing.T) {
	// Random 64-bit jumps exceed the 16-bit delta field; the predictor must
	// stay quiet rather than thrash.
	p := New(DefaultConfig())
	seed := uint64(9)
	pred := 0
	for i := 0; i < 800; i++ {
		seed = seed*6364136223846793005 + 1
		lk := p.PredictWith(0x400100, 0, 0)
		if lk.Confident {
			pred++
		}
		p.Train(lk, seed)
	}
	if pred > 8 {
		t.Errorf("random walk predicted %d times", pred)
	}
}

func TestEligibility(t *testing.T) {
	p := New(DefaultConfig())
	if !p.Eligible(isa.LDR, 1) || p.Eligible(isa.STR, 0) || p.Eligible(isa.ADD, 1) {
		t.Error("loads-only eligibility wrong")
	}
	cfg := DefaultConfig()
	cfg.LoadsOnly = false
	p2 := New(cfg)
	if !p2.Eligible(isa.ADD, 1) {
		t.Error("all-instructions mode must accept ALU ops")
	}
	if p2.Eligible(isa.LDAR, 1) {
		t.Error("ordered loads never eligible")
	}
}

func TestPerDestinationSeparation(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 400; i++ {
		lk0 := p.PredictWith(0x400100, 0, 0)
		p.Train(lk0, 10)
		lk1 := p.PredictWith(0x400100, 1, 0)
		p.Train(lk1, 999)
	}
	lk0 := p.PredictWith(0x400100, 0, 0)
	lk1 := p.PredictWith(0x400100, 1, 0)
	if lk0.Confident && lk0.Value != 10 {
		t.Errorf("dest 0 = %d", lk0.Value)
	}
	if lk1.Confident && lk1.Value != 999 {
		t.Errorf("dest 1 = %d", lk1.Value)
	}
	if !lk0.Confident || !lk1.Confident {
		t.Error("both destinations should train")
	}
}

func TestStorageBudget(t *testing.T) {
	p := New(DefaultConfig())
	// Should be in the same ballpark as the paper's 8KB-class predictors.
	kb := p.StorageBits() / 8 / 1024
	if kb < 4 || kb > 16 {
		t.Errorf("budget = %dKB, want 8KB class", kb)
	}
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.TableEntries = 100
	New(cfg)
}
