// Package dvtage implements D-VTAGE (Perais & Seznec, HPCA 2015 "BeBoP"),
// the differential variant of VTAGE the paper discusses as related work:
// a last-value table (LVT) sits in front of the tagged history tables, and
// the tables store *strides* (deltas) rather than full values; the
// prediction is lastValue + delta. This captures strided value sequences a
// plain VTAGE cannot, at the cost of an addition on the prediction critical
// path and a speculative window for in-flight last values (the paper's
// stated complexity objections). This implementation trains at execute and
// omits the speculative window, the same simplification the rest of the
// repository applies.
package dvtage

import (
	"dlvp/internal/isa"
	"dlvp/internal/predictor"
)

// Config parameterises D-VTAGE.
type Config struct {
	LVTEntries   int
	TableEntries int
	Histories    []uint8
	TagBits      uint8
	DeltaBits    uint8 // stride field width; out-of-range strides don't allocate
	LoadsOnly    bool
	Seed         uint64
}

// DefaultConfig returns a budget-comparable configuration: a 512-entry LVT
// plus three 256-entry delta tables (histories {0,5,13} like the paper's
// VTAGE).
func DefaultConfig() Config {
	return Config{
		LVTEntries:   512,
		TableEntries: 256,
		Histories:    []uint8{0, 5, 13},
		TagBits:      12,
		DeltaBits:    16,
		LoadsOnly:    true,
		Seed:         0xd7a,
	}
}

type lvtEntry struct {
	tag   uint16
	last  uint64
	valid bool
}

type deltaEntry struct {
	tag   uint16
	delta int64
	conf  uint8
	valid bool
}

// Predictor is the D-VTAGE value predictor.
type Predictor struct {
	cfg    Config
	lvt    []lvtEntry
	tables [][]deltaEntry
	fpc    *predictor.FPC
	rng    *predictor.Rand

	Lookups uint64
	Hits    uint64
}

// New returns a D-VTAGE predictor.
func New(cfg Config) *Predictor {
	if cfg.LVTEntries == 0 {
		cfg = DefaultConfig()
	}
	if cfg.LVTEntries&(cfg.LVTEntries-1) != 0 || cfg.TableEntries&(cfg.TableEntries-1) != 0 {
		panic("dvtage: table sizes must be powers of two")
	}
	rng := predictor.NewRand(cfg.Seed)
	p := &Predictor{
		cfg: cfg,
		lvt: make([]lvtEntry, cfg.LVTEntries),
		fpc: predictor.VTAGEConfidenceFPC(rng),
		rng: rng,
	}
	for range cfg.Histories {
		p.tables = append(p.tables, make([]deltaEntry, cfg.TableEntries))
	}
	return p
}

// Lookup carries a probe result and the training context.
type Lookup struct {
	Key       uint64
	Hist      uint64
	LVTIndex  uint32
	LVTTag    uint16
	LVTHit    bool
	Last      uint64
	Provider  int8
	Index     [8]uint32
	Tag       [8]uint16
	Delta     int64
	Confident bool
	Value     uint64 // Last + Delta
}

func (p *Predictor) lvtIndexTag(key uint64) (uint32, uint16) {
	m := predictor.MixPC(key)
	return uint32(m) & uint32(p.cfg.LVTEntries-1),
		uint16(m>>17) & uint16(1<<p.cfg.TagBits-1)
}

func (p *Predictor) indexTag(table int, key, hist uint64) (uint32, uint16) {
	hb := p.cfg.Histories[table]
	idxBits := uint8(0)
	for n := p.cfg.TableEntries; n > 1; n >>= 1 {
		idxBits++
	}
	m := predictor.MixPC(key) + uint64(table)*0xd1ed
	idx := (uint32(m) ^ uint32(predictor.Fold(hist, hb, idxBits))) & uint32(p.cfg.TableEntries-1)
	tag := (uint16(m>>12) ^ uint16(predictor.Fold(hist, hb, p.cfg.TagBits))) &
		uint16(1<<p.cfg.TagBits-1)
	return idx, tag
}

// PredictWith probes D-VTAGE for destination destIdx of the instruction at
// pc under branch history hist. A confident prediction requires both an LVT
// hit (the base value) and a confident delta provider.
func (p *Predictor) PredictWith(pc uint64, destIdx int, hist uint64) Lookup {
	p.Lookups++
	key := pc<<4 | uint64(destIdx&0xf)<<2
	lk := Lookup{Key: key, Hist: hist, Provider: -1}
	lk.LVTIndex, lk.LVTTag = p.lvtIndexTag(key)
	e := &p.lvt[lk.LVTIndex]
	if e.valid && e.tag == lk.LVTTag {
		lk.LVTHit = true
		lk.Last = e.last
	}
	for t := range p.tables {
		idx, tag := p.indexTag(t, key, hist)
		lk.Index[t], lk.Tag[t] = idx, tag
		d := &p.tables[t][idx]
		if d.valid && d.tag == tag {
			lk.Provider = int8(t)
			lk.Delta = d.delta
			lk.Confident = p.fpc.Saturated(d.conf) && lk.LVTHit
		}
	}
	if lk.Provider >= 0 && lk.LVTHit {
		p.Hits++
		lk.Value = lk.Last + uint64(lk.Delta)
	}
	return lk
}

// Eligible mirrors the VTAGE targeting rules.
func (p *Predictor) Eligible(op isa.Op, nDests int) bool {
	if nDests == 0 || op.IsOrdered() || op.IsStore() {
		return false
	}
	if p.cfg.LoadsOnly && !op.IsLoad() {
		return false
	}
	if op.IsBranch() && op != isa.BL {
		return false
	}
	return true
}

// Train updates the LVT and the delta tables after execution.
func (p *Predictor) Train(lk Lookup, actual uint64) {
	// The observed delta only exists relative to a known last value.
	if lk.LVTHit {
		observed := int64(actual - lk.Last)
		fits := observed >= -(1<<(p.cfg.DeltaBits-1)) && observed < 1<<(p.cfg.DeltaBits-1)
		if lk.Provider >= 0 {
			t := int(lk.Provider)
			d := &p.tables[t][lk.Index[t]]
			if d.valid && d.tag == lk.Tag[t] {
				if d.delta == observed {
					d.conf = p.fpc.Bump(d.conf)
				} else {
					if d.conf == 0 && fits {
						d.delta = observed
					} else {
						d.conf = 0
					}
					if t+1 < len(p.tables) && fits {
						p.allocate(t+1+int(p.rng.Next()%uint64(len(p.tables)-t-1)), lk, observed)
					}
				}
			}
		} else if fits {
			p.allocate(0, lk, observed)
		}
	}
	// LVT always tracks the most recent value.
	e := &p.lvt[lk.LVTIndex]
	if !e.valid || e.tag != lk.LVTTag {
		*e = lvtEntry{tag: lk.LVTTag, last: actual, valid: true}
		return
	}
	e.last = actual
}

func (p *Predictor) allocate(t int, lk Lookup, delta int64) {
	d := &p.tables[t][lk.Index[t]]
	if d.valid && d.tag != lk.Tag[t] && d.conf > 0 {
		d.conf--
		return
	}
	*d = deltaEntry{tag: lk.Tag[t], delta: delta, conf: 0, valid: true}
}

// StorageBits returns the total budget in bits: LVT (tag + 64-bit value)
// plus delta tables (tag + delta + 3-bit confidence).
func (p *Predictor) StorageBits() int {
	lvt := p.cfg.LVTEntries * (int(p.cfg.TagBits) + 64)
	tab := len(p.tables) * p.cfg.TableEntries *
		(int(p.cfg.TagBits) + int(p.cfg.DeltaBits) + 3)
	return lvt + tab
}
