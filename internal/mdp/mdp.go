// Package mdp implements the baseline memory dependence predictor: the
// Alpha 21264-style store-wait table (Kessler 1999; Table 4's "MDP similar
// to Alpha 21264"). A load that once violated memory ordering — executed
// before an older store to the same address — sets a wait bit indexed by
// its PC; future instances of that load are held until all older stores
// have resolved their addresses. The table is periodically cleared so
// stale wait bits do not throttle loads forever.
//
// The paper's DLVP cannot reuse this structure for probe filtering because
// it is coupled to the back end (Section 2.3); DLVP carries its own tiny
// LSCD filter instead (package pap).
package mdp

// Config describes the store-wait table.
type Config struct {
	Entries     int
	ClearPeriod uint64 // loads observed between full clears
}

// DefaultConfig returns a 2k-entry table cleared every 64k loads.
func DefaultConfig() Config {
	return Config{Entries: 2048, ClearPeriod: 64 * 1024}
}

// Predictor is the store-wait-bit memory dependence predictor.
type Predictor struct {
	cfg  Config
	wait []bool
	seen uint64

	Violations uint64 // ordering violations reported
	Waits      uint64 // loads held back
}

// New returns an MDP.
func New(cfg Config) *Predictor {
	if cfg.Entries == 0 {
		cfg = DefaultConfig()
	}
	if cfg.Entries&(cfg.Entries-1) != 0 {
		panic("mdp: Entries must be a power of two")
	}
	return &Predictor{cfg: cfg, wait: make([]bool, cfg.Entries)}
}

func (p *Predictor) index(pc uint64) uint32 {
	return uint32(pc>>2) & uint32(p.cfg.Entries-1)
}

// ShouldWait reports whether the load at pc must wait for all older stores
// to resolve before issuing. Each call counts one dynamic load toward the
// periodic clear.
func (p *Predictor) ShouldWait(pc uint64) bool {
	p.seen++
	if p.cfg.ClearPeriod > 0 && p.seen%p.cfg.ClearPeriod == 0 {
		for i := range p.wait {
			p.wait[i] = false
		}
	}
	if p.wait[p.index(pc)] {
		p.Waits++
		return true
	}
	return false
}

// RecordViolation marks the load at pc after it caused a memory-ordering
// violation (it speculatively executed before a conflicting older store).
func (p *Predictor) RecordViolation(pc uint64) {
	p.Violations++
	p.wait[p.index(pc)] = true
}
