package mdp

import "testing"

func TestNoWaitUntilViolation(t *testing.T) {
	p := New(DefaultConfig())
	if p.ShouldWait(0x400100) {
		t.Error("fresh load must not wait")
	}
	p.RecordViolation(0x400100)
	if !p.ShouldWait(0x400100) {
		t.Error("violating load must wait afterwards")
	}
	if p.ShouldWait(0x400104) {
		t.Error("other loads unaffected")
	}
	if p.Violations != 1 || p.Waits != 1 {
		t.Errorf("counters = %d/%d", p.Violations, p.Waits)
	}
}

func TestPeriodicClear(t *testing.T) {
	p := New(Config{Entries: 64, ClearPeriod: 100})
	p.RecordViolation(0x400100)
	for i := 0; i < 100; i++ {
		p.ShouldWait(0x500000)
	}
	if p.ShouldWait(0x400100) {
		t.Error("wait bit must clear after the period")
	}
}

func TestAliasing(t *testing.T) {
	p := New(Config{Entries: 4, ClearPeriod: 0})
	p.RecordViolation(0x400100)
	// A PC 4 entries away aliases to the same slot.
	if !p.ShouldWait(0x400100 + 4*4) {
		t.Error("aliased PC should share the wait bit (destructive aliasing is part of the design)")
	}
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Entries: 3})
}
