// Package config assembles the simulated core's configuration. The default
// corresponds to the paper's Table 4 baseline: a Skylake-class out-of-order
// core (4-wide in-order front end, 8-wide OoO engine with 2 load-store
// lanes, 224/97/72/56 ROB/IQ/LDQ/STQ, 348 physical registers, 13-cycle
// fetch-to-execute), TAGE/ITTAGE branch prediction, a 21264-style MDP, and
// the three-level cache hierarchy with stride prefetchers.
package config

import (
	"dlvp/internal/branch"
	"dlvp/internal/mdp"
	"dlvp/internal/mem"
	"dlvp/internal/predictor/cap"
	"dlvp/internal/predictor/dvtage"
	"dlvp/internal/predictor/pap"
	"dlvp/internal/predictor/tournament"
	"dlvp/internal/predictor/vtage"
)

// VPScheme selects the value-prediction scheme attached to the core.
type VPScheme uint8

// Value-prediction schemes evaluated in the paper.
const (
	// VPNone is the baseline core without value prediction.
	VPNone VPScheme = iota
	// VPDLVP is the paper's contribution: PAP address prediction + cache
	// probing (Decoupled Load Value Prediction).
	VPDLVP
	// VPCAP is DLVP with the CAP address predictor in place of PAP.
	VPCAP
	// VPVTAGE is conventional value prediction with the VTAGE predictor.
	VPVTAGE
	// VPTournament combines DLVP and VTAGE under a PC-indexed chooser.
	VPTournament
	// VPDVTAGE is conventional value prediction with the differential
	// D-VTAGE predictor (related work, Section 2.1).
	VPDVTAGE
)

func (s VPScheme) String() string {
	switch s {
	case VPDLVP:
		return "dlvp"
	case VPCAP:
		return "cap"
	case VPVTAGE:
		return "vtage"
	case VPTournament:
		return "tournament"
	case VPDVTAGE:
		return "dvtage"
	default:
		return "baseline"
	}
}

// VPConfig bundles the scheme choice with per-predictor parameters and the
// DLVP-specific knobs.
type VPConfig struct {
	Scheme VPScheme

	PAP     pap.Config
	CAP     cap.Config
	VTAGE   vtage.Config
	DVTAGE  dvtage.Config
	Chooser tournament.Config

	// LSCDEntries sizes the Load-Store Conflict Detector (0 disables it;
	// the paper uses 4).
	LSCDEntries int
	// ProbePrefetch issues a prefetch when a DLVP probe misses the L1D
	// (the paper's Figure 5 ablation).
	ProbePrefetch bool
	// OracleReplay models the paper's Figure 10 oracle: a would-be value
	// misprediction is converted into a no-prediction instead of a flush.
	OracleReplay bool
	// SelectiveReplay implements the recovery mechanism the paper leaves as
	// future work (Section 5.2.4): on a value misprediction, only the
	// transitive dependents of the mispredicted load re-execute; everything
	// else stays put. Consumers of predicted values cannot leave the
	// instruction queue early under this scheme — re-issue is modelled by
	// returning squashed-by-dependence instructions to the scheduler.
	// Mutually exclusive with OracleReplay (oracle wins if both set).
	SelectiveReplay bool
	// MaxPredictionsPerCycle bounds value predictions made per cycle
	// (the paper assumes up to two).
	MaxPredictionsPerCycle int
}

// Core is the full simulated-core configuration.
type Core struct {
	// Front end.
	FetchWidth   int // instructions fetched per cycle (Table 4: 4)
	FrontLatency int // cycles from fetch to rename-ready (fetch 5 + decode 3)

	// Out-of-order engine.
	IssueWidth  int // Table 4: 8 execution lanes
	LSLanes     int // lanes supporting load-store (Table 4: 2)
	ROBSize     int
	IQSize      int
	LDQSize     int
	STQSize     int
	PhysRegs    int
	CommitWidth int

	// Value-prediction engine plumbing.
	PVTEntries  int // predicted values table (32)
	PAQEntries  int // predicted address queue (32)
	PAQLifetime int // cycles before an unprobed PAQ entry is dropped (N=4)

	// Misprediction penalties.
	ValueCheckPenalty int // extra cycles to confirm a predicted value (1)

	Mem    mem.HierarchyConfig
	TAGE   branch.TAGEConfig
	ITTAGE branch.ITTAGEConfig
	MDP    mdp.Config

	VP VPConfig
}

// Baseline returns the Table 4 core with no value prediction.
func Baseline() Core {
	return Core{
		FetchWidth:   4,
		FrontLatency: 8, // fetch (5) + decode (3); rename is the next stage
		IssueWidth:   8,
		LSLanes:      2,
		ROBSize:      224,
		IQSize:       97,
		LDQSize:      72,
		STQSize:      56,
		PhysRegs:     348,
		CommitWidth:  8,

		PVTEntries: 32,
		PAQEntries: 32,
		// The paper's N=4 matches their 5+3-stage front end exactly: N is
		// "the guaranteed minimum number of cycles available for retrieving
		// the values before the load reaches Rename". For this model's
		// front end the PAQ entry arrives at fetch+2 and the load renames
		// no earlier than fetch+8, so the equivalent guaranteed window is 6.
		PAQLifetime: 6,

		ValueCheckPenalty: 1,

		Mem:    mem.DefaultHierarchyConfig(),
		TAGE:   branch.DefaultTAGEConfig(),
		ITTAGE: branch.DefaultITTAGEConfig(),
		MDP:    mdp.DefaultConfig(),

		VP: VPConfig{
			Scheme:                 VPNone,
			PAP:                    pap.DefaultConfig(),
			CAP:                    cap.DefaultConfig(),
			VTAGE:                  vtage.DefaultConfig(),
			DVTAGE:                 dvtage.DefaultConfig(),
			Chooser:                tournament.DefaultConfig(),
			LSCDEntries:            4,
			ProbePrefetch:          true,
			MaxPredictionsPerCycle: 2,
		},
	}
}

// WithScheme returns a copy of the core configured for the given
// value-prediction scheme.
func (c Core) WithScheme(s VPScheme) Core {
	c.VP.Scheme = s
	return c
}

// DLVP returns the paper's DLVP configuration on the Table 4 baseline.
func DLVP() Core { return Baseline().WithScheme(VPDLVP) }

// VTAGE returns the paper's best VTAGE configuration (static filter, loads
// only) on the Table 4 baseline.
func VTAGE() Core { return Baseline().WithScheme(VPVTAGE) }

// CAPDLVP returns DLVP-with-CAP (confidence 24) on the Table 4 baseline.
func CAPDLVP() Core { return Baseline().WithScheme(VPCAP) }

// Tournament returns the combined DLVP+VTAGE configuration.
func Tournament() Core { return Baseline().WithScheme(VPTournament) }

// DVTAGE returns conventional value prediction with the differential
// D-VTAGE predictor (related-work comparison).
func DVTAGE() Core { return Baseline().WithScheme(VPDVTAGE) }

// SchemeNames lists the named scheme presets accepted by ByScheme, in
// presentation order.
func SchemeNames() []string {
	return []string{"baseline", "dlvp", "cap", "vtage", "tournament", "dvtage"}
}

// ByScheme resolves a scheme name (as printed by VPScheme.String) to its
// Table 4 preset. The CLIs and the HTTP daemon share this mapping.
func ByScheme(name string) (Core, bool) {
	switch name {
	case "baseline":
		return Baseline(), true
	case "dlvp":
		return DLVP(), true
	case "cap":
		return CAPDLVP(), true
	case "vtage":
		return VTAGE(), true
	case "tournament":
		return Tournament(), true
	case "dvtage":
		return DVTAGE(), true
	default:
		return Core{}, false
	}
}
