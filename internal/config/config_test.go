package config

import "testing"

func TestBaselineMatchesTable4(t *testing.T) {
	c := Baseline()
	if c.FetchWidth != 4 || c.IssueWidth != 8 || c.LSLanes != 2 {
		t.Errorf("widths = %d/%d/%d", c.FetchWidth, c.IssueWidth, c.LSLanes)
	}
	if c.ROBSize != 224 || c.IQSize != 97 || c.LDQSize != 72 || c.STQSize != 56 {
		t.Errorf("queues = %d/%d/%d/%d (Table 4: 224/97/72/56)",
			c.ROBSize, c.IQSize, c.LDQSize, c.STQSize)
	}
	if c.PhysRegs != 348 {
		t.Errorf("phys regs = %d, Table 4: 348", c.PhysRegs)
	}
	if c.VP.Scheme != VPNone {
		t.Error("baseline must not value-predict")
	}
	if c.Mem.L1D.SizeBytes != 64<<10 || c.Mem.L1D.Ways != 4 || c.Mem.L1D.Latency != 2 {
		t.Errorf("L1D = %+v", c.Mem.L1D)
	}
	if c.Mem.MemLatency != 200 {
		t.Errorf("memory latency = %d", c.Mem.MemLatency)
	}
	if c.PVTEntries != 32 || c.PAQEntries != 32 {
		t.Errorf("PVT/PAQ = %d/%d", c.PVTEntries, c.PAQEntries)
	}
	if c.VP.LSCDEntries != 4 {
		t.Errorf("LSCD = %d, paper: 4", c.VP.LSCDEntries)
	}
	if c.VP.MaxPredictionsPerCycle != 2 {
		t.Errorf("predictions/cycle = %d, paper: 2", c.VP.MaxPredictionsPerCycle)
	}
}

func TestSchemePresets(t *testing.T) {
	cases := map[VPScheme]Core{
		VPDLVP:       DLVP(),
		VPCAP:        CAPDLVP(),
		VPVTAGE:      VTAGE(),
		VPTournament: Tournament(),
	}
	for want, c := range cases {
		if c.VP.Scheme != want {
			t.Errorf("preset scheme = %v, want %v", c.VP.Scheme, want)
		}
		// Presets must not disturb the Table 4 substrate.
		if c.ROBSize != 224 {
			t.Errorf("%v preset changed ROB", want)
		}
	}
}

func TestSchemeStrings(t *testing.T) {
	names := map[VPScheme]string{
		VPNone: "baseline", VPDLVP: "dlvp", VPCAP: "cap",
		VPVTAGE: "vtage", VPTournament: "tournament",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestPAPBudgetIs8KBClass(t *testing.T) {
	// The paper's abstract: "a modest 8KB prediction table".
	c := Baseline()
	bits := c.VP.PAP.Entries * 69 // ARMv8 entry with way field
	kb := bits / 8 / 1024
	if kb < 6 || kb > 10 {
		t.Errorf("APT budget = %dKB, want the paper's ~8KB class", kb)
	}
}

func TestVTAGEDefaultsMatchPaper(t *testing.T) {
	c := VTAGE()
	v := c.VP.VTAGE
	if !v.LoadsOnly {
		t.Error("paper's final VTAGE config is loads-only")
	}
	if v.TableEntries != 256 || len(v.Histories) != 3 {
		t.Errorf("VTAGE geometry = %d entries x %d tables", v.TableEntries, len(v.Histories))
	}
}
