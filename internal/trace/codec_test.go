package trace

import (
	"bytes"
	"io"
	"testing"

	"dlvp/internal/isa"
)

// seekBuffer adapts bytes.Buffer into an io.WriteSeeker for tests.
type seekBuffer struct {
	data []byte
	pos  int
}

func (s *seekBuffer) Write(p []byte) (int, error) {
	if s.pos+len(p) > len(s.data) {
		grown := make([]byte, s.pos+len(p))
		copy(grown, s.data)
		s.data = grown
	}
	copy(s.data[s.pos:], p)
	s.pos += len(p)
	return len(p), nil
}

func (s *seekBuffer) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		s.pos = int(off)
	case io.SeekCurrent:
		s.pos += int(off)
	case io.SeekEnd:
		s.pos = len(s.data) + int(off)
	}
	return int64(s.pos), nil
}

func sampleRecs() []Rec {
	r1 := Rec{Seq: 0, PC: 0x400000, Next: 0x400004, Op: isa.LDP, NDst: 2, NSrc: 1,
		Addr: 0x1000, Bytes: 16}
	r1.Dst[0], r1.Dst[1] = 4, 5
	r1.Src[0] = 1
	r1.Vals[0], r1.Vals[1] = 111, 222
	r2 := Rec{Seq: 1, PC: 0x400004, Next: 0x400020, Op: isa.BEQ, NSrc: 2,
		Taken: true, Target: 0x400020}
	r2.Src[0], r2.Src[1] = 4, 5
	r3 := Rec{Seq: 2, PC: 0x400020, Next: 0x400024, Op: isa.LDM, NDst: 16, NSrc: 1,
		Addr: 0x2000, Bytes: 128}
	for i := 0; i < 16; i++ {
		r3.Dst[i] = isa.Reg(i)
		r3.Vals[i] = uint64(i * 7)
	}
	return []Rec{r1, r2, r3}
}

func TestCodecRoundTrip(t *testing.T) {
	buf := &seekBuffer{}
	w, err := NewWriter(buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecs()
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewFileReader(bytes.NewReader(buf.data))
	if err != nil {
		t.Fatal(err)
	}
	var got Rec
	for i := range recs {
		if !r.Next(&got) {
			t.Fatalf("record %d missing: %v", i, r.Err())
		}
		if got != recs[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, recs[i])
		}
	}
	if r.Next(&got) {
		t.Error("extra record after end")
	}
	if r.Err() != nil {
		t.Errorf("clean EOF expected, got %v", r.Err())
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := NewFileReader(bytes.NewReader([]byte("not a trace file....."))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewFileReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCodecTruncation(t *testing.T) {
	buf := &seekBuffer{}
	w, _ := NewWriter(buf)
	recs := sampleRecs()
	for i := range recs {
		_ = w.Write(&recs[i])
	}
	_ = w.Close()
	// Chop the last record in half.
	r, err := NewFileReader(bytes.NewReader(buf.data[:len(buf.data)-40]))
	if err != nil {
		t.Fatal(err)
	}
	var rec Rec
	n := 0
	for r.Next(&rec) {
		n++
	}
	if n != len(recs)-1 {
		t.Errorf("read %d records from truncated file", n)
	}
	if r.Err() == nil {
		t.Error("truncation must surface an error")
	}
}

// The emulator's stream must round-trip bit-exactly through the codec.
func TestCodecEmulatorRoundTrip(t *testing.T) {
	// A tiny program exercising loads, stores, branches, multi-dest ops.
	recs := sampleRecs()
	buf := &seekBuffer{}
	w, _ := NewWriter(buf)
	sr := &SliceReader{Recs: recs}
	var rec Rec
	for sr.Next(&rec) {
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFileReader(bytes.NewReader(buf.data))
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(fr, 0)
	if len(got) != len(recs) {
		t.Fatalf("count %d != %d", len(got), len(recs))
	}
}
