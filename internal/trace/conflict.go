package trace

// ConflictProfiler reproduces the measurement behind the paper's Figure 1:
// the fraction of dynamic loads that consume a value produced by a store that
// occurred since the prior dynamic instance of that same static load. Each
// conflicting load is classified by whether the producing store would already
// have committed when the load is fetched (Load → Store → Load) or would
// still be in flight (Load → "in-flight" Store → Load), using an
// instruction-distance window as the in-flight proxy (the paper's simulator
// used pipeline occupancy; distance inside the ROB-sized window is the
// standard trace-driven equivalent).
type ConflictProfiler struct {
	// InFlightWindow is the instruction distance below which a producing
	// store is considered still in flight when the load is fetched.
	// A ROB-sized window (224 in the Table 4 baseline) plus front-end
	// occupancy is the natural choice.
	InFlightWindow uint64

	// lastStore maps 8-byte-aligned word address -> seq of last store
	// touching that word. Word granularity matches the profiler's purpose:
	// sub-word stores conflict with loads of the containing word.
	lastStore map[uint64]uint64
	// per static load: previous dynamic instance.
	prev map[uint64]loadInstance

	Loads          uint64 // dynamic loads observed
	Conflicts      uint64 // loads whose value was produced since their prior instance
	InFlight       uint64 // ... where the producing store was still in flight
	ValueChanged   uint64 // conflicts where the consumed value actually differs
	sameAddrLoads  uint64 // loads whose prior instance touched the same address
	distinctStatic map[uint64]struct{}
}

type loadInstance struct {
	seq   uint64
	addr  uint64
	valid bool
	value uint64
}

// NewConflictProfiler returns a profiler with the given in-flight window.
func NewConflictProfiler(inFlightWindow uint64) *ConflictProfiler {
	return &ConflictProfiler{
		InFlightWindow: inFlightWindow,
		lastStore:      make(map[uint64]uint64),
		prev:           make(map[uint64]loadInstance),
		distinctStatic: make(map[uint64]struct{}),
	}
}

// Observe feeds one dynamic record through the profiler.
func (p *ConflictProfiler) Observe(r *Rec) {
	switch {
	case r.IsStore():
		first := r.Addr &^ 7
		last := (r.Addr + uint64(r.Bytes) - 1) &^ 7
		for w := first; w <= last; w += 8 {
			p.lastStore[w] = r.Seq + 1 // +1 so seq 0 is distinguishable from "never"
		}
	case r.IsLoad():
		p.Loads++
		p.distinctStatic[r.PC] = struct{}{}
		prev, seen := p.prev[r.PC]
		if seen && prev.addr == r.Addr {
			p.sameAddrLoads++
			// Find the most recent store to any word this load covers.
			var storeSeq uint64
			first := r.Addr &^ 7
			last := (r.Addr + uint64(r.Bytes) - 1) &^ 7
			for w := first; w <= last; w += 8 {
				if s := p.lastStore[w]; s > storeSeq {
					storeSeq = s
				}
			}
			if storeSeq > 0 && storeSeq-1 > prev.seq {
				p.Conflicts++
				if r.Seq-(storeSeq-1) < p.InFlightWindow {
					p.InFlight++
				}
				if prev.value != r.Vals[0] {
					p.ValueChanged++
				}
			}
		}
		p.prev[r.PC] = loadInstance{seq: r.Seq, addr: r.Addr, valid: true, value: r.Vals[0]}
	}
}

// ConflictStats is the Figure 1 result for one workload.
type ConflictStats struct {
	Loads        uint64
	StaticLoads  int
	CommittedPct float64 // % of dynamic loads in a Load→Store→Load sequence (store committed)
	InFlightPct  float64 // % of dynamic loads with the store still in flight
	ChangedPct   float64 // % of dynamic loads whose consumed value actually changed
}

// Stats summarises the profile.
func (p *ConflictProfiler) Stats() ConflictStats {
	s := ConflictStats{Loads: p.Loads, StaticLoads: len(p.distinctStatic)}
	if p.Loads == 0 {
		return s
	}
	committed := p.Conflicts - p.InFlight
	s.CommittedPct = 100 * float64(committed) / float64(p.Loads)
	s.InFlightPct = 100 * float64(p.InFlight) / float64(p.Loads)
	s.ChangedPct = 100 * float64(p.ValueChanged) / float64(p.Loads)
	return s
}
