package trace

// RepeatBuckets are the x-axis points of the paper's Figure 2: how often an
// address or value repeats. A dynamic load falls in bucket k when the
// address (value) it observes occurs at least Buckets[k] times — and fewer
// than Buckets[k+1] times — across all dynamic instances of its static load.
var RepeatBuckets = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// RepeatProfiler reproduces the paper's Figure 2: the breakdown of dynamic
// load instructions according to the repeatability of the observed memory
// addresses versus the observed loaded values. The paper's headline numbers
// from this figure: loads whose address repeats >= 8 times cover 91% of
// dynamic loads, while loads whose value repeats >= 64 times cover 80% —
// the gap PAP's relaxed confidence exploits.
type RepeatProfiler struct {
	// per static load: occurrence count per address and per value.
	addrCounts map[uint64]map[uint64]uint32
	valCounts  map[uint64]map[uint64]uint32
	loads      uint64
}

// NewRepeatProfiler returns an empty profiler.
func NewRepeatProfiler() *RepeatProfiler {
	return &RepeatProfiler{
		addrCounts: make(map[uint64]map[uint64]uint32),
		valCounts:  make(map[uint64]map[uint64]uint32),
	}
}

// Observe feeds one record; non-loads are ignored.
func (p *RepeatProfiler) Observe(r *Rec) {
	if !r.IsLoad() {
		return
	}
	p.loads++
	ac := p.addrCounts[r.PC]
	if ac == nil {
		ac = make(map[uint64]uint32)
		p.addrCounts[r.PC] = ac
	}
	ac[r.Addr]++
	vc := p.valCounts[r.PC]
	if vc == nil {
		vc = make(map[uint64]uint32)
		p.valCounts[r.PC] = vc
	}
	vc[r.Vals[0]]++
}

// RepeatStats is the Figure 2 result: for each bucket, the fraction (percent)
// of dynamic loads whose address/value repeats a number of times that falls
// in that bucket, plus cumulative "repeats at least k" curves.
type RepeatStats struct {
	Loads uint64
	// AddrPct[i] / ValuePct[i]: percent of dynamic loads whose address/value
	// total occurrence count c satisfies RepeatBuckets[i] <= c <
	// RepeatBuckets[i+1] (last bucket unbounded).
	AddrPct  []float64
	ValuePct []float64
	// AddrCumPct[i] / ValueCumPct[i]: percent with c >= RepeatBuckets[i].
	AddrCumPct  []float64
	ValueCumPct []float64
}

func bucketIndex(c uint32) int {
	for i := len(RepeatBuckets) - 1; i >= 0; i-- {
		if int(c) >= RepeatBuckets[i] {
			return i
		}
	}
	return 0
}

// Stats computes the breakdown.
func (p *RepeatProfiler) Stats() RepeatStats {
	n := len(RepeatBuckets)
	s := RepeatStats{
		Loads:       p.loads,
		AddrPct:     make([]float64, n),
		ValuePct:    make([]float64, n),
		AddrCumPct:  make([]float64, n),
		ValueCumPct: make([]float64, n),
	}
	if p.loads == 0 {
		return s
	}
	tally := func(counts map[uint64]map[uint64]uint32, pct []float64) {
		for _, m := range counts {
			for _, c := range m {
				// c dynamic loads observed this (addr|value), all of which
				// fall in the same bucket.
				pct[bucketIndex(c)] += float64(c)
			}
		}
		for i := range pct {
			pct[i] = 100 * pct[i] / float64(p.loads)
		}
	}
	tally(p.addrCounts, s.AddrPct)
	tally(p.valCounts, s.ValuePct)
	cum := func(pct, out []float64) {
		acc := 0.0
		for i := n - 1; i >= 0; i-- {
			acc += pct[i]
			out[i] = acc
		}
	}
	cum(s.AddrPct, s.AddrCumPct)
	cum(s.ValuePct, s.ValueCumPct)
	return s
}

// MeanRepeatStats averages several workloads' stats point-wise, reproducing
// the "averaged across all of our workloads" presentation of Figure 2.
func MeanRepeatStats(all []RepeatStats) RepeatStats {
	n := len(RepeatBuckets)
	m := RepeatStats{
		AddrPct:     make([]float64, n),
		ValuePct:    make([]float64, n),
		AddrCumPct:  make([]float64, n),
		ValueCumPct: make([]float64, n),
	}
	if len(all) == 0 {
		return m
	}
	for _, s := range all {
		m.Loads += s.Loads
		for i := 0; i < n; i++ {
			m.AddrPct[i] += s.AddrPct[i]
			m.ValuePct[i] += s.ValuePct[i]
			m.AddrCumPct[i] += s.AddrCumPct[i]
			m.ValueCumPct[i] += s.ValueCumPct[i]
		}
	}
	k := float64(len(all))
	for i := 0; i < n; i++ {
		m.AddrPct[i] /= k
		m.ValuePct[i] /= k
		m.AddrCumPct[i] /= k
		m.ValueCumPct[i] /= k
	}
	return m
}
