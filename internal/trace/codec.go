package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"dlvp/internal/isa"
)

// Binary trace format: a 16-byte header (magic, version, record count)
// followed by fixed-width little-endian records. The format exists so
// traces can be captured once and replayed into the timing model or
// external tooling without re-running the emulator.
const (
	traceMagic   = 0x50564c44 // "DLVP"
	traceVersion = 1
)

// recWireSize is the fixed on-disk record size: see writeRec for the layout.
const recWireSize = 8 + 8 + 8 + 1 + 1 + 1 + 1 + 8 + 1 + 1 + 2 +
	MaxDests + MaxSrcs + MaxDests*8

// Writer serialises dynamic records.
type Writer struct {
	w     *bufio.Writer
	count uint64
	base  io.WriteSeeker
}

// NewWriter returns a Writer emitting to ws. The header is finalised by
// Close (the record count is back-patched), so ws must be seekable.
func NewWriter(ws io.WriteSeeker) (*Writer, error) {
	w := &Writer{w: bufio.NewWriter(ws), base: ws}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	// count written on Close
	if _, err := w.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return w, nil
}

// Write appends one record.
func (w *Writer) Write(r *Rec) error {
	var buf [recWireSize]byte
	o := 0
	put64 := func(v uint64) { binary.LittleEndian.PutUint64(buf[o:], v); o += 8 }
	put64(r.Seq)
	put64(r.PC)
	put64(r.Next)
	buf[o] = uint8(r.Op)
	o++
	buf[o] = r.NDst
	o++
	buf[o] = r.NSrc
	o++
	buf[o] = r.Bytes
	o++
	put64(r.Addr)
	if r.Taken {
		buf[o] = 1
	}
	o++
	o++ // reserved
	o += 2
	for i := 0; i < MaxDests; i++ {
		buf[o] = uint8(r.Dst[i])
		o++
	}
	for i := 0; i < MaxSrcs; i++ {
		buf[o] = uint8(r.Src[i])
		o++
	}
	for i := 0; i < MaxDests; i++ {
		put64(r.Vals[i])
	}
	if _, err := w.w.Write(buf[:]); err != nil {
		return err
	}
	// The branch target trails the fixed block as one more 64-bit word.
	var tgt [8]byte
	binary.LittleEndian.PutUint64(tgt[:], r.Target)
	if _, err := w.w.Write(tgt[:]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Close flushes and back-patches the record count.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if _, err := w.base.Seek(8, io.SeekStart); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], w.count)
	_, err := w.base.Write(cnt[:])
	return err
}

// FileReader streams records from a serialised trace; it implements Reader.
type FileReader struct {
	r      *bufio.Reader
	remain uint64
	total  uint64
	err    error
}

// NewFileReader validates the header and returns a streaming reader.
func NewFileReader(r io.Reader) (*FileReader, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != traceMagic {
		return nil, fmt.Errorf("trace: bad magic 0x%08x (want 0x%08x)", m, traceMagic)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (reader supports %d)", v, traceVersion)
	}
	total := binary.LittleEndian.Uint64(hdr[8:])
	return &FileReader{r: br, remain: total, total: total}, nil
}

// Err returns the first decode error encountered (nil on clean EOF).
func (f *FileReader) Err() error { return f.err }

// Next implements Reader.
func (f *FileReader) Next(rec *Rec) bool {
	if f.remain == 0 || f.err != nil {
		return false
	}
	var buf [recWireSize + 8]byte
	if _, err := io.ReadFull(f.r, buf[:]); err != nil {
		// Name the failing record so a corrupt capture is diagnosable: a
		// clean EOF here still means the header promised more records than
		// the file holds (count mismatch), never a silent end-of-stream.
		f.err = fmt.Errorf("trace: truncated record %d of %d: %w",
			f.total-f.remain, f.total, err)
		return false
	}
	o := 0
	get64 := func() uint64 { v := binary.LittleEndian.Uint64(buf[o:]); o += 8; return v }
	rec.Seq = get64()
	rec.PC = get64()
	rec.Next = get64()
	rec.Op = isa.Op(buf[o])
	o++
	rec.NDst = buf[o]
	o++
	rec.NSrc = buf[o]
	o++
	rec.Bytes = buf[o]
	o++
	rec.Addr = get64()
	rec.Taken = buf[o] == 1
	o += 2
	o += 2
	for i := 0; i < MaxDests; i++ {
		rec.Dst[i] = isa.Reg(buf[o])
		o++
	}
	for i := 0; i < MaxSrcs; i++ {
		rec.Src[i] = isa.Reg(buf[o])
		o++
	}
	for i := 0; i < MaxDests; i++ {
		rec.Vals[i] = get64()
	}
	rec.Target = get64()
	f.remain--
	return true
}
