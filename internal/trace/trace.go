// Package trace defines the dynamic instruction record streamed from the
// functional emulator into the timing model and the profiling tools, plus
// the streaming profilers behind the paper's Figure 1 (load-store conflict
// characterisation) and Figure 2 (address/value repeatability).
package trace

import "dlvp/internal/isa"

// MaxDests is the largest number of destination registers a single record can
// carry (ARM LDM writes up to 16 general-purpose registers).
const MaxDests = isa.MaxLDMRegs

// MaxSrcs is the largest number of source registers (STP: base + index + two
// data registers).
const MaxSrcs = 4

// Rec is one dynamic instruction as observed by the functional emulator.
// It carries everything the timing model and the predictors need: register
// dataflow, the effective address and loaded/stored values for memory
// operations, and the actual control-flow outcome for branches.
type Rec struct {
	Seq  uint64 // dynamic instruction number, starting at 0
	PC   uint64
	Op   isa.Op
	Next uint64 // address of the next instruction actually executed

	NDst uint8
	NSrc uint8
	Dst  [MaxDests]isa.Reg
	Src  [MaxSrcs]isa.Reg

	// Memory operation fields (valid when Op.IsMem()).
	Addr  uint64 // effective (virtual) address
	Bytes uint8  // total bytes accessed
	// Vals holds, for loads, the value written into each destination register
	// (Vals[i] corresponds to Dst[i]); for LDRPOST, Vals[1] is the updated
	// base. For stores, Vals[0..1] hold the stored data words (16 bytes max).
	Vals [MaxDests]uint64

	// Branch fields (valid when Op.IsBranch()).
	Taken  bool
	Target uint64 // actual target when taken
}

// IsLoad reports whether the record is a load.
func (r *Rec) IsLoad() bool { return r.Op.IsLoad() }

// IsStore reports whether the record is a store.
func (r *Rec) IsStore() bool { return r.Op.IsStore() }

// Value returns the first loaded value (the canonical "load value" used by
// single-value predictors).
func (r *Rec) Value() uint64 { return r.Vals[0] }

// DestValue returns the value written into destination register Dst[i].
// For most instructions this is Vals[i]; STRPOST is the exception — its
// Vals[0] holds the stored data, so the updated base (its only destination)
// lives in Vals[1].
func (r *Rec) DestValue(i int) uint64 {
	if r.Op == isa.STRPOST {
		return r.Vals[1]
	}
	return r.Vals[i]
}

// Reader streams dynamic records. Fill copies the next record into rec and
// reports whether a record was produced; once it returns false the stream is
// exhausted (program halted or budget reached).
type Reader interface {
	Next(rec *Rec) bool
}

// RandomAccess is implemented by readers that can serve any record by
// position without re-streaming. A simulator replaying such a trace can
// skip its staging ring and serve records zero-copy — including refetches
// after a squash, which a pure stream cannot rewind for.
type RandomAccess interface {
	RecAt(pos uint64) *Rec
	NumRecs() uint64
}

// SliceReader adapts a pre-recorded []Rec into a Reader; used by tests.
type SliceReader struct {
	Recs []Rec
	pos  int
}

// Next implements Reader.
func (s *SliceReader) Next(rec *Rec) bool {
	if s.pos >= len(s.Recs) {
		return false
	}
	*rec = s.Recs[s.pos]
	s.pos++
	return true
}

// RecAt implements RandomAccess. The caller must not mutate the record.
func (s *SliceReader) RecAt(pos uint64) *Rec { return &s.Recs[pos] }

// NumRecs implements RandomAccess.
func (s *SliceReader) NumRecs() uint64 { return uint64(len(s.Recs)) }

// Collect drains up to max records from r (all records if max <= 0).
func Collect(r Reader, max int) []Rec {
	var out []Rec
	var rec Rec
	for r.Next(&rec) {
		out = append(out, rec)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}
