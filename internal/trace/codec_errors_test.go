package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// encodeSample serialises sampleRecs through the Writer and returns the
// raw bytes for corruption by the error-path tests.
func encodeSample(t *testing.T) []byte {
	t.Helper()
	buf := &seekBuffer{}
	w, err := NewWriter(buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecs()
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.data
}

// TestCodecTruncatedHeader: every header prefix shorter than 16 bytes is
// rejected with a descriptive wrapped error, never a panic or a reader.
func TestCodecTruncatedHeader(t *testing.T) {
	data := encodeSample(t)
	for n := 0; n < 16; n++ {
		r, err := NewFileReader(bytes.NewReader(data[:n]))
		if err == nil {
			t.Fatalf("header prefix of %d bytes accepted: %+v", n, r)
		}
		if !strings.Contains(err.Error(), "short header") {
			t.Errorf("prefix %d: error %q does not name the short header", n, err)
		}
		// The underlying io error must survive wrapping so callers can
		// distinguish truncation from malformed content.
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("prefix %d: error %v hides the io cause", n, err)
		}
	}
}

// TestCodecWrongMagic: a corrupt magic word is reported with both the
// observed and expected values so the operator can spot endianness or
// file-type mixups at a glance.
func TestCodecWrongMagic(t *testing.T) {
	data := encodeSample(t)
	binary.LittleEndian.PutUint32(data[0:], 0xdeadbeef)
	_, err := NewFileReader(bytes.NewReader(data))
	if err == nil {
		t.Fatal("wrong magic accepted")
	}
	for _, want := range []string{"bad magic", "0xdeadbeef", "0x50564c44"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestCodecUnsupportedVersion: a future format version is refused up
// front, naming both the file's version and the reader's.
func TestCodecUnsupportedVersion(t *testing.T) {
	data := encodeSample(t)
	binary.LittleEndian.PutUint32(data[4:], 7)
	_, err := NewFileReader(bytes.NewReader(data))
	if err == nil {
		t.Fatal("unsupported version accepted")
	}
	for _, want := range []string{"unsupported version 7", "supports 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestCodecRecordCountMismatch: a header promising more records than the
// file holds surfaces an error naming the failing record — a clean cut at
// a record boundary must not read as a silent EOF.
func TestCodecRecordCountMismatch(t *testing.T) {
	data := encodeSample(t)
	binary.LittleEndian.PutUint64(data[8:], 5) // file actually holds 3

	r, err := NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var rec Rec
	n := 0
	for r.Next(&rec) {
		n++
	}
	if n != len(sampleRecs()) {
		t.Errorf("read %d records, want %d intact ones", n, len(sampleRecs()))
	}
	err = r.Err()
	if err == nil {
		t.Fatal("count mismatch read as clean EOF")
	}
	if !strings.Contains(err.Error(), "record 3 of 5") {
		t.Errorf("error %q does not locate the missing record", err)
	}
	if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("error %v hides the io cause", err)
	}
}

// TestCodecMidRecordTruncationIndex: chopping inside a record reports
// that record's index, not just a generic failure.
func TestCodecMidRecordTruncationIndex(t *testing.T) {
	data := encodeSample(t)
	r, err := NewFileReader(bytes.NewReader(data[:len(data)-40]))
	if err != nil {
		t.Fatal(err)
	}
	var rec Rec
	for r.Next(&rec) {
	}
	err = r.Err()
	if err == nil {
		t.Fatal("mid-record truncation read as clean EOF")
	}
	if !strings.Contains(err.Error(), "record 2 of 3") {
		t.Errorf("error %q does not locate the truncated record", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("error %v hides io.ErrUnexpectedEOF", err)
	}
}

// TestCodecErrStickyAfterFailure: after a decode error, Next keeps
// returning false and Err keeps returning the first failure — callers
// polling in a loop cannot spin or observe a second, different error.
func TestCodecErrStickyAfterFailure(t *testing.T) {
	data := encodeSample(t)
	r, err := NewFileReader(bytes.NewReader(data[:len(data)-40]))
	if err != nil {
		t.Fatal(err)
	}
	var rec Rec
	for r.Next(&rec) {
	}
	first := r.Err()
	for i := 0; i < 3; i++ {
		if r.Next(&rec) {
			t.Fatal("Next succeeded after a decode error")
		}
	}
	if r.Err() != first {
		t.Errorf("Err changed after failure: %v -> %v", first, r.Err())
	}
}
