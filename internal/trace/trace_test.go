package trace

import (
	"testing"

	"dlvp/internal/isa"
)

func load(seq uint64, pc, addr, val uint64) Rec {
	r := Rec{Seq: seq, PC: pc, Op: isa.LDR, Addr: addr, Bytes: 8, NDst: 1}
	r.Vals[0] = val
	return r
}

func store(seq uint64, pc, addr, val uint64) Rec {
	r := Rec{Seq: seq, PC: pc, Op: isa.STR, Addr: addr, Bytes: 8}
	r.Vals[0] = val
	return r
}

func TestSliceReader(t *testing.T) {
	recs := []Rec{load(0, 0x400000, 0x1000, 1), store(1, 0x400004, 0x1000, 2)}
	sr := &SliceReader{Recs: recs}
	got := Collect(sr, 0)
	if len(got) != 2 || got[0].Seq != 0 || got[1].Seq != 1 {
		t.Fatalf("collect = %+v", got)
	}
	var rec Rec
	if sr.Next(&rec) {
		t.Error("exhausted reader must return false")
	}
}

func TestCollectMax(t *testing.T) {
	recs := make([]Rec, 10)
	for i := range recs {
		recs[i] = load(uint64(i), 0x400000, 0x1000, 0)
	}
	got := Collect(&SliceReader{Recs: recs}, 3)
	if len(got) != 3 {
		t.Errorf("collect max = %d, want 3", len(got))
	}
}

func TestConflictCommitted(t *testing.T) {
	// Load A, far-away store to A (committed), load A again => committed conflict.
	p := NewConflictProfiler(100)
	recs := []Rec{
		load(0, 0x400000, 0x1000, 5),
		store(1, 0x400100, 0x1000, 6),
	}
	// Pad distance beyond the in-flight window.
	seq := uint64(2)
	for i := 0; i < 200; i++ {
		recs = append(recs, Rec{Seq: seq, PC: 0x400200, Op: isa.ADD})
		seq++
	}
	recs = append(recs, load(seq, 0x400000, 0x1000, 6))
	for i := range recs {
		p.Observe(&recs[i])
	}
	s := p.Stats()
	if p.Conflicts != 1 || p.InFlight != 0 {
		t.Fatalf("conflicts=%d inflight=%d, want 1/0", p.Conflicts, p.InFlight)
	}
	if s.CommittedPct != 50 { // 1 of 2 dynamic loads
		t.Errorf("committed pct = %v, want 50", s.CommittedPct)
	}
	if p.ValueChanged != 1 {
		t.Errorf("value changed = %d, want 1", p.ValueChanged)
	}
}

func TestConflictInFlight(t *testing.T) {
	// Store immediately before the second load => in flight.
	p := NewConflictProfiler(100)
	recs := []Rec{
		load(0, 0x400000, 0x1000, 5),
		store(1, 0x400100, 0x1000, 6),
		load(2, 0x400000, 0x1000, 6),
	}
	for i := range recs {
		p.Observe(&recs[i])
	}
	if p.Conflicts != 1 || p.InFlight != 1 {
		t.Fatalf("conflicts=%d inflight=%d, want 1/1", p.Conflicts, p.InFlight)
	}
}

func TestConflictRequiresSameAddress(t *testing.T) {
	// Second instance reads a different address: no conflict.
	p := NewConflictProfiler(100)
	recs := []Rec{
		load(0, 0x400000, 0x1000, 5),
		store(1, 0x400100, 0x1000, 6),
		load(2, 0x400000, 0x2000, 7),
	}
	for i := range recs {
		p.Observe(&recs[i])
	}
	if p.Conflicts != 0 {
		t.Fatalf("conflicts = %d, want 0", p.Conflicts)
	}
}

func TestConflictStoreBeforeFirstInstance(t *testing.T) {
	// Store precedes the first load instance: not "since the prior instance".
	p := NewConflictProfiler(100)
	recs := []Rec{
		store(0, 0x400100, 0x1000, 6),
		load(1, 0x400000, 0x1000, 6),
		load(2, 0x400000, 0x1000, 6),
	}
	for i := range recs {
		p.Observe(&recs[i])
	}
	if p.Conflicts != 0 {
		t.Fatalf("conflicts = %d, want 0", p.Conflicts)
	}
}

func TestConflictSubWordStore(t *testing.T) {
	// A byte store inside the loaded word must register as a conflict.
	p := NewConflictProfiler(100)
	r1 := load(0, 0x400000, 0x1000, 5)
	st := Rec{Seq: 1, PC: 0x400100, Op: isa.STR, Addr: 0x1003, Bytes: 1}
	r2 := load(2, 0x400000, 0x1000, 99)
	for _, r := range []Rec{r1, st, r2} {
		p.Observe(&r)
	}
	if p.Conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1 (sub-word store)", p.Conflicts)
	}
}

func TestConflictSilentStoreCounted(t *testing.T) {
	// A store writing the same value is a conflict per Figure 1's definition
	// (a store occurred), but ValueChanged stays zero.
	p := NewConflictProfiler(100)
	recs := []Rec{
		load(0, 0x400000, 0x1000, 5),
		store(1, 0x400100, 0x1000, 5),
		load(2, 0x400000, 0x1000, 5),
	}
	for i := range recs {
		p.Observe(&recs[i])
	}
	if p.Conflicts != 1 || p.ValueChanged != 0 {
		t.Fatalf("conflicts=%d changed=%d, want 1/0", p.Conflicts, p.ValueChanged)
	}
}

func TestConflictStatsEmpty(t *testing.T) {
	s := NewConflictProfiler(100).Stats()
	if s.Loads != 0 || s.CommittedPct != 0 || s.InFlightPct != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestRepeatBuckets(t *testing.T) {
	cases := map[uint32]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 63: 5, 64: 6, 128: 7, 255: 7, 256: 8, 10000: 8}
	for c, want := range cases {
		if got := bucketIndex(c); got != want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c, got, want)
		}
	}
}

func TestRepeatProfilerAddressVsValue(t *testing.T) {
	// One static load: 8 instances, all same address, but 2 distinct values
	// (4 occurrences each). Address repeats 8x; values repeat 4x.
	p := NewRepeatProfiler()
	for i := 0; i < 8; i++ {
		r := load(uint64(i), 0x400000, 0x1000, uint64(i%2))
		p.Observe(&r)
	}
	s := p.Stats()
	if s.Loads != 8 {
		t.Fatalf("loads = %d", s.Loads)
	}
	// All loads' address occurs 8 times -> bucket index 3 (>=8).
	if s.AddrPct[3] != 100 {
		t.Errorf("addr bucket 8 pct = %v, want 100 (%v)", s.AddrPct[3], s.AddrPct)
	}
	// All loads' value occurs 4 times -> bucket index 2 (>=4).
	if s.ValuePct[2] != 100 {
		t.Errorf("value bucket 4 pct = %v, want 100 (%v)", s.ValuePct[2], s.ValuePct)
	}
	// Cumulative: >=4 addresses is also 100%.
	if s.AddrCumPct[2] != 100 || s.ValueCumPct[3] != 0 {
		t.Errorf("cumulative wrong: addr>=4 %v, value>=8 %v", s.AddrCumPct[2], s.ValueCumPct[3])
	}
}

func TestRepeatProfilerPerStaticLoad(t *testing.T) {
	// Two static loads with the same address are counted separately.
	p := NewRepeatProfiler()
	for i := 0; i < 4; i++ {
		r := load(uint64(2*i), 0x400000, 0x1000, 7)
		p.Observe(&r)
		r2 := load(uint64(2*i+1), 0x400008, 0x1000, 7)
		p.Observe(&r2)
	}
	s := p.Stats()
	// Each static load saw the address 4 times: bucket >=4.
	if s.AddrPct[2] != 100 {
		t.Errorf("addr pct = %v", s.AddrPct)
	}
}

func TestRepeatIgnoresNonLoads(t *testing.T) {
	p := NewRepeatProfiler()
	r := store(0, 0x400000, 0x1000, 1)
	p.Observe(&r)
	a := Rec{Seq: 1, Op: isa.ADD}
	p.Observe(&a)
	if s := p.Stats(); s.Loads != 0 {
		t.Errorf("non-loads counted: %d", s.Loads)
	}
}

func TestMeanRepeatStats(t *testing.T) {
	a := RepeatStats{
		Loads:       10,
		AddrPct:     pctVec(100, 0),
		ValuePct:    pctVec(0, 100),
		AddrCumPct:  pctVec(100, 0),
		ValueCumPct: pctVec(0, 100),
	}
	b := RepeatStats{
		Loads:       30,
		AddrPct:     pctVec(0, 100),
		ValuePct:    pctVec(100, 0),
		AddrCumPct:  pctVec(0, 100),
		ValueCumPct: pctVec(100, 0),
	}
	m := MeanRepeatStats([]RepeatStats{a, b})
	if m.Loads != 40 {
		t.Errorf("loads = %d", m.Loads)
	}
	if m.AddrPct[0] != 50 || m.AddrPct[1] != 50 {
		t.Errorf("mean addr pct = %v", m.AddrPct)
	}
	if len(MeanRepeatStats(nil).AddrPct) != len(RepeatBuckets) {
		t.Error("empty mean must still be sized")
	}
}

func pctVec(first, second float64) []float64 {
	v := make([]float64, len(RepeatBuckets))
	v[0], v[1] = first, second
	return v
}

func TestRecHelpers(t *testing.T) {
	l := load(0, 1, 2, 42)
	if !l.IsLoad() || l.IsStore() || l.Value() != 42 {
		t.Error("load helpers wrong")
	}
	s := store(0, 1, 2, 3)
	if s.IsLoad() || !s.IsStore() {
		t.Error("store helpers wrong")
	}
}
