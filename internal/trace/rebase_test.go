package trace

import "testing"

func TestRebaseShiftsSeq(t *testing.T) {
	recs := []Rec{load(100, 0x40, 0x1000, 1), store(101, 0x44, 0x1008, 2), load(102, 0x48, 0x1000, 3)}
	r := Rebase(&SliceReader{Recs: recs}, 100)
	var rec Rec
	for i := 0; r.Next(&rec); i++ {
		if rec.Seq != uint64(i) {
			t.Errorf("record %d: seq = %d, want %d", i, rec.Seq, i)
		}
		// Everything but Seq passes through untouched.
		shifted := recs[i]
		shifted.Seq = uint64(i)
		if rec != shifted {
			t.Errorf("record %d mutated beyond Seq: %+v", i, rec)
		}
	}
	if r.Next(&rec) {
		t.Error("reader did not terminate with its source")
	}
}

func TestRebaseZeroIsIdentity(t *testing.T) {
	src := &SliceReader{Recs: []Rec{load(0, 0x40, 0x1000, 1)}}
	if got := Rebase(src, 0); got != Reader(src) {
		t.Error("Rebase(r, 0) must return r unwrapped")
	}
}
