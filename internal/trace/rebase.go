package trace

// Rebase wraps r so every record's Seq is shifted down by base. A
// checkpoint-restored emulator numbers its records from the restore
// offset, but the timing core (and anything else treating Seq as a
// stream position) requires a 0-based sequence; rebasing by the restore
// offset makes the mid-stream tail indistinguishable from a fresh run.
func Rebase(r Reader, base uint64) Reader {
	if base == 0 {
		return r
	}
	return &rebaseReader{inner: r, base: base}
}

type rebaseReader struct {
	inner Reader
	base  uint64
}

func (r *rebaseReader) Next(rec *Rec) bool {
	if !r.inner.Next(rec) {
		return false
	}
	rec.Seq -= r.base
	return true
}
