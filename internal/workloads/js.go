package workloads

import (
	"fmt"

	"dlvp/internal/isa"
	"dlvp/internal/program"
)

func init() {
	register(Workload{
		Name:  "avmshell",
		Suite: "js",
		Description: "bytecode interpreter with indirect dispatch (ITTAGE " +
			"territory) and fixed operand-frame slots whose values change " +
			"every instruction",
		Build: buildAvmshell,
	})
	register(Workload{
		Name:  "pdfjs",
		Suite: "js",
		Description: "object-graph rendering: type-dispatched property loads " +
			"from a fixed object pool, mutated between frames",
		Build: buildPdfjs,
	})
	register(Workload{
		Name:  "richards",
		Suite: "js",
		Description: "task scheduler over a circular run queue: state loads " +
			"feed scheduling branches (early resolution pays)",
		Build: buildRichards,
	})
	register(Workload{
		Name:  "dromaeo",
		Suite: "js",
		Description: "string scanning through a shared helper called from " +
			"two sites: load-path history separates the call sites where " +
			"PC-indexed context cannot",
		Build: buildDromaeo,
	})
	register(Workload{
		Name:  "v8crypto",
		Suite: "js",
		Description: "bignum multiply-accumulate over fixed limb arrays " +
			"rewritten every pass: the committed-conflict shape on the " +
			"critical path",
		Build: buildV8crypto,
	})
	register(Workload{
		Name:  "browsermark",
		Suite: "js",
		Description: "mixed DOM-ish workload: a small tree walk plus style " +
			"table lookups and layout accumulator updates",
		Build: buildBrowsermark,
	})
}

// buildAvmshell: interprets a fixed 16-opcode bytecode program through a
// jump table (BR). Each handler touches fixed frame slots; an accumulator
// slot is stored by nearly every handler and reloaded by the next — the
// interpreter-loop conflict pattern.
func buildAvmshell() *program.Program {
	b := program.NewBuilder("avmshell")
	const progLen = 16
	bytecode := []uint64{0, 1, 2, 3, 1, 0, 2, 1, 3, 0, 1, 2, 0, 3, 2, 1}
	b.AllocWords("bytecode", bytecode)
	b.AllocWords("frame", make([]uint64, 8))
	b.Alloc("jumptable", 4*8)

	// Handlers are emitted after the dispatch loop; their entry addresses
	// are captured as they are laid down and written into the jump table
	// before Build.
	b.MovImm(rOuter, 0)
	b.Label("loop")
	b.MovSym(rPtr, "bytecode")
	b.OpImm(isa.ANDI, rTmp, rOuter, progLen-1)
	b.LdrIdx(rTmp2, rPtr, rTmp, 3, 3) // opcode
	b.MovSym(rPtr2, "jumptable")
	b.LdrIdx(rTmp2, rPtr2, rTmp2, 3, 3) // handler address
	b.BrReg(rTmp2)                      // indirect dispatch

	handler := func(name string, body func()) uint64 {
		b.Label(name)
		addr := b.PC() // label address = address of the next instruction
		body()
		b.AddI(rOuter, rOuter, 1)
		b.Br("loop")
		return addr
	}
	frame := func() { b.MovSym(rPtr3, "frame") }
	h0 := handler("op_add", func() {
		frame()
		b.Ldr(rTmp, rPtr3, 0, 3) // acc
		b.Ldr(rTmp2, rPtr3, 8, 3)
		b.Add(rTmp, rTmp, rTmp2)
		b.Str(rTmp, rPtr3, 0, 3)
	})
	h1 := handler("op_xor", func() {
		frame()
		b.Ldr(rTmp, rPtr3, 0, 3)
		b.Ldr(rTmp2, rPtr3, 16, 3)
		b.Op3(isa.EOR, rTmp, rTmp, rTmp2)
		b.Str(rTmp, rPtr3, 0, 3)
	})
	h2 := handler("op_shift", func() {
		b.Nop() // alignment variety for the load-path history
		frame()
		b.Ldr(rTmp, rPtr3, 0, 3)
		b.OpImm(isa.LSRI, rTmp2, rTmp, 3)
		b.Add(rTmp, rTmp, rTmp2)
		b.Str(rTmp, rPtr3, 0, 3)
	})
	h3 := handler("op_store", func() {
		frame()
		b.Ldr(rTmp, rPtr3, 0, 3)
		b.Str(rTmp, rPtr3, 24, 3)
		b.OpImm(isa.ORRI, rTmp, rTmp, 1)
		b.Str(rTmp, rPtr3, 0, 3)
	})
	b.SetWords("jumptable", []uint64{h0, h1, h2, h3})
	return b.Build()
}

// buildPdfjs: renders a fixed pool of 16 "glyph objects". Each object's
// type selects one of two property-access paths; object payloads mutate
// every 64 frames, so values drift under stable addresses.
func buildPdfjs() *program.Program {
	b := program.NewBuilder("pdfjs")
	const objs = 16
	const objWords = 4 // type, width, height, style
	words := make([]uint64, objs*objWords)
	r := newRng(0x9d5)
	for i := 0; i < objs; i++ {
		words[i*objWords] = uint64(i % 2)
		words[i*objWords+1] = uint64(10 + r.intn(30))
		words[i*objWords+2] = uint64(8 + r.intn(20))
		words[i*objWords+3] = uint64(r.intn(4))
	}
	base := b.AllocWords("objs", words)
	b.AllocWords("canvas", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("frame")
	b.MovImm(rAcc, 0)
	for i := 0; i < objs; i++ {
		obj := base + uint64(i*objWords*8)
		b.MovImm(rPtr, obj)
		b.Ldr(rTmp, rPtr, 0, 3) // type (stable value: branch predicts well)
		b.Cbnz(rTmp, fmt.Sprintf("text_%d", i))
		b.Ldr(rTmp2, rPtr, 8, 3) // image path: width
		b.Ldr(rScratch0, rPtr, 16, 3)
		b.Madd(rAcc, rTmp2, rScratch0, rAcc)
		b.Br(fmt.Sprintf("drawn_%d", i))
		b.Label(fmt.Sprintf("text_%d", i))
		b.Nop()
		b.Ldr(rTmp2, rPtr, 24, 3) // text path: style
		b.Add(rAcc, rAcc, rTmp2)
		b.Label(fmt.Sprintf("drawn_%d", i))
	}
	b.MovSym(rPtr2, "canvas")
	b.Str(rAcc, rPtr2, 0, 3)
	b.AddI(rOuter, rOuter, 1)
	// Mutate widths every 64 frames (stores far from next frame's loads).
	b.OpImm(isa.ANDI, rTmp, rOuter, 63)
	b.Cbnz(rTmp, "frame")
	for i := 0; i < objs; i += 2 {
		obj := base + uint64(i*objWords*8)
		b.MovImm(rPtr, obj)
		b.Ldr(rTmp2, rPtr, 8, 3)
		b.AddI(rTmp2, rTmp2, 1)
		b.Str(rTmp2, rPtr, 8, 3)
	}
	b.Br("frame")
	return b.Build()
}

// buildRichards: four tasks on a circular run queue; each task's state load
// feeds the scheduling branch, so a correct value prediction resolves the
// branch early. States mutate constantly under fixed addresses.
func buildRichards() *program.Program {
	b := program.NewBuilder("richards")
	const tasks = 4
	const taskWords = 4 // state, work, next, pad
	base := b.Alloc("tasks", tasks*taskWords*8)
	words := make([]uint64, tasks*taskWords)
	for i := 0; i < tasks; i++ {
		words[i*taskWords] = uint64(i % 3)
		words[i*taskWords+1] = uint64(i * 7)
		words[i*taskWords+2] = base + uint64(((i+1)%tasks)*taskWords*8)
	}
	b.SetWords("tasks", words)
	b.AllocWords("done", []uint64{0})

	b.MovImm(rPtr, base)
	b.MovImm(rOuter, 0)
	b.Label("sched")
	b.Ldr(rTmp, rPtr, 0, 3) // task state: value feeds the branch below
	b.Cbz(rTmp, "idle")
	b.Ldr(rTmp2, rPtr, 8, 3) // work counter
	b.AddI(rTmp2, rTmp2, 3)
	b.OpImm(isa.ANDI, rTmp2, rTmp2, 0xFF)
	b.Str(rTmp2, rPtr, 8, 3)
	b.SubI(rTmp, rTmp, 1)
	b.Str(rTmp, rPtr, 0, 3) // state decays toward idle
	b.Br("nexttask")
	b.Label("idle")
	b.Nop()
	b.MovImm(rTmp, 2)
	b.Str(rTmp, rPtr, 0, 3) // reactivate
	b.MovSym(rTmp2, "done")
	b.Ldr(rScratch0, rTmp2, 0, 3)
	b.AddI(rScratch0, rScratch0, 1)
	b.Str(rScratch0, rTmp2, 0, 3)
	b.Label("nexttask")
	b.Ldr(rPtr, rPtr, 16, 3) // circular next (4 stable addresses per PC path)
	b.AddI(rOuter, rOuter, 1)
	b.Br("sched")
	return b.Build()
}

// buildDromaeo: two scanners over different fixed strings share a helper
// that reloads per-scanner context from a fixed cell. The helper's loads
// see two contexts; only the load path distinguishes the call sites.
func buildDromaeo() *program.Program {
	b := program.NewBuilder("dromaeo")
	mk := func(seed uint64, n int) []byte {
		r := newRng(seed)
		s := make([]byte, n)
		for i := range s {
			s[i] = byte('a' + r.intn(26))
		}
		return s
	}
	b.AllocInit("strA", mk(0xd0, 512))
	b.AllocInit("strB", mk(0xd1, 512))
	b.AllocWords("ctxA", []uint64{0x61}) // needle 'a'
	b.AllocWords("ctxB", []uint64{0x7a}) // needle 'z'
	b.AllocWords("hitsA", []uint64{0})
	b.AllocWords("hitsB", []uint64{0})

	const lr = isa.Reg(30)
	b.MovImm(rOuter, 0)
	b.Label("outer")
	// Site A: three loads before the call leave a distinct path signature.
	b.MovSym(rPtr, "strA")
	b.MovSym(rPtr2, "ctxA")
	b.MovSym(rPtr3, "hitsA")
	b.Ldr(rTmp, rPtr2, 0, 3) // needle
	b.Call("scan", lr)
	// Site B.
	b.MovSym(rPtr, "strB")
	b.MovSym(rPtr2, "ctxB")
	b.MovSym(rPtr3, "hitsB")
	b.Nop() // alignment variety before the same helper loads
	b.Ldr(rTmp, rPtr2, 0, 3)
	b.Call("scan", lr)
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")

	// scan: count needle occurrences in 64 bytes starting at a rotating
	// offset; accumulate into *rPtr3 (load-store at a per-site address the
	// helper PC alone cannot disambiguate).
	b.Label("scan")
	b.OpImm(isa.ANDI, rTmp2, rOuter, 7)
	b.OpImm(isa.LSLI, rTmp2, rTmp2, 6)
	b.Add(rTmp2, rPtr, rTmp2)
	b.MovImm(rInner, 64)
	b.MovImm(rAcc, 0)
	b.Label("scanloop")
	b.Ldr(rScratch0, rTmp2, 0, 0)
	b.AddI(rTmp2, rTmp2, 1)
	b.CondBr(isa.BNE, rScratch0, rTmp, "miss")
	b.AddI(rAcc, rAcc, 1)
	b.Label("miss")
	b.SubI(rInner, rInner, 1)
	b.Cbnz(rInner, "scanloop")
	b.Ldr(rScratch0, rPtr3, 0, 3) // per-site accumulator (path-disambiguated)
	b.Add(rScratch0, rScratch0, rAcc)
	b.Str(rScratch0, rPtr3, 0, 3)
	b.Ret(lr)
	return b.Build()
}

// buildV8crypto: schoolbook multiply-accumulate over two fixed 8-limb
// bignums; the result limbs are rewritten every pass and re-read the next —
// committed conflicts sitting directly on the carry chain.
func buildV8crypto() *program.Program {
	b := program.NewBuilder("v8crypto")
	const limbs = 8
	abase := b.AllocWords("a", randWords(0xc1, limbs))
	rbase := b.AllocWords("res", make([]uint64, limbs))

	b.MovImm(rOuter, 1)
	b.Label("outer")
	b.MovImm(rAcc, 0) // carry
	for i := 0; i < limbs; i++ {
		b.MovImm(rPtr, abase+uint64(i*8))
		b.Ldr(rTmp, rPtr, 0, 3) // a[i]: fixed value and address
		b.MovImm(rPtr2, rbase+uint64(i*8))
		b.Ldr(rTmp2, rPtr2, 0, 3) // res[i]: fresh value each pass
		b.Madd(rTmp2, rTmp, rOuter, rTmp2)
		b.Add(rTmp2, rTmp2, rAcc)
		b.OpImm(isa.LSRI, rAcc, rTmp2, 48) // carry chain serialises the pass
		b.Str(rTmp2, rPtr2, 0, 3)
	}
	// Reduction padding: independent register arithmetic that widens the
	// pass without joining the carry chain, bounding the relative benefit
	// of predicting the limb loads the way real modular reduction would.
	b.MovImm(rInner, 2)
	b.Label("reduce")
	b.Op3(isa.EOR, isa.Reg(4), rAcc, rInner)
	b.OpImm(isa.LSLI, isa.Reg(5), isa.Reg(4), 3)
	b.Op3(isa.ORR, isa.Reg(6), isa.Reg(5), rAcc)
	b.OpImm(isa.LSRI, isa.Reg(7), isa.Reg(6), 2)
	b.Op3(isa.AND, isa.Reg(8), isa.Reg(7), isa.Reg(4))
	b.OpImm(isa.EORI, isa.Reg(9), isa.Reg(8), 0x3c)
	b.SubI(rInner, rInner, 1)
	b.Cbnz(rInner, "reduce")
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}

// buildBrowsermark: alternates a small layout-tree walk with style-table
// lookups and a layout accumulator — a mixed, mildly predictable blend.
func buildBrowsermark() *program.Program {
	b := program.NewBuilder("browsermark")
	const nodes = 16
	const nodeWords = 2
	base := b.Alloc("dom", nodes*nodeWords*8)
	b.SetWords("dom", linkedListWords(0xb2, base, nodes, nodeWords))
	b.AllocWords("styles", smallWords(0xb3, 32, 6))
	b.AllocWords("layout", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("outer")
	b.MovImm(rPtr, base)
	for i := 0; i < 6; i++ {
		b.Ldr(rTmp, rPtr, 8, 3) // node style id
		b.MovSym(rPtr2, "styles")
		b.OpImm(isa.ANDI, rTmp, rTmp, 31)
		b.LdrIdx(rTmp2, rPtr2, rTmp, 3, 3) // style value (small value set)
		b.Add(rAcc, rAcc, rTmp2)
		b.Ldr(rPtr, rPtr, 0, 3) // next node
	}
	b.AddI(rOuter, rOuter, 1)
	// Spill the layout accumulator once per 16 frames.
	b.OpImm(isa.ANDI, rTmp, rOuter, 15)
	b.Cbnz(rTmp, "outer")
	b.MovSym(rPtr3, "layout")
	b.Str(rAcc, rPtr3, 0, 3)
	b.Br("outer")
	return b.Build()
}
