// Package workloads provides the benchmark kernels standing in for the
// paper's SPEC2K / SPEC2K6 / EEMBC / JavaScript / application pool
// (Table 3). The proprietary ARM binaries are not reproducible, so each
// kernel is a mini-ISA program engineered to exhibit one or more of the
// load/store phenomena the paper's evaluation turns on:
//
//   - temporal address locality (PAP/CAP fodder),
//   - Load → Store → Load conflicts with committed stores (the DLVP
//     headline case: values change, addresses do not),
//   - conflicts with in-flight stores (the LSCD case),
//   - value repeatability exceeding address repeatability (VTAGE-friendly),
//   - ARM-style multi-destination loads: LDP, LDM, VLD (the VTAGE
//     storage-inefficiency case),
//   - path-correlated loads reached through shared helpers (what
//     distinguishes PAP's global load-path history from CAP's per-load
//     context),
//   - pointer chasing, indirect dispatch, strided streaming.
//
// Kernels run in an infinite outer loop; callers bound execution with the
// emulator's MaxInstrs.
package workloads

import (
	"fmt"
	"sort"

	"dlvp/internal/emu"
	"dlvp/internal/program"
	"dlvp/internal/trace"
)

// Workload is one named benchmark kernel.
type Workload struct {
	Name  string
	Suite string // spec2k, spec2k6, eembc, js, app
	// Description states which phenomena the kernel exercises.
	Description string
	Build       func() *program.Program
}

var registry []Workload

func register(w Workload) {
	for _, r := range registry {
		if r.Name == w.Name {
			panic(fmt.Sprintf("workloads: duplicate workload %q", w.Name))
		}
	}
	registry = append(registry, w)
}

// All returns every registered workload, sorted by suite then name.
func All() []Workload {
	out := make([]Workload, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Names returns the sorted workload names.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	for _, w := range registry {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// CPU returns a fresh functional emulator for w bounded to maxInstrs
// dynamic instructions (callers that need the concrete emulator — e.g.
// to snapshot checkpoints off the stream — use this; Reader is the
// interface view).
func (w Workload) CPU(maxInstrs uint64) *emu.CPU {
	cpu := emu.New(w.Build())
	cpu.MaxInstrs = maxInstrs
	return cpu
}

// Reader returns a fresh functional stream for w bounded to maxInstrs
// dynamic instructions.
func (w Workload) Reader(maxInstrs uint64) trace.Reader {
	return w.CPU(maxInstrs)
}

// --- deterministic data generators ------------------------------------------

type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	s := seed ^ 0x2545f4914f6cdd1d
	if s == 0 {
		// xorshift is a linear map with 0 as a fixed point: the seed equal
		// to the mixing constant would otherwise produce all-zero output
		// (degenerate data arrays, identity "permutations") forever.
		s = 0x9e3779b97f4a7c15
	}
	return &rng{s: s}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// randWords returns n pseudo-random 64-bit words.
func randWords(seed uint64, n int) []uint64 {
	r := newRng(seed)
	w := make([]uint64, n)
	for i := range w {
		w[i] = r.next()
	}
	return w
}

// smallWords returns n words drawn from a tiny value set (high value
// repeatability with varying addresses — the VTAGE-friendly shape).
func smallWords(seed uint64, n, distinct int) []uint64 {
	r := newRng(seed)
	w := make([]uint64, n)
	for i := range w {
		w[i] = uint64(r.intn(distinct))
	}
	return w
}

// permutation returns a pseudo-random permutation of 0..n-1.
func permutation(seed uint64, n int) []uint64 {
	r := newRng(seed)
	p := make([]uint64, n)
	for i := range p {
		p[i] = uint64(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// linkedListWords lays out a singly linked list of n nodes (stride words
// apart, visiting order given by a permutation) inside a fresh symbol and
// returns the word slice plus the index of the head node. Each node is
// nodeWords 64-bit words; word 0 is the absolute address of the next node,
// remaining words are payload.
func linkedListWords(seed uint64, base uint64, n, nodeWords int) []uint64 {
	order := permutation(seed, n)
	words := make([]uint64, n*nodeWords)
	r := newRng(seed ^ 0xabcdef)
	for i := 0; i < n; i++ {
		cur := order[i]
		next := order[(i+1)%n]
		words[int(cur)*nodeWords] = base + next*uint64(nodeWords)*8
		for k := 1; k < nodeWords; k++ {
			words[int(cur)*nodeWords+k] = r.next() % 1024
		}
	}
	return words
}
