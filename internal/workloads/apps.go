package workloads

import (
	"fmt"

	"dlvp/internal/isa"
	"dlvp/internal/program"
)

func init() {
	register(Workload{
		Name:  "linpack",
		Suite: "app",
		Description: "unrolled daxpy over fixed vectors, y rewritten every " +
			"sweep: fixed addresses, fresh floating-point-ish values",
		Build: buildLinpack,
	})
	register(Workload{
		Name:  "mplayer",
		Suite: "app",
		Description: "sum-of-absolute-differences over a reference block " +
			"(VLD, constant) and a current block (VLD, rewritten per frame): " +
			"128-bit vector loads VTAGE must filter away",
		Build: buildMplayer,
	})
	register(Workload{
		Name:  "soplex",
		Suite: "spec2k6",
		Description: "sparse matrix-vector product: indirect column loads " +
			"(address-hostile) whose values are overwhelmingly a handful of " +
			"constants — the value-repeatability population (VTAGE-friendly)",
		Build: buildSoplex,
	})
	register(Workload{
		Name:  "h264ref",
		Suite: "spec2k6",
		Description: "motion-estimation stencil over a fixed search window " +
			"with vector loads; window refreshed between frames",
		Build: buildH264ref,
	})
	register(Workload{
		Name:  "libquantum",
		Suite: "spec2k6",
		Description: "strided XOR sweeps over a large state vector: " +
			"prefetcher-covered streaming where value prediction is idle",
		Build: buildLibquantum,
	})
	register(Workload{
		Name:  "omnetpp",
		Suite: "spec2k6",
		Description: "event-queue simulation: the heap head is read, " +
			"updated and re-read every event — committed conflicts on the " +
			"scheduling critical path",
		Build: buildOmnetpp,
	})
	register(Workload{
		Name:  "astar",
		Suite: "spec2k6",
		Description: "grid neighbour scans with open-list cost updates: " +
			"mixed predictability",
		Build: buildAstar,
	})
	register(Workload{
		Name:  "sjeng",
		Suite: "spec2k6",
		Description: "search with global flag loads feeding hard branches: " +
			"early value delivery resolves mispredicted branches sooner",
		Build: buildSjeng,
	})
	register(Workload{
		Name:  "hmmer",
		Suite: "spec2k6",
		Description: "dynamic-programming inner loop over a reused row " +
			"buffer: row cells rewritten each column sweep",
		Build: buildHmmer,
	})
	register(Workload{
		Name:  "milc",
		Suite: "spec2k6",
		Description: "small-matrix arithmetic through LDP on a fixed site " +
			"array, sites relinked periodically",
		Build: buildMilc,
	})
}

// buildLinpack: y[i] += a*x[i] over 24 unrolled elements; x is constant, y
// is rewritten every sweep. Each y load is a committed conflict with the
// previous sweep's store (the sweep body is ~200 instructions long).
func buildLinpack() *program.Program {
	b := program.NewBuilder("linpack")
	const n = 24
	xbase := b.AllocWords("x", randWords(0x11a, n))
	ybase := b.AllocWords("y", randWords(0x11b, n))
	b.AllocWords("a", []uint64{3})

	b.MovImm(rOuter, 0)
	b.Label("sweep")
	b.MovSym(rPtr3, "a")
	b.Ldr(rTmp2, rPtr3, 0, 3) // scalar a: fixed address and value
	for i := 0; i < n; i++ {
		b.MovImm(rPtr, xbase+uint64(i*8))
		b.Ldr(rTmp, rPtr, 0, 3) // x[i]: constant
		b.MovImm(rPtr2, ybase+uint64(i*8))
		b.Ldr(rScratch0, rPtr2, 0, 3) // y[i]: fresh every sweep
		b.Madd(rScratch0, rTmp, rTmp2, rScratch0)
		b.Str(rScratch0, rPtr2, 0, 3)
	}
	b.AddI(rOuter, rOuter, 1)
	b.Br("sweep")
	return b.Build()
}

// buildMplayer: SAD between a constant 64-byte reference block and a
// current block rewritten each frame, both read through 128-bit VLDs.
// DLVP predicts one base address per VLD; a conventional predictor needs
// two 64-bit entries and (per the paper) ends up statically filtered.
func buildMplayer() *program.Program {
	b := program.NewBuilder("mplayer")
	refBase := b.AllocWords("ref", randWords(0x3e0, 8))
	curBase := b.AllocWords("cur", randWords(0x3e1, 8))
	b.AllocWords("sad", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("frame")
	b.MovImm(rAcc, 0)
	for i := 0; i < 4; i++ {
		b.MovImm(rPtr, refBase+uint64(i*16))
		b.Vld(isa.Reg(32), isa.Reg(33), rPtr, 0)
		b.MovImm(rPtr2, curBase+uint64(i*16))
		b.Vld(isa.Reg(34), isa.Reg(35), rPtr2, 0)
		// |ref-cur| approximated with xor-popcount-ish mixing.
		b.Op3(isa.EOR, rTmp, isa.Reg(32), isa.Reg(34))
		b.Op3(isa.EOR, rTmp2, isa.Reg(33), isa.Reg(35))
		b.Add(rAcc, rAcc, rTmp)
		b.Add(rAcc, rAcc, rTmp2)
	}
	b.MovSym(rPtr3, "sad")
	b.Str(rAcc, rPtr3, 0, 3)
	// Refresh the current block (fixed addresses, fresh values), with the
	// SAD loop above separating these stores from the next frame's reads.
	for i := 0; i < 8; i++ {
		b.OpImm(isa.EORI, rAcc, rAcc, int64(0x33+i))
		b.MovImm(rPtr2, curBase+uint64(i*8))
		b.Str(rAcc, rPtr2, 0, 3)
	}
	// The reference block also drifts — one word per 8 frames, as motion
	// search moves through the reference frame — so its VLD values never
	// sit still long enough for a 64-128-observation confidence bar.
	b.OpImm(isa.ANDI, rTmp, rOuter, 7)
	b.Cbnz(rTmp, "noref")
	b.OpImm(isa.LSRI, rTmp, rOuter, 3)
	b.OpImm(isa.ANDI, rTmp, rTmp, 7)
	b.OpImm(isa.LSLI, rTmp, rTmp, 3)
	b.MovImm(rPtr, refBase)
	b.Add(rPtr, rPtr, rTmp)
	b.Ldr(rTmp2, rPtr, 0, 3)
	b.OpImm(isa.EORI, rTmp2, rTmp2, 0x99)
	b.Str(rTmp2, rPtr, 0, 3)
	b.Label("noref")
	b.AddI(rOuter, rOuter, 1)
	b.Br("frame")
	return b.Build()
}

// buildSoplex: y += A[j]*x[col[j]] over a sparse row whose values are 90%
// drawn from {0,1}: the column-indirect loads are address-hostile but
// value-friendly, the population where VTAGE out-covers DLVP.
func buildSoplex() *program.Program {
	b := program.NewBuilder("soplex")
	const nnz = 4096
	r := newRng(0x50e)
	vals := make([]uint64, nnz)
	for i := range vals {
		if r.intn(10) < 9 {
			vals[i] = uint64(r.intn(2))
		} else {
			vals[i] = r.next() % 997
		}
	}
	// Sparsify: long zero runs make the value stream last-value-predictable
	// (a sparse matrix is mostly zeros), which is precisely what a VTAGE
	// covers and an address predictor cannot.
	for i := range vals {
		if i%97 != 0 {
			vals[i] = 0
		}
	}
	b.AllocWords("vals", vals)
	cols := make([]uint64, nnz)
	for i := range cols {
		cols[i] = uint64(r.intn(512))
	}
	b.AllocWords("cols", cols)
	b.AllocWords("xvec", randWords(0x50f, 512))
	b.AllocWords("yacc", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("outer")
	b.MovSym(rPtr, "vals")
	b.MovSym(rPtr2, "cols")
	b.MovSym(rPtr3, "xvec")
	b.OpImm(isa.ANDI, rInner, rOuter, nnz-256)
	b.MovImm(rTmp2, 256)
	b.MovImm(rAcc, 0) // row accumulator stays in a register
	b.Label("row")
	b.LdrIdx(rTmp, rPtr, rInner, 3, 3)          // A[j]: mostly-zero values
	b.LdrIdx(rScratch0, rPtr2, rInner, 3, 3)    // col[j]
	b.LdrIdx(rScratch0, rPtr3, rScratch0, 3, 3) // x[col[j]]: indirect
	b.Madd(rAcc, rTmp, rScratch0, rAcc)
	b.AddI(rInner, rInner, 1)
	b.SubI(rTmp2, rTmp2, 1)
	b.Cbnz(rTmp2, "row")
	b.MovSym(rTmp, "yacc")
	b.Str(rAcc, rTmp, 0, 3) // one spill per 256-element row
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}

// buildH264ref: 16 unrolled stencil taps over a fixed search window read
// with VLD, window refreshed every 8 frames.
func buildH264ref() *program.Program {
	b := program.NewBuilder("h264ref")
	wbase := b.AllocWords("window", randWords(0x264, 32))
	b.AllocWords("best", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("frame")
	b.MovImm(rAcc, 0)
	for i := 0; i < 8; i++ {
		b.MovImm(rPtr, wbase+uint64(i*32))
		b.Vld(isa.Reg(36), isa.Reg(37), rPtr, 0)
		b.Op3(isa.EOR, rTmp, isa.Reg(36), isa.Reg(37))
		b.OpImm(isa.LSRI, rTmp2, rTmp, 7)
		b.Add(rAcc, rAcc, rTmp2)
	}
	b.MovSym(rPtr3, "best")
	b.Str(rAcc, rPtr3, 0, 3)
	b.AddI(rOuter, rOuter, 1)
	// Refresh half the window every 8 frames.
	b.OpImm(isa.ANDI, rTmp, rOuter, 7)
	b.Cbnz(rTmp, "frame")
	for i := 0; i < 16; i++ {
		b.OpImm(isa.EORI, rAcc, rAcc, int64(0x101+i))
		b.MovImm(rPtr, wbase+uint64(i*8))
		b.Str(rAcc, rPtr, 0, 3)
	}
	b.Br("frame")
	return b.Build()
}

// buildLibquantum: XOR a constant into every 8th word of a 512KB state
// vector — pure streaming the stride prefetcher absorbs; value predictors
// find nothing durable.
func buildLibquantum() *program.Program {
	b := program.NewBuilder("libquantum")
	const words = 64 * 1024
	b.AllocWords("state", randWords(0x11b1, words))

	b.MovImm(rOuter, 0)
	b.Label("sweep")
	b.MovSym(rPtr, "state")
	b.OpImm(isa.ANDI, rTmp, rOuter, 7)
	b.OpImm(isa.LSLI, rTmp, rTmp, 3)
	b.Add(rPtr, rPtr, rTmp)
	b.MovImm(rInner, 512)
	b.Label("gate")
	b.Ldr(rTmp2, rPtr, 0, 3)
	b.OpImm(isa.EORI, rTmp2, rTmp2, 0x5a5a)
	b.Str(rTmp2, rPtr, 0, 3)
	b.AddI(rPtr, rPtr, 64)
	b.SubI(rInner, rInner, 1)
	b.Cbnz(rInner, "gate")
	b.AddI(rOuter, rOuter, 1)
	b.Br("sweep")
	return b.Build()
}

// buildOmnetpp: a 15-entry array heap of event timestamps; every event pops
// the head (load), schedules a follow-up (store into the heap), and
// sift-downs one level. The head cell's address never changes; its value
// changes every event, and a full event (~60 instructions through two
// levels of children) separates the rewrite from the next read.
func buildOmnetpp() *program.Program {
	b := program.NewBuilder("omnetpp")
	const n = 15
	b.AllocWords("heap", smallWords(0x03e7, n, 100))
	b.AllocWords("clock", []uint64{0})

	heap := b.Sym("heap")
	b.MovImm(rOuter, 0)
	b.Label("event")
	b.MovImm(rPtr, heap)
	b.Ldr(rAcc, rPtr, 0, 3) // heap head: stable address, fresh value
	b.MovSym(rPtr2, "clock")
	b.Ldr(rTmp, rPtr2, 0, 3)
	b.Add(rTmp, rTmp, rAcc)
	b.Str(rTmp, rPtr2, 0, 3) // advance the clock by the event delta
	// Schedule a follow-up: head = f(clock), then one sift-down level.
	b.OpImm(isa.ANDI, rScratch0, rTmp, 127)
	b.AddI(rScratch0, rScratch0, 1)
	b.Str(rScratch0, rPtr, 0, 3)
	// Compare with both children (fixed addresses), swap with the smaller.
	b.Ldr(rTmp, rPtr, 8, 3)   // child 1
	b.Ldr(rTmp2, rPtr, 16, 3) // child 2
	b.CondBr(isa.BLTU, rTmp, rTmp2, "left")
	b.Nop()
	b.Ldr(rScratch0, rPtr, 0, 3)
	b.Str(rTmp2, rPtr, 0, 3)
	b.Str(rScratch0, rPtr, 16, 3)
	b.Br("sifted")
	b.Label("left")
	b.Ldr(rScratch0, rPtr, 0, 3)
	b.Str(rTmp, rPtr, 0, 3)
	b.Str(rScratch0, rPtr, 8, 3)
	b.Label("sifted")
	// Padding work so successive events sit farther apart than the window.
	b.MovImm(rInner, 24)
	b.Label("pad")
	b.Madd(rAcc, rAcc, rTmp, rTmp2)
	b.OpImm(isa.LSRI, rTmp2, rAcc, 9)
	b.SubI(rInner, rInner, 1)
	b.Cbnz(rInner, "pad")
	b.AddI(rOuter, rOuter, 1)
	b.Br("event")
	return b.Build()
}

// buildAstar: scans the four neighbours of a cursor cell in a 32x32 grid,
// relaxing open-list costs; the cursor walks a fixed tour.
func buildAstar() *program.Program {
	b := program.NewBuilder("astar")
	const dim = 32
	b.AllocWords("grid", smallWords(0xa5,
		dim*dim, 16))
	b.AllocWords("tour", permutation(0xa51, dim*dim))
	b.AllocWords("pathcost", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("step")
	b.MovSym(rPtr2, "tour")
	b.OpImm(isa.ANDI, rTmp, rOuter, dim*dim-1)
	b.LdrIdx(rInner, rPtr2, rTmp, 3, 3) // cursor cell index
	b.MovSym(rPtr, "grid")
	b.LdrIdx(rAcc, rPtr, rInner, 3, 3) // cell cost
	for _, d := range []int64{1, -1, dim, -dim} {
		b.AddI(rTmp2, rInner, d)
		b.OpImm(isa.ANDI, rTmp2, rTmp2, dim*dim-1)
		b.LdrIdx(rScratch0, rPtr, rTmp2, 3, 3) // neighbour cost
		b.Add(rAcc, rAcc, rScratch0)
	}
	b.OpImm(isa.LSRI, rAcc, rAcc, 2)
	b.StrIdx(rAcc, rPtr, rInner, 3, 3)    // relax the cursor cell
	b.Add(isa.Reg(19), isa.Reg(19), rAcc) // path cost rides in a register
	b.AddI(rOuter, rOuter, 1)
	b.OpImm(isa.ANDI, rTmp, rOuter, 31)
	b.Cbnz(rTmp, "step")
	b.MovSym(rPtr3, "pathcost")
	b.Str(isa.Reg(19), rPtr3, 0, 3) // spill every 32 steps
	b.Br("step")
	return b.Build()
}

// buildSjeng: evaluates positions gated by four global flags that feed
// hard-to-predict branches; the flags are recomputed from search state
// every pass, so a predicted flag load resolves its branch early.
func buildSjeng() *program.Program {
	b := program.NewBuilder("sjeng")
	b.AllocWords("flags", []uint64{1, 0, 1, 0})
	b.AllocWords("boards", randWords(0x57e, 64))
	b.AllocWords("nodes", []uint64{0})

	flags := b.Sym("flags")
	b.MovImm(rOuter, 0)
	b.Label("search")
	b.MovImm(rAcc, 0)
	for f := 0; f < 4; f++ {
		b.MovImm(rPtr, flags+uint64(f*8))
		b.Ldr(rTmp, rPtr, 0, 3) // flag load feeds the branch directly
		b.Cbz(rTmp, fmt.Sprintf("off_%d", f))
		b.MovSym(rPtr2, "boards")
		b.OpImm(isa.ANDI, rTmp2, rOuter, 63)
		b.LdrIdx(rTmp2, rPtr2, rTmp2, 3, 3)
		b.Op3(isa.EOR, rAcc, rAcc, rTmp2)
		if f%2 == 0 {
			b.Nop()
		}
		b.Label(fmt.Sprintf("off_%d", f))
	}
	b.MovSym(rPtr3, "nodes")
	b.Ldr(rTmp, rPtr3, 0, 3)
	b.AddI(rTmp, rTmp, 1)
	b.Str(rTmp, rPtr3, 0, 3)
	// Recompute the flags from the accumulated evaluation (fixed
	// addresses, data-dependent fresh values).
	for f := 0; f < 4; f++ {
		b.OpImm(isa.LSRI, rTmp2, rAcc, int64(3+2*f))
		b.OpImm(isa.ANDI, rTmp2, rTmp2, 1)
		b.MovImm(rPtr, flags+uint64(f*8))
		b.Str(rTmp2, rPtr, 0, 3)
	}
	// Spacer computation pushes the next pass's flag loads beyond the
	// in-flight window of these stores.
	b.MovImm(rInner, 20)
	b.Label("spin")
	b.Madd(rAcc, rAcc, rAcc, rTmp)
	b.OpImm(isa.LSRI, rAcc, rAcc, 3)
	b.SubI(rInner, rInner, 1)
	b.Cbnz(rInner, "spin")
	b.AddI(rOuter, rOuter, 1)
	b.Br("search")
	return b.Build()
}

// buildHmmer: one dynamic-programming row of 16 cells, fully unrolled; each
// cell reads its left neighbour (register), the row above (memory, fixed
// address, rewritten last sweep) and a transition score (constant).
func buildHmmer() *program.Program {
	b := program.NewBuilder("hmmer")
	const cells = 16
	rowBase := b.AllocWords("row", randWords(0x881, cells))
	trBase := b.AllocWords("tr", smallWords(0x882, cells, 12))

	b.MovImm(rOuter, 0)
	b.Label("sweep")
	b.MovImm(rAcc, 0) // left neighbour
	for i := 0; i < cells; i++ {
		b.MovImm(rPtr, rowBase+uint64(i*8))
		b.Ldr(rTmp, rPtr, 0, 3) // row[i] from the previous sweep
		b.MovImm(rPtr2, trBase+uint64(i*8))
		b.Ldr(rTmp2, rPtr2, 0, 3) // transition score (constant)
		b.Add(rScratch0, rTmp, rTmp2)
		b.CondBr(isa.BGEU, rScratch0, rAcc, fmt.Sprintf("keep_%d", i))
		b.Op3(isa.ORR, rScratch0, rAcc, isa.XZR)
		b.Label(fmt.Sprintf("keep_%d", i))
		b.Str(rScratch0, rPtr, 0, 3) // rewrite row[i] for the next sweep
		b.Op3(isa.ORR, rAcc, rScratch0, isa.XZR)
	}
	b.AddI(rOuter, rOuter, 1)
	b.Br("sweep")
	return b.Build()
}

// buildMilc: 3x3-ish complex matrix updates through LDP over a fixed site
// array; every 64 sweeps the site order is rotated by one (stores).
func buildMilc() *program.Program {
	b := program.NewBuilder("milc")
	const sites = 8
	base := b.AllocWords("sites", randWords(0x31c, sites*4))
	b.AllocWords("plaq", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("sweep")
	b.MovImm(rAcc, 0)
	for s := 0; s < sites; s++ {
		b.MovImm(rPtr, base+uint64(s*32))
		b.Ldp(rTmp, rTmp2, rPtr, 0)
		b.Ldp(isa.Reg(4), isa.Reg(5), rPtr, 16)
		b.Madd(rAcc, rTmp, isa.Reg(4), rAcc)
		b.Op3(isa.EOR, rAcc, rAcc, rTmp2)
		b.Add(rAcc, rAcc, isa.Reg(5))
	}
	b.MovSym(rPtr3, "plaq")
	b.Str(rAcc, rPtr3, 0, 3)
	b.AddI(rOuter, rOuter, 1)
	// Relink every 8 sweeps: each site's values persist ~64 sweeps, below
	// the 64-128 observations a VTAGE-class predictor needs for confidence,
	// while the APT re-trains within ~8.
	b.OpImm(isa.ANDI, rTmp, rOuter, 7)
	b.Cbnz(rTmp, "sweep")
	// Rotate one site's matrix (fixed addresses, fresh values).
	b.OpImm(isa.LSRI, rTmp, rOuter, 3)
	b.OpImm(isa.ANDI, rTmp, rTmp, sites-1)
	b.OpImm(isa.LSLI, rTmp, rTmp, 5)
	b.MovImm(rPtr, base)
	b.Add(rPtr, rPtr, rTmp)
	b.Ldp(rTmp, rTmp2, rPtr, 0)
	b.OpImm(isa.EORI, rTmp, rTmp, 0x6a)
	b.Stp(rTmp2, rTmp, rPtr, 0)
	b.Br("sweep")
	return b.Build()
}
