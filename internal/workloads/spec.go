package workloads

import (
	"fmt"

	"dlvp/internal/isa"
	"dlvp/internal/program"
)

// Register conventions shared by the kernels: x0-x19 scratch, x20-x25
// persistent pointers/state, x26 outer iteration counter, x27 inner loop
// counter, x28 stack pointer (set by the emulator).
const (
	rScratch0 = isa.Reg(0)
	rPtr      = isa.Reg(20)
	rPtr2     = isa.Reg(21)
	rPtr3     = isa.Reg(22)
	rAcc      = isa.Reg(23)
	rTmp      = isa.Reg(24)
	rTmp2     = isa.Reg(25)
	rOuter    = isa.Reg(26)
	rInner    = isa.Reg(27)
)

func init() {
	register(Workload{
		Name:  "perlbmk",
		Suite: "spec2k",
		Description: "interpreter-style unrolled pointer chase over a fixed " +
			"chain with periodic re-linking and value-dependent branches: " +
			"serial load chains that address prediction collapses (the " +
			"paper's 71% headline case)",
		Build: buildPerlbmk,
	})
	register(Workload{
		Name:  "gcc",
		Suite: "spec2k",
		Description: "binary-tree descent with separate left/right load PCs: " +
			"the load-path history encodes the descent path, so PAP " +
			"disambiguates tree positions a PC-only predictor cannot",
		Build: buildGcc,
	})
	register(Workload{
		Name:  "bzip2",
		Suite: "spec2k",
		Description: "byte-frequency counting with read-modify-write counter " +
			"updates: committed Load→Store→Load conflicts and a large " +
			"footprint that doubles TLB pressure under DLVP (Figure 9)",
		Build: buildBzip2,
	})
	register(Workload{
		Name:  "mcf",
		Suite: "spec2k",
		Description: "linked-list scan updating node costs in place: " +
			"committed-store conflicts on pointer-stable addresses",
		Build: buildMcf,
	})
	register(Workload{
		Name:  "gap",
		Suite: "spec2k",
		Description: "stack-machine push/pop with post-indexed stores and " +
			"loads in tight succession: in-flight store conflicts that " +
			"only the LSCD can filter",
		Build: buildGap,
	})
	register(Workload{
		Name:  "vortex",
		Suite: "spec2k",
		Description: "database-record copies through load-pair/store-pair: " +
			"multi-destination loads that cost VTAGE two entries per LDP",
		Build: buildVortex,
	})
	register(Workload{
		Name:  "crafty",
		Suite: "spec2k",
		Description: "game-tree context save/restore via load-multiple (LDM): " +
			"the ARM storage-inefficiency case for conventional value " +
			"predictors",
		Build: buildCrafty,
	})
	register(Workload{
		Name:  "twolf",
		Suite: "spec2k",
		Description: "placement cost lookups at pseudo-random table indices: " +
			"low address and value repeatability — a coverage/accuracy " +
			"stress for every predictor",
		Build: buildTwolf,
	})
	register(Workload{
		Name:  "parser",
		Suite: "spec2k",
		Description: "byte-granularity token scanning with small-table " +
			"classification: sub-word loads and stable table addresses",
		Build: buildParser,
	})
	register(Workload{
		Name:  "gzip",
		Suite: "spec2k",
		Description: "sliding-window match copying: strided streams the " +
			"baseline prefetcher covers, with window-update stores",
		Build: buildGzip,
	})
}

// buildPerlbmk: an unrolled 12-slot chase over a 16-node chain. Every node
// visit loads the next pointer and a payload; the payload feeds a dependent
// branch. Every 32 outer passes two chain links are swapped (stores),
// invalidating the learned next-pointers: PAP retrains in ~8 observations,
// VTAGE in ~64-128 — the training-time gap the paper exploits.
func buildPerlbmk() *program.Program {
	b := program.NewBuilder("perlbmk")
	const nodes = 16
	const nodeWords = 2
	base := b.Alloc("chain", nodes*nodeWords*8)
	b.SetWords("chain", linkedListWords(0x1, base, nodes, nodeWords))
	b.AllocWords("sum", []uint64{0})
	b.AllocWords("odds", []uint64{0})

	b.MovSym(rPtr2, "sum")
	b.MovSym(rPtr3, "odds")
	b.MovImm(rOuter, 0)
	b.Label("outer")
	b.MovSym(rPtr, "chain")
	// Prior sum feeds this iteration: a committed Load→Store→Load conflict.
	b.Ldr(rAcc, rPtr2, 0, 3)
	b.MovImm(rInner, 0) // odd-payload count, kept in a register
	for i := 0; i < 12; i++ {
		skip := fmt.Sprintf("skip_%d", i)
		b.Ldr(rTmp, rPtr, 8, 3) // payload
		b.Add(rAcc, rAcc, rTmp) // serial accumulate
		b.OpImm(isa.ANDI, rTmp2, rTmp, 1)
		b.Cbz(rTmp2, skip)
		b.AddI(rInner, rInner, 1)
		b.Label(skip)
		b.Ldr(rPtr, rPtr, 0, 3) // chase: serial dependence
	}
	b.Str(rAcc, rPtr2, 0, 3)
	b.Ldr(rScratch0, rPtr3, 0, 3) // odds total (conflicts with its own store)
	b.Add(rScratch0, rScratch0, rInner)
	b.Str(rScratch0, rPtr3, 0, 3)
	b.AddI(rOuter, rOuter, 1)
	// Every 32 passes, swap the successors of a rotating pair of nodes.
	// Each swap re-routes two chase slots: PAP re-trains them in ~8
	// observations while a VTAGE-class predictor needs 64-128, so the
	// chain is covered by address prediction most of the time and by
	// value prediction only in the gaps — the paper's training-time gap.
	b.OpImm(isa.ANDI, rTmp, rOuter, 31)
	b.Cbnz(rTmp, "outer")
	b.OpImm(isa.LSRI, rTmp, rOuter, 5)
	b.OpImm(isa.ANDI, rTmp, rTmp, 7) // rotating pair index k = 0..7
	b.OpImm(isa.LSLI, rTmp, rTmp, 4) // k * nodeWords * 8
	b.MovImm(rTmp2, base)
	b.Add(rTmp2, rTmp2, rTmp) // &node[k]
	b.Ldr(rScratch0, rTmp2, 0, 3)
	b.Ldr(rTmp, rTmp2, 3*nodeWords*8, 3) // &node[k+3].next
	b.Str(rTmp, rTmp2, 0, 3)
	b.Str(rScratch0, rTmp2, 3*nodeWords*8, 3)
	b.Br("outer")
	return b.Build()
}

// buildGcc: repeated descents of a fixed 127-node binary search tree laid
// out as records {key, left, right, payload}. Left and right child loads
// are distinct static loads, so the global load-path history encodes the
// root-to-node path.
func buildGcc() *program.Program {
	b := program.NewBuilder("gcc")
	const n = 127
	const nodeWords = 4
	base := b.Alloc("tree", n*nodeWords*8)
	words := make([]uint64, n*nodeWords)
	// Heap layout: node i has children 2i+1, 2i+2; keys in BST order via
	// in-order numbering.
	var number func(i, lo int) int
	keys := make([]int, n)
	number = func(i, lo int) int {
		if i >= n {
			return lo
		}
		lo = number(2*i+1, lo)
		keys[i] = lo
		lo++
		return number(2*i+2, lo)
	}
	number(0, 0)
	addr := func(i int) uint64 { return base + uint64(i*nodeWords*8) }
	for i := 0; i < n; i++ {
		words[i*nodeWords] = uint64(keys[i])
		if 2*i+1 < n {
			words[i*nodeWords+1] = addr(2*i + 1)
			words[i*nodeWords+2] = addr(2*i + 2)
		} else {
			words[i*nodeWords+1] = addr(i) // leaves self-link
			words[i*nodeWords+2] = addr(i)
		}
		words[i*nodeWords+3] = uint64(keys[i]) * 3
	}
	b.SetWords("tree", words)
	// A fixed cycle of 8 lookup targets keeps the descent paths repeatable.
	targets := []uint64{5, 99, 42, 17, 111, 63, 3, 78}
	b.AllocWords("targets", targets)
	b.AllocWords("found", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("outer")
	b.MovSym(rTmp2, "targets")
	b.OpImm(isa.ANDI, rTmp, rOuter, 7)
	b.LdrIdx(rTmp2, rTmp2, rTmp, 3, 3) // target key
	b.MovImm(rPtr, addr(0))
	b.MovImm(rInner, 7) // tree depth
	b.Label("walk")
	b.Ldr(rScratch0, rPtr, 0, 3) // key
	b.CondBr(isa.BLT, rScratch0, rTmp2, "goright")
	b.Ldr(rPtr, rPtr, 8, 3) // left child (static load A)
	b.Br("walked")
	b.Label("goright")
	// The nop keeps the right-child load's PC bit 2 different from the
	// left-child load's: load-path history shifts in exactly that bit, so
	// without the alignment difference the descent path would be invisible
	// to PAP. (Real code gets this variety for free from its layout.)
	b.Nop()
	b.Ldr(rPtr, rPtr, 16, 3) // right child (static load B)
	b.Label("walked")
	b.SubI(rInner, rInner, 1)
	b.Cbnz(rInner, "walk")
	b.Ldr(rAcc, rPtr, 24, 3) // payload at the reached node
	b.MovSym(rTmp, "found")
	b.Ldr(rScratch0, rTmp, 0, 3)
	b.Add(rScratch0, rScratch0, rAcc)
	b.Str(rScratch0, rTmp, 0, 3)
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}

// buildBzip2: frequency counting over a repeating 4KB byte stream into a
// 256-entry counter table — every counter update is a committed
// Load→Store→Load conflict — followed by a block shuffle over a large
// (1MB) permutation array for TLB pressure.
func buildBzip2() *program.Program {
	b := program.NewBuilder("bzip2")
	const dataLen = 4096
	data := make([]byte, dataLen)
	r := newRng(0xb21)
	// Compressible input: runs of 3-9 identical bytes. The counter loads
	// then see short address runs — long enough to bait a low-confidence
	// predictor (CAP at confidence 3) into gambling at run boundaries,
	// rarely long enough for an FPC-8 predictor to engage.
	for i := 0; i < dataLen; {
		v := byte(r.intn(64))
		run := 3 + r.intn(7)
		for j := 0; j < run && i < dataLen; j++ {
			data[i] = v
			i++
		}
	}
	b.AllocInit("data", data)
	b.Alloc("counts", 256*8)
	const permN = 128 * 1024 // 1MB of words
	b.AllocWords("perm", permutation(0xb22, permN))

	b.MovImm(rOuter, 0)
	b.Label("outer")
	// Phase 1: count frequencies of a 256-byte window.
	b.MovSym(rPtr, "data")
	b.OpImm(isa.ANDI, rTmp, rOuter, dataLen/256-1)
	b.OpImm(isa.LSLI, rTmp, rTmp, 8)
	b.Add(rPtr, rPtr, rTmp)
	b.MovSym(rPtr2, "counts")
	b.MovImm(rInner, 256)
	b.Label("count")
	b.Ldr(rScratch0, rPtr, 0, 0) // byte load
	b.AddI(rPtr, rPtr, 1)
	b.LdrIdx(rTmp2, rPtr2, rScratch0, 3, 3) // counts[c]  (conflict load)
	b.AddI(rTmp2, rTmp2, 1)
	b.StrIdx(rTmp2, rPtr2, rScratch0, 3, 3) // counts[c]++
	b.SubI(rInner, rInner, 1)
	b.Cbnz(rInner, "count")
	// Phase 2: chase the large permutation for 64 steps (TLB pressure).
	b.MovSym(rPtr3, "perm")
	b.OpImm(isa.ANDI, rAcc, rOuter, permN-1)
	b.MovImm(rInner, 64)
	b.Label("shuffle")
	b.LdrIdx(rAcc, rPtr3, rAcc, 3, 3) // acc = perm[acc]
	b.SubI(rInner, rInner, 1)
	b.Cbnz(rInner, "shuffle")
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}

// buildMcf: scans a fixed arc list while re-reading solver parameters from
// globals every step — the common compiled-code shape where the chase loads
// are unpredictable but the surrounding scalar loads are rock-stable. The
// parameter cells are rewritten every pass, so their *values* keep changing
// while their addresses never do: address prediction keeps covering them,
// last-value-style prediction keeps going stale (the paper's Challenge #1).
func buildMcf() *program.Program {
	b := program.NewBuilder("mcf")
	const nodes = 64
	const nodeWords = 4 // next, cost, flow, cap
	base := b.Alloc("arcs", nodes*nodeWords*8)
	b.SetWords("arcs", linkedListWords(0x3c0, base, nodes, nodeWords))
	b.AllocWords("alpha", []uint64{3})
	b.AllocWords("beta", []uint64{5})
	b.AllocWords("total", []uint64{0})

	b.AllocWords("weights", randWords(0x3c1, 8))
	b.MovSym(rPtr2, "alpha")
	b.MovSym(rPtr3, "beta")
	b.MovImm(rOuter, 0)
	b.Label("outer")
	// Rewrite the parameter cells at the *start* of the pass; the chase
	// below puts hundreds of instructions between these stores and the
	// parameter reloads, so the stores have committed by the time DLVP
	// probes — the committed-conflict case value predictors lose and
	// address predictors win.
	b.AddI(rScratch0, rOuter, 3)
	b.Str(rScratch0, rPtr2, 0, 3)
	b.Op3(isa.EOR, rTmp2, rOuter, rScratch0)
	b.OpImm(isa.ORRI, rTmp2, rTmp2, 1)
	b.Str(rTmp2, rPtr3, 0, 3)
	// Chase the arc list (loop-carried addresses: honestly unpredictable).
	b.MovImm(rPtr, base)
	b.MovImm(rAcc, 0)
	b.MovImm(rInner, nodes)
	b.Label("scan")
	b.Ldr(rTmp, rPtr, 8, 3) // arc cost
	b.Add(rAcc, rAcc, rTmp)
	b.AddI(rTmp, rTmp, 3)
	b.Str(rTmp, rPtr, 8, 3) // cost update for the next pass (committed conflict)
	b.Ldr(rPtr, rPtr, 0, 3) // next arc
	b.SubI(rInner, rInner, 1)
	b.Cbnz(rInner, "scan")
	// Evaluation: unrolled, address-stable reloads of the parameters and a
	// fixed weight table (values drift pass to pass; addresses never do).
	wbase := b.Sym("weights")
	for i := 0; i < 8; i++ {
		b.Ldr(rScratch0, rPtr2, 0, 3) // alpha
		b.Ldr(rTmp2, rPtr3, 0, 3)     // beta
		b.MovImm(rTmp, wbase+uint64(i*8))
		b.Ldr(rTmp, rTmp, 0, 3) // weights[i]
		b.Madd(rAcc, rScratch0, rTmp, rTmp2)
	}
	b.MovSym(rTmp, "total")
	b.Str(rAcc, rTmp, 0, 3)
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}

// buildGap: a stack interpreter pushing and popping operands with
// post-indexed stores/loads. Pops consume values pushed a handful of
// instructions earlier: the stores are still in flight when DLVP would
// probe, so only the LSCD avoids chronic value mispredictions.
func buildGap() *program.Program {
	b := program.NewBuilder("gap")
	b.Alloc("stack", 4096)
	b.AllocWords("result", []uint64{0})

	b.MovImm(rOuter, 1)
	b.Label("outer")
	b.MovSym(rPtr, "stack")
	// push outer, push outer*2, push outer+7
	b.Emit(isa.Inst{Op: isa.STRPOST, Rt: rOuter, Rn: rPtr, Imm: 8, Size: 3})
	b.OpImm(isa.LSLI, rTmp, rOuter, 1)
	b.Emit(isa.Inst{Op: isa.STRPOST, Rt: rTmp, Rn: rPtr, Imm: 8, Size: 3})
	b.AddI(rTmp, rOuter, 7)
	b.Emit(isa.Inst{Op: isa.STRPOST, Rt: rTmp, Rn: rPtr, Imm: 8, Size: 3})
	// pop a, pop b, pop c -> result += a + b*c  (pops hit in-flight pushes)
	b.SubI(rPtr, rPtr, 8)
	b.Ldr(rTmp, rPtr, 0, 3)
	b.SubI(rPtr, rPtr, 8)
	b.Ldr(rTmp2, rPtr, 0, 3)
	b.SubI(rPtr, rPtr, 8)
	b.Ldr(rScratch0, rPtr, 0, 3)
	b.Madd(rAcc, rTmp, rTmp2, rScratch0)
	b.MovSym(rPtr2, "result")
	b.Ldr(rScratch0, rPtr2, 0, 3)
	b.Add(rScratch0, rScratch0, rAcc)
	b.Str(rScratch0, rPtr2, 0, 3)
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}

// buildVortex: validates a fixed set of eight hot database records through
// unrolled load-pair accesses (stable addresses, one APT entry per LDP but
// two VTAGE entries each), then updates one record per pass so values keep
// drifting under the stable addresses.
func buildVortex() *program.Program {
	b := program.NewBuilder("vortex")
	const recs = 8
	base := b.AllocWords("hot", randWords(0x40, recs*2))
	b.AllocWords("check", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("outer")
	b.MovImm(rAcc, 0)
	for i := 0; i < recs; i++ {
		b.MovImm(rPtr, base+uint64(i*16))
		b.Ldp(rTmp, rTmp2, rPtr, 0) // record load: 2 destinations, 1 APT entry
		b.Add(rAcc, rAcc, rTmp)
		b.Op3(isa.EOR, rAcc, rAcc, rTmp2)
	}
	b.MovSym(rPtr3, "check")
	b.Str(rAcc, rPtr3, 0, 3)
	// Every 8th pass, rewrite one hot record: addresses stay stable while
	// values drift fast enough (each record changes every 64 passes) that a
	// 64-128-observation confidence bar never quite clears, while the APT's
	// 8-observation bar does. Updates stay sparse so the LDP re-reading the
	// record conflicts with an in-flight store only occasionally.
	b.OpImm(isa.ANDI, rTmp, rOuter, 7)
	b.Cbnz(rTmp, "noupdate")
	b.OpImm(isa.LSRI, rTmp, rOuter, 3)
	b.OpImm(isa.ANDI, rTmp, rTmp, recs-1)
	b.OpImm(isa.LSLI, rTmp, rTmp, 4)
	b.MovImm(rPtr2, base)
	b.Add(rPtr2, rPtr2, rTmp)
	b.Stp(rAcc, rOuter, rPtr2, 0)
	b.Label("noupdate")
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}

// buildCrafty: a search loop that saves and restores a 4-register context
// block with LDM/STP around a bitboard-style evaluation. Each LDM would
// occupy four VTAGE entries; a static filter simply gives the loads up.
func buildCrafty() *program.Program {
	b := program.NewBuilder("crafty")
	b.AllocWords("ctx", randWords(0xcf, 8))
	b.AllocWords("boards", randWords(0xcf2, 64))
	b.AllocWords("best", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("outer")
	b.MovSym(rPtr, "ctx")
	b.Ldm(isa.Reg(4), 4, rPtr, 0) // restore context: x4..x7 (4 dests)
	b.MovSym(rPtr2, "boards")
	b.OpImm(isa.ANDI, rTmp, rOuter, 63)
	b.LdrIdx(rTmp2, rPtr2, rTmp, 3, 3) // board
	b.Op3(isa.EOR, rScratch0, rTmp2, isa.Reg(4))
	b.Op3(isa.AND, rScratch0, rScratch0, isa.Reg(5))
	b.Op3(isa.ORR, rScratch0, rScratch0, isa.Reg(6))
	b.Op3(isa.ADD, rAcc, rScratch0, isa.Reg(7))
	b.MovSym(rPtr3, "best")
	b.Str(rAcc, rPtr3, 0, 3)
	// Mutate a rotating context word each pass: every LDM destination's
	// value changes within four passes — far below a value predictor's
	// confidence horizon — while the block's address never moves.
	b.OpImm(isa.ANDI, rTmp, rOuter, 3)
	b.OpImm(isa.LSLI, rTmp, rTmp, 3)
	b.Add(rTmp2, rPtr, rTmp)
	b.Op3(isa.EOR, rScratch0, rAcc, rOuter)
	b.Str(rScratch0, rTmp2, 0, 3)
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}

// buildTwolf: placement cost lookups at pseudo-random indices into a
// mid-sized table, with occasional writes: low repeatability everywhere —
// predictors must stay quiet to stay accurate.
func buildTwolf() *program.Program {
	b := program.NewBuilder("twolf")
	const n = 8192
	b.AllocWords("cost", randWords(0x2f, n))
	b.AllocWords("seed", []uint64{0x9e3779b97f4a7c15})

	b.MovSym(rPtr, "cost")
	b.MovSym(rPtr2, "seed")
	b.Ldr(rTmp, rPtr2, 0, 3)
	b.MovImm(rAcc, 0)
	b.Label("outer")
	// xorshift step
	b.OpImm(isa.LSLI, rTmp2, rTmp, 13)
	b.Op3(isa.EOR, rTmp, rTmp, rTmp2)
	b.OpImm(isa.LSRI, rTmp2, rTmp, 7)
	b.Op3(isa.EOR, rTmp, rTmp, rTmp2)
	b.OpImm(isa.LSLI, rTmp2, rTmp, 17)
	b.Op3(isa.EOR, rTmp, rTmp, rTmp2)
	b.OpImm(isa.ANDI, rScratch0, rTmp, n-1)
	b.LdrIdx(rTmp2, rPtr, rScratch0, 3, 3) // cost[rand]
	b.Add(rAcc, rAcc, rTmp2)
	b.OpImm(isa.ANDI, rInner, rTmp, 15)
	b.Cbnz(rInner, "skipwrite")
	b.StrIdx(rAcc, rPtr, rScratch0, 3, 3)
	b.Label("skipwrite")
	b.Br("outer")
	return b.Build()
}

// buildParser: scans a byte stream classifying characters through a small
// 64-entry class table: sub-word loads, a stable table base, and
// class-dependent branches.
func buildParser() *program.Program {
	b := program.NewBuilder("parser")
	const textLen = 2048
	text := make([]byte, textLen)
	r := newRng(0x9a)
	for i := range text {
		text[i] = byte(32 + r.intn(64))
	}
	b.AllocInit("text", text)
	classes := make([]byte, 64)
	for i := range classes {
		if i%7 == 0 {
			classes[i] = 1 // separator
		}
	}
	b.AllocInit("classes", classes)
	b.AllocWords("tokens", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("outer")
	b.MovSym(rPtr, "text")
	b.MovSym(rPtr2, "classes")
	b.MovSym(rPtr3, "tokens")
	b.MovImm(rInner, textLen)
	b.MovImm(rAcc, 0)
	b.Label("scan")
	b.Ldr(rScratch0, rPtr, 0, 0) // byte
	b.AddI(rPtr, rPtr, 1)
	b.OpImm(isa.SUBI, rTmp, rScratch0, 32)
	b.LdrIdx(rTmp2, rPtr2, rTmp, 0, 0) // class byte
	b.Cbz(rTmp2, "notsep")
	b.AddI(rAcc, rAcc, 1)
	b.Label("notsep")
	b.SubI(rInner, rInner, 1)
	b.Cbnz(rInner, "scan")
	b.Ldr(rTmp, rPtr3, 0, 3)
	b.Add(rTmp, rTmp, rAcc)
	b.Str(rTmp, rPtr3, 0, 3)
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}

// buildGzip: copies match windows within a 64KB buffer — strided streaming
// the baseline stride prefetcher covers well, so value prediction has to
// earn its keep elsewhere.
func buildGzip() *program.Program {
	b := program.NewBuilder("gzip")
	const winWords = 8192 // 64KB
	b.AllocWords("window", randWords(0x67, winWords))

	b.MovImm(rOuter, 0)
	b.Label("outer")
	b.MovSym(rPtr, "window")
	b.OpImm(isa.ANDI, rTmp, rOuter, winWords/2-1)
	b.OpImm(isa.LSLI, rTmp, rTmp, 3)
	b.Add(rPtr2, rPtr, rTmp) // source inside first half
	b.MovImm(rTmp2, winWords/2*8)
	b.Add(rPtr3, rPtr, rTmp2) // dest = second half
	b.MovImm(rInner, 32)
	b.Label("copy")
	b.LdrPost(rScratch0, rPtr2, 8)
	b.Emit(isa.Inst{Op: isa.STRPOST, Rt: rScratch0, Rn: rPtr3, Imm: 8, Size: 3})
	b.SubI(rInner, rInner, 1)
	b.Cbnz(rInner, "copy")
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}
