package workloads

import (
	"dlvp/internal/isa"
	"dlvp/internal/program"
)

func init() {
	register(Workload{
		Name:  "eon",
		Suite: "spec2k",
		Description: "raytracer-style big-code kernel: hundreds of distinct " +
			"static load sites (one unrolled block per scene object) that " +
			"pressure every prediction table's capacity — the effect small " +
			"kernels cannot produce",
		Build: buildEon,
	})
}

// buildEon: 96 scene objects, each rendered by its own unrolled code block:
// a geometry/material load-pair plus a scalar transform load (~290 static
// destination keys). The sizing is deliberate: with the multi-destination
// pairs included, a 3x256-entry VTAGE overflows and destructively aliases;
// with a static LDP filter only the 96 scalar sites remain and fit — the
// paper's Figure 7 mechanism at kernel scale. Every 32 frames one object's
// fields are rewritten.
func buildEon() *program.Program {
	b := program.NewBuilder("eon")
	const objs = 96
	const objWords = 4
	base := b.AllocWords("scene", randWords(0xe0e, objs*objWords))
	b.AllocWords("framebuf", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("frame")
	b.MovImm(rAcc, 0)
	for i := 0; i < objs; i++ {
		obj := base + uint64(i*objWords*8)
		b.MovImm(rPtr, obj)
		// Geometry+material arrive as a pair: one APT entry for DLVP, two
		// table entries for a conventional value predictor — across ~200
		// blocks this is the destructive aliasing population of Figure 7.
		b.Ldp(rTmp, rTmp2, rPtr, 0)
		if i%3 == 1 {
			b.Nop() // vary PC alignment across blocks
		}
		b.Ldr(rScratch0, rPtr, 16, 3) // transform
		b.Madd(rAcc, rTmp, rTmp2, rAcc)
		b.Op3(isa.EOR, rAcc, rAcc, rScratch0)
	}
	b.MovSym(rPtr2, "framebuf")
	b.Str(rAcc, rPtr2, 0, 3)
	b.AddI(rOuter, rOuter, 1)
	// Every 32 frames, rewrite one rotating object's fields.
	b.OpImm(isa.ANDI, rTmp, rOuter, 31)
	b.Cbnz(rTmp, "frame")
	b.OpImm(isa.LSRI, rTmp, rOuter, 5)
	b.MovImm(rTmp2, objs)
	b.Op3(isa.UREM, rTmp, rTmp, rTmp2)
	b.MovImm(rTmp2, objWords*8)
	b.Op3(isa.MUL, rTmp, rTmp, rTmp2)
	b.MovImm(rPtr, base)
	b.Add(rPtr, rPtr, rTmp)
	b.Str(rAcc, rPtr, 0, 3)
	b.Op3(isa.EOR, rAcc, rAcc, rOuter)
	b.Str(rAcc, rPtr, 8, 3)
	b.Br("frame")
	return b.Build()
}
