package workloads

import (
	"fmt"

	"dlvp/internal/isa"
	"dlvp/internal/program"
)

func init() {
	register(Workload{
		Name:  "aifirf",
		Suite: "eembc",
		Description: "adaptive FIR filter: unrolled coefficient loads at fixed " +
			"addresses whose values drift with every LMS update — the " +
			"DLVP-favoured shape the paper singles out (Figure 6)",
		Build: buildAifirf,
	})
	register(Workload{
		Name:  "nat",
		Suite: "eembc",
		Description: "address-translation table scan: a large mostly-uniform " +
			"table where values repeat far more than addresses — the " +
			"VTAGE-favoured shape the paper singles out (Figure 6)",
		Build: buildNat,
	})
	register(Workload{
		Name:  "routelookup",
		Suite: "eembc",
		Description: "IP-route trie descent with per-branch load alignment: " +
			"path-correlated addresses (PAP-friendly)",
		Build: buildRoutelookup,
	})
	register(Workload{
		Name:  "ospf",
		Suite: "eembc",
		Description: "shortest-path relaxation over a fixed adjacency list " +
			"with distance-array read-modify-writes (committed conflicts)",
		Build: buildOspf,
	})
	register(Workload{
		Name:  "pktflow",
		Suite: "eembc",
		Description: "packet-header parsing with type-dependent parse paths: " +
			"the path history selects among per-type header buffers",
		Build: buildPktflow,
	})
	register(Workload{
		Name:  "idct",
		Suite: "eembc",
		Description: "in-place 8x8 inverse transform through unrolled " +
			"load-pairs: multi-destination loads over addresses that never " +
			"change and values that always do",
		Build: buildIdct,
	})
	register(Workload{
		Name:  "viterbi",
		Suite: "eembc",
		Description: "trellis decode over ping-pong state buffers with " +
			"pass-parity-specialised code paths",
		Build: buildViterbi,
	})
	register(Workload{
		Name:  "ttsprk",
		Suite: "eembc",
		Description: "engine-control loop mixing predictable table loads with " +
			"load-acquire sensor reads that must never be predicted",
		Build: buildTtsprk,
	})
}

// buildAifirf: a fully unrolled streaming FIR: each pass computes 16
// outputs over a 24-sample buffer with 8 fixed coefficients. A sample cell
// is refreshed with new input immediately after its last use, so the store
// lands a full pass (~500 instructions) before the cell is read again —
// committed Load→Store→Load conflicts on every sample load. Addresses are
// all fixed (full unroll), so DLVP covers the whole filter while value
// predictors see fresh values every pass.
func buildAifirf() *program.Program {
	b := program.NewBuilder("aifirf")
	const taps = 8
	const outputs = 16
	const window = outputs + taps - 1 // 23 samples live per pass
	cbase := b.AllocWords("coef", smallWords(0xf1, taps, 50))
	xbase := b.AllocWords("x", randWords(0xf2, window))
	b.AllocWords("y", make([]uint64, outputs))

	b.MovImm(rOuter, 0)
	b.Label("outer")
	ybase := b.Sym("y")
	for i := 0; i < outputs; i++ {
		b.MovImm(rAcc, 0)
		for k := 0; k < taps; k++ {
			b.MovImm(rTmp, cbase+uint64(k*8))
			b.Ldr(rTmp, rTmp, 0, 3) // c[k]: fixed address, fixed value
			b.MovImm(rTmp2, xbase+uint64((i+k)*8))
			b.Ldr(rTmp2, rTmp2, 0, 3) // x[i+k]: fixed address, fresh value
			b.Madd(rAcc, rTmp, rTmp2, rAcc)
		}
		b.MovImm(rTmp, ybase+uint64(i*8))
		b.Str(rAcc, rTmp, 0, 3)
		// x[i] will not be read again this pass: stream in its next-pass
		// input now, a full pass ahead of the next read.
		b.Op3(isa.EOR, rScratch0, rAcc, rOuter)
		b.OpImm(isa.ORRI, rScratch0, rScratch0, 1)
		b.MovImm(rTmp, xbase+uint64(i*8))
		b.Str(rScratch0, rTmp, 0, 3)
	}
	// Refresh the tail samples x[outputs..window-1] too; their next reads
	// start at output 9 of the following pass, hundreds of instructions
	// after these stores.
	for i := outputs; i < window; i++ {
		b.AddI(rScratch0, rScratch0, int64(0x11*i))
		b.MovImm(rTmp, xbase+uint64(i*8))
		b.Str(rScratch0, rTmp, 0, 3)
	}
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}

// buildNat: strides through a 64k-entry translation table whose entries are
// drawn from four mask values. A static load sees a new address every
// iteration (hopeless for a 1k-entry APT) but the same value run after run —
// the value-repeatability-exceeds-address-repeatability population of
// Figure 2 that VTAGE monetises and DLVP cannot.
func buildNat() *program.Program {
	b := program.NewBuilder("nat")
	const n = 64 * 1024
	words := make([]uint64, n)
	for i := range words {
		words[i] = 0xFFFFFF00 // the dominant mask
	}
	r := newRng(0xa7)
	for i := 0; i < n/64; i++ {
		words[r.intn(n)] = uint64(0xFFFF0000)
	}
	b.AllocWords("xlate", words)
	b.AllocWords("hits", []uint64{0})

	b.MovSym(rPtr, "xlate")
	b.MovSym(rPtr2, "hits")
	b.MovImm(rOuter, 0)
	b.MovImm(rAcc, 0) // register-resident accumulator (as -O3 would keep it)
	b.Label("outer")
	b.OpImm(isa.ANDI, rTmp, rOuter, n-1)
	b.LdrIdx(rTmp2, rPtr, rTmp, 3, 3) // xlate[i]: fresh address, stale value
	b.OpImm(isa.ANDI, rScratch0, rTmp2, 0xFF)
	b.Add(rAcc, rAcc, rScratch0)
	b.AddI(rOuter, rOuter, 7) // odd stride defeats the line prefetcher a bit
	// Spill the accumulator once per 64 lookups.
	b.OpImm(isa.ANDI, rTmp, rOuter, 0x1C0)
	b.Cbnz(rTmp, "outer")
	b.Str(rAcc, rPtr2, 0, 3)
	b.Br("outer")
	return b.Build()
}

// buildRoutelookup: a 4-level, fan-out-4 trie descended with a 2-bit nibble
// per level; each nibble selects one of four distinct child loads whose PC
// bit-2 parities differ, so the load-path history encodes the route taken.
func buildRoutelookup() *program.Program {
	b := program.NewBuilder("routelookup")
	const levels = 4
	const fan = 4
	nodes := 1
	for i := 0; i < levels; i++ {
		nodes = nodes*fan + 1
	}
	// Perfect 4-ary trie in array form: node i children at 4i+1..4i+4.
	total := (powInt(fan, levels+1) - 1) / (fan - 1)
	base := b.Alloc("trie", total*fan*8)
	words := make([]uint64, total*fan)
	for i := 0; i < total; i++ {
		for c := 0; c < fan; c++ {
			child := fan*i + c + 1
			if child < total {
				words[i*fan+c] = base + uint64(child*fan*8)
			} else {
				words[i*fan+c] = base + uint64(i*fan*8) // leaf self-link
			}
		}
	}
	b.SetWords("trie", words)
	b.AllocWords("addrs", []uint64{0x1b, 0x56, 0xe9, 0x74, 0x02, 0xcd, 0x38, 0xaf})
	b.AllocWords("res", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("outer")
	b.MovSym(rTmp, "addrs")
	b.OpImm(isa.ANDI, rTmp2, rOuter, 7)
	b.LdrIdx(rAcc, rTmp, rTmp2, 3, 3) // the IP address to look up
	b.MovImm(rPtr, base)
	for lvl := 0; lvl < levels; lvl++ {
		shift := int64(2 * (levels - 1 - lvl))
		b.OpImm(isa.LSRI, rTmp, rAcc, shift)
		b.OpImm(isa.ANDI, rTmp, rTmp, 3)
		// Four distinct child loads, padded so PC bit-2 parities vary.
		b.Cbnz(rTmp, fmt.Sprintf("c1_%d", lvl))
		b.Ldr(rPtr, rPtr, 0, 3)
		b.Br(fmt.Sprintf("done_%d", lvl))
		b.Label(fmt.Sprintf("c1_%d", lvl))
		b.SubI(rTmp, rTmp, 1)
		b.Cbnz(rTmp, fmt.Sprintf("c2_%d", lvl))
		b.Ldr(rPtr, rPtr, 8, 3)
		b.Br(fmt.Sprintf("done_%d", lvl))
		b.Label(fmt.Sprintf("c2_%d", lvl))
		b.SubI(rTmp, rTmp, 1)
		b.Cbnz(rTmp, fmt.Sprintf("c3_%d", lvl))
		b.Nop()
		b.Ldr(rPtr, rPtr, 16, 3)
		b.Br(fmt.Sprintf("done_%d", lvl))
		b.Label(fmt.Sprintf("c3_%d", lvl))
		b.Nop()
		b.Ldr(rPtr, rPtr, 24, 3)
		b.Label(fmt.Sprintf("done_%d", lvl))
	}
	b.MovSym(rTmp, "res")
	b.Str(rPtr, rTmp, 0, 3)
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}

func powInt(base, exp int) int {
	p := 1
	for i := 0; i < exp; i++ {
		p *= base
	}
	return p
}

// buildOspf: relaxes edges of a fixed 32-node graph; dist[] cells are
// read-modify-written, so their addresses recur while their values converge
// and then get reset every 64 passes.
func buildOspf() *program.Program {
	b := program.NewBuilder("ospf")
	const nodes = 32
	const degree = 4
	r := newRng(0x05f)
	edges := make([]uint64, nodes*degree*2) // (target, weight) pairs
	for i := range edges {
		if i%2 == 0 {
			edges[i] = uint64(r.intn(nodes))
		} else {
			edges[i] = uint64(1 + r.intn(9))
		}
	}
	b.AllocWords("edges", edges)
	dist := make([]uint64, nodes)
	for i := range dist {
		dist[i] = 1 << 30
	}
	dist[0] = 0
	b.AllocWords("dist", dist)

	b.MovImm(rOuter, 0)
	b.Label("outer")
	b.MovSym(rPtr, "edges")
	b.MovSym(rPtr2, "dist")
	b.MovImm(rInner, 0)
	b.Label("relax")
	// u = inner & 31 (interleaved visit order, so dist[u] never repeats an
	// address back to back and predictors are not baited into gambling on
	// short runs); edge = inner.
	b.OpImm(isa.ANDI, rTmp, rInner, nodes-1)
	b.LdrIdx(rAcc, rPtr2, rTmp, 3, 3) // dist[u]
	b.OpImm(isa.LSLI, rTmp2, rInner, 4)
	b.Add(rTmp2, rPtr, rTmp2)
	b.Ldr(rScratch0, rTmp2, 0, 3)           // edge target v
	b.Ldr(rTmp2, rTmp2, 8, 3)               // weight
	b.Add(rAcc, rAcc, rTmp2)                // cand = dist[u] + w
	b.LdrIdx(rTmp2, rPtr2, rScratch0, 3, 3) // dist[v]
	b.CondBr(isa.BGEU, rAcc, rTmp2, "norelax")
	b.StrIdx(rAcc, rPtr2, rScratch0, 3, 3)
	b.Label("norelax")
	b.AddI(rInner, rInner, 1)
	b.MovImm(rTmp, nodes*degree)
	b.CondBr(isa.BLTU, rInner, rTmp, "relax")
	b.AddI(rOuter, rOuter, 1)
	// Reset the distances every 64 passes so relaxation keeps happening.
	b.OpImm(isa.ANDI, rTmp, rOuter, 63)
	b.Cbnz(rTmp, "outer")
	b.MovImm(rTmp2, 1<<30)
	b.MovImm(rInner, nodes-1)
	b.Label("reset")
	b.StrIdx(rTmp2, rPtr2, rInner, 3, 3)
	b.SubI(rInner, rInner, 1)
	b.Cbnz(rInner, "reset")
	b.Br("outer")
	return b.Build()
}

// buildPktflow: classifies a cycle of four packet types; each type's
// handler parses its own fixed header buffer at fixed offsets. Which
// handler runs is visible in the load-path history, and header fields
// mutate as flows are accounted.
func buildPktflow() *program.Program {
	b := program.NewBuilder("pktflow")
	for t := 0; t < 4; t++ {
		b.AllocWords(fmt.Sprintf("hdr%d", t), randWords(uint64(0x9f0+t), 8))
	}
	b.AllocWords("stats", make([]uint64, 4))

	b.MovImm(rOuter, 0)
	b.Label("outer")
	b.OpImm(isa.ANDI, rTmp, rOuter, 3) // packet type
	for t := 0; t < 4; t++ {
		next := fmt.Sprintf("type%d", t+1)
		if t < 3 {
			b.MovImm(rTmp2, uint64(t))
			b.CondBr(isa.BNE, rTmp, rTmp2, next)
		}
		if t%2 == 1 {
			b.Nop() // vary load PC bit-2 parity across handlers
		}
		hdr := b.Sym(fmt.Sprintf("hdr%d", t))
		b.MovImm(rPtr, hdr)
		b.Ldr(rAcc, rPtr, 0, 3)       // src
		b.Ldr(rTmp2, rPtr, 8, 3)      // dst
		b.Ldr(rScratch0, rPtr, 16, 2) // len (4-byte)
		b.Add(rAcc, rAcc, rTmp2)
		b.Add(rAcc, rAcc, rScratch0)
		b.MovSym(rPtr2, "stats")
		b.Ldr(rTmp2, rPtr2, int64(t*8), 3)
		b.Add(rTmp2, rTmp2, rAcc)
		b.Str(rTmp2, rPtr2, int64(t*8), 3)
		// Mutate the header length field (fixed address, fresh value).
		b.AddI(rScratch0, rScratch0, 1)
		b.Str(rScratch0, rPtr, 16, 2)
		b.Br("parsed")
		if t < 3 {
			b.Label(next)
		}
	}
	b.Label("parsed")
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}

// buildIdct: transforms a fixed 8x8 block in place through unrolled LDP row
// reads and STP writebacks: the addresses never move, the values never
// repeat, and each LDP would cost a conventional value predictor two
// entries per row.
func buildIdct() *program.Program {
	b := program.NewBuilder("idct")
	base := b.AllocWords("block", randWords(0x1dc, 32)) // 8 rows x 4 words... 8x4=32

	b.MovImm(rOuter, 0)
	b.Label("outer")
	b.MovImm(rAcc, 0)
	for row := 0; row < 8; row++ {
		b.MovImm(rPtr, base+uint64(row*32))
		b.Ldp(rTmp, rTmp2, rPtr, 0)             // row words 0-1
		b.Ldp(isa.Reg(4), isa.Reg(5), rPtr, 16) // row words 2-3
		// Butterfly-ish mixing.
		b.Add(rScratch0, rTmp, isa.Reg(5))
		b.Op3(isa.SUB, rTmp, rTmp, isa.Reg(5))
		b.Add(isa.Reg(6), rTmp2, isa.Reg(4))
		b.Op3(isa.SUB, rTmp2, rTmp2, isa.Reg(4))
		b.OpImm(isa.LSRI, rScratch0, rScratch0, 1)
		b.OpImm(isa.LSRI, rTmp2, rTmp2, 1)
		b.Stp(rScratch0, isa.Reg(6), rPtr, 0)
		b.Stp(rTmp, rTmp2, rPtr, 16)
		b.Add(rAcc, rAcc, rScratch0)
	}
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}

// buildViterbi: a 2-pass ping-pong trellis update. Even and odd passes run
// specialised copies of the loop, so each static load always addresses the
// same buffer (the compiler-specialisation shape that keeps ping-pong
// kernels address-predictable).
func buildViterbi() *program.Program {
	b := program.NewBuilder("viterbi")
	const states = 16
	b.AllocWords("bufA", smallWords(0x71, states, 8))
	b.AllocWords("bufB", make([]uint64, states))
	b.AllocWords("metric", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("outer")
	b.OpImm(isa.ANDI, rTmp, rOuter, 1)
	b.Cbnz(rTmp, "oddpass")
	trellisPass(b, "bufA", "bufB", "even")
	b.Br("passdone")
	b.Label("oddpass")
	trellisPass(b, "bufB", "bufA", "odd")
	b.Label("passdone")
	// Path-metric smoothing between passes: enough register work that the
	// ping-pong stores commit before the next pass's reads are probed —
	// the committed-conflict regime rather than permanent LSCD churn.
	b.MovImm(rInner, 45)
	b.Label("smooth")
	b.Madd(rAcc, rAcc, rTmp, rTmp2)
	b.OpImm(isa.LSRI, rTmp2, rAcc, 7)
	b.OpImm(isa.EORI, rAcc, rAcc, 0x2d)
	b.SubI(rInner, rInner, 1)
	b.Cbnz(rInner, "smooth")
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}

// trellisPass emits one specialised trellis update reading src and writing
// dst (4 unrolled butterflies over 16 states).
func trellisPass(b *program.Builder, src, dst, tag string) {
	sbase, dbase := b.Sym(src), b.Sym(dst)
	for i := 0; i < 8; i += 2 {
		b.MovImm(rPtr, sbase+uint64(i*8))
		b.Ldp(rTmp, rTmp2, rPtr, 0)
		b.Add(rScratch0, rTmp, rTmp2)
		b.OpImm(isa.ORRI, rScratch0, rScratch0, 1)
		b.MovImm(rPtr2, dbase+uint64(i*8))
		b.Str(rScratch0, rPtr2, 0, 3)
		b.Op3(isa.EOR, rScratch0, rTmp, rTmp2)
		b.Str(rScratch0, rPtr2, 8, 3)
	}
	b.MovSym(rPtr3, "metric")
	b.Ldr(rTmp, rPtr3, 0, 3)
	b.Add(rTmp, rTmp, rScratch0)
	b.Str(rTmp, rPtr3, 0, 3)
}

// buildTtsprk: an engine-control loop reading a small, read-only spark
// table (predictable) plus two sensor cells through load-acquire
// (architecturally excluded from prediction), writing one actuator cell.
func buildTtsprk() *program.Program {
	b := program.NewBuilder("ttsprk")
	b.AllocWords("spark", smallWords(0x77, 16, 20))
	b.AllocWords("rpm", []uint64{3000})
	b.AllocWords("temp", []uint64{80})
	b.AllocWords("advance", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("outer")
	b.MovSym(rPtr, "rpm")
	b.Ldar(rTmp, rPtr, 0, 3) // sensor read: never predicted
	b.MovSym(rPtr2, "temp")
	b.Ldar(rTmp2, rPtr2, 0, 3)
	b.OpImm(isa.LSRI, rScratch0, rTmp, 8)
	b.OpImm(isa.ANDI, rScratch0, rScratch0, 15)
	b.MovSym(rPtr3, "spark")
	b.LdrIdx(rAcc, rPtr3, rScratch0, 3, 3) // spark[rpm>>8 & 15]
	b.Add(rAcc, rAcc, rTmp2)
	b.MovSym(rTmp, "advance")
	b.Str(rAcc, rTmp, 0, 3)
	// Sensor drift (plain stores; the next pass's LDARs observe them).
	b.MovSym(rPtr, "rpm")
	b.Ldr(rTmp2, rPtr, 0, 3)
	// Slow drift: the spark-table index changes only every ~85 passes, so
	// the table load's address runs are long enough for honest confidence.
	b.AddI(rTmp2, rTmp2, 3)
	b.OpImm(isa.ANDI, rTmp2, rTmp2, 0xFFF)
	b.Str(rTmp2, rPtr, 0, 3)
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}
