package workloads

import (
	"testing"

	"dlvp/internal/emu"
	"dlvp/internal/isa"
	"dlvp/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) < 30 {
		t.Fatalf("registry has %d workloads, want >= 30 (Table 3 scale)", len(all))
	}
	suites := map[string]int{}
	for _, w := range all {
		if w.Name == "" || w.Description == "" || w.Build == nil {
			t.Errorf("workload %+v incomplete", w.Name)
		}
		suites[w.Suite]++
	}
	for _, s := range []string{"spec2k", "spec2k6", "eembc", "js", "app"} {
		if suites[s] == 0 {
			t.Errorf("suite %q empty", s)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("perlbmk"); !ok {
		t.Error("perlbmk missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("phantom workload")
	}
	names := Names()
	if len(names) != len(All()) {
		t.Error("Names/All length mismatch")
	}
}

// Every workload must build, run for its budget without halting early, and
// actually exercise memory.
func TestAllWorkloadsExecute(t *testing.T) {
	const budget = 30_000
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog := w.Build()
			if len(prog.Code) == 0 {
				t.Fatal("empty program")
			}
			cpu := emu.New(prog)
			cpu.MaxInstrs = budget
			var rec trace.Rec
			var n, loads, stores, branches uint64
			for cpu.Next(&rec) {
				n++
				if rec.IsLoad() {
					loads++
				}
				if rec.IsStore() {
					stores++
				}
				if rec.Op.IsBranch() {
					branches++
				}
			}
			if n != budget {
				t.Fatalf("executed %d of %d (halted early?)", n, budget)
			}
			if loads == 0 {
				t.Error("no loads executed")
			}
			if stores == 0 {
				t.Error("no stores executed")
			}
			if branches == 0 {
				t.Error("no branches executed")
			}
			lr := float64(loads) / float64(n)
			if lr < 0.015 || lr > 0.60 {
				t.Errorf("load ratio %.2f out of the plausible band", lr)
			}
		})
	}
}

// Workload execution must be deterministic: identical trace on every run.
func TestWorkloadDeterminism(t *testing.T) {
	for _, name := range []string{"perlbmk", "gcc", "twolf", "avmshell"} {
		w, _ := ByName(name)
		a := trace.Collect(w.Reader(5_000), 0)
		b := trace.Collect(w.Reader(5_000), 0)
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: trace diverges at %d", name, i)
			}
		}
	}
}

// Kernels that advertise multi-destination loads must emit them.
func TestMultiDestWorkloads(t *testing.T) {
	cases := map[string]isa.Op{
		"vortex":  isa.LDP,
		"crafty":  isa.LDM,
		"mplayer": isa.VLD,
		"idct":    isa.LDP,
		"h264ref": isa.VLD,
		"milc":    isa.LDP,
	}
	for name, op := range cases {
		w, _ := ByName(name)
		found := false
		r := w.Reader(20_000)
		var rec trace.Rec
		for r.Next(&rec) {
			if rec.Op == op {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no %v executed", name, op)
		}
	}
}

// ttsprk advertises memory-ordering loads (never predicted).
func TestOrderedLoadWorkload(t *testing.T) {
	w, _ := ByName("ttsprk")
	r := w.Reader(5_000)
	var rec trace.Rec
	found := false
	for r.Next(&rec) {
		if rec.Op == isa.LDAR {
			found = true
			break
		}
	}
	if !found {
		t.Error("ttsprk: no LDAR executed")
	}
}

// avmshell advertises indirect dispatch.
func TestIndirectDispatchWorkload(t *testing.T) {
	w, _ := ByName("avmshell")
	r := w.Reader(5_000)
	var rec trace.Rec
	found := false
	for r.Next(&rec) {
		if rec.Op == isa.BR {
			found = true
			break
		}
	}
	if !found {
		t.Error("avmshell: no indirect branch executed")
	}
}

func TestHelpers(t *testing.T) {
	p := permutation(1, 16)
	seen := map[uint64]bool{}
	for _, v := range p {
		if v >= 16 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
	w := smallWords(2, 100, 5)
	for _, v := range w {
		if v >= 5 {
			t.Fatalf("smallWords out of range: %d", v)
		}
	}
	// linkedListWords must form a single cycle visiting every node.
	words := linkedListWords(3, 0x1000, 8, 2)
	addr := uint64(0x1000)
	visited := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		if visited[addr] {
			t.Fatal("cycle shorter than node count")
		}
		visited[addr] = true
		idx := (addr - 0x1000) / 8
		addr = words[idx]
	}
	if addr != 0x1000 {
		t.Errorf("list does not close: ends at %#x", addr)
	}
}

// The xorshift state is seed ^ constant, so the adversarial seed equal to
// the constant would collapse the state to zero and the generator would
// emit zeros forever: all-zero data arrays and identity "permutations".
func TestRngAdversarialSeeds(t *testing.T) {
	const xorConst = 0x2545f4914f6cdd1d
	for _, seed := range []uint64{0, 1, xorConst, ^uint64(0)} {
		r := newRng(seed)
		var zeros, distinct int
		seen := map[uint64]bool{}
		for i := 0; i < 64; i++ {
			v := r.next()
			if v == 0 {
				zeros++
			}
			if !seen[v] {
				seen[v] = true
				distinct++
			}
		}
		if zeros > 1 || distinct < 60 {
			t.Errorf("seed %#x: degenerate stream (%d zeros, %d distinct of 64)", seed, zeros, distinct)
		}
	}
	// The zero-state seed must not produce an identity permutation.
	p := permutation(xorConst, 64)
	identity := true
	for i, v := range p {
		if v != uint64(i) {
			identity = false
			break
		}
	}
	if identity {
		t.Error("permutation(xorConst, 64) is the identity: rng state collapsed to zero")
	}
	// ... and data arrays drawn from it must not be all-zero.
	allZero := true
	for _, w := range randWords(xorConst, 64) {
		if w != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Error("randWords(xorConst, 64) is all-zero: rng state collapsed to zero")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	register(Workload{Name: "perlbmk"})
}
