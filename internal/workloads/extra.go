package workloads

import (
	"fmt"

	"dlvp/internal/isa"
	"dlvp/internal/program"
)

func init() {
	register(Workload{
		Name:  "splay",
		Suite: "js",
		Description: "splay-tree workout: rotating a fixed tree's root links " +
			"on every access — pointer fields whose addresses recur but " +
			"whose values (child pointers) keep moving",
		Build: buildSplay,
	})
	register(Workload{
		Name:  "fft",
		Suite: "eembc",
		Description: "radix-2 butterfly passes over a fixed 16-point buffer, " +
			"fully unrolled: address-stable, value-fresh like idct but with " +
			"scalar loads and twiddle-table reads",
		Build: buildFFT,
	})
	register(Workload{
		Name:  "autocor",
		Suite: "eembc",
		Description: "autocorrelation over a fixed sample window with a lag " +
			"loop: one operand stream stable per lag, one sliding",
		Build: buildAutocor,
	})
	register(Workload{
		Name:  "deltablue",
		Suite: "js",
		Description: "constraint propagation over a fixed chain of constraint " +
			"records: satisfaction flags feed branches, strengths drift",
		Build: buildDeltablue,
	})
	register(Workload{
		Name:  "gobmk",
		Suite: "spec2k6",
		Description: "influence-map updates on a 19x19 board with neighbour " +
			"reads: medium-footprint RMW grid",
		Build: buildGobmk,
	})
	register(Workload{
		Name:  "xalancbmk",
		Suite: "spec2k6",
		Description: "template dispatch through a polymorphic handler table " +
			"(indirect calls) with per-template context records",
		Build: buildXalancbmk,
	})
	register(Workload{
		Name:  "lbm",
		Suite: "spec2k6",
		Description: "lattice sweep over a 256KB grid with 4-point stencils: " +
			"streaming traffic the prefetcher owns, TLB-heavy",
		Build: buildLbm,
	})
	register(Workload{
		Name:  "povray",
		Suite: "spec2k6",
		Description: "ray-object intersection against a fixed object list " +
			"with early-out branches fed by loaded bounds",
		Build: buildPovray,
	})
}

// buildSplay: a fixed pool of 16 nodes; each access splays a (cycling)
// target toward the root by rewriting two child links. Link addresses are
// fixed per node; link values churn constantly.
func buildSplay() *program.Program {
	b := program.NewBuilder("splay")
	const nodes = 16
	const nodeWords = 2 // left, right
	base := b.Alloc("pool", nodes*nodeWords*8)
	words := make([]uint64, nodes*nodeWords)
	for i := 0; i < nodes; i++ {
		words[i*nodeWords] = base + uint64(((2*i+1)%nodes)*nodeWords*8)
		words[i*nodeWords+1] = base + uint64(((2*i+2)%nodes)*nodeWords*8)
	}
	b.SetWords("pool", words)

	b.MovImm(rOuter, 0)
	b.Label("access")
	// Walk three levels from the root following left/right by target bits.
	b.OpImm(isa.ANDI, rAcc, rOuter, 7) // target key bits
	b.MovImm(rPtr, base)
	for lvl := 0; lvl < 3; lvl++ {
		b.OpImm(isa.LSRI, rTmp, rAcc, int64(lvl))
		b.OpImm(isa.ANDI, rTmp, rTmp, 1)
		b.Cbnz(rTmp, fmt.Sprintf("right_%d", lvl))
		b.Ldr(rPtr, rPtr, 0, 3) // left link
		b.Br(fmt.Sprintf("step_%d", lvl))
		b.Label(fmt.Sprintf("right_%d", lvl))
		b.Nop()
		b.Ldr(rPtr, rPtr, 8, 3) // right link
		b.Label(fmt.Sprintf("step_%d", lvl))
	}
	// Splay: swap the reached node's links with the root's (4 stores).
	b.MovImm(rPtr2, base)
	b.Ldr(rTmp, rPtr, 0, 3)
	b.Ldr(rTmp2, rPtr2, 0, 3)
	b.Str(rTmp2, rPtr, 0, 3)
	b.Str(rTmp, rPtr2, 0, 3)
	b.AddI(rOuter, rOuter, 1)
	b.Br("access")
	return b.Build()
}

// buildFFT: two unrolled butterfly stages over a 16-word buffer plus a
// constant twiddle table; the buffer is rewritten in place every pass.
func buildFFT() *program.Program {
	b := program.NewBuilder("fft")
	const n = 16
	xbase := b.AllocWords("signal", randWords(0xff7, n))
	tbase := b.AllocWords("twiddle", smallWords(0xff8, n/2, 30))

	b.MovImm(rOuter, 0)
	b.Label("pass")
	for stage := 1; stage <= 2; stage++ {
		span := 1 << stage
		for i := 0; i < n; i += span {
			lo := xbase + uint64(i*8)
			hi := xbase + uint64((i+span/2)*8)
			tw := tbase + uint64((i%(n/2))*8)
			b.MovImm(rPtr, lo)
			b.Ldr(rTmp, rPtr, 0, 3)
			b.MovImm(rPtr2, hi)
			b.Ldr(rTmp2, rPtr2, 0, 3)
			b.MovImm(rPtr3, tw)
			b.Ldr(rScratch0, rPtr3, 0, 3) // twiddle: constant
			b.Madd(rTmp2, rTmp2, rScratch0, rTmp)
			b.Op3(isa.SUB, rTmp, rTmp, rTmp2)
			b.Str(rTmp2, rPtr, 0, 3)
			b.Str(rTmp, rPtr2, 0, 3)
		}
	}
	// Bit-reversal bookkeeping between passes: register-only work that
	// separates each pass's in-place stores from the next pass's reads, so
	// the conflicts predictors see are with committed stores.
	b.MovImm(rInner, 70)
	b.Label("bitrev")
	b.OpImm(isa.LSRI, rTmp, rAcc, 1)
	b.OpImm(isa.ANDI, rTmp2, rAcc, 1)
	b.OpImm(isa.LSLI, rTmp2, rTmp2, 3)
	b.Op3(isa.ORR, rAcc, rTmp, rTmp2)
	b.SubI(rInner, rInner, 1)
	b.Cbnz(rInner, "bitrev")
	b.AddI(rOuter, rOuter, 1)
	b.Br("pass")
	return b.Build()
}

// buildAutocor: r[lag] = sum over i of x[i]*x[i+lag] for four unrolled lags
// over a fixed 32-sample window (constant data; pure read traffic with
// perfectly stable addresses — both predictor families cover it).
func buildAutocor() *program.Program {
	b := program.NewBuilder("autocor")
	const n = 32
	xbase := b.AllocWords("xw", randWords(0xac0, n))
	b.AllocWords("r", make([]uint64, 4))

	b.MovImm(rOuter, 0)
	b.Label("outer")
	rbase := b.Sym("r")
	for lag := 0; lag < 4; lag++ {
		b.MovImm(rAcc, 0)
		for i := 0; i < 8; i++ { // 8-tap unrolled inner sum
			b.MovImm(rPtr, xbase+uint64(i*8))
			b.Ldr(rTmp, rPtr, 0, 3)
			b.MovImm(rPtr2, xbase+uint64((i+lag)*8))
			b.Ldr(rTmp2, rPtr2, 0, 3)
			b.Madd(rAcc, rTmp, rTmp2, rAcc)
		}
		b.MovImm(rPtr3, rbase+uint64(lag*8))
		b.Str(rAcc, rPtr3, 0, 3)
	}
	b.AddI(rOuter, rOuter, 1)
	b.Br("outer")
	return b.Build()
}

// buildDeltablue: walks a fixed chain of 8 constraint records; each record's
// satisfaction flag feeds a branch, and strengths are re-planned every 16
// passes (committed conflicts on the flag/strength fields).
func buildDeltablue() *program.Program {
	b := program.NewBuilder("deltablue")
	const cons = 8
	const w = 4 // flag, strength, next, pad
	base := b.Alloc("cons", cons*w*8)
	words := make([]uint64, cons*w)
	for i := 0; i < cons; i++ {
		words[i*w] = uint64(i % 2)
		words[i*w+1] = uint64(10 - i)
		words[i*w+2] = base + uint64(((i+1)%cons)*w*8)
	}
	b.SetWords("cons", words)
	b.AllocWords("plan", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("propagate")
	b.MovImm(rPtr, base)
	b.MovImm(rAcc, 0)
	for i := 0; i < cons; i++ {
		b.Ldr(rTmp, rPtr, 0, 3) // satisfaction flag feeds the branch
		b.Cbz(rTmp, fmt.Sprintf("unsat_%d", i))
		b.Ldr(rTmp2, rPtr, 8, 3) // strength
		b.Add(rAcc, rAcc, rTmp2)
		b.Label(fmt.Sprintf("unsat_%d", i))
		b.Ldr(rPtr, rPtr, 16, 3) // next constraint
	}
	b.MovSym(rPtr3, "plan")
	b.Str(rAcc, rPtr3, 0, 3)
	b.AddI(rOuter, rOuter, 1)
	// Re-plan every 16 passes: flip a rotating constraint's flag and bump
	// its strength (stores land a full pass before the next reads).
	b.OpImm(isa.ANDI, rTmp, rOuter, 15)
	b.Cbnz(rTmp, "propagate")
	b.OpImm(isa.LSRI, rTmp, rOuter, 4)
	b.OpImm(isa.ANDI, rTmp, rTmp, cons-1)
	b.MovImm(rTmp2, w*8)
	b.Op3(isa.MUL, rTmp, rTmp, rTmp2)
	b.MovImm(rPtr2, base)
	b.Add(rPtr2, rPtr2, rTmp)
	b.Ldr(rScratch0, rPtr2, 0, 3)
	b.OpImm(isa.EORI, rScratch0, rScratch0, 1)
	b.Str(rScratch0, rPtr2, 0, 3)
	b.Ldr(rScratch0, rPtr2, 8, 3)
	b.AddI(rScratch0, rScratch0, 1)
	b.Str(rScratch0, rPtr2, 8, 3)
	b.Br("propagate")
	return b.Build()
}

// buildGobmk: adds influence from a cycling cursor stone to its four
// neighbours on a 19x19 board (word grid): medium-stride RMW with wraparound.
func buildGobmk() *program.Program {
	b := program.NewBuilder("gobmk")
	const dim = 19
	const cells = dim * dim
	b.AllocWords("board", smallWords(0x90b, cells, 3))
	b.AllocWords("influence", make([]uint64, cells))

	b.MovImm(rOuter, 0)
	b.Label("step")
	b.MovSym(rPtr, "board")
	b.MovSym(rPtr2, "influence")
	b.MovImm(rTmp2, cells)
	b.Op3(isa.UREM, rInner, rOuter, rTmp2) // cursor cell
	b.LdrIdx(rAcc, rPtr, rInner, 3, 3)     // stone colour
	b.Cbz(rAcc, "empty")
	for _, d := range []int64{1, -1, dim, -dim} {
		b.AddI(rTmp, rInner, d)
		b.MovImm(rTmp2, cells)
		b.Op3(isa.UREM, rTmp, rTmp, rTmp2)
		b.LdrIdx(rScratch0, rPtr2, rTmp, 3, 3)
		b.Add(rScratch0, rScratch0, rAcc)
		b.StrIdx(rScratch0, rPtr2, rTmp, 3, 3)
	}
	b.Label("empty")
	b.AddI(rOuter, rOuter, 1)
	b.Br("step")
	return b.Build()
}

// buildXalancbmk: dispatches a cycle of 4 template kinds through an indirect
// handler table; each handler reads its own context record and bumps an
// output counter.
func buildXalancbmk() *program.Program {
	b := program.NewBuilder("xalancbmk")
	b.Alloc("handlers", 4*8)
	for k := 0; k < 4; k++ {
		b.AllocWords(fmt.Sprintf("tctx%d", k), randWords(uint64(0xa1a+k), 4))
	}
	b.AllocWords("out", make([]uint64, 4))

	b.MovImm(rOuter, 0)
	b.Label("dispatch")
	b.OpImm(isa.ANDI, rTmp, rOuter, 3)
	b.MovSym(rPtr, "handlers")
	b.LdrIdx(rTmp2, rPtr, rTmp, 3, 3)
	b.BrReg(rTmp2)
	var addrs [4]uint64
	for k := 0; k < 4; k++ {
		b.Label(fmt.Sprintf("h%d", k))
		addrs[k] = b.PC()
		if k%2 == 1 {
			b.Nop()
		}
		b.MovSym(rPtr2, fmt.Sprintf("tctx%d", k))
		b.Ldr(rAcc, rPtr2, 0, 3)
		b.Ldr(rTmp2, rPtr2, 8, 3)
		b.Add(rAcc, rAcc, rTmp2)
		b.MovSym(rPtr3, "out")
		b.Ldr(rTmp2, rPtr3, int64(k*8), 3)
		b.Add(rTmp2, rTmp2, rAcc)
		b.Str(rTmp2, rPtr3, int64(k*8), 3)
		b.AddI(rOuter, rOuter, 1)
		b.Br("dispatch")
	}
	b.SetWords("handlers", addrs[:])
	return b.Build()
}

// buildLbm: a 4-point stencil sweep over a 256KB lattice: pure streaming,
// big footprint, prefetcher territory.
func buildLbm() *program.Program {
	b := program.NewBuilder("lbm")
	const words = 32 * 1024
	b.AllocWords("lattice", randWords(0x1b3, words))

	b.MovImm(rOuter, 0)
	b.Label("sweep")
	b.MovSym(rPtr, "lattice")
	b.OpImm(isa.ANDI, rTmp, rOuter, 1023)
	b.OpImm(isa.LSLI, rTmp, rTmp, 3)
	b.Add(rPtr, rPtr, rTmp)
	b.MovImm(rInner, 128)
	b.Label("cell")
	b.Ldr(rTmp, rPtr, 0, 3)
	b.Ldr(rTmp2, rPtr, 8, 3)
	b.Ldr(rScratch0, rPtr, 256, 3)
	b.Ldr(rAcc, rPtr, 264, 3)
	b.Add(rTmp, rTmp, rTmp2)
	b.Add(rTmp, rTmp, rScratch0)
	b.Add(rTmp, rTmp, rAcc)
	b.OpImm(isa.LSRI, rTmp, rTmp, 2)
	b.Str(rTmp, rPtr, 0, 3)
	b.AddI(rPtr, rPtr, 232) // odd stride walks the lattice diagonally
	b.SubI(rInner, rInner, 1)
	b.Cbnz(rInner, "cell")
	b.AddI(rOuter, rOuter, 1)
	b.Br("sweep")
	return b.Build()
}

// buildPovray: intersects a cycling ray against 8 fixed bounding records;
// the loaded bound feeds an early-out branch, bounds drift slowly.
func buildPovray() *program.Program {
	b := program.NewBuilder("povray")
	const objs = 8
	base := b.AllocWords("bounds", smallWords(0x907, objs*2, 40))
	b.AllocWords("hits", []uint64{0})

	b.MovImm(rOuter, 0)
	b.Label("ray")
	b.OpImm(isa.ANDI, rAcc, rOuter, 63) // ray parameter
	b.MovImm(rInner, 0)                 // hit count in a register
	for i := 0; i < objs; i++ {
		b.MovImm(rPtr, base+uint64(i*16))
		b.Ldr(rTmp, rPtr, 0, 3)  // near bound: stable address, slow drift
		b.Ldr(rTmp2, rPtr, 8, 3) // far bound
		b.CondBr(isa.BLTU, rAcc, rTmp, fmt.Sprintf("miss_%d", i))
		b.CondBr(isa.BGEU, rAcc, rTmp2, fmt.Sprintf("miss_%d", i))
		b.AddI(rInner, rInner, 1)
		b.Label(fmt.Sprintf("miss_%d", i))
	}
	b.MovSym(rPtr3, "hits")
	b.Ldr(rScratch0, rPtr3, 0, 3)
	b.Add(rScratch0, rScratch0, rInner)
	b.Str(rScratch0, rPtr3, 0, 3)
	b.AddI(rOuter, rOuter, 1)
	// Drift one bound every 32 rays.
	b.OpImm(isa.ANDI, rTmp, rOuter, 31)
	b.Cbnz(rTmp, "ray")
	b.OpImm(isa.LSRI, rTmp, rOuter, 5)
	b.OpImm(isa.ANDI, rTmp, rTmp, objs-1)
	b.OpImm(isa.LSLI, rTmp, rTmp, 4)
	b.MovImm(rPtr, base)
	b.Add(rPtr, rPtr, rTmp)
	b.Ldr(rTmp2, rPtr, 0, 3)
	b.AddI(rTmp2, rTmp2, 1)
	b.OpImm(isa.ANDI, rTmp2, rTmp2, 63)
	b.Str(rTmp2, rPtr, 0, 3)
	b.Br("ray")
	return b.Build()
}
