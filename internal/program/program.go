// Package program provides an assembler-like builder for constructing
// mini-ISA programs: instruction emission with label resolution, a data
// segment allocator, and the resulting Program image consumed by the
// functional emulator.
package program

import (
	"fmt"
	"sort"

	"dlvp/internal/isa"
)

// Memory layout constants. Code starts at CodeBase and every instruction
// occupies 4 bytes; the data segment grows upward from DataBase; each
// program gets a downward-growing stack topped at StackTop.
const (
	CodeBase = 0x0000_0000_0040_0000
	DataBase = 0x0000_0000_1000_0000
	StackTop = 0x0000_0000_7fff_f000
)

// Program is a fully resolved program image: code, initialised data, and the
// entry point. It is immutable once built.
type Program struct {
	Name  string
	Code  []isa.Inst
	Entry uint64
	Data  []Segment
	// Symbols maps data symbol names to base addresses.
	Symbols map[string]uint64
	// Labels maps code label names to instruction addresses.
	Labels map[string]uint64
}

// Segment is one initialised region of the data segment.
type Segment struct {
	Name string
	Base uint64
	Data []byte
}

// PCOf returns the address of instruction index idx.
func (p *Program) PCOf(idx int) uint64 { return CodeBase + uint64(idx)*4 }

// InstAt returns the instruction at address pc, or nil if pc is outside the
// code segment.
func (p *Program) InstAt(pc uint64) *isa.Inst {
	if pc < CodeBase || (pc-CodeBase)%4 != 0 {
		return nil
	}
	idx := (pc - CodeBase) / 4
	if idx >= uint64(len(p.Code)) {
		return nil
	}
	return &p.Code[idx]
}

// Builder incrementally assembles a Program. Methods panic on misuse
// (duplicate labels, unresolved references at Build time): workload kernels
// are static, compiled-in programs, so construction errors are programmer
// errors, matching the fail-fast convention of text/template.Must.
type Builder struct {
	name    string
	code    []isa.Inst
	labels  map[string]int // label -> instruction index
	symbols map[string]uint64
	data    []Segment
	dataTop uint64
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		labels:  make(map[string]int),
		symbols: make(map[string]uint64),
		dataTop: DataBase,
	}
}

// Label defines a code label at the current emission point.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("program %q: duplicate label %q", b.name, name))
	}
	b.labels[name] = len(b.code)
}

// PC returns the address the next emitted instruction will occupy.
func (b *Builder) PC() uint64 { return CodeBase + uint64(len(b.code))*4 }

// Emit appends a raw instruction.
func (b *Builder) Emit(i isa.Inst) {
	b.code = append(b.code, i)
}

// Alloc reserves size bytes in the data segment under a symbol name and
// returns the base address. The region is zero-initialised. Alignment is
// 64 bytes (one cache line) so that independently named arrays never share
// lines, keeping workload conflict behaviour intentional.
func (b *Builder) Alloc(name string, size int) uint64 {
	return b.AllocInit(name, make([]byte, size))
}

// AllocInit reserves len(init) bytes initialised with init.
func (b *Builder) AllocInit(name string, init []byte) uint64 {
	if _, dup := b.symbols[name]; dup {
		panic(fmt.Sprintf("program %q: duplicate symbol %q", b.name, name))
	}
	const align = 64
	base := (b.dataTop + align - 1) &^ (align - 1)
	b.symbols[name] = base
	b.data = append(b.data, Segment{Name: name, Base: base, Data: init})
	b.dataTop = base + uint64(len(init))
	return base
}

// AllocWords reserves a symbol initialised with 8-byte little-endian words.
func (b *Builder) AllocWords(name string, words []uint64) uint64 {
	buf := make([]byte, len(words)*8)
	for i, w := range words {
		putUint64(buf[i*8:], w)
	}
	return b.AllocInit(name, buf)
}

// SetWords replaces the contents of a previously allocated symbol with
// 8-byte little-endian words. It allows self-referential data (linked
// structures storing absolute addresses) to be filled in after the symbol's
// base address is known. The new content must fit the allocation.
func (b *Builder) SetWords(name string, words []uint64) {
	for i := range b.data {
		if b.data[i].Name != name {
			continue
		}
		if len(words)*8 > len(b.data[i].Data) {
			panic(fmt.Sprintf("program %q: SetWords(%q): %d words exceed allocation of %d bytes",
				b.name, name, len(words), len(b.data[i].Data)))
		}
		for j, w := range words {
			putUint64(b.data[i].Data[j*8:], w)
		}
		return
	}
	panic(fmt.Sprintf("program %q: SetWords: unknown symbol %q", b.name, name))
}

// Sym returns the address of a previously allocated data symbol.
func (b *Builder) Sym(name string) uint64 {
	a, ok := b.symbols[name]
	if !ok {
		panic(fmt.Sprintf("program %q: unknown symbol %q", b.name, name))
	}
	return a
}

// Build resolves all label references and returns the finished Program.
func (b *Builder) Build() *Program {
	p := &Program{
		Name:    b.name,
		Code:    b.code,
		Entry:   CodeBase,
		Data:    b.data,
		Symbols: b.symbols,
		Labels:  make(map[string]uint64, len(b.labels)),
	}
	for name, idx := range b.labels {
		p.Labels[name] = p.PCOf(idx)
	}
	for i := range p.Code {
		inst := &p.Code[i]
		if inst.Label == "" {
			continue
		}
		idx, ok := b.labels[inst.Label]
		if !ok {
			panic(fmt.Sprintf("program %q: unresolved label %q at instruction %d",
				b.name, inst.Label, i))
		}
		inst.Target = p.PCOf(idx)
		inst.Label = ""
	}
	return p
}

// --- convenience emitters ---------------------------------------------------

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.NOP}) }

// Halt emits a HALT.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.HALT}) }

// MovImm loads a 64-bit immediate into rd. Large immediates are synthesised
// from MOVZ plus shift/or pairs, like a real assembler would.
func (b *Builder) MovImm(rd isa.Reg, v uint64) {
	// MOVZ immediates ride in Imm (int64), so any value up to 1<<63-1 fits in
	// one instruction; only the top bit forces the synthesis path.
	if v <= 1<<62 {
		b.Emit(isa.Inst{Op: isa.MOVZ, Rd: rd, Imm: int64(v)})
		return
	}
	b.Emit(isa.Inst{Op: isa.MOVZ, Rd: rd, Imm: int64(v >> 32)})
	b.Emit(isa.Inst{Op: isa.LSLI, Rd: rd, Rn: rd, Imm: 32})
	b.Emit(isa.Inst{Op: isa.ORRI, Rd: rd, Rn: rd, Imm: int64(v & 0xffff_ffff)})
}

// MovSym loads the address of a data symbol into rd.
func (b *Builder) MovSym(rd isa.Reg, sym string) { b.MovImm(rd, b.Sym(sym)) }

// Op3 emits a three-register ALU operation.
func (b *Builder) Op3(op isa.Op, rd, rn, rm isa.Reg) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rn: rn, Rm: rm})
}

// OpImm emits a register-immediate ALU operation.
func (b *Builder) OpImm(op isa.Op, rd, rn isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rn: rn, Imm: imm})
}

// Add emits rd = rn + rm.
func (b *Builder) Add(rd, rn, rm isa.Reg) { b.Op3(isa.ADD, rd, rn, rm) }

// AddI emits rd = rn + imm.
func (b *Builder) AddI(rd, rn isa.Reg, imm int64) { b.OpImm(isa.ADDI, rd, rn, imm) }

// SubI emits rd = rn - imm.
func (b *Builder) SubI(rd, rn isa.Reg, imm int64) { b.OpImm(isa.SUBI, rd, rn, imm) }

// Madd emits rd = rn*rm + ra.
func (b *Builder) Madd(rd, rn, rm, ra isa.Reg) {
	b.Emit(isa.Inst{Op: isa.MADD, Rd: rd, Rn: rn, Rm: rm, Rt: ra})
}

// Ldr emits a load of 1<<sizeLog2 bytes: rd = mem[rn + imm].
func (b *Builder) Ldr(rd, rn isa.Reg, imm int64, sizeLog2 uint8) {
	b.Emit(isa.Inst{Op: isa.LDR, Rd: rd, Rn: rn, Rm: isa.XZR, Imm: imm, Size: sizeLog2})
}

// LdrIdx emits rd = mem[rn + (rm << scale)] of 1<<sizeLog2 bytes.
func (b *Builder) LdrIdx(rd, rn, rm isa.Reg, scale, sizeLog2 uint8) {
	b.Emit(isa.Inst{Op: isa.LDR, Rd: rd, Rn: rn, Rm: rm, Scale: scale, Size: sizeLog2})
}

// LdrPost emits rd = mem[rn] (8 bytes); rn += imm.
func (b *Builder) LdrPost(rd, rn isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.LDRPOST, Rd: rd, Rn: rn, Rm: isa.XZR, Imm: imm, Size: 3})
}

// Ldp emits rd,rd2 = mem[rn+imm], mem[rn+imm+8].
func (b *Builder) Ldp(rd, rd2, rn isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.LDP, Rd: rd, Rd2: rd2, Rn: rn, Rm: isa.XZR, Imm: imm, Size: 3})
}

// Ldm emits an n-register load-multiple into rd..rd+n-1 from rn+imm.
func (b *Builder) Ldm(rd isa.Reg, n uint8, rn isa.Reg, imm int64) {
	if n < 2 || n > isa.MaxLDMRegs {
		panic(fmt.Sprintf("ldm: register count %d out of range", n))
	}
	b.Emit(isa.Inst{Op: isa.LDM, Rd: rd, Rn: rn, Rm: isa.XZR, Imm: imm, NReg: n, Size: 3})
}

// Vld emits a 128-bit vector load into vd,vd2.
func (b *Builder) Vld(vd, vd2, rn isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.VLD, Rd: vd, Rd2: vd2, Rn: rn, Rm: isa.XZR, Imm: imm, Size: 3})
}

// Ldar emits a load-acquire: rd = mem[rn+imm].
func (b *Builder) Ldar(rd, rn isa.Reg, imm int64, sizeLog2 uint8) {
	b.Emit(isa.Inst{Op: isa.LDAR, Rd: rd, Rn: rn, Rm: isa.XZR, Imm: imm, Size: sizeLog2})
}

// Str emits mem[rn+imm] = rt (1<<sizeLog2 bytes).
func (b *Builder) Str(rt, rn isa.Reg, imm int64, sizeLog2 uint8) {
	b.Emit(isa.Inst{Op: isa.STR, Rt: rt, Rn: rn, Rm: isa.XZR, Imm: imm, Size: sizeLog2})
}

// StrIdx emits mem[rn + (rm<<scale)] = rt.
func (b *Builder) StrIdx(rt, rn, rm isa.Reg, scale, sizeLog2 uint8) {
	b.Emit(isa.Inst{Op: isa.STR, Rt: rt, Rn: rn, Rm: rm, Scale: scale, Size: sizeLog2})
}

// Stp emits mem[rn+imm],mem[rn+imm+8] = rt,rt2.
func (b *Builder) Stp(rt, rt2, rn isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.STP, Rt: rt, Rt2: rt2, Rn: rn, Rm: isa.XZR, Imm: imm, Size: 3})
}

// Br emits an unconditional branch to label.
func (b *Builder) Br(label string) {
	b.Emit(isa.Inst{Op: isa.B, Label: label})
}

// CondBr emits a two-register conditional branch to label.
func (b *Builder) CondBr(op isa.Op, rn, rm isa.Reg, label string) {
	if !op.IsCondBranch() {
		panic(fmt.Sprintf("CondBr: %v is not a conditional branch", op))
	}
	b.Emit(isa.Inst{Op: op, Rn: rn, Rm: rm, Label: label})
}

// Cbz emits a compare-and-branch-if-zero to label.
func (b *Builder) Cbz(rn isa.Reg, label string) {
	b.Emit(isa.Inst{Op: isa.CBZ, Rn: rn, Label: label})
}

// Cbnz emits a compare-and-branch-if-nonzero to label.
func (b *Builder) Cbnz(rn isa.Reg, label string) {
	b.Emit(isa.Inst{Op: isa.CBNZ, Rn: rn, Label: label})
}

// Call emits a BL to label with the link in lr.
func (b *Builder) Call(label string, lr isa.Reg) {
	b.Emit(isa.Inst{Op: isa.BL, Rd: lr, Label: label})
}

// Ret emits a return through lr.
func (b *Builder) Ret(lr isa.Reg) {
	b.Emit(isa.Inst{Op: isa.RET, Rn: lr})
}

// BrReg emits an indirect jump through rn.
func (b *Builder) BrReg(rn isa.Reg) {
	b.Emit(isa.Inst{Op: isa.BR, Rn: rn})
}

// Disasm returns a listing of the program with addresses and labels, useful
// in tests and for debugging workloads.
func (p *Program) Disasm() string {
	byAddr := make(map[uint64][]string)
	for name, addr := range p.Labels {
		byAddr[addr] = append(byAddr[addr], name)
	}
	out := make([]byte, 0, len(p.Code)*32)
	for i := range p.Code {
		pc := p.PCOf(i)
		if names := byAddr[pc]; len(names) > 0 {
			sort.Strings(names)
			for _, n := range names {
				out = append(out, fmt.Sprintf("%s:\n", n)...)
			}
		}
		out = append(out, fmt.Sprintf("  %08x: %s\n", pc, p.Code[i].String())...)
	}
	return string(out)
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
