package program

import (
	"strings"
	"testing"
	"testing/quick"

	"dlvp/internal/isa"
)

func TestLabelsResolve(t *testing.T) {
	b := NewBuilder("t")
	b.Label("start")
	b.MovImm(0, 7)
	b.Label("loop")
	b.SubI(0, 0, 1)
	b.Cbnz(0, "loop")
	b.Halt()
	p := b.Build()

	if p.Labels["start"] != CodeBase {
		t.Errorf("start = %#x, want %#x", p.Labels["start"], uint64(CodeBase))
	}
	loopPC := p.Labels["loop"]
	var found bool
	for i := range p.Code {
		if p.Code[i].Op == isa.CBNZ {
			found = true
			if p.Code[i].Target != loopPC {
				t.Errorf("cbnz target = %#x, want %#x", p.Code[i].Target, loopPC)
			}
			if p.Code[i].Label != "" {
				t.Error("label not cleared after resolution")
			}
		}
	}
	if !found {
		t.Fatal("cbnz not emitted")
	}
}

func TestUnresolvedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unresolved label")
		}
	}()
	b := NewBuilder("t")
	b.Br("nowhere")
	b.Build()
}

func TestDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate label")
		}
	}()
	b := NewBuilder("t")
	b.Label("x")
	b.Label("x")
}

func TestDuplicateSymbolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate symbol")
		}
	}()
	b := NewBuilder("t")
	b.Alloc("a", 8)
	b.Alloc("a", 8)
}

func TestUnknownSymbolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown symbol")
		}
	}()
	b := NewBuilder("t")
	b.Sym("missing")
}

func TestAllocAlignmentAndLayout(t *testing.T) {
	b := NewBuilder("t")
	a1 := b.Alloc("a", 3)
	a2 := b.Alloc("b", 100)
	a3 := b.Alloc("c", 1)
	if a1%64 != 0 || a2%64 != 0 || a3%64 != 0 {
		t.Errorf("allocations not 64-byte aligned: %#x %#x %#x", a1, a2, a3)
	}
	if a2 <= a1 || a3 <= a2 {
		t.Errorf("allocations not monotonically increasing: %#x %#x %#x", a1, a2, a3)
	}
	if a2-a1 < 3 || a3-a2 < 100 {
		t.Error("allocations overlap")
	}
	if b.Sym("b") != a2 {
		t.Error("Sym lookup mismatch")
	}
}

func TestAllocWords(t *testing.T) {
	b := NewBuilder("t")
	base := b.AllocWords("w", []uint64{0x1122334455667788, 42})
	p := b.Build()
	if len(p.Data) != 1 {
		t.Fatalf("segments = %d, want 1", len(p.Data))
	}
	seg := p.Data[0]
	if seg.Base != base || len(seg.Data) != 16 {
		t.Fatalf("segment base/len = %#x/%d", seg.Base, len(seg.Data))
	}
	if seg.Data[0] != 0x88 || seg.Data[7] != 0x11 || seg.Data[8] != 42 {
		t.Errorf("little-endian encoding wrong: % x", seg.Data)
	}
}

func TestInstAt(t *testing.T) {
	b := NewBuilder("t")
	b.Nop()
	b.Halt()
	p := b.Build()
	if inst := p.InstAt(CodeBase); inst == nil || inst.Op != isa.NOP {
		t.Error("InstAt(CodeBase) wrong")
	}
	if inst := p.InstAt(CodeBase + 4); inst == nil || inst.Op != isa.HALT {
		t.Error("InstAt(CodeBase+4) wrong")
	}
	if p.InstAt(CodeBase+8) != nil {
		t.Error("InstAt past end should be nil")
	}
	if p.InstAt(CodeBase+2) != nil {
		t.Error("InstAt unaligned should be nil")
	}
	if p.InstAt(0) != nil {
		t.Error("InstAt(0) should be nil")
	}
}

func TestMovImmSmallAndLarge(t *testing.T) {
	b := NewBuilder("t")
	b.MovImm(1, 12345)
	n := len(buildCode(b))
	if n != 1 {
		t.Errorf("small immediate used %d instructions, want 1", n)
	}
	b2 := NewBuilder("t2")
	b2.MovImm(1, 0xffff_ffff_ffff_ffff)
	if n := len(buildCode(b2)); n != 3 {
		t.Errorf("large immediate used %d instructions, want 3", n)
	}
}

func TestDisasmContainsLabels(t *testing.T) {
	b := NewBuilder("t")
	b.Label("entry")
	b.MovImm(0, 1)
	b.Label("done")
	b.Halt()
	p := b.Build()
	d := p.Disasm()
	for _, want := range []string{"entry:", "done:", "movz", "halt"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestCondBrRejectsNonBranch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("t")
	b.CondBr(isa.ADD, 0, 1, "x")
}

func TestLdmRangeChecked(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NReg=1")
		}
	}()
	b := NewBuilder("t")
	b.Ldm(0, 1, 1, 0)
}

// Property: PCOf is strictly increasing by 4 and InstAt(PCOf(i)) returns
// instruction i.
func TestPCOfInstAtRoundTrip(t *testing.T) {
	b := NewBuilder("t")
	for i := 0; i < 50; i++ {
		b.AddI(1, 1, int64(i))
	}
	p := b.Build()
	f := func(idx uint16) bool {
		i := int(idx) % len(p.Code)
		inst := p.InstAt(p.PCOf(i))
		return inst == &p.Code[i]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func buildCode(b *Builder) []isa.Inst {
	return b.Build().Code
}
