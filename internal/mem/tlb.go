package mem

// TLBConfig describes the translation lookaside buffer (Table 4: 512-entry,
// 8-way set-associative).
type TLBConfig struct {
	Entries     int
	Ways        int
	PageBytes   int
	WalkLatency int // page-walk penalty in cycles on a miss
}

// DefaultTLBConfig returns the Table 4 TLB with a conventional walk cost.
func DefaultTLBConfig() TLBConfig {
	return TLBConfig{Entries: 512, Ways: 8, PageBytes: 4096, WalkLatency: 20}
}

type tlbEntry struct {
	vpn   uint64
	used  uint64
	valid bool
}

// TLB models the translation lookaside buffer. Only timing matters here
// (the simulator is virtually addressed), so an entry is just a virtual
// page number.
type TLB struct {
	cfg       TLBConfig
	sets      [][]tlbEntry
	setMask   uint64
	pageShift uint8
	stamp     uint64

	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// NewTLB returns a TLB with the given geometry.
func NewTLB(cfg TLBConfig) *TLB {
	if cfg.Entries == 0 {
		cfg = DefaultTLBConfig()
	}
	numSets := cfg.Entries / cfg.Ways
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("mem: TLB set count must be a positive power of two")
	}
	t := &TLB{cfg: cfg, setMask: uint64(numSets - 1)}
	for b := cfg.PageBytes; b > 1; b >>= 1 {
		t.pageShift++
	}
	t.sets = make([][]tlbEntry, numSets)
	for i := range t.sets {
		t.sets[i] = make([]tlbEntry, cfg.Ways)
	}
	return t
}

// Config returns the TLB geometry.
func (t *TLB) Config() TLBConfig { return t.cfg }

// Access translates addr: it returns the added latency (0 on a hit, the
// walk penalty on a miss) and fills on a miss.
func (t *TLB) Access(addr uint64) int {
	t.Accesses++
	vpn := addr >> t.pageShift
	set := int(vpn & t.setMask)
	for w := range t.sets[set] {
		e := &t.sets[set][w]
		if e.valid && e.vpn == vpn {
			t.Hits++
			t.stamp++
			e.used = t.stamp
			return 0
		}
	}
	t.Misses++
	victim, oldest := 0, ^uint64(0)
	for w := range t.sets[set] {
		e := &t.sets[set][w]
		if !e.valid {
			victim, oldest = w, 0
			break
		}
		if e.used < oldest {
			victim, oldest = w, e.used
		}
	}
	t.stamp++
	t.sets[set][victim] = tlbEntry{vpn: vpn, used: t.stamp, valid: true}
	return t.cfg.WalkLatency
}

// MissRate returns misses/accesses in percent.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return 100 * float64(t.Misses) / float64(t.Accesses)
}
