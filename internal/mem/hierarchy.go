package mem

import "dlvp/internal/predictor/stride"

// HierarchyConfig describes the full Table 4 memory system.
type HierarchyConfig struct {
	L1I, L1D, L2, L3 CacheConfig
	TLB              TLBConfig
	MemLatency       int
	// PrefetchEnabled turns on the baseline per-PC stride prefetchers.
	PrefetchEnabled bool
	// PrefetchDistance is how many strides ahead the prefetcher runs.
	PrefetchDistance int
}

// DefaultHierarchyConfig returns the paper's Table 4 memory system:
// 64B L1 blocks / 128B L2+L3 blocks, 64KB 4-way L1s (1-cycle I / 2-cycle D),
// 512KB 8-way L2 at 16 cycles, 8MB 16-way L3 at 32 cycles, 200-cycle
// memory, 512-entry 8-way TLB, stride prefetchers.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:              CacheConfig{Name: "L1I", SizeBytes: 64 << 10, BlockBytes: 64, Ways: 4, Latency: 1},
		L1D:              CacheConfig{Name: "L1D", SizeBytes: 64 << 10, BlockBytes: 64, Ways: 4, Latency: 2},
		L2:               CacheConfig{Name: "L2", SizeBytes: 512 << 10, BlockBytes: 128, Ways: 8, Latency: 16},
		L3:               CacheConfig{Name: "L3", SizeBytes: 8 << 20, BlockBytes: 128, Ways: 16, Latency: 32},
		TLB:              DefaultTLBConfig(),
		MemLatency:       200,
		PrefetchEnabled:  true,
		PrefetchDistance: 2,
	}
}

// AccessResult describes a demand access through the hierarchy.
type AccessResult struct {
	Latency int  // total cycles until data available
	L1Hit   bool // hit in the first-level cache
	L1Way   int  // way holding the block in L1 (after fill)
	TLBMiss bool
}

// Hierarchy glues the cache levels, TLB and prefetcher together.
type Hierarchy struct {
	cfg HierarchyConfig
	L1I *Cache
	L1D *Cache
	L2  *Cache
	L3  *Cache
	TLB *TLB

	pf *stride.Predictor

	// DLVP probe statistics (Section 3.2.2 power optimisation).
	Probes            uint64
	ProbeHits         uint64
	ProbeTLBMisses    uint64
	WayPredictions    uint64
	WayMispredictions uint64
	Prefetches        uint64
	PrefetchesUseful  uint64 // prefetched blocks later hit by a demand access
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{
		cfg: cfg,
		L1I: NewCache(cfg.L1I),
		L1D: NewCache(cfg.L1D),
		L2:  NewCache(cfg.L2),
		L3:  NewCache(cfg.L3),
		TLB: NewTLB(cfg.TLB),
	}
	if cfg.PrefetchEnabled {
		h.pf = stride.New(stride.Config{Entries: 512, TagBits: 10, Confidence: 2, Seed: 0x9f})
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// CounterSnapshot is a flat point-in-time copy of the hierarchy's
// cumulative counters, cheap enough to take every sampling interval (the
// timeline flight recorder differentiates consecutive snapshots into
// per-interval miss and probe-hit rates).
type CounterSnapshot struct {
	L1DAccesses, L1DMisses uint64
	L2Accesses, L2Misses   uint64
	L3Accesses, L3Misses   uint64
	TLBAccesses, TLBMisses uint64
	Probes, ProbeHits      uint64
	Prefetches             uint64
	WayMispredictions      uint64
}

// Counters snapshots the hierarchy's monotone counters.
func (h *Hierarchy) Counters() CounterSnapshot {
	return CounterSnapshot{
		L1DAccesses:       h.L1D.Accesses,
		L1DMisses:         h.L1D.Misses,
		L2Accesses:        h.L2.Accesses,
		L2Misses:          h.L2.Misses,
		L3Accesses:        h.L3.Accesses,
		L3Misses:          h.L3.Misses,
		TLBAccesses:       h.TLB.Accesses,
		TLBMisses:         h.TLB.Misses,
		Probes:            h.Probes,
		ProbeHits:         h.ProbeHits,
		Prefetches:        h.Prefetches,
		WayMispredictions: h.WayMispredictions,
	}
}

// missPath walks L2 -> L3 -> memory for a block absent from L1, returning
// the latency to data and filling the touched levels. now is the issue
// cycle of the access.
func (h *Hierarchy) missPath(now uint64, addr uint64) int {
	if r := h.L2.Access(now, addr); r.Hit {
		lat := h.cfg.L2.Latency + int(r.Ready-now)
		return lat
	}
	if r := h.L3.Access(now, addr); r.Hit {
		lat := h.cfg.L3.Latency + int(r.Ready-now)
		h.L2.Fill(addr, now+uint64(lat))
		return lat
	}
	lat := h.cfg.MemLatency
	h.L3.Fill(addr, now+uint64(lat))
	h.L2.Fill(addr, now+uint64(lat))
	return lat
}

// Load performs a demand data access at cycle now for the load at pc.
// It drives the TLB, the cache walk, fills, and the baseline stride
// prefetcher.
func (h *Hierarchy) Load(now uint64, pc, addr uint64) AccessResult {
	var res AccessResult
	if w := h.TLB.Access(addr); w > 0 {
		res.Latency += w
		res.TLBMiss = true
	}
	r := h.L1D.Access(now, addr)
	if r.Hit {
		res.L1Hit = true
		res.L1Way = r.Way
		res.Latency += h.cfg.L1D.Latency + int(r.Ready-now)
	} else {
		lat := h.cfg.L1D.Latency + h.missPath(now, addr)
		res.L1Way = h.L1D.Fill(addr, now+uint64(lat))
		res.Latency += lat
	}
	h.trainPrefetcher(now, pc, addr)
	return res
}

// Store performs the cache side of a committing store (write-allocate,
// write-back; only timing-free bookkeeping here since stores retire through
// the store buffer).
func (h *Hierarchy) Store(now uint64, addr uint64) {
	h.TLB.Access(addr)
	r := h.L1D.Access(now, addr)
	if !r.Hit {
		lat := h.cfg.L1D.Latency + h.missPath(now, addr)
		h.L1D.Fill(addr, now+uint64(lat))
	}
}

// Fetch performs an instruction fetch for the group at pc and returns the
// added latency beyond the pipelined L1I access (0 on an L1I hit).
func (h *Hierarchy) Fetch(now uint64, pc uint64) int {
	r := h.L1I.Access(now, pc)
	if r.Hit {
		return int(r.Ready - now)
	}
	lat := h.missPath(now, pc)
	h.L1I.Fill(pc, now+uint64(lat))
	return lat
}

// ProbeResult describes a DLVP speculative data-cache probe.
type ProbeResult struct {
	Hit        bool
	Way        int
	Latency    int // cycles to deliver the probed value (L1D latency (+TLB walk if miss))
	TLBMiss    bool
	WayCorrect bool // way prediction matched (valid when a way was predicted)
	// Outcome is the probe's cause code; consumers (the per-site
	// attribution layer) branch on it instead of reconstructing the
	// outcome from the Hit/WayCorrect booleans.
	Outcome ProbeOutcome
}

// ProbeOutcome classifies a DLVP L1D probe.
type ProbeOutcome uint8

const (
	// ProbeMiss: the block is not in the L1D; the prediction is lost (the
	// caller may prefetch).
	ProbeMiss ProbeOutcome = iota
	// ProbeHitWay: hit, delivered through the predicted (or only) path.
	ProbeHitWay
	// ProbeHitWayMispredict: hit, but the way prediction was wrong — the
	// value arrives after the full-set fallback read.
	ProbeHitWayMispredict
)

// Hit reports whether the probe found the block.
func (o ProbeOutcome) Hit() bool { return o != ProbeMiss }

// String returns the outcome's wire name.
func (o ProbeOutcome) String() string {
	switch o {
	case ProbeMiss:
		return "miss"
	case ProbeHitWay:
		return "hit"
	case ProbeHitWayMispredict:
		return "hit_way_mispredict"
	}
	return "unknown"
}

// Probe speculatively reads the L1D for a predicted address (DLVP step 3).
// predictedWay >= 0 engages way prediction: only that way is read (the
// power optimisation), and a mismatch is recorded as a way misprediction
// (the full-set fallback read still returns the data). The probe does not
// fill the cache; on a miss the caller may issue a prefetch.
func (h *Hierarchy) Probe(addr uint64, predictedWay int) ProbeResult {
	h.Probes++
	var res ProbeResult
	// A way-predicted probe reads a single way in one cycle (the paper's
	// "1-cycle for reading the data cache, facilitated by way prediction");
	// without a predicted way the probe pays the full L1D access latency.
	if predictedWay >= 0 {
		res.Latency = 1
	} else {
		res.Latency = h.cfg.L1D.Latency
	}
	if w := h.TLB.Access(addr); w > 0 {
		res.TLBMiss = true
		h.ProbeTLBMisses++
		res.Latency += w
	}
	hit, way := h.L1D.Peek(addr)
	res.Hit = hit
	res.Way = way
	if hit {
		h.ProbeHits++
		res.Outcome = ProbeHitWay
		if predictedWay >= 0 {
			h.WayPredictions++
			res.WayCorrect = predictedWay == way
			if !res.WayCorrect {
				h.WayMispredictions++
				res.Outcome = ProbeHitWayMispredict
				// Fallback full-set read after the mispredicted way.
				res.Latency += h.cfg.L1D.Latency
			}
		}
	}
	return res
}

// Prefetch installs the block containing addr (DLVP's probe-miss prefetch,
// step 5). The block becomes ready after the full miss path, so a demand
// load arriving earlier still waits for the remainder.
func (h *Hierarchy) Prefetch(now uint64, addr uint64) {
	if hit, _ := h.L1D.Peek(addr); hit {
		return
	}
	h.Prefetches++
	lat := h.missPath(now, addr)
	h.L1D.Fill(addr, now+uint64(lat))
}

// trainPrefetcher drives the baseline per-PC stride prefetcher on demand
// loads.
func (h *Hierarchy) trainPrefetcher(now uint64, pc, addr uint64) {
	if h.pf == nil {
		return
	}
	lk := h.pf.Predict(pc)
	h.pf.Train(lk, addr)
	if lk.Confident && lk.Stride != 0 {
		for d := 1; d <= h.cfg.PrefetchDistance; d++ {
			h.Prefetch(now, addr+uint64(int64(d)*lk.Stride))
		}
	}
}
