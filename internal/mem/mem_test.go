package mem

import (
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return NewCache(CacheConfig{Name: "t", SizeBytes: 1024, BlockBytes: 64, Ways: 2, Latency: 2})
}

func TestCacheMissThenHit(t *testing.T) {
	c := smallCache()
	r := c.Access(0, 0x1000)
	if r.Hit {
		t.Fatal("cold access must miss")
	}
	c.Fill(0x1000, 10)
	r = c.Access(20, 0x1000)
	if !r.Hit {
		t.Fatal("filled block must hit")
	}
	if r.Ready != 20 {
		t.Errorf("ready = %d, want 20 (fill complete)", r.Ready)
	}
	// Same block, different offset.
	if r := c.Access(21, 0x103f); !r.Hit {
		t.Error("same block, different offset must hit")
	}
	// Next block must miss.
	if r := c.Access(22, 0x1040); r.Hit {
		t.Error("adjacent block must miss")
	}
}

func TestCacheLateHit(t *testing.T) {
	c := smallCache()
	c.Fill(0x1000, 100) // in flight until cycle 100
	r := c.Access(50, 0x1000)
	if !r.Hit {
		t.Fatal("in-flight block must register as (late) hit")
	}
	if r.Ready != 100 {
		t.Errorf("late hit ready = %d, want 100", r.Ready)
	}
	if c.LateHits != 1 {
		t.Errorf("LateHits = %d, want 1", c.LateHits)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache() // 2 ways, 8 sets
	// Three blocks mapping to the same set (stride = numSets*block = 512B).
	a, b, d := uint64(0x0000), uint64(0x0200), uint64(0x0400)
	c.Fill(a, 0)
	c.Fill(b, 0)
	c.Access(10, a) // make a MRU
	c.Fill(d, 0)    // must evict b
	if hit, _ := c.Peek(a); !hit {
		t.Error("MRU block evicted")
	}
	if hit, _ := c.Peek(b); hit {
		t.Error("LRU block survived")
	}
	if hit, _ := c.Peek(d); !hit {
		t.Error("new block absent")
	}
}

func TestCachePeekDoesNotDisturb(t *testing.T) {
	c := smallCache()
	c.Fill(0x0000, 0)
	c.Fill(0x0200, 0)
	acc := c.Accesses
	c.Peek(0x0000) // must not refresh LRU or count an access
	if c.Accesses != acc {
		t.Error("Peek counted as access")
	}
	c.Fill(0x0400, 0) // evicts 0x0000 (still LRU despite the Peek)
	if hit, _ := c.Peek(0x0000); hit {
		t.Error("Peek must not refresh LRU")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := smallCache()
	c.Fill(0x1000, 0)
	if !c.Invalidate(0x1000) {
		t.Error("invalidate of present block must return true")
	}
	if hit, _ := c.Peek(0x1000); hit {
		t.Error("block present after invalidate")
	}
	if c.Invalidate(0x1000) {
		t.Error("invalidate of absent block must return false")
	}
}

func TestCacheRefillRefreshesReadiness(t *testing.T) {
	c := smallCache()
	c.Fill(0x1000, 100)
	c.Fill(0x1000, 50) // earlier completion wins
	r := c.Access(60, 0x1000)
	if r.Ready != 60 {
		t.Errorf("ready = %d, want 60", r.Ready)
	}
	c.Fill(0x1000, 500) // later fill must not delay an already-ready line
	r = c.Access(70, 0x1000)
	if r.Ready != 70 {
		t.Errorf("ready after late refill = %d, want 70", r.Ready)
	}
}

func TestCacheMissRate(t *testing.T) {
	c := smallCache()
	c.Access(0, 0x1000)
	c.Fill(0x1000, 0)
	c.Access(1, 0x1000)
	if got := c.MissRate(); got != 50 {
		t.Errorf("miss rate = %v, want 50", got)
	}
	if NewCache(c.cfg).MissRate() != 0 {
		t.Error("empty cache miss rate must be 0")
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	for _, cfg := range []CacheConfig{
		{SizeBytes: 1000, BlockBytes: 64, Ways: 2},
		{SizeBytes: 1024, BlockBytes: 60, Ways: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v must panic", cfg)
				}
			}()
			NewCache(cfg)
		}()
	}
}

// Property: after Fill(addr), Peek(addr) hits, for any address.
func TestCacheFillPeekProperty(t *testing.T) {
	c := NewCache(CacheConfig{Name: "p", SizeBytes: 4096, BlockBytes: 64, Ways: 4, Latency: 1})
	f := func(addr uint64) bool {
		c.Fill(addr, 0)
		hit, way := c.Peek(addr)
		return hit && way >= 0 && way < 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(DefaultTLBConfig())
	if lat := tlb.Access(0x1000); lat != 20 {
		t.Errorf("cold TLB access latency = %d, want walk 20", lat)
	}
	if lat := tlb.Access(0x1fff); lat != 0 {
		t.Errorf("same page must hit, lat = %d", lat)
	}
	if lat := tlb.Access(0x2000); lat != 20 {
		t.Errorf("next page must miss, lat = %d", lat)
	}
	if tlb.MissRate() != 200.0/3 {
		t.Errorf("miss rate = %v", tlb.MissRate())
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	tlb := NewTLB(TLBConfig{Entries: 8, Ways: 2, PageBytes: 4096, WalkLatency: 20})
	// 3 pages mapping to set 0 (stride = 4 sets * 4096).
	p0, p1, p2 := uint64(0), uint64(4*4096), uint64(8*4096)
	tlb.Access(p0)
	tlb.Access(p1)
	tlb.Access(p0) // refresh p0
	tlb.Access(p2) // evict p1
	if lat := tlb.Access(p0); lat != 0 {
		t.Error("refreshed entry evicted")
	}
	if lat := tlb.Access(p1); lat == 0 {
		t.Error("LRU entry survived")
	}
}

func TestHierarchyLoadLatencies(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchEnabled = false
	h := NewHierarchy(cfg)
	// Cold: TLB walk + L1D + full miss path to memory.
	r := h.Load(0, 0x400100, 0x1000_0000)
	wantCold := cfg.TLB.WalkLatency + cfg.L1D.Latency + cfg.MemLatency
	if r.Latency != wantCold || r.L1Hit {
		t.Errorf("cold load = %+v, want latency %d", r, wantCold)
	}
	// Warm: pure L1D hit — but the fill is still in flight at cycle 1.
	r = h.Load(1000, 0x400100, 0x1000_0000)
	if !r.L1Hit || r.Latency != cfg.L1D.Latency {
		t.Errorf("warm load = %+v, want L1 hit at %d cycles", r, cfg.L1D.Latency)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchEnabled = false
	h := NewHierarchy(cfg)
	h.Load(0, 0x400100, 0x1000_0000)
	// Evict from L1 by filling the same L1 set, then reload: should hit L2.
	// L1D: 64KB/4-way/64B = 256 sets; same-set stride = 256*64 = 16KB.
	for i := 1; i <= 4; i++ {
		h.Load(100*uint64(i), 0x400200, 0x1000_0000+uint64(i)*16384)
	}
	r := h.Load(10_000, 0x400100, 0x1000_0000)
	if r.L1Hit {
		t.Fatal("block should have been evicted from L1")
	}
	want := cfg.L1D.Latency + cfg.L2.Latency
	if r.Latency != want {
		t.Errorf("L2 hit latency = %d, want %d", r.Latency, want)
	}
}

func TestProbeHitAndWayPrediction(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchEnabled = false
	h := NewHierarchy(cfg)
	h.Load(0, 0x400100, 0x2000_0000) // warm the line and TLB
	hit, way := h.L1D.Peek(0x2000_0000)
	if !hit {
		t.Fatal("setup failed")
	}
	r := h.Probe(0x2000_0000, way)
	if !r.Hit || !r.WayCorrect || r.Latency != 1 {
		t.Errorf("probe = %+v, want 1-cycle way-predicted hit", r)
	}
	// Wrong way: still a hit, full-set fallback read, counted.
	r = h.Probe(0x2000_0000, (way+1)%4)
	if !r.Hit || r.WayCorrect || r.Latency != 1+cfg.L1D.Latency {
		t.Errorf("wrong-way probe = %+v", r)
	}
	// No way prediction: full access latency.
	r = h.Probe(0x2000_0000, -1)
	if !r.Hit || r.Latency != cfg.L1D.Latency {
		t.Errorf("unassisted probe = %+v", r)
	}
	if h.WayMispredictions != 1 {
		t.Errorf("way mispredictions = %d, want 1", h.WayMispredictions)
	}
}

func TestProbeMissDoesNotFill(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchEnabled = false
	h := NewHierarchy(cfg)
	r := h.Probe(0x3000_0000, -1)
	if r.Hit {
		t.Fatal("cold probe must miss")
	}
	if hit, _ := h.L1D.Peek(0x3000_0000); hit {
		t.Error("probe must not fill the cache")
	}
}

func TestPrefetchInstallsInFlight(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchEnabled = false
	h := NewHierarchy(cfg)
	h.Prefetch(0, 0x4000_0000)
	if h.Prefetches != 1 {
		t.Fatal("prefetch not counted")
	}
	// A demand load immediately after pays the remaining fill latency, not
	// the full miss.
	r := h.Load(10, 0x400100, 0x4000_0000)
	if !r.L1Hit {
		t.Fatal("prefetched block must register as L1 (late) hit")
	}
	if r.Latency >= cfg.TLB.WalkLatency+cfg.L1D.Latency+cfg.MemLatency || r.Latency <= cfg.L1D.Latency {
		t.Errorf("late-hit latency = %d, expected between L1 hit and full miss", r.Latency)
	}
	// Much later, it is a plain hit.
	r = h.Load(10_000, 0x400100, 0x4000_0000)
	if !r.L1Hit || r.Latency != cfg.L1D.Latency {
		t.Errorf("settled prefetch = %+v", r)
	}
	// Prefetching a present block is a no-op.
	h.Prefetch(20_000, 0x4000_0000)
	if h.Prefetches != 1 {
		t.Error("present-block prefetch must not count")
	}
}

func TestStridePrefetcherCoversStriddenStream(t *testing.T) {
	cfg := DefaultHierarchyConfig() // prefetch on
	h := NewHierarchy(cfg)
	// Stride through memory; after training, most accesses should hit.
	misses := 0
	addr := uint64(0x5000_0000)
	now := uint64(0)
	for i := 0; i < 200; i++ {
		r := h.Load(now, 0x400100, addr)
		if !r.L1Hit {
			misses++
		}
		addr += 64
		now += 300
	}
	if misses > 20 {
		t.Errorf("stride stream misses = %d/200 with prefetcher on", misses)
	}
}

func TestFetchPath(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	h := NewHierarchy(cfg)
	if lat := h.Fetch(0, 0x400000); lat != cfg.MemLatency {
		t.Errorf("cold fetch extra latency = %d, want %d", lat, cfg.MemLatency)
	}
	if lat := h.Fetch(1000, 0x400000); lat != 0 {
		t.Errorf("warm fetch extra latency = %d, want 0", lat)
	}
}

func TestStoreFillsCache(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.PrefetchEnabled = false
	h := NewHierarchy(cfg)
	h.Store(0, 0x6000_0000)
	if hit, _ := h.L1D.Peek(0x6000_0000); !hit {
		t.Error("write-allocate store must install the block")
	}
}
