// Package mem models the baseline core's memory hierarchy (Table 4):
// split 64KB 4-way L1 caches, a private 512KB 8-way L2, a shared 8MB 16-way
// L3, a 512-entry 8-way TLB, and per-PC stride prefetchers. The model is
// latency-oriented: every structure tracks hit/miss counts and access
// energy events, misses install lines with a readiness timestamp (so a
// demand access shortly after a prefetch still pays the remaining latency),
// and bandwidth/MSHR contention is intentionally not modelled.
package mem

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	BlockBytes int
	Ways       int
	Latency    int // access latency in cycles on a hit
}

type line struct {
	tag   uint64
	ready uint64 // cycle at which the fill completes
	used  uint64 // LRU stamp
	valid bool
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg      CacheConfig
	sets     [][]line
	setMask  uint64
	blkShift uint8
	stamp    uint64

	Accesses uint64
	Hits     uint64
	Misses   uint64
	// LateHits are accesses that found the line present but still in
	// flight (a prefetch or earlier miss had not completed).
	LateHits uint64
}

// NewCache returns a cache with the given geometry.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.BlockBytes&(cfg.BlockBytes-1) != 0 {
		panic("mem: block size must be a power of two")
	}
	numSets := cfg.SizeBytes / (cfg.BlockBytes * cfg.Ways)
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("mem: set count must be a positive power of two")
	}
	c := &Cache{cfg: cfg, setMask: uint64(numSets - 1)}
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		c.blkShift++
	}
	c.sets = make([][]line, numSets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) setAndTag(addr uint64) (int, uint64) {
	blk := addr >> c.blkShift
	return int(blk & c.setMask), blk >> popcount(c.setMask)
}

func popcount(m uint64) uint8 {
	var n uint8
	for ; m != 0; m >>= 1 {
		n += uint8(m & 1)
	}
	return n
}

// LookupResult describes one cache access.
type LookupResult struct {
	Hit   bool
	Way   int    // hitting or filled way
	Ready uint64 // cycle the data is available (>= now)
}

// Access looks up addr at cycle now, updating LRU on a hit. A line that is
// present but not yet ready counts as a hit whose data arrives at its fill
// time (the "late hit" case).
func (c *Cache) Access(now uint64, addr uint64) LookupResult {
	c.Accesses++
	set, tag := c.setAndTag(addr)
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag {
			c.Hits++
			c.stamp++
			l.used = c.stamp
			ready := now
			if l.ready > now {
				c.LateHits++
				ready = l.ready
			}
			return LookupResult{Hit: true, Way: w, Ready: ready}
		}
	}
	c.Misses++
	return LookupResult{Hit: false, Way: -1}
}

// Peek looks up addr without touching LRU or statistics; the DLVP probe
// path uses it when only presence matters.
func (c *Cache) Peek(addr uint64) (hit bool, way int) {
	set, tag := c.setAndTag(addr)
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag {
			return true, w
		}
	}
	return false, -1
}

// Fill installs the block containing addr, ready at cycle ready, and
// returns the way chosen (LRU victim). Filling an already-present block
// refreshes its readiness if the new fill completes sooner.
func (c *Cache) Fill(addr uint64, ready uint64) int {
	set, tag := c.setAndTag(addr)
	victim, oldest := 0, ^uint64(0)
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag {
			if ready < l.ready {
				l.ready = ready
			}
			return w
		}
		if !l.valid {
			victim, oldest = w, 0
			continue
		}
		if l.used < oldest {
			victim, oldest = w, l.used
		}
	}
	c.stamp++
	c.sets[set][victim] = line{tag: tag, ready: ready, used: c.stamp, valid: true}
	return victim
}

// Invalidate drops the block containing addr if present (used by tests and
// by way-misprediction experiments that force re-insertion at a new way).
func (c *Cache) Invalidate(addr uint64) bool {
	set, tag := c.setAndTag(addr)
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.valid && l.tag == tag {
			l.valid = false
			return true
		}
	}
	return false
}

// MissRate returns misses/accesses in percent.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return 100 * float64(c.Misses) / float64(c.Accesses)
}
