// Package metrics defines the statistics produced by a timing-simulation
// run and the aggregation helpers (speedup, means) the experiment drivers
// use to reproduce the paper's figures.
package metrics

import (
	"math"

	"dlvp/internal/predictor"
)

// RunStats summarises one timing simulation.
type RunStats struct {
	Workload string
	Scheme   string

	Cycles       uint64
	Instructions uint64
	Loads        uint64
	Stores       uint64

	// Value prediction accounting (eligible = dynamic loads for address
	// schemes; for VTAGE-all it counts all value-producing instructions).
	VP predictor.Stats
	// ValueFlushes counts pipeline flushes triggered by value
	// mispredictions; BranchFlushes by branch mispredictions;
	// OrderFlushes by memory-ordering violations.
	ValueFlushes  uint64
	BranchFlushes uint64
	OrderFlushes  uint64
	// StoreFwdPartialStalls counts loads held at issue because an older
	// in-flight store only partially covered their bytes: the store queue
	// cannot forward a partial value, so the load waits until the store
	// drains to committed memory. Counted once per fetched load instance.
	StoreFwdPartialStalls uint64
	// ValueReplays counts value mispredictions recovered by selective
	// replay (dependents re-executed, no flush).
	ValueReplays uint64

	// DLVP-specific.
	Probes          uint64
	ProbeHits       uint64
	PAQDropped      uint64
	PAQAllocated    uint64
	PAQFull         uint64 // confident predictions lost to a full PAQ
	GroupSlotMissed uint64 // loads beyond the two predicted slots per fetch group
	VPDropLate      uint64 // probe result arrived after the load renamed
	VPDropBudget    uint64 // predictions lost to the per-cycle PVT write budget
	VPDropPVTFull   uint64 // predictions lost to PVT capacity
	Prefetches      uint64
	LSCDFiltered    uint64
	LSCDInserts     uint64
	WayMispredicts  uint64
	TournamentDLVP  uint64 // final predictions delivered by DLVP
	TournamentVTAGE uint64 // final predictions delivered by VTAGE

	// Memory system.
	L1DMissRate float64
	L2MissRate  float64
	TLBMissRate float64
	TLBMisses   uint64

	// Energy (arbitrary units; normalize against a baseline run).
	CoreEnergy float64
}

// IPC returns instructions per cycle.
func (r RunStats) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// SpeedupPct returns the percentage speedup of r over base, measured the
// way the paper plots it: cycles(base)/cycles(r) - 1.
func SpeedupPct(base, r RunStats) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return 100 * (float64(base.Cycles)/float64(r.Cycles) - 1)
}

// PAQDropRate returns dropped/allocated PAQ entries in percent (the paper
// reports < 0.1%).
func (r RunStats) PAQDropRate() float64 {
	if r.PAQAllocated == 0 {
		return 0
	}
	return 100 * float64(r.PAQDropped) / float64(r.PAQAllocated)
}

// ProbeHitRate returns L1D probe hits per probe in percent (0 when the
// run issued no probes — baseline and VTAGE schemes).
func (r RunStats) ProbeHitRate() float64 {
	if r.Probes == 0 {
		return 0
	}
	return 100 * float64(r.ProbeHits) / float64(r.Probes)
}

// FlushesPerKiloInstrs returns total pipeline flushes (branch, value,
// ordering) per thousand committed instructions (0 for an empty run).
func (r RunStats) FlushesPerKiloInstrs() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 1000 * float64(r.BranchFlushes+r.ValueFlushes+r.OrderFlushes) / float64(r.Instructions)
}

// Mean returns the arithmetic mean of xs (the paper's "average speedup"
// is an arithmetic mean across workloads).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MinSpeedupRatio is the floor applied to each per-workload cycle ratio
// inside GeoMeanSpeedup. A slowdown of −100% or worse (a zero-IPC run)
// has a non-positive ratio whose logarithm is -Inf/NaN and would poison
// the whole mean and every JSON artifact derived from it; clamping to
// one-thousandth (−99.9%) keeps such a run maximally penalised while the
// aggregate stays finite and deterministic.
const MinSpeedupRatio = 1e-3

// GeoMeanSpeedup returns the geometric mean of (1 + x/100) minus one, in
// percent — a robustness check alongside the arithmetic mean. Entries at
// or below −100% (and NaN entries) are clamped to MinSpeedupRatio rather
// than skipped, so a pathological run still drags the mean down instead
// of silently vanishing from it.
func GeoMeanSpeedup(pcts []float64) float64 {
	if len(pcts) == 0 {
		return 0
	}
	var logSum float64
	for _, p := range pcts {
		ratio := 1 + p/100
		if !(ratio > MinSpeedupRatio) { // also catches NaN
			ratio = MinSpeedupRatio
		}
		logSum += math.Log(ratio)
	}
	return 100 * (math.Exp(logSum/float64(len(pcts))) - 1)
}

// Max returns the maximum element of xs (0 for empty input).
func Max(xs []float64) float64 {
	var m float64
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}
