package metrics

import (
	"math"
	"testing"
)

func TestIPC(t *testing.T) {
	r := RunStats{Cycles: 1000, Instructions: 2500}
	if r.IPC() != 2.5 {
		t.Errorf("IPC = %v", r.IPC())
	}
	if (RunStats{}).IPC() != 0 {
		t.Error("zero-cycle IPC must be 0")
	}
}

func TestSpeedupPct(t *testing.T) {
	base := RunStats{Cycles: 1100}
	fast := RunStats{Cycles: 1000}
	if got := SpeedupPct(base, fast); math.Abs(got-10) > 1e-9 {
		t.Errorf("speedup = %v, want 10", got)
	}
	slow := RunStats{Cycles: 1375}
	if got := SpeedupPct(base, slow); math.Abs(got+20) > 1e-9 {
		t.Errorf("slowdown = %v, want -20", got)
	}
	if SpeedupPct(base, RunStats{}) != 0 {
		t.Error("zero-cycle run must not divide by zero")
	}
}

func TestPAQDropRate(t *testing.T) {
	r := RunStats{PAQAllocated: 200, PAQDropped: 3}
	if got := r.PAQDropRate(); got != 1.5 {
		t.Errorf("drop rate = %v", got)
	}
	if (RunStats{}).PAQDropRate() != 0 {
		t.Error("empty drop rate must be 0")
	}
}

func TestMeanAndMax(t *testing.T) {
	xs := []float64{1, 2, 3, 10}
	if Mean(xs) != 4 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Max(xs) != 10 {
		t.Errorf("max = %v", Max(xs))
	}
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Error("empty aggregates must be 0")
	}
	if Max([]float64{-5, -2}) != -2 {
		t.Error("max of negatives")
	}
}

func TestGeoMeanSpeedup(t *testing.T) {
	// (1.1 * 1.1)^0.5 - 1 = 10%
	if got := GeoMeanSpeedup([]float64{10, 10}); math.Abs(got-10) > 1e-9 {
		t.Errorf("geomean = %v", got)
	}
	// geomean of +100% and -50%: sqrt(2*0.5)=1 -> 0%
	if got := GeoMeanSpeedup([]float64{100, -50}); math.Abs(got) > 1e-9 {
		t.Errorf("geomean = %v, want 0", got)
	}
	if GeoMeanSpeedup(nil) != 0 {
		t.Error("empty geomean must be 0")
	}
}

// A zero-IPC run reports a −100% (or worse) slowdown whose log-ratio is
// -Inf/NaN; such entries are clamped to MinSpeedupRatio so one broken run
// cannot poison the aggregate or the JSON artifacts.
func TestGeoMeanSpeedupPathologicalSlowdowns(t *testing.T) {
	clamped := 100 * (MinSpeedupRatio - 1) // −99.9%
	for _, xs := range [][]float64{{-100}, {-150}, {math.NaN()}} {
		got := GeoMeanSpeedup(xs)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("GeoMeanSpeedup(%v) = %v, want finite", xs, got)
		}
		if math.Abs(got-clamped) > 1e-9 {
			t.Errorf("GeoMeanSpeedup(%v) = %v, want clamp at %v", xs, got, clamped)
		}
	}
	// A clamped entry drags a mixed average down without destroying it,
	// and the result is deterministic.
	mixed := []float64{10, -100, 10}
	got := GeoMeanSpeedup(mixed)
	if math.IsNaN(got) || math.IsInf(got, 0) || got >= 0 {
		t.Errorf("mixed geomean = %v, want finite negative", got)
	}
	if again := GeoMeanSpeedup(mixed); again != got {
		t.Errorf("non-deterministic: %v vs %v", got, again)
	}
}

// Every RunStats rate helper must return a finite value — specifically 0 —
// when its denominator is zero, so empty or scheme-mismatched runs (a
// baseline run has no probes, a zero-instruction run has no cycles) render
// cleanly in tables, JSON artifacts, and the timeline CLI.
func TestRateHelpersZeroDenominators(t *testing.T) {
	tests := []struct {
		name string
		s    RunStats
		fn   func(RunStats) float64
		want float64
	}{
		{"IPC zero cycles", RunStats{Instructions: 5}, RunStats.IPC, 0},
		{"IPC normal", RunStats{Instructions: 10, Cycles: 5}, RunStats.IPC, 2},
		{"PAQDropRate zero alloc", RunStats{PAQDropped: 3}, RunStats.PAQDropRate, 0},
		{"PAQDropRate normal", RunStats{PAQDropped: 1, PAQAllocated: 4}, RunStats.PAQDropRate, 25},
		{"ProbeHitRate zero probes", RunStats{ProbeHits: 2}, RunStats.ProbeHitRate, 0},
		{"ProbeHitRate normal", RunStats{ProbeHits: 3, Probes: 4}, RunStats.ProbeHitRate, 75},
		{"FlushesPerKiloInstrs zero instrs", RunStats{BranchFlushes: 7}, RunStats.FlushesPerKiloInstrs, 0},
		{"FlushesPerKiloInstrs normal",
			RunStats{Instructions: 2000, BranchFlushes: 1, ValueFlushes: 2, OrderFlushes: 3},
			RunStats.FlushesPerKiloInstrs, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.fn(tc.s)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("got %v, want finite", got)
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("got %v, want %v", got, tc.want)
			}
		})
	}
	if got := SpeedupPct(RunStats{Cycles: 100}, RunStats{}); got != 0 {
		t.Errorf("SpeedupPct with zero cycles = %v, want 0", got)
	}
}
